file(REMOVE_RECURSE
  "CMakeFiles/frameworks.dir/frameworks.cpp.o"
  "CMakeFiles/frameworks.dir/frameworks.cpp.o.d"
  "frameworks"
  "frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
