# Empty compiler generated dependencies file for frameworks.
# This may be replaced when dependencies are built.
