# Empty dependencies file for bounded.
# This may be replaced when dependencies are built.
