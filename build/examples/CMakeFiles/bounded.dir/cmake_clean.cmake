file(REMOVE_RECURSE
  "CMakeFiles/bounded.dir/bounded.cpp.o"
  "CMakeFiles/bounded.dir/bounded.cpp.o.d"
  "bounded"
  "bounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
