# Empty dependencies file for motivating.
# This may be replaced when dependencies are built.
