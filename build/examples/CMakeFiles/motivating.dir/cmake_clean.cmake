file(REMOVE_RECURSE
  "CMakeFiles/motivating.dir/motivating.cpp.o"
  "CMakeFiles/motivating.dir/motivating.cpp.o.d"
  "motivating"
  "motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
