# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/ssa_test[1]_include.cmake")
include("/root/repo/build/tests/taint_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/benchgen_test[1]_include.cmake")
include("/root/repo/build/tests/pointsto_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/sdg_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
