# Empty compiler generated dependencies file for sdg_test.
# This may be replaced when dependencies are built.
