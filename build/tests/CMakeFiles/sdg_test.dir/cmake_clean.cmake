file(REMOVE_RECURSE
  "CMakeFiles/sdg_test.dir/sdg_test.cpp.o"
  "CMakeFiles/sdg_test.dir/sdg_test.cpp.o.d"
  "sdg_test"
  "sdg_test.pdb"
  "sdg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
