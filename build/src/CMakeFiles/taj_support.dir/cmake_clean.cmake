file(REMOVE_RECURSE
  "CMakeFiles/taj_support.dir/support/Rng.cpp.o"
  "CMakeFiles/taj_support.dir/support/Rng.cpp.o.d"
  "CMakeFiles/taj_support.dir/support/Stats.cpp.o"
  "CMakeFiles/taj_support.dir/support/Stats.cpp.o.d"
  "CMakeFiles/taj_support.dir/support/StringPool.cpp.o"
  "CMakeFiles/taj_support.dir/support/StringPool.cpp.o.d"
  "libtaj_support.a"
  "libtaj_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taj_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
