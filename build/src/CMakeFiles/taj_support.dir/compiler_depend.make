# Empty compiler generated dependencies file for taj_support.
# This may be replaced when dependencies are built.
