file(REMOVE_RECURSE
  "libtaj_support.a"
)
