# Empty compiler generated dependencies file for taj_ir.
# This may be replaced when dependencies are built.
