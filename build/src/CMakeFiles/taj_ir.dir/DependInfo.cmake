
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cha/ClassHierarchy.cpp" "src/CMakeFiles/taj_ir.dir/cha/ClassHierarchy.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/cha/ClassHierarchy.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "src/CMakeFiles/taj_ir.dir/frontend/Lexer.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/CMakeFiles/taj_ir.dir/frontend/Parser.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/frontend/Parser.cpp.o.d"
  "/root/repo/src/ir/Builder.cpp" "src/CMakeFiles/taj_ir.dir/ir/Builder.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/ir/Builder.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/taj_ir.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/taj_ir.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/CMakeFiles/taj_ir.dir/ir/Program.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/ir/Program.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/CMakeFiles/taj_ir.dir/ir/Type.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/ir/Type.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/taj_ir.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/ssa/Dominators.cpp" "src/CMakeFiles/taj_ir.dir/ssa/Dominators.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/ssa/Dominators.cpp.o.d"
  "/root/repo/src/ssa/SSABuilder.cpp" "src/CMakeFiles/taj_ir.dir/ssa/SSABuilder.cpp.o" "gcc" "src/CMakeFiles/taj_ir.dir/ssa/SSABuilder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taj_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
