file(REMOVE_RECURSE
  "libtaj_ir.a"
)
