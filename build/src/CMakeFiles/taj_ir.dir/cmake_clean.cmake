file(REMOVE_RECURSE
  "CMakeFiles/taj_ir.dir/cha/ClassHierarchy.cpp.o"
  "CMakeFiles/taj_ir.dir/cha/ClassHierarchy.cpp.o.d"
  "CMakeFiles/taj_ir.dir/frontend/Lexer.cpp.o"
  "CMakeFiles/taj_ir.dir/frontend/Lexer.cpp.o.d"
  "CMakeFiles/taj_ir.dir/frontend/Parser.cpp.o"
  "CMakeFiles/taj_ir.dir/frontend/Parser.cpp.o.d"
  "CMakeFiles/taj_ir.dir/ir/Builder.cpp.o"
  "CMakeFiles/taj_ir.dir/ir/Builder.cpp.o.d"
  "CMakeFiles/taj_ir.dir/ir/Instruction.cpp.o"
  "CMakeFiles/taj_ir.dir/ir/Instruction.cpp.o.d"
  "CMakeFiles/taj_ir.dir/ir/Printer.cpp.o"
  "CMakeFiles/taj_ir.dir/ir/Printer.cpp.o.d"
  "CMakeFiles/taj_ir.dir/ir/Program.cpp.o"
  "CMakeFiles/taj_ir.dir/ir/Program.cpp.o.d"
  "CMakeFiles/taj_ir.dir/ir/Type.cpp.o"
  "CMakeFiles/taj_ir.dir/ir/Type.cpp.o.d"
  "CMakeFiles/taj_ir.dir/ir/Verifier.cpp.o"
  "CMakeFiles/taj_ir.dir/ir/Verifier.cpp.o.d"
  "CMakeFiles/taj_ir.dir/ssa/Dominators.cpp.o"
  "CMakeFiles/taj_ir.dir/ssa/Dominators.cpp.o.d"
  "CMakeFiles/taj_ir.dir/ssa/SSABuilder.cpp.o"
  "CMakeFiles/taj_ir.dir/ssa/SSABuilder.cpp.o.d"
  "libtaj_ir.a"
  "libtaj_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taj_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
