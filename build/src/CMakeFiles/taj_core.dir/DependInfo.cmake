
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AnalysisConfig.cpp" "src/CMakeFiles/taj_core.dir/core/AnalysisConfig.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/core/AnalysisConfig.cpp.o.d"
  "/root/repo/src/core/SecurityRules.cpp" "src/CMakeFiles/taj_core.dir/core/SecurityRules.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/core/SecurityRules.cpp.o.d"
  "/root/repo/src/core/TaintAnalysis.cpp" "src/CMakeFiles/taj_core.dir/core/TaintAnalysis.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/core/TaintAnalysis.cpp.o.d"
  "/root/repo/src/model/BuiltinLibrary.cpp" "src/CMakeFiles/taj_core.dir/model/BuiltinLibrary.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/model/BuiltinLibrary.cpp.o.d"
  "/root/repo/src/model/Ejb.cpp" "src/CMakeFiles/taj_core.dir/model/Ejb.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/model/Ejb.cpp.o.d"
  "/root/repo/src/model/Entrypoints.cpp" "src/CMakeFiles/taj_core.dir/model/Entrypoints.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/model/Entrypoints.cpp.o.d"
  "/root/repo/src/model/Struts.cpp" "src/CMakeFiles/taj_core.dir/model/Struts.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/model/Struts.cpp.o.d"
  "/root/repo/src/model/Whitelist.cpp" "src/CMakeFiles/taj_core.dir/model/Whitelist.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/model/Whitelist.cpp.o.d"
  "/root/repo/src/report/Lcp.cpp" "src/CMakeFiles/taj_core.dir/report/Lcp.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/report/Lcp.cpp.o.d"
  "/root/repo/src/report/ReportGenerator.cpp" "src/CMakeFiles/taj_core.dir/report/ReportGenerator.cpp.o" "gcc" "src/CMakeFiles/taj_core.dir/report/ReportGenerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taj_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taj_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taj_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
