file(REMOVE_RECURSE
  "CMakeFiles/taj_core.dir/core/AnalysisConfig.cpp.o"
  "CMakeFiles/taj_core.dir/core/AnalysisConfig.cpp.o.d"
  "CMakeFiles/taj_core.dir/core/SecurityRules.cpp.o"
  "CMakeFiles/taj_core.dir/core/SecurityRules.cpp.o.d"
  "CMakeFiles/taj_core.dir/core/TaintAnalysis.cpp.o"
  "CMakeFiles/taj_core.dir/core/TaintAnalysis.cpp.o.d"
  "CMakeFiles/taj_core.dir/model/BuiltinLibrary.cpp.o"
  "CMakeFiles/taj_core.dir/model/BuiltinLibrary.cpp.o.d"
  "CMakeFiles/taj_core.dir/model/Ejb.cpp.o"
  "CMakeFiles/taj_core.dir/model/Ejb.cpp.o.d"
  "CMakeFiles/taj_core.dir/model/Entrypoints.cpp.o"
  "CMakeFiles/taj_core.dir/model/Entrypoints.cpp.o.d"
  "CMakeFiles/taj_core.dir/model/Struts.cpp.o"
  "CMakeFiles/taj_core.dir/model/Struts.cpp.o.d"
  "CMakeFiles/taj_core.dir/model/Whitelist.cpp.o"
  "CMakeFiles/taj_core.dir/model/Whitelist.cpp.o.d"
  "CMakeFiles/taj_core.dir/report/Lcp.cpp.o"
  "CMakeFiles/taj_core.dir/report/Lcp.cpp.o.d"
  "CMakeFiles/taj_core.dir/report/ReportGenerator.cpp.o"
  "CMakeFiles/taj_core.dir/report/ReportGenerator.cpp.o.d"
  "libtaj_core.a"
  "libtaj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
