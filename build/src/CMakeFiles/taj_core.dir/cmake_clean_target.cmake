file(REMOVE_RECURSE
  "libtaj_core.a"
)
