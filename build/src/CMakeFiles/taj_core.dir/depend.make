# Empty dependencies file for taj_core.
# This may be replaced when dependencies are built.
