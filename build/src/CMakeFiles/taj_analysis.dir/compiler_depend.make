# Empty compiler generated dependencies file for taj_analysis.
# This may be replaced when dependencies are built.
