file(REMOVE_RECURSE
  "libtaj_analysis.a"
)
