
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/callgraph/CallGraph.cpp" "src/CMakeFiles/taj_analysis.dir/callgraph/CallGraph.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/callgraph/CallGraph.cpp.o.d"
  "/root/repo/src/heapgraph/HeapGraph.cpp" "src/CMakeFiles/taj_analysis.dir/heapgraph/HeapGraph.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/heapgraph/HeapGraph.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/taj_analysis.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/pointsto/Context.cpp" "src/CMakeFiles/taj_analysis.dir/pointsto/Context.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/pointsto/Context.cpp.o.d"
  "/root/repo/src/pointsto/ContextPolicy.cpp" "src/CMakeFiles/taj_analysis.dir/pointsto/ContextPolicy.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/pointsto/ContextPolicy.cpp.o.d"
  "/root/repo/src/pointsto/Keys.cpp" "src/CMakeFiles/taj_analysis.dir/pointsto/Keys.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/pointsto/Keys.cpp.o.d"
  "/root/repo/src/pointsto/Priority.cpp" "src/CMakeFiles/taj_analysis.dir/pointsto/Priority.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/pointsto/Priority.cpp.o.d"
  "/root/repo/src/pointsto/Solver.cpp" "src/CMakeFiles/taj_analysis.dir/pointsto/Solver.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/pointsto/Solver.cpp.o.d"
  "/root/repo/src/rhs/Tabulation.cpp" "src/CMakeFiles/taj_analysis.dir/rhs/Tabulation.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/rhs/Tabulation.cpp.o.d"
  "/root/repo/src/sdg/HeapChannels.cpp" "src/CMakeFiles/taj_analysis.dir/sdg/HeapChannels.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/sdg/HeapChannels.cpp.o.d"
  "/root/repo/src/sdg/SDG.cpp" "src/CMakeFiles/taj_analysis.dir/sdg/SDG.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/sdg/SDG.cpp.o.d"
  "/root/repo/src/slicer/CIThinSlicer.cpp" "src/CMakeFiles/taj_analysis.dir/slicer/CIThinSlicer.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/slicer/CIThinSlicer.cpp.o.d"
  "/root/repo/src/slicer/CSThinSlicer.cpp" "src/CMakeFiles/taj_analysis.dir/slicer/CSThinSlicer.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/slicer/CSThinSlicer.cpp.o.d"
  "/root/repo/src/slicer/HeapEdges.cpp" "src/CMakeFiles/taj_analysis.dir/slicer/HeapEdges.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/slicer/HeapEdges.cpp.o.d"
  "/root/repo/src/slicer/HybridThinSlicer.cpp" "src/CMakeFiles/taj_analysis.dir/slicer/HybridThinSlicer.cpp.o" "gcc" "src/CMakeFiles/taj_analysis.dir/slicer/HybridThinSlicer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taj_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taj_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
