file(REMOVE_RECURSE
  "CMakeFiles/taj_analysis.dir/callgraph/CallGraph.cpp.o"
  "CMakeFiles/taj_analysis.dir/callgraph/CallGraph.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/heapgraph/HeapGraph.cpp.o"
  "CMakeFiles/taj_analysis.dir/heapgraph/HeapGraph.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/interp/Interpreter.cpp.o"
  "CMakeFiles/taj_analysis.dir/interp/Interpreter.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/pointsto/Context.cpp.o"
  "CMakeFiles/taj_analysis.dir/pointsto/Context.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/pointsto/ContextPolicy.cpp.o"
  "CMakeFiles/taj_analysis.dir/pointsto/ContextPolicy.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/pointsto/Keys.cpp.o"
  "CMakeFiles/taj_analysis.dir/pointsto/Keys.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/pointsto/Priority.cpp.o"
  "CMakeFiles/taj_analysis.dir/pointsto/Priority.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/pointsto/Solver.cpp.o"
  "CMakeFiles/taj_analysis.dir/pointsto/Solver.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/rhs/Tabulation.cpp.o"
  "CMakeFiles/taj_analysis.dir/rhs/Tabulation.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/sdg/HeapChannels.cpp.o"
  "CMakeFiles/taj_analysis.dir/sdg/HeapChannels.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/sdg/SDG.cpp.o"
  "CMakeFiles/taj_analysis.dir/sdg/SDG.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/slicer/CIThinSlicer.cpp.o"
  "CMakeFiles/taj_analysis.dir/slicer/CIThinSlicer.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/slicer/CSThinSlicer.cpp.o"
  "CMakeFiles/taj_analysis.dir/slicer/CSThinSlicer.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/slicer/HeapEdges.cpp.o"
  "CMakeFiles/taj_analysis.dir/slicer/HeapEdges.cpp.o.d"
  "CMakeFiles/taj_analysis.dir/slicer/HybridThinSlicer.cpp.o"
  "CMakeFiles/taj_analysis.dir/slicer/HybridThinSlicer.cpp.o.d"
  "libtaj_analysis.a"
  "libtaj_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taj_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
