file(REMOVE_RECURSE
  "libtaj_benchgen.a"
)
