# Empty compiler generated dependencies file for taj_benchgen.
# This may be replaced when dependencies are built.
