file(REMOVE_RECURSE
  "CMakeFiles/taj_benchgen.dir/benchgen/AppSpec.cpp.o"
  "CMakeFiles/taj_benchgen.dir/benchgen/AppSpec.cpp.o.d"
  "CMakeFiles/taj_benchgen.dir/benchgen/Generator.cpp.o"
  "CMakeFiles/taj_benchgen.dir/benchgen/Generator.cpp.o.d"
  "CMakeFiles/taj_benchgen.dir/benchgen/Patterns.cpp.o"
  "CMakeFiles/taj_benchgen.dir/benchgen/Patterns.cpp.o.d"
  "libtaj_benchgen.a"
  "libtaj_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taj_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
