# Empty compiler generated dependencies file for taj-cli.
# This may be replaced when dependencies are built.
