file(REMOVE_RECURSE
  "CMakeFiles/taj-cli.dir/taj-cli.cpp.o"
  "CMakeFiles/taj-cli.dir/taj-cli.cpp.o.d"
  "taj-cli"
  "taj-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taj-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
