# Empty compiler generated dependencies file for fig3_lcp.
# This may be replaced when dependencies are built.
