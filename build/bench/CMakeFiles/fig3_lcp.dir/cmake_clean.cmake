file(REMOVE_RECURSE
  "CMakeFiles/fig3_lcp.dir/fig3_lcp.cpp.o"
  "CMakeFiles/fig3_lcp.dir/fig3_lcp.cpp.o.d"
  "fig3_lcp"
  "fig3_lcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
