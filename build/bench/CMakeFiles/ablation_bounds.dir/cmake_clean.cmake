file(REMOVE_RECURSE
  "CMakeFiles/ablation_bounds.dir/ablation_bounds.cpp.o"
  "CMakeFiles/ablation_bounds.dir/ablation_bounds.cpp.o.d"
  "ablation_bounds"
  "ablation_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
