# Empty dependencies file for ablation_bounds.
# This may be replaced when dependencies are built.
