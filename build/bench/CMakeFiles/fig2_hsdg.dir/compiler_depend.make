# Empty compiler generated dependencies file for fig2_hsdg.
# This may be replaced when dependencies are built.
