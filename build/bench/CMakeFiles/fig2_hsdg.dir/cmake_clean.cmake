file(REMOVE_RECURSE
  "CMakeFiles/fig2_hsdg.dir/fig2_hsdg.cpp.o"
  "CMakeFiles/fig2_hsdg.dir/fig2_hsdg.cpp.o.d"
  "fig2_hsdg"
  "fig2_hsdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hsdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
