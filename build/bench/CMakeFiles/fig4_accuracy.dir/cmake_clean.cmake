file(REMOVE_RECURSE
  "CMakeFiles/fig4_accuracy.dir/fig4_accuracy.cpp.o"
  "CMakeFiles/fig4_accuracy.dir/fig4_accuracy.cpp.o.d"
  "fig4_accuracy"
  "fig4_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
