# Empty compiler generated dependencies file for fig4_accuracy.
# This may be replaced when dependencies are built.
