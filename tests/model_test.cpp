//===- tests/model_test.cpp - Framework model & rule-set tests -----------===//
//
// Unit tests for the §4.2 framework models (Struts, EJB, whitelists,
// entrypoint synthesis) and the external SecurityRuleSet API.
//
//===----------------------------------------------------------------------===//

#include "core/SecurityRules.h"
#include "ir/Builder.h"
#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Ejb.h"
#include "model/Entrypoints.h"
#include "model/Struts.h"
#include "model/Whitelist.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

TEST(Model, BuiltinLibraryInstallsCoreClasses) {
  Program P;
  BuiltinLibrary Lib = installBuiltinLibrary(P);
  EXPECT_NE(Lib.String, InvalidId);
  EXPECT_TRUE(P.cls(Lib.String).is(classflags::StringCarrier));
  EXPECT_TRUE(P.cls(Lib.HashMap).is(classflags::Map));
  EXPECT_TRUE(P.cls(Lib.HashMap).is(classflags::Collection));
  EXPECT_TRUE(P.cls(Lib.Thread).is(classflags::Thread));
  EXPECT_EQ(P.method(Lib.GetParameter).SourceRules, rules::All);
  EXPECT_EQ(P.method(Lib.Println).SinkRules, rules::XSS | rules::LEAK);
  EXPECT_TRUE(P.method(Lib.GetWriter).IsFactory);
}

TEST(Model, StrutsSynthesizesTaintedForms) {
  Program P;
  BuiltinLibrary Lib = installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseTaj(P, R"(
class MyForm extends ActionForm {
  field user: String;
}
class OtherForm extends ActionForm {
  field token: String;
}
class MyAction extends Action {
  method execute(this: MyAction, form: ActionForm): void {
    resp = new Response;
    w = resp.getWriter();
    u = form.user;
    w.println(u);
  }
}
)",
                       &Errors))
      << Errors.front();
  std::vector<MethodId> Drivers =
      applyStrutsModel(P, Lib, {{"MyAction"}});
  ASSERT_EQ(Drivers.size(), 1u);
  EXPECT_TRUE(P.method(Drivers[0]).IsEntry);

  MethodId Root = synthesizeEntrypointDriver(P);
  TaintAnalysis TA(P, AnalysisConfig::hybridUnbounded());
  AnalysisResult R = TA.run({Root});
  EXPECT_FALSE(R.Issues.empty())
      << "framework-populated form fields must be tainted";
}

TEST(Model, StrutsIgnoresUnmappedActions) {
  Program P;
  BuiltinLibrary Lib = installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseTaj(P, R"(
class LoneAction extends Action {
  method execute(this: LoneAction, form: ActionForm): void { return; }
}
)",
                       &Errors));
  EXPECT_TRUE(applyStrutsModel(P, Lib, {{"NotAnAction"}}).empty());
  EXPECT_TRUE(applyStrutsModel(P, Lib, {}).empty());
}

TEST(Model, EjbDescriptorResolution) {
  Program P;
  installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseTaj(P, R"(
class H extends EJBHome {}
class B extends Object {}
)",
                       &Errors));
  EjbDescriptor D = resolveEjbDescriptor(
      P, {{"ejb/x", "H", "B"}, {"ejb/missing", "Nope", "B"}});
  EXPECT_EQ(D.JndiBindings.size(), 1u);
  EXPECT_EQ(D.JndiBindings.at("ejb/x"), P.findClass("H"));
  EXPECT_EQ(D.HomeToBean.at(P.findClass("H")), P.findClass("B"));
}

TEST(Model, WhitelistByPrefix) {
  Program P;
  installBuiltinLibrary(P);
  Builder B(P);
  B.makeClass("org_apache_Util", P.findClass("Object"));
  B.makeClass("org_apache_More", P.findClass("Object"));
  B.makeClass("com_app_Main", P.findClass("Object"));
  size_t N = applyWhitelist(P, {"org_apache_"});
  EXPECT_EQ(N, 2u);
  EXPECT_TRUE(
      P.cls(P.findClass("org_apache_Util")).is(classflags::Whitelisted));
  EXPECT_FALSE(P.cls(P.findClass("com_app_Main")).is(classflags::Whitelisted));
  // Idempotent.
  EXPECT_EQ(applyWhitelist(P, {"org_apache_"}), 0u);
}

TEST(Model, EntrypointDriverCoversAllEntries) {
  Program P;
  installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseTaj(P, R"(
class A1 extends Servlet {
  method e1(this: A1, req: Request): void [entry] { x = 1; }
}
class A2 extends Servlet {
  method e2(this: A2, req: Request, resp: Response): void [entry] { x = 2; }
  method notEntry(this: A2): void { x = 3; }
}
)",
                       &Errors));
  MethodId Root = synthesizeEntrypointDriver(P);
  P.indexStatements();
  ClassHierarchy CHA(P);
  PointsToSolver Solver(P, CHA);
  Solver.solve({Root});
  EXPECT_TRUE(
      Solver.isMethodProcessed(P.findMethod(P.findClass("A1"), "e1")));
  EXPECT_TRUE(
      Solver.isMethodProcessed(P.findMethod(P.findClass("A2"), "e2")));
  EXPECT_FALSE(
      Solver.isMethodProcessed(P.findMethod(P.findClass("A2"), "notEntry")));
}

TEST(Model, SecurityRuleSetAppliesByName) {
  Program P;
  installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseTaj(P, R"(
class MyApi extends Object [library] {
  method fetch(this: MyApi): String [intrinsic(sourcereturn)];
  method emit(this: MyApi, s: String): void [intrinsic(sinkconsume)];
  method clean(this: MyApi, s: String): String [intrinsic(sanitize)];
}
class App extends Servlet {
  method doGet(this: App, req: Request, api: MyApi): void [entry] {
    t = api.fetch();
    api.emit(t);
  }
}
)",
                       &Errors));
  SecurityRuleSet Rules;
  Rules.addSource({"MyApi", "fetch", rules::SQLI});
  Rules.addSink({"MyApi", "emit", rules::SQLI, 0});
  Rules.addSanitizer({"MyApi", "clean", rules::SQLI});
  Rules.addSource({"Nope", "missing", rules::All});
  size_t Unmatched = 0;
  size_t Applied = Rules.apply(P, &Unmatched);
  EXPECT_EQ(Applied, 3u);
  EXPECT_EQ(Unmatched, 1u);

  MethodId Root = synthesizeEntrypointDriver(P);
  TaintAnalysis TA(P, AnalysisConfig::hybridUnbounded());
  AnalysisResult R = TA.run({Root});
  bool SawSqli = false;
  for (const Issue &I : R.Issues)
    SawSqli |= (I.Rule & rules::SQLI) != 0;
  EXPECT_TRUE(SawSqli);
}

TEST(Model, ExceptionToStringIsLeakSource) {
  Program P;
  installBuiltinLibrary(P);
  ClassId Exc = P.findClass("Exception");
  ASSERT_NE(Exc, InvalidId);
  MethodId ToStr = P.findMethod(Exc, "toString");
  ASSERT_NE(ToStr, InvalidId);
  EXPECT_EQ(P.method(ToStr).SourceRules, rules::LEAK);
}

} // namespace
