//===- tests/benchgen_test.cpp - Benchmark generator tests ---------------===//
//
// The generated suite must reproduce the evaluation's qualitative shape:
// hybrid and CI find every planted real flow, CS misses exactly the
// inter-thread flows and fails on chan-heavy apps, CI reports at least as
// many issues as hybrid, sanitized flows stay silent, and the optimized
// bounds prune overlong flows.
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

AnalysisResult runCfg(GeneratedApp &App, AnalysisConfig C) {
  TaintAnalysis TA(*App.P, std::move(C));
  return TA.run({App.Root});
}

/// Small apps with CS coverage (fast enough to run all configs).
std::vector<AppSpec> smallSuite() {
  std::vector<AppSpec> Out;
  for (const AppSpec &S : benchmarkSuite())
    if (S.Name == "BlueBlog" || S.Name == "I" || S.Name == "Friki" ||
        S.Name == "A")
      Out.push_back(S);
  return Out;
}

TEST(BenchGen, GeneratedAppsVerify) {
  for (const AppSpec &S : smallSuite()) {
    GeneratedApp App = generateApp(S);
    std::vector<std::string> Errors = verifyProgram(*App.P);
    EXPECT_TRUE(Errors.empty())
        << S.Name << ": " << (Errors.empty() ? "" : Errors.front());
    EXPECT_GT(App.Truth.numReal(), 0u) << S.Name;
  }
}

TEST(BenchGen, HybridAndCiFindAllRealFlows) {
  for (const AppSpec &S : smallSuite()) {
    GeneratedApp App = generateApp(S);
    AnalysisResult H = runCfg(App, AnalysisConfig::hybridUnbounded());
    Classification CH = classify(*App.P, App.Truth, H.Issues);
    EXPECT_EQ(CH.RealFound, App.Truth.numReal()) << S.Name << " (hybrid)";
    AnalysisResult CI = runCfg(App, AnalysisConfig::ci());
    Classification CC = classify(*App.P, App.Truth, CI.Issues);
    EXPECT_EQ(CC.RealFound, App.Truth.numReal()) << S.Name << " (CI)";
    EXPECT_GE(distinctIssueCount(CI.Issues), distinctIssueCount(H.Issues))
        << S.Name << ": CI must report at least as much as hybrid";
  }
}

TEST(BenchGen, CsMissesExactlyThreadFlows) {
  for (const AppSpec &S : smallSuite()) {
    GeneratedApp App = generateApp(S);
    AnalysisResult CS = runCfg(App, AnalysisConfig::cs());
    ASSERT_TRUE(CS.Completed) << S.Name << " should complete under CS";
    Classification C = classify(*App.P, App.Truth, CS.Issues);
    EXPECT_EQ(App.Truth.numReal() - C.RealFound, S.Plants.TpThread)
        << S.Name << ": CS false negatives must equal planted thread flows";
  }
}

TEST(BenchGen, CsExhaustsMemoryOnChanHeavyApps) {
  for (const AppSpec &S : benchmarkSuite()) {
    if (S.Name != "Lutece")
      continue; // one representative chan-heavy app (keeps the test fast)
    GeneratedApp App = generateApp(S);
    AnalysisResult CS = runCfg(App, AnalysisConfig::cs());
    EXPECT_FALSE(CS.Completed) << S.Name << " must OOM under CS";
  }
}

TEST(BenchGen, SanitizedFlowsStaySilent) {
  for (const AppSpec &S : smallSuite()) {
    GeneratedApp App = generateApp(S);
    AnalysisResult H = runCfg(App, AnalysisConfig::hybridUnbounded());
    // No reported sink line may be a sanitized decoy: sanitized flows use
    // decoy lines but have no matching pattern that should fire at all.
    // It suffices that hybrid reports exactly TP + expected FP kinds:
    Classification C = classify(*App.P, App.Truth, H.Issues);
    uint32_t ExpectedFp = S.Plants.FpAlias + S.Plants.FpHeap +
                          S.Plants.FpHeapLong;
    EXPECT_EQ(C.FalsePositives, ExpectedFp) << S.Name;
  }
}

TEST(BenchGen, OptimizedDropsLongFlows) {
  for (const AppSpec &S : benchmarkSuite()) {
    if (S.Name != "BlueBlog")
      continue;
    GeneratedApp App = generateApp(S);
    AnalysisConfig Opt = AnalysisConfig::hybridOptimized(
        /*CgBudget=*/0, /*HeapTransitions=*/20000, /*FlowLength=*/14,
        /*NestedDepth=*/2);
    Opt.Prioritized = false;
    AnalysisResult R = runCfg(App, Opt);
    Classification C = classify(*App.P, App.Truth, R.Issues);
    // The one planted long real flow becomes a false negative (§7.2) and
    // the long heap decoys disappear.
    EXPECT_EQ(App.Truth.numReal() - C.RealFound, S.Plants.TpLong)
        << "long real flow must be filtered";
    AnalysisResult U = runCfg(App, AnalysisConfig::hybridUnbounded());
    Classification CU = classify(*App.P, App.Truth, U.Issues);
    EXPECT_LT(C.FalsePositives, CU.FalsePositives + S.Plants.FpHeapLong + 1);
  }
}

TEST(BenchGen, TableTwoStatsScaleWithSpec) {
  auto Suite = benchmarkSuite();
  GeneratedApp Small = generateApp(Suite[3]); // BlueBlog
  GeneratedApp Large = generateApp(Suite[20]); // VQWiki
  EXPECT_GT(Large.GenMethods, Small.GenMethods);
  EXPECT_GT(Large.GenStmts, Small.GenStmts);
}

} // namespace
