//===- tests/trace_test.cpp - Tracing & per-phase profiling --------------===//
//
// The observability layer (support/Trace.h) must observe without
// participating, and these tests pin down that contract:
//  - the trace sink renders well-formed Chrome trace-event JSON whose
//    spans nest properly per thread, and drops oldest-first when the
//    ring buffer wraps;
//  - the PhaseProfile's exclusive accounting tiles its lifetime: nested
//    phases subtract from their parents, and the exported phase.*_us
//    counters sum to the run's wall clock within tolerance;
//  - taj-cli --trace emits spans for every major phase, its stdout is
//    byte-identical to an untraced run, warm starts attribute their time
//    to persist_load, a supervised --jobs=2 batch merges every worker's
//    events onto one timeline, and a guard stop appears as an instant;
//  - stats/trace artifacts are written on failure exits too (but not on
//    usage errors), and a worker's malformed --stats-json surfaces
//    through recoverWorkerStats instead of silently dropping counters.
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"
#include "supervise/Supervisor.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace taj;
namespace fs = std::filesystem;

namespace {

/// Self-cleaning scratch directory for one test.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/taj-trace-XXXXXX";
    const char *D = ::mkdtemp(Buf);
    EXPECT_NE(D, nullptr);
    Path = D ? D : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code Ec;
      fs::remove_all(Path, Ec);
    }
  }
};

std::string readWhole(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

/// Runs taj-cli through a shell, capturing stdout only (stderr dropped, so
/// byte-identity checks compare the report stream alone).
std::string runCli(const std::string &Args, int &ExitCode) {
  std::string Cmd =
      std::string(TAJ_CLI_PATH) + " " + Args + " 2>/dev/null";
  FILE *P = ::popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int St = ::pclose(P);
  ExitCode = WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  return Out;
}

/// Extracts an integer counter from a --stats-json file ("missing" = -1).
long long statOf(const std::string &JsonPath, const std::string &Name) {
  std::string J = readWhole(JsonPath);
  std::string Needle = "\"" + Name + "\":";
  size_t At = J.find(Needle);
  if (At == std::string::npos)
    return -1;
  return std::atoll(J.c_str() + At + Needle.size());
}

//===----------------------------------------------------------------------===//
// Minimal JSON validator (well-formedness only, no value model)
//===----------------------------------------------------------------------===//

struct JsonChecker {
  const std::string &S;
  size_t I = 0;
  explicit JsonChecker(const std::string &S) : S(S) {}

  void ws() {
    while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(I, N, L) != 0)
      return false;
    I += N;
    return true;
  }
  bool string() {
    if (I >= S.size() || S[I] != '"')
      return false;
    ++I;
    while (I < S.size() && S[I] != '"') {
      if (S[I] == '\\') {
        ++I;
        if (I >= S.size())
          return false;
      }
      ++I;
    }
    if (I >= S.size())
      return false;
    ++I;
    return true;
  }
  bool number() {
    size_t Start = I;
    if (I < S.size() && S[I] == '-')
      ++I;
    while (I < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[I])) || S[I] == '.' ||
            S[I] == 'e' || S[I] == 'E' || S[I] == '+' || S[I] == '-'))
      ++I;
    return I > Start;
  }
  bool value() {
    ws();
    if (I >= S.size())
      return false;
    switch (S[I]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }
  bool object() {
    ++I; // '{'
    ws();
    if (I < S.size() && S[I] == '}') {
      ++I;
      return true;
    }
    for (;;) {
      ws();
      if (!string())
        return false;
      ws();
      if (I >= S.size() || S[I] != ':')
        return false;
      ++I;
      if (!value())
        return false;
      ws();
      if (I < S.size() && S[I] == ',') {
        ++I;
        continue;
      }
      if (I < S.size() && S[I] == '}') {
        ++I;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++I; // '['
    ws();
    if (I < S.size() && S[I] == ']') {
      ++I;
      return true;
    }
    for (;;) {
      if (!value())
        return false;
      ws();
      if (I < S.size() && S[I] == ',') {
        ++I;
        continue;
      }
      if (I < S.size() && S[I] == ']') {
        ++I;
        return true;
      }
      return false;
    }
  }
  bool document() {
    if (!value())
      return false;
    ws();
    return I == S.size();
  }
};

bool isValidJson(const std::string &S) { return JsonChecker(S).document(); }

//===----------------------------------------------------------------------===//
// Trace-event decoding (field scan over the rendered objects)
//===----------------------------------------------------------------------===//

struct Event {
  std::string Name;
  char Ph = 0;
  uint64_t Ts = 0;
  uint64_t Dur = 0;
  long Pid = 0;
  long Tid = 0;
};

uint64_t fieldNum(const std::string &Obj, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\":";
  size_t At = Obj.find(Needle);
  if (At == std::string::npos)
    return 0;
  return std::strtoull(Obj.c_str() + At + Needle.size(), nullptr, 10);
}

std::string fieldStr(const std::string &Obj, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\":\"";
  size_t At = Obj.find(Needle);
  if (At == std::string::npos)
    return "";
  size_t Start = At + Needle.size();
  std::string Out;
  for (size_t I = Start; I < Obj.size() && Obj[I] != '"'; ++I) {
    if (Obj[I] == '\\' && I + 1 < Obj.size()) {
      ++I;
      if (Obj[I] == 'u' && I + 4 < Obj.size()) {
        // The renderer only emits \uXXXX for control bytes (< 0x20).
        Out += static_cast<char>(
            std::strtoul(Obj.substr(I + 1, 4).c_str(), nullptr, 16));
        I += 4;
        continue;
      }
    }
    Out += Obj[I];
  }
  return Out;
}

/// Splits a trace document into its events. Brace matching tracks string
/// state so names containing braces cannot derail it.
std::vector<Event> decodeEvents(const std::string &Doc) {
  std::vector<Event> Out;
  std::string Inner = trace::extractEvents(Doc);
  size_t I = 0;
  while (I < Inner.size()) {
    if (Inner[I] != '{') {
      ++I;
      continue;
    }
    size_t Depth = 0;
    bool InStr = false;
    size_t Start = I;
    for (; I < Inner.size(); ++I) {
      char C = Inner[I];
      if (InStr) {
        if (C == '\\')
          ++I;
        else if (C == '"')
          InStr = false;
      } else if (C == '"') {
        InStr = true;
      } else if (C == '{') {
        ++Depth;
      } else if (C == '}') {
        if (--Depth == 0) {
          ++I;
          break;
        }
      }
    }
    std::string Obj = Inner.substr(Start, I - Start);
    Event E;
    E.Name = fieldStr(Obj, "name");
    std::string Ph = fieldStr(Obj, "ph");
    E.Ph = Ph.empty() ? 0 : Ph[0];
    E.Ts = fieldNum(Obj, "ts");
    E.Dur = fieldNum(Obj, "dur");
    E.Pid = static_cast<long>(fieldNum(Obj, "pid"));
    E.Tid = static_cast<long>(fieldNum(Obj, "tid"));
    Out.push_back(std::move(E));
  }
  return Out;
}

bool hasSpan(const std::vector<Event> &Es, const std::string &Name) {
  return std::any_of(Es.begin(), Es.end(), [&](const Event &E) {
    return E.Ph == 'X' && E.Name.compare(0, Name.size(), Name) == 0;
  });
}

/// Verifies that the complete spans of every (pid, tid) track properly
/// nest: two spans on one track either disjoint or one contains the other.
void expectSpansNest(const std::vector<Event> &Es) {
  std::map<std::pair<long, long>, std::vector<const Event *>> Tracks;
  for (const Event &E : Es)
    if (E.Ph == 'X')
      Tracks[{E.Pid, E.Tid}].push_back(&E);
  for (auto &[Track, Spans] : Tracks) {
    for (size_t A = 0; A < Spans.size(); ++A)
      for (size_t B = A + 1; B < Spans.size(); ++B) {
        uint64_t AB = Spans[A]->Ts, AE = AB + Spans[A]->Dur;
        uint64_t BB = Spans[B]->Ts, BE = BB + Spans[B]->Dur;
        bool Disjoint = AE <= BB || BE <= AB;
        bool AinB = BB <= AB && AE <= BE;
        bool BinA = AB <= BB && BE <= AE;
        EXPECT_TRUE(Disjoint || AinB || BinA)
            << "partial overlap on pid=" << Track.first
            << " tid=" << Track.second << ": '" << Spans[A]->Name << "' ["
            << AB << "," << AE << ") vs '" << Spans[B]->Name << "' [" << BB
            << "," << BE << ")";
      }
  }
}

/// RAII sink arming so a failing test cannot leak an enabled sink into
/// the next one.
struct SinkGuard {
  explicit SinkGuard(size_t Cap = 1 << 12) { trace::enable(Cap); }
  ~SinkGuard() { trace::disable(); }
};

//===----------------------------------------------------------------------===//
// Trace sink unit tests
//===----------------------------------------------------------------------===//

TEST(TraceSink, DisabledRecordsNothing) {
  trace::disable();
  trace::addInstant("ignored", "test");
  trace::addComplete("ignored", "test", 0, 1);
  { trace::Span S("ignored", "test"); }
  SinkGuard G; // enable() clears the buffer; nothing recorded before it
  EXPECT_EQ(trace::renderEvents(), "");
  std::string Doc = trace::renderJson();
  EXPECT_TRUE(isValidJson(Doc)) << Doc;
  EXPECT_TRUE(decodeEvents(Doc).empty());
}

TEST(TraceSink, RendersValidJsonAndEscapes) {
  SinkGuard G;
  trace::addInstant("quote \" backslash \\ ctrl \n done", "test");
  {
    trace::Span S("outer", "test");
    trace::Span T("inner", "test");
  }
  std::string Doc = trace::renderJson();
  EXPECT_TRUE(isValidJson(Doc)) << Doc;
  std::vector<Event> Es = decodeEvents(Doc);
  ASSERT_EQ(Es.size(), 3u);
  EXPECT_EQ(Es[0].Name, "quote \" backslash \\ ctrl \n done");
  expectSpansNest(Es);
}

TEST(TraceSink, SpansNestPerThreadAcrossThreads) {
  SinkGuard G;
  auto Work = [] {
    trace::Span Outer("outer", "test");
    for (int I = 0; I < 3; ++I)
      trace::Span Inner("inner " + std::to_string(I), "test");
  };
  std::thread T1(Work), T2(Work);
  Work();
  T1.join();
  T2.join();
  std::vector<Event> Es = decodeEvents(trace::renderJson());
  EXPECT_EQ(Es.size(), 12u);
  std::set<long> Tids;
  for (const Event &E : Es)
    Tids.insert(E.Tid);
  EXPECT_EQ(Tids.size(), 3u);
  expectSpansNest(Es);
}

TEST(TraceSink, RingBufferOverwritesOldest) {
  SinkGuard G(4);
  for (int I = 0; I < 10; ++I)
    trace::addInstant("ev " + std::to_string(I), "test");
  EXPECT_EQ(trace::droppedEvents(), 6u);
  std::vector<Event> Es = decodeEvents(trace::renderJson());
  ASSERT_EQ(Es.size(), 4u);
  // Oldest-first order of the survivors.
  EXPECT_EQ(Es[0].Name, "ev 6");
  EXPECT_EQ(Es[3].Name, "ev 9");
}

TEST(TraceSink, ExtractEventsRoundTripsAndRejectsGarbage) {
  SinkGuard G;
  trace::addInstant("only", "test");
  std::string Doc = trace::renderJson();
  std::string Inner = trace::extractEvents(Doc);
  EXPECT_NE(Inner.find("\"only\""), std::string::npos);
  // Round trip: a merged document carrying the extracted blob twice holds
  // two copies of the event.
  TempDir D;
  std::string Merged = D.Path + "/merged.json";
  ASSERT_TRUE(trace::writeJsonMerged(Merged, {Inner}));
  std::string MergedDoc = readWhole(Merged);
  EXPECT_TRUE(isValidJson(MergedDoc)) << MergedDoc;
  EXPECT_EQ(decodeEvents(MergedDoc).size(), 2u);
  // Non-trace content (a crashed worker's empty or torn file).
  EXPECT_EQ(trace::extractEvents(""), "");
  EXPECT_EQ(trace::extractEvents("not json at all"), "");
  EXPECT_EQ(trace::extractEvents("{\"traceEvents\":"), "");
  EXPECT_EQ(trace::extractEvents("{\"traceEvents\":[\n\n]}"), "");
}

//===----------------------------------------------------------------------===//
// PhaseProfile unit tests
//===----------------------------------------------------------------------===//

/// Spins the CPU for \p Ms wall milliseconds.
void spinFor(double Ms) {
  Timer T;
  while (T.elapsedMs() < Ms) {
  }
}

TEST(PhaseProfile, ExclusiveAccountingSubtractsNestedPhases) {
  Timer T;
  PhaseProfile P;
  P.push("a");
  spinFor(20);
  P.push("b"); // nested: b's time must not count toward a
  spinFor(20);
  P.pop();
  spinFor(5);
  P.pop();
  const double TotalUs = T.elapsedMs() * 1000.0;
  double AUs = P.wallUsOf("a");
  double BUs = P.wallUsOf("b");
  EXPECT_GE(AUs, 20 * 1000.0);
  EXPECT_GE(BUs, 18 * 1000.0);
  // Exclusive accounting keeps a at (total - b - other); inclusive
  // accounting would put a at ~total. The bound derives from the measured
  // times so scheduler preemption cannot trip it.
  EXPECT_LT(AUs, TotalUs - BUs + 0.1 * TotalUs);
}

TEST(PhaseProfile, ExportEmitsWallCpuAndRssPerPhase) {
  PhaseProfile P;
  P.push("work");
  spinFor(5);
  P.pop();
  Stats S;
  P.exportStats(S);
  EXPECT_GE(S.get("phase.work_us"), 4000u);
  EXPECT_GT(S.get("phase.work_cpu_us"), 0u); // spin burns CPU, not sleep
  EXPECT_GT(S.get("phase.work_rss_kb"), 0u);
  // The root phase is always present, so the counters tile the lifetime.
  EXPECT_NE(S.toJson().find("phase.other_us"), std::string::npos);
}

TEST(PhaseProfile, CountersTileTheProfileLifetime) {
  Timer T;
  PhaseProfile P;
  P.push("a");
  spinFor(15);
  P.push("b");
  spinFor(15);
  P.pop();
  P.pop();
  spinFor(10);
  Stats S;
  P.exportStats(S);
  const double TotalUs = T.elapsedMs() * 1000.0;
  const double SumUs = static_cast<double>(S.get("phase.a_us")) +
                       static_cast<double>(S.get("phase.b_us")) +
                       static_cast<double>(S.get("phase.other_us"));
  EXPECT_NEAR(SumUs, TotalUs, 0.05 * TotalUs);
}

//===----------------------------------------------------------------------===//
// In-process run: phase counters tile AnalysisResult::Millis
//===----------------------------------------------------------------------===//

TEST(PhaseStats, RunPhaseSumMatchesMillisWithinTolerance) {
  std::vector<AppSpec> Suite = benchmarkSuite();
  GeneratedApp A = generateApp(Suite[0]);
  TaintAnalysis TA(*A.P, AnalysisConfig::hybridUnbounded());
  AnalysisResult R = TA.run({A.Root});
  ASSERT_TRUE(R.Completed);
  // Sum every phase.*_us counter (skipping the _cpu_us/_rss_kb variants):
  // exclusive accounting makes them tile the profiled run exactly.
  double SumUs = 0;
  for (const char *Phase : {"analysis", "conststr", "pointsto", "persist_load",
                            "persist_store", "sdg", "slicing", "other"})
    SumUs += static_cast<double>(R.RunStats.get(std::string("phase.") + Phase +
                                                "_us"));
  const double TotalUs = R.Millis * 1000.0;
  EXPECT_GT(SumUs, 0);
  EXPECT_NEAR(SumUs, TotalUs, 0.05 * TotalUs)
      << "phase sum " << SumUs << "us vs run total " << TotalUs << "us";
  // Cold uncached run: no persist time to attribute.
  EXPECT_EQ(R.PersistLoadMillis, 0.0);
}

//===----------------------------------------------------------------------===//
// Worker stats recovery (supervise)
//===----------------------------------------------------------------------===//

TEST(RecoverWorkerStats, EmptyFileIsNormalNotAFailure) {
  Stats Merged;
  uint64_t Failures = 0;
  EXPECT_EQ(supervise::recoverWorkerStats("", "app", &Merged, Failures), 0u);
  EXPECT_EQ(Failures, 0u);
}

TEST(RecoverWorkerStats, ValidJsonMergesAndReturnsIssues) {
  Stats Merged;
  uint64_t Failures = 0;
  uint64_t Issues = supervise::recoverWorkerStats(
      "{\"cli.issues\":3,\"persist.hit\":2}", "app", &Merged, Failures);
  EXPECT_EQ(Issues, 3u);
  EXPECT_EQ(Failures, 0u);
  EXPECT_EQ(Merged.get("persist.hit"), 2u);
}

TEST(RecoverWorkerStats, MalformedJsonSurfacesButKeepsParsedCounters) {
  Stats Merged;
  uint64_t Failures = 0;
  // Torn write: the tail is cut mid-pair. The counters before the tear
  // must still merge — surfacing beats silently dropping the worker.
  uint64_t Issues = supervise::recoverWorkerStats(
      "{\"cli.issues\":5,\"persist.hit\":4,\"torn", "app", &Merged, Failures);
  EXPECT_EQ(Issues, 5u);
  EXPECT_EQ(Failures, 1u);
  EXPECT_EQ(Merged.get("persist.hit"), 4u);
  // A null merge target only counts the failure.
  uint64_t Failures2 = 0;
  supervise::recoverWorkerStats("garbage", "app", nullptr, Failures2);
  EXPECT_EQ(Failures2, 1u);
}

//===----------------------------------------------------------------------===//
// taj-cli --trace end to end
//===----------------------------------------------------------------------===//

TEST(CliTrace, ColdRunEmitsEveryMajorPhaseSpan) {
  TempDir D;
  const std::string Trace = D.Path + "/t.json";
  const std::string StatsPath = D.Path + "/s.json";
  int Exit = 0;
  runCli("--cache-dir=" + D.Path + "/cache --trace=" + Trace +
             " --stats-json=" + StatsPath + " " + TAJ_EXAMPLE_TAJ,
         Exit);
  EXPECT_EQ(Exit, 0);
  std::string Doc = readWhole(Trace);
  ASSERT_TRUE(isValidJson(Doc)) << Doc;
  std::vector<Event> Es = decodeEvents(Doc);
  for (const char *Phase : {"parse", "analysis", "conststr", "pointsto", "sdg",
                            "slicing", "report", "cache-store"})
    EXPECT_TRUE(hasSpan(Es, Phase)) << "missing span: " << Phase;
  expectSpansNest(Es);
  // The stats file carries the per-phase counters and the derived
  // persist-load attribution (cold: ~0).
  EXPECT_GT(statOf(StatsPath, "phase.pointsto_us"), 0);
  EXPECT_GT(statOf(StatsPath, "phase.slicing_us"), 0);
  EXPECT_GE(statOf(StatsPath, "phase.persist_load_ms"), 0);
  EXPECT_GE(statOf(StatsPath, "persist.touch_failed"), 0);
}

TEST(CliTrace, TracingDoesNotPerturbReportOutput) {
  TempDir D;
  int E0 = 0, E1 = 0;
  std::string Plain = runCli(std::string(TAJ_EXAMPLE_TAJ), E0);
  std::string Traced =
      runCli("--trace=" + D.Path + "/t.json " + TAJ_EXAMPLE_TAJ, E1);
  EXPECT_EQ(E0, 0);
  EXPECT_EQ(E1, 0);
  EXPECT_EQ(Plain, Traced);
}

TEST(CliTrace, WarmRunAttributesTimeToPersistLoad) {
  TempDir D;
  const std::string Cache = " --cache-dir=" + D.Path + "/cache ";
  int E0 = 0, E1 = 0;
  std::string Cold = runCli(Cache + TAJ_EXAMPLE_TAJ, E0);
  const std::string StatsPath = D.Path + "/warm.json";
  std::string Warm = runCli(Cache + "--stats-json=" + StatsPath + " " +
                                TAJ_EXAMPLE_TAJ,
                            E1);
  EXPECT_EQ(E0, 0);
  EXPECT_EQ(E1, 0);
  EXPECT_EQ(Cold, Warm); // warm starts may only accelerate, never alter
  EXPECT_GT(statOf(StatsPath, "persist.hit"), 0);
  EXPECT_GT(statOf(StatsPath, "phase.persist_load_us"), 0);
}

TEST(CliTrace, SupervisedBatchMergesEveryWorkerTimeline) {
  TempDir D;
  std::string List = D.Path + "/list.txt";
  {
    std::ofstream Out(List);
    Out << TAJ_EXAMPLE_TAJ << "\n" << TAJ_EXAMPLE_TAJ << "\n";
  }
  const std::string Trace = D.Path + "/batch.json";
  int Exit = 0;
  runCli("--batch=" + List + " --jobs=2 --trace=" + Trace, Exit);
  EXPECT_EQ(Exit, 0);
  std::string Doc = readWhole(Trace);
  ASSERT_TRUE(isValidJson(Doc)) << Doc;
  std::vector<Event> Es = decodeEvents(Doc);
  // Supervisor + two workers: three distinct pids on one timeline, and a
  // supervisor-side span bracketing each worker's lifetime.
  std::set<long> Pids;
  size_t WorkerSpans = 0;
  for (const Event &E : Es) {
    Pids.insert(E.Pid);
    if (E.Ph == 'X' && E.Name.compare(0, 8, "worker: ") == 0)
      ++WorkerSpans;
  }
  EXPECT_EQ(Pids.size(), 3u);
  EXPECT_EQ(WorkerSpans, 2u);
  // Each worker's own analysis spans made it into the merge.
  EXPECT_TRUE(hasSpan(Es, "pointsto"));
  expectSpansNest(Es);
}

TEST(CliTrace, GuardStopAppearsAsInstantEvent) {
  TempDir D;
  const std::string Trace = D.Path + "/t.json";
  int Exit = 0;
  runCli("--deadline-ms=0.001 --trace=" + Trace + " " + TAJ_EXAMPLE_TAJ,
         Exit);
  EXPECT_EQ(Exit, 2); // truncated, not failed
  std::string Doc = readWhole(Trace);
  ASSERT_TRUE(isValidJson(Doc)) << Doc;
  std::vector<Event> Es = decodeEvents(Doc);
  auto It = std::find_if(Es.begin(), Es.end(), [](const Event &E) {
    return E.Name.compare(0, 11, "guard-stop:") == 0;
  });
  ASSERT_NE(It, Es.end());
  EXPECT_EQ(It->Ph, 'i');
  EXPECT_NE(It->Name.find("deadline"), std::string::npos) << It->Name;
}

TEST(CliTrace, FailureExitStillWritesArtifacts) {
  TempDir D;
  std::string Bad = D.Path + "/bad.taj";
  {
    std::ofstream Out(Bad);
    Out << "class { this is not a taj program\n";
  }
  const std::string Trace = D.Path + "/t.json";
  const std::string StatsPath = D.Path + "/s.json";
  int Exit = 0;
  runCli("--trace=" + Trace + " --stats-json=" + StatsPath + " " + Bad, Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_GE(statOf(StatsPath, "cli.input_errors"), 1);
  std::string Doc = readWhole(Trace);
  EXPECT_TRUE(isValidJson(Doc)) << Doc;
}

TEST(CliTrace, UsageErrorWritesNoTrace) {
  TempDir D;
  const std::string Trace = D.Path + "/t.json";
  int Exit = 0;
  runCli("--trace=" + Trace + " --no-such-flag", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_FALSE(fs::exists(Trace));
}

} // namespace
