//===- tests/taint_test.cpp - End-to-end taint analysis tests ------------===//
//
// Scenario tests for the full TAJ pipeline: direct flows, sanitization,
// containers with constant keys, taint carriers, reflection (the paper's
// motivating example), context-sensitivity differences between hybrid/CS/CI,
// thread-handoff unsoundness of CS, and bounded-analysis behaviour.
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "ir/Verifier.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

/// Builds a program from app source over the builtin model library, runs
/// one configuration, returns the issues.
struct Pipeline {
  Program P;
  BuiltinLibrary Lib;
  MethodId Root = InvalidId;

  explicit Pipeline(const std::string &AppSource) {
    Lib = installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    bool Ok = parseTaj(P, AppSource, &Errors);
    EXPECT_TRUE(Ok) << (Errors.empty() ? "?" : Errors.front());
    std::vector<std::string> VErrors = verifyProgram(P);
    EXPECT_TRUE(VErrors.empty()) << (VErrors.empty() ? "" : VErrors.front());
    Root = synthesizeEntrypointDriver(P);
  }

  AnalysisResult run(AnalysisConfig C) {
    TaintAnalysis TA(P, std::move(C));
    return TA.run({Root});
  }

  /// Number of issues for one rule kind.
  static int countRule(const AnalysisResult &R, RuleMask Rule) {
    int N = 0;
    for (const Issue &I : R.Issues)
      N += (I.Rule & Rule) != 0;
    return N;
  }
};

TEST(Taint, DirectFlowIsReported) {
  Pipeline PL(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    w = resp.getWriter();
    w.println(t);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 1);
}

TEST(Taint, SanitizedFlowIsNotReported) {
  Pipeline PL(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    e = Encoder.encode(t);
    w = resp.getWriter();
    w.println(e);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 0);
}

TEST(Taint, RuleSpecificSanitizerKeepsOtherRules) {
  // encodeHtml cleans XSS but not SQLi: the query sink still fires.
  Pipeline PL(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response, db: Database): void [entry] {
    t = req.getParameter("name");
    e = Encoder.encodeHtml(t);
    w = resp.getWriter();
    w.println(e);
    q = db.executeQuery(e);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 0);
  EXPECT_EQ(Pipeline::countRule(R, rules::SQLI), 1);
}

TEST(Taint, FlowThroughHeapField) {
  Pipeline PL(R"(
class Holder extends Object {
  field v: String;
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    h = new Holder;
    h.v = t;
    u = h.v;
    w = resp.getWriter();
    w.println(u);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 1);
}

TEST(Taint, ConstantMapKeysAreDistinguished) {
  // Tainted under key "a"; the sink only reads key "b": no issue. This is
  // the §4.2.1 constant-key dictionary model.
  Pipeline PL(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    m = new HashMap;
    m.put("a", t);
    clean = "hello";
    m.put("b", clean);
    u = m.get("b");
    w = resp.getWriter();
    w.println(u);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 0);

  Pipeline PL2(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    m = new HashMap;
    m.put("a", t);
    u = m.get("a");
    w = resp.getWriter();
    w.println(u);
  }
}
)");
  AnalysisResult R2 = PL2.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R2, rules::XSS), 1);
}

TEST(Taint, TaintCarrierDetected) {
  // Tainted data wrapped in an object that flows to the sink (§4.1.1).
  Pipeline PL(R"(
class Internal extends Object {
  field s: String;
  method init(this: Internal, s: String): void { this.s = s; }
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    i = new Internal(t);
    w = resp.getWriter();
    w.println(i);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 1);
}

TEST(Taint, NestedTaintDepthBound) {
  // Taint three dereferences deep: found unbounded, dropped at depth 2.
  Pipeline PL(R"(
class L1 extends Object { field next: L2; }
class L2 extends Object { field next: L3; }
class L3 extends Object { field s: String; }
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    a = new L1;
    b = new L2;
    c = new L3;
    c.s = t;
    b.next = c;
    a.next = b;
    w = resp.getWriter();
    w.println(a);
  }
}
)");
  AnalysisResult Unbounded = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(Unbounded, rules::XSS), 1);

  AnalysisConfig Depth2 = AnalysisConfig::hybridUnbounded();
  Depth2.NestedTaintDepth = 2;
  AnalysisResult Bounded = PL.run(std::move(Depth2));
  EXPECT_EQ(Pipeline::countRule(Bounded, rules::XSS), 0)
      << "depth-2 bound must prune the depth-3 carrier";
}

/// The motivating example of Figure 1: reflection, containers, nested
/// taint. Exactly one of the three println calls is vulnerable.
const char *MotivatingSource = R"(
class Internal extends Object {
  field s: String;
  method init(this: Internal, s: String): void { this.s = s; }
}
class Motivating extends Object {
  method doGet(this: Motivating, req: Request, resp: Response): void [entry] {
    t1 = req.getParameter("fName");
    t2 = req.getParameter("lName");
    w = resp.getWriter();
    k = Class.forName("Motivating");
    idm = k.getMethod("id");
    m = new HashMap;
    m.put("fName", t1);
    m.put("lName", t2);
    d = "2009-06-15";
    m.put("date", d);
    a1 = new Object[];
    v1 = m.get("fName");
    a1[] = v1;
    s1 = idm.invoke(this, a1);
    a2 = new Object[];
    v2 = m.get("lName");
    e2 = Encoder.encode(v2);
    a2[] = e2;
    s2 = idm.invoke(this, a2);
    a3 = new Object[];
    v3 = m.get("date");
    a3[] = v3;
    s3 = idm.invoke(this, a3);
    i1 = new Internal(s1);
    i2 = new Internal(s2);
    i3 = new Internal(s3);
    w.println(i1);
    w.println(i2);
    w.println(i3);
  }
  method id(this: Motivating, s: String): String { return s; }
}
)";

TEST(Taint, MotivatingExampleHybridPrecision) {
  Pipeline PL(MotivatingSource);
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  // Only the i1 flow (BAD) must be flagged; i2 is sanitized, i3 untainted.
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 1)
      << "hybrid must distinguish the three reflective invocations";
}

TEST(Taint, ContextConfusionOnlyInCI) {
  // A shared identity helper: the tainted value goes to sinkA, the clean
  // one to sinkB. Context-insensitive slicing merges the two calls and
  // reports both; hybrid and CS report only the real one.
  Pipeline PL(R"(
class App extends Servlet {
  method id(this: App, x: String): String { return x; }
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    clean = "hello";
    a = this.id(t);
    b = this.id(clean);
    w = resp.getWriter();
    w.println(a);
    w.println(b);
  }
}
)");
  AnalysisResult H = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(H, rules::XSS), 1);

  AnalysisResult CS = PL.run(AnalysisConfig::cs());
  ASSERT_TRUE(CS.Completed);
  EXPECT_EQ(Pipeline::countRule(CS, rules::XSS), 1);

  AnalysisResult CI = PL.run(AnalysisConfig::ci());
  EXPECT_EQ(Pipeline::countRule(CI, rules::XSS), 2)
      << "CI merges call sites of the shared helper";
}

TEST(Taint, SequentialOrderingPrecisionOfCS) {
  // The reader entry runs before the writer entry, so in any sequential
  // execution the load cannot see the tainted store. Hybrid and CI use
  // flow-insensitive heap edges and report the impossible flow (FP); the
  // partially-flow-sensitive CS algorithm correctly omits it — the same
  // property that makes CS unsound once threads reorder execution.
  Pipeline PL(R"(
class Shared extends Object {
  static field data: String;
}
class ReaderFirst extends Servlet {
  method entryA(this: ReaderFirst, resp: Response): void [entry] {
    u = Shared.data;
    w = resp.getWriter();
    w.println(u);
  }
}
class WriterSecond extends Servlet {
  method entryB(this: WriterSecond, req: Request): void [entry] {
    t = req.getParameter("name");
    Shared.data = t;
  }
}
)");
  AnalysisResult H = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(H, rules::XSS), 1)
      << "hybrid's flow-insensitive heap edges report the stale flow";
  AnalysisResult CI = PL.run(AnalysisConfig::ci());
  EXPECT_GE(Pipeline::countRule(CI, rules::XSS), 1);
  AnalysisResult CS = PL.run(AnalysisConfig::cs());
  ASSERT_TRUE(CS.Completed);
  EXPECT_EQ(Pipeline::countRule(CS, rules::XSS), 0)
      << "CS respects statement order through the root driver";
}

TEST(Taint, ThreadHandoffMissedByCS) {
  // A worker thread stores tainted data into a shared static; another
  // entry reads it. The store happens textually/sequentially after the
  // read, so the partially-flow-sensitive CS algorithm misses it (its
  // multi-threaded unsoundness, §3.2); hybrid and CI report it.
  Pipeline PL(R"(
class Shared extends Object {
  static field data: String;
}
class Worker extends Thread {
  field input: String;
  method run(this: Worker): void {
    t = this.input;
    Shared.data = t;
  }
}
class Reader extends Servlet {
  method entryA(this: Reader, resp: Response): void [entry] {
    u = Shared.data;
    w = resp.getWriter();
    w.println(u);
  }
}
class Spawner extends Servlet {
  method entryB(this: Spawner, req: Request): void [entry] {
    t = req.getParameter("name");
    wk = new Worker;
    wk.input = t;
    wk.start();
  }
}
)");
  AnalysisResult H = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(H, rules::XSS), 1)
      << "hybrid's flow-insensitive heap edges catch the handoff";
  AnalysisResult CI = PL.run(AnalysisConfig::ci());
  EXPECT_GE(Pipeline::countRule(CI, rules::XSS), 1);
  AnalysisResult CS = PL.run(AnalysisConfig::cs());
  ASSERT_TRUE(CS.Completed);
  EXPECT_EQ(Pipeline::countRule(CS, rules::XSS), 0)
      << "CS misses the inter-thread flow (paper's false negatives)";
}

TEST(Taint, FlowLengthFilter) {
  // A long chain of copies through helper calls: the optimized flow-length
  // filter drops it.
  std::string Src = R"(
class App extends Servlet {
)";
  // Chain of 10 identity helpers -> flow length > 6.
  for (int K = 0; K < 10; ++K)
    Src += "  method h" + std::to_string(K) +
           "(this: App, x: String): String { return x; }\n";
  Src += R"(
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
)";
  Src += "    v0 = this.h0(t);\n";
  for (int K = 1; K < 10; ++K)
    Src += "    v" + std::to_string(K) + " = this.h" + std::to_string(K) +
           "(v" + std::to_string(K - 1) + ");\n";
  Src += R"(
    w = resp.getWriter();
    w.println(v9);
  }
}
)";
  Pipeline PL(Src);
  AnalysisResult Unbounded = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(Unbounded, rules::XSS), 1);

  AnalysisConfig Short = AnalysisConfig::hybridUnbounded();
  Short.MaxFlowLength = 6;
  AnalysisResult Filtered = PL.run(std::move(Short));
  EXPECT_EQ(Pipeline::countRule(Filtered, rules::XSS), 0)
      << "flows longer than the bound must be dropped";
}

TEST(Taint, ExceptionLeakModeled) {
  // §4.1.2: rendering a caught exception leaks internals.
  Pipeline PL(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    e = caught;
    m = e.getMessage();
    w = resp.getWriter();
    w.println(m);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_GE(Pipeline::countRule(R, rules::LEAK), 1);
}

TEST(Taint, CollectionFlow) {
  Pipeline PL(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    l = new List;
    l.add(t);
    i = 0;
    u = l.get(i);
    w = resp.getWriter();
    w.println(u);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 1);
}

TEST(Taint, DistinctCollectionInstancesAreSeparated) {
  // Unlimited-depth object sensitivity for collections (§3.1): contents of
  // two lists never mix.
  Pipeline PL(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    l1 = new List;
    l2 = new List;
    l1.add(t);
    clean = "hello";
    l2.add(clean);
    i = 0;
    u = l2.get(i);
    w = resp.getWriter();
    w.println(u);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 0);
}

TEST(Taint, StringBuilderTransfer) {
  Pipeline PL(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    sb = new StringBuilder;
    sb2 = sb.append(t);
    s = sb2.toString();
    w = resp.getWriter();
    w.println(s);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 1);
}

TEST(Taint, RecursionThroughIdentity) {
  // Summaries must converge on (mutually) recursive methods.
  Pipeline PL(R"(
class App extends Servlet {
  method rec(this: App, s: String, n: int): String {
    c = n < 1;
    if c goto base;
    m = n - 1;
    r = this.rec(s, m);
    return r;
    base:
    return s;
  }
  method ping(this: App, s: String, n: int): String {
    c = n < 1;
    if c goto base;
    m = n - 1;
    r = this.pong(s, m);
    return r;
    base:
    return s;
  }
  method pong(this: App, s: String, n: int): String {
    r = this.ping(s, n);
    return r;
  }
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    n = 3;
    a = this.rec(t, n);
    b = this.ping(t, n);
    w = resp.getWriter();
    w.println(a);
    w.println(b);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 2)
      << "taint must survive direct and mutual recursion";
  AnalysisResult CS = PL.run(AnalysisConfig::cs());
  ASSERT_TRUE(CS.Completed);
  EXPECT_EQ(Pipeline::countRule(CS, rules::XSS), 2);
}

TEST(Taint, RecursiveHeapStructure) {
  // A linked list built in a loop: the context-depth guard must keep the
  // pointer analysis terminating, and taint via the list must be found.
  Pipeline PL(R"(
class Node extends Object {
  field next: Node;
  field val: String;
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    head = new Node;
    head.val = t;
    i = 0;
    loop:
    c = i < 5;
    if c goto body;
    goto done;
    body:
    n = new Node;
    n.next = head;
    n.val = t;
    head = n;
    i = i + 1;
    goto loop;
    done:
    u = head.val;
    w = resp.getWriter();
    w.println(u);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_GE(Pipeline::countRule(R, rules::XSS), 1);
}

TEST(Taint, CarrierThroughCollectionInObject) {
  // Nested taint through a collection stored in a field (the §6.2.3
  // data-structure-bridging scenario).
  Pipeline PL(R"(
class Bag extends Object {
  field items: List;
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    l = new List;
    l.add(t);
    b = new Bag;
    b.items = l;
    w = resp.getWriter();
    w.println(b);
  }
}
)");
  // Taint sits at dereference depth 2 (bag -> list contents).
  AnalysisConfig Deep = AnalysisConfig::hybridUnbounded();
  Deep.NestedTaintDepth = 2;
  AnalysisResult R = PL.run(std::move(Deep));
  EXPECT_EQ(Pipeline::countRule(R, rules::XSS), 1);

  AnalysisConfig Shallow = AnalysisConfig::hybridUnbounded();
  Shallow.NestedTaintDepth = 1;
  AnalysisResult R1 = PL.run(std::move(Shallow));
  EXPECT_EQ(Pipeline::countRule(R1, rules::XSS), 0);
}

TEST(Taint, MaliciousFileExecution) {
  Pipeline PL(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, fs: FileSystem, rt: Runtime): void [entry] {
    t = req.getParameter("path");
    x = fs.open(t);
    rt.exec(t);
  }
}
)");
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_EQ(Pipeline::countRule(R, rules::FILE), 2);
}

} // namespace
