//===- tests/pointsto_test.cpp - Pointer analysis unit tests -------------===//
//
// Unit tests for the §3.1 pointer analysis: allocation-site points-to,
// field sensitivity, on-the-fly call-graph construction, virtual dispatch
// filtering, context policies (object sensitivity, call-string contexts
// for taint APIs/factories, collection cloning), reflection resolution,
// thread dispatch, JNDI/EJB bindings, and budgeted construction.
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "pointsto/BitSet.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <tuple>

#include <sys/wait.h>
#include <unistd.h>

using namespace taj;

namespace {

struct Solved {
  Program P;
  BuiltinLibrary Lib;
  MethodId Root = InvalidId;
  std::unique_ptr<ClassHierarchy> CHA;
  std::unique_ptr<PointsToSolver> Solver;

  explicit Solved(const std::string &Src, PointsToOptions Opts = {}) {
    Lib = installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    bool Ok = parseTaj(P, Src, &Errors);
    EXPECT_TRUE(Ok) << (Errors.empty() ? "?" : Errors.front());
    Root = synthesizeEntrypointDriver(P);
    P.indexStatements();
    CHA = std::make_unique<ClassHierarchy>(P);
    Solver = std::make_unique<PointsToSolver>(P, *CHA, std::move(Opts));
    Solver->solve({Root});
  }

  /// Points-to classes of (method, named local resolved by SSA scan is
  /// impractical) — instead: classes pointed to by the return value.
  std::set<std::string> returnClasses(const std::string &Cls,
                                      const std::string &Meth) {
    std::set<std::string> Out;
    MethodId M = P.findMethod(P.findClass(Cls), Meth);
    EXPECT_NE(M, InvalidId);
    for (CGNodeId N : Solver->callGraph().nodesOf(M)) {
      PKId Ret = Solver->pointerKeys().ret(N);
      for (IKId IK : Solver->pointsTo(Ret)) {
        ClassId C = Solver->instanceKeys().data(IK).Cls;
        if (C != InvalidId)
          Out.insert(std::string(P.Pool.str(P.Classes[C].Name)));
      }
    }
    return Out;
  }

  bool methodReached(const std::string &Cls, const std::string &Meth) {
    MethodId M = P.findMethod(P.findClass(Cls), Meth);
    return M != InvalidId && Solver->isMethodProcessed(M);
  }

  size_t contextsOf(const std::string &Cls, const std::string &Meth) {
    MethodId M = P.findMethod(P.findClass(Cls), Meth);
    return Solver->callGraph().nodesOf(M).size();
  }
};

TEST(PointsTo, AllocationSitesFlowToReturn) {
  Solved S(R"(
class Box extends Object {}
class App extends Servlet {
  method mk(this: App): Box { b = new Box; return b; }
  method doGet(this: App, req: Request): void [entry] {
    x = this.mk();
  }
}
)");
  EXPECT_EQ(S.returnClasses("App", "mk"), std::set<std::string>{"Box"});
}

TEST(PointsTo, VirtualDispatchFiltersByReceiverClass) {
  Solved S(R"(
class Animal extends Object {
  method noise(this: Animal): Animal { r = new Animal; return r; }
}
class Dog extends Animal {
  method noise(this: Dog): Dog { r = new Dog; return r; }
}
class Cat extends Animal {
  method noise(this: Cat): Cat { r = new Cat; return r; }
}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    d = new Dog;
    n = d.noise();
  }
}
)");
  // Only Dog.noise may be invoked: Cat.noise must not be reached.
  EXPECT_TRUE(S.methodReached("Dog", "noise"));
  EXPECT_FALSE(S.methodReached("Cat", "noise"));
  EXPECT_FALSE(S.methodReached("Animal", "noise"));
}

TEST(PointsTo, FieldSensitivitySeparatesFields) {
  Solved S(R"(
class Pair extends Object {
  field a: Object;
  field b: Object;
}
class Left extends Object {}
class Right extends Object {}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    p = new Pair;
    l = new Left;
    r = new Right;
    p.a = l;
    p.b = r;
    x = p.a;
    this.observe(x);
  }
  method observe(this: App, o: Object): Object { return o; }
}
)");
  // observe's return sees only Left, not Right.
  EXPECT_EQ(S.returnClasses("App", "observe"),
            std::set<std::string>{"Left"});
}

TEST(PointsTo, ObjectSensitivityClonesPerReceiver) {
  Solved S(R"(
class Holder extends Object {
  method self(this: Holder): Holder { return this; }
}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    h1 = new Holder;
    h2 = new Holder;
    a = h1.self();
    b = h2.self();
  }
}
)");
  // One context per receiver allocation site.
  EXPECT_EQ(S.contextsOf("Holder", "self"), 2u);
}

TEST(PointsTo, TaintApisGetCallSiteContexts) {
  // Two getParameter calls on the same receiver produce two distinct
  // synthetic instance keys (the paper's disambiguation, §3.1). Since the
  // source model is applied inline per call site, the two returned values
  // must differ.
  Solved S(R"(
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    t1 = req.getParameter("a");
    t2 = req.getParameter("b");
    x = this.one(t1);
    y = this.two(t2);
  }
  method one(this: App, s: String): String { return s; }
  method two(this: App, s: String): String { return s; }
}
)");
  // Each identity helper sees exactly one synthetic string key.
  MethodId One = S.P.findMethod(S.P.findClass("App"), "one");
  MethodId Two = S.P.findMethod(S.P.findClass("App"), "two");
  std::vector<IKId> P1 = S.Solver->pointsToMerged(One, 1);
  std::vector<IKId> P2 = S.Solver->pointsToMerged(Two, 1);
  ASSERT_EQ(P1.size(), 1u);
  ASSERT_EQ(P2.size(), 1u);
  EXPECT_NE(P1[0], P2[0]) << "per-call-site sources must not be merged";
}

TEST(PointsTo, CollectionsClonedPerInstance) {
  // Library collection contents are fully disambiguated per instance.
  Solved S(R"(
class A1 extends Object {}
class A2 extends Object {}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    l1 = new List;
    l2 = new List;
    o1 = new A1;
    o2 = new A2;
    l1.add(o1);
    l2.add(o2);
    i = 0;
    x = l1.get(i);
    r = this.observe(x);
  }
  method observe(this: App, o: Object): Object { return o; }
}
)");
  EXPECT_EQ(S.returnClasses("App", "observe"), std::set<std::string>{"A1"});
}

TEST(PointsTo, ReflectionResolvesConstantNames) {
  Solved S(R"(
class Target extends Object {
  method hit(this: Target): Target { r = new Target; return r; }
}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    k = Class.forName("Target");
    m = k.getMethod("hit");
    recv = new Target;
    a = new Object[];
    r = m.invoke(recv, a);
  }
}
)");
  EXPECT_TRUE(S.methodReached("Target", "hit"));
  // The reflective call's result flows back.
  MethodId DoGet = S.P.findMethod(S.P.findClass("App"), "doGet");
  bool SawTarget = false;
  for (const Method &M : S.P.Methods)
    (void)M;
  // invoke's dst is an intermediate; reaching Target.hit already proves
  // resolution, and the return-binding is covered by taint tests.
  SawTarget = S.methodReached("Target", "hit");
  EXPECT_TRUE(SawTarget);
  (void)DoGet;
}

TEST(PointsTo, UnresolvedReflectionIsCounted) {
  Solved S(R"(
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    name = req.getParameter("cls");
    k = Class.forName(name);
  }
}
)");
  EXPECT_GE(S.Solver->stats().get("reflection.unresolved"), 1u);
}

TEST(PointsTo, ThreadStartDispatchesToRun) {
  Solved S(R"(
class Worker extends Thread {
  method run(this: Worker): void {
    x = new Object;
  }
}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    w = new Worker;
    w.start();
  }
}
)");
  EXPECT_TRUE(S.methodReached("Worker", "run"));
}

TEST(PointsTo, JndiAndEjbBindings) {
  PointsToOptions Opts;
  Solved S(R"(
class MyHome extends EJBHome {}
class MyBean extends Object {
  method m2(this: MyBean): MyBean { r = new MyBean; return r; }
}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    ctx = new Context;
    ref = ctx.lookup("ejb/My");
    home = Context.narrow(ref);
    bean = home.create();
    r = bean.m2();
  }
}
)",
           [] {
             PointsToOptions O;
             return O;
           }());
  // Without bindings m2 is unreachable...
  EXPECT_FALSE(S.methodReached("MyBean", "m2"));

  // ...with descriptor bindings it dispatches into the bean.
  Program P2;
  installBuiltinLibrary(P2);
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseTaj(P2, R"(
class MyHome extends EJBHome {}
class MyBean extends Object {
  method m2(this: MyBean): MyBean { r = new MyBean; return r; }
}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    ctx = new Context;
    ref = ctx.lookup("ejb/My");
    home = Context.narrow(ref);
    bean = home.create();
    r = bean.m2();
  }
}
)",
                       &Errors));
  MethodId Root = synthesizeEntrypointDriver(P2);
  P2.indexStatements();
  ClassHierarchy CHA(P2);
  PointsToOptions O2;
  O2.JndiBindings["ejb/My"] = P2.findClass("MyHome");
  O2.EjbHomeToBean[P2.findClass("MyHome")] = P2.findClass("MyBean");
  PointsToSolver Solver(P2, CHA, std::move(O2));
  Solver.solve({Root});
  EXPECT_TRUE(Solver.isMethodProcessed(
      P2.findMethod(P2.findClass("MyBean"), "m2")));
}

TEST(PointsTo, BudgetTruncatesCallGraph) {
  std::string Src = "class App extends Servlet {\n";
  for (int K = 0; K < 50; ++K)
    Src += "  method m" + std::to_string(K) + "(this: App): void { " +
           (K + 1 < 50 ? "this.m" + std::to_string(K + 1) + "();" : "x = 1;") +
           " }\n";
  Src += R"(
  method doGet(this: App, req: Request): void [entry] { this.m0(); }
}
)";
  PointsToOptions Opts;
  Opts.MaxCallGraphNodes = 10;
  Solved S(Src, std::move(Opts));
  EXPECT_TRUE(S.Solver->budgetExhausted());
  EXPECT_LE(S.Solver->callGraph().numProcessed(), 10u);
  EXPECT_FALSE(S.methodReached("App", "m49"));
}

TEST(PointsTo, WhitelistExcludesClasses) {
  std::string Src = R"(
class Benign extends Object [whitelisted] {
  method work(this: Benign): void { x = new Object; }
}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    b = new Benign;
    b.work();
  }
}
)";
  PointsToOptions KeepOpts;
  Solved Keep(Src, std::move(KeepOpts));
  EXPECT_TRUE(Keep.methodReached("Benign", "work"));

  PointsToOptions DropOpts;
  DropOpts.ExcludeWhitelisted = true;
  Solved Drop(Src, std::move(DropOpts));
  EXPECT_FALSE(Drop.methodReached("Benign", "work"));
}

TEST(PointsTo, ConstStringsResolveThroughCopies) {
  Solved S(R"(
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    a = "lit";
    b = a;
    c = b;
    x = this.use(c);
  }
  method use(this: App, s: String): String { return s; }
}
)");
  // Find the use() call argument value: scan doGet for the Call with name
  // "use"; its Args[1]'s constant must resolve to "lit".
  MethodId DoGet = S.P.findMethod(S.P.findClass("App"), "doGet");
  bool Checked = false;
  for (const BasicBlock &BB : S.P.method(DoGet).Blocks)
    for (const Instruction &I : BB.Insts)
      if (I.Op == Opcode::Call &&
          S.P.Pool.str(I.CalleeName) == "use") {
        Symbol Lit = S.Solver->constStringOf(DoGet, I.Args[1]);
        ASSERT_NE(Lit, ~0u);
        EXPECT_EQ(S.P.Pool.str(Lit), "lit");
        Checked = true;
      }
  EXPECT_TRUE(Checked);
}

//===----------------------------------------------------------------------===//
// SparseBitSet representation
//===----------------------------------------------------------------------===//

TEST(SparseBitSet, InsertContainsAndAscendingIteration) {
  SparseBitSet S;
  EXPECT_TRUE(S.empty());
  const std::vector<uint32_t> Vals = {900, 3, 65, 3, 200, 0, 900, 64};
  uint32_t Inserted = 0;
  for (uint32_t V : Vals)
    Inserted += S.insert(V) ? 1 : 0;
  EXPECT_EQ(Inserted, 6u) << "duplicates must report no change";
  EXPECT_EQ(S.count(), 6u);
  for (uint32_t V : Vals)
    EXPECT_TRUE(S.contains(V));
  EXPECT_FALSE(S.contains(1));
  EXPECT_FALSE(S.contains(901));
  std::vector<uint32_t> Got(S.begin(), S.end());
  EXPECT_EQ(Got, (std::vector<uint32_t>{0, 3, 64, 65, 200, 900}));
  std::vector<uint32_t> Appended;
  S.appendTo(Appended);
  EXPECT_EQ(Appended, Got);
}

TEST(SparseBitSet, WordBoundariesKeepChunksSeparate) {
  // 63/64 and 127/128 straddle the 64-bit chunk boundaries: adjacent
  // values in distinct words must land in distinct chunks and still
  // iterate in order.
  SparseBitSet S;
  for (uint32_t V : {128u, 63u, 127u, 64u})
    EXPECT_TRUE(S.insert(V));
  EXPECT_EQ(S.wordIndices(), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(std::vector<uint32_t>(S.begin(), S.end()),
            (std::vector<uint32_t>{63, 64, 127, 128}));

  SparseBitSet T;
  EXPECT_TRUE(T.insert(64));
  EXPECT_FALSE(S == T);
  EXPECT_TRUE(S.containsAll(T));
  EXPECT_FALSE(T.containsAll(S));
  std::vector<uint32_t> NewBits;
  EXPECT_TRUE(T.unionWith(S, NewBits));
  EXPECT_EQ(NewBits, (std::vector<uint32_t>{63, 127, 128}));
  EXPECT_TRUE(S == T);
}

TEST(SparseBitSet, UnionEmitsNewBitsAscendingOnce) {
  SparseBitSet A, B;
  for (uint32_t V : {5u, 70u, 300u})
    A.insert(V);
  for (uint32_t V : {5u, 6u, 130u, 300u, 301u})
    B.insert(V);
  std::vector<uint32_t> NewBits;
  EXPECT_TRUE(A.unionWith(B, NewBits));
  EXPECT_EQ(NewBits, (std::vector<uint32_t>{6, 130, 301}));
  EXPECT_EQ(A.count(), 6u);
  // A second union is a no-op and must not touch the scratch vector.
  NewBits.clear();
  EXPECT_FALSE(A.unionWith(B, NewBits));
  EXPECT_TRUE(NewBits.empty());
}

//===----------------------------------------------------------------------===//
// Online cycle elimination
//===----------------------------------------------------------------------===//

/// Context-insensitive points-to of (method, value), keyed by stable
/// allocation-site signatures instead of raw IKIds so two independently
/// solved instances compare meaningfully.
std::multiset<std::tuple<uint32_t, StmtId, ClassId>>
mergedSigs(const Solved &S, MethodId M, ValueId V) {
  std::multiset<std::tuple<uint32_t, StmtId, ClassId>> Out;
  for (IKId IK : S.Solver->pointsToMerged(M, V)) {
    const InstanceKeyData &D = S.Solver->instanceKeys().data(IK);
    Out.insert({static_cast<uint32_t>(D.Kind), D.Site, D.Cls});
  }
  return Out;
}

TEST(PointsTo, CycleCollapsePreservesTheSolution) {
  // Mutual recursion threads each parameter back and forth, creating copy
  // cycles among the parameter and return-value keys.
  const char *Src = R"(
class Payload extends Object {}
class App extends Servlet {
  method ping(this: App, o: Object, d: Object): Object {
    r = this.pong(o, d);
    return r;
  }
  method pong(this: App, o: Object, d: Object): Object {
    r = this.ping(d, o);
    return r;
  }
  method doGet(this: App, req: Request): void [entry] {
    x = new Payload;
    y = new Object;
    z = this.ping(x, y);
  }
}
)";
  Solved On(Src); // cycle elimination defaults on
  PointsToOptions OffOpts;
  OffOpts.CycleElim = false;
  Solved Off(Src, std::move(OffOpts));

  EXPECT_GE(On.Solver->stats().get("pts.cycles_collapsed"), 1u);
  EXPECT_GE(On.Solver->stats().get("pts.nodes_merged"), 1u);
  EXPECT_EQ(Off.Solver->stats().get("pts.cycles_collapsed"), 0u);
  EXPECT_EQ(Off.Solver->stats().get("pts.nodes_merged"), 0u);

  // The collapsed solution must be exactly the reference solution, for
  // every method and every SSA value either engine knows about.
  for (MethodId M = 0; M < On.P.Methods.size(); ++M)
    for (ValueId V = 0; V < 12; ++V)
      EXPECT_EQ(mergedSigs(On, M, V), mergedSigs(Off, M, V))
          << On.P.methodName(M) << " value " << V;
}

TEST(PointsTo, MergedQueriesAreMemoized) {
  Solved S(R"(
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    x = new Object;
  }
}
)");
  MethodId DoGet = S.P.findMethod(S.P.findClass("App"), "doGet");
  const std::vector<IKId> &A = S.Solver->pointsToMerged(DoGet, 0);
  const std::vector<IKId> &B = S.Solver->pointsToMerged(DoGet, 0);
  EXPECT_EQ(&A, &B) << "repeat queries must return the cached vector";
  EXPECT_GE(S.Solver->stats().get("pts.merged_cache_hits"), 1u);
}

//===----------------------------------------------------------------------===//
// CLI byte-identity with and without cycle elimination
//===----------------------------------------------------------------------===//

struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/taj-pts-XXXXXX";
    const char *D = ::mkdtemp(Buf);
    EXPECT_NE(D, nullptr);
    Path = D ? D : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code Ec;
      std::filesystem::remove_all(Path, Ec);
    }
  }
};

/// Runs taj-cli capturing stdout only; \p EnvPrefix may carry "VAR=x "
/// assignments spliced in front of the binary.
std::string runCli(const std::string &EnvPrefix, const std::string &Args,
                   int &ExitCode) {
  std::string Cmd =
      EnvPrefix + std::string(TAJ_CLI_PATH) + " " + Args + " 2>/dev/null";
  FILE *P = ::popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int St = ::pclose(P);
  ExitCode = WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  return Out;
}

TEST(PointsTo, CliByteIdenticalWithAndWithoutCycleElim) {
  // Cycle elimination must be output-invisible: for each preset and thread
  // count, cold and warm runs with TAJ_CYCLE_ELIM=0 produce byte-identical
  // stdout (under --verify=full) to the default engine. The off run also
  // warm-restores artifacts the collapsing engine persisted.
  for (const char *Config : {"hybrid", "ci"}) {
    for (int Threads : {1, 8}) {
      TempDir DOn, DOff;
      const std::string Base = std::string("--config=") + Config +
                               " --threads=" + std::to_string(Threads) +
                               " --verify=full \"" + TAJ_EXAMPLE_TAJ + "\"";
      int EcOn = 0, EcOff = 0;
      const std::string ColdOn =
          runCli("", "--cache-dir=\"" + DOn.Path + "\" " + Base, EcOn);
      const std::string ColdOff = runCli(
          "TAJ_CYCLE_ELIM=0 ", "--cache-dir=\"" + DOff.Path + "\" " + Base,
          EcOff);
      EXPECT_EQ(EcOn, EcOff) << Config << " t=" << Threads;
      EXPECT_EQ(ColdOn, ColdOff) << Config << " t=" << Threads << " (cold)";

      const std::string WarmOn =
          runCli("", "--cache-dir=\"" + DOn.Path + "\" " + Base, EcOn);
      const std::string WarmOff = runCli(
          "TAJ_CYCLE_ELIM=0 ", "--cache-dir=\"" + DOff.Path + "\" " + Base,
          EcOff);
      EXPECT_EQ(WarmOn, ColdOn) << Config << " t=" << Threads << " (warm on)";
      EXPECT_EQ(WarmOff, ColdOn)
          << Config << " t=" << Threads << " (warm off)";

      // Cross-restore: the collapsing engine's artifact read back with
      // cycle elimination disabled.
      const std::string Cross = runCli(
          "TAJ_CYCLE_ELIM=0 ", "--cache-dir=\"" + DOn.Path + "\" " + Base,
          EcOff);
      EXPECT_EQ(Cross, ColdOn) << Config << " t=" << Threads << " (cross)";
    }
  }
}

TEST(PointsTo, CallGraphDotExport) {
  Solved S(R"(
class App extends Servlet {
  method helper(this: App): void { x = 1; }
  method doGet(this: App, req: Request): void [entry] {
    this.helper();
  }
}
)");
  std::string Dot = S.Solver->callGraph().toDot(S.P);
  EXPECT_NE(Dot.find("digraph callgraph"), std::string::npos);
  EXPECT_NE(Dot.find("App.helper"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

} // namespace
