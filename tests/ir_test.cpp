//===- tests/ir_test.cpp - IR, builder, printer, CHA unit tests ----------===//

#include "cha/ClassHierarchy.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

TEST(StringPool, InternsAndDeduplicates) {
  StringPool Pool;
  Symbol A = Pool.intern("hello");
  Symbol B = Pool.intern("world");
  Symbol A2 = Pool.intern("hello");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Pool.str(A), "hello");
  EXPECT_EQ(Pool.str(B), "world");
}

TEST(StringPool, EmptyStringIsSymbolZero) {
  StringPool Pool;
  EXPECT_EQ(Pool.intern(""), 0u);
}

TEST(StringPool, LookupWithoutIntern) {
  StringPool Pool;
  EXPECT_EQ(Pool.lookup("missing"), ~0u);
  Pool.intern("present");
  EXPECT_NE(Pool.lookup("present"), ~0u);
}

TEST(StringPool, StableViewsAcrossGrowth) {
  StringPool Pool;
  std::string_view First = Pool.str(Pool.intern("first"));
  for (int I = 0; I < 1000; ++I)
    Pool.intern("filler" + std::to_string(I));
  EXPECT_EQ(First, "first");
  EXPECT_EQ(Pool.str(Pool.lookup("first")), "first");
}

class IrFixture : public ::testing::Test {
protected:
  Program P;
  Builder B{P};
  ClassId Object = InvalidId, Widget = InvalidId;
  FieldId F = InvalidId;

  void SetUp() override {
    Object = B.makeClass("Object", InvalidId);
    Widget = B.makeClass("Widget", Object);
    F = B.makeField(Widget, "f", Type::ref(Object));
  }
};

TEST_F(IrFixture, ClassAndFieldLookup) {
  EXPECT_EQ(P.findClass("Object"), Object);
  EXPECT_EQ(P.findClass("Widget"), Widget);
  EXPECT_EQ(P.findClass("Nope"), InvalidId);
  EXPECT_EQ(P.findField(Widget, "f"), F);
  EXPECT_EQ(P.findField(Widget, "g"), InvalidId);
}

TEST_F(IrFixture, StraightLineMethodIsValidSSA) {
  MethodBuilder MB =
      B.startMethod(Widget, "id", {Type::ref(Widget), Type::ref(Object)},
                    Type::ref(Object));
  MB.emitRet(MB.param(1));
  MB.finish();
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

TEST_F(IrFixture, BranchingMethodGetsPhis) {
  // v = cond ? a : b; return v;
  MethodBuilder MB = B.startMethod(
      Widget, "pick",
      {Type::ref(Widget), Type::intTy(), Type::ref(Object), Type::ref(Object)},
      Type::ref(Object));
  ValueId Slot = MB.freshSlot();
  int32_t Then = MB.newBlock();
  int32_t Else = MB.newBlock();
  int32_t Join = MB.newBlock();
  MB.emitIf(MB.param(1), Then, Else);
  MB.setBlock(Then);
  MB.assign(Slot, MB.param(2));
  MB.emitGoto(Join);
  MB.setBlock(Else);
  MB.assign(Slot, MB.param(3));
  MB.emitGoto(Join);
  MB.setBlock(Join);
  MB.emitRet(Slot);
  MB.finish();

  std::vector<std::string> Errors = verifyProgram(P);
  ASSERT_TRUE(Errors.empty()) << Errors.front();

  // The join block must start with a phi.
  const Method &M = P.Methods[P.findMethod(Widget, "pick")];
  bool FoundPhi = false;
  for (const BasicBlock &BB : M.Blocks)
    for (const Instruction &I : BB.Insts)
      if (I.Op == Opcode::Phi) {
        FoundPhi = true;
        EXPECT_EQ(I.Args.size(), 2u);
      }
  EXPECT_TRUE(FoundPhi);
}

TEST_F(IrFixture, LoopSSA) {
  // i = 0; while (i < n) i = i + 1; return;
  MethodBuilder MB = B.startMethod(Widget, "loop",
                                   {Type::ref(Widget), Type::intTy()},
                                   Type::voidTy());
  ValueId I = MB.freshSlot();
  MB.assign(I, MB.constInt(0));
  int32_t Head = MB.newBlock();
  int32_t Body = MB.newBlock();
  int32_t Exit = MB.newBlock();
  MB.emitGoto(Head);
  MB.setBlock(Head);
  ValueId Cond = MB.emitBinop(BinopKind::Lt, I, MB.param(1));
  MB.emitIf(Cond, Body, Exit);
  MB.setBlock(Body);
  MB.assign(I, MB.emitBinop(BinopKind::Add, I, MB.constInt(1)));
  MB.emitGoto(Head);
  MB.setBlock(Exit);
  MB.emitRet();
  MB.finish();

  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

TEST_F(IrFixture, StatementIndexRoundTrips) {
  MethodBuilder MB =
      B.startMethod(Widget, "mk", {Type::ref(Widget)}, Type::ref(Widget));
  ValueId V = MB.emitNew(Widget);
  MB.emitStore(V, F, MB.param(0));
  MB.emitRet(V);
  MB.finish();
  P.indexStatements();
  ASSERT_GT(P.numStmts(), 0u);
  for (StmtId S = 0; S < P.numStmts(); ++S) {
    const StmtRef &R = P.stmtRef(S);
    EXPECT_EQ(P.stmtId(R.M, R.Block, R.Index), S);
  }
}

TEST_F(IrFixture, PrinterProducesText) {
  MethodBuilder MB =
      B.startMethod(Widget, "mk", {Type::ref(Widget)}, Type::ref(Widget));
  ValueId V = MB.emitNew(Widget);
  MB.emitStore(V, F, MB.param(0));
  MB.emitRet(V);
  MB.finish();
  std::string Text = printMethod(P, P.findMethod(Widget, "mk"));
  EXPECT_NE(Text.find("new Widget"), std::string::npos);
  EXPECT_NE(Text.find(".f ="), std::string::npos);
  EXPECT_NE(Text.find("return"), std::string::npos);
}

TEST_F(IrFixture, ClassHierarchyQueries) {
  ClassId Gadget = B.makeClass("Gadget", Widget);
  MethodBuilder MB =
      B.startMethod(Widget, "run", {Type::ref(Widget)}, Type::voidTy());
  MB.emitRet();
  MB.finish();

  ClassHierarchy CHA(P);
  EXPECT_TRUE(CHA.isSubclassOf(Gadget, Object));
  EXPECT_TRUE(CHA.isSubclassOf(Gadget, Widget));
  EXPECT_FALSE(CHA.isSubclassOf(Widget, Gadget));
  EXPECT_EQ(CHA.depth(Object), 0u);
  EXPECT_EQ(CHA.depth(Gadget), 2u);

  Symbol Run = P.Pool.intern("run");
  // Gadget inherits run from Widget.
  EXPECT_EQ(CHA.resolveVirtual(Gadget, Run), P.findMethod(Widget, "run"));
  EXPECT_EQ(CHA.resolveVirtual(Object, Run), InvalidId);

  // Subtype enumeration includes self and descendants.
  const std::vector<ClassId> &Subs = CHA.subtypes(Widget);
  EXPECT_EQ(Subs.size(), 2u);

  // Field resolution walks up the hierarchy.
  Symbol FName = P.Pool.intern("f");
  EXPECT_EQ(CHA.resolveField(Gadget, FName), F);
}

TEST_F(IrFixture, VerifierCatchesMissingTerminator) {
  MethodBuilder MB =
      B.startMethod(Widget, "bad", {Type::ref(Widget)}, Type::voidTy());
  MB.emitRet();
  MB.finish();
  Method &M = P.Methods[P.findMethod(Widget, "bad")];
  M.Blocks[0].Insts.pop_back(); // strip the return
  M.Blocks[0].Insts.push_back([] {
    Instruction I;
    I.Op = Opcode::ConstInt;
    I.Dst = 1;
    return I;
  }());
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_FALSE(Errors.empty());
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(10), 10u);
  for (int I = 0; I < 1000; ++I) {
    uint32_t V = R.range(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
  }
}

TEST(Budget, EnforcesLimit) {
  Budget Bd(3);
  EXPECT_TRUE(Bd.consume());
  EXPECT_TRUE(Bd.consume());
  EXPECT_TRUE(Bd.consume());
  EXPECT_FALSE(Bd.consume());
  EXPECT_TRUE(Bd.exhausted());
}

TEST(Budget, ZeroMeansUnbounded) {
  Budget Bd;
  for (int I = 0; I < 1000; ++I)
    EXPECT_TRUE(Bd.consume());
  EXPECT_FALSE(Bd.exhausted());
}

} // namespace
