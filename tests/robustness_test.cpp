//===- tests/robustness_test.cpp - Governed-run & degradation tests ------===//
//
// Exercises the run-governance layer: deterministic fault injection at every
// checkpoint, deadline expiry, memory ceilings, cooperative cancellation,
// node-budget truncation, guard statistics, and a malformed-input parser
// corpus. The invariant throughout: a governed run never crashes, and every
// issue it reports is one the unbounded run also reports (truncation only
// shrinks the result, per TAJ §6).
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "ir/Verifier.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "support/RunGuard.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <tuple>

using namespace taj;

namespace {

/// A small application with several distinct flows so truncation has
/// something to cut: two XSS flows, one SQLi flow, one sanitized flow.
const char *AppSource = R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response, db: Database): void [entry] {
    t1 = req.getParameter("name");
    t2 = req.getParameter("query");
    t3 = req.getParameter("safe");
    w = resp.getWriter();
    w.println(t1);
    s = this.shuffle(t2);
    db.executeQuery(s);
    e = Encoder.encode(t3);
    w.println(e);
  }
  method shuffle(this: App, x: String): String {
    return x;
  }
}
)";

struct Pipeline {
  Program P;
  MethodId Root = InvalidId;

  explicit Pipeline(const std::string &Src) {
    installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    bool Ok = parseTaj(P, Src, &Errors);
    EXPECT_TRUE(Ok) << (Errors.empty() ? "?" : Errors.front());
    std::vector<std::string> VErrors = verifyProgram(P);
    EXPECT_TRUE(VErrors.empty()) << (VErrors.empty() ? "" : VErrors.front());
    Root = synthesizeEntrypointDriver(P);
  }

  AnalysisResult run(AnalysisConfig C) {
    TaintAnalysis TA(P, std::move(C));
    return TA.run({Root});
  }
};

using FlowKey = std::tuple<StmtId, StmtId, RuleMask>;

std::set<FlowKey> flowSet(const AnalysisResult &R) {
  std::set<FlowKey> S;
  for (const Issue &I : R.Issues)
    S.insert({I.Source, I.Sink, I.Rule});
  return S;
}

/// A generated app large enough that the guard's amortized deadline/memory
/// poll (every 128 checkpoints) is guaranteed to run many times.
GeneratedApp largeApp() {
  AppSpec Spec;
  Spec.Name = "robustness-large";
  Spec.Seed = 7;
  Spec.Plants.TpDirect = 20;
  Spec.Plants.TpWrapped = 10;
  Spec.Plants.TpMap = 10;
  Spec.Plants.Sanitized = 10;
  Spec.Plants.FillerMethods = 400;
  Spec.Plants.LibFillerMethods = 100;
  return generateApp(Spec);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(Robustness, FaultInjectionSweepNeverCrashesAndStaysUnderapproximate) {
  Pipeline PL(AppSource);
  AnalysisResult Base = PL.run(AnalysisConfig::hybridUnbounded());
  ASSERT_FALSE(Base.degraded());
  uint64_t Total = Base.RunStats.get("guard.checkpoints");
  ASSERT_GT(Total, 0u);
  std::set<FlowKey> BaseFlows = flowSet(Base);
  ASSERT_GE(BaseFlows.size(), 2u);

  for (uint64_t N = 1; N <= Total + 2; ++N) {
    AnalysisConfig C = AnalysisConfig::hybridUnbounded();
    C.FailAtCheckpoint = N;
    AnalysisResult R = PL.run(std::move(C));
    SCOPED_TRACE("fail-at=" + std::to_string(N));
    if (N <= Total) {
      EXPECT_TRUE(R.degraded());
      const PhaseReport *PR = R.Status.firstDegraded();
      ASSERT_NE(PR, nullptr);
      EXPECT_EQ(PR->Reason, CutoffReason::FaultInjected);
      EXPECT_EQ(R.RunStats.get("guard.cutoff.fault-injected"), 1u);
    } else {
      // Injection point past the run's natural end: no degradation and
      // bit-identical results.
      EXPECT_FALSE(R.degraded());
      EXPECT_EQ(flowSet(R), BaseFlows);
    }
    // Monotonicity: truncation only removes flows, never invents them.
    for (const FlowKey &K : flowSet(R))
      EXPECT_TRUE(BaseFlows.count(K));
  }
}

TEST(Robustness, FaultAtFirstCheckpointSkipsDownstreamPhases) {
  Pipeline PL(AppSource);
  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.FailAtCheckpoint = 1;
  AnalysisResult R = PL.run(std::move(C));
  EXPECT_TRUE(R.degraded());
  EXPECT_EQ(R.Status.outcomeOf(RunPhase::PointerAnalysis),
            PhaseOutcome::Truncated);
  EXPECT_EQ(R.Status.outcomeOf(RunPhase::SdgBuild), PhaseOutcome::Skipped);
  EXPECT_EQ(R.Status.outcomeOf(RunPhase::Slicing), PhaseOutcome::Skipped);
  EXPECT_TRUE(R.Issues.empty());
  // The banner names the truncated phase and the reason.
  std::string S = R.Status.toString();
  EXPECT_NE(S.find("pointer-analysis"), std::string::npos);
  EXPECT_NE(S.find("fault-injected"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Deadline and memory limits
//===----------------------------------------------------------------------===//

TEST(Robustness, TinyDeadlineTruncatesLargeRunWithoutHanging) {
  GeneratedApp App = largeApp();
  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.DeadlineMs = 0.001; // expired by the guard's first poll
  TaintAnalysis TA(*App.P, std::move(C));
  AnalysisResult R = TA.run({App.Root});
  ASSERT_TRUE(R.degraded());
  const PhaseReport *PR = R.Status.firstDegraded();
  ASSERT_NE(PR, nullptr);
  EXPECT_EQ(PR->Reason, CutoffReason::Deadline);
  EXPECT_EQ(R.RunStats.get("guard.cutoff.deadline"), 1u);
}

TEST(Robustness, GenerousDeadlineDoesNotDegrade) {
  Pipeline PL(AppSource);
  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.DeadlineMs = 1e9;
  AnalysisResult R = PL.run(std::move(C));
  EXPECT_FALSE(R.degraded());
  EXPECT_GE(flowSet(R).size(), 2u);
}

TEST(Robustness, MemoryCeilingTruncatesLargeRun) {
  if (RunGuard::currentRssBytes() == 0)
    GTEST_SKIP() << "RSS measurement unavailable on this platform";
  GeneratedApp App = largeApp();
  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.MaxMemoryMb = 1; // any real process exceeds 1 MiB resident
  TaintAnalysis TA(*App.P, std::move(C));
  AnalysisResult R = TA.run({App.Root});
  ASSERT_TRUE(R.degraded());
  const PhaseReport *PR = R.Status.firstDegraded();
  ASSERT_NE(PR, nullptr);
  EXPECT_EQ(PR->Reason, CutoffReason::Memory);
}

//===----------------------------------------------------------------------===//
// Cancellation and node budget
//===----------------------------------------------------------------------===//

TEST(Robustness, ExternalCancellationStopsTheRun) {
  Pipeline PL(AppSource);
  RunGuard G;
  G.cancel(); // as if another thread requested cancellation up front
  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.ExternalGuard = &G;
  AnalysisResult R = PL.run(std::move(C));
  ASSERT_TRUE(R.degraded());
  const PhaseReport *PR = R.Status.firstDegraded();
  ASSERT_NE(PR, nullptr);
  EXPECT_EQ(PR->Reason, CutoffReason::Cancelled);
  EXPECT_TRUE(R.Issues.empty());
}

TEST(Robustness, NodeBudgetIsPhaseLocalSlicingStillRuns) {
  Pipeline PL(AppSource);
  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.MaxCallGraphNodes = 2;
  AnalysisResult R = PL.run(std::move(C));
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_TRUE(R.degraded());
  EXPECT_EQ(R.Status.outcomeOf(RunPhase::PointerAnalysis),
            PhaseOutcome::Truncated);
  const PhaseReport *PR = R.Status.firstDegraded();
  ASSERT_NE(PR, nullptr);
  EXPECT_EQ(PR->Reason, CutoffReason::NodeBudget);
  // Unlike a guard stop, the node budget does not exhaust the run: slicing
  // proceeds over the partial call graph (§6.1).
  EXPECT_EQ(R.Status.outcomeOf(RunPhase::SdgBuild), PhaseOutcome::Completed);
  EXPECT_EQ(R.Status.outcomeOf(RunPhase::Slicing), PhaseOutcome::Completed);
}

//===----------------------------------------------------------------------===//
// Guard statistics and environment knobs
//===----------------------------------------------------------------------===//

TEST(Robustness, GuardStatsExported) {
  Pipeline PL(AppSource);
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  EXPECT_GT(R.RunStats.get("guard.checkpoints"), 0u);
  EXPECT_EQ(R.RunStats.get("guard.cutoff.deadline"), 0u);

  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.FailAtCheckpoint = 5;
  AnalysisResult R2 = PL.run(std::move(C));
  EXPECT_EQ(R2.RunStats.get("guard.cutoff.fault-injected"), 1u);
  EXPECT_EQ(R2.RunStats.get("guard.cutoff_phase.pointer-analysis"), 1u);
}

TEST(Robustness, LimitsFromEnvOverlay) {
  setenv("TAJ_DEADLINE_MS", "250", 1);
  setenv("TAJ_MAX_MEMORY_MB", "64", 1);
  setenv("TAJ_FAIL_AT", "9", 1);
  RunGuard::Limits L = RunGuard::limitsFromEnv();
  EXPECT_DOUBLE_EQ(L.DeadlineMs, 250.0);
  EXPECT_EQ(L.MaxMemoryBytes, 64ull * 1024 * 1024);
  EXPECT_EQ(L.FailAtCheckpoint, 9u);
  // Explicit configuration beats the environment.
  RunGuard::Limits Explicit;
  Explicit.FailAtCheckpoint = 1000;
  EXPECT_EQ(RunGuard::limitsFromEnv(Explicit).FailAtCheckpoint, 1000u);
  unsetenv("TAJ_DEADLINE_MS");
  unsetenv("TAJ_MAX_MEMORY_MB");
  unsetenv("TAJ_FAIL_AT");
  // Base limits survive when the environment is silent.
  RunGuard::Limits Base;
  Base.DeadlineMs = 7;
  RunGuard::Limits L2 = RunGuard::limitsFromEnv(Base);
  EXPECT_DOUBLE_EQ(L2.DeadlineMs, 7.0);
  EXPECT_EQ(L2.FailAtCheckpoint, 0u);
}

TEST(Robustness, RunStatusToStringNamesEveryPhase) {
  Pipeline PL(AppSource);
  AnalysisResult R = PL.run(AnalysisConfig::hybridUnbounded());
  ASSERT_FALSE(R.degraded());
  ASSERT_EQ(R.Status.Phases.size(), 3u);
  std::string S = R.Status.toString();
  EXPECT_NE(S.find("pointer-analysis"), std::string::npos);
  EXPECT_NE(S.find("sdg-build"), std::string::npos);
  EXPECT_NE(S.find("slicing"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Malformed-input parser corpus
//===----------------------------------------------------------------------===//

/// Parsing bad input must fail with diagnostics, never crash or assert.
void expectParseFails(const std::string &Src) {
  Program P;
  installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  bool Ok = parseTaj(P, Src, &Errors);
  EXPECT_FALSE(Ok) << "accepted: " << Src.substr(0, 60);
  EXPECT_FALSE(Errors.empty());
}

TEST(Robustness, ParserRejectsMalformedInputsWithoutCrashing) {
  expectParseFails("class");
  expectParseFails("class {");
  expectParseFails("class A extends {}");
  expectParseFails("class A { method }");
  expectParseFails("class A { field x }");
  expectParseFails("class A { method m(: A): void { } }");
  expectParseFails("class A { method m(this: A): { x = } }");
  expectParseFails("class A [123] { }");
  expectParseFails("class A { method m(, ,): void { } }");
  expectParseFails("%%$$ @@!! not a program");
  expectParseFails(std::string(2000, '{'));
  expectParseFails("class A { method m(this: A): void { " +
                   std::string(500, '(') + " } }");
}

TEST(Robustness, ParserSurvivesTruncatedSources) {
  std::string Full = AppSource;
  for (size_t Len = 0; Len < Full.size(); Len += 7) {
    Program P;
    installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    // Any outcome is fine; the invariant is "no crash, no assert".
    parseTaj(P, Full.substr(0, Len), &Errors);
  }
}

TEST(Robustness, ClassWithUnregisteredNameRecovers) {
  // "class" followed by a non-identifier token: the parser must emit a
  // diagnostic and resynchronize instead of tripping an assertion.
  Program P;
  installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  bool Ok = parseTaj(P, "class 123 { }\nclass Good { }", &Errors);
  EXPECT_FALSE(Ok);
  EXPECT_FALSE(Errors.empty());
}

} // namespace
