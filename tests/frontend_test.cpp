//===- tests/frontend_test.cpp - Lexer and parser unit tests -------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

TEST(Lexer, BasicTokens) {
  std::vector<std::string> Errors;
  Lexer L("class Foo { x = y.m(\"lit\", 42); } // comment", Errors);
  EXPECT_TRUE(Errors.empty());
  const auto &T = L.tokens();
  ASSERT_GE(T.size(), 10u);
  EXPECT_TRUE(T[0].isIdent("class"));
  EXPECT_TRUE(T[1].isIdent("Foo"));
  EXPECT_TRUE(T[2].is(TokKind::LBrace));
  // Find the string literal and the int.
  bool SawStr = false, SawInt = false;
  for (const Token &Tok : T) {
    if (Tok.is(TokKind::String) && Tok.Text == "lit")
      SawStr = true;
    if (Tok.is(TokKind::Int) && Tok.IntVal == 42)
      SawInt = true;
  }
  EXPECT_TRUE(SawStr);
  EXPECT_TRUE(SawInt);
  EXPECT_TRUE(L.tokens().back().is(TokKind::Eof));
}

TEST(Lexer, TracksLines) {
  std::vector<std::string> Errors;
  Lexer L("a\nb\n  c", Errors);
  const auto &T = L.tokens();
  EXPECT_EQ(T[0].Line, 1u);
  EXPECT_EQ(T[1].Line, 2u);
  EXPECT_EQ(T[2].Line, 3u);
  EXPECT_EQ(T[2].Col, 3u);
}

TEST(Lexer, ReportsUnterminatedString) {
  std::vector<std::string> Errors;
  Lexer L("\"oops", Errors);
  EXPECT_FALSE(Errors.empty());
}

TEST(Lexer, NegativeIntegers) {
  std::vector<std::string> Errors;
  Lexer L("x = -7;", Errors);
  bool Saw = false;
  for (const Token &T : L.tokens())
    if (T.is(TokKind::Int) && T.IntVal == -7)
      Saw = true;
  EXPECT_TRUE(Saw);
}

/// A program with the root class and a couple of library methods, mimicking
/// a miniature model library.
const char *Prelude = R"(
class Object {}
class String extends Object [stringcarrier] {}
class Request extends Object [library] {
  method getParameter(this: Request, name: String): String
    [source(all), intrinsic(sourcereturn)];
}
class Writer extends Object [library] {
  method println(this: Writer, s: Object): void
    [sink(xss), intrinsic(sinkconsume)];
}
)";

Program parseOk(const std::string &Body) {
  Program P;
  std::vector<std::string> Errors;
  bool Ok = parseTaj(P, std::string(Prelude) + Body, &Errors);
  EXPECT_TRUE(Ok) << (Errors.empty() ? "?" : Errors.front());
  return P;
}

TEST(Parser, ParsesPrelude) {
  Program P = parseOk("");
  EXPECT_NE(P.findClass("Object"), InvalidId);
  ClassId Str = P.findClass("String");
  ASSERT_NE(Str, InvalidId);
  EXPECT_TRUE(P.cls(Str).is(classflags::StringCarrier));
  ClassId Req = P.findClass("Request");
  MethodId GetParam = P.findMethod(Req, "getParameter");
  ASSERT_NE(GetParam, InvalidId);
  EXPECT_EQ(P.method(GetParam).SourceRules, rules::All);
  EXPECT_EQ(P.method(GetParam).Intr, Intrinsic::SourceReturn);
  ClassId Wr = P.findClass("Writer");
  MethodId Println = P.findMethod(Wr, "println");
  ASSERT_NE(Println, InvalidId);
  EXPECT_EQ(P.method(Println).SinkRules, rules::XSS);
  EXPECT_EQ(P.method(Println).SinkParamMask, 0b10u);
}

TEST(Parser, SimpleServlet) {
  Program P = parseOk(R"(
class MyServlet extends Object {
  field cache: String;
  method doGet(this: MyServlet, req: Request, w: Writer): void [entry] {
    t = req.getParameter("name");
    this.cache = t;
    u = this.cache;
    w.println(u);
  }
}
)");
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
  ClassId C = P.findClass("MyServlet");
  MethodId M = P.findMethod(C, "doGet");
  ASSERT_NE(M, InvalidId);
  EXPECT_TRUE(P.method(M).IsEntry);
  // The body contains a store and a load of the cache field.
  int Stores = 0, Loads = 0, Calls = 0;
  for (const BasicBlock &BB : P.method(M).Blocks)
    for (const Instruction &I : BB.Insts) {
      Stores += I.Op == Opcode::Store;
      Loads += I.Op == Opcode::Load;
      Calls += I.Op == Opcode::Call;
    }
  EXPECT_EQ(Stores, 1);
  EXPECT_EQ(Loads, 1);
  EXPECT_EQ(Calls, 2);
}

TEST(Parser, ControlFlowWithLabelsAndLoops) {
  Program P = parseOk(R"(
class Looper extends Object {
  method run(this: Looper, n: int): int {
    i = 0;
    head:
    c = i < n;
    if c goto body;
    goto done;
    body:
    i = i + 1;
    goto head;
    done:
    return i;
  }
}
)");
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
  const Method &M = P.method(P.findMethod(P.findClass("Looper"), "run"));
  bool SawPhi = false;
  for (const BasicBlock &BB : M.Blocks)
    for (const Instruction &I : BB.Insts)
      SawPhi |= I.Op == Opcode::Phi;
  EXPECT_TRUE(SawPhi) << "loop variable needs a phi";
}

TEST(Parser, StaticFieldsAndCalls) {
  Program P = parseOk(R"(
class Holder extends Object {
  static field shared: String;
  static method put(v: String): void {
    Holder.shared = v;
  }
  static method get(): String {
    x = Holder.shared;
    return x;
  }
}
)");
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
  ClassId C = P.findClass("Holder");
  const Method &Put = P.method(P.findMethod(C, "put"));
  EXPECT_TRUE(Put.IsStatic);
  bool SawStaticStore = false;
  for (const BasicBlock &BB : Put.Blocks)
    for (const Instruction &I : BB.Insts)
      SawStaticStore |= I.Op == Opcode::StaticStore;
  EXPECT_TRUE(SawStaticStore);
}

TEST(Parser, NewWithConstructor) {
  Program P = parseOk(R"(
class Box extends Object {
  field v: Object;
  method init(this: Box, x: Object): void {
    this.v = x;
  }
}
class Use extends Object {
  method mk(this: Use, x: Object): Box {
    b = new Box(x);
    return b;
  }
}
)");
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
  const Method &Mk = P.method(P.findMethod(P.findClass("Use"), "mk"));
  bool SawSpecial = false;
  for (const BasicBlock &BB : Mk.Blocks)
    for (const Instruction &I : BB.Insts)
      SawSpecial |=
          I.Op == Opcode::Call && I.CKind == CallKind::Special;
  EXPECT_TRUE(SawSpecial);
}

TEST(Parser, ArraysAndBinops) {
  Program P = parseOk(R"(
class ArrayUser extends Object {
  method go(this: ArrayUser, s: String): String {
    a = new String[];
    a[] = s;
    x = a[];
    return x;
  }
}
)");
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

TEST(Parser, ReportsUnknownLocal) {
  Program P;
  std::vector<std::string> Errors;
  bool Ok = parseTaj(P,
                     std::string(Prelude) +
                         "class Bad extends Object {\n"
                         "  method f(this: Bad): void { x = y; }\n}",
                     &Errors);
  EXPECT_FALSE(Ok);
  EXPECT_FALSE(Errors.empty());
}

TEST(Parser, ReportsUnknownType) {
  Program P;
  std::vector<std::string> Errors;
  bool Ok = parseTaj(
      P, "class A { method f(this: A, x: Missing): void { return; } }",
      &Errors);
  EXPECT_FALSE(Ok);
}

TEST(Parser, LocalReassignmentDoesNotAlias) {
  Program P = parseOk(R"(
class Alias extends Object {
  method f(this: Alias, a: String, b: String): String {
    x = a;
    x = b;
    return a;
  }
}
)");
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
  // "return a" must still return parameter 1, not b.
  const Method &M = P.method(P.findMethod(P.findClass("Alias"), "f"));
  bool SawValueReturn = false;
  for (const BasicBlock &BB : M.Blocks)
    for (const Instruction &I : BB.Insts)
      if (I.Op == Opcode::Return && !I.Args.empty()) {
        SawValueReturn = true;
        EXPECT_EQ(I.Args[0], 1);
      }
  EXPECT_TRUE(SawValueReturn);
}

TEST(Parser, CaughtAndThrow) {
  Program P = parseOk(R"(
class Exception extends Object [library] {
  method getMessage(this: Exception): String
    [source(leak), intrinsic(getmessage)];
}
class Thrower extends Object {
  method f(this: Thrower, w: Writer): void {
    e = caught;
    m = e.getMessage();
    w.println(m);
    throw e;
  }
}
)");
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

} // namespace
