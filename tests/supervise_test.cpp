//===- tests/supervise_test.cpp - Process-level supervision --------------===//
//
// The supervisor is the non-cooperative backstop to RunGuard: a batch must
// survive workers that crash, hang, or are OOM-killed between checkpoints.
// These tests pin down that contract:
//  - wait-status classification (clean / truncated / error / crashed /
//    timeout / oom) over crafted statuses and real worker deaths;
//  - the retry ladder: a crashed or hung app re-runs once, degraded, and
//    recovers; with the budget spent it is a terminal error;
//  - the JSONL journal round-trips, tolerates torn tails, and drives
//    --resume (including after the supervisor itself is SIGKILLed);
//  - --jobs=1 and --jobs=N stdout is byte-identical to the in-process
//    --jobs=0 batch loop;
//  - workers die with the supervisor (no orphans);
//  - numeric CLI flags range-check instead of silently wrapping.
//
//===----------------------------------------------------------------------===//

#include "supervise/Journal.h"
#include "supervise/Supervisor.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <csignal>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace taj;
using namespace taj::supervise;
namespace fs = std::filesystem;

namespace {

/// Self-cleaning scratch directory for one test.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/taj-supervise-XXXXXX";
    const char *D = ::mkdtemp(Buf);
    EXPECT_NE(D, nullptr);
    Path = D ? D : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code Ec;
      fs::remove_all(Path, Ec);
    }
  }
};

std::string readWhole(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeWhole(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

/// Runs taj-cli through a shell (so env-var prefixes work), capturing
/// stdout+stderr merged.
std::string runCli(const std::string &Args, int &ExitCode) {
  // Args may carry leading "VAR=x" env prefixes; splice the binary in
  // after any such assignments.
  size_t Split = 0;
  while (true) {
    size_t SpaceAt = Args.find(' ', Split);
    std::string Tok = Args.substr(Split, SpaceAt - Split);
    if (Tok.find('=') == std::string::npos || Tok.compare(0, 2, "--") == 0)
      break;
    if (SpaceAt == std::string::npos) {
      Split = Args.size();
      break;
    }
    Split = SpaceAt + 1;
  }
  std::string Cmd = Args.substr(0, Split) + std::string(TAJ_CLI_PATH) + " " +
                    Args.substr(Split) + " 2>&1";
  FILE *P = ::popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int St = ::pclose(P);
  ExitCode = WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  return Out;
}

/// Writes a batch list of \p Copies lines naming the example app.
std::string writeList(const TempDir &T, int Copies) {
  std::string Path = T.Path + "/list.txt";
  std::string Text;
  for (int I = 0; I < Copies; ++I)
    Text += std::string(TAJ_EXAMPLE_TAJ) + "\n";
  writeWhole(Path, Text);
  return Path;
}

/// Extracts an integer counter from a --stats-json file ("missing" = -1).
long long statOf(const std::string &JsonPath, const std::string &Name) {
  std::string J = readWhole(JsonPath);
  std::string Needle = "\"" + Name + "\":";
  size_t At = J.find(Needle);
  if (At == std::string::npos)
    return -1;
  return std::atoll(J.c_str() + At + Needle.size());
}

int exitedStatus(int Code) { return Code << 8; } // WIFEXITED encoding
int signaledStatus(int Sig) { return Sig; }      // WIFSIGNALED encoding

//===----------------------------------------------------------------------===//
// Wait-status classification
//===----------------------------------------------------------------------===//

TEST(Classify, ExitCodesMapToClasses) {
  EXPECT_EQ(classifyWaitStatus(exitedStatus(0), false), ExitClass::Clean);
  EXPECT_EQ(classifyWaitStatus(exitedStatus(2), false), ExitClass::Truncated);
  EXPECT_EQ(classifyWaitStatus(exitedStatus(1), false), ExitClass::Error);
  EXPECT_EQ(classifyWaitStatus(exitedStatus(WorkerOomExitCode), false),
            ExitClass::Oom);
  EXPECT_EQ(classifyWaitStatus(exitedStatus(WorkerSpawnFailExitCode), false),
            ExitClass::Error);
  // A normal exit is never attributed to the watchdog.
  EXPECT_EQ(classifyWaitStatus(exitedStatus(0), true), ExitClass::Clean);
}

TEST(Classify, SignalsMapToClasses) {
  EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGSEGV), false),
            ExitClass::Crashed);
  EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGABRT), false),
            ExitClass::Crashed);
  // An unsolicited SIGKILL is the kernel OOM killer's signature...
  EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGKILL), false), ExitClass::Oom);
  // ...but the watchdog owns every signal it delivered itself.
  EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGKILL), true),
            ExitClass::Timeout);
  EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGTERM), true),
            ExitClass::Timeout);
  EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGTERM), false),
            ExitClass::Crashed);
  // RLIMIT_CPU's SIGXCPU is morally a timeout either way.
  EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGXCPU), false),
            ExitClass::Timeout);
}

TEST(Classify, NamesRoundTripAndContributionsRank) {
  for (ExitClass C :
       {ExitClass::Clean, ExitClass::Truncated, ExitClass::Error,
        ExitClass::Crashed, ExitClass::Timeout, ExitClass::Oom}) {
    ExitClass Back;
    ASSERT_TRUE(exitClassFromName(exitClassName(C), Back));
    EXPECT_EQ(Back, C);
  }
  ExitClass Junk;
  EXPECT_FALSE(exitClassFromName("melted", Junk));
  EXPECT_EQ(exitContribution(ExitClass::Clean), 0);
  EXPECT_EQ(exitContribution(ExitClass::Truncated), 2);
  EXPECT_EQ(exitContribution(ExitClass::Error), 1);
  EXPECT_EQ(exitContribution(ExitClass::Crashed), 1);
  EXPECT_EQ(exitContribution(ExitClass::Timeout), 1);
  EXPECT_EQ(exitContribution(ExitClass::Oom), 1);
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

TEST(JournalTest, LineRoundTripsIncludingEscapes) {
  Attempt A;
  A.Line = 7;
  A.App = "web \"quoted\" \\backslash.taj other.taj";
  A.ConfigFp = "deadbeefdeadbeef";
  A.AttemptNo = 2;
  A.Class = ExitClass::Crashed;
  A.Signal = SIGSEGV;
  A.Exit = -1;
  A.Issues = 42;
  A.Terminal = true;

  Attempt B;
  ASSERT_TRUE(Journal::fromLine(Journal::toLine(A), B));
  EXPECT_EQ(B.Line, A.Line);
  EXPECT_EQ(B.App, A.App);
  EXPECT_EQ(B.ConfigFp, A.ConfigFp);
  EXPECT_EQ(B.AttemptNo, A.AttemptNo);
  EXPECT_EQ(B.Class, A.Class);
  EXPECT_EQ(B.Signal, A.Signal);
  EXPECT_EQ(B.Exit, A.Exit);
  EXPECT_EQ(B.Issues, A.Issues);
  EXPECT_EQ(B.Terminal, A.Terminal);
}

TEST(JournalTest, LoadSkipsTornAndForeignLines) {
  TempDir T;
  std::string Path = T.Path + "/j.jsonl";
  Attempt A;
  A.Line = 0;
  A.App = "a.taj";
  A.ConfigFp = "00";
  A.Class = ExitClass::Clean;
  A.Exit = 0;
  A.Terminal = true;
  Attempt B = A;
  B.Line = 1;
  B.App = "b.taj";
  // Good, foreign, good, torn tail (the supervisor died mid-write).
  writeWhole(Path, Journal::toLine(A) + "\nnot json at all\n" +
                       Journal::toLine(B) + "\n{\"line\":2,\"app\":\"c.t");
  std::vector<Attempt> Got = Journal::load(Path);
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].App, "a.taj");
  EXPECT_EQ(Got[1].App, "b.taj");
}

TEST(JournalTest, MissingFileLoadsEmpty) {
  EXPECT_TRUE(Journal::load("/nonexistent/taj/journal.jsonl").empty());
}

TEST(JournalTest, AppendedRecordsLoadBack) {
  TempDir T;
  std::string Path = T.Path + "/j.jsonl";
  {
    Journal J(Path);
    for (unsigned I = 0; I < 3; ++I) {
      Attempt A;
      A.Line = I;
      A.App = "app" + std::to_string(I) + ".taj";
      A.ConfigFp = "fp";
      A.AttemptNo = I + 1;
      A.Class = ExitClass::Timeout;
      A.Signal = SIGKILL;
      A.Terminal = (I == 2);
      J.append(A);
    }
  }
  std::vector<Attempt> Got = Journal::load(Path);
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[2].App, "app2.taj");
  EXPECT_EQ(Got[2].Class, ExitClass::Timeout);
  EXPECT_TRUE(Got[2].Terminal);
  EXPECT_FALSE(Got[0].Terminal);
}

//===----------------------------------------------------------------------===//
// Hard-limit derivation
//===----------------------------------------------------------------------===//

TEST(HardLimits, DerivedFromCooperativeLimits) {
  RunGuard::Limits Coop;
  Coop.DeadlineMs = 1000;
  Coop.MaxMemoryBytes = 100ull * 1024 * 1024;
  SupervisorConfig C;
  deriveHardLimits(Coop, C);
  EXPECT_DOUBLE_EQ(C.HardDeadlineMs, 3000);
  EXPECT_EQ(C.HardMemoryBytes, 200ull * 1024 * 1024);
  EXPECT_EQ(C.CpuLimitSec, (3000 / 1000 + 1) * 16u);
}

TEST(HardLimits, UnlimitedStaysUnlimited) {
  SupervisorConfig C;
  deriveHardLimits(RunGuard::Limits(), C);
  EXPECT_DOUBLE_EQ(C.HardDeadlineMs, 0);
  EXPECT_EQ(C.HardMemoryBytes, 0u);
  EXPECT_EQ(C.CpuLimitSec, 0u);
}

TEST(HardLimits, EnvironmentOverrides) {
  ::setenv("TAJ_HARD_DEADLINE_MS", "500", 1);
  ::setenv("TAJ_HARD_MAX_MEMORY_MB", "64", 1);
  ::setenv("TAJ_WATCHDOG_GRACE_MS", "100", 1);
  RunGuard::Limits Coop;
  Coop.DeadlineMs = 1000;
  SupervisorConfig C;
  deriveHardLimits(Coop, C);
  ::unsetenv("TAJ_HARD_DEADLINE_MS");
  ::unsetenv("TAJ_HARD_MAX_MEMORY_MB");
  ::unsetenv("TAJ_WATCHDOG_GRACE_MS");
  EXPECT_DOUBLE_EQ(C.HardDeadlineMs, 500);
  EXPECT_EQ(C.HardMemoryBytes, 64ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(C.GraceMs, 100);
}

//===----------------------------------------------------------------------===//
// CLI flag hygiene (range checks, dependent flags)
//===----------------------------------------------------------------------===//

TEST(CliFlags, OutOfRangeValuesAreUsageErrorsNotWraps) {
  int Exit = 0;
  // 5e9 > UINT32_MAX: must refuse, not wrap to a tiny budget.
  std::string Out = runCli("--budget=5e9 x.taj", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("out of range"), std::string::npos) << Out;
  Out = runCli("--budget=1.5 x.taj", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("out of range"), std::string::npos) << Out;
  Out = runCli("--jobs=2000 --batch=x", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("out of range"), std::string::npos) << Out;
  Out = runCli("--max-memory-mb=1e17 x.taj", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("out of range"), std::string::npos) << Out;
  // Malformed input keeps the long-standing message.
  Out = runCli("--budget=abc x.taj", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("non-negative number"), std::string::npos) << Out;
}

TEST(CliFlags, SupervisionFlagsRequireTheirContext) {
  int Exit = 0;
  std::string Out = runCli("--jobs=1 x.taj", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("--jobs requires --batch"), std::string::npos) << Out;
  Out = runCli("--batch=x --retry=2", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("require --jobs>=1"), std::string::npos) << Out;
  Out = runCli("--batch=x --jobs=1 --resume", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("--resume requires --journal"), std::string::npos) << Out;
}

//===----------------------------------------------------------------------===//
// Supervised batch end-to-end
//===----------------------------------------------------------------------===//

TEST(Supervised, JobsOneIsByteIdenticalToInProcess) {
  TempDir T;
  std::string List = writeList(T, 3);
  int E0 = 0, E1 = 0, E2 = 0;
  std::string Ref = runCli("--batch=" + List + " --jobs=0", E0);
  std::string J1 = runCli("--batch=" + List + " --jobs=1 --cache-dir=" +
                              T.Path + "/cc",
                          E1);
  std::string J2 = runCli("--batch=" + List + " --jobs=2 --cache-dir=" +
                              T.Path + "/cc",
                          E2);
  EXPECT_EQ(E0, 0);
  EXPECT_EQ(E1, 0);
  EXPECT_EQ(E2, 0);
  EXPECT_EQ(Ref, J1);
  EXPECT_EQ(Ref, J2);
}

TEST(Supervised, CooperativeTruncationPassesThrough) {
  TempDir T;
  std::string List = writeList(T, 1);
  int E0 = 0, E1 = 0;
  // --fail-at trips RunGuard cooperatively: the worker exits 2 on its own
  // and the supervisor must not retry or reclassify it.
  std::string Ref = runCli("--batch=" + List + " --fail-at=5", E0);
  std::string Got = runCli("--batch=" + List + " --fail-at=5 --jobs=1", E1);
  EXPECT_EQ(E0, 2);
  EXPECT_EQ(E1, 2);
  EXPECT_EQ(Ref, Got);
}

TEST(Supervised, CrashedWorkerRetriesAndRecovers) {
  TempDir T;
  std::string List = writeList(T, 1);
  std::string Journal = T.Path + "/j.jsonl";
  std::string StatsPath = T.Path + "/s.json";
  int Exit = 0;
  std::string Out =
      runCli("--batch=" + List + " --jobs=1 --crash-at=1 --retry=1 --journal=" +
                 Journal + " --stats-json=" + StatsPath,
             Exit);
  EXPECT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("exit=0 issues=3"), std::string::npos) << Out;
  EXPECT_EQ(statOf(StatsPath, "supervise.spawned"), 2);
  EXPECT_EQ(statOf(StatsPath, "supervise.crashed"), 1);
  EXPECT_EQ(statOf(StatsPath, "supervise.retried"), 1);
  EXPECT_EQ(statOf(StatsPath, "supervise.recovered"), 1);
  EXPECT_EQ(statOf(StatsPath, "cli.issues"), 3);

  std::vector<Attempt> Recs = Journal::load(Journal);
  ASSERT_EQ(Recs.size(), 2u);
  EXPECT_EQ(Recs[0].Class, ExitClass::Crashed);
  EXPECT_EQ(Recs[0].Signal, SIGABRT);
  EXPECT_FALSE(Recs[0].Terminal);
  EXPECT_EQ(Recs[1].Class, ExitClass::Clean);
  EXPECT_EQ(Recs[1].AttemptNo, 2u);
  EXPECT_EQ(Recs[1].Issues, 3u);
  EXPECT_TRUE(Recs[1].Terminal);
}

TEST(Supervised, ExhaustedRetriesAreTerminalErrors) {
  TempDir T;
  std::string List = writeList(T, 1);
  int Exit = 0;
  std::string Out =
      runCli("--batch=" + List + " --jobs=1 --crash-at=1 --retry=0", Exit);
  EXPECT_EQ(Exit, 1) << Out;
  EXPECT_NE(Out.find("(crashed: signal 6)"), std::string::npos) << Out;
}

TEST(Supervised, UnsolicitedSigkillClassifiesAsOom) {
  TempDir T;
  std::string List = writeList(T, 1);
  std::string StatsPath = T.Path + "/s.json";
  int Exit = 0;
  // TAJ_CRASH_SIGNAL=9 makes --crash-at raise SIGKILL: the deterministic
  // stand-in for the kernel OOM killer.
  std::string Out = runCli("TAJ_CRASH_SIGNAL=9 --batch=" + List +
                               " --jobs=1 --crash-at=1 --retry=0" +
                               " --stats-json=" + StatsPath,
                           Exit);
  EXPECT_EQ(Exit, 1) << Out;
  EXPECT_NE(Out.find("(oom)"), std::string::npos) << Out;
  EXPECT_EQ(statOf(StatsPath, "supervise.oom_killed"), 1);
}

TEST(Supervised, HungWorkerHitsWatchdogTimeout) {
  TempDir T;
  std::string List = writeList(T, 1);
  std::string StatsPath = T.Path + "/s.json";
  int Exit = 0;
  std::string Out =
      runCli("TAJ_HARD_DEADLINE_MS=300 TAJ_WATCHDOG_GRACE_MS=200 --batch=" +
                 List + " --jobs=1 --hang-at=1 --retry=0 --stats-json=" +
                 StatsPath,
             Exit);
  EXPECT_EQ(Exit, 1) << Out;
  EXPECT_NE(Out.find("(timeout)"), std::string::npos) << Out;
  EXPECT_EQ(statOf(StatsPath, "supervise.timed_out"), 1);
}

TEST(Supervised, HungWorkerRecoversOnRetry) {
  TempDir T;
  std::string List = writeList(T, 1);
  int Exit = 0;
  // The retry strips --hang-at (fault injection is a first-attempt
  // scenario), so attempt 2 completes under the degraded config.
  std::string Out =
      runCli("TAJ_HARD_DEADLINE_MS=300 TAJ_WATCHDOG_GRACE_MS=200 --batch=" +
                 List + " --jobs=1 --hang-at=1 --retry=1",
             Exit);
  EXPECT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("exit=0 issues=3"), std::string::npos) << Out;
}

TEST(Supervised, ResumeSkipsJournaledTerminalOutcomes) {
  TempDir T;
  std::string List = writeList(T, 2);
  std::string Journal = T.Path + "/j.jsonl";
  std::string StatsPath = T.Path + "/s.json";
  int Exit = 0;
  runCli("--batch=" + List + " --jobs=1 --journal=" + Journal, Exit);
  ASSERT_EQ(Exit, 0);
  std::string Out = runCli("--batch=" + List + " --jobs=1 --journal=" +
                               Journal + " --resume --stats-json=" + StatsPath,
                           Exit);
  EXPECT_EQ(Exit, 0) << Out;
  EXPECT_EQ(statOf(StatsPath, "supervise.resumed_skips"), 2);
  EXPECT_EQ(statOf(StatsPath, "supervise.spawned"), 0);
  // The skipped apps still print their framing, flagged as resumed, and
  // their recorded outcome still feeds the exit code.
  EXPECT_NE(Out.find("exit=0 issues=3 (resumed)"), std::string::npos) << Out;
}

TEST(Supervised, ResumeDistrustsOtherConfigsJournals) {
  TempDir T;
  std::string List = writeList(T, 1);
  std::string Journal = T.Path + "/j.jsonl";
  std::string StatsPath = T.Path + "/s.json";
  int Exit = 0;
  runCli("--batch=" + List + " --jobs=1 --journal=" + Journal, Exit);
  ASSERT_EQ(Exit, 0);
  // Same list, different budget: the fingerprint differs, so the journal
  // must not satisfy --resume.
  runCli("--batch=" + List + " --jobs=1 --budget=1000 --journal=" + Journal +
             " --resume --stats-json=" + StatsPath,
         Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_EQ(statOf(StatsPath, "supervise.resumed_skips"), 0);
  EXPECT_EQ(statOf(StatsPath, "supervise.spawned"), 1);
}

TEST(Supervised, ResumeAfterSupervisorKilledMidBatch) {
  TempDir T;
  std::string List = writeList(T, 2);
  std::string Journal = T.Path + "/j.jsonl";
  std::string StatsPath = T.Path + "/s.json";

  // Start a supervisor in its own process group and SIGKILL the whole
  // group as soon as the journal holds the first terminal record.
  pid_t Sup = ::fork();
  ASSERT_GE(Sup, 0);
  if (Sup == 0) {
    ::setpgid(0, 0);
    std::string Cmd = std::string(TAJ_CLI_PATH) + " --batch=" + List +
                      " --jobs=1 --journal=" + Journal + " > " + T.Path +
                      "/run1.out 2>&1";
    ::execl("/bin/sh", "sh", "-c", Cmd.c_str(), (char *)nullptr);
    ::_exit(127);
  }
  ::setpgid(Sup, Sup); // both sides set it: no fork/exec race
  bool SawTerminal = false;
  for (int I = 0; I < 2000 && !SawTerminal; ++I) {
    SawTerminal =
        readWhole(Journal).find("\"terminal\":true") != std::string::npos;
    if (!SawTerminal)
      ::usleep(5 * 1000);
  }
  EXPECT_TRUE(SawTerminal);
  ::kill(-Sup, SIGKILL);
  int St = 0;
  ::waitpid(Sup, &St, 0);

  // The journal survives the kill (possibly with a torn tail) and --resume
  // finishes only the remaining work.
  int Exit = 0;
  std::string Out = runCli("--batch=" + List + " --jobs=1 --journal=" +
                               Journal + " --resume --stats-json=" + StatsPath,
                           Exit);
  EXPECT_EQ(Exit, 0) << Out;
  long long Skips = statOf(StatsPath, "supervise.resumed_skips");
  long long Spawned = statOf(StatsPath, "supervise.spawned");
  EXPECT_GE(Skips, 1);
  EXPECT_EQ(Skips + Spawned, 2);
  // Both apps end clean with the full issue set either way.
  size_t First = Out.find("exit=0 issues=3");
  ASSERT_NE(First, std::string::npos) << Out;
  EXPECT_NE(Out.find("exit=0 issues=3", First + 1), std::string::npos) << Out;
}

TEST(Supervised, WorkersDieWithTheSupervisor) {
  TempDir T;
  std::string List = writeList(T, 1);
  // The unique cache path marks our worker's cmdline in /proc.
  std::string Marker = T.Path + "/orphan-cc";

  pid_t Sup = ::fork();
  ASSERT_GE(Sup, 0);
  if (Sup == 0) {
    std::string Cmd = "exec " + std::string(TAJ_CLI_PATH) + " --batch=" +
                      List + " --jobs=1 --hang-at=1 --retry=0 --cache-dir=" +
                      Marker + " > /dev/null 2>&1";
    ::execl("/bin/sh", "sh", "-c", Cmd.c_str(), (char *)nullptr);
    ::_exit(127);
  }

  auto WorkerAlive = [&] {
    for (const auto &DE : fs::directory_iterator("/proc")) {
      std::string Name = DE.path().filename().string();
      if (Name.empty() || !std::isdigit(static_cast<unsigned char>(Name[0])))
        continue;
      if (std::to_string(Sup) == Name)
        continue; // the supervisor itself also carries the marker
      std::string CmdLine = readWhole((DE.path() / "cmdline").string());
      if (CmdLine.find(Marker) != std::string::npos)
        return true;
    }
    return false;
  };

  // Wait for the (hung) worker to appear, kill ONLY the supervisor, and
  // expect PR_SET_PDEATHSIG to reap the worker — no orphan survives.
  bool Appeared = false;
  for (int I = 0; I < 2000 && !Appeared; ++I) {
    Appeared = WorkerAlive();
    if (!Appeared)
      ::usleep(5 * 1000);
  }
  ASSERT_TRUE(Appeared);
  ::kill(Sup, SIGKILL);
  int St = 0;
  ::waitpid(Sup, &St, 0);
  bool Gone = false;
  for (int I = 0; I < 600 && !Gone; ++I) {
    Gone = !WorkerAlive();
    if (!Gone)
      ::usleep(5 * 1000);
  }
  EXPECT_TRUE(Gone);
}

} // namespace
