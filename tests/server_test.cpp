//===- tests/server_test.cpp - Analysis server ----------------------------===//
//
// The analysis server must be a transparent accelerator: a request served
// by a warm pool worker returns byte-for-byte the report a local run would
// print, under the same exit contract, while the daemon enforces admission
// control, per-request watchdogs, the degraded-config retry ladder and a
// clean SIGTERM drain. These tests pin that contract down:
//  - the framed wire protocol round-trips and rejects malformed frames;
//  - the in-memory hot tier (persist::MemCache) LRU-evicts by bytes,
//    rejects oversized entries, and layers over the disk cache (promotion
//    on disk hits, mem-only operation without a cache dir);
//  - the shared option set round-trips through its canonical encoding and
//    the retry degradation strips fault injection;
//  - the new flags obey the dependency matrix (usage errors, not silent
//    acceptance);
//  - server responses are byte-identical to local runs, including eight
//    concurrent clients checked against a `--batch` baseline;
//  - admission control answers `busy` when the queue is full, the
//    watchdog turns a hung worker into a `timeout` answer plus a
//    respawned worker, and a crashed request recovers through the retry
//    ladder with a journaled non-terminal attempt;
//  - SIGTERM drains: in-flight work resolved, artifacts written, exit 0,
//    later connections cleanly refused;
//  - SIGPIPE on a reader-less stdout is an error exit, not a signal death.
//
//===----------------------------------------------------------------------===//

#include "persist/Cache.h"
#include "persist/MemCache.h"
#include "server/Client.h"
#include "server/Protocol.h"
#include "server/Service.h"
#include "supervise/Journal.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace taj;
using namespace taj::server;
namespace fs = std::filesystem;

namespace {

/// Self-cleaning scratch directory for one test.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/taj-server-XXXXXX";
    const char *D = ::mkdtemp(Buf);
    EXPECT_NE(D, nullptr);
    Path = D ? D : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code Ec;
      fs::remove_all(Path, Ec);
    }
  }
};

std::string readWhole(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeWhole(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

/// Runs taj-cli through a shell, capturing stdout+stderr merged.
std::string runCli(const std::string &Args, int &ExitCode) {
  std::string Cmd = std::string(TAJ_CLI_PATH) + " " + Args + " 2>&1";
  FILE *P = ::popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int St = ::pclose(P);
  ExitCode = WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  return Out;
}

/// Extracts an integer counter from a --stats-json file (missing = -1).
long long statOf(const std::string &JsonPath, const std::string &Name) {
  std::string J = readWhole(JsonPath);
  std::string Needle = "\"" + Name + "\":";
  size_t At = J.find(Needle);
  if (At == std::string::npos)
    return -1;
  return std::atoll(J.c_str() + At + Needle.size());
}

/// Forks and execs taj-cli with \p Args, stdout/stderr redirected to files
/// ("" keeps the test's own), with optional extra environment. Returns the
/// child pid.
pid_t spawnCli(const std::vector<std::string> &Args,
               const std::string &OutPath, const std::string &ErrPath,
               const std::vector<std::pair<std::string, std::string>> &Env =
                   {}) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  if (!OutPath.empty()) {
    int Fd = ::open(OutPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd < 0 || ::dup2(Fd, STDOUT_FILENO) < 0)
      ::_exit(126);
    ::close(Fd);
  }
  if (!ErrPath.empty()) {
    int Fd = ::open(ErrPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd < 0 || ::dup2(Fd, STDERR_FILENO) < 0)
      ::_exit(126);
    ::close(Fd);
  }
  for (const auto &E : Env)
    ::setenv(E.first.c_str(), E.second.c_str(), 1);
  std::vector<std::string> Store;
  Store.push_back(TAJ_CLI_PATH);
  for (const std::string &A : Args)
    Store.push_back(A);
  std::vector<char *> Argv;
  for (std::string &S : Store)
    Argv.push_back(S.data());
  Argv.push_back(nullptr);
  ::execv(TAJ_CLI_PATH, Argv.data());
  ::_exit(127);
}

/// Blocks for \p Pid; exited children return their code, signaled ones
/// -100-signo (so assertions can tell the two apart).
int waitExit(pid_t Pid) {
  int St = 0;
  pid_t R;
  do {
    R = ::waitpid(Pid, &St, 0);
  } while (R < 0 && errno == EINTR);
  if (R < 0)
    return -1;
  if (WIFEXITED(St))
    return WEXITSTATUS(St);
  return WIFSIGNALED(St) ? -100 - WTERMSIG(St) : -1;
}

/// Polls until something accepts connections on \p Path (sanitized CI
/// builds start slowly).
bool waitForSocket(const std::string &Path, int TimeoutMs = 20000) {
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  for (int Waited = 0; Waited < TimeoutMs; Waited += 20) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd >= 0) {
      bool Up = ::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                          sizeof(Addr)) == 0;
      ::close(Fd);
      if (Up)
        return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// One daemon instance for a test: started via fork+exec, drained with
/// SIGTERM, SIGKILLed as a last resort on teardown.
struct ServerHandle {
  pid_t Pid = -1;
  std::string Sock;

  bool start(const TempDir &T, std::vector<std::string> ExtraArgs,
             const std::vector<std::pair<std::string, std::string>> &Env =
                 {}) {
    Sock = T.Path + "/srv.sock";
    std::vector<std::string> Args = {"--serve=" + Sock};
    Args.insert(Args.end(), ExtraArgs.begin(), ExtraArgs.end());
    Pid = spawnCli(Args, "", T.Path + "/server.err", Env);
    return Pid > 0 && waitForSocket(Sock);
  }

  /// SIGTERM drain; returns the daemon's exit code.
  int stop() {
    if (Pid <= 0)
      return -1;
    ::kill(Pid, SIGTERM);
    int Code = waitExit(Pid);
    Pid = -1;
    return Code;
  }

  ~ServerHandle() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      waitExit(Pid);
    }
  }
};

/// Bare connected socket to \p Path, for clients that misbehave on
/// purpose (-1 on failure).
int rawConnect(const std::string &Path) {
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// One wire-ready request frame shipping \p AppPath inline, the way a
/// real client sends it.
std::string requestFrameFor(const std::string &AppPath) {
  Request Req;
  AppSource S;
  S.Name = AppPath;
  S.Inline = true;
  S.Content = readWhole(AppPath);
  Req.Sources.push_back(std::move(S));
  std::string Frame;
  EXPECT_TRUE(appendFrame(Frame, serializeRequest(Req)));
  return Frame;
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTrips) {
  Request R;
  R.Sources.push_back({"a.taj", true, "class A extends Object {}\n"});
  R.Sources.push_back({"b.taj", false, ""});
  R.Overrides = {"--config=cs", "--budget=100"};
  std::vector<uint8_t> Wire = serializeRequest(R);
  Request Back;
  ASSERT_TRUE(deserializeRequest(Wire.data(), Wire.size(), Back));
  ASSERT_EQ(Back.Sources.size(), 2u);
  EXPECT_EQ(Back.Sources[0].Name, "a.taj");
  EXPECT_TRUE(Back.Sources[0].Inline);
  EXPECT_EQ(Back.Sources[0].Content, R.Sources[0].Content);
  EXPECT_FALSE(Back.Sources[1].Inline);
  EXPECT_EQ(Back.Overrides, R.Overrides);
}

TEST(Protocol, ResponseRoundTrips) {
  Response R;
  R.St = Status::Truncated;
  R.Exit = 2;
  R.Issues = 7;
  R.Report = "report bytes\nwith \"quotes\" and \x01 binary\n";
  R.StatsJson = "{\"cli.issues\":7}";
  R.TraceBlob = "{\"name\":\"x\"}";
  R.Message = "msg";
  std::vector<uint8_t> Wire = serializeResponse(R);
  Response Back;
  ASSERT_TRUE(deserializeResponse(Wire.data(), Wire.size(), Back));
  EXPECT_EQ(Back.St, Status::Truncated);
  EXPECT_EQ(Back.Exit, 2);
  EXPECT_EQ(Back.Issues, 7u);
  EXPECT_EQ(Back.Report, R.Report);
  EXPECT_EQ(Back.StatsJson, R.StatsJson);
  EXPECT_EQ(Back.TraceBlob, R.TraceBlob);
  EXPECT_EQ(Back.Message, R.Message);
}

TEST(Protocol, RejectsMalformedPayloads) {
  Request R;
  R.Sources.push_back({"a.taj", true, "text"});
  std::vector<uint8_t> Wire = serializeRequest(R);
  Request Back;
  // Every truncation of a valid payload must be rejected, not crash.
  for (size_t Len = 0; Len < Wire.size(); ++Len)
    EXPECT_FALSE(deserializeRequest(Wire.data(), Len, Back)) << Len;
  // Trailing garbage is a protocol error too.
  Wire.push_back(0);
  EXPECT_FALSE(deserializeRequest(Wire.data(), Wire.size(), Back));

  Response Resp;
  Resp.Report = "r";
  std::vector<uint8_t> RW = serializeResponse(Resp);
  Response RBack;
  for (size_t Len = 0; Len < RW.size(); ++Len)
    EXPECT_FALSE(deserializeResponse(RW.data(), Len, RBack)) << Len;
  // An out-of-range status byte is rejected.
  RW[0] = 200;
  EXPECT_FALSE(deserializeResponse(RW.data(), RW.size(), RBack));
}

TEST(Protocol, FramesRoundTripAndRejectCorruption) {
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  std::vector<uint8_t> Payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(writeFrame(P[1], Payload));
  std::vector<uint8_t> Back;
  ASSERT_TRUE(readFrame(P[0], Back));
  EXPECT_EQ(Back, Payload);

  // Bad magic: rejected.
  const uint8_t BadHdr[8] = {'X', 'X', 'X', 'X', 1, 0, 0, 0};
  ASSERT_TRUE(writeFull(P[1], BadHdr, sizeof(BadHdr)));
  EXPECT_FALSE(readFrame(P[0], Back));

  // Oversized announced length: rejected before any allocation attempt.
  uint8_t Huge[8];
  const uint32_t Magic = FrameMagic;
  std::memcpy(Huge, &Magic, 4);
  const uint32_t TooBig = MaxFrameBytes + 1;
  std::memcpy(Huge + 4, &TooBig, 4);
  ASSERT_TRUE(writeFull(P[1], Huge, sizeof(Huge)));
  EXPECT_FALSE(readFrame(P[0], Back));

  // EOF mid-frame: rejected, not blocked on.
  const uint8_t Short[8] = {'T', 'A', 'J', '1', 100, 0, 0, 0};
  ASSERT_TRUE(writeFull(P[1], Short, sizeof(Short)));
  ::close(P[1]);
  EXPECT_FALSE(readFrame(P[0], Back));
  ::close(P[0]);
}

TEST(Protocol, AppendFrameMatchesTheWireFormat) {
  // The daemon's buffered sender builds frames in memory; the bytes must
  // be exactly what writeFrame puts on the wire.
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  std::vector<uint8_t> Payload = {42, 0, 7};
  std::string Buf = "pre"; // appended, not overwritten
  ASSERT_TRUE(appendFrame(Buf, Payload));
  ASSERT_TRUE(writeFull(P[1], Buf.data() + 3, Buf.size() - 3));
  std::vector<uint8_t> Back;
  ASSERT_TRUE(readFrame(P[0], Back));
  EXPECT_EQ(Back, Payload);

  // Empty payloads frame as a bare header.
  std::string Empty;
  ASSERT_TRUE(appendFrame(Empty, {}));
  EXPECT_EQ(Empty.size(), 8u);
  ASSERT_TRUE(writeFull(P[1], Empty.data(), Empty.size()));
  ASSERT_TRUE(readFrame(P[0], Back));
  EXPECT_TRUE(Back.empty());
  ::close(P[0]);
  ::close(P[1]);

  // Oversized payloads are refused with the buffer untouched.
  std::vector<uint8_t> Huge(MaxFrameBytes + 1);
  std::string Out = "x";
  EXPECT_FALSE(appendFrame(Out, Huge));
  EXPECT_EQ(Out, "x");
}

//===----------------------------------------------------------------------===//
// Hot tier (persist::MemCache) and its layering over the disk cache
//===----------------------------------------------------------------------===//

TEST(MemCache, LruEvictsByBytes) {
  persist::MemCache M(100);
  std::vector<uint8_t> Forty(40, 1);
  M.put("a", Forty.data(), Forty.size());
  M.put("b", Forty.data(), Forty.size());
  EXPECT_EQ(M.entries(), 2u);
  EXPECT_EQ(M.bytes(), 80u);
  // Touch "a" so "b" is the LRU victim.
  EXPECT_TRUE(M.get("a").has_value());
  M.put("c", Forty.data(), Forty.size());
  EXPECT_EQ(M.evictions(), 1u);
  EXPECT_TRUE(M.get("a").has_value());
  EXPECT_FALSE(M.get("b").has_value());
  EXPECT_TRUE(M.get("c").has_value());
  EXPECT_LE(M.bytes(), 100u);
}

TEST(MemCache, OversizedEntryIsRejectedOutright) {
  persist::MemCache M(10);
  std::vector<uint8_t> Big(11, 1);
  M.put("big", Big.data(), Big.size());
  EXPECT_EQ(M.entries(), 0u);
  EXPECT_FALSE(M.get("big").has_value());
  // A fitting entry is unaffected by the earlier rejection.
  M.put("ok", Big.data(), 10);
  EXPECT_TRUE(M.get("ok").has_value());
}

TEST(MemCache, CountersEraseAndReplace) {
  persist::MemCache M(0); // uncapped
  const uint8_t D[4] = {1, 2, 3, 4};
  EXPECT_FALSE(M.get("k").has_value());
  M.put("k", D, 4);
  M.put("k", D, 2); // replace shrinks the byte accounting
  EXPECT_EQ(M.bytes(), 2u);
  EXPECT_EQ(M.entries(), 1u);
  ASSERT_TRUE(M.get("k").has_value());
  EXPECT_EQ(M.get("k")->size(), 2u);
  M.erase("k");
  EXPECT_EQ(M.bytes(), 0u);
  EXPECT_FALSE(M.get("k").has_value());
  EXPECT_EQ(M.stores(), 2u);
  EXPECT_GE(M.misses(), 2u);
  Stats S;
  M.exportStats(S);
  EXPECT_EQ(S.get("persist.mem_store"), 2u);
}

TEST(ArtifactCache, MemOnlyModeServesLoadsWithoutADirectory) {
  persist::ArtifactCache Cache(""); // no disk tier
  EXPECT_FALSE(Cache.enabled());
  persist::MemCache Hot(0);
  Cache.attachMemTier(&Hot);
  EXPECT_TRUE(Cache.enabled());
  std::vector<uint8_t> Payload = {9, 8, 7};
  Cache.store("ir-abc", persist::ArtifactKind::Ir, Payload);
  auto Loaded = Cache.load("ir-abc", persist::ArtifactKind::Ir);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(std::vector<uint8_t>(Loaded->data(),
                                 Loaded->data() + Loaded->size()),
            Payload);
  EXPECT_EQ(Cache.memHits(), 1u);
  EXPECT_EQ(Cache.hits(), 1u); // a mem hit counts as a cache hit
  EXPECT_EQ(Cache.stores(), 1u);
}

TEST(ArtifactCache, DiskHitsPromoteIntoTheHotTier) {
  TempDir T;
  std::vector<uint8_t> Payload = {1, 2, 3, 4};
  {
    persist::ArtifactCache Cold(T.Path);
    Cold.store("ir-k", persist::ArtifactKind::Ir, Payload);
  }
  persist::ArtifactCache Cache(T.Path);
  persist::MemCache Hot(0);
  Cache.attachMemTier(&Hot);
  ASSERT_TRUE(Cache.load("ir-k", persist::ArtifactKind::Ir).has_value());
  EXPECT_EQ(Cache.memHits(), 0u); // first load came from disk...
  EXPECT_EQ(Hot.entries(), 1u);   // ...and was promoted
  ASSERT_TRUE(Cache.load("ir-k", persist::ArtifactKind::Ir).has_value());
  EXPECT_EQ(Cache.memHits(), 1u); // second load skips the disk
  // Invalidation drops both tiers.
  Cache.noteRestoreFailure("ir-k");
  EXPECT_EQ(Hot.entries(), 0u);
  EXPECT_FALSE(Cache.load("ir-k", persist::ArtifactKind::Ir).has_value());
}

//===----------------------------------------------------------------------===//
// Shared option set
//===----------------------------------------------------------------------===//

TEST(Service, OptionsRoundTripThroughCanonicalEncoding) {
  RunOptions O;
  O.ConfigName = "hybrid-prioritized";
  O.Budget = 1234;
  O.MaxLen = 9;
  O.NestedDepth = 5;
  O.Threads = 3;
  O.DeadlineMs = 250.5;
  O.MaxMemoryMb = 512;
  O.Raw = true;
  RunOptions Back;
  for (const std::string &A : encodeRunOptions(O))
    ASSERT_EQ(parseRunOption(A.c_str(), Back), OptionParse::Matched) << A;
  EXPECT_EQ(optionsFingerprint(Back), optionsFingerprint(O));
  // The fingerprint is sensitive to result-relevant fields...
  RunOptions Changed = O;
  Changed.Budget = 1235;
  EXPECT_NE(optionsFingerprint(Changed), optionsFingerprint(O));
  // ...but not to thread count (results are thread-count invariant).
  RunOptions Threads = O;
  Threads.Threads = 7;
  EXPECT_EQ(optionsFingerprint(Threads), optionsFingerprint(O));
}

TEST(Service, RetryDegradationStripsFaultInjection) {
  RunOptions O;
  O.CrashAt = 5;
  O.HangAt = 6;
  O.FailAt = 7;
  O.Threads = 8;
  RunOptions D = degradeForRetry(O);
  EXPECT_EQ(D.CrashAt, 0u);
  EXPECT_EQ(D.HangAt, 0u);
  EXPECT_EQ(D.FailAt, 0u);
  EXPECT_EQ(D.Threads, 1u);
  EXPECT_EQ(D.StringAnalysis, StringAnalysisMode::Local);
}

//===----------------------------------------------------------------------===//
// Flag-dependency matrix
//===----------------------------------------------------------------------===//

TEST(CliUsage, ServerFlagMatrix) {
  int Exit;
  std::string Out;

  Out = runCli("--connect=/tmp/nowhere.sock", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("--connect requires input files"), std::string::npos);

  Out = runCli("--serve=/tmp/x.sock --batch=list.txt", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("--serve is exclusive"), std::string::npos);

  Out = runCli(std::string("--serve=/tmp/x.sock ") + TAJ_EXAMPLE_TAJ, Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("--serve is exclusive"), std::string::npos);

  Out = runCli("--serve=/tmp/x.sock --connect=/tmp/y.sock", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("exclusive"), std::string::npos);

  Out = runCli("--serve=/tmp/x.sock --jobs=2", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("--jobs/--resume do not apply"), std::string::npos);

  Out = runCli(std::string("--pool-size=2 ") + TAJ_EXAMPLE_TAJ, Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("require --serve"), std::string::npos);

  Out = runCli(std::string("--queue-depth=4 ") + TAJ_EXAMPLE_TAJ, Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("require --serve"), std::string::npos);

  Out = runCli("--serve=/tmp/x.sock --pool-size=0", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("--pool-size must be >= 1"), std::string::npos);

  Out = runCli("--serve=/tmp/x.sock --pool-size=abc", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("non-negative number"), std::string::npos);

  Out = runCli("--serve=/tmp/x.sock --queue-depth=1e9", Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("out of range"), std::string::npos);

  Out = runCli(std::string("--connect=/tmp/x.sock --cache-dir=/tmp/c ") +
                   TAJ_EXAMPLE_TAJ,
               Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("do not apply to --connect"), std::string::npos);
}

TEST(CliUsage, ConnectToMissingServerIsAnError) {
  TempDir T;
  int Exit;
  std::string Out = runCli("--connect=" + T.Path + "/absent.sock " +
                               TAJ_EXAMPLE_TAJ,
                           Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("connect"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Serve: identity, hot tier, admission, retries, drain
//===----------------------------------------------------------------------===//

TEST(Serve, ResponseIsByteIdenticalToLocalRunAndWarmsTheHotTier) {
  TempDir T;

  // Local baseline.
  std::string LocalOut = T.Path + "/local.out";
  pid_t P = spawnCli({TAJ_EXAMPLE_TAJ}, LocalOut, T.Path + "/local.err");
  ASSERT_EQ(waitExit(P), 0);

  // One worker, so the second request must land on the warmed tier.
  ServerHandle S;
  ASSERT_TRUE(S.start(T, {"--pool-size=1", "--cache-dir=" + T.Path + "/cache",
                          "--stats-json=" + T.Path + "/server-stats.json"}));

  for (int I = 0; I < 2; ++I) {
    std::string Out = T.Path + "/c" + std::to_string(I) + ".out";
    std::string StatsPath = T.Path + "/c" + std::to_string(I) + ".json";
    pid_t C = spawnCli({"--connect=" + S.Sock, "--stats-json=" + StatsPath,
                        TAJ_EXAMPLE_TAJ},
                       Out, T.Path + "/client.err");
    ASSERT_EQ(waitExit(C), 0) << readWhole(T.Path + "/client.err");
    EXPECT_EQ(readWhole(Out), readWhole(LocalOut)) << "request " << I;
  }
  // Request 0 filled the tier, request 1 was served from it.
  EXPECT_EQ(statOf(T.Path + "/c0.json", "persist.mem_hit"), 0);
  EXPECT_GT(statOf(T.Path + "/c0.json", "persist.mem_store"), 0);
  EXPECT_GT(statOf(T.Path + "/c1.json", "persist.mem_hit"), 0);
  EXPECT_EQ(statOf(T.Path + "/c1.json", "persist.miss"), 0);
  EXPECT_GT(statOf(T.Path + "/c1.json", "server.hot_hits"), 0);
  EXPECT_EQ(statOf(T.Path + "/c1.json", "server.served"), 2);

  EXPECT_EQ(S.stop(), 0);
  EXPECT_EQ(statOf(T.Path + "/server-stats.json", "server.served"), 2);
  EXPECT_GT(statOf(T.Path + "/server-stats.json", "server.hot_hits"), 0);
}

TEST(Serve, EightConcurrentClientsMatchTheBatchBaseline) {
  TempDir T;
  const std::string Base = readWhole(TAJ_EXAMPLE_TAJ);
  ASSERT_FALSE(Base.empty());

  // Eight app variants with two distinct report shapes: even variants
  // keep the SQLi flow, odd ones drop it, so a cross-wired response
  // (client A receiving client B's report) cannot go unnoticed.
  std::vector<std::string> Apps;
  std::string List;
  for (int I = 0; I < 8; ++I) {
    std::string Text = Base + "\n// variant " + std::to_string(I) + "\n";
    if (I % 2 == 1) {
      size_t At = Text.find("q = db.executeQuery(bio);");
      ASSERT_NE(At, std::string::npos);
      size_t LineStart = Text.rfind('\n', At) + 1;
      size_t LineEnd = Text.find('\n', At) + 1;
      Text.erase(LineStart, LineEnd - LineStart);
    }
    std::string Path = T.Path + "/app" + std::to_string(I) + ".taj";
    writeWhole(Path, Text);
    Apps.push_back(Path);
    List += Path + "\n";
  }
  writeWhole(T.Path + "/list.txt", List);

  // Baseline: a cold supervised batch over the same eight variants
  // (supervised batch stdout is itself pinned byte-identical to the
  // in-process loop by the supervise suite).
  std::string BatchOut = T.Path + "/batch.out";
  pid_t B = spawnCli({"--batch=" + T.Path + "/list.txt", "--jobs=2"},
                     BatchOut, T.Path + "/batch.err");
  ASSERT_EQ(waitExit(B), 0);
  const std::string Batch = readWhole(BatchOut);

  ServerHandle S;
  ASSERT_TRUE(S.start(T, {"--pool-size=4",
                          "--cache-dir=" + T.Path + "/cache"}));

  std::vector<pid_t> Clients;
  for (int I = 0; I < 8; ++I)
    Clients.push_back(spawnCli({"--connect=" + S.Sock, Apps[I]},
                               T.Path + "/out" + std::to_string(I),
                               T.Path + "/err" + std::to_string(I)));
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(waitExit(Clients[I]), 0)
        << readWhole(T.Path + "/err" + std::to_string(I));

  for (int I = 0; I < 8; ++I) {
    // The batch segment for app I sits between "=== <name>\n" and
    // "--- <name>: exit=".
    const std::string Head = "=== " + Apps[I] + "\n";
    const std::string Tail = "--- " + Apps[I] + ": exit=";
    size_t From = Batch.find(Head);
    ASSERT_NE(From, std::string::npos) << Apps[I];
    From += Head.size();
    size_t To = Batch.find(Tail, From);
    ASSERT_NE(To, std::string::npos) << Apps[I];
    EXPECT_EQ(readWhole(T.Path + "/out" + std::to_string(I)),
              Batch.substr(From, To - From))
        << Apps[I];
  }
  EXPECT_EQ(S.stop(), 0);
}

TEST(Serve, QueueFullAnswersBusyAndWatchdogTimesOutTheHang) {
  TempDir T;
  // One worker, no queue: a second request during the hang must be
  // refused immediately. The watchdog backstop is armed through the same
  // environment knobs the batch supervisor honors.
  ServerHandle S;
  ASSERT_TRUE(S.start(T,
                      {"--pool-size=1", "--queue-depth=0", "--retry=0",
                       "--stats-json=" + T.Path + "/server-stats.json"},
                      {{"TAJ_HARD_DEADLINE_MS", "2500"},
                       {"TAJ_WATCHDOG_GRACE_MS", "300"}}));

  // Request 1 hangs at a checkpoint; the watchdog must turn it into a
  // `timeout` answer (retries disabled) and respawn the worker.
  pid_t Hung = spawnCli({"--connect=" + S.Sock, "--hang-at=3",
                         TAJ_EXAMPLE_TAJ},
                        T.Path + "/hung.out", T.Path + "/hung.err");
  // Give the hang time to occupy the only worker, then hit admission.
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  int BusyExit;
  std::string BusyOut =
      runCli("--connect=" + S.Sock + " " + TAJ_EXAMPLE_TAJ, BusyExit);
  EXPECT_EQ(BusyExit, 1);
  EXPECT_NE(BusyOut.find("busy"), std::string::npos) << BusyOut;

  EXPECT_EQ(waitExit(Hung), 1);
  EXPECT_NE(readWhole(T.Path + "/hung.err").find("timeout"),
            std::string::npos);

  // The respawned worker serves the next request normally.
  int OkExit;
  runCli("--connect=" + S.Sock + " " + TAJ_EXAMPLE_TAJ, OkExit);
  EXPECT_EQ(OkExit, 0);

  EXPECT_EQ(S.stop(), 0);
  EXPECT_GE(statOf(T.Path + "/server-stats.json", "server.rejected_busy"), 1);
  EXPECT_GE(statOf(T.Path + "/server-stats.json", "server.respawned"), 1);
}

TEST(Serve, CrashedRequestRecoversThroughTheRetryLadder) {
  TempDir T;
  ServerHandle S;
  ASSERT_TRUE(S.start(T, {"--pool-size=1", "--retry=1",
                          "--journal=" + T.Path + "/journal.jsonl",
                          "--stats-json=" + T.Path + "/server-stats.json"}));

  // The injected crash kills attempt 1; the degraded retry strips fault
  // injection, so attempt 2 completes and the client sees a clean run.
  std::string Out = T.Path + "/crash.out";
  pid_t C = spawnCli({"--connect=" + S.Sock, "--crash-at=3", TAJ_EXAMPLE_TAJ},
                     Out, T.Path + "/crash.err");
  EXPECT_EQ(waitExit(C), 0) << readWhole(T.Path + "/crash.err");
  EXPECT_FALSE(readWhole(Out).empty());

  EXPECT_EQ(S.stop(), 0);
  EXPECT_GE(statOf(T.Path + "/server-stats.json", "server.retried"), 1);

  // The journal shows the non-terminal crash and the terminal recovery.
  std::vector<supervise::Attempt> Recs =
      supervise::Journal::load(T.Path + "/journal.jsonl");
  ASSERT_GE(Recs.size(), 2u);
  bool SawCrash = false, SawRecovery = false;
  for (const supervise::Attempt &A : Recs) {
    if (A.Class == supervise::ExitClass::Crashed && !A.Terminal)
      SawCrash = true;
    if (A.Class == supervise::ExitClass::Clean && A.Terminal &&
        A.AttemptNo == 2)
      SawRecovery = true;
  }
  EXPECT_TRUE(SawCrash);
  EXPECT_TRUE(SawRecovery);
}

TEST(Serve, ServedRequestsBeforeARespawnDoNotPoisonTheNewWorker) {
  // Regression: admitted requests used to leak their ClientConn slot
  // with a stale fd number; a respawned worker's child closed those
  // numbers, which could hit its own freshly-allocated socketpair end
  // and turn one crash into an endless respawn storm.
  TempDir T;
  ServerHandle S;
  ASSERT_TRUE(S.start(T, {"--pool-size=1", "--retry=0",
                          "--stats-json=" + T.Path + "/server-stats.json"}));

  int Exit;
  for (int I = 0; I < 3; ++I) {
    runCli("--connect=" + S.Sock + " " + TAJ_EXAMPLE_TAJ, Exit);
    ASSERT_EQ(Exit, 0) << "warm-up request " << I;
  }
  // A terminal crash (retries off) kills the worker; the daemon respawns.
  std::string Out = runCli("--connect=" + S.Sock + " --crash-at=3 " +
                               TAJ_EXAMPLE_TAJ,
                           Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("crashed"), std::string::npos) << Out;
  // The respawned worker serves normally...
  for (int I = 0; I < 3; ++I) {
    runCli("--connect=" + S.Sock + " " + TAJ_EXAMPLE_TAJ, Exit);
    ASSERT_EQ(Exit, 0) << "post-respawn request " << I;
  }
  ASSERT_EQ(S.stop(), 0);
  // ...and exactly one respawn happened: a storm shows up right here.
  EXPECT_EQ(statOf(T.Path + "/server-stats.json", "server.respawned"), 1);
  EXPECT_EQ(statOf(T.Path + "/server-stats.json", "server.served"), 7);
}

TEST(Serve, UncooperativeClientsDoNotStallTheDaemon) {
  // Responses to clients are buffered non-blocking writes: a client that
  // vanishes before reading (EPIPE) or never reads at all must not stall
  // the event loop or the drain.
  TempDir T;
  ServerHandle S;
  ASSERT_TRUE(S.start(T, {"--pool-size=1",
                          "--stats-json=" + T.Path + "/server-stats.json"}));

  const std::string Frame = requestFrameFor(TAJ_EXAMPLE_TAJ);

  // Client 1 sends a request and vanishes before its response exists.
  int Gone = rawConnect(S.Sock);
  ASSERT_GE(Gone, 0);
  ASSERT_TRUE(writeFull(Gone, Frame.data(), Frame.size()));
  ::close(Gone);

  // Client 2 sends a request and then just sits on the open socket.
  int Mute = rawConnect(S.Sock);
  ASSERT_GE(Mute, 0);
  ASSERT_TRUE(writeFull(Mute, Frame.data(), Frame.size()));

  // Well-behaved clients keep being served past both of them.
  int Exit;
  for (int I = 0; I < 2; ++I) {
    runCli("--connect=" + S.Sock + " " + TAJ_EXAMPLE_TAJ, Exit);
    EXPECT_EQ(Exit, 0) << "request " << I;
  }
  EXPECT_EQ(S.stop(), 0);
  ::close(Mute);
  EXPECT_EQ(statOf(T.Path + "/server-stats.json", "server.served"), 4);
}

TEST(Serve, UnspoolableWorkerFailsRequestsLoudly) {
  // When stdout capture cannot be established (here: TMPDIR points into
  // the void, so the worker's spool mkstemp fails), a request must come
  // back as an error — not as a hollow Ok with an empty report while the
  // report bytes leak to the daemon's stdout.
  TempDir T;
  ServerHandle S;
  ASSERT_TRUE(S.start(T, {"--pool-size=1"},
                      {{"TMPDIR", T.Path + "/does-not-exist"}}));
  std::string Out = T.Path + "/c.out";
  pid_t C = spawnCli({"--connect=" + S.Sock, TAJ_EXAMPLE_TAJ}, Out,
                     T.Path + "/c.err");
  EXPECT_EQ(waitExit(C), 1);
  EXPECT_NE(readWhole(T.Path + "/c.err").find("cannot capture"),
            std::string::npos);
  EXPECT_TRUE(readWhole(Out).empty());
  EXPECT_EQ(S.stop(), 0);
}

TEST(Serve, IdleServerDrainsPromptlyOnSigterm) {
  // An entirely idle daemon waits in poll() with an infinite timeout, so
  // this drain hinges on the signal actually waking the loop (self-pipe)
  // rather than on fd traffic happening to arrive.
  TempDir T;
  ServerHandle S;
  ASSERT_TRUE(S.start(T, {"--pool-size=2"}));
  EXPECT_EQ(S.stop(), 0);
}

TEST(Serve, CooperativeDeadlineTruncatesWithExitTwo) {
  TempDir T;
  ServerHandle S;
  ASSERT_TRUE(S.start(T, {"--pool-size=1"}));
  int Exit;
  runCli("--connect=" + S.Sock + " --deadline-ms=0.001 " + TAJ_EXAMPLE_TAJ,
         Exit);
  EXPECT_EQ(Exit, 2);
  EXPECT_EQ(S.stop(), 0);
}

TEST(Serve, SigtermDrainsInFlightWorkAndRefusesNewConnections) {
  TempDir T;
  ServerHandle S;
  ASSERT_TRUE(S.start(T,
                      {"--pool-size=1", "--retry=0",
                       "--stats-json=" + T.Path + "/server-stats.json"},
                      {{"TAJ_HARD_DEADLINE_MS", "2000"},
                       {"TAJ_WATCHDOG_GRACE_MS", "300"}}));

  // A served request before the drain.
  int Exit;
  runCli("--connect=" + S.Sock + " " + TAJ_EXAMPLE_TAJ, Exit);
  ASSERT_EQ(Exit, 0);

  // Occupy the worker with a hang, then ask for the drain: the daemon
  // must keep running until the watchdog resolves the in-flight request
  // (to a terminal `timeout` answer here), then exit 0.
  pid_t Hung = spawnCli({"--connect=" + S.Sock, "--hang-at=3",
                         TAJ_EXAMPLE_TAJ},
                        T.Path + "/hung.out", T.Path + "/hung.err");
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ(S.stop(), 0);
  EXPECT_EQ(waitExit(Hung), 1);
  EXPECT_NE(readWhole(T.Path + "/hung.err").find("timeout"),
            std::string::npos);

  // The socket is gone: connecting again is a clean client-side error.
  std::string Out = runCli("--connect=" + S.Sock + " " + TAJ_EXAMPLE_TAJ,
                           Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("error:"), std::string::npos);

  EXPECT_GE(statOf(T.Path + "/server-stats.json", "server.served"), 1);
}

TEST(Serve, SecondServerOnTheSameSocketIsRefused) {
  TempDir T;
  ServerHandle S;
  ASSERT_TRUE(S.start(T, {"--pool-size=1"}));
  int Exit;
  std::string Out = runCli("--serve=" + S.Sock, Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("already listening"), std::string::npos);
  EXPECT_EQ(S.stop(), 0);
}

//===----------------------------------------------------------------------===//
// SIGPIPE / short-write discipline
//===----------------------------------------------------------------------===//

TEST(Sigpipe, ClosedStdoutIsAnErrorExitNotASignalDeath) {
  TempDir T;
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // Child: stdout is a pipe nobody will ever read.
    ::dup2(P[1], STDOUT_FILENO);
    ::close(P[0]);
    ::close(P[1]);
    int Fd = ::open((T.Path + "/err").c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (Fd >= 0) {
      ::dup2(Fd, STDERR_FILENO);
      ::close(Fd);
    }
    ::execl(TAJ_CLI_PATH, TAJ_CLI_PATH, TAJ_EXAMPLE_TAJ,
            static_cast<char *>(nullptr));
    ::_exit(127);
  }
  // Close both ends: every write in the child now raises EPIPE, which
  // must surface as exit 1 ("stdout write failed"), not a SIGPIPE death.
  ::close(P[0]);
  ::close(P[1]);
  EXPECT_EQ(waitExit(Pid), 1);
  EXPECT_NE(readWhole(T.Path + "/err").find("stdout write failed"),
            std::string::npos);
}

} // namespace
