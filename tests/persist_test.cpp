//===- tests/persist_test.cpp - Artifact store properties ----------------===//
//
// The persistent artifact cache is strictly an accelerator, and these
// tests pin down that contract:
//  - record framing: version/checksum/kind verification rejects anything
//    that is not exactly what was stored;
//  - program serialization round-trips print-identically;
//  - warm runs are byte-identical to cold runs for every Table 1 preset
//    and at every thread count;
//  - corrupted, truncated and version-mismatched entries fall back to
//    cold computation without changing results;
//  - LRU eviction respects the byte cap;
//  - the taj-cli batch mode matches separate cold runs exactly.
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"
#include "ir/Printer.h"
#include "persist/Cache.h"
#include "report/ReportGenerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace taj;
namespace fs = std::filesystem;

namespace {

/// Self-cleaning scratch directory for one test.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/taj-persist-XXXXXX";
    const char *D = ::mkdtemp(Buf);
    EXPECT_NE(D, nullptr);
    Path = D ? D : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code Ec;
      fs::remove_all(Path, Ec);
    }
  }
};

const AppSpec &specByName(const char *Name) {
  static std::vector<AppSpec> Suite = benchmarkSuite();
  for (const AppSpec &S : Suite)
    if (S.Name == Name)
      return S;
  return Suite[0];
}

/// Everything one analysis run produced that a caching layer could break.
struct RunOut {
  std::set<std::tuple<StmtId, StmtId, RuleMask>> Set;
  std::string Report;
  uint64_t Hits = 0, Misses = 0, Stores = 0, Evicts = 0, Corrupt = 0,
           VersionMiss = 0;
};

RunOut runApp(const char *Name, AnalysisConfig C,
              persist::ArtifactCache *Cache) {
  GeneratedApp A = generateApp(specByName(Name));
  if (Cache) {
    C.Cache = Cache;
    C.InputFingerprint = std::string("app:") + Name;
  }
  TaintAnalysis TA(*A.P, std::move(C));
  AnalysisResult R = TA.run({A.Root});
  RunOut O;
  for (const Issue &I : R.Issues)
    O.Set.insert({I.Source, I.Sink, I.Rule});
  O.Report = renderReports(*A.P, generateReports(*A.P, R.Issues), &R.Status);
  O.Hits = R.RunStats.get("persist.hit");
  O.Misses = R.RunStats.get("persist.miss");
  O.Stores = R.RunStats.get("persist.store");
  O.Evicts = R.RunStats.get("persist.evict");
  O.Corrupt = R.RunStats.get("persist.corrupt");
  O.VersionMiss = R.RunStats.get("persist.version_miss");
  return O;
}

std::vector<fs::path> cacheEntries(const std::string &Dir) {
  std::vector<fs::path> Out;
  for (const auto &DE : fs::directory_iterator(Dir))
    if (DE.path().extension() == ".tajc")
      Out.push_back(DE.path());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<uint8_t> readAll(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void writeAll(const fs::path &P, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

/// Patches the stored checksum to match the (mutated) payload, so the
/// mutation survives record verification and exercises the structural
/// restore validation instead.
void refreshChecksum(std::vector<uint8_t> &Record) {
  ASSERT_GE(Record.size(), 32u);
  uint64_t Sum = persist::fnv1aWords(Record.data() + 32, Record.size() - 32);
  for (int I = 0; I < 8; ++I)
    Record[24 + I] = static_cast<uint8_t>(Sum >> (8 * I));
}

std::string runCli(const std::string &Args, int &ExitCode) {
  std::string Cmd = std::string(TAJ_CLI_PATH) + " " + Args;
  FILE *P = ::popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int St = ::pclose(P);
  ExitCode = WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  return Out;
}

//===----------------------------------------------------------------------===//
// Record framing
//===----------------------------------------------------------------------===//

TEST(RecordFraming, RoundTripsAndRejectsEveryMutation) {
  std::vector<uint8_t> Payload = {1, 2, 3, 4, 5, 6, 7};
  std::vector<uint8_t> Rec =
      persist::wrapRecord(persist::ArtifactKind::PointsTo, Payload);
  const uint8_t *P = nullptr;
  size_t N = 0;
  std::string Err;
  ASSERT_TRUE(
      persist::unwrapRecord(Rec, persist::ArtifactKind::PointsTo, P, N, Err))
      << Err;
  EXPECT_EQ(std::vector<uint8_t>(P, P + N), Payload);

  // Kind mismatch: a pts record must not unwrap as an SDG.
  EXPECT_FALSE(persist::unwrapRecord(Rec, persist::ArtifactKind::Sdg, P, N,
                                     Err));
  EXPECT_FALSE(Err.empty());

  // Truncation, at the header and inside the payload.
  std::vector<uint8_t> Short(Rec.begin(), Rec.begin() + 16);
  EXPECT_FALSE(persist::unwrapRecord(Short, persist::ArtifactKind::PointsTo,
                                     P, N, Err));
  std::vector<uint8_t> Cut(Rec.begin(), Rec.end() - 1);
  EXPECT_FALSE(persist::unwrapRecord(Cut, persist::ArtifactKind::PointsTo, P,
                                     N, Err));

  // A single flipped payload bit fails the checksum.
  std::vector<uint8_t> Flip = Rec;
  Flip[34] ^= 0x10;
  EXPECT_FALSE(persist::unwrapRecord(Flip, persist::ArtifactKind::PointsTo, P,
                                     N, Err));

  // A bumped format version is a mismatch even with a valid checksum, and
  // the extended API tells it apart from corruption.
  std::vector<uint8_t> Ver = Rec;
  Ver[4] ^= 1;
  EXPECT_FALSE(persist::unwrapRecord(Ver, persist::ArtifactKind::PointsTo, P,
                                     N, Err));
  EXPECT_EQ(persist::unwrapRecordEx(Ver, persist::ArtifactKind::PointsTo, P,
                                    N, Err),
            persist::UnwrapStatus::VersionMismatch);
  EXPECT_EQ(persist::unwrapRecordEx(Flip, persist::ArtifactKind::PointsTo, P,
                                    N, Err),
            persist::UnwrapStatus::Corrupt);

  // Bad magic.
  std::vector<uint8_t> Magic = Rec;
  Magic[0] ^= 0xff;
  EXPECT_FALSE(persist::unwrapRecord(Magic, persist::ArtifactKind::PointsTo,
                                     P, N, Err));
}

//===----------------------------------------------------------------------===//
// Program serialization
//===----------------------------------------------------------------------===//

TEST(ProgramSerialization, RoundTripIsPrintIdentical) {
  for (const char *Name : {"A", "BlueBlog"}) {
    GeneratedApp App = generateApp(specByName(Name));
    App.P->indexStatements();
    persist::Writer W;
    persist::Access::serializeProgram(*App.P, W);

    Program Restored;
    persist::Reader R(W.bytes().data(), W.bytes().size());
    ASSERT_TRUE(persist::Access::restoreProgram(Restored, R)) << Name;
    EXPECT_EQ(printProgram(*App.P), printProgram(Restored)) << Name;
    EXPECT_EQ(App.P->numStmts(), Restored.numStmts()) << Name;
  }
}

TEST(ProgramSerialization, RestoreRejectsGarbageWithoutCrashing) {
  GeneratedApp App = generateApp(specByName("A"));
  App.P->indexStatements();
  persist::Writer W;
  persist::Access::serializeProgram(*App.P, W);

  // Truncations at every prefix length of the first 200 bytes, plus a
  // handful of deeper cuts: restore must fail cleanly, never crash.
  const std::vector<uint8_t> &Bytes = W.bytes();
  for (size_t Len = 0; Len < std::min<size_t>(Bytes.size(), 200); ++Len) {
    Program P2;
    persist::Reader R(Bytes.data(), Len);
    EXPECT_FALSE(persist::Access::restoreProgram(P2, R)) << "len=" << Len;
  }
}

//===----------------------------------------------------------------------===//
// Warm == cold
//===----------------------------------------------------------------------===//

TEST(WarmStart, MatchesColdForEveryPreset) {
  TempDir D;
  persist::ArtifactCache Cache(D.Path);
  ASSERT_TRUE(Cache.enabled());

  auto Presets = [] {
    return std::vector<AnalysisConfig>{
        AnalysisConfig::hybridUnbounded(), AnalysisConfig::hybridPrioritized(200),
        AnalysisConfig::hybridOptimized(), AnalysisConfig::cs(),
        AnalysisConfig::ci()};
  };
  std::vector<RunOut> Cold;
  for (AnalysisConfig &C : Presets())
    Cold.push_back(runApp("BlueBlog", std::move(C), &Cache));
  std::vector<RunOut> Warm;
  for (AnalysisConfig &C : Presets())
    Warm.push_back(runApp("BlueBlog", std::move(C), &Cache));

  for (size_t I = 0; I < Cold.size(); ++I) {
    EXPECT_EQ(Cold[I].Set, Warm[I].Set) << "preset " << I;
    EXPECT_EQ(Cold[I].Report, Warm[I].Report) << "preset " << I;
    EXPECT_EQ(Warm[I].Corrupt, 0u) << "preset " << I;
    // Whatever the cold run stored, the warm run must find. Hits can
    // exceed stores: presets sharing a points-to fingerprint (cs/ci with
    // hybrid-unbounded) reuse the pts entry an earlier preset stored and
    // only add their own sdg. Budget-truncated runs store nothing
    // (degraded artifacts must never be replayed).
    EXPECT_GE(Warm[I].Hits, Cold[I].Stores) << "preset " << I;
  }
  // The unbounded hybrid preset completes cleanly, so it must actually
  // exercise the warm path.
  EXPECT_EQ(Cold[0].Stores, 2u);
  EXPECT_EQ(Warm[0].Hits, 2u);
}

TEST(WarmStart, ByteIdenticalAcrossThreadCounts) {
  TempDir D;
  persist::ArtifactCache Cache(D.Path);
  AnalysisConfig C1 = AnalysisConfig::hybridUnbounded();
  C1.Threads = 1;
  RunOut Cold = runApp("I", std::move(C1), &Cache);
  ASSERT_EQ(Cold.Stores, 2u);

  // The thread count is excluded from the fingerprints on purpose: an
  // 8-thread warm run reuses the single-threaded entries and still
  // produces byte-identical output.
  AnalysisConfig C8 = AnalysisConfig::hybridUnbounded();
  C8.Threads = 8;
  RunOut Warm = runApp("I", std::move(C8), &Cache);
  EXPECT_EQ(Warm.Hits, 2u);
  EXPECT_EQ(Cold.Set, Warm.Set);
  EXPECT_EQ(Cold.Report, Warm.Report);
}

TEST(WarmStart, SlicingOnlyConfigChangeReusesPrefix) {
  TempDir D;
  persist::ArtifactCache Cache(D.Path);
  RunOut Cold = runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  ASSERT_EQ(Cold.Stores, 2u);

  // MaxFlowLength only affects slicing, so both the pts and sdg entries
  // are reused; the tightened run just filters more flows.
  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.MaxFlowLength = 6;
  RunOut Bounded = runApp("A", std::move(C), &Cache);
  EXPECT_EQ(Bounded.Hits, 2u);
  for (const auto &T : Bounded.Set)
    EXPECT_TRUE(Cold.Set.count(T)) << "bounded warm run invented a flow";
}

//===----------------------------------------------------------------------===//
// Corruption handling
//===----------------------------------------------------------------------===//

TEST(Corruption, DamagedEntriesFallBackColdWithIdenticalResults) {
  TempDir D;
  persist::ArtifactCache Cache(D.Path);
  RunOut Cold = runApp("BlueBlog", AnalysisConfig::hybridUnbounded(), &Cache);
  ASSERT_EQ(Cold.Stores, 2u);

  // Round 1: truncate one entry, flip a payload bit in the other.
  std::vector<fs::path> Entries = cacheEntries(D.Path);
  ASSERT_EQ(Entries.size(), 2u);
  fs::resize_file(Entries[0], 16);
  std::vector<uint8_t> Bytes = readAll(Entries[1]);
  ASSERT_GT(Bytes.size(), 40u);
  Bytes[40] ^= 0x20;
  writeAll(Entries[1], Bytes);

  RunOut W1 = runApp("BlueBlog", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Cold.Set, W1.Set);
  EXPECT_EQ(Cold.Report, W1.Report);
  EXPECT_EQ(W1.Hits, 0u);
  EXPECT_EQ(W1.Corrupt, 2u);
  EXPECT_EQ(W1.VersionMiss, 0u) << "damage is corruption, not staleness";
  EXPECT_EQ(W1.Stores, 2u) << "fallback cold run must refill the cache";

  // Round 2: bump the format-version byte of every (refilled) entry. A
  // record written by a different format generation is expected churn, so
  // it must fall back as a clean version miss — not count as corruption.
  for (const fs::path &E : cacheEntries(D.Path)) {
    std::vector<uint8_t> B = readAll(E);
    ASSERT_GT(B.size(), 4u);
    B[4] ^= 1;
    writeAll(E, B);
  }
  RunOut W2 = runApp("BlueBlog", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Cold.Set, W2.Set);
  EXPECT_EQ(Cold.Report, W2.Report);
  EXPECT_EQ(W2.Hits, 0u);
  EXPECT_EQ(W2.Corrupt, 0u) << "a stale format generation is not corruption";
  EXPECT_EQ(W2.VersionMiss, 2u);
  EXPECT_EQ(W2.Stores, 2u) << "fallback cold run must refill the cache";

  // Round 3: untouched entries finally serve a clean warm start.
  RunOut W3 = runApp("BlueBlog", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Cold.Set, W3.Set);
  EXPECT_EQ(Cold.Report, W3.Report);
  EXPECT_EQ(W3.Hits, 2u);
  EXPECT_EQ(W3.Corrupt, 0u);
  EXPECT_EQ(W3.VersionMiss, 0u);
}

TEST(Corruption, StructurallyInvalidPayloadFailsRestoreNotResults) {
  TempDir D;
  persist::ArtifactCache Cache(D.Path);
  RunOut Cold = runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  ASSERT_EQ(Cold.Stores, 2u);

  // Blow up the leading element count of each payload and re-sign the
  // record, so it passes the checksum but must be caught by the bounds
  // validation inside the structural restore.
  for (const fs::path &E : cacheEntries(D.Path)) {
    std::vector<uint8_t> B = readAll(E);
    ASSERT_GT(B.size(), 36u);
    B[32] = B[33] = B[34] = B[35] = 0xff;
    refreshChecksum(B);
    writeAll(E, B);
  }
  RunOut Warm = runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Cold.Set, Warm.Set);
  EXPECT_EQ(Cold.Report, Warm.Report);
  EXPECT_EQ(Warm.Hits, 2u) << "records verify, so loads count as hits";
  EXPECT_EQ(Warm.Corrupt, 2u) << "but structural restore must reject them";
}

//===----------------------------------------------------------------------===//
// Eviction
//===----------------------------------------------------------------------===//

TEST(Eviction, ByteCapIsEnforced) {
  TempDir D;
  // A 1-byte cap can hold nothing: every store is immediately evicted,
  // results stay correct, and the directory never exceeds the cap.
  persist::ArtifactCache Cache(D.Path, 1);
  RunOut Cold = runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Cold.Stores, 2u);
  EXPECT_EQ(Cold.Evicts, 2u);
  EXPECT_TRUE(cacheEntries(D.Path).empty());

  RunOut Again = runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Cold.Set, Again.Set);
  EXPECT_EQ(Cold.Report, Again.Report);
  EXPECT_EQ(Again.Hits, 0u);
}

TEST(Eviction, GenerousCapKeepsEntries) {
  TempDir D;
  persist::ArtifactCache Cache(D.Path, 64ull * 1024 * 1024);
  RunOut Cold = runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Cold.Stores, 2u);
  EXPECT_EQ(Cold.Evicts, 0u);
  EXPECT_EQ(cacheEntries(D.Path).size(), 2u);
  RunOut Warm = runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Warm.Hits, 2u);
}

TEST(Eviction, GraceWindowShieldsFreshEntriesFromEviction) {
  TempDir D;
  // Same 1-byte cap as ByteCapIsEnforced, but a one-hour grace window:
  // the just-stored entries are exactly what a concurrent worker may be
  // mid-read on, so eviction must skip (and count) them instead.
  persist::ArtifactCache Cache(D.Path, 1, 3600 * 1000);
  RunOut Cold = runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Cold.Stores, 2u);
  EXPECT_EQ(Cold.Evicts, 0u);
  EXPECT_GT(Cache.evictSkips(), 0u);
  EXPECT_EQ(cacheEntries(D.Path).size(), 2u);

  // The shielded entries are still valid: the warm run hits them.
  RunOut Warm = runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_EQ(Warm.Hits, 2u);
  EXPECT_EQ(Cold.Set, Warm.Set);
  EXPECT_EQ(Cold.Report, Warm.Report);
}

TEST(Eviction, GraceWindowSweepsStaleTempFiles) {
  TempDir D;
  // A crashed worker's leftover temp file, aged past the grace window,
  // is swept during eviction; a fresh one is left alone.
  std::ofstream(D.Path + "/dead.tajc.tmp.1234") << "leftover";
  std::ofstream(D.Path + "/live.tajc.tmp.5678") << "in flight";
  struct timespec Old[2] = {{1, 0}, {1, 0}}; // epoch-ish mtime
  ASSERT_EQ(::utimensat(AT_FDCWD, (D.Path + "/dead.tajc.tmp.1234").c_str(),
                        Old, 0),
            0);
  persist::ArtifactCache Cache(D.Path, 1, 60 * 1000);
  runApp("A", AnalysisConfig::hybridUnbounded(), &Cache);
  EXPECT_FALSE(fs::exists(D.Path + "/dead.tajc.tmp.1234"));
  EXPECT_TRUE(fs::exists(D.Path + "/live.tajc.tmp.5678"));
}

//===----------------------------------------------------------------------===//
// taj-cli end to end
//===----------------------------------------------------------------------===//

TEST(Cli, WarmRunIsByteIdenticalAndBatchMatchesSeparateRuns) {
  TempDir D;
  const std::string Example = TAJ_EXAMPLE_TAJ;
  const std::string Copy = D.Path + "/copy.taj";
  fs::copy_file(Example, Copy);

  int Exit = -1;
  std::string NoCache = runCli("\"" + Example + "\" 2>/dev/null", Exit);
  ASSERT_EQ(Exit, 0);
  ASSERT_FALSE(NoCache.empty());

  const std::string CacheDir = D.Path + "/cache";
  std::string ColdRun = runCli(
      "--cache-dir=\"" + CacheDir + "\" \"" + Example + "\" 2>/dev/null",
      Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_EQ(NoCache, ColdRun) << "cold cached run diverged from uncached";
  std::string WarmRun = runCli(
      "--cache-dir=\"" + CacheDir + "\" \"" + Example + "\" 2>/dev/null",
      Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_EQ(NoCache, WarmRun) << "warm run diverged from cold";

  // Raw flow count feeds the expected batch summary lines.
  std::string Raw = runCli("--raw \"" + Example + "\" 2>/dev/null", Exit);
  ASSERT_EQ(Exit, 0);
  size_t NumIssues = std::count(Raw.begin(), Raw.end(), '\n');

  // Batch over (example, identical copy): the copy shares the input
  // fingerprint and warm-starts from the first app's entries inside the
  // same process; output must still be the separate runs' concatenation.
  const std::string ListFile = D.Path + "/list.txt";
  {
    std::ofstream L(ListFile);
    L << "# taj-cli batch list\n\n" << Example << "\n" << Copy << "\n";
  }
  const std::string BatchCache = D.Path + "/batchcache";
  std::string Batch = runCli("--cache-dir=\"" + BatchCache + "\" --batch=\"" +
                                 ListFile + "\" 2>/dev/null",
                             Exit);
  EXPECT_EQ(Exit, 0);
  std::string Expected;
  for (const std::string &App : {Example, Copy})
    Expected += "=== " + App + "\n" + NoCache + "--- " + App +
                ": exit=0 issues=" + std::to_string(NumIssues) + "\n";
  EXPECT_EQ(Batch, Expected);
}

TEST(Cli, MalformedNumericFlagsAreUsageErrors) {
  const std::string Example = TAJ_EXAMPLE_TAJ;
  for (const char *Bad :
       {"--budget=abc", "--max-flow-length=12x", "--nested-depth=",
        "--cache-max-mb=-3", "--budget=1e"}) {
    int Exit = -1;
    std::string Out =
        runCli(std::string(Bad) + " \"" + Example + "\" 2>&1", Exit);
    EXPECT_EQ(Exit, 1) << Bad;
    EXPECT_NE(Out.find("non-negative number"), std::string::npos) << Bad;
  }
}

TEST(Cli, StatsJsonDumpsAllCounters) {
  TempDir D;
  const std::string Example = TAJ_EXAMPLE_TAJ;
  const std::string Json = D.Path + "/stats.json";
  int Exit = -1;
  runCli("--cache-dir=\"" + D.Path + "/cache\" --stats-json=\"" + Json +
             "\" \"" + Example + "\" 2>/dev/null",
         Exit);
  ASSERT_EQ(Exit, 0);
  std::ifstream In(Json);
  ASSERT_TRUE(In.good());
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.front(), '{');
  EXPECT_NE(Text.find("\"persist.hit\":"), std::string::npos);
  EXPECT_NE(Text.find("\"persist.miss\":"), std::string::npos);
  EXPECT_NE(Text.find("\"persist.store\":"), std::string::npos);
  EXPECT_NE(Text.find("\"persist.corrupt\":"), std::string::npos);
}

TEST(Cli, CorruptCacheNeverChangesExitCodeOrOutput) {
  TempDir D;
  const std::string Example = TAJ_EXAMPLE_TAJ;
  const std::string CacheDir = D.Path + "/cache";
  int Exit = -1;
  std::string Cold = runCli(
      "--cache-dir=\"" + CacheDir + "\" \"" + Example + "\" 2>/dev/null",
      Exit);
  ASSERT_EQ(Exit, 0);
  for (const fs::path &E : cacheEntries(CacheDir)) {
    std::vector<uint8_t> B = readAll(E);
    ASSERT_GT(B.size(), 4u);
    B[4] ^= 1; // future format version
    writeAll(E, B);
  }
  std::string Warm = runCli(
      "--cache-dir=\"" + CacheDir + "\" \"" + Example + "\" 2>/dev/null",
      Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_EQ(Cold, Warm);
}

} // namespace
