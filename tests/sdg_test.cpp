//===- tests/sdg_test.cpp - SDG & slicer invariant tests -----------------===//
//
// Structural tests of the SDG (no-heap discipline, call plumbing, channel
// extension) and cross-algorithm invariants checked as properties over
// random applications: hybrid issues are a subset of CI issues, and CS
// (when it completes) reports a subset of hybrid plus alias decoys.
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "rhs/Tabulation.h"
#include "sdg/SDG.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

struct Built {
  Program P;
  MethodId Root = InvalidId;
  std::unique_ptr<ClassHierarchy> CHA;
  std::unique_ptr<PointsToSolver> Solver;
  std::unique_ptr<SDG> G;

  Built(const std::string &Src, SDGOptions SO) {
    installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    EXPECT_TRUE(parseTaj(P, Src, &Errors))
        << (Errors.empty() ? "?" : Errors.front());
    Root = synthesizeEntrypointDriver(P);
    P.indexStatements();
    CHA = std::make_unique<ClassHierarchy>(P);
    Solver = std::make_unique<PointsToSolver>(P, *CHA);
    Solver->solve({Root});
    G = std::make_unique<SDG>(P, *CHA, *Solver, SO);
  }
};

const char *SimpleApp = R"(
class Box extends Object { field v: String; }
class App extends Servlet {
  method pass(this: App, s: String): String { return s; }
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    u = this.pass(t);
    b = new Box;
    b.v = u;
    x = b.v;
    w = resp.getWriter();
    w.println(x);
  }
}
)";

TEST(Sdg, NoHeapDiscipline) {
  SDGOptions SO;
  SO.ContextExpanded = true;
  Built B(SimpleApp, SO);
  // Loads have no incoming Flow edges; stores have no outgoing edges.
  for (SDGNodeId N = 0; N < B.G->numNodes(); ++N) {
    const SDGNode &Node = B.G->node(N);
    if (Node.Kind != SDGNodeKind::Stmt)
      continue;
    if (Node.Access == HeapAccess::FieldStore) {
      EXPECT_TRUE(B.G->succs(N).empty())
          << "store must have no successors in the no-heap SDG";
    }
  }
  // Every load node exists and has no Flow predecessor: check by scanning
  // all edges for targets that are loads.
  std::set<SDGNodeId> LoadSet(B.G->loadNodes().begin(),
                              B.G->loadNodes().end());
  for (SDGNodeId N = 0; N < B.G->numNodes(); ++N)
    for (const SDGEdge &E : B.G->succs(N))
      if (E.Kind == SDGEdgeKind::Flow) {
        EXPECT_FALSE(LoadSet.count(E.To) &&
                     B.G->node(E.To).Access == HeapAccess::FieldLoad)
            << "no data edge may enter a load in the no-heap SDG";
      }
}

TEST(Sdg, CallPlumbingRoundTrip) {
  SDGOptions SO;
  SO.ContextExpanded = true;
  Built B(SimpleApp, SO);
  // Find the pass() call site: it must have ActualIns wired to FormalIns
  // and a ParamOut edge back from the callee's FormalOut.
  bool Found = false;
  for (SDGNodeId N = 0; N < B.G->numNodes(); ++N) {
    const CallSiteInfo *CS = B.G->callSite(N);
    if (!CS)
      continue;
    const Instruction &I = B.P.stmt(B.G->node(N).S);
    if (B.P.Pool.str(I.CalleeName) != "pass")
      continue;
    Found = true;
    EXPECT_EQ(CS->ActualIns.size(), I.Args.size());
    bool SawParamIn = false;
    for (SDGNodeId AIn : CS->ActualIns)
      for (const SDGEdge &E : B.G->succs(AIn))
        SawParamIn |= E.Kind == SDGEdgeKind::ParamIn;
    EXPECT_TRUE(SawParamIn);
  }
  EXPECT_TRUE(Found);
}

TEST(Sdg, ChannelExtensionAddsFormals) {
  SDGOptions Plain;
  Plain.ContextExpanded = true;
  Built B1(SimpleApp, Plain);
  SDGOptions Chan = Plain;
  Chan.WithChanParams = true;
  Built B2(SimpleApp, Chan);
  EXPECT_GT(B2.G->numNodes(), B1.G->numNodes());
  EXPECT_GT(B2.G->numChanNodes(), 0u);
  EXPECT_FALSE(B2.G->chanBudgetExceeded());
}

TEST(Sdg, ChanBudgetTriggersOOM) {
  SDGOptions SO;
  SO.ContextExpanded = true;
  SO.WithChanParams = true;
  SO.ChanNodeBudget = 1;
  Built B(SimpleApp, SO);
  EXPECT_TRUE(B.G->chanBudgetExceeded());
}

TEST(Sdg, MergedScopeHasOneOwnerPerMethod) {
  SDGOptions Expanded;
  Expanded.ContextExpanded = true;
  SDGOptions Merged;
  Merged.ContextExpanded = false;
  Built BE(R"(
class H extends Object {
  method self(this: H): H { return this; }
}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    h1 = new H;
    h2 = new H;
    a = h1.self();
    b = h2.self();
  }
}
)",
           Expanded);
  Built BM(R"(
class H extends Object {
  method self(this: H): H { return this; }
}
class App extends Servlet {
  method doGet(this: App, req: Request): void [entry] {
    h1 = new H;
    h2 = new H;
    a = h1.self();
    b = h2.self();
  }
}
)",
           Merged);
  // The expanded graph duplicates H.self per receiver context.
  EXPECT_GT(BE.G->numNodes(), BM.G->numNodes());
}

TEST(Sdg, TabulationRespectsSanitizerBarrier) {
  SDGOptions SO;
  SO.ContextExpanded = true;
  Built B(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    e = Encoder.encode(t);
    w = resp.getWriter();
    w.println(e);
  }
}
)",
          SO);
  Tabulation Tab(*B.G, rules::XSS);
  for (SDGNodeId Src : B.G->sourceNodes(rules::XSS)) {
    Tabulation::SliceResult R;
    Tab.forwardSlice({{Src, 0}}, R);
    for (SDGNodeId Sk : B.G->sinkNodes())
      EXPECT_FALSE(R.Dist.count(Sk))
          << "slice must stop at the sanitizer";
  }
}

/// Cross-algorithm inclusion properties on generated apps.
class AlgebraTest : public ::testing::TestWithParam<const char *> {};

TEST_P(AlgebraTest, HybridIssuesAreSubsetOfCi) {
  for (const AppSpec &S : benchmarkSuite()) {
    if (S.Name != GetParam())
      continue;
    GeneratedApp App = generateApp(S);
    TaintAnalysis TH(*App.P, AnalysisConfig::hybridUnbounded());
    AnalysisResult H = TH.run({App.Root});
    TaintAnalysis TC(*App.P, AnalysisConfig::ci());
    AnalysisResult CI = TC.run({App.Root});
    std::set<std::pair<StmtId, StmtId>> CiPairs;
    for (const Issue &I : CI.Issues)
      CiPairs.insert({I.Source, I.Sink});
    for (const Issue &I : H.Issues)
      EXPECT_TRUE(CiPairs.count({I.Source, I.Sink}))
          << S.Name << ": hybrid-reported flow missing from CI";
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, AlgebraTest,
                         ::testing::Values("A", "BlueBlog", "Friki", "I",
                                           "SBM", "Ginp"));

} // namespace
