//===- tests/ssa_test.cpp - Dominators and SSA property tests ------------===//
//
// Property-based tests: random CFGs with random slot assignments must
// produce verifier-clean SSA, and dominator facts must match a brute-force
// reachability-based oracle.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "ssa/Dominators.h"
#include "ssa/SSABuilder.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

/// Builds a random method CFG: NumBlocks blocks, each assigning random
/// slots and ending with a random branch among the later-created blocks
/// (plus back edges with some probability).
void buildRandomMethod(Builder &B, ClassId C, int Idx, Rng &R) {
  int NumBlocks = static_cast<int>(R.range(1, 8));
  int NumSlots = static_cast<int>(R.range(1, 5));
  MethodBuilder MB =
      B.startMethod(C, "rand" + std::to_string(Idx),
                    {Type::ref(C), Type::intTy()}, Type::intTy());
  std::vector<ValueId> Slots;
  // Initialize every slot in the entry block so uses are always dominated.
  for (int S = 0; S < NumSlots; ++S) {
    ValueId V = MB.freshSlot();
    MB.assign(V, MB.constInt(S));
    Slots.push_back(V);
  }
  std::vector<int32_t> Blocks = {0};
  for (int I = 1; I < NumBlocks; ++I)
    Blocks.push_back(MB.newBlock());
  for (int I = 0; I < NumBlocks; ++I) {
    MB.setBlock(Blocks[I]);
    // Random straight-line body: reassign slots from other slots / consts.
    int BodyLen = static_cast<int>(R.range(0, 4));
    for (int K = 0; K < BodyLen; ++K) {
      ValueId Src = R.chance(1, 2) ? Slots[R.below(Slots.size())]
                                   : MB.constInt(R.below(100));
      MB.assign(Slots[R.below(Slots.size())], Src);
    }
    // Terminator: return, goto, or if.
    uint32_t Kind = R.below(3);
    if (I == NumBlocks - 1 || Kind == 0) {
      MB.emitRet(Slots[R.below(Slots.size())]);
      continue;
    }
    int32_t T1 = Blocks[R.below(NumBlocks)];
    if (Kind == 1) {
      MB.emitGoto(T1);
      continue;
    }
    int32_t T2 = Blocks[R.below(NumBlocks)];
    if (T1 == T2) {
      MB.emitGoto(T1);
      continue;
    }
    MB.emitIf(Slots[R.below(Slots.size())], T1, T2);
  }
  MB.finish();
}

class SsaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsaPropertyTest, RandomCfgsVerifyCleanly) {
  Rng R(GetParam());
  Program P;
  Builder B(P);
  ClassId Obj = B.makeClass("Object", InvalidId);
  for (int I = 0; I < 25; ++I)
    buildRandomMethod(B, Obj, I, R);
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsaPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

/// Brute-force dominance: A dominates B iff removing A disconnects B from
/// the entry (or A == B).
bool bruteDominates(const Method &M, int32_t A, int32_t B) {
  if (A == B)
    return true;
  std::vector<uint8_t> Seen(M.Blocks.size(), 0);
  std::vector<int32_t> Work;
  if (A != 0) {
    Work.push_back(0);
    Seen[0] = 1;
  }
  while (!Work.empty()) {
    int32_t X = Work.back();
    Work.pop_back();
    for (int32_t S : M.Blocks[X].Succs) {
      if (S == A || Seen[S])
        continue;
      Seen[S] = 1;
      Work.push_back(S);
    }
  }
  return !Seen[B];
}

bool bruteReachable(const Method &M, int32_t B) {
  std::vector<uint8_t> Seen(M.Blocks.size(), 0);
  std::vector<int32_t> Work = {0};
  Seen[0] = 1;
  while (!Work.empty()) {
    int32_t X = Work.back();
    Work.pop_back();
    for (int32_t S : M.Blocks[X].Succs)
      if (!Seen[S]) {
        Seen[S] = 1;
        Work.push_back(S);
      }
  }
  return Seen[B];
}

class DomPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomPropertyTest, MatchesBruteForceOracle) {
  Rng R(GetParam());
  Program P;
  Builder B(P);
  ClassId Obj = B.makeClass("Object", InvalidId);
  for (int I = 0; I < 10; ++I)
    buildRandomMethod(B, Obj, I, R);
  for (const Method &M : P.Methods) {
    if (!M.hasBody())
      continue;
    Dominators Dom(M);
    int32_t N = static_cast<int32_t>(M.Blocks.size());
    for (int32_t A = 0; A < N; ++A) {
      EXPECT_EQ(Dom.reachable(A), bruteReachable(M, A));
      if (!Dom.reachable(A))
        continue;
      for (int32_t Bk = 0; Bk < N; ++Bk) {
        if (!Dom.reachable(Bk))
          continue;
        EXPECT_EQ(Dom.dominates(A, Bk), bruteDominates(M, A, Bk))
            << "blocks " << A << " -> " << Bk;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomPropertyTest,
                         ::testing::Values(7, 11, 17, 23, 31));

TEST(Dominators, DiamondFrontiers) {
  // 0 -> {1,2} -> 3 : DF(1) = DF(2) = {3}; idom(3) = 0.
  Program P;
  Builder B(P);
  ClassId Obj = B.makeClass("Object", InvalidId);
  MethodBuilder MB =
      B.startMethod(Obj, "d", {Type::ref(Obj), Type::intTy()}, Type::voidTy());
  int32_t B1 = MB.newBlock(), B2 = MB.newBlock(), B3 = MB.newBlock();
  MB.emitIf(MB.param(1), B1, B2);
  MB.setBlock(B1);
  MB.emitGoto(B3);
  MB.setBlock(B2);
  MB.emitGoto(B3);
  MB.setBlock(B3);
  MB.emitRet();
  Method &M = P.Methods[MB.id()];
  // Seal manually to inspect dominators pre-SSA.
  for (auto &BB : M.Blocks)
    (void)BB;
  sealCfg(M);
  Dominators Dom(M);
  EXPECT_EQ(Dom.idom(B1), 0);
  EXPECT_EQ(Dom.idom(B2), 0);
  EXPECT_EQ(Dom.idom(B3), 0);
  ASSERT_EQ(Dom.frontier(B1).size(), 1u);
  EXPECT_EQ(Dom.frontier(B1)[0], B3);
  ASSERT_EQ(Dom.frontier(B2).size(), 1u);
  EXPECT_EQ(Dom.frontier(B2)[0], B3);
}

TEST(SSABuilder, RemovesUnreachableBlocks) {
  Program P;
  Builder B(P);
  ClassId Obj = B.makeClass("Object", InvalidId);
  MethodBuilder MB =
      B.startMethod(Obj, "u", {Type::ref(Obj)}, Type::voidTy());
  int32_t Dead = MB.newBlock();
  int32_t End = MB.newBlock();
  MB.emitGoto(End);
  MB.setBlock(Dead); // unreachable
  MB.emitRet();
  MB.setBlock(End);
  MB.emitRet();
  MB.finish();
  const Method &M = P.Methods[MB.id()];
  EXPECT_EQ(M.Blocks.size(), 2u) << "dead block should be removed";
  std::vector<std::string> Errors = verifyProgram(P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

} // namespace
