//===- tests/interp_test.cpp - Concrete interpreter unit tests -----------===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

struct Executed {
  Program P;
  std::unique_ptr<ClassHierarchy> CHA;
  std::unique_ptr<Interpreter> Interp;
  bool Ok = false;

  explicit Executed(const std::string &Src, InterpOptions Opts = {}) {
    installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    EXPECT_TRUE(parseTaj(P, Src, &Errors))
        << (Errors.empty() ? "?" : Errors.front());
    MethodId Root = synthesizeEntrypointDriver(P);
    P.indexStatements();
    CHA = std::make_unique<ClassHierarchy>(P);
    Interp = std::make_unique<Interpreter>(P, *CHA, std::move(Opts));
    Ok = Interp->run({Root});
  }
};

TEST(Interp, ObservesDirectFlow) {
  Executed E(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    w = resp.getWriter();
    w.println(t);
  }
}
)");
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.Interp->flows().size(), 2u); // XSS + LEAK at the same sink
}

TEST(Interp, SanitizerClearsRuleSpecificTaint) {
  Executed E(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response, db: Database): void [entry] {
    t = req.getParameter("q");
    e = Encoder.encodeHtml(t);
    w = resp.getWriter();
    w.println(e);
    q = db.executeQuery(e);
  }
}
)");
  ASSERT_TRUE(E.Ok);
  bool SawXss = false, SawSqli = false;
  for (const DynamicFlow &F : E.Interp->flows()) {
    SawXss |= F.Rule == rules::XSS;
    SawSqli |= F.Rule == rules::SQLI;
  }
  EXPECT_FALSE(SawXss);
  EXPECT_TRUE(SawSqli);
}

TEST(Interp, MapSemanticsAreExact) {
  Executed E(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    m = new HashMap;
    m.put("a", t);
    clean = "x";
    m.put("b", clean);
    u = m.get("b");
    w = resp.getWriter();
    w.println(u);
  }
}
)");
  ASSERT_TRUE(E.Ok);
  EXPECT_TRUE(E.Interp->flows().empty())
      << "concrete map lookup of a clean key must not flow";
}

TEST(Interp, NestedTaintObservedThroughWrapper) {
  Executed E(R"(
class Box extends Object { field v: String; }
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    b = new Box;
    b.v = t;
    w = resp.getWriter();
    w.println(b);
  }
}
)");
  ASSERT_TRUE(E.Ok);
  EXPECT_FALSE(E.Interp->flows().empty());
}

TEST(Interp, ReflectiveInvokeExecutes) {
  Executed E(R"(
class T extends Object {
  method echo(this: T, s: String): String { return s; }
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    k = Class.forName("T");
    m = k.getMethod("echo");
    recv = new T;
    a = new Object[];
    a[] = t;
    r = m.invoke(recv, a);
    w = resp.getWriter();
    w.println(r);
  }
}
)");
  ASSERT_TRUE(E.Ok);
  EXPECT_FALSE(E.Interp->flows().empty());
  // Dynamic call edge to T.echo observed.
  bool SawEcho = false;
  for (const auto &[Site, Callees] : E.Interp->observedCallees())
    for (MethodId M : Callees)
      SawEcho |= E.P.methodName(M) == "T.echo";
  EXPECT_TRUE(SawEcho);
}

TEST(Interp, LoopsTerminateUnderStepBudget) {
  InterpOptions Opts;
  Opts.MaxSteps = 1000;
  Executed E(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    i = 0;
    head:
    c = i < 1000000;
    if c goto body;
    goto done;
    body:
    i = i + 1;
    goto head;
    done:
    return;
  }
}
)",
             std::move(Opts));
  EXPECT_FALSE(E.Ok) << "step budget must fire on the long loop";
}

TEST(Interp, BoundedLoopComputesCorrectly) {
  Executed E(R"(
class App extends Servlet {
  method sum(this: App, n: int): int {
    acc = 0;
    i = 0;
    head:
    c = i < n;
    if c goto body;
    goto done;
    body:
    acc = acc + i;
    i = i + 1;
    goto head;
    done:
    return acc;
  }
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    n = 5;
    s = this.sum(n);
  }
}
)");
  EXPECT_TRUE(E.Ok); // 0+1+2+3+4 computed without budget issues
}

TEST(Interp, ThreadRunsSynchronously) {
  Executed E(R"(
class Shared extends Object { static field data: String; }
class Worker extends Thread {
  field input: String;
  method run(this: Worker): void {
    t = this.input;
    Shared.data = t;
  }
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    wk = new Worker;
    wk.input = t;
    wk.start();
    u = Shared.data;
    w = resp.getWriter();
    w.println(u);
  }
}
)");
  ASSERT_TRUE(E.Ok);
  EXPECT_FALSE(E.Interp->flows().empty())
      << "synchronous thread schedule makes the flow observable";
}

} // namespace
