//===- tests/regression_test.cpp - Whole-pipeline properties -------------===//
//
// Cross-cutting properties over the generated benchmark suite:
//  - determinism: repeated runs produce identical issue sets;
//  - budget monotonicity: flows found under a call-graph budget are a
//    subset of the unbounded flows (the truncated call graph is a
//    subgraph, and the analysis is monotone in it);
//  - bound monotonicity: loosening the §6.2 bounds never loses flows.
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

std::set<std::tuple<StmtId, StmtId, RuleMask>>
issueSet(const AnalysisResult &R) {
  std::set<std::tuple<StmtId, StmtId, RuleMask>> Out;
  for (const Issue &I : R.Issues)
    Out.insert({I.Source, I.Sink, I.Rule});
  return Out;
}

class RegressionTest : public ::testing::TestWithParam<const char *> {
protected:
  const AppSpec &spec() {
    static std::vector<AppSpec> Suite = benchmarkSuite();
    for (const AppSpec &S : Suite)
      if (S.Name == GetParam())
        return S;
    return Suite[0];
  }
};

TEST_P(RegressionTest, AnalysisIsDeterministic) {
  for (const char *Cfg : {"hybrid", "ci"}) {
    GeneratedApp A1 = generateApp(spec());
    GeneratedApp A2 = generateApp(spec());
    AnalysisConfig C1 = Cfg == std::string("hybrid")
                            ? AnalysisConfig::hybridUnbounded()
                            : AnalysisConfig::ci();
    AnalysisConfig C2 = C1;
    TaintAnalysis T1(*A1.P, std::move(C1));
    TaintAnalysis T2(*A2.P, std::move(C2));
    AnalysisResult R1 = T1.run({A1.Root});
    AnalysisResult R2 = T2.run({A2.Root});
    EXPECT_EQ(issueSet(R1), issueSet(R2))
        << spec().Name << "/" << Cfg << ": nondeterministic issue set";
  }
}

TEST_P(RegressionTest, BudgetedFlowsAreSubsetOfUnbounded) {
  GeneratedApp Full = generateApp(spec());
  TaintAnalysis TF(*Full.P, AnalysisConfig::hybridUnbounded());
  auto Unbounded = issueSet(TF.run({Full.Root}));
  for (uint32_t Budget : {50u, 200u, 800u}) {
    GeneratedApp App = generateApp(spec());
    AnalysisConfig C = AnalysisConfig::hybridPrioritized(Budget);
    TaintAnalysis TA(*App.P, std::move(C));
    AnalysisResult R = TA.run({App.Root});
    for (const auto &T : issueSet(R))
      EXPECT_TRUE(Unbounded.count(T))
          << spec().Name << " budget=" << Budget
          << ": budgeted run invented a flow";
  }
}

TEST_P(RegressionTest, LooserBoundsNeverLoseFlows) {
  GeneratedApp App = generateApp(spec());
  auto RunWith = [&](uint32_t Len, uint32_t Depth, uint32_t Hops) {
    GeneratedApp A = generateApp(spec());
    AnalysisConfig C = AnalysisConfig::hybridUnbounded();
    C.MaxFlowLength = Len;
    C.NestedTaintDepth = Depth;
    C.MaxHeapTransitions = Hops;
    TaintAnalysis TA(*A.P, std::move(C));
    return issueSet(TA.run({A.Root}));
  };
  auto Tight = RunWith(8, 1, 4);
  auto Loose = RunWith(0, 32, 0);
  for (const auto &T : Tight)
    EXPECT_TRUE(Loose.count(T))
        << spec().Name << ": tightening a bound added a flow";
}

INSTANTIATE_TEST_SUITE_P(Apps, RegressionTest,
                         ::testing::Values("A", "BlueBlog", "I", "SBM",
                                           "Webgoat"));

} // namespace
