//===- tests/dataflow_test.cpp - String-constant propagation -------------===//
//
// Unit and end-to-end tests for the sparse constant-string analysis
// (dataflow/ConstString.h): the three modes (off / local / ipa), phi
// meets, carrier-append concatenation, interprocedural argument/return
// propagation, write-once field constants, meets to bottom across
// conflicting call sites, RunGuard degradation mid-fixpoint, the solver
// consumers (dictionary channels, computed reflection, per-site
// diagnostics), and warm/cold cache byte-identity per mode through the
// CLI.
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

using namespace taj;
namespace fs = std::filesystem;

namespace {

/// Parses a snippet and runs analyzeConstStrings in the given mode.
struct Analyzed {
  Program P;
  BuiltinLibrary Lib;
  std::unique_ptr<ClassHierarchy> CHA;
  ConstStringResult R;

  explicit Analyzed(const std::string &Src,
                    StringAnalysisMode Mode = StringAnalysisMode::Ipa,
                    RunGuard *Guard = nullptr) {
    Lib = installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    bool Ok = parseTaj(P, Src, &Errors);
    EXPECT_TRUE(Ok) << (Errors.empty() ? "?" : Errors.front());
    P.indexStatements();
    CHA = std::make_unique<ClassHierarchy>(P);
    ConstStringOptions O;
    O.Mode = Mode;
    O.Guard = Guard;
    R = analyzeConstStrings(P, *CHA, O);
  }

  MethodId method(const std::string &Cls, const std::string &Meth) const {
    MethodId M = P.findMethod(P.findClass(Cls), Meth);
    EXPECT_NE(M, InvalidId) << Cls << "." << Meth;
    return M;
  }

  /// The constant (as text) of the operand of \p Cls.\p Meth's return
  /// statement, or "?" when unknown.
  std::string retConst(const std::string &Cls, const std::string &Meth) const {
    MethodId M = method(Cls, Meth);
    for (const BasicBlock &B : P.Methods[M].Blocks)
      for (const Instruction &I : B.Insts)
        if (I.Op == Opcode::Return && !I.Args.empty())
          return constText(M, I.Args[0]);
    ADD_FAILURE() << "no return value in " << Cls << "." << Meth;
    return "?";
  }

  /// The constant of parameter \p Idx of \p Cls.\p Meth (params are SSA
  /// values 0..NumParams-1).
  std::string paramConst(const std::string &Cls, const std::string &Meth,
                         ValueId Idx) const {
    return constText(method(Cls, Meth), Idx);
  }

  std::string constText(MethodId M, ValueId V) const {
    Symbol S = R.valueOf(M, V);
    return S == ConstStringResult::Unknown ? "?" : std::string(P.Pool.str(S));
  }
};

/// One source whose constant routing differs per mode: a direct constant,
/// a cross-call constant, and a carrier-folded concatenation.
const char *const CrossCallSrc = R"(
class App extends Servlet {
  method use(this: App, k: String): String { return k; }
  method direct(this: App): String { c = "direct"; d = c; return d; }
  method doGet(this: App, req: Request): void [entry] {
    x = this.use("routed");
  }
}
)";

//===----------------------------------------------------------------------===//
// Modes
//===----------------------------------------------------------------------===//

TEST(ConstString, LocalResolvesDirectConstantsAndCopies) {
  Analyzed A(CrossCallSrc, StringAnalysisMode::Local);
  EXPECT_EQ(A.retConst("App", "direct"), "direct");
  // Cross-call facts need ipa.
  EXPECT_EQ(A.paramConst("App", "use", 1), "?");
  EXPECT_FALSE(A.R.degraded());
}

TEST(ConstString, OffResolvesNothing) {
  Analyzed A(CrossCallSrc, StringAnalysisMode::Off);
  EXPECT_EQ(A.retConst("App", "direct"), "?");
  EXPECT_EQ(A.paramConst("App", "use", 1), "?");
  EXPECT_EQ(A.R.stats().get("conststr.values_const"), 0u);
}

TEST(ConstString, IpaBindsArgumentToParameter) {
  Analyzed A(CrossCallSrc, StringAnalysisMode::Ipa);
  EXPECT_EQ(A.retConst("App", "direct"), "direct");
  EXPECT_EQ(A.paramConst("App", "use", 1), "routed");
  // The helper's return is its parameter: the constant flows back out.
  EXPECT_EQ(A.retConst("App", "use"), "routed");
}

//===----------------------------------------------------------------------===//
// Phis
//===----------------------------------------------------------------------===//

TEST(ConstString, PhiOfEqualConstantsKeepsConstant) {
  Analyzed A(R"(
class App extends Servlet {
  method pick(this: App, cond: int): String {
    x = "same";
    if cond goto other;
    goto done;
  other:
    x = "same";
  done:
    return x;
  }
  method doGet(this: App, req: Request): void [entry] {}
}
)");
  EXPECT_EQ(A.retConst("App", "pick"), "same");
}

TEST(ConstString, PhiOfConflictingConstantsMeetsToBottom) {
  Analyzed A(R"(
class App extends Servlet {
  method pick(this: App, cond: int): String {
    x = "one";
    if cond goto other;
    goto done;
  other:
    x = "two";
  done:
    return x;
  }
  method doGet(this: App, req: Request): void [entry] {}
}
)");
  EXPECT_EQ(A.retConst("App", "pick"), "?");
  EXPECT_GE(A.R.stats().get("conststr.meets_to_bottom"), 1u);
}

//===----------------------------------------------------------------------===//
// Interprocedural meets, returns, fields
//===----------------------------------------------------------------------===//

TEST(ConstString, ConflictingCallSitesMeetToBottom) {
  Analyzed A(R"(
class App extends Servlet {
  method use(this: App, k: String): String { return k; }
  method doGet(this: App, req: Request): void [entry] {
    a = this.use("one");
    b = this.use("two");
  }
}
)");
  EXPECT_EQ(A.paramConst("App", "use", 1), "?");
  EXPECT_GE(A.R.stats().get("conststr.meets_to_bottom"), 1u);
}

TEST(ConstString, ReturnConstantReachesCallResult) {
  Analyzed A(R"(
class App extends Servlet {
  method name(this: App): String { return "cfg"; }
  method wrap(this: App): String { n = this.name(); return n; }
  method doGet(this: App, req: Request): void [entry] {}
}
)");
  EXPECT_EQ(A.retConst("App", "wrap"), "cfg");
}

TEST(ConstString, WriteOnceStaticFieldKeepsItsConstant) {
  Analyzed A(R"(
class Cfg extends Object {
  static field mode: String;
}
class App extends Servlet {
  method init(this: App): void { Cfg.mode = "prod"; }
  method read(this: App): String { m = Cfg.mode; return m; }
  method doGet(this: App, req: Request): void [entry] {}
}
)");
  EXPECT_EQ(A.retConst("App", "read"), "prod");
}

TEST(ConstString, TwiceWrittenFieldMeetsToBottom) {
  Analyzed A(R"(
class Cfg extends Object {
  static field mode: String;
}
class App extends Servlet {
  method init(this: App): void { Cfg.mode = "prod"; }
  method flip(this: App): void { Cfg.mode = "test"; }
  method read(this: App): String { m = Cfg.mode; return m; }
  method doGet(this: App, req: Request): void [entry] {}
}
)");
  EXPECT_EQ(A.retConst("App", "read"), "?");
}

//===----------------------------------------------------------------------===//
// Carrier concatenation
//===----------------------------------------------------------------------===//

TEST(ConstString, CarrierAppendChainFoldsToConcatenation) {
  Analyzed A(R"(
class App extends Servlet {
  method build(this: App): String {
    sb = new StringBuilder;
    sb2 = sb.append("foo");
    sb3 = sb2.append("bar");
    s = sb3.toString();
    return s;
  }
  method doGet(this: App, req: Request): void [entry] {}
}
)");
  EXPECT_EQ(A.retConst("App", "build"), "foobar");
  EXPECT_GE(A.R.stats().get("conststr.concats_folded"), 1u);
}

TEST(ConstString, AppendOfNonConstantIsNotAConstant) {
  Analyzed A(R"(
class App extends Servlet {
  method build(this: App, req: Request): String {
    t = req.getParameter("p");
    sb = new StringBuilder;
    sb2 = sb.append("prefix");
    sb3 = sb2.append(t);
    s = sb3.toString();
    return s;
  }
  method doGet(this: App, req: Request): void [entry] {
    x = this.build(req);
  }
}
)");
  EXPECT_EQ(A.retConst("App", "build"), "?");
}

TEST(ConstString, TrimDoesNotFoldAsConcatenation) {
  // String.trim is a StringTransfer on a carrier class but must not be
  // treated as identity/concat: " x ".trim() != " x ".
  Analyzed A(R"(
class App extends Servlet {
  method build(this: App): String {
    s = "  x  ";
    t = s.trim();
    return t;
  }
  method doGet(this: App, req: Request): void [entry] {}
}
)");
  EXPECT_EQ(A.retConst("App", "build"), "?");
}

//===----------------------------------------------------------------------===//
// Guard degradation
//===----------------------------------------------------------------------===//

TEST(ConstString, GuardCutoffFallsBackToLocalFacts) {
  RunGuard::Limits L;
  L.FailAtCheckpoint = 1;
  RunGuard G(L);
  Analyzed A(CrossCallSrc, StringAnalysisMode::Ipa, &G);
  EXPECT_TRUE(A.R.degraded());
  EXPECT_EQ(A.R.stats().get("conststr.guard_stop"), 1u);
  // Local facts survive; the optimistic interprocedural claim is dropped.
  EXPECT_EQ(A.retConst("App", "direct"), "direct");
  EXPECT_EQ(A.paramConst("App", "use", 1), "?");
}

//===----------------------------------------------------------------------===//
// Consumers: dictionary channels, computed reflection, diagnostics
//===----------------------------------------------------------------------===//

/// Tainted put routed through a helper whose key is a parameter; the
/// clean key "c" must stay clean exactly when the helper key resolves.
const char *const HelperKeyMapSrc = R"(
class App extends Servlet {
  method kput(this: App, m: HashMap, k: String, v: String): void {
    m.put(k, v);
  }
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("p");
    m = new HashMap;
    this.kput(m, "t", t);
    m.put("c", "benign");
    w = resp.getWriter();
    u = m.get("t");
    w.println(u);
    v = m.get("c");
    w.println(v);
  }
}
)";

size_t distinctFlows(const AnalysisResult &R) {
  std::set<std::pair<StmtId, StmtId>> Pairs;
  for (const Issue &I : R.Issues)
    Pairs.insert({I.Source, I.Sink});
  return Pairs.size();
}

AnalysisResult runEndToEnd(const std::string &Src, StringAnalysisMode Mode) {
  static std::vector<std::unique_ptr<Program>> Keep; // outlive results
  Keep.push_back(std::make_unique<Program>());
  Program &P = *Keep.back();
  installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  EXPECT_TRUE(parseTaj(P, Src, &Errors))
      << (Errors.empty() ? "?" : Errors.front());
  MethodId Root = synthesizeEntrypointDriver(P);
  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.StringAnalysis = Mode;
  TaintAnalysis TA(P, std::move(C));
  return TA.run({Root});
}

TEST(ConstStringConsumers, HelperRoutedMapKeySeparatesCleanKeyUnderIpa) {
  AnalysisResult Ipa = runEndToEnd(HelperKeyMapSrc, StringAnalysisMode::Ipa);
  EXPECT_EQ(distinctFlows(Ipa), 1u); // only get("t") -> println
  AnalysisResult Local =
      runEndToEnd(HelperKeyMapSrc, StringAnalysisMode::Local);
  EXPECT_EQ(distinctFlows(Local), 2u); // wildcard put taints get("c") too
}

const char *const ComputedReflSrc = R"(
class Target extends Object {
  method ident(this: Target, x: String): String { return x; }
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("p");
    sb = new StringBuilder;
    sb2 = sb.append("Tar");
    sb3 = sb2.append("get");
    n = sb3.toString();
    k = Class.forName(n);
    md = k.getMethod("ident");
    recv = new Target;
    a = new Object[];
    a[] = t;
    r = md.invoke(recv, a);
    w = resp.getWriter();
    w.println(r);
  }
}
)";

TEST(ConstStringConsumers, ComputedReflectiveTargetResolvesOnlyUnderIpa) {
  AnalysisResult Ipa = runEndToEnd(ComputedReflSrc, StringAnalysisMode::Ipa);
  EXPECT_EQ(distinctFlows(Ipa), 1u);
  EXPECT_GE(Ipa.RunStats.get("conststr.reflective_resolved"), 1u);
  EXPECT_EQ(Ipa.RunStats.get("reflection.unresolved"), 0u);

  AnalysisResult Local =
      runEndToEnd(ComputedReflSrc, StringAnalysisMode::Local);
  EXPECT_EQ(distinctFlows(Local), 0u); // flow through invoke is missed
  EXPECT_GE(Local.RunStats.get("reflection.unresolved"), 1u);
}

TEST(ConstStringConsumers, UnresolvedReflectionReportsPerSiteDiagnostics) {
  AnalysisResult Local =
      runEndToEnd(ComputedReflSrc, StringAnalysisMode::Local);
  // Bare counter plus one keyed diagnostic naming method and statement.
  EXPECT_GE(Local.RunStats.get("reflection.unresolved"), 1u);
  std::string Text = Local.RunStats.toString();
  EXPECT_NE(Text.find("reflection.unresolved_site.App.doGet#"),
            std::string::npos)
      << Text;
}

//===----------------------------------------------------------------------===//
// CLI: warm/cold byte-identity per mode, cache miss on mode change
//===----------------------------------------------------------------------===//

struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/taj-dataflow-XXXXXX";
    const char *D = ::mkdtemp(Buf);
    EXPECT_NE(D, nullptr);
    Path = D ? D : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code Ec;
      fs::remove_all(Path, Ec);
    }
  }
};

std::string runCli(const std::string &Args, int &ExitCode) {
  std::string Cmd = std::string(TAJ_CLI_PATH) + " " + Args;
  FILE *P = ::popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int St = ::pclose(P);
  ExitCode = WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  return Out;
}

uint64_t statFromJson(const std::string &Path, const std::string &Key) {
  std::ifstream In(Path);
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  std::string Needle = "\"" + Key + "\":";
  size_t At = Text.find(Needle);
  if (At == std::string::npos)
    return 0;
  return std::strtoull(Text.c_str() + At + Needle.size(), nullptr, 10);
}

TEST(CliStringAnalysis, WarmRunsAreByteIdenticalPerModeAndMissAcrossModes) {
  TempDir D;
  const std::string Example = TAJ_EXAMPLE_TAJ;
  const std::string CacheDir = D.Path + "/cache";
  for (const char *Mode : {"off", "local", "ipa"}) {
    int Exit = -1;
    std::string Flags = std::string("--string-analysis=") + Mode +
                        " --cache-dir=\"" + CacheDir + "\"";
    std::string ColdJson = D.Path + "/cold-" + Mode + ".json";
    std::string Cold = runCli(Flags + " --stats-json=\"" + ColdJson +
                                  "\" \"" + Example + "\" 2>/dev/null",
                              Exit);
    ASSERT_EQ(Exit, 0) << Mode;
    // Fresh mode => fresh pts/sdg keys: the analysis artifacts must miss.
    EXPECT_GE(statFromJson(ColdJson, "persist.miss"), 2u) << Mode;
    std::string WarmJson = D.Path + "/warm-" + Mode + ".json";
    std::string Warm = runCli(Flags + " --stats-json=\"" + WarmJson +
                                  "\" \"" + Example + "\" 2>/dev/null",
                              Exit);
    ASSERT_EQ(Exit, 0) << Mode;
    EXPECT_EQ(Cold, Warm) << Mode;
    EXPECT_GE(statFromJson(WarmJson, "persist.hit"), 2u) << Mode;
  }
}

TEST(CliStringAnalysis, RejectsUnknownMode) {
  int Exit = -1;
  std::string Out = runCli(std::string("--string-analysis=bogus \"") +
                               TAJ_EXAMPLE_TAJ + "\" 2>&1",
                           Exit);
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("off|local|ipa"), std::string::npos) << Out;
}

} // namespace
