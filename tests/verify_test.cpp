//===- tests/verify_test.cpp - Self-verification properties --------------===//
//
// The --verify pass re-checks the analyzer's own artifacts, and these
// tests pin down its contract:
//  - clean runs verify clean, in every slicer, at 1 and 8 threads, cold
//    and warm, with results identical to --verify=off;
//  - each seeded defect class (IR table corruption, phantom call edge,
//    non-fixpoint points-to fact, dangling SDG edge, unjustified heap
//    edge, unwitnessable finding) is detected under its own checker
//    counter;
//  - a checksum-valid but structurally-poisoned persisted artifact is
//    rejected on warm restore (persist.verify_rejected), fails the run
//    with exit 1, and is dropped from the cache so the next run is clean;
//  - taj-cli output under --verify=full is byte-identical to --verify=off
//    on clean runs, including batch mode.
//
// The persist-poisoning tests mutate artifacts through re-serialization
// (corrupt in memory, serialize, store) rather than raw byte flips: a
// stored record's checksum is recomputed by store(), so the mutation is
// checksum-valid by construction and only the structural restore
// validation can catch it — exactly the gap --verify=full closes (the
// in-memory hot tier skips checksum re-verification entirely).
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "persist/Cache.h"
#include "persist/Serialize.h"
#include "server/Service.h"
#include "slicer/HeapEdges.h"
#include "verify/Verify.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace taj {

/// Test-only corruption hooks: the defect-seeding tests must be able to
/// break a finished artifact in place, which no public API allows.
class SolverTestPeer {
public:
  static void clearPointsTo(const PointsToSolver &S, PKId PK) {
    auto &Mut = const_cast<PointsToSolver &>(S);
    if (PK >= Mut.Pts.size())
      return;
    // A collapsed key stores its set at the cycle representative.
    while (Mut.RepParent[PK] != PK)
      PK = Mut.RepParent[PK];
    Mut.Pts[PK].clear();
  }
};

class SdgTestPeer {
public:
  static std::vector<std::vector<SDGEdge>> &succs(const SDG &G) {
    return const_cast<SDG &>(G).Succs;
  }
  static std::vector<SDGNode> &nodes(const SDG &G) {
    return const_cast<SDG &>(G).Nodes;
  }
};

class CallGraphTestPeer {
public:
  /// Redirects the site of one existing cross-method call edge to a
  /// statement of the callee (never the caller), returning true on
  /// success. Mutating in place avoids CallGraph::addEdge, whose guard
  /// checkpoint would dereference the run's already-destroyed RunGuard.
  static bool poisonCrossMethodSite(const CallGraph &CG, const Program &P) {
    auto &Out = const_cast<CallGraph &>(CG).Out;
    for (CGNodeId N = 0; N < Out.size(); ++N)
      for (CGEdge &E : Out[N]) {
        const MethodId CalleeM = CG.node(E.Callee).M;
        if (CalleeM != CG.node(N).M) {
          E.Site = P.methodStmtBegin(CalleeM);
          return true;
        }
      }
    return false;
  }
};

class HeapEdgesTestPeer {
public:
  static void addLoadEdge(const HeapEdges &HE, SDGNodeId St, SDGNodeId Ld) {
    const_cast<HeapEdges &>(HE).Stores[St].Loads.push_back(Ld);
  }
  static void clearAll(const HeapEdges &HE) {
    const_cast<HeapEdges &>(HE).Stores.clear();
  }
};

} // namespace taj

using namespace taj;
using namespace taj::verify;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/taj-verify-XXXXXX";
    const char *D = ::mkdtemp(Buf);
    EXPECT_NE(D, nullptr);
    Path = D ? D : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code Ec;
      fs::remove_all(Path, Ec);
    }
  }
};

const AppSpec &specByName(const char *Name) {
  static std::vector<AppSpec> Suite = benchmarkSuite();
  for (const AppSpec &S : Suite)
    if (S.Name == Name)
      return S;
  return Suite[0];
}

/// One solved analysis over a generated app, shared by the checker tests.
struct Solved {
  GeneratedApp App;
  std::unique_ptr<TaintAnalysis> TA;
  AnalysisResult R;

  explicit Solved(const char *Name, AnalysisConfig C = {}) {
    App = generateApp(specByName(Name));
    C.Verify = VerifyMode::Off; // the tests drive the checkers directly
    TA = std::make_unique<TaintAnalysis>(*App.P, std::move(C));
    R = TA->run({App.Root});
  }
  const Program &P() const { return *App.P; }
};

/// Finds a processed call-graph node containing a New whose destination
/// points-to set is non-empty; InvalidId if none (never for our apps).
PKId findAllocDestKey(const Program &P, const PointsToSolver &S) {
  const CallGraph &CG = S.callGraph();
  for (CGNodeId N = 0; N < CG.numNodes(); ++N) {
    const CGNode &Node = CG.node(N);
    if (!Node.ConstraintsAdded || !P.Methods[Node.M].hasBody())
      continue;
    for (const BasicBlock &BB : P.Methods[Node.M].Blocks) {
      for (const Instruction &I : BB.Insts) {
        if (I.Op != Opcode::New)
          continue;
        PKId PK = S.pointerKeys().localLookup(N, I.Dst);
        if (PK != InvalidId && !S.pointsTo(PK).empty())
          return PK;
      }
    }
  }
  return InvalidId;
}

using IssueKey = std::tuple<StmtId, StmtId, RuleMask, uint32_t>;
std::set<IssueKey> issueSet(const std::vector<Issue> &Issues) {
  std::set<IssueKey> S;
  for (const Issue &I : Issues)
    S.insert({I.Source, I.Sink, I.Rule, I.Length});
  return S;
}

std::string readFileOrDie(const char *Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good());
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The analyzeApp input-fingerprint convention (server/Service.cpp).
std::string inputFpOf(const std::string &Text) {
  uint64_t H = persist::fnv1a("taj-input", 9);
  H = persist::fnv1a(Text.data(), Text.size(), H);
  H = persist::fnv1a("|", 1, H);
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(H));
  return Hex;
}

std::string runCli(const std::string &Args, int &ExitCode) {
  std::string Cmd = std::string(TAJ_CLI_PATH) + " " + Args;
  FILE *P = ::popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int St = ::pclose(P);
  ExitCode = WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  return Out;
}

//===----------------------------------------------------------------------===//
// Mode plumbing and the violation sink
//===----------------------------------------------------------------------===//

TEST(VerifyMode, ParseAndNameRoundTrip) {
  VerifyMode M = VerifyMode::Off;
  EXPECT_TRUE(parseVerifyMode("off", M));
  EXPECT_EQ(M, VerifyMode::Off);
  EXPECT_TRUE(parseVerifyMode("fast", M));
  EXPECT_EQ(M, VerifyMode::Fast);
  EXPECT_TRUE(parseVerifyMode("full", M));
  EXPECT_EQ(M, VerifyMode::Full);
  EXPECT_FALSE(parseVerifyMode("FULL", M));
  EXPECT_FALSE(parseVerifyMode("", M));
  for (VerifyMode V : {VerifyMode::Off, VerifyMode::Fast, VerifyMode::Full}) {
    VerifyMode Back = VerifyMode::Off;
    EXPECT_TRUE(parseVerifyMode(verifyModeName(V), Back));
    EXPECT_EQ(Back, V);
  }
}

TEST(Violations, CleanSinkExportsNothing) {
  Violations V;
  Stats S;
  V.exportStats(S);
  EXPECT_EQ(S.toString(), "");
}

TEST(Violations, CountsPerCheckerAndExports) {
  Violations V;
  V.report(Checker::Sdg, "seeded");
  V.report(Checker::Sdg, "seeded");
  V.report(Checker::Witness, "seeded");
  V.noteRestoreRejected();
  EXPECT_EQ(V.total(), 3u);
  EXPECT_EQ(V.count(Checker::Sdg), 2u);
  EXPECT_EQ(V.count(Checker::Witness), 1u);
  EXPECT_EQ(V.count(Checker::Heap), 0u);
  Stats S;
  V.exportStats(S);
  EXPECT_EQ(S.get("verify.violations"), 3u);
  EXPECT_EQ(S.get("verify.sdg_violations"), 2u);
  EXPECT_EQ(S.get("verify.witness_violations"), 1u);
  EXPECT_EQ(S.get("persist.verify_rejected"), 1u);
}

//===----------------------------------------------------------------------===//
// Seeded defects, one per checker
//===----------------------------------------------------------------------===//

TEST(IrChecker, FlagsTableCorruption) {
  GeneratedApp A = generateApp(specByName("A"));
  Violations Clean;
  verifyIr(*A.P, Clean);
  EXPECT_EQ(Clean.total(), 0u);

  ASSERT_GE(A.P->Classes.size(), 3u);
  A.P->Classes[2].Super = 59999; // dangling superclass reference
  Violations V;
  verifyIr(*A.P, V);
  EXPECT_GE(V.count(Checker::Ir), 1u);
  EXPECT_EQ(V.total(), V.count(Checker::Ir));
}

TEST(GraphChecker, CleanSolveVerifies) {
  Solved S("A");
  Violations V;
  verifyGraphs(S.P(), S.TA->hierarchy(), S.TA->solver(),
               &S.TA->constStrings(), V);
  EXPECT_EQ(V.total(), 0u);
}

TEST(GraphChecker, FlagsPhantomCallEdge) {
  Solved S("A");
  const PointsToSolver &Solver = S.TA->solver();
  const CallGraph &CG = Solver.callGraph();
  // Redirect one edge's site into the *callee's* statement range: a call
  // site that is not a statement of the caller is unjustifiable under any
  // dispatch model.
  ASSERT_TRUE(CallGraphTestPeer::poisonCrossMethodSite(CG, S.P()));
  Violations V;
  verifyGraphs(S.P(), S.TA->hierarchy(), Solver, &S.TA->constStrings(), V);
  EXPECT_EQ(V.count(Checker::CallGraph), 1u);
  EXPECT_EQ(V.total(), 1u);
}

TEST(GraphChecker, FlagsNonFixpointPointsTo) {
  Solved S("A");
  PKId PK = findAllocDestKey(S.P(), S.TA->solver());
  ASSERT_NE(PK, InvalidId);
  SolverTestPeer::clearPointsTo(S.TA->solver(), PK);
  Violations V;
  verifyGraphs(S.P(), S.TA->hierarchy(), S.TA->solver(),
               &S.TA->constStrings(), V);
  EXPECT_GE(V.count(Checker::PointsTo), 1u);
}

TEST(SdgChecker, CleanGraphVerifiesAndDanglingEdgeIsFlagged) {
  Solved S("A");
  SDGOptions SO;
  SO.ContextExpanded = true;
  persist::SdgArtifacts A = persist::loadOrBuildSdg(
      S.P(), S.TA->hierarchy(), S.TA->solver(), SO, 32, nullptr, "");
  ASSERT_NE(A.G, nullptr);
  ASSERT_NE(A.HE, nullptr);
  Violations Clean;
  verifySdg(S.P(), *A.G, A.HE.get(), S.TA->solver(), VerifyMode::Full,
            Clean);
  EXPECT_EQ(Clean.total(), 0u);

  auto &Succs = SdgTestPeer::succs(*A.G);
  size_t From = 0;
  while (From < Succs.size() && Succs[From].empty())
    ++From;
  ASSERT_LT(From, Succs.size());
  Succs[From][0].To = A.G->numNodes() + 7; // dangling edge target
  Violations V;
  verifySdg(S.P(), *A.G, A.HE.get(), S.TA->solver(), VerifyMode::Fast, V);
  EXPECT_EQ(V.count(Checker::Sdg), 1u);
  EXPECT_EQ(V.total(), 1u);
}

TEST(SdgChecker, FlagsUnjustifiedHeapEdgeOnlyUnderFull) {
  Solved S("A");
  SDGOptions SO;
  SO.ContextExpanded = true;
  persist::SdgArtifacts A = persist::loadOrBuildSdg(
      S.P(), S.TA->hierarchy(), S.TA->solver(), SO, 32, nullptr, "");
  ASSERT_NE(A.HE, nullptr);
  ASSERT_FALSE(A.G->storeNodes().empty());
  const SDGNodeId St = A.G->storeNodes().front();
  // A plain statement node (no heap access) can never be a justified
  // store->load target.
  SDGNodeId Plain = InvalidId;
  for (SDGNodeId N = 0; N < A.G->numNodes(); ++N)
    if (A.G->node(N).Kind == SDGNodeKind::Stmt &&
        A.G->node(N).Access == HeapAccess::None) {
      Plain = N;
      break;
    }
  ASSERT_NE(Plain, InvalidId);
  HeapEdgesTestPeer::addLoadEdge(*A.HE, St, Plain);

  Violations Fast;
  verifySdg(S.P(), *A.G, A.HE.get(), S.TA->solver(), VerifyMode::Fast, Fast);
  EXPECT_EQ(Fast.count(Checker::Heap), 0u); // justification is Full-only
  Violations Full;
  verifySdg(S.P(), *A.G, A.HE.get(), S.TA->solver(), VerifyMode::Full, Full);
  EXPECT_EQ(Full.count(Checker::Heap), 1u);
  EXPECT_EQ(Full.total(), 1u);
}

TEST(WitnessChecker, RealIssuesReplayCleanly) {
  Solved S("A");
  SlicerOptions SLO;
  SliceRunResult SR =
      runHybridSlicer(S.P(), S.TA->hierarchy(), S.TA->solver(), SLO);
  ASSERT_FALSE(SR.Issues.empty());
  SDGOptions SO;
  SO.ContextExpanded = true;
  persist::SdgArtifacts A = persist::loadOrBuildSdg(
      S.P(), S.TA->hierarchy(), S.TA->solver(), SO, 32, nullptr, "");
  Violations V;
  verifyWitnesses(*A.G, A.HE.get(), SR.Issues, V);
  EXPECT_EQ(V.total(), 0u);
}

TEST(WitnessChecker, FlagsShortenedFlowLength) {
  Solved S("A");
  SlicerOptions SLO;
  SliceRunResult SR =
      runHybridSlicer(S.P(), S.TA->hierarchy(), S.TA->solver(), SLO);
  auto It = std::find_if(SR.Issues.begin(), SR.Issues.end(),
                         [](const Issue &I) { return I.Length > 0; });
  ASSERT_NE(It, SR.Issues.end());
  Issue Shortened = *It;
  Shortened.Length = 0; // claims source == sink adjacency it cannot have
  SDGOptions SO;
  SO.ContextExpanded = true;
  persist::SdgArtifacts A = persist::loadOrBuildSdg(
      S.P(), S.TA->hierarchy(), S.TA->solver(), SO, 32, nullptr, "");
  Violations V;
  verifyWitnesses(*A.G, A.HE.get(), {Shortened}, V);
  EXPECT_EQ(V.count(Checker::Witness), 1u);
  EXPECT_EQ(V.total(), 1u);
}

TEST(WitnessChecker, CorruptedSdgEdgesYieldExactlyOneViolation) {
  Solved S("A");
  SlicerOptions SLO;
  SliceRunResult SR =
      runHybridSlicer(S.P(), S.TA->hierarchy(), S.TA->solver(), SLO);
  auto It = std::find_if(SR.Issues.begin(), SR.Issues.end(),
                         [](const Issue &I) { return I.Source != I.Sink; });
  ASSERT_NE(It, SR.Issues.end());
  SDGOptions SO;
  SO.ContextExpanded = true;
  persist::SdgArtifacts A = persist::loadOrBuildSdg(
      S.P(), S.TA->hierarchy(), S.TA->solver(), SO, 32, nullptr, "");
  // Sever the in-memory graph: the reported flow loses every witness path.
  for (auto &Edges : SdgTestPeer::succs(*A.G))
    Edges.clear();
  HeapEdgesTestPeer::clearAll(*A.HE);
  Violations V;
  verifyWitnesses(*A.G, A.HE.get(), {*It}, V);
  EXPECT_EQ(V.count(Checker::Witness), 1u);
  EXPECT_EQ(V.total(), 1u);
}

//===----------------------------------------------------------------------===//
// Clean-run matrix: slicers x threads x cold/warm under --verify=full
//===----------------------------------------------------------------------===//

TEST(VerifyMatrix, FullModeIsCleanAndResultPreservingEverywhere) {
  struct Cfg {
    const char *Name;
    AnalysisConfig (*Make)();
  };
  const Cfg Cfgs[] = {{"hybrid", AnalysisConfig::hybridUnbounded},
                      {"cs", AnalysisConfig::cs},
                      {"ci", AnalysisConfig::ci}};
  for (const Cfg &C : Cfgs) {
    AnalysisConfig Base = C.Make();
    Base.Verify = VerifyMode::Off;
    Solved Baseline("BlueBlog", Base);
    ASSERT_TRUE(Baseline.R.Completed) << C.Name;
    const std::set<IssueKey> Want = issueSet(Baseline.R.Issues);

    TempDir D;
    persist::ArtifactCache Cache(D.Path);
    for (uint32_t Threads : {1u, 8u}) {
      for (bool Warm : {false, true}) {
        AnalysisConfig AC = C.Make();
        AC.Verify = VerifyMode::Full;
        AC.Threads = Threads;
        AC.Cache = &Cache;
        AC.InputFingerprint = "app:BlueBlog";
        GeneratedApp App = generateApp(specByName("BlueBlog"));
        TaintAnalysis TA(*App.P, std::move(AC));
        AnalysisResult R = TA.run({App.Root});
        SCOPED_TRACE(std::string(C.Name) + " threads=" +
                     std::to_string(Threads) + (Warm ? " warm" : " cold"));
        EXPECT_EQ(R.VerifyViolations, 0u);
        EXPECT_EQ(R.RunStats.get("verify.violations"), 0u);
        EXPECT_EQ(R.RunStats.get("persist.verify_rejected"), 0u);
        EXPECT_EQ(issueSet(R.Issues), Want);
        if (Warm) {
          EXPECT_GT(R.RunStats.get("persist.hit"), 0u);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Poisoned persisted artifacts: checksum-valid, structurally wrong
//===----------------------------------------------------------------------===//

/// Rebuilds the frontend exactly as analyzeApp does, for artifact surgery.
struct Rebuilt {
  Program P;
  MethodId Root = InvalidId;
  std::unique_ptr<ClassHierarchy> CHA;
  ConstStringResult CS;
  std::unique_ptr<PointsToSolver> Solver;
  bool Ok = false;

  /// Restores the program from the cache's own IR record — the exact
  /// program warm analyzeApp runs pair with the pts/sdg artifacts.
  Rebuilt(persist::ArtifactCache &Cache, const std::string &InputFp) {
    auto Payload = Cache.load(persist::ArtifactCache::makeKey("ir", InputFp, ""),
                              persist::ArtifactKind::Ir);
    if (!Payload)
      return;
    persist::Reader R(Payload->data(), Payload->size());
    if (!persist::Access::restoreProgram(P, R))
      return;
    // analyzeApp appends the synthetic entrypoint driver after the IR
    // restore and before solving; the solver artifact's statement ids
    // cover it, so it must exist before restoreSolver's validation.
    Root = synthesizeEntrypointDriver(P);
    P.indexStatements();
    CHA = std::make_unique<ClassHierarchy>(P);
    Ok = true;
  }

  bool restoreSolverFrom(persist::ArtifactCache &Cache,
                         const std::string &PtsKey,
                         const AnalysisConfig &C) {
    // The solver must be constructed exactly as the run that stored the
    // artifact constructed it — including the const-string facts, which
    // shape the symbols the solver interns up front.
    ConstStringOptions CSO;
    CSO.Mode = C.StringAnalysis;
    CS = analyzeConstStrings(P, *CHA, CSO);
    PointsToOptions PO = C.pointsToOptions();
    PO.ConstStrings = &CS;
    Solver = std::make_unique<PointsToSolver>(P, *CHA, PO);
    auto Payload = Cache.load(PtsKey, persist::ArtifactKind::PointsTo);
    if (!Payload) {
      std::fprintf(stderr, "restoreSolverFrom: no payload for key %s\n",
                   PtsKey.c_str());
      return false;
    }
    persist::Reader R(Payload->data(), Payload->size());
    const bool Ok = persist::Access::restoreSolver(*Solver, R);
    if (!Ok)
      std::fprintf(stderr, "restoreSolverFrom: structural restore failed\n");
    return Ok;
  }
};

TEST(PersistPoison, NonFixpointPointsToArtifactIsRejectedThenDropped) {
  const std::string Text = readFileOrDie(TAJ_EXAMPLE_TAJ);
  TempDir D;
  persist::ArtifactCache Cache(D.Path);
  server::RunOptions Opt;
  Opt.Verify = VerifyMode::Full;
  Opt.Threads = 1;
  const std::vector<server::AppSource> Src = {{"webapp.taj", true, Text}};

  Stats S1;
  EXPECT_EQ(server::analyzeApp(Src, Opt, &Cache, &S1).Exit,
            server::ExitClean);

  // Poison the points-to artifact: drop an allocation fact and re-store.
  // store() recomputes the record checksum, so only --verify=full's
  // structural recheck can tell the artifact is wrong.
  AnalysisConfig C;
  ASSERT_TRUE(server::buildConfig(Opt, C));
  const std::string PtsKey = persist::ArtifactCache::makeKey(
      "pts", inputFpOf(Text), C.pointsToFingerprint());
  Rebuilt RB(Cache, inputFpOf(Text));
  ASSERT_TRUE(RB.Ok);
  ASSERT_TRUE(RB.restoreSolverFrom(Cache, PtsKey, C));
  PKId PK = findAllocDestKey(RB.P, *RB.Solver);
  ASSERT_NE(PK, InvalidId);
  SolverTestPeer::clearPointsTo(*RB.Solver, PK);
  persist::Writer W;
  persist::Access::serializeSolver(*RB.Solver, W);
  Cache.store(PtsKey, persist::ArtifactKind::PointsTo, W.bytes());

  Stats S2;
  EXPECT_EQ(server::analyzeApp(Src, Opt, &Cache, &S2).Exit,
            server::ExitError);
  EXPECT_GE(S2.get("verify.pointsto_violations"), 1u);
  EXPECT_GE(S2.get("persist.verify_rejected"), 1u);

  // The rejection dropped the poisoned entry: the next run recomputes
  // cold and is clean again.
  Stats S3;
  EXPECT_EQ(server::analyzeApp(Src, Opt, &Cache, &S3).Exit,
            server::ExitClean);
  EXPECT_EQ(S3.get("verify.violations"), 0u);
}

TEST(PersistPoison, CorruptSdgArtifactIsRejectedWithExitOne) {
  const std::string Text = readFileOrDie(TAJ_EXAMPLE_TAJ);
  TempDir D;
  persist::ArtifactCache Cache(D.Path);
  server::RunOptions Opt;
  Opt.Verify = VerifyMode::Full;
  Opt.Threads = 1;
  const std::vector<server::AppSource> Src = {{"webapp.taj", true, Text}};

  Stats S1;
  EXPECT_EQ(server::analyzeApp(Src, Opt, &Cache, &S1).Exit,
            server::ExitClean);

  AnalysisConfig C;
  ASSERT_TRUE(server::buildConfig(Opt, C));
  const std::string InputFp = inputFpOf(Text);
  const std::string PtsKey = persist::ArtifactCache::makeKey(
      "pts", InputFp, C.pointsToFingerprint());
  const std::string SdgKey = persist::ArtifactCache::makeKey(
      "sdg", InputFp, C.sdgFingerprint());
  Rebuilt RB(Cache, inputFpOf(Text));
  ASSERT_TRUE(RB.Ok);
  ASSERT_TRUE(RB.restoreSolverFrom(Cache, PtsKey, C));
  SDGOptions SO;
  SO.ContextExpanded = true;
  persist::SdgArtifacts A = persist::loadOrBuildSdg(
      RB.P, *RB.CHA, *RB.Solver, SO, C.NestedTaintDepth, &Cache, SdgKey);
  ASSERT_TRUE(A.FromCache);
  // Point a statement node at a statement of a *different* method: still
  // globally in range (restoreSdg's bounds validation accepts it — only
  // N.S >= numStmts is rejected there), but dead to the owning method,
  // which only the verifier's liveness check notices. The re-stored
  // record's checksum is valid by construction.
  auto &Nodes = SdgTestPeer::nodes(*A.G);
  size_t Victim = Nodes.size();
  uint32_t Redirect = 0;
  for (size_t N = 0; N < Nodes.size(); ++N) {
    if (Nodes[N].Kind != SDGNodeKind::Stmt)
      continue;
    const StmtId B = RB.P.methodStmtBegin(Nodes[N].M);
    const StmtId E = RB.P.methodStmtEnd(Nodes[N].M);
    if (B > 0) {
      Victim = N;
      Redirect = 0;
      break;
    }
    if (E < RB.P.numStmts()) {
      Victim = N;
      Redirect = E;
      break;
    }
  }
  ASSERT_LT(Victim, Nodes.size());
  Nodes[Victim].S = Redirect;
  persist::Writer W;
  persist::Access::serializeSdg(*A.G, A.HE.get(), W);
  Cache.store(SdgKey, persist::ArtifactKind::Sdg, W.bytes());

  Stats S2;
  EXPECT_EQ(server::analyzeApp(Src, Opt, &Cache, &S2).Exit,
            server::ExitError);
  EXPECT_GE(S2.get("verify.sdg_violations"), 1u);
  EXPECT_GE(S2.get("persist.verify_rejected"), 1u);

  Stats S3;
  EXPECT_EQ(server::analyzeApp(Src, Opt, &Cache, &S3).Exit,
            server::ExitClean);
}

TEST(PersistPoison, TruncatedRecordFallsBackColdAndClean) {
  const std::string Text = readFileOrDie(TAJ_EXAMPLE_TAJ);
  TempDir D;
  server::RunOptions Opt;
  Opt.Verify = VerifyMode::Full;
  Opt.Threads = 1;
  const std::vector<server::AppSource> Src = {{"webapp.taj", true, Text}};
  {
    persist::ArtifactCache Cache(D.Path);
    Stats S1;
    EXPECT_EQ(server::analyzeApp(Src, Opt, &Cache, &S1).Exit,
              server::ExitClean);
  }
  // A record that fails checksum/framing verification is an ordinary
  // corrupt entry: cold fallback, clean exit, no verify involvement.
  for (const auto &DE : fs::directory_iterator(D.Path))
    if (DE.path().extension() == ".tajc")
      fs::resize_file(DE.path(), fs::file_size(DE.path()) / 2);
  persist::ArtifactCache Cache(D.Path);
  Stats S2;
  EXPECT_EQ(server::analyzeApp(Src, Opt, &Cache, &S2).Exit,
            server::ExitClean);
  EXPECT_EQ(S2.get("verify.violations"), 0u);
}

//===----------------------------------------------------------------------===//
// taj-cli end to end
//===----------------------------------------------------------------------===//

TEST(Cli, FullVerifyIsByteIdenticalToOffOnCleanRuns) {
  for (const char *Cfg : {"hybrid", "cs", "ci"}) {
    int EOff = -1, EFull = -1;
    std::string Off = runCli(std::string("--config=") + Cfg +
                                 " --verify=off " + TAJ_EXAMPLE_TAJ +
                                 " 2>/dev/null",
                             EOff);
    std::string Full = runCli(std::string("--config=") + Cfg +
                                  " --verify=full " + TAJ_EXAMPLE_TAJ +
                                  " 2>/dev/null",
                              EFull);
    EXPECT_EQ(EOff, 0) << Cfg;
    EXPECT_EQ(EFull, 0) << Cfg;
    EXPECT_EQ(Off, Full) << Cfg;
  }
}

TEST(Cli, BadVerifyValueIsUsageError) {
  int Exit = -1;
  runCli(std::string("--verify=maybe ") + TAJ_EXAMPLE_TAJ + " 2>/dev/null",
         Exit);
  EXPECT_EQ(Exit, 1);
}

TEST(Cli, BatchModeRunsCleanUnderFullVerify) {
  TempDir D;
  const std::string Copy = D.Path + "/webapp2.taj";
  {
    std::ofstream Out(Copy);
    Out << readFileOrDie(TAJ_EXAMPLE_TAJ);
  }
  const std::string List = D.Path + "/apps.list";
  {
    std::ofstream Out(List);
    Out << TAJ_EXAMPLE_TAJ << "\n" << Copy << "\n";
  }
  int Exit = -1;
  runCli("--batch=" + List + " --verify=full --jobs=2 --cache-dir=" +
             D.Path + "/cache 2>/dev/null",
         Exit);
  EXPECT_EQ(Exit, 0);
}

} // namespace
