//===- tests/report_test.cpp - LCP grouping & report tests ---------------===//
//
// Unit tests for §5: library call points, flow equivalence classes, and
// representative selection.
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "report/ReportGenerator.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

struct Analyzed {
  Program P;
  AnalysisResult R;

  explicit Analyzed(const std::string &Src) {
    installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    bool Ok = parseTaj(P, Src, &Errors);
    EXPECT_TRUE(Ok) << (Errors.empty() ? "?" : Errors.front());
    MethodId Root = synthesizeEntrypointDriver(P);
    TaintAnalysis TA(P, AnalysisConfig::hybridUnbounded());
    R = TA.run({Root});
  }
};

TEST(Report, FlowsSharingLcpAndRuleCollapse) {
  Analyzed A(R"(
class LibFan extends Object [library] {
  method fan(this: LibFan, s: String, w: Writer): void {
    this.a(s, w);
    this.b(s, w);
  }
  method a(this: LibFan, s: String, w: Writer): void { w.println(s); }
  method b(this: LibFan, s: String, w: Writer): void { w.println(s); }
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response, lib: LibFan): void [entry] {
    t = req.getParameter("q");
    w = resp.getWriter();
    lib.fan(t, w);
  }
}
)");
  // Two sinks, one library entry point: XSS flows collapse to one report.
  int XssIssues = 0;
  for (const Issue &I : A.R.Issues)
    XssIssues += (I.Rule & rules::XSS) != 0;
  EXPECT_EQ(XssIssues, 2);
  std::vector<Report> Rs = generateReports(A.P, A.R.Issues);
  int XssReports = 0;
  for (const Report &R : Rs)
    if (R.Representative.Rule & rules::XSS) {
      ++XssReports;
      EXPECT_EQ(R.GroupSize, 2u);
    }
  EXPECT_EQ(XssReports, 1);
}

TEST(Report, DistinctRulesNeverMerge) {
  Analyzed A(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response, db: Database): void [entry] {
    t = req.getParameter("q");
    w = resp.getWriter();
    w.println(t);
    q = db.executeQuery(t);
  }
}
)");
  std::vector<Report> Rs = generateReports(A.P, A.R.Issues);
  bool SawXss = false, SawSqli = false;
  for (const Report &R : Rs) {
    SawXss |= (R.Representative.Rule & rules::XSS) != 0;
    SawSqli |= (R.Representative.Rule & rules::SQLI) != 0;
  }
  EXPECT_TRUE(SawXss);
  EXPECT_TRUE(SawSqli);
}

TEST(Report, LcpIsLastAppStatementBeforeLibrary) {
  Analyzed A(R"(
class LibSink extends Object [library] {
  method consume(this: LibSink, s: String, w: Writer): void {
    w.println(s);
  }
}
class App extends Servlet {
  method pass(this: App, s: String): String { return s; }
  method doGet(this: App, req: Request, resp: Response, lib: LibSink): void [entry] {
    t = req.getParameter("q");
    u = this.pass(t);
    w = resp.getWriter();
    lib.consume(u, w);
  }
}
)");
  ASSERT_FALSE(A.R.Issues.empty());
  for (const Issue &I : A.R.Issues) {
    StmtId Lcp = computeLcp(A.P, I);
    // The LCP must be application code (the lib.consume call in doGet).
    EXPECT_FALSE(isLibraryStmt(A.P, Lcp));
    const StmtRef &Ref = A.P.stmtRef(Lcp);
    EXPECT_EQ(A.P.methodName(Ref.M), "App.doGet");
  }
}

TEST(Report, RepresentativeIsShortestFlow) {
  Analyzed A(R"(
class App extends Servlet {
  method hop(this: App, s: String): String { return s; }
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    w = resp.getWriter();
    w.println(t);
    u = this.hop(t);
    w2 = resp.getWriter();
    w2.println(u);
  }
}
)");
  // Two sinks -> two reports (distinct LCPs); every representative's
  // length equals the min over its group (trivially true here), and the
  // renderer produces one line per report.
  std::vector<Report> Rs = generateReports(A.P, A.R.Issues);
  std::string Text = renderReports(A.P, Rs);
  size_t Lines = std::count(Text.begin(), Text.end(), '\n');
  EXPECT_EQ(Lines, Rs.size());
  for (const Report &R : Rs)
    for (const Issue &I : A.R.Issues)
      if (computeLcp(A.P, I) == R.Lcp && I.Rule == R.Representative.Rule) {
        EXPECT_LE(R.Representative.Length, I.Length);
      }
}

TEST(Report, EmptyIssuesProduceEmptyReport) {
  Analyzed A(R"(
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    e = Encoder.encode(t);
    w = resp.getWriter();
    w.println(e);
  }
}
)");
  EXPECT_TRUE(A.R.Issues.empty());
  EXPECT_TRUE(generateReports(A.P, A.R.Issues).empty());
  EXPECT_EQ(renderReports(A.P, {}), "");
}

} // namespace
