//===- tests/soundness_test.cpp - Dynamic-vs-static soundness ------------===//
//
// Property-based soundness: random applications are executed concretely
// with dynamic taint tracking, and every observed behaviour must be
// covered by the sound static configurations:
//
//  - every dynamic source->sink flow is reported by hybrid and CI slicing
//    (the paper observes both are sound and agree on true positives);
//  - every dynamic call edge is in the static call graph;
//  - every dynamic points-to observation is in the static solution.
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "interp/Interpreter.h"
#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace taj;

namespace {

/// Generates a random terminating application over the model library:
/// an acyclic call DAG of methods mixing field/map/collection traffic,
/// sanitizers, string transfers and sinks.
struct RandomApp {
  Program P;
  BuiltinLibrary Lib;
  MethodId Root = InvalidId;

  explicit RandomApp(uint64_t Seed) {
    Rng R(Seed);
    Lib = installBuiltinLibrary(P);
    Builder B(P);

    // Data classes with string fields.
    int NumData = static_cast<int>(R.range(1, 3));
    std::vector<ClassId> DataCls;
    std::vector<FieldId> DataFields;
    for (int K = 0; K < NumData; ++K) {
      ClassId C = B.makeClass("Data" + std::to_string(K), Lib.Object);
      DataCls.push_back(C);
      DataFields.push_back(
          B.makeField(C, "s", Type::ref(Lib.String)));
    }

    ClassId App = B.makeClass("App", Lib.Servlet);
    Type TApp = Type::ref(App);
    Type TReq = Type::ref(Lib.Request);
    Type TResp = Type::ref(Lib.Response);
    Type TStr = Type::ref(Lib.String);

    int NumMethods = static_cast<int>(R.range(2, 6));
    std::vector<MethodId> Methods;
    const char *Keys[] = {"a", "b", "c"};
    const char *Sans[] = {"encodeHtml", "encodeSql", "encodePath", "encode"};

    for (int MI = 0; MI < NumMethods; ++MI) {
      MethodBuilder MB =
          B.startMethod(App, "m" + std::to_string(MI),
                        {TApp, TReq, TResp, TStr}, TStr);
      std::vector<ValueId> Strs = {MB.param(3)};
      std::vector<ValueId> Objs;
      std::vector<ValueId> Maps;
      int Ops = static_cast<int>(R.range(3, 10));
      for (int OP = 0; OP < Ops; ++OP) {
        switch (R.below(9)) {
        case 0: { // source
          ValueId Name = MB.constStr("p" + std::to_string(R.below(3)));
          Strs.push_back(MB.callVirtual("getParameter", {MB.param(1), Name}));
          break;
        }
        case 1: { // object store
          ValueId O = MB.emitNew(DataCls[R.below(DataCls.size())]);
          Objs.push_back(O);
          MB.emitStore(O, DataFields[0], Strs[R.below(Strs.size())]);
          break;
        }
        case 2: { // object load
          if (Objs.empty())
            break;
          uint32_t DI = R.below(DataFields.size());
          Strs.push_back(
              MB.emitLoad(Objs[R.below(Objs.size())], DataFields[DI]));
          break;
        }
        case 3: { // map put
          if (Maps.empty())
            Maps.push_back(MB.emitNew(Lib.HashMap));
          ValueId Key = MB.constStr(Keys[R.below(3)]);
          MB.callVirtual("put", {Maps[R.below(Maps.size())], Key,
                                 Strs[R.below(Strs.size())]});
          break;
        }
        case 4: { // map get
          if (Maps.empty())
            break;
          ValueId Key = MB.constStr(Keys[R.below(3)]);
          Strs.push_back(
              MB.callVirtual("get", {Maps[R.below(Maps.size())], Key}));
          break;
        }
        case 5: { // sanitize
          ValueId V = Strs[R.below(Strs.size())];
          Strs.push_back(
              MB.callStatic(Lib.Encoder, Sans[R.below(4)], {V}));
          break;
        }
        case 6: { // string transfer
          ValueId A = Strs[R.below(Strs.size())];
          ValueId C2 = Strs[R.below(Strs.size())];
          Strs.push_back(MB.callVirtual("concat", {A, C2}));
          break;
        }
        case 7: { // call an earlier method (acyclic)
          if (Methods.empty())
            break;
          MethodId Callee = Methods[R.below(Methods.size())];
          Strs.push_back(MB.callVirtualV(
              std::string(P.Pool.str(P.Methods[Callee].Name)),
              {MB.param(0), MB.param(1), MB.param(2),
               Strs[R.below(Strs.size())]}));
          break;
        }
        case 8: { // sink
          ValueId W = MB.callVirtual("getWriter", {MB.param(2)});
          MB.callVirtual("println", {W, Strs[R.below(Strs.size())]});
          break;
        }
        }
      }
      MB.emitRet(Strs[R.below(Strs.size())]);
      MB.finish();
      Methods.push_back(MB.id());
    }

    // Entry drives the last couple of methods.
    MethodBuilder MB = B.startMethod(App, "doGet", {TApp, TReq, TResp},
                                     Type::voidTy());
    P.Methods[MB.id()].IsEntry = true;
    ValueId Seed0 = MB.constStr("init");
    for (int K = 0; K < 2 && K < static_cast<int>(Methods.size()); ++K) {
      MethodId M = Methods[Methods.size() - 1 - K];
      MB.callVirtualV(std::string(P.Pool.str(P.Methods[M].Name)),
                      {MB.param(0), MB.param(1), MB.param(2), Seed0});
    }
    MB.emitRet();
    MB.finish();

    std::vector<std::string> Errors = verifyProgram(P);
    EXPECT_TRUE(Errors.empty()) << (Errors.empty() ? "" : Errors.front());
    Root = synthesizeEntrypointDriver(P);
    P.indexStatements();
  }
};

class SoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundnessTest, DynamicFlowsAreStaticallyReported) {
  RandomApp App(GetParam());
  ClassHierarchy CHA(App.P);

  Interpreter Interp(App.P, CHA);
  ASSERT_TRUE(Interp.run({App.Root})) << "interpreter budget exhausted";

  TaintAnalysis Hybrid(App.P, AnalysisConfig::hybridUnbounded());
  AnalysisResult HR = Hybrid.run({App.Root});
  TaintAnalysis Ci(App.P, AnalysisConfig::ci());
  AnalysisResult CR = Ci.run({App.Root});

  auto Contains = [](const AnalysisResult &R, const DynamicFlow &F) {
    for (const Issue &I : R.Issues)
      if (I.Source == F.Source && I.Sink == F.Sink && (I.Rule & F.Rule))
        return true;
    return false;
  };
  for (const DynamicFlow &F : Interp.flows()) {
    EXPECT_TRUE(Contains(HR, F))
        << "hybrid missed dynamic flow " << F.Source << " -> " << F.Sink
        << " rule " << int(F.Rule) << " (seed " << GetParam() << ")";
    EXPECT_TRUE(Contains(CR, F))
        << "CI missed dynamic flow " << F.Source << " -> " << F.Sink
        << " (seed " << GetParam() << ")";
  }

  // Dynamic call edges are a subset of the static call graph.
  const CallGraph &CG = Hybrid.solver().callGraph();
  for (const auto &[Site, Callees] : Interp.observedCallees()) {
    for (MethodId M : Callees) {
      if (App.P.Methods[M].Intr != Intrinsic::None ||
          !App.P.Methods[M].hasBody())
        continue; // intrinsics do not appear as CG edges
      const auto &Static = CG.calleesAt(Site);
      EXPECT_TRUE(std::find(Static.begin(), Static.end(), M) !=
                  Static.end())
          << "missing static call edge at site " << Site << " -> "
          << App.P.methodName(M);
    }
  }
}

TEST_P(SoundnessTest, DynamicPointsToIsStaticallyCovered) {
  RandomApp App(GetParam());
  ClassHierarchy CHA(App.P);
  Interpreter Interp(App.P, CHA);
  ASSERT_TRUE(Interp.run({App.Root}));

  TaintAnalysis TA(App.P, AnalysisConfig::hybridUnbounded());
  TA.run({App.Root});
  const PointsToSolver &Solver = TA.solver();
  const InstanceKeyTable &IKs = Solver.instanceKeys();

  for (const auto &[Key, Sites] : Interp.observedPointsTo()) {
    auto [M, V] = Key;
    std::vector<IKId> Static = Solver.pointsToMerged(M, V);
    std::set<StmtId> StaticSites;
    for (IKId IK : Static)
      StaticSites.insert(IKs.data(IK).Site);
    for (StmtId S : Sites) {
      if (S == 0)
        continue; // objects synthesized by the interpreter harness
      EXPECT_TRUE(StaticSites.count(S))
          << "dynamic points-to of " << App.P.methodName(M) << " v" << V
          << " allocated at " << S << " missing statically (seed "
          << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

} // namespace
