//===- tests/parallel_test.cpp - Parallel slicing determinism ------------===//
//
// The parallel per-source slicing engine promises byte-identical output at
// every thread count: the Issues vector (every field, including paths) and
// the rendered report must not depend on how the per-source loops were
// scheduled. This suite pins that contract for all three slicers, for
// clean runs and for governed runs (fault injection, deadlines), where the
// worker-completion merge keeps partial results strictly underapproximate.
// It also covers the Parallel primitives and the CI slicer's §6.2.1 heap
// budget.
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "ir/Verifier.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "report/ReportGenerator.h"
#include "support/Parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <tuple>
#include <vector>

using namespace taj;

namespace {

const unsigned ThreadCounts[] = {1, 2, 8};

/// A workload with heap-mediated flows, taint carriers, a sanitizer and
/// several sources, so every merge path (direct sinks, carrier sinks,
/// cross-source duplicates) is exercised.
const char *AppSource = R"(
class Holder extends Object {
  field v: String;
  method set(this: Holder, s: String): void { this.v = s; }
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response, db: Database): void [entry] {
    t1 = req.getParameter("name");
    t2 = req.getParameter("query");
    t3 = req.getParameter("safe");
    h = new Holder;
    h.set(t1);
    u = h.v;
    w = resp.getWriter();
    w.println(u);
    w.println(t1);
    db.executeQuery(t2);
    e = Encoder.encode(t3);
    w.println(e);
  }
}
)";

struct Pipeline {
  Program P;
  MethodId Root = InvalidId;

  explicit Pipeline(const std::string &Src) {
    installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    bool Ok = parseTaj(P, Src, &Errors);
    EXPECT_TRUE(Ok) << (Errors.empty() ? "?" : Errors.front());
    std::vector<std::string> VErrors = verifyProgram(P);
    EXPECT_TRUE(VErrors.empty()) << (VErrors.empty() ? "" : VErrors.front());
    Root = synthesizeEntrypointDriver(P);
  }

  AnalysisResult run(AnalysisConfig C) {
    TaintAnalysis TA(P, std::move(C));
    return TA.run({Root});
  }

  std::string render(const AnalysisResult &R) {
    return renderReports(P, generateReports(P, R.Issues), &R.Status);
  }
};

using FlowKey = std::tuple<StmtId, StmtId, RuleMask>;

std::set<FlowKey> flowSet(const AnalysisResult &R) {
  std::set<FlowKey> S;
  for (const Issue &I : R.Issues)
    S.insert({I.Source, I.Sink, I.Rule});
  return S;
}

/// Full structural equality, not just the (source, sink, rule) key:
/// lengths and reconstructed paths must also be schedule-independent.
void expectIdenticalIssues(const std::vector<Issue> &A,
                           const std::vector<Issue> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    SCOPED_TRACE("issue " + std::to_string(I));
    EXPECT_EQ(A[I].Source, B[I].Source);
    EXPECT_EQ(A[I].Sink, B[I].Sink);
    EXPECT_EQ(A[I].Rule, B[I].Rule);
    EXPECT_EQ(A[I].Length, B[I].Length);
    EXPECT_EQ(A[I].Path, B[I].Path);
  }
}

AnalysisConfig configFor(SlicerKind K) {
  switch (K) {
  case SlicerKind::Hybrid:
    return AnalysisConfig::hybridUnbounded();
  case SlicerKind::CS:
    return AnalysisConfig::cs();
  case SlicerKind::CI:
    return AnalysisConfig::ci();
  }
  return AnalysisConfig::hybridUnbounded();
}

const char *kindName(SlicerKind K) {
  switch (K) {
  case SlicerKind::Hybrid:
    return "hybrid";
  case SlicerKind::CS:
    return "cs";
  case SlicerKind::CI:
    return "ci";
  }
  return "?";
}

GeneratedApp generatedApp() {
  AppSpec Spec;
  Spec.Name = "parallel-medium";
  Spec.Seed = 11;
  Spec.Plants.TpDirect = 12;
  Spec.Plants.TpWrapped = 8;
  Spec.Plants.TpMap = 6;
  Spec.Plants.Sanitized = 6;
  Spec.Plants.FillerMethods = 60;
  return generateApp(Spec);
}

//===----------------------------------------------------------------------===//
// Parallel primitives
//===----------------------------------------------------------------------===//

TEST(Parallel, ResolveThreadCountHonorsEnvAndClamps) {
  EXPECT_EQ(resolveThreadCount(1), 1u);
  EXPECT_EQ(resolveThreadCount(6), 6u);
  EXPECT_EQ(resolveThreadCount(100000), 256u); // hard upper clamp

  setenv("TAJ_THREADS", "3", 1);
  EXPECT_EQ(resolveThreadCount(0), 3u);
  setenv("TAJ_THREADS", "0", 1); // invalid: fall through to hardware
  EXPECT_GE(resolveThreadCount(0), 1u);
  setenv("TAJ_THREADS", "junk", 1);
  EXPECT_GE(resolveThreadCount(0), 1u);
  unsetenv("TAJ_THREADS");
  EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(Parallel, InterleavedForVisitsEveryItemExactlyOnce) {
  for (unsigned W : {1u, 2u, 3u, 8u}) {
    const size_t N = 101;
    std::vector<std::atomic<uint32_t>> Hits(N);
    std::vector<int> OwnerOk(N, 0);
    parallelForInterleaved(W, N, [&](unsigned Worker, size_t I) {
      Hits[I].fetch_add(1);
      OwnerOk[I] = (I % std::min<size_t>(W, N)) == Worker;
    });
    for (size_t I = 0; I < N; ++I) {
      EXPECT_EQ(Hits[I].load(), 1u) << "item " << I << " W=" << W;
      EXPECT_TRUE(OwnerOk[I]) << "item " << I << " W=" << W;
    }
  }
}

TEST(Parallel, InterleavedForPropagatesWorkerExceptions) {
  EXPECT_THROW(parallelForInterleaved(4, 64,
                                      [&](unsigned, size_t I) {
                                        if (I == 37)
                                          throw std::runtime_error("boom");
                                      }),
               std::runtime_error);
}

//===----------------------------------------------------------------------===//
// Clean-run determinism: byte-identical at every thread count
//===----------------------------------------------------------------------===//

TEST(ParallelSlicing, AllSlicersByteIdenticalAcrossThreadCounts) {
  Pipeline PL(AppSource);
  for (SlicerKind K : {SlicerKind::Hybrid, SlicerKind::CS, SlicerKind::CI}) {
    SCOPED_TRACE(kindName(K));
    AnalysisConfig C1 = configFor(K);
    C1.Threads = 1;
    AnalysisResult Base = PL.run(std::move(C1));
    ASSERT_FALSE(Base.degraded());
    ASSERT_GE(Base.Issues.size(), 3u);
    std::string BaseReport = PL.render(Base);

    for (unsigned T : ThreadCounts) {
      SCOPED_TRACE("threads=" + std::to_string(T));
      AnalysisConfig C = configFor(K);
      C.Threads = T;
      AnalysisResult R = PL.run(std::move(C));
      ASSERT_FALSE(R.degraded());
      expectIdenticalIssues(Base.Issues, R.Issues);
      EXPECT_EQ(BaseReport, PL.render(R));
    }
  }
}

TEST(ParallelSlicing, GeneratedAppByteIdenticalAcrossThreadCounts) {
  GeneratedApp App = generatedApp();
  for (SlicerKind K : {SlicerKind::Hybrid, SlicerKind::CI}) {
    SCOPED_TRACE(kindName(K));
    std::vector<Issue> BaseIssues;
    std::string BaseReport;
    for (unsigned T : ThreadCounts) {
      SCOPED_TRACE("threads=" + std::to_string(T));
      AnalysisConfig C = configFor(K);
      C.Threads = T;
      TaintAnalysis TA(*App.P, std::move(C));
      AnalysisResult R = TA.run({App.Root});
      ASSERT_FALSE(R.degraded());
      std::string Report =
          renderReports(*App.P, generateReports(*App.P, R.Issues), &R.Status);
      if (T == 1) {
        BaseIssues = R.Issues;
        BaseReport = Report;
        ASSERT_GE(BaseIssues.size(), 10u);
      } else {
        expectIdenticalIssues(BaseIssues, R.Issues);
        EXPECT_EQ(BaseReport, Report);
      }
    }
  }
}

TEST(ParallelSlicing, AutoThreadResolutionMatchesSequentialOutput) {
  Pipeline PL(AppSource);
  AnalysisConfig C1 = AnalysisConfig::hybridUnbounded();
  C1.Threads = 1;
  AnalysisResult Base = PL.run(std::move(C1));

  setenv("TAJ_THREADS", "5", 1);
  AnalysisConfig C = AnalysisConfig::hybridUnbounded();
  C.Threads = 0; // auto: resolves through TAJ_THREADS
  AnalysisResult R = PL.run(std::move(C));
  unsetenv("TAJ_THREADS");
  expectIdenticalIssues(Base.Issues, R.Issues);
}

TEST(ParallelSlicing, BoundedHybridConfigIsThreadCountInvariant) {
  // The §6.2 bounds (heap budget, flow length, nested depth) are applied
  // per source, so they must not interact with scheduling.
  Pipeline PL(AppSource);
  std::vector<Issue> BaseIssues;
  for (unsigned T : ThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(T));
    AnalysisConfig C = AnalysisConfig::hybridOptimized(20000, 3, 9, 2);
    C.Threads = T;
    AnalysisResult R = PL.run(std::move(C));
    if (T == 1)
      BaseIssues = R.Issues;
    else
      expectIdenticalIssues(BaseIssues, R.Issues);
  }
}

//===----------------------------------------------------------------------===//
// Governed runs: fault injection and deadlines
//===----------------------------------------------------------------------===//

TEST(ParallelSlicing, FaultInjectionSweepIsDeterministicPreSlicing) {
  Pipeline PL(AppSource);
  AnalysisConfig C0 = AnalysisConfig::hybridUnbounded();
  C0.Threads = 1;
  AnalysisResult Base = PL.run(std::move(C0));
  ASSERT_FALSE(Base.degraded());
  uint64_t Total = Base.RunStats.get("guard.checkpoints");
  ASSERT_GT(Total, 0u);
  std::set<FlowKey> BaseFlows = flowSet(Base);

  for (uint64_t N = 1; N <= Total + 2; ++N) {
    SCOPED_TRACE("fail-at=" + std::to_string(N));
    AnalysisConfig C1 = AnalysisConfig::hybridUnbounded();
    C1.Threads = 1;
    C1.FailAtCheckpoint = N;
    AnalysisResult R1 = PL.run(std::move(C1));

    AnalysisConfig C8 = AnalysisConfig::hybridUnbounded();
    C8.Threads = 8;
    C8.FailAtCheckpoint = N;
    AnalysisResult R8 = PL.run(std::move(C8));

    // Worker-completion merge: a cutoff at any thread count only drops
    // flows relative to the unbounded baseline, never invents them.
    for (const FlowKey &K : flowSet(R1))
      EXPECT_TRUE(BaseFlows.count(K));
    for (const FlowKey &K : flowSet(R8))
      EXPECT_TRUE(BaseFlows.count(K));
    EXPECT_EQ(R1.degraded(), R8.degraded());

    // Up to the slicing fan-out the pipeline is single-threaded, so a
    // cutoff tripping before slicing is byte-identical at every thread
    // count (the rendered banner included).
    const PhaseReport *PR = R1.Status.firstDegraded();
    bool PreSlicing = PR && PR->Phase != RunPhase::Slicing;
    if (PreSlicing || !R1.degraded()) {
      expectIdenticalIssues(R1.Issues, R8.Issues);
      EXPECT_EQ(PL.render(R1), PL.render(R8));
      if (PR) {
        const PhaseReport *PR8 = R8.Status.firstDegraded();
        ASSERT_NE(PR8, nullptr);
        EXPECT_EQ(PR->Phase, PR8->Phase);
        EXPECT_EQ(PR->Reason, PR8->Reason);
      }
    }
  }
}

TEST(ParallelSlicing, MidSlicingFaultKeepsOnlyCompletedSources) {
  // Trip the guard just after slicing begins: with the worker-completion
  // merge every reported issue comes from a source whose slice finished,
  // so the partial result is a subset of the clean run at any thread
  // count — and issue vectors stay internally consistent (sorted, deduped).
  Pipeline PL(AppSource);
  AnalysisConfig C0 = AnalysisConfig::hybridUnbounded();
  AnalysisResult Base = PL.run(std::move(C0));
  std::set<FlowKey> BaseFlows = flowSet(Base);
  uint64_t Total = Base.RunStats.get("guard.checkpoints");

  for (unsigned T : ThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(T));
    for (uint64_t N = Total / 2; N <= Total; N += 3) {
      AnalysisConfig C = AnalysisConfig::hybridUnbounded();
      C.Threads = T;
      C.FailAtCheckpoint = N;
      AnalysisResult R = PL.run(std::move(C));
      std::set<FlowKey> Flows = flowSet(R);
      for (const FlowKey &K : Flows)
        EXPECT_TRUE(BaseFlows.count(K)) << "fail-at=" << N;
      EXPECT_EQ(Flows.size(), R.Issues.size()) << "duplicate issues survived";
      EXPECT_TRUE(std::is_sorted(R.Issues.begin(), R.Issues.end()));
    }
  }
}

TEST(ParallelSlicing, DeadlineCutoffUnderThreadsStaysUnderapproximate) {
  GeneratedApp App = generatedApp();
  AnalysisConfig C0 = AnalysisConfig::hybridUnbounded();
  TaintAnalysis TB(*App.P, std::move(C0));
  AnalysisResult Base = TB.run({App.Root});
  ASSERT_FALSE(Base.degraded());
  std::set<FlowKey> BaseFlows = flowSet(Base);

  for (unsigned T : ThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(T));
    AnalysisConfig C = AnalysisConfig::hybridUnbounded();
    C.Threads = T;
    C.DeadlineMs = 0.001; // expired by the guard's first poll
    TaintAnalysis TA(*App.P, std::move(C));
    AnalysisResult R = TA.run({App.Root});
    ASSERT_TRUE(R.degraded());
    const PhaseReport *PR = R.Status.firstDegraded();
    ASSERT_NE(PR, nullptr);
    EXPECT_EQ(PR->Reason, CutoffReason::Deadline);
    for (const FlowKey &K : flowSet(R))
      EXPECT_TRUE(BaseFlows.count(K));
  }
}

//===----------------------------------------------------------------------===//
// CI heap budget (§6.2.1)
//===----------------------------------------------------------------------===//

TEST(ParallelSlicing, CiSlicerHonorsHeapTransitionBudget) {
  // Two chained heap hops: src -> a.v -> load -> b.v -> load -> sink.
  // An unbounded CI run follows both; MaxHeapTransitions=1 spends its one
  // expansion on the first store and never reaches the sink.
  Pipeline PL(R"(
class Holder extends Object {
  field v: String;
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response): void [entry] {
    t = req.getParameter("name");
    a = new Holder;
    b = new Holder;
    a.v = t;
    x = a.v;
    b.v = x;
    y = b.v;
    w = resp.getWriter();
    w.println(y);
  }
}
)");
  AnalysisConfig Unbounded = AnalysisConfig::ci();
  AnalysisResult RU = PL.run(std::move(Unbounded));
  // println is both an XSS and an InfoLeak sink: one flow, two issues.
  EXPECT_EQ(RU.Issues.size(), 2u) << "two-hop heap flow should be found";

  AnalysisConfig Tight = AnalysisConfig::ci();
  Tight.MaxHeapTransitions = 1;
  AnalysisResult RT = PL.run(std::move(Tight));
  EXPECT_TRUE(RT.Issues.empty())
      << "budget of one store expansion cannot cross two heap hops";

  // And the budget is per source, so it is thread-count invariant.
  std::vector<Issue> BaseIssues;
  for (unsigned T : ThreadCounts) {
    AnalysisConfig C = AnalysisConfig::ci();
    C.MaxHeapTransitions = 1;
    C.Threads = T;
    AnalysisResult R = PL.run(std::move(C));
    if (T == 1)
      BaseIssues = R.Issues;
    else
      expectIdenticalIssues(BaseIssues, R.Issues);
  }
}

TEST(ParallelSlicing, CiBudgetIsSubsetOfUnboundedOnGeneratedApp) {
  GeneratedApp App = generatedApp();
  AnalysisConfig C0 = AnalysisConfig::ci();
  TaintAnalysis TB(*App.P, std::move(C0));
  AnalysisResult Base = TB.run({App.Root});
  std::set<FlowKey> BaseFlows = flowSet(Base);

  for (uint32_t Budget : {1u, 2u, 8u, 64u}) {
    SCOPED_TRACE("budget=" + std::to_string(Budget));
    AnalysisConfig C = AnalysisConfig::ci();
    C.MaxHeapTransitions = Budget;
    TaintAnalysis TA(*App.P, std::move(C));
    AnalysisResult R = TA.run({App.Root});
    for (const FlowKey &K : flowSet(R))
      EXPECT_TRUE(BaseFlows.count(K));
  }
}

} // namespace
