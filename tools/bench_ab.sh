#!/usr/bin/env bash
#===- tools/bench_ab.sh - Interleaved A/B micro-benchmark compare --------===#
#
# Compares the micro_perf suite between two build trees, interleaving the
# runs (A B A B ...) so CPU frequency drift and cache warmth bias neither
# side, then reports per-benchmark medians and speedups.
#
#   tools/bench_ab.sh <buildA> <buildB> [rounds] [out.json]
#
#   buildA    baseline build tree (e.g. a checkout of the previous HEAD)
#   buildB    candidate build tree
#   rounds    interleaved rounds per side (default 5)
#   out.json  report path (default BENCH_10.json in the repo root)
#
# Only the benchmarks the solver rework can move are measured:
# BM_PointerAnalysis (the hot path itself), BM_SdgConstruction (its
# biggest query-surface consumer) and BM_ServerWarmRequest (the warm
# restore path over the new artifact format). The speedup column is
# medianA / medianB, so values above 1 mean the candidate is faster.
#
#===----------------------------------------------------------------------===#
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 <buildA> <buildB> [rounds] [out.json]" >&2
  exit 2
fi

BUILD_A=$1
BUILD_B=$2
ROUNDS=${3:-5}
OUT=${4:-$(cd "$(dirname "$0")/.." && pwd)/BENCH_10.json}
FILTER='BM_PointerAnalysis|BM_SdgConstruction|BM_ServerWarmRequest'

for D in "$BUILD_A" "$BUILD_B"; do
  if [ ! -x "$D/bench/micro_perf" ]; then
    echo "error: $D/bench/micro_perf not found (build the tree first)" >&2
    exit 2
  fi
done

WORK=$(mktemp -d /tmp/taj-bench-ab-XXXXXX)
trap 'rm -rf "$WORK"' EXIT

for R in $(seq 1 "$ROUNDS"); do
  for SIDE in A B; do
    if [ "$SIDE" = A ]; then D=$BUILD_A; else D=$BUILD_B; fi
    echo "round $R/$ROUNDS side $SIDE ($D)" >&2
    "$D/bench/micro_perf" \
      --benchmark_filter="$FILTER" \
      --benchmark_format=json \
      --benchmark_out="$WORK/$SIDE.$R.json" \
      --benchmark_out_format=json > /dev/null
  done
done

python3 - "$WORK" "$ROUNDS" "$BUILD_A" "$BUILD_B" "$OUT" <<'PY'
import json, statistics, sys

work, rounds, build_a, build_b, out = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4], sys.argv[5])

def collect(side):
    times = {}
    for r in range(1, rounds + 1):
        with open(f"{work}/{side}.{r}.json") as f:
            doc = json.load(f)
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            times.setdefault(b["name"], []).append(b["real_time"])
    return times

a, b = collect("A"), collect("B")
report = {
    "baseline": build_a,
    "candidate": build_b,
    "rounds": rounds,
    "time_unit": "ns",
    "benchmarks": [],
}
for name in sorted(set(a) & set(b)):
    ma, mb = statistics.median(a[name]), statistics.median(b[name])
    report["benchmarks"].append({
        "name": name,
        "median_a": ma,
        "median_b": mb,
        "speedup": ma / mb if mb else None,
    })
    print(f"{name:45s} A={ma:14.0f}  B={mb:14.0f}  speedup={ma / mb:5.2f}x")
missing = sorted(set(a) ^ set(b))
if missing:
    print(f"note: only one side ran: {', '.join(missing)}", file=sys.stderr)
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
PY
