//===- tools/taj-cli.cpp - Command-line driver ---------------------------===//
//
// Analyzes .taj files from the command line:
//
//   taj-cli [options] file.taj [file2.taj ...]
//   taj-cli [options] --batch=LISTFILE
//   taj-cli [options] --serve=SOCKET
//   taj-cli [options] --connect=SOCKET file.taj [file2.taj ...]
//
// Options:
//   --config=<hybrid|hybrid-prioritized|hybrid-optimized|cs|ci>
//   --budget=<n>          call-graph node budget (0 = unbounded)
//   --string-analysis=<off|local|ipa>
//                         string-constant inference feeding the §4.2
//                         dictionary and reflection models: off = none,
//                         local = per-method ConstStr+Copy chains, ipa =
//                         interprocedural propagation (default)
//   --max-flow-length=<n> drop flows longer than n
//   --nested-depth=<n>    taint-carrier field-dereference bound
//   --threads=<n>         worker threads for slicing (0 = auto, default;
//                         output is byte-identical at every thread count)
//   --verify=<off|fast|full>
//                         self-verification over the run's own artifacts:
//                         fast re-checks SDG endpoint liveness and replays
//                         every reported flow as an HSDG witness path;
//                         full additionally justifies call-graph and heap
//                         edges, re-checks the points-to fixpoint and
//                         structurally re-verifies every warm cache
//                         restore. Violations print `verify: ...`, land in
//                         the verify.* counters and fail the run with exit
//                         1. Default: fast in debug/sanitizer builds, off
//                         in release.
//   --deadline-ms=<n>     wall-clock deadline for the analysis run
//   --max-memory-mb=<n>   resident-memory ceiling for the analysis run
//   --fail-at=<n>         fault injection: trip the guard at checkpoint n
//   --crash-at=<n>        hard fault injection: die (abort, or raise
//                         TAJ_CRASH_SIGNAL) at checkpoint n
//   --hang-at=<n>         hard fault injection: block forever at
//                         checkpoint n (exercises the watchdog)
//   --cache-dir=<path>    persistent artifact cache: parsed IR, points-to
//                         solutions and SDGs are stored there and reused
//                         by later runs over the same input/config
//   --cache-max-mb=<n>    cache byte cap, LRU-evicted (0 = uncapped)
//   --cache-grace-ms=<n>  eviction grace window: entries touched more
//                         recently are never evicted (protects entries a
//                         concurrent worker may be mid-read on; defaults
//                         to 60000 under --jobs>=1 and --serve with a
//                         cache dir, else 0)
//   --batch=<listfile>    analyze many apps through one shared warm
//                         cache; each list line names one app's .taj
//                         files (whitespace-separated; blank lines and
//                         #-comments skipped)
//   --jobs=<n>            batch supervision: run each app in a forked,
//                         watchdogged worker process, n of them
//                         concurrently; 0 (default) keeps the in-process
//                         batch loop. --jobs=1 output is byte-identical
//                         to --jobs=0.
//   --retry=<n>           re-runs granted to a crashed / timed-out /
//                         OOM-killed app, each with a degraded config
//                         (halved call-graph budget, local string
//                         analysis, one thread; default 1). Applies to
//                         --jobs>=1 batches and to --serve requests.
//   --journal=<path>      append-only JSONL journal of per-app attempts
//                         (crash-safe; enables --resume for batches and
//                         records per-request attempts under --serve)
//   --resume              skip apps whose terminal outcome the journal
//                         already records; re-run only the rest
//   --serve=<socket>      analysis server: run as a persistent daemon on
//                         the named Unix-domain socket, serving requests
//                         from a pre-forked pool of warm workers sharing
//                         the artifact cache plus a per-worker in-memory
//                         hot tier. Drains cleanly on SIGTERM/SIGINT.
//   --connect=<socket>    client mode: ship the positional files (read
//                         locally, sent inline) plus this command line's
//                         analysis flags to a running server, print the
//                         returned report, exit with the usual contract
//   --pool-size=<n>       server worker pool size (>= 1, default 2)
//   --queue-depth=<n>     server admission queue bound; a request
//                         arriving with the queue full and no idle
//                         worker is answered `busy` (default 16)
//   --hot-max-mb=<n>      per-worker in-memory hot-tier byte cap
//                         (0 = uncapped, default 256)
//   --stats-json=<path>   write every statistics counter (solver, run
//                         governance, persist.*, supervise.*, server.*,
//                         and the per-phase phase.* wall/CPU/peak-RSS
//                         breakdown) as one JSON object; under --serve
//                         written at drain, under --connect from the
//                         response's per-request counters
//   --trace=PATH          write a Chrome trace-event JSON timeline of the
//                         run (loadable in chrome://tracing / Perfetto):
//                         spans for every pipeline phase, per-worker spans
//                         in the parallel slicing engine, instant events
//                         for guard stops and cache hits/misses. Under
//                         --jobs>=1 each worker's trace is collected and
//                         merged into one batch timeline keyed by pid/tid;
//                         under --serve each request additionally gets a
//                         span on a synthetic per-worker lane.
//   --raw                 print raw flows instead of LCP-grouped reports
//   --dump-ir             print the parsed (SSA) program and exit
//   --stats               print analysis statistics
//
// The governance knobs are also readable from the environment
// (TAJ_DEADLINE_MS, TAJ_MAX_MEMORY_MB, TAJ_FAIL_AT, TAJ_CRASH_AT,
// TAJ_CRASH_SIGNAL, TAJ_HANG_AT); the thread count from TAJ_THREADS; the
// supervisor's non-cooperative backstops from TAJ_HARD_DEADLINE_MS,
// TAJ_HARD_MAX_MEMORY_MB and TAJ_WATCHDOG_GRACE_MS. Explicit flags win.
//
// Exit codes (the documented contract):
//   0  clean: the analysis ran to completion (issues, if any, printed)
//   2  completed with truncation: a deadline/memory/budget/fault cutoff
//      degraded the run; partial results printed, run-status on stderr
//   1  error: bad usage, unreadable input, parse/verify failure, a
//      self-verification violation (--verify), or an internal error that
//      prevented analysis
// In batch mode the process exit code is the worst across all apps
// (error > truncated > clean); one failing app does not stop the batch.
// Under --jobs>=1 a crashed, timed-out or OOM-killed worker counts as an
// error for its app after the retry ladder is exhausted. Under --connect
// the exit code mirrors the response status (busy, shutting-down, crash,
// timeout and oom all map to error, with the reason on stderr). A daemon
// exits 0 after a clean drain.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisConfig.h"
#include "persist/Cache.h"
#include "server/Client.h"
#include "server/Server.h"
#include "server/Service.h"
#include "supervise/Supervisor.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <csignal>

using namespace taj;
using namespace taj::server;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: taj-cli [--config=NAME] [--budget=N] [--max-flow-length=N]\n"
      "               [--string-analysis=off|local|ipa]\n"
      "               [--nested-depth=N] [--threads=N] [--verify=MODE]\n"
      "               [--deadline-ms=N]\n"
      "               [--max-memory-mb=N] [--fail-at=N] [--crash-at=N]\n"
      "               [--hang-at=N] [--cache-dir=PATH] [--cache-max-mb=N]\n"
      "               [--cache-grace-ms=N] [--jobs=N] [--retry=N]\n"
      "               [--journal=PATH] [--resume] [--stats-json=PATH]\n"
      "               [--trace=PATH] [--raw] [--dump-ir] [--stats]\n"
      "               [--pool-size=N] [--queue-depth=N] [--hot-max-mb=N]\n"
      "               (file.taj [more.taj ...] | --batch=LISTFILE\n"
      "                | --serve=SOCKET | --connect=SOCKET file.taj ...)\n");
}

/// Re-encodes the run options plus the cache flags as worker argv for a
/// supervised self-exec; the worker must reproduce exactly the run
/// analyzeApp() would perform in-process (--jobs=1 is byte-identical to
/// --jobs=0 by construction).
std::vector<std::string> encodeWorkerArgs(const RunOptions &O,
                                          const std::string &CacheDir,
                                          uint64_t CacheMaxMb,
                                          uint64_t CacheGraceMs) {
  std::vector<std::string> A = encodeRunOptions(O);
  if (!CacheDir.empty()) {
    A.push_back("--cache-dir=" + CacheDir);
    if (CacheMaxMb)
      A.push_back("--cache-max-mb=" + std::to_string(CacheMaxMb));
    if (CacheGraceMs)
      A.push_back("--cache-grace-ms=" + std::to_string(CacheGraceMs));
  }
  return A;
}

/// Client mode: read the apps locally, ship them inline with this command
/// line's analysis flags, print the response report.
int runConnect(const std::string &SocketPath,
               const std::vector<std::string> &Files, const RunOptions &Opt,
               const std::string &StatsJsonPath,
               const std::string &TracePath) {
  Request Req;
  for (const std::string &F : Files) {
    AppSource S;
    S.Name = F;
    S.Inline = true;
    std::string IoErr;
    if (!readFileText(F.c_str(), S.Content, IoErr)) {
      std::fprintf(stderr, "error: cannot read '%s': %s\n", F.c_str(),
                   IoErr.c_str());
      return ExitError;
    }
    Req.Sources.push_back(std::move(S));
  }
  Req.Overrides = encodeRunOptions(Opt);

  Response Resp;
  std::string Err;
  if (!requestAnalysis(SocketPath, Req, Resp, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return ExitError;
  }
  if (!Resp.Report.empty() &&
      std::fwrite(Resp.Report.data(), 1, Resp.Report.size(), stdout) !=
          Resp.Report.size()) {
    std::fprintf(stderr, "error: stdout write failed\n");
    return ExitError;
  }
  if (Resp.St != Status::Ok && Resp.St != Status::Truncated)
    std::fprintf(stderr, "server: %s%s%s\n", statusName(Resp.St),
                 Resp.Message.empty() ? "" : ": ", Resp.Message.c_str());
  if (!StatsJsonPath.empty()) {
    std::ofstream JOut(StatsJsonPath, std::ios::trunc);
    if (!JOut || !(JOut << Resp.StatsJson << "\n")) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   StatsJsonPath.c_str());
      return ExitError;
    }
  }
  if (!TracePath.empty()) {
    std::vector<std::string> Blobs;
    if (!Resp.TraceBlob.empty())
      Blobs.push_back(Resp.TraceBlob);
    if (!trace::writeJsonMerged(TracePath, Blobs)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", TracePath.c_str());
      return ExitError;
    }
  }
  return exitCodeForStatus(Resp.St);
}

} // namespace

int main(int Argc, char **Argv) {
  // SIGPIPE is a process-wide hazard for anything that writes to peers
  // that may vanish — a closed client socket, a `head`-truncated stdout.
  // Ignore it everywhere (the disposition survives fork and exec into
  // supervised workers) and surface write failures as error returns.
  std::signal(SIGPIPE, SIG_IGN);

  // A supervised worker turns allocation failure under the parent's
  // RLIMIT_AS ceiling into a deterministic OOM exit code (see
  // supervise/Supervisor.h) before any allocation can happen.
  if (std::getenv("TAJ_SUPERVISED_WORKER"))
    supervise::installWorkerOomHandler();

  RunOptions Opt;
  std::string CacheDir, BatchFile, StatsJsonPath, JournalPath, TracePath;
  std::string ServePath, ConnectPath;
  uint64_t CacheMaxMb = 0, CacheGraceMs = 0, Jobs = 0, Retry = 1;
  uint64_t PoolSize = 2, QueueDepth = 16, HotMaxMb = 256;
  bool CacheGraceSet = false, RetrySet = false, Resume = false;
  bool PoolSizeSet = false, QueueDepthSet = false, HotMaxSet = false;
  std::vector<std::string> Files;

  for (int K = 1; K < Argc; ++K) {
    const char *A = Argv[K];
    // The shared analysis options first (one parser for CLI, batch
    // workers and server requests), then the driver-level flags.
    OptionParse PR = parseRunOption(A, Opt);
    if (PR == OptionParse::Bad)
      return ExitError;
    if (PR == OptionParse::Matched)
      continue;
    if (std::strncmp(A, "--cache-dir=", 12) == 0)
      CacheDir = A + 12;
    else if (std::strncmp(A, "--cache-max-mb=", 15) == 0) {
      if (!parseUInt("--cache-max-mb", A + 15, MaxExactU64, CacheMaxMb))
        return ExitError;
    } else if (std::strncmp(A, "--cache-grace-ms=", 17) == 0) {
      if (!parseUInt("--cache-grace-ms", A + 17, MaxExactU64, CacheGraceMs))
        return ExitError;
      CacheGraceSet = true;
    } else if (std::strncmp(A, "--jobs=", 7) == 0) {
      if (!parseUInt("--jobs", A + 7, 1024, Jobs))
        return ExitError;
    } else if (std::strncmp(A, "--retry=", 8) == 0) {
      if (!parseUInt("--retry", A + 8, 100, Retry))
        return ExitError;
      RetrySet = true;
    } else if (std::strncmp(A, "--journal=", 10) == 0)
      JournalPath = A + 10;
    else if (std::strcmp(A, "--resume") == 0)
      Resume = true;
    else if (std::strncmp(A, "--batch=", 8) == 0)
      BatchFile = A + 8;
    else if (std::strncmp(A, "--serve=", 8) == 0)
      ServePath = A + 8;
    else if (std::strncmp(A, "--connect=", 10) == 0)
      ConnectPath = A + 10;
    else if (std::strncmp(A, "--pool-size=", 12) == 0) {
      if (!parseUInt("--pool-size", A + 12, 1024, PoolSize))
        return ExitError;
      PoolSizeSet = true;
    } else if (std::strncmp(A, "--queue-depth=", 14) == 0) {
      if (!parseUInt("--queue-depth", A + 14, 1u << 20, QueueDepth))
        return ExitError;
      QueueDepthSet = true;
    } else if (std::strncmp(A, "--hot-max-mb=", 13) == 0) {
      if (!parseUInt("--hot-max-mb", A + 13, MaxExactU64, HotMaxMb))
        return ExitError;
      HotMaxSet = true;
    } else if (std::strncmp(A, "--stats-json=", 13) == 0)
      StatsJsonPath = A + 13;
    else if (std::strncmp(A, "--trace=", 8) == 0)
      TracePath = A + 8;
    else if (A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A);
      usage();
      return ExitError;
    } else
      Files.push_back(A);
  }

  // Mode resolution and the flag-dependency matrix. The four modes —
  // local single-app, batch, serve, connect — are mutually exclusive,
  // and every mode-scoped flag must name its mode.
  const bool Serving = !ServePath.empty();
  const bool Connecting = !ConnectPath.empty();
  if (Serving && Connecting) {
    std::fprintf(stderr, "error: --serve and --connect are exclusive\n");
    return ExitError;
  }
  if (Serving && (!BatchFile.empty() || !Files.empty())) {
    std::fprintf(stderr,
                 "error: --serve is exclusive with --batch and positional "
                 "files\n");
    return ExitError;
  }
  if (Serving && (Jobs > 0 || Resume)) {
    std::fprintf(stderr, "error: --jobs/--resume do not apply to --serve\n");
    return ExitError;
  }
  if (Connecting && Files.empty()) {
    std::fprintf(stderr, "error: --connect requires input files to send\n");
    usage();
    return ExitError;
  }
  if (Connecting &&
      (!BatchFile.empty() || Jobs > 0 || RetrySet || !JournalPath.empty() ||
       Resume || !CacheDir.empty())) {
    std::fprintf(stderr,
                 "error: batch/cache flags do not apply to --connect (the "
                 "server owns its cache and retry policy)\n");
    return ExitError;
  }
  if ((PoolSizeSet || QueueDepthSet || HotMaxSet) && !Serving) {
    std::fprintf(stderr,
                 "error: --pool-size/--queue-depth/--hot-max-mb require "
                 "--serve\n");
    return ExitError;
  }
  if (Serving && PoolSize == 0) {
    std::fprintf(stderr, "error: --pool-size must be >= 1\n");
    return ExitError;
  }
  if (!Serving && !Connecting) {
    if (BatchFile.empty() ? Files.empty() : !Files.empty()) {
      if (!BatchFile.empty())
        std::fprintf(stderr,
                     "error: --batch and positional files are exclusive\n");
      usage();
      return ExitError;
    }
    if (Jobs > 0 && BatchFile.empty()) {
      std::fprintf(stderr, "error: --jobs requires --batch\n");
      return ExitError;
    }
    if ((RetrySet || !JournalPath.empty() || Resume) && Jobs == 0) {
      std::fprintf(stderr,
                   "error: --retry/--journal/--resume require --jobs>=1\n");
      return ExitError;
    }
    if (Resume && JournalPath.empty()) {
      std::fprintf(stderr, "error: --resume requires --journal\n");
      return ExitError;
    }
  }
  {
    // Fail fast on a bad config name instead of once per batch line.
    AnalysisConfig Probe;
    if (!buildConfig(Opt, Probe))
      return ExitError;
  }

  // Arm the trace sink before any instrumented work runs; usage errors
  // above deliberately exit without producing an (empty) trace file.
  if (!TracePath.empty())
    trace::enable();

  if (Serving) {
    ServerOptions SO;
    SO.SocketPath = ServePath;
    SO.PoolSize = static_cast<unsigned>(PoolSize);
    SO.QueueDepth = static_cast<unsigned>(QueueDepth);
    SO.MaxRetries = static_cast<unsigned>(Retry);
    SO.Base = Opt;
    SO.CacheDir = CacheDir;
    SO.CacheMaxMb = CacheMaxMb;
    SO.CacheGraceMs = CacheGraceMs;
    SO.CacheGraceSet = CacheGraceSet;
    SO.HotMaxMb = HotMaxMb;
    SO.JournalPath = JournalPath;
    SO.StatsJsonPath = StatsJsonPath;
    SO.TracePath = TracePath;
    return runServer(SO);
  }

  int Exit;
  if (Connecting) {
    Exit = runConnect(ConnectPath, Files, Opt, StatsJsonPath, TracePath);
    // The artifacts were written from the response; only the final
    // stdout check below remains.
    if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
      std::fprintf(stderr, "error: stdout write failed\n");
      return ExitError;
    }
    return Exit;
  }

  std::unique_ptr<persist::ArtifactCache> Cache;
  if (!CacheDir.empty() && Jobs == 0)
    Cache = std::make_unique<persist::ArtifactCache>(
        CacheDir, CacheMaxMb * 1024 * 1024, CacheGraceMs);

  Stats MergedStats;
  Stats *JsonStats = StatsJsonPath.empty() ? nullptr : &MergedStats;

  // Every exit path past this point (normal, truncated, parse failure,
  // batch-list errors) funnels through this writer, so the stats/trace
  // artifacts exist whenever the flags were given — a supervising parent
  // or CI step never reads a missing file just because the run degraded.
  std::vector<std::string> WorkerTraceBlobs;
  auto WriteArtifacts = [&]() -> bool {
    bool Ok = true;
    if (JsonStats) {
      std::ofstream JOut(StatsJsonPath, std::ios::trunc);
      if (!JOut || !(JOut << MergedStats.toJson() << "\n")) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     StatsJsonPath.c_str());
        Ok = false;
      }
    }
    if (!TracePath.empty() &&
        !trace::writeJsonMerged(TracePath, WorkerTraceBlobs)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", TracePath.c_str());
      Ok = false;
    }
    return Ok;
  };

  auto ToSources = [](const std::vector<std::string> &Paths) {
    std::vector<AppSource> S;
    S.reserve(Paths.size());
    for (const std::string &P : Paths)
      S.push_back({P, false, ""});
    return S;
  };

  if (BatchFile.empty()) {
    Exit = analyzeApp(ToSources(Files), Opt, Cache.get(), JsonStats).Exit;
  } else {
    std::string List, IoErr;
    if (!readFileText(BatchFile.c_str(), List, IoErr)) {
      std::fprintf(stderr, "error: cannot read '%s': %s\n", BatchFile.c_str(),
                   IoErr.c_str());
      if (JsonStats)
        JsonStats->add("cli.input_errors");
      WriteArtifacts();
      return ExitError;
    }
    // Parse the list up front: blank lines and #-comments skipped, each
    // remaining line one app (whitespace-separated .taj files).
    std::vector<supervise::AppTask> Apps;
    std::istringstream LS(List);
    std::string Line;
    while (std::getline(LS, Line)) {
      std::istringstream WS(Line);
      std::vector<std::string> AppFiles;
      std::string Tok;
      while (WS >> Tok) {
        if (Tok[0] == '#')
          break; // rest of line is a comment
        AppFiles.push_back(Tok);
      }
      if (AppFiles.empty())
        continue;
      std::string AppName = AppFiles[0];
      for (size_t I = 1; I < AppFiles.size(); ++I)
        AppName += " " + AppFiles[I];
      Apps.push_back({std::move(AppName), std::move(AppFiles)});
    }
    if (Apps.empty()) {
      std::fprintf(stderr, "error: batch list '%s' names no apps\n",
                   BatchFile.c_str());
      if (JsonStats)
        JsonStats->add("cli.input_errors");
      WriteArtifacts();
      return ExitError;
    }
    if (Jobs == 0) {
      // In-process batch loop: the regression baseline every supervised
      // configuration's stdout is compared against.
      Exit = ExitClean;
      for (const supervise::AppTask &App : Apps) {
        std::printf("=== %s\n", App.Name.c_str());
        RunOutcome O =
            analyzeApp(ToSources(App.Files), Opt, Cache.get(), JsonStats);
        // Deterministic per-app summary (no timings: batch output must be
        // byte-comparable against separate runs).
        std::printf("--- %s: exit=%d issues=%zu\n", App.Name.c_str(), O.Exit,
                    O.NumIssues);
        std::fflush(stdout);
        // Worst-of across apps: error > truncated > clean.
        if (O.Exit == ExitError || Exit == ExitError)
          Exit = ExitError;
        else if (O.Exit == ExitTruncated)
          Exit = ExitTruncated;
      }
    } else {
      // Supervised batch: every app in a forked, watchdogged worker.
      // Concurrent workers share the artifact cache; give reads a default
      // eviction grace window unless the operator chose one.
      uint64_t WorkerGraceMs =
          CacheGraceSet ? CacheGraceMs : (CacheDir.empty() ? 0 : 60000);
      supervise::SupervisorConfig SC;
      SC.CliPath = supervise::resolveSelfExe(Argv[0]);
      SC.BaseArgs = encodeWorkerArgs(Opt, CacheDir, CacheMaxMb, WorkerGraceMs);
      SC.RetryArgs = encodeWorkerArgs(degradeForRetry(Opt), CacheDir,
                                      CacheMaxMb, WorkerGraceMs);
      SC.ConfigFp = optionsFingerprint(Opt);
      SC.Jobs = static_cast<unsigned>(Jobs);
      SC.MaxRetries = static_cast<unsigned>(Retry);
      SC.JournalPath = JournalPath;
      SC.Resume = Resume;
      SC.MergedStats = JsonStats;
      SC.CollectTraces = !TracePath.empty();
      // Derive the non-cooperative backstops (hard deadline, RLIMIT_AS,
      // RLIMIT_CPU) from the cooperative limits after the same environment
      // overlay the workers themselves will apply.
      RunGuard::Limits Coop;
      Coop.DeadlineMs = Opt.DeadlineMs;
      Coop.MaxMemoryBytes = Opt.MaxMemoryMb * 1024 * 1024;
      supervise::deriveHardLimits(RunGuard::limitsFromEnv(Coop), SC);
      supervise::Supervisor Sup(std::move(SC));
      Exit = Sup.runBatch(Apps);
      if (JsonStats)
        Sup.exportStats(*JsonStats);
      WorkerTraceBlobs = Sup.takeTraceBlobs();
    }
  }

  if (!WriteArtifacts())
    return ExitError;
  // A truncated stdout (closed pipe, full disk) must not masquerade as a
  // clean run: SIGPIPE is ignored above, so the failure lands here.
  if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
    std::fprintf(stderr, "error: stdout write failed\n");
    return ExitError;
  }
  return Exit;
}
