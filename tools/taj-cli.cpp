//===- tools/taj-cli.cpp - Command-line driver ---------------------------===//
//
// Analyzes .taj files from the command line:
//
//   taj-cli [options] file.taj [file2.taj ...]
//   taj-cli [options] --batch=LISTFILE
//
// Options:
//   --config=<hybrid|hybrid-prioritized|hybrid-optimized|cs|ci>
//   --budget=<n>          call-graph node budget (0 = unbounded)
//   --string-analysis=<off|local|ipa>
//                         string-constant inference feeding the §4.2
//                         dictionary and reflection models: off = none,
//                         local = per-method ConstStr+Copy chains, ipa =
//                         interprocedural propagation (default)
//   --max-flow-length=<n> drop flows longer than n
//   --nested-depth=<n>    taint-carrier field-dereference bound
//   --threads=<n>         worker threads for slicing (0 = auto, default;
//                         output is byte-identical at every thread count)
//   --deadline-ms=<n>     wall-clock deadline for the analysis run
//   --max-memory-mb=<n>   resident-memory ceiling for the analysis run
//   --fail-at=<n>         fault injection: trip the guard at checkpoint n
//   --crash-at=<n>        hard fault injection: die (abort, or raise
//                         TAJ_CRASH_SIGNAL) at checkpoint n
//   --hang-at=<n>         hard fault injection: block forever at
//                         checkpoint n (exercises the watchdog)
//   --cache-dir=<path>    persistent artifact cache: parsed IR, points-to
//                         solutions and SDGs are stored there and reused
//                         by later runs over the same input/config
//   --cache-max-mb=<n>    cache byte cap, LRU-evicted (0 = uncapped)
//   --cache-grace-ms=<n>  eviction grace window: entries touched more
//                         recently are never evicted (protects entries a
//                         concurrent worker may be mid-read on; defaults
//                         to 60000 under --jobs>=1, else 0)
//   --batch=<listfile>    analyze many apps through one shared warm
//                         cache; each list line names one app's .taj
//                         files (whitespace-separated; blank lines and
//                         #-comments skipped)
//   --jobs=<n>            batch supervision: run each app in a forked,
//                         watchdogged worker process, n of them
//                         concurrently; 0 (default) keeps the in-process
//                         batch loop. --jobs=1 output is byte-identical
//                         to --jobs=0.
//   --retry=<n>           re-runs granted to a crashed / timed-out /
//                         OOM-killed app, each with a degraded config
//                         (halved call-graph budget, local string
//                         analysis, one thread; default 1)
//   --journal=<path>      append-only JSONL journal of per-app attempts
//                         (crash-safe; enables --resume)
//   --resume              skip apps whose terminal outcome the journal
//                         already records; re-run only the rest
//   --stats-json=<path>   write every statistics counter (solver, run
//                         governance, persist.*, supervise.*, and the
//                         per-phase phase.* wall/CPU/peak-RSS breakdown)
//                         as one JSON object
//   --trace=PATH          write a Chrome trace-event JSON timeline of the
//                         run (loadable in chrome://tracing / Perfetto):
//                         spans for every pipeline phase, per-worker spans
//                         in the parallel slicing engine, instant events
//                         for guard stops and cache hits/misses. Under
//                         --jobs>=1 each worker's trace is collected and
//                         merged into one batch timeline keyed by pid/tid.
//   --raw                 print raw flows instead of LCP-grouped reports
//   --dump-ir             print the parsed (SSA) program and exit
//   --stats               print analysis statistics
//
// The governance knobs are also readable from the environment
// (TAJ_DEADLINE_MS, TAJ_MAX_MEMORY_MB, TAJ_FAIL_AT, TAJ_CRASH_AT,
// TAJ_CRASH_SIGNAL, TAJ_HANG_AT); the thread count from TAJ_THREADS; the
// supervisor's non-cooperative backstops from TAJ_HARD_DEADLINE_MS,
// TAJ_HARD_MAX_MEMORY_MB and TAJ_WATCHDOG_GRACE_MS. Explicit flags win.
//
// Exit codes (the documented contract):
//   0  clean: the analysis ran to completion (issues, if any, printed)
//   2  completed with truncation: a deadline/memory/budget/fault cutoff
//      degraded the run; partial results printed, run-status on stderr
//   1  error: bad usage, unreadable input, parse/verify failure, or an
//      internal error that prevented analysis
// In batch mode the process exit code is the worst across all apps
// (error > truncated > clean); one failing app does not stop the batch.
// Under --jobs>=1 a crashed, timed-out or OOM-killed worker counts as an
// error for its app after the retry ladder is exhausted.
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "persist/Cache.h"
#include "report/ReportGenerator.h"
#include "supervise/Supervisor.h"
#include "support/Trace.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <sys/stat.h>

using namespace taj;

namespace {

enum ExitCode { ExitClean = 0, ExitError = 1, ExitTruncated = 2 };

void usage() {
  std::fprintf(
      stderr,
      "usage: taj-cli [--config=NAME] [--budget=N] [--max-flow-length=N]\n"
      "               [--string-analysis=off|local|ipa]\n"
      "               [--nested-depth=N] [--threads=N] [--deadline-ms=N]\n"
      "               [--max-memory-mb=N] [--fail-at=N] [--crash-at=N]\n"
      "               [--hang-at=N] [--cache-dir=PATH] [--cache-max-mb=N]\n"
      "               [--cache-grace-ms=N] [--jobs=N] [--retry=N]\n"
      "               [--journal=PATH] [--resume] [--stats-json=PATH]\n"
      "               [--trace=PATH] [--raw] [--dump-ir] [--stats]\n"
      "               (file.taj [more.taj ...] | --batch=LISTFILE)\n");
}

bool readFile(const char *Path, std::string &Out, std::string &Err) {
  struct stat St;
  if (::stat(Path, &St) != 0) {
    Err = std::strerror(errno);
    return false;
  }
  if (S_ISDIR(St.st_mode)) {
    Err = "is a directory";
    return false;
  }
  std::ifstream In(Path);
  if (!In) {
    Err = std::strerror(errno);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad()) {
    Err = "read failed";
    return false;
  }
  Out = SS.str();
  return true;
}

/// Strict numeric flag parsing: "--fail-at=abc" or "--deadline-ms=" must be
/// a usage error, not a silently ignored limit.
bool parseNum(const char *Flag, const char *Text, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Text, &End);
  if (*Text == '\0' || *End != '\0' || Out < 0) {
    std::fprintf(stderr, "error: %s requires a non-negative number, got '%s'\n",
                 Flag, Text);
    return false;
  }
  return true;
}

/// Integer flags additionally range-check before the narrowing cast:
/// "--budget=5e9" must be a usage error, not a silent uint32_t wrap.
bool parseUInt(const char *Flag, const char *Text, uint64_t Max,
               uint64_t &Out) {
  double V;
  if (!parseNum(Flag, Text, V))
    return false;
  if (V != std::floor(V) || V > static_cast<double>(Max)) {
    std::fprintf(stderr,
                 "error: %s value '%s' is out of range (integer 0..%llu)\n",
                 Flag, Text, static_cast<unsigned long long>(Max));
    return false;
  }
  Out = static_cast<uint64_t>(V);
  return true;
}

bool parseU32(const char *Flag, const char *Text, uint32_t &Out) {
  uint64_t V;
  if (!parseUInt(Flag, Text, UINT32_MAX, V))
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

/// Counter-like uint64 flags stay within double's exact-integer range so
/// the strtod round-trip cannot quietly lose precision.
constexpr uint64_t MaxExactU64 = 1ull << 53;

/// Everything one analysis run needs besides its input files.
struct CliOptions {
  std::string ConfigName = "hybrid";
  uint32_t Budget = 0, MaxLen = 0, NestedDepth = 32;
  uint32_t Threads = 0; // 0 = auto (TAJ_THREADS, then hardware concurrency)
  double DeadlineMs = 0;
  uint64_t MaxMemoryMb = 0, FailAt = 0, CrashAt = 0, HangAt = 0;
  StringAnalysisMode StringAnalysis = StringAnalysisMode::Ipa;
  bool Raw = false, DumpIr = false, ShowStats = false;
};

bool buildConfig(const CliOptions &O, AnalysisConfig &C) {
  if (O.ConfigName == "hybrid")
    C = AnalysisConfig::hybridUnbounded();
  else if (O.ConfigName == "hybrid-prioritized")
    C = AnalysisConfig::hybridPrioritized(O.Budget ? O.Budget : 20000);
  else if (O.ConfigName == "hybrid-optimized")
    C = AnalysisConfig::hybridOptimized(O.Budget ? O.Budget : 20000);
  else if (O.ConfigName == "cs")
    C = AnalysisConfig::cs();
  else if (O.ConfigName == "ci")
    C = AnalysisConfig::ci();
  else {
    std::fprintf(stderr, "error: unknown config '%s'\n", O.ConfigName.c_str());
    return false;
  }
  if (O.Budget)
    C.MaxCallGraphNodes = O.Budget;
  if (O.MaxLen)
    C.MaxFlowLength = O.MaxLen;
  C.NestedTaintDepth = O.NestedDepth;
  C.Threads = O.Threads; // 0 defers to TAJ_THREADS / hardware concurrency
  // Explicit flags win over the TAJ_* environment (TaintAnalysis overlays
  // the environment only onto unset limits, since flags default to 0 the
  // overlay applies exactly when no flag was given).
  if (O.DeadlineMs > 0)
    C.DeadlineMs = O.DeadlineMs;
  if (O.MaxMemoryMb)
    C.MaxMemoryMb = O.MaxMemoryMb;
  if (O.FailAt)
    C.FailAtCheckpoint = O.FailAt;
  if (O.CrashAt)
    C.CrashAtCheckpoint = O.CrashAt;
  if (O.HangAt)
    C.HangAtCheckpoint = O.HangAt;
  C.StringAnalysis = O.StringAnalysis;
  return true;
}

struct RunOutcome {
  int Exit = ExitError;
  size_t NumIssues = 0;
};

/// Analyzes one app (a set of .taj files forming one program) end to end:
/// frontend (IR cache aware), analysis (points-to/SDG cache aware via
/// AnalysisConfig), report rendering. Batch mode calls this once per list
/// line against a shared cache. \p MergedStats, when set, accumulates every
/// counter for --stats-json.
RunOutcome analyzeOne(const std::vector<std::string> &Files,
                      const CliOptions &Opt, persist::ArtifactCache *Cache,
                      Stats *MergedStats) {
  RunOutcome Out;

  // Per-app profile covering parse and report on top of the run-internal
  // phases (handed to the analysis via ExternalProfile). Every return
  // path below exports it, so a failed app still accounts its time.
  PhaseProfile Prof;
  // Unreadable/unparseable inputs must still leave a mark in the stats
  // artifact: the counter tells a supervising parent the app failed on
  // input, not inside the analysis.
  auto FailInput = [&]() -> RunOutcome {
    if (MergedStats) {
      MergedStats->add("cli.input_errors");
      Prof.exportStats(*MergedStats);
    }
    return Out; // Exit stays ExitError
  };

  // Read every input up front: the content fingerprint keys all cache
  // entries, so it must cover exactly the bytes the frontend would parse.
  std::vector<std::string> Sources(Files.size());
  bool InputError = false;
  for (size_t I = 0; I < Files.size(); ++I) {
    std::string IoErr;
    if (!readFile(Files[I].c_str(), Sources[I], IoErr)) {
      std::fprintf(stderr, "error: cannot read '%s': %s\n", Files[I].c_str(),
                   IoErr.c_str());
      InputError = true;
    }
  }
  if (InputError)
    return FailInput();

  uint64_t H = persist::fnv1a("taj-input", 9);
  for (const std::string &S : Sources) {
    H = persist::fnv1a(S.data(), S.size(), H);
    H = persist::fnv1a("|", 1, H); // file boundaries matter
  }
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx", static_cast<unsigned long long>(H));
  const std::string InputFp = Hex;

  const bool CacheOn = Cache && Cache->enabled();
  // IR-phase counter baseline: the analysis phases report their own deltas
  // in RunStats, so only the frontend window needs accounting here.
  uint64_t Hit0 = 0, Miss0 = 0, Store0 = 0, Evict0 = 0, Corrupt0 = 0;
  if (CacheOn) {
    Hit0 = Cache->hits();
    Miss0 = Cache->misses();
    Store0 = Cache->stores();
    Evict0 = Cache->evictions();
    Corrupt0 = Cache->corruptions();
  }

  // Frontend, warm path: a valid "ir" entry replaces builtin installation,
  // parsing and verification wholesale (the stored program was verified
  // before it was stored). Any restore failure falls back cold.
  auto P = std::make_unique<Program>();
  std::string IrKey;
  bool IrWarm = false;
  if (CacheOn) {
    PhaseScope S(&Prof, "persist_load");
    IrKey = persist::ArtifactCache::makeKey("ir", InputFp, "");
    if (std::optional<persist::LoadedPayload> Payload =
            Cache->load(IrKey, persist::ArtifactKind::Ir)) {
      persist::Reader R(Payload->data(), Payload->size());
      IrWarm = persist::Access::restoreProgram(*P, R);
      if (!IrWarm) {
        Cache->noteRestoreFailure(IrKey);
        P = std::make_unique<Program>(); // restore may leave partial state
      }
    }
  }
  if (!IrWarm) {
    PhaseScope S(&Prof, "parse");
    // Frontend: every input file gets its own diagnostics; one bad file
    // does not silently hide behind another, and none aborts the process.
    installBuiltinLibrary(*P);
    for (size_t I = 0; I < Files.size(); ++I) {
      std::vector<std::string> Errors;
      if (!parseTaj(*P, Sources[I], &Errors)) {
        if (Errors.empty())
          std::fprintf(stderr, "%s: parse failed\n", Files[I].c_str());
        for (const std::string &E : Errors)
          std::fprintf(stderr, "%s:%s\n", Files[I].c_str(), E.c_str());
        InputError = true;
      }
    }
    if (InputError)
      return FailInput();
    std::vector<std::string> VErrors = verifyProgram(*P);
    if (!VErrors.empty()) {
      for (const std::string &E : VErrors)
        std::fprintf(stderr, "verifier: %s\n", E.c_str());
      return FailInput();
    }
    if (CacheOn) {
      PhaseScope SS(&Prof, "persist_store");
      persist::Writer W;
      persist::Access::serializeProgram(*P, W);
      Cache->store(IrKey, persist::ArtifactKind::Ir, W.bytes());
    }
  }
  // Frontend-window cache deltas, folded into the run's stats below so
  // --stats and --stats-json see the full per-app persist.* picture.
  uint64_t IrHit = 0, IrMiss = 0, IrStore = 0, IrEvict = 0, IrCorrupt = 0;
  if (CacheOn) {
    IrHit = Cache->hits() - Hit0;
    IrMiss = Cache->misses() - Miss0;
    IrStore = Cache->stores() - Store0;
    IrEvict = Cache->evictions() - Evict0;
    IrCorrupt = Cache->corruptions() - Corrupt0;
  }
  if (Opt.DumpIr) {
    std::printf("%s", printProgram(*P).c_str());
    if (MergedStats)
      Prof.exportStats(*MergedStats);
    Out.Exit = ExitClean;
    return Out;
  }

  AnalysisConfig C;
  if (!buildConfig(Opt, C))
    return Out;
  C.Cache = Cache;
  C.InputFingerprint = InputFp;
  C.ExternalProfile = &Prof;

  MethodId Root = synthesizeEntrypointDriver(*P);
  TaintAnalysis TA(*P, std::move(C));
  AnalysisResult R = TA.run({Root});
  if (CacheOn) {
    R.RunStats.add("persist.hit", IrHit);
    R.RunStats.add("persist.miss", IrMiss);
    R.RunStats.add("persist.store", IrStore);
    R.RunStats.add("persist.evict", IrEvict);
    R.RunStats.add("persist.corrupt", IrCorrupt);
  }

  const bool FailedNoStatus = !R.Completed && !R.degraded();
  if (!FailedNoStatus) {
    if (Opt.Raw) {
      for (const Issue &I : R.Issues)
        std::printf("%s: %s -> %s (length %u)\n", rules::ruleName(I.Rule),
                    describeStmt(*P, I.Source).c_str(),
                    describeStmt(*P, I.Sink).c_str(), I.Length);
    } else {
      PhaseScope RS(&Prof, "report");
      std::printf("%s",
                  renderReports(*P, generateReports(*P, R.Issues), &R.Status)
                      .c_str());
    }
  }

  // The profile now covers parse, report and the run-internal phases;
  // export it into this run's stats before folding them into the merged
  // set (run() skipped the export because the profile is external).
  Prof.exportStats(R.RunStats);
  if (MergedStats)
    MergedStats->merge(R.RunStats); // includes the solver counters

  if (FailedNoStatus) {
    // Legacy CS failure channel with no structured status (should not
    // happen: TaintAnalysis reports it as a memory truncation).
    std::fprintf(stderr, "analysis did not complete\n");
    return Out;
  }
  if (R.degraded())
    std::fprintf(stderr, "run-status: %s\n", R.Status.toString().c_str());
  if (Opt.ShowStats) {
    std::fprintf(stderr, "-- %zu raw flows, %.1f ms, %u call-graph nodes%s\n",
                 R.Issues.size(), R.Millis, R.CgNodesProcessed,
                 R.BudgetExhausted ? " (budget exhausted)" : "");
    std::fprintf(stderr, "%s", R.RunStats.toString().c_str());
  }
  Out.NumIssues = R.Issues.size();
  Out.Exit = R.degraded() ? ExitTruncated : ExitClean;
  // The issue count rides the stats channel so a supervising parent can
  // recover it from the worker's --stats-json file.
  if (MergedStats)
    MergedStats->add("cli.issues", Out.NumIssues);
  return Out;
}

/// Re-encodes \p Opt as worker flags for a supervised self-exec; the
/// worker must reproduce exactly the run analyzeOne() would perform
/// in-process (--jobs=1 is byte-identical to --jobs=0 by construction).
std::vector<std::string> encodeWorkerArgs(const CliOptions &O,
                                          const std::string &CacheDir,
                                          uint64_t CacheMaxMb,
                                          uint64_t CacheGraceMs) {
  std::vector<std::string> A;
  A.push_back("--config=" + O.ConfigName);
  if (O.Budget)
    A.push_back("--budget=" + std::to_string(O.Budget));
  if (O.MaxLen)
    A.push_back("--max-flow-length=" + std::to_string(O.MaxLen));
  A.push_back("--nested-depth=" + std::to_string(O.NestedDepth));
  A.push_back("--threads=" + std::to_string(O.Threads));
  if (O.DeadlineMs > 0)
    A.push_back("--deadline-ms=" + std::to_string(O.DeadlineMs));
  if (O.MaxMemoryMb)
    A.push_back("--max-memory-mb=" + std::to_string(O.MaxMemoryMb));
  if (O.FailAt)
    A.push_back("--fail-at=" + std::to_string(O.FailAt));
  if (O.CrashAt)
    A.push_back("--crash-at=" + std::to_string(O.CrashAt));
  if (O.HangAt)
    A.push_back("--hang-at=" + std::to_string(O.HangAt));
  A.push_back(std::string("--string-analysis=") +
              stringAnalysisModeName(O.StringAnalysis));
  if (O.Raw)
    A.push_back("--raw");
  if (O.DumpIr)
    A.push_back("--dump-ir");
  if (O.ShowStats)
    A.push_back("--stats");
  if (!CacheDir.empty()) {
    A.push_back("--cache-dir=" + CacheDir);
    if (CacheMaxMb)
      A.push_back("--cache-max-mb=" + std::to_string(CacheMaxMb));
    if (CacheGraceMs)
      A.push_back("--cache-grace-ms=" + std::to_string(CacheGraceMs));
  }
  return A;
}

/// Fingerprint of the result-relevant batch configuration, stamped into
/// journal records so --resume never trusts records from a
/// differently-configured run. Threads and --stats are excluded: they do
/// not change per-app results.
std::string batchConfigFingerprint(const CliOptions &O) {
  std::string S = "cfg:" + O.ConfigName + ";b=" + std::to_string(O.Budget) +
                  ";fl=" + std::to_string(O.MaxLen) +
                  ";nd=" + std::to_string(O.NestedDepth) +
                  ";dl=" + std::to_string(O.DeadlineMs) +
                  ";mm=" + std::to_string(O.MaxMemoryMb) +
                  ";fa=" + std::to_string(O.FailAt) +
                  ";ca=" + std::to_string(O.CrashAt) +
                  ";ha=" + std::to_string(O.HangAt) +
                  ";sa=" + stringAnalysisModeName(O.StringAnalysis) +
                  ";raw=" + std::to_string(O.Raw) +
                  ";ir=" + std::to_string(O.DumpIr);
  uint64_t H = persist::fnv1a(S.data(), S.size());
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(H));
  return Hex;
}

/// The degraded flag set for supervised retry attempts, derived from the
/// shared RunGuard degradation preset: halved effective call-graph
/// budget, local-only string analysis, one slicing thread, and no fault
/// injection (an injected fault is a first-attempt scenario).
CliOptions degradeForRetry(const CliOptions &O) {
  CliOptions R = O;
  const DegradationPreset &D = degradationForAttempt(1);
  AnalysisConfig C;
  if (buildConfig(O, C) && C.MaxCallGraphNodes) {
    uint32_t Scaled = static_cast<uint32_t>(
        static_cast<double>(C.MaxCallGraphNodes) * D.CallGraphBudgetScale);
    R.Budget = Scaled ? Scaled : 1;
  }
  if (D.ForceLocalStringAnalysis &&
      R.StringAnalysis == StringAnalysisMode::Ipa)
    R.StringAnalysis = StringAnalysisMode::Local;
  if (D.ForceSingleThread)
    R.Threads = 1;
  if (D.StripFaultInjection)
    R.FailAt = R.CrashAt = R.HangAt = 0;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  // A supervised worker turns allocation failure under the parent's
  // RLIMIT_AS ceiling into a deterministic OOM exit code (see
  // supervise/Supervisor.h) before any allocation can happen.
  if (std::getenv("TAJ_SUPERVISED_WORKER"))
    supervise::installWorkerOomHandler();

  CliOptions Opt;
  std::string CacheDir, BatchFile, StatsJsonPath, JournalPath, TracePath;
  uint64_t CacheMaxMb = 0, CacheGraceMs = 0, Jobs = 0, Retry = 1;
  bool CacheGraceSet = false, RetrySet = false, Resume = false;
  std::vector<std::string> Files;

  for (int K = 1; K < Argc; ++K) {
    const char *A = Argv[K];
    if (std::strncmp(A, "--config=", 9) == 0)
      Opt.ConfigName = A + 9;
    else if (std::strncmp(A, "--budget=", 9) == 0) {
      if (!parseU32("--budget", A + 9, Opt.Budget))
        return ExitError;
    } else if (std::strncmp(A, "--max-flow-length=", 18) == 0) {
      if (!parseU32("--max-flow-length", A + 18, Opt.MaxLen))
        return ExitError;
    } else if (std::strncmp(A, "--nested-depth=", 15) == 0) {
      if (!parseU32("--nested-depth", A + 15, Opt.NestedDepth))
        return ExitError;
    } else if (std::strncmp(A, "--threads=", 10) == 0) {
      if (!parseU32("--threads", A + 10, Opt.Threads))
        return ExitError;
    } else if (std::strncmp(A, "--deadline-ms=", 14) == 0) {
      if (!parseNum("--deadline-ms", A + 14, Opt.DeadlineMs))
        return ExitError;
    } else if (std::strncmp(A, "--max-memory-mb=", 16) == 0) {
      if (!parseUInt("--max-memory-mb", A + 16, MaxExactU64, Opt.MaxMemoryMb))
        return ExitError;
    } else if (std::strncmp(A, "--fail-at=", 10) == 0) {
      if (!parseUInt("--fail-at", A + 10, MaxExactU64, Opt.FailAt))
        return ExitError;
    } else if (std::strncmp(A, "--crash-at=", 11) == 0) {
      if (!parseUInt("--crash-at", A + 11, MaxExactU64, Opt.CrashAt))
        return ExitError;
    } else if (std::strncmp(A, "--hang-at=", 10) == 0) {
      if (!parseUInt("--hang-at", A + 10, MaxExactU64, Opt.HangAt))
        return ExitError;
    } else if (std::strncmp(A, "--string-analysis=", 18) == 0) {
      if (!parseStringAnalysisMode(A + 18, Opt.StringAnalysis)) {
        std::fprintf(stderr,
                     "error: --string-analysis requires off|local|ipa, "
                     "got '%s'\n",
                     A + 18);
        return ExitError;
      }
    } else if (std::strncmp(A, "--cache-dir=", 12) == 0)
      CacheDir = A + 12;
    else if (std::strncmp(A, "--cache-max-mb=", 15) == 0) {
      if (!parseUInt("--cache-max-mb", A + 15, MaxExactU64, CacheMaxMb))
        return ExitError;
    } else if (std::strncmp(A, "--cache-grace-ms=", 17) == 0) {
      if (!parseUInt("--cache-grace-ms", A + 17, MaxExactU64, CacheGraceMs))
        return ExitError;
      CacheGraceSet = true;
    } else if (std::strncmp(A, "--jobs=", 7) == 0) {
      if (!parseUInt("--jobs", A + 7, 1024, Jobs))
        return ExitError;
    } else if (std::strncmp(A, "--retry=", 8) == 0) {
      if (!parseUInt("--retry", A + 8, 100, Retry))
        return ExitError;
      RetrySet = true;
    } else if (std::strncmp(A, "--journal=", 10) == 0)
      JournalPath = A + 10;
    else if (std::strcmp(A, "--resume") == 0)
      Resume = true;
    else if (std::strncmp(A, "--batch=", 8) == 0)
      BatchFile = A + 8;
    else if (std::strncmp(A, "--stats-json=", 13) == 0)
      StatsJsonPath = A + 13;
    else if (std::strncmp(A, "--trace=", 8) == 0)
      TracePath = A + 8;
    else if (std::strcmp(A, "--raw") == 0)
      Opt.Raw = true;
    else if (std::strcmp(A, "--dump-ir") == 0)
      Opt.DumpIr = true;
    else if (std::strcmp(A, "--stats") == 0)
      Opt.ShowStats = true;
    else if (A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A);
      usage();
      return ExitError;
    } else
      Files.push_back(A);
  }
  if (BatchFile.empty() ? Files.empty() : !Files.empty()) {
    if (!BatchFile.empty())
      std::fprintf(stderr,
                   "error: --batch and positional files are exclusive\n");
    usage();
    return ExitError;
  }
  if (Jobs > 0 && BatchFile.empty()) {
    std::fprintf(stderr, "error: --jobs requires --batch\n");
    return ExitError;
  }
  if ((RetrySet || !JournalPath.empty() || Resume) && Jobs == 0) {
    std::fprintf(stderr,
                 "error: --retry/--journal/--resume require --jobs>=1\n");
    return ExitError;
  }
  if (Resume && JournalPath.empty()) {
    std::fprintf(stderr, "error: --resume requires --journal\n");
    return ExitError;
  }
  {
    // Fail fast on a bad config name instead of once per batch line.
    AnalysisConfig Probe;
    CliOptions ProbeOpt = Opt;
    if (!buildConfig(ProbeOpt, Probe))
      return ExitError;
  }

  // Arm the trace sink before any instrumented work runs; usage errors
  // above deliberately exit without producing an (empty) trace file.
  if (!TracePath.empty())
    trace::enable();

  std::unique_ptr<persist::ArtifactCache> Cache;
  if (!CacheDir.empty() && Jobs == 0)
    Cache = std::make_unique<persist::ArtifactCache>(
        CacheDir, CacheMaxMb * 1024 * 1024, CacheGraceMs);

  Stats MergedStats;
  Stats *JsonStats = StatsJsonPath.empty() ? nullptr : &MergedStats;

  // Every exit path past this point (normal, truncated, parse failure,
  // batch-list errors) funnels through this writer, so the stats/trace
  // artifacts exist whenever the flags were given — a supervising parent
  // or CI step never reads a missing file just because the run degraded.
  std::vector<std::string> WorkerTraceBlobs;
  auto WriteArtifacts = [&]() -> bool {
    bool Ok = true;
    if (JsonStats) {
      std::ofstream JOut(StatsJsonPath, std::ios::trunc);
      if (!JOut || !(JOut << MergedStats.toJson() << "\n")) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     StatsJsonPath.c_str());
        Ok = false;
      }
    }
    if (!TracePath.empty() &&
        !trace::writeJsonMerged(TracePath, WorkerTraceBlobs)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", TracePath.c_str());
      Ok = false;
    }
    return Ok;
  };

  int Exit;
  if (BatchFile.empty()) {
    Exit = analyzeOne(Files, Opt, Cache.get(), JsonStats).Exit;
  } else {
    std::string List, IoErr;
    if (!readFile(BatchFile.c_str(), List, IoErr)) {
      std::fprintf(stderr, "error: cannot read '%s': %s\n", BatchFile.c_str(),
                   IoErr.c_str());
      if (JsonStats)
        JsonStats->add("cli.input_errors");
      WriteArtifacts();
      return ExitError;
    }
    // Parse the list up front: blank lines and #-comments skipped, each
    // remaining line one app (whitespace-separated .taj files).
    std::vector<supervise::AppTask> Apps;
    std::istringstream LS(List);
    std::string Line;
    while (std::getline(LS, Line)) {
      std::istringstream WS(Line);
      std::vector<std::string> AppFiles;
      std::string Tok;
      while (WS >> Tok) {
        if (Tok[0] == '#')
          break; // rest of line is a comment
        AppFiles.push_back(Tok);
      }
      if (AppFiles.empty())
        continue;
      std::string AppName = AppFiles[0];
      for (size_t I = 1; I < AppFiles.size(); ++I)
        AppName += " " + AppFiles[I];
      Apps.push_back({std::move(AppName), std::move(AppFiles)});
    }
    if (Apps.empty()) {
      std::fprintf(stderr, "error: batch list '%s' names no apps\n",
                   BatchFile.c_str());
      if (JsonStats)
        JsonStats->add("cli.input_errors");
      WriteArtifacts();
      return ExitError;
    }
    if (Jobs == 0) {
      // In-process batch loop: the regression baseline every supervised
      // configuration's stdout is compared against.
      Exit = ExitClean;
      for (const supervise::AppTask &App : Apps) {
        std::printf("=== %s\n", App.Name.c_str());
        RunOutcome O = analyzeOne(App.Files, Opt, Cache.get(), JsonStats);
        // Deterministic per-app summary (no timings: batch output must be
        // byte-comparable against separate runs).
        std::printf("--- %s: exit=%d issues=%zu\n", App.Name.c_str(), O.Exit,
                    O.NumIssues);
        std::fflush(stdout);
        // Worst-of across apps: error > truncated > clean.
        if (O.Exit == ExitError || Exit == ExitError)
          Exit = ExitError;
        else if (O.Exit == ExitTruncated)
          Exit = ExitTruncated;
      }
    } else {
      // Supervised batch: every app in a forked, watchdogged worker.
      // Concurrent workers share the artifact cache; give reads a default
      // eviction grace window unless the operator chose one.
      uint64_t WorkerGraceMs =
          CacheGraceSet ? CacheGraceMs : (CacheDir.empty() ? 0 : 60000);
      supervise::SupervisorConfig SC;
      SC.CliPath = supervise::resolveSelfExe(Argv[0]);
      SC.BaseArgs = encodeWorkerArgs(Opt, CacheDir, CacheMaxMb, WorkerGraceMs);
      SC.RetryArgs = encodeWorkerArgs(degradeForRetry(Opt), CacheDir,
                                      CacheMaxMb, WorkerGraceMs);
      SC.ConfigFp = batchConfigFingerprint(Opt);
      SC.Jobs = static_cast<unsigned>(Jobs);
      SC.MaxRetries = static_cast<unsigned>(Retry);
      SC.JournalPath = JournalPath;
      SC.Resume = Resume;
      SC.MergedStats = JsonStats;
      SC.CollectTraces = !TracePath.empty();
      // Derive the non-cooperative backstops (hard deadline, RLIMIT_AS,
      // RLIMIT_CPU) from the cooperative limits after the same environment
      // overlay the workers themselves will apply.
      RunGuard::Limits Coop;
      Coop.DeadlineMs = Opt.DeadlineMs;
      Coop.MaxMemoryBytes = Opt.MaxMemoryMb * 1024 * 1024;
      supervise::deriveHardLimits(RunGuard::limitsFromEnv(Coop), SC);
      supervise::Supervisor Sup(std::move(SC));
      Exit = Sup.runBatch(Apps);
      if (JsonStats)
        Sup.exportStats(*JsonStats);
      WorkerTraceBlobs = Sup.takeTraceBlobs();
    }
  }

  if (!WriteArtifacts())
    return ExitError;
  return Exit;
}
