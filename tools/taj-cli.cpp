//===- tools/taj-cli.cpp - Command-line driver ---------------------------===//
//
// Analyzes .taj files from the command line:
//
//   taj-cli [options] file.taj [file2.taj ...]
//
// Options:
//   --config=<hybrid|hybrid-prioritized|hybrid-optimized|cs|ci>
//   --budget=<n>          call-graph node budget (0 = unbounded)
//   --max-flow-length=<n> drop flows longer than n
//   --nested-depth=<n>    taint-carrier field-dereference bound
//   --threads=<n>         worker threads for slicing (0 = auto, default;
//                         output is byte-identical at every thread count)
//   --deadline-ms=<n>     wall-clock deadline for the analysis run
//   --max-memory-mb=<n>   resident-memory ceiling for the analysis run
//   --fail-at=<n>         fault injection: trip the guard at checkpoint n
//   --raw                 print raw flows instead of LCP-grouped reports
//   --dump-ir             print the parsed (SSA) program and exit
//   --stats               print analysis statistics
//
// The governance knobs are also readable from the environment
// (TAJ_DEADLINE_MS, TAJ_MAX_MEMORY_MB, TAJ_FAIL_AT); the thread count from
// TAJ_THREADS. Explicit flags win.
//
// Exit codes (the documented contract):
//   0  clean: the analysis ran to completion (issues, if any, printed)
//   2  completed with truncation: a deadline/memory/budget/fault cutoff
//      degraded the run; partial results printed, run-status on stderr
//   1  error: bad usage, unreadable input, parse/verify failure, or an
//      internal error that prevented analysis
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "report/ReportGenerator.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>

using namespace taj;

namespace {

enum ExitCode { ExitClean = 0, ExitError = 1, ExitTruncated = 2 };

void usage() {
  std::fprintf(
      stderr,
      "usage: taj-cli [--config=NAME] [--budget=N] [--max-flow-length=N]\n"
      "               [--nested-depth=N] [--threads=N] [--deadline-ms=N]\n"
      "               [--max-memory-mb=N] [--fail-at=N] [--raw] [--dump-ir]\n"
      "               [--stats] file.taj [more.taj ...]\n");
}

bool readFile(const char *Path, std::string &Out, std::string &Err) {
  struct stat St;
  if (::stat(Path, &St) != 0) {
    Err = std::strerror(errno);
    return false;
  }
  if (S_ISDIR(St.st_mode)) {
    Err = "is a directory";
    return false;
  }
  std::ifstream In(Path);
  if (!In) {
    Err = std::strerror(errno);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad()) {
    Err = "read failed";
    return false;
  }
  Out = SS.str();
  return true;
}

/// Strict numeric flag parsing: "--fail-at=abc" or "--deadline-ms=" must be
/// a usage error, not a silently ignored limit.
bool parseNum(const char *Flag, const char *Text, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Text, &End);
  if (*Text == '\0' || *End != '\0' || Out < 0) {
    std::fprintf(stderr, "error: %s requires a non-negative number, got '%s'\n",
                 Flag, Text);
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ConfigName = "hybrid";
  uint32_t Budget = 0, MaxLen = 0, NestedDepth = 32;
  uint32_t Threads = 0; // 0 = auto (TAJ_THREADS, then hardware concurrency)
  double DeadlineMs = 0;
  uint64_t MaxMemoryMb = 0, FailAt = 0;
  bool Raw = false, DumpIr = false, ShowStats = false;
  std::vector<const char *> Files;

  for (int K = 1; K < Argc; ++K) {
    const char *A = Argv[K];
    if (std::strncmp(A, "--config=", 9) == 0)
      ConfigName = A + 9;
    else if (std::strncmp(A, "--budget=", 9) == 0)
      Budget = static_cast<uint32_t>(std::atoi(A + 9));
    else if (std::strncmp(A, "--max-flow-length=", 18) == 0)
      MaxLen = static_cast<uint32_t>(std::atoi(A + 18));
    else if (std::strncmp(A, "--nested-depth=", 15) == 0)
      NestedDepth = static_cast<uint32_t>(std::atoi(A + 15));
    else if (std::strncmp(A, "--threads=", 10) == 0) {
      double V;
      if (!parseNum("--threads", A + 10, V))
        return ExitError;
      Threads = static_cast<uint32_t>(V);
    } else if (std::strncmp(A, "--deadline-ms=", 14) == 0) {
      if (!parseNum("--deadline-ms", A + 14, DeadlineMs))
        return ExitError;
    } else if (std::strncmp(A, "--max-memory-mb=", 16) == 0) {
      double V;
      if (!parseNum("--max-memory-mb", A + 16, V))
        return ExitError;
      MaxMemoryMb = static_cast<uint64_t>(V);
    } else if (std::strncmp(A, "--fail-at=", 10) == 0) {
      double V;
      if (!parseNum("--fail-at", A + 10, V))
        return ExitError;
      FailAt = static_cast<uint64_t>(V);
    }
    else if (std::strcmp(A, "--raw") == 0)
      Raw = true;
    else if (std::strcmp(A, "--dump-ir") == 0)
      DumpIr = true;
    else if (std::strcmp(A, "--stats") == 0)
      ShowStats = true;
    else if (A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A);
      usage();
      return ExitError;
    } else
      Files.push_back(A);
  }
  if (Files.empty()) {
    usage();
    return ExitError;
  }

  // Frontend: every input file gets its own diagnostics; one bad file does
  // not silently hide behind another, and none aborts the process.
  Program P;
  installBuiltinLibrary(P);
  bool InputError = false;
  for (const char *F : Files) {
    std::string Src, IoErr;
    if (!readFile(F, Src, IoErr)) {
      std::fprintf(stderr, "error: cannot read '%s': %s\n", F,
                   IoErr.c_str());
      InputError = true;
      continue;
    }
    std::vector<std::string> Errors;
    if (!parseTaj(P, Src, &Errors)) {
      if (Errors.empty())
        std::fprintf(stderr, "%s: parse failed\n", F);
      for (const std::string &E : Errors)
        std::fprintf(stderr, "%s:%s\n", F, E.c_str());
      InputError = true;
    }
  }
  if (InputError)
    return ExitError;
  std::vector<std::string> VErrors = verifyProgram(P);
  if (!VErrors.empty()) {
    for (const std::string &E : VErrors)
      std::fprintf(stderr, "verifier: %s\n", E.c_str());
    return ExitError;
  }
  if (DumpIr) {
    std::printf("%s", printProgram(P).c_str());
    return ExitClean;
  }

  AnalysisConfig C;
  if (ConfigName == "hybrid")
    C = AnalysisConfig::hybridUnbounded();
  else if (ConfigName == "hybrid-prioritized")
    C = AnalysisConfig::hybridPrioritized(Budget ? Budget : 20000);
  else if (ConfigName == "hybrid-optimized")
    C = AnalysisConfig::hybridOptimized(Budget ? Budget : 20000);
  else if (ConfigName == "cs")
    C = AnalysisConfig::cs();
  else if (ConfigName == "ci")
    C = AnalysisConfig::ci();
  else {
    std::fprintf(stderr, "error: unknown config '%s'\n", ConfigName.c_str());
    return ExitError;
  }
  if (Budget)
    C.MaxCallGraphNodes = Budget;
  if (MaxLen)
    C.MaxFlowLength = MaxLen;
  C.NestedTaintDepth = NestedDepth;
  C.Threads = Threads; // 0 defers to TAJ_THREADS / hardware concurrency
  // Explicit flags win over the TAJ_* environment (TaintAnalysis overlays
  // the environment only onto unset limits, since flags default to 0 the
  // overlay applies exactly when no flag was given).
  if (DeadlineMs > 0)
    C.DeadlineMs = DeadlineMs;
  if (MaxMemoryMb)
    C.MaxMemoryMb = MaxMemoryMb;
  if (FailAt)
    C.FailAtCheckpoint = FailAt;

  MethodId Root = synthesizeEntrypointDriver(P);
  TaintAnalysis TA(P, std::move(C));
  AnalysisResult R = TA.run({Root});

  if (!R.Completed && !R.degraded()) {
    // Legacy CS failure channel with no structured status (should not
    // happen: TaintAnalysis reports it as a memory truncation).
    std::fprintf(stderr, "analysis did not complete\n");
    return ExitError;
  }
  if (Raw) {
    for (const Issue &I : R.Issues)
      std::printf("%s: %s -> %s (length %u)\n", rules::ruleName(I.Rule),
                  describeStmt(P, I.Source).c_str(),
                  describeStmt(P, I.Sink).c_str(), I.Length);
  } else {
    std::printf("%s",
                renderReports(P, generateReports(P, R.Issues), &R.Status)
                    .c_str());
  }
  if (R.degraded())
    std::fprintf(stderr, "run-status: %s\n", R.Status.toString().c_str());
  if (ShowStats) {
    std::fprintf(stderr, "-- %zu raw flows, %.1f ms, %u call-graph nodes%s\n",
                 R.Issues.size(), R.Millis, R.CgNodesProcessed,
                 R.BudgetExhausted ? " (budget exhausted)" : "");
    std::fprintf(stderr, "%s", TA.solver().stats().toString().c_str());
    std::fprintf(stderr, "%s", R.RunStats.toString().c_str());
  }
  return R.degraded() ? ExitTruncated : ExitClean;
}
