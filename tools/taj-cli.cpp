//===- tools/taj-cli.cpp - Command-line driver ---------------------------===//
//
// Analyzes .taj files from the command line:
//
//   taj-cli [options] file.taj [file2.taj ...]
//
// Options:
//   --config=<hybrid|hybrid-prioritized|hybrid-optimized|cs|ci>
//   --budget=<n>          call-graph node budget (0 = unbounded)
//   --max-flow-length=<n> drop flows longer than n
//   --nested-depth=<n>    taint-carrier field-dereference bound
//   --raw                 print raw flows instead of LCP-grouped reports
//   --dump-ir             print the parsed (SSA) program and exit
//   --stats               print analysis statistics
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "report/ReportGenerator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace taj;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: taj-cli [--config=NAME] [--budget=N] [--max-flow-length=N]\n"
      "               [--nested-depth=N] [--raw] [--dump-ir] [--stats]\n"
      "               file.taj [more.taj ...]\n");
}

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ConfigName = "hybrid";
  uint32_t Budget = 0, MaxLen = 0, NestedDepth = 32;
  bool Raw = false, DumpIr = false, ShowStats = false;
  std::vector<const char *> Files;

  for (int K = 1; K < Argc; ++K) {
    const char *A = Argv[K];
    if (std::strncmp(A, "--config=", 9) == 0)
      ConfigName = A + 9;
    else if (std::strncmp(A, "--budget=", 9) == 0)
      Budget = static_cast<uint32_t>(std::atoi(A + 9));
    else if (std::strncmp(A, "--max-flow-length=", 18) == 0)
      MaxLen = static_cast<uint32_t>(std::atoi(A + 18));
    else if (std::strncmp(A, "--nested-depth=", 15) == 0)
      NestedDepth = static_cast<uint32_t>(std::atoi(A + 15));
    else if (std::strcmp(A, "--raw") == 0)
      Raw = true;
    else if (std::strcmp(A, "--dump-ir") == 0)
      DumpIr = true;
    else if (std::strcmp(A, "--stats") == 0)
      ShowStats = true;
    else if (A[0] == '-') {
      usage();
      return 2;
    } else
      Files.push_back(A);
  }
  if (Files.empty()) {
    usage();
    return 2;
  }

  Program P;
  installBuiltinLibrary(P);
  for (const char *F : Files) {
    std::string Src;
    if (!readFile(F, Src)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", F);
      return 1;
    }
    std::vector<std::string> Errors;
    if (!parseTaj(P, Src, &Errors)) {
      for (const std::string &E : Errors)
        std::fprintf(stderr, "%s:%s\n", F, E.c_str());
      return 1;
    }
  }
  std::vector<std::string> VErrors = verifyProgram(P);
  if (!VErrors.empty()) {
    for (const std::string &E : VErrors)
      std::fprintf(stderr, "verifier: %s\n", E.c_str());
    return 1;
  }
  if (DumpIr) {
    std::printf("%s", printProgram(P).c_str());
    return 0;
  }

  AnalysisConfig C;
  if (ConfigName == "hybrid")
    C = AnalysisConfig::hybridUnbounded();
  else if (ConfigName == "hybrid-prioritized")
    C = AnalysisConfig::hybridPrioritized(Budget ? Budget : 20000);
  else if (ConfigName == "hybrid-optimized")
    C = AnalysisConfig::hybridOptimized(Budget ? Budget : 20000);
  else if (ConfigName == "cs")
    C = AnalysisConfig::cs();
  else if (ConfigName == "ci")
    C = AnalysisConfig::ci();
  else {
    std::fprintf(stderr, "error: unknown config '%s'\n",
                 ConfigName.c_str());
    return 2;
  }
  if (Budget)
    C.MaxCallGraphNodes = Budget;
  if (MaxLen)
    C.MaxFlowLength = MaxLen;
  C.NestedTaintDepth = NestedDepth;

  MethodId Root = synthesizeEntrypointDriver(P);
  TaintAnalysis TA(P, std::move(C));
  AnalysisResult R = TA.run({Root});

  if (!R.Completed) {
    std::fprintf(stderr,
                 "analysis did not complete (CS memory budget exceeded)\n");
    return 3;
  }
  if (Raw) {
    for (const Issue &I : R.Issues)
      std::printf("%s: %s -> %s (length %u)\n", rules::ruleName(I.Rule),
                  describeStmt(P, I.Source).c_str(),
                  describeStmt(P, I.Sink).c_str(), I.Length);
  } else {
    std::printf("%s",
                renderReports(P, generateReports(P, R.Issues)).c_str());
  }
  if (ShowStats) {
    std::fprintf(stderr,
                 "-- %zu raw flows, %.1f ms, %u call-graph nodes%s\n",
                 R.Issues.size(), R.Millis, R.CgNodesProcessed,
                 R.BudgetExhausted ? " (budget exhausted)" : "");
    std::fprintf(stderr, "%s", TA.solver().stats().toString().c_str());
  }
  return R.Issues.empty() ? 0 : 4;
}
