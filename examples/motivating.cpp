//===- examples/motivating.cpp - The paper's Figure 1 program ------------===//
//
// The motivating example of TAJ (PLDI'09, Figure 1): tainted servlet
// parameters flow through a HashMap, reflective method invocation, and a
// wrapper object's internal state. Of three println calls only the first
// is vulnerable; this example runs all three algorithm families and shows
// which ones can tell.
//
// Run: build/examples/motivating
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "report/ReportGenerator.h"

#include <cstdio>

using namespace taj;

static const char *Fig1 = R"(
class Internal extends Object {
  field s: String;
  method init(this: Internal, s: String): void { this.s = s; }
  method toString(this: Internal): String { r = this.s; return r; }
}
class Motivating extends Object {
  method doGet(this: Motivating, req: Request, resp: Response): void [entry] {
    t1 = req.getParameter("fName");          // tainted
    t2 = req.getParameter("lName");          // tainted
    w = resp.getWriter();
    k = Class.forName("Motivating");         // reflection (line 18)
    idm = k.getMethod("id");                 // (lines 19-26)
    m = new HashMap;
    m.put("fName", t1);
    m.put("lName", t2);
    d = "2009-06-15";
    m.put("date", d);
    a1 = new Object[];
    v1 = m.get("fName");
    a1[] = v1;
    s1 = idm.invoke(this, a1);               // tainted argument
    a2 = new Object[];
    v2 = m.get("lName");
    e2 = Encoder.encode(v2);                 // sanitized (URLEncoder.encode)
    a2[] = e2;
    s2 = idm.invoke(this, a2);
    a3 = new Object[];
    v3 = m.get("date");
    a3[] = v3;
    s3 = idm.invoke(this, a3);               // never tainted
    i1 = new Internal(s1);
    i2 = new Internal(s2);
    i3 = new Internal(s3);
    w.println(i1);                           // BAD
    w.println(i2);                           // OK
    w.println(i3);                           // OK
  }
  method id(this: Motivating, s: String): String { return s; }
}
)";

int main() {
  std::printf("TAJ motivating example (Figure 1): one of three println "
              "calls is vulnerable.\n\n");
  for (const char *Cfg : {"hybrid", "cs", "ci"}) {
    Program P;
    installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    if (!parseTaj(P, Fig1, &Errors)) {
      std::fprintf(stderr, "parse error: %s\n", Errors.front().c_str());
      return 1;
    }
    MethodId Root = synthesizeEntrypointDriver(P);
    AnalysisConfig C = Cfg == std::string("hybrid")
                           ? AnalysisConfig::hybridUnbounded()
                       : Cfg == std::string("cs") ? AnalysisConfig::cs()
                                                  : AnalysisConfig::ci();
    TaintAnalysis TA(P, std::move(C));
    AnalysisResult R = TA.run({Root});
    int Xss = 0;
    for (const Issue &I : R.Issues)
      Xss += (I.Rule & rules::XSS) != 0;
    std::printf("%-8s: %d XSS flow(s) reported%s\n", Cfg, Xss,
                Xss == 1 ? "  <- exactly the BAD call" : "");
    for (const Issue &I : R.Issues)
      if (I.Rule & rules::XSS)
        std::printf("          %s -> %s\n",
                    describeStmt(P, I.Source).c_str(),
                    describeStmt(P, I.Sink).c_str());
  }
  std::printf("\nThe hybrid algorithm tracks the tainted value through the"
              " constant-key map,\nthe reflective invocation and the"
              " wrapper's internal state, while still\ndistinguishing the"
              " sanitized and untainted siblings.\n");
  return 0;
}
