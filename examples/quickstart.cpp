//===- examples/quickstart.cpp - Minimal end-to-end TAJ usage ------------===//
//
// Builds a tiny web application from .taj source text, runs the default
// (hybrid, unbounded) analysis, and prints the LCP-grouped report — the
// five-minute tour of the public API.
//
// Run: build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "report/ReportGenerator.h"

#include <cstdio>

using namespace taj;

static const char *AppSource = R"(
// A servlet with one vulnerable and one sanitized flow.
class Greeter extends Servlet {
  method doGet(this: Greeter, req: Request, resp: Response): void [entry] {
    name = req.getParameter("name");
    w = resp.getWriter();
    w.println(name);                 // XSS: unsanitized echo

    safe = Encoder.encodeHtml(name);
    w.println(safe);                 // fine: endorsed for XSS
  }
}
)";

int main() {
  // 1. A Program starts from the built-in model library (string carriers,
  //    servlet API, sinks, sanitizers, collections, reflection, ...).
  Program P;
  installBuiltinLibrary(P);

  // 2. Add application code — parsed from text here; the Builder API works
  //    just as well.
  std::vector<std::string> Errors;
  if (!parseTaj(P, AppSource, &Errors)) {
    std::fprintf(stderr, "parse error: %s\n", Errors.front().c_str());
    return 1;
  }

  // 3. Synthesize the analysis root that drives every [entry] method.
  MethodId Root = synthesizeEntrypointDriver(P);

  // 4. Run the two-phase analysis: pointer analysis + hybrid thin slicing.
  TaintAnalysis TA(P, AnalysisConfig::hybridUnbounded());
  AnalysisResult R = TA.run({Root});

  // 5. Consume the results.
  std::printf("analysis %s in %.1f ms; %zu raw flows\n",
              R.Completed ? "completed" : "failed", R.Millis,
              R.Issues.size());
  for (const Issue &I : R.Issues)
    std::printf("  %-12s %s -> %s (flow length %u)\n",
                rules::ruleName(I.Rule), describeStmt(P, I.Source).c_str(),
                describeStmt(P, I.Sink).c_str(), I.Length);

  std::printf("\nLCP-grouped report:\n%s",
              renderReports(P, generateReports(P, R.Issues)).c_str());
  return 0;
}
