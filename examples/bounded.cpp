//===- examples/bounded.cpp - Bounded analysis under a budget (§6) -------===//
//
// Runs one of the larger generated benchmark applications under shrinking
// call-graph node budgets, comparing priority-driven construction with
// chaotic iteration — the interactive version of the §6.1 experiment.
//
// Run: build/examples/bounded [appName]
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"

#include <cstdio>
#include <cstring>

using namespace taj;

int main(int Argc, char **Argv) {
  const char *Want = Argc > 1 ? Argv[1] : "VQWiki";
  for (const AppSpec &S : benchmarkSuite()) {
    if (S.Name != Want)
      continue;
    std::printf("Bounded analysis of %s (%u planted real flows)\n\n",
                S.Name.c_str(), generateApp(S).Truth.numReal());
    std::printf("%-8s | %-28s | %-28s\n", "budget",
                "priority-driven (TP, issues, ms)",
                "chaotic (TP, issues, ms)");
    for (uint32_t Budget : {50u, 100u, 200u, 400u, 0u}) {
      char Cells[2][40];
      for (int Mode = 0; Mode < 2; ++Mode) {
        GeneratedApp App = generateApp(S);
        AnalysisConfig C = AnalysisConfig::hybridUnbounded();
        C.MaxCallGraphNodes = Budget;
        C.Prioritized = Mode == 0;
        TaintAnalysis TA(*App.P, std::move(C));
        AnalysisResult R = TA.run({App.Root});
        Classification Cl = classify(*App.P, App.Truth, R.Issues);
        std::snprintf(Cells[Mode], sizeof(Cells[Mode]), "%u TP, %u, %.0fms",
                      Cl.RealFound, distinctIssueCount(R.Issues), R.Millis);
      }
      if (Budget)
        std::printf("%-8u | %-28s | %-28s\n", Budget, Cells[0], Cells[1]);
      else
        std::printf("%-8s | %-28s | %-28s\n", "inf", Cells[0], Cells[1]);
    }
    std::printf("\nThe locality-of-taint priority finds most real flows "
                "even when the budget covers a\nfraction of the program; "
                "chaotic iteration wastes the budget on benign code.\n");
    return 0;
  }
  std::fprintf(stderr, "unknown app '%s'\n", Want);
  return 1;
}
