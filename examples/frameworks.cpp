//===- examples/frameworks.cpp - Struts and EJB modeling (§4.2.2) --------===//
//
// Demonstrates the Web-framework models: Struts Action entrypoints with
// tainted ActionForm synthesis driven by a descriptor, and EJB remote
// calls bypassing the container via deployment-descriptor bindings.
//
// Run: build/examples/frameworks
//
//===----------------------------------------------------------------------===//

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Ejb.h"
#include "model/Entrypoints.h"
#include "model/Struts.h"
#include "report/ReportGenerator.h"

#include <cstdio>

using namespace taj;

static const char *StrutsApp = R"(
// The framework populates LoginForm's fields from the request; the action
// forwards the user name to the response unsanitized.
class LoginForm extends ActionForm {
  field user: String;
  field password: String;
}
class LoginAction extends Action {
  method execute(this: LoginAction, form: ActionForm): void {
    resp = new Response;
    w = resp.getWriter();
    f = form.user;
    w.println(f);
  }
}
)";

static const char *EjbApp = R"(
// EB2-style remote bean: the caller looks the home up via JNDI and calls
// m2 remotely; the container plumbing is bypassed by the descriptor model.
class EB2Home extends EJBHome {}
class EB2Bean extends Object {
  method m2(this: EB2Bean, data: String): void {
    db = new Database;
    q = db.executeQuery(data);
  }
}
class Caller extends Servlet {
  method doGet(this: Caller, req: Request, resp: Response): void [entry] {
    t = req.getParameter("q");
    ctx = new Context;
    objRef = ctx.lookup("java:comp/env/ejb/EB2");
    eb2Home = Context.narrow(objRef);
    eb2Obj = eb2Home.create();
    eb2Obj.m2(t);
  }
}
)";

int main() {
  { // --- Struts ---
    Program P;
    BuiltinLibrary Lib = installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    if (!parseTaj(P, StrutsApp, &Errors)) {
      std::fprintf(stderr, "parse error: %s\n", Errors.front().c_str());
      return 1;
    }
    // struts-config.xml equivalent: one action mapping.
    applyStrutsModel(P, Lib, {{"LoginAction"}});
    MethodId Root = synthesizeEntrypointDriver(P);
    TaintAnalysis TA(P, AnalysisConfig::hybridUnbounded());
    AnalysisResult R = TA.run({Root});
    std::printf("Struts model: %zu flow(s) from framework-populated form "
                "fields\n", R.Issues.size());
    std::printf("%s\n", renderReports(P, generateReports(P, R.Issues)).c_str());
  }
  { // --- EJB ---
    Program P;
    installBuiltinLibrary(P);
    std::vector<std::string> Errors;
    if (!parseTaj(P, EjbApp, &Errors)) {
      std::fprintf(stderr, "parse error: %s\n", Errors.front().c_str());
      return 1;
    }
    // Deployment descriptor: JNDI name -> home, home -> bean class.
    EjbDescriptor D = resolveEjbDescriptor(
        P, {{"java:comp/env/ejb/EB2", "EB2Home", "EB2Bean"}});
    AnalysisConfig C = AnalysisConfig::hybridUnbounded();
    C.JndiBindings = D.JndiBindings;
    C.EjbHomeToBean = D.HomeToBean;
    MethodId Root = synthesizeEntrypointDriver(P);
    TaintAnalysis TA(P, std::move(C));
    AnalysisResult R = TA.run({Root});
    std::printf("EJB model: %zu flow(s) through the remote m2 call\n",
                R.Issues.size());
    std::printf("%s", renderReports(P, generateReports(P, R.Issues)).c_str());
  }
  return 0;
}
