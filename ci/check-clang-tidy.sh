#!/usr/bin/env bash
# clang-tidy gate: runs the checks configured in .clang-tidy over every
# translation unit in src/ and tools/, normalizes the findings to
# "<repo-relative-file>:<check>" lines, and fails when any finding is not
# covered by the checked-in suppression baseline.
#
#   ci/check-clang-tidy.sh <build-dir>            # gate (CI)
#   ci/check-clang-tidy.sh <build-dir> --update   # regenerate the baseline
#
# The build dir must carry compile_commands.json (configure with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON). Baseline lines deliberately drop
# line/column so the gate is stable under unrelated edits to the same
# file; a fixed finding leaves a stale baseline line behind, which
# --update prunes.
set -euo pipefail

BUILD=${1:?usage: check-clang-tidy.sh <build-dir> [--update]}
MODE=${2:-gate}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
BASELINE="$ROOT/ci/clang-tidy-baseline.txt"
TIDY=${CLANG_TIDY:-clang-tidy}

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "error: $BUILD/compile_commands.json not found" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

mapfile -t FILES < <(find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort)

RAW=$(mktemp)
CURRENT=$(mktemp)
KNOWN=$(mktemp)
trap 'rm -f "$RAW" "$CURRENT" "$KNOWN"' EXIT

# clang-tidy exits non-zero when it reports warnings; the gate decision
# belongs to the baseline comparison below, not to the tool's exit code.
"$TIDY" -p "$BUILD" --quiet "${FILES[@]}" >"$RAW" 2>/dev/null || true

sed -E -n "s|^$ROOT/||; s|^([^ :]+):[0-9]+:[0-9]+: warning: .* \[([A-Za-z0-9.,-]+)\]\$|\1:\2|p" \
  "$RAW" | sort -u >"$CURRENT"

if [ "$MODE" = "--update" ]; then
  {
    echo "# clang-tidy suppression baseline: known findings, one"
    echo "# '<file>:<check>' per line. Regenerate after deliberate changes:"
    echo "#   ci/check-clang-tidy.sh <build-dir> --update"
    cat "$CURRENT"
  } >"$BASELINE"
  echo "baseline updated: $(wc -l <"$CURRENT") finding(s)"
  exit 0
fi

grep -v -e '^#' -e '^$' "$BASELINE" | sort -u >"$KNOWN"
NEW=$(comm -13 "$KNOWN" "$CURRENT" || true)
if [ -n "$NEW" ]; then
  echo "new clang-tidy findings (absent from ci/clang-tidy-baseline.txt):"
  echo "$NEW"
  echo
  echo "Details (grep the finding's file in the raw output below):"
  grep -F "warning:" "$RAW" | head -100
  exit 1
fi
echo "clang-tidy clean vs baseline ($(wc -l <"$CURRENT") known finding(s))."
