//===- model/BuiltinLibrary.cpp --------------------------------*- C++ -*-===//

#include "model/BuiltinLibrary.h"
#include "ir/Builder.h"

using namespace taj;

BuiltinLibrary taj::installBuiltinLibrary(Program &P) {
  Builder B(P);
  BuiltinLibrary L;
  const uint32_t Lib = classflags::Library;

  L.Object = B.makeClass("Object", InvalidId, Lib);
  Type TObj = Type::ref(L.Object);

  // --- String carriers (§4.2.1): contents treated as values, never heap.
  L.String =
      B.makeClass("String", L.Object, Lib | classflags::StringCarrier);
  Type TStr = Type::ref(L.String);
  L.StringBuilder = B.makeClass("StringBuilder", L.Object,
                                Lib | classflags::StringCarrier);
  Type TSb = Type::ref(L.StringBuilder);
  {
    B.makeIntrinsic(L.String, "concat", {TStr, TStr}, TStr,
                    Intrinsic::StringTransfer);
    B.makeIntrinsic(L.String, "trim", {TStr}, TStr,
                    Intrinsic::StringTransfer);
    B.makeIntrinsic(L.String, "toString", {TStr}, TStr, Intrinsic::Identity);
    B.makeIntrinsic(L.StringBuilder, "append", {TSb, TObj}, TSb,
                    Intrinsic::StringTransfer);
    B.makeIntrinsic(L.StringBuilder, "toString", {TSb}, TStr,
                    Intrinsic::StringTransfer);
  }

  // --- Exceptions (§4.1.2): getMessage leaks configuration details.
  L.Exception = B.makeClass("Exception", L.Object, Lib);
  {
    Type TExc = Type::ref(L.Exception);
    MethodId GM = B.makeIntrinsic(L.Exception, "getMessage", {TExc}, TStr,
                                  Intrinsic::GetMessage);
    P.Methods[GM].SourceRules = rules::LEAK;
    MethodId TS = B.makeIntrinsic(L.Exception, "toString", {TExc}, TStr,
                                  Intrinsic::GetMessage);
    P.Methods[TS].SourceRules = rules::LEAK;
  }

  // --- Servlet request/response.
  L.Servlet = B.makeClass("Servlet", L.Object, Lib);
  L.Request = B.makeClass("Request", L.Object, Lib);
  L.Response = B.makeClass("Response", L.Object, Lib);
  L.Writer = B.makeClass("Writer", L.Object, Lib);
  {
    Type TReq = Type::ref(L.Request);
    Type TResp = Type::ref(L.Response);
    Type TWr = Type::ref(L.Writer);
    L.GetParameter = B.makeIntrinsic(L.Request, "getParameter", {TReq, TStr},
                                     TStr, Intrinsic::SourceReturn);
    P.Methods[L.GetParameter].SourceRules = rules::All;
    MethodId GH = B.makeIntrinsic(L.Request, "getHeader", {TReq, TStr}, TStr,
                                  Intrinsic::SourceReturn);
    P.Methods[GH].SourceRules = rules::All;
    MethodId GC = B.makeIntrinsic(L.Request, "getCookie", {TReq, TStr}, TStr,
                                  Intrinsic::SourceReturn);
    P.Methods[GC].SourceRules = rules::All;
    // getWriter: bodiless native model returning a fresh Writer; a library
    // factory method (1-call-string context, §3.1).
    L.GetWriter = B.makeIntrinsic(L.Response, "getWriter", {TResp}, TWr,
                                  Intrinsic::None);
    P.Methods[L.GetWriter].IsFactory = true;

    L.Println = B.makeIntrinsic(L.Writer, "println", {TWr, TObj},
                                Type::voidTy(), Intrinsic::SinkConsume);
    P.Methods[L.Println].SinkRules = rules::XSS | rules::LEAK;
    P.Methods[L.Println].SinkParamMask = 1u << 1;
    MethodId Pr = B.makeIntrinsic(L.Writer, "print", {TWr, TObj},
                                  Type::voidTy(), Intrinsic::SinkConsume);
    P.Methods[Pr].SinkRules = rules::XSS | rules::LEAK;
    P.Methods[Pr].SinkParamMask = 1u << 1;
  }

  // --- Injection / file-execution sinks.
  L.Database = B.makeClass("Database", L.Object, Lib);
  L.FileSystem = B.makeClass("FileSystem", L.Object, Lib);
  L.Runtime = B.makeClass("Runtime", L.Object, Lib);
  {
    Type TDb = Type::ref(L.Database);
    Type TFs = Type::ref(L.FileSystem);
    Type TRt = Type::ref(L.Runtime);
    L.ExecuteQuery =
        B.makeIntrinsic(L.Database, "executeQuery", {TDb, TStr}, TObj,
                        Intrinsic::SinkConsume);
    P.Methods[L.ExecuteQuery].SinkRules = rules::SQLI;
    P.Methods[L.ExecuteQuery].SinkParamMask = 1u << 1;
    MethodId Ex = B.makeIntrinsic(L.Database, "execute", {TDb, TStr},
                                  Type::voidTy(), Intrinsic::SinkConsume);
    P.Methods[Ex].SinkRules = rules::SQLI;
    P.Methods[Ex].SinkParamMask = 1u << 1;
    MethodId Op = B.makeIntrinsic(L.FileSystem, "open", {TFs, TStr}, TObj,
                                  Intrinsic::SinkConsume);
    P.Methods[Op].SinkRules = rules::FILE;
    P.Methods[Op].SinkParamMask = 1u << 1;
    MethodId Rx = B.makeIntrinsic(L.Runtime, "exec", {TRt, TStr},
                                  Type::voidTy(), Intrinsic::SinkConsume);
    P.Methods[Rx].SinkRules = rules::FILE;
    P.Methods[Rx].SinkParamMask = 1u << 1;
  }

  // --- Sanitizing encoders (static, URLEncoder-style).
  L.Encoder = B.makeClass("Encoder", L.Object, Lib);
  {
    auto MkSan = [&](const char *Name, RuleMask R) {
      MethodId M = B.makeIntrinsic(L.Encoder, Name, {TStr}, TStr,
                                   Intrinsic::Sanitize, /*IsStatic=*/true);
      P.Methods[M].SanitizerRules = R;
    };
    MkSan("encodeHtml", rules::XSS);
    MkSan("encodeSql", rules::SQLI);
    MkSan("encodePath", rules::FILE);
    MkSan("encode", rules::All); // URLEncoder.encode of the running example
  }

  // --- Dictionaries with constant-key tracking (§4.2.1) and collections.
  L.HashMap = B.makeClass("HashMap", L.Object,
                          Lib | classflags::Collection | classflags::Map);
  L.Session = B.makeClass("Session", L.Object,
                          Lib | classflags::Collection | classflags::Map);
  L.List =
      B.makeClass("List", L.Object, Lib | classflags::Collection);
  {
    Type TMap = Type::ref(L.HashMap);
    Type TSes = Type::ref(L.Session);
    Type TList = Type::ref(L.List);
    B.makeIntrinsic(L.HashMap, "put", {TMap, TStr, TObj}, Type::voidTy(),
                    Intrinsic::MapPut);
    B.makeIntrinsic(L.HashMap, "get", {TMap, TStr}, TObj, Intrinsic::MapGet);
    B.makeIntrinsic(L.Session, "setAttribute", {TSes, TStr, TObj},
                    Type::voidTy(), Intrinsic::MapPut);
    B.makeIntrinsic(L.Session, "getAttribute", {TSes, TStr}, TObj,
                    Intrinsic::MapGet);
    B.makeIntrinsic(L.List, "add", {TList, TObj}, Type::voidTy(),
                    Intrinsic::CollAdd);
    B.makeIntrinsic(L.List, "get", {TList, Type::intTy()}, TObj,
                    Intrinsic::CollGet);
  }

  // --- Reflection (§4.2.3).
  L.ClassCls = B.makeClass("Class", L.Object, Lib);
  L.MethodCls = B.makeClass("Method", L.Object, Lib);
  {
    Type TCls = Type::ref(L.ClassCls);
    Type TMeth = Type::ref(L.MethodCls);
    Type TObjArr = Type::array(L.Object);
    B.makeIntrinsic(L.ClassCls, "forName", {TStr}, TCls,
                    Intrinsic::ClassForName, /*IsStatic=*/true);
    B.makeIntrinsic(L.ClassCls, "getMethod", {TCls, TStr}, TMeth,
                    Intrinsic::GetMethod);
    B.makeIntrinsic(L.MethodCls, "invoke", {TMeth, TObj, TObjArr}, TObj,
                    Intrinsic::MethodInvoke);
  }

  // --- Threads (native start(), §4.2.3).
  L.Thread = B.makeClass("Thread", L.Object, Lib | classflags::Thread);
  {
    Type TThr = Type::ref(L.Thread);
    B.makeIntrinsic(L.Thread, "start", {TThr}, Type::voidTy(),
                    Intrinsic::ThreadStart);
    // Base run(): empty body; subclasses override.
    MethodBuilder MB = B.startMethod(L.Thread, "run", {TThr}, Type::voidTy());
    MB.emitRet();
    MB.finish();
  }

  // --- JNDI / EJB (§4.2.2).
  L.Context = B.makeClass("Context", L.Object, Lib);
  L.EjbHome = B.makeClass("EJBHome", L.Object, Lib);
  {
    Type TCtx = Type::ref(L.Context);
    Type THome = Type::ref(L.EjbHome);
    B.makeIntrinsic(L.Context, "lookup", {TCtx, TStr}, TObj,
                    Intrinsic::JndiLookup);
    B.makeIntrinsic(L.Context, "narrow", {TObj}, TObj, Intrinsic::Identity,
                    /*IsStatic=*/true);
    B.makeIntrinsic(L.EjbHome, "create", {THome}, TObj,
                    Intrinsic::HomeCreate);
  }

  // --- Struts base classes (§4.2.2).
  L.ActionForm =
      B.makeClass("ActionForm", L.Object, Lib | classflags::ActionForm);
  L.Action = B.makeClass("Action", L.Object, Lib);
  {
    // Synthetic source for framework-populated form fields.
    L.StrutsTaintedString =
        B.makeIntrinsic(L.Action, "frameworkInput", {}, TStr,
                        Intrinsic::SourceReturn, /*IsStatic=*/true);
    P.Methods[L.StrutsTaintedString].SourceRules = rules::All;
    // Base execute(): empty; applications override.
    MethodBuilder MB =
        B.startMethod(L.Action, "execute",
                      {Type::ref(L.Action), Type::ref(L.ActionForm)},
                      Type::voidTy());
    MB.emitRet();
    MB.finish();
  }

  return L;
}
