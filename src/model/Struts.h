//===- model/Struts.h - Apache Struts framework model ----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative approximation of the Struts MVC dispatch (TAJ §4.2.2):
/// Action classes named in the XML deployment descriptor are treated as
/// entrypoints; for every compatible concrete ActionForm subtype a
/// synthetic constructor assigns tainted values to all its fields
/// (recursively for compound fields) before execute() is invoked.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_MODEL_STRUTS_H
#define TAJ_MODEL_STRUTS_H

#include "cha/ClassHierarchy.h"
#include "model/BuiltinLibrary.h"

#include <string>
#include <vector>

namespace taj {

/// One <action> mapping of the descriptor.
struct StrutsActionMapping {
  std::string ActionClass;
};

/// Synthesizes a driver method per mapped Action: it instantiates each
/// concrete ActionForm subtype, fills its String fields with tainted
/// framework input (recursing into compound fields up to \p FieldDepth),
/// and calls execute. Drivers are flagged IsEntry so the entrypoint
/// synthesizer picks them up. Returns the driver methods.
std::vector<MethodId>
applyStrutsModel(Program &P, const BuiltinLibrary &Lib,
                 const std::vector<StrutsActionMapping> &Mappings,
                 uint32_t FieldDepth = 2);

} // namespace taj

#endif // TAJ_MODEL_STRUTS_H
