//===- model/BuiltinLibrary.h - Modeled JDK / Java EE classes --*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic model library (TAJ §4): string carriers, servlet
/// request/response, writers and database/file/exec sinks, sanitizing
/// encoders, constant-key dictionaries, collections, reflection, threads,
/// exceptions, JNDI/EJB stubs and the Struts base classes. Install it into
/// a fresh Program before adding application classes; the returned handle
/// carries the class/method ids the framework models and tests need.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_MODEL_BUILTINLIBRARY_H
#define TAJ_MODEL_BUILTINLIBRARY_H

#include "ir/Program.h"

namespace taj {

/// Handles to the installed model classes.
struct BuiltinLibrary {
  ClassId Object = InvalidId;
  ClassId String = InvalidId;
  ClassId StringBuilder = InvalidId;
  ClassId Exception = InvalidId;
  ClassId Request = InvalidId;
  ClassId Response = InvalidId;
  ClassId Writer = InvalidId;
  ClassId Database = InvalidId;
  ClassId FileSystem = InvalidId;
  ClassId Runtime = InvalidId;
  ClassId Encoder = InvalidId;
  ClassId HashMap = InvalidId;
  ClassId Session = InvalidId;
  ClassId List = InvalidId;
  ClassId ClassCls = InvalidId;  ///< java.lang.Class analogue
  ClassId MethodCls = InvalidId; ///< java.lang.reflect.Method analogue
  ClassId Thread = InvalidId;
  ClassId Context = InvalidId;   ///< JNDI InitialContext analogue
  ClassId EjbHome = InvalidId;
  ClassId Action = InvalidId;     ///< Struts Action base
  ClassId ActionForm = InvalidId; ///< Struts ActionForm base
  ClassId Servlet = InvalidId;

  MethodId GetParameter = InvalidId;
  MethodId Println = InvalidId;
  MethodId ExecuteQuery = InvalidId;
  MethodId GetWriter = InvalidId;
  MethodId StrutsTaintedString = InvalidId; ///< synthetic Struts source
};

/// Installs the model library into \p P (which must not already define
/// these classes) and returns the handles.
BuiltinLibrary installBuiltinLibrary(Program &P);

} // namespace taj

#endif // TAJ_MODEL_BUILTINLIBRARY_H
