//===- model/Entrypoints.h - Synthetic analysis roots ----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entrypoint synthesis: TAJ begins the analysis at Web entrypoints
/// (servlet doGet, Struts Action.execute, thread run methods) and must
/// "synthesize an appropriate program state" for them (§4.2.2). The
/// synthesizer builds one static root method that instantiates receivers
/// and arguments for every [entry]-flagged method and invokes them.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_MODEL_ENTRYPOINTS_H
#define TAJ_MODEL_ENTRYPOINTS_H

#include "ir/Program.h"

namespace taj {

/// Creates class "SyntheticRoot" with a static "main" that drives every
/// method flagged IsEntry: the receiver and each reference parameter get a
/// fresh allocation (compound parameters are instantiated shallowly; the
/// Struts model handles tainted-field population separately). Returns the
/// root method to pass to TaintAnalysis::run.
MethodId synthesizeEntrypointDriver(Program &P);

} // namespace taj

#endif // TAJ_MODEL_ENTRYPOINTS_H
