//===- model/Struts.cpp ----------------------------------------*- C++ -*-===//

#include "model/Struts.h"
#include "ir/Builder.h"

using namespace taj;

namespace {

/// Emits code filling every field of \p Obj (of class \p C) with tainted
/// strings / recursively initialized sub-objects.
void fillTainted(Program &P, const BuiltinLibrary &Lib, MethodBuilder &MB,
                 ValueId Obj, ClassId C, uint32_t Depth) {
  for (ClassId A = C; A != InvalidId; A = P.Classes[A].Super) {
    // Iterate by index: field creation below must not invalidate this.
    std::vector<FieldId> Fields = P.Classes[A].Fields;
    for (FieldId F : Fields) {
      const Field &FD = P.Fields[F];
      if (FD.IsStatic || !FD.Ty.isRefLike())
        continue;
      if (FD.Ty.Cls == Lib.String ||
          P.Classes[FD.Ty.Cls].is(classflags::StringCarrier)) {
        ValueId Tainted =
            MB.callStatic(Lib.Action, "frameworkInput", {});
        MB.emitStore(Obj, F, Tainted);
        continue;
      }
      if (Depth == 0 || FD.Ty.Kind != TypeKind::Ref)
        continue;
      ValueId Sub = MB.emitNew(FD.Ty.Cls);
      MB.emitStore(Obj, F, Sub);
      fillTainted(P, Lib, MB, Sub, FD.Ty.Cls, Depth - 1);
    }
  }
}

} // namespace

std::vector<MethodId>
taj::applyStrutsModel(Program &P, const BuiltinLibrary &Lib,
                      const std::vector<StrutsActionMapping> &Mappings,
                      uint32_t FieldDepth) {
  Builder B(P);
  ClassHierarchy CHA(P);
  std::vector<MethodId> Drivers;
  ClassId DriverCls = P.findClass("StrutsDispatcher");
  if (DriverCls == InvalidId)
    DriverCls = B.makeClass("StrutsDispatcher", Lib.Object);

  // Concrete ActionForm subtypes (the cast-constraint approximation:
  // every compatible subtype may arrive).
  std::vector<ClassId> Forms;
  for (ClassId F : CHA.subtypes(Lib.ActionForm))
    if (F != Lib.ActionForm)
      Forms.push_back(F);

  int Seq = 0;
  for (const StrutsActionMapping &Map : Mappings) {
    ClassId AC = P.findClass(Map.ActionClass);
    if (AC == InvalidId || !CHA.isSubclassOf(AC, Lib.Action))
      continue;
    MethodBuilder MB = B.startMethod(
        DriverCls, "dispatch" + std::to_string(Seq++), {}, Type::voidTy(),
        /*IsStatic=*/true);
    ValueId Act = MB.emitNew(AC);
    for (ClassId FC : Forms) {
      ValueId Form = MB.emitNew(FC);
      fillTainted(P, Lib, MB, Form, FC, FieldDepth);
      MB.callVirtual("execute", {Act, Form});
    }
    P.Methods[MB.id()].IsEntry = true;
    MB.finish();
    Drivers.push_back(MB.id());
  }
  return Drivers;
}
