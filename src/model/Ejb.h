//===- model/Ejb.h - EJB deployment-descriptor model -----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EJB remote-call bypass (TAJ §4.2.2): instead of analyzing the container
/// RMI-IIOP machinery, deployment-descriptor bindings resolve
/// Context.lookup names to home classes and home create() calls to bean
/// implementation classes, so remote calls dispatch directly into bean
/// code.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_MODEL_EJB_H
#define TAJ_MODEL_EJB_H

#include "ir/Program.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace taj {

/// One EJB binding from the deployment descriptor.
struct EjbBinding {
  std::string JndiName;  ///< e.g. "java:comp/env/ejb/EB2"
  std::string HomeClass; ///< remote home interface class
  std::string BeanClass; ///< bean implementation class
};

/// Resolved descriptor maps, consumed by PointsToOptions.
struct EjbDescriptor {
  std::unordered_map<std::string, ClassId> JndiBindings;
  std::unordered_map<ClassId, ClassId> HomeToBean;
};

/// Resolves descriptor entries against \p P. Unknown classes are skipped.
EjbDescriptor resolveEjbDescriptor(const Program &P,
                                   const std::vector<EjbBinding> &Bindings);

} // namespace taj

#endif // TAJ_MODEL_EJB_H
