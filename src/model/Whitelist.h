//===- model/Whitelist.h - Benign-library whitelists -----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code-reduction whitelists (TAJ §4.2.1): benign library classes,
/// packages and subpackages can be excluded wholesale. Classes are matched
/// by name prefix, mirroring package-based whitelisting.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_MODEL_WHITELIST_H
#define TAJ_MODEL_WHITELIST_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace taj {

/// Flags every class whose name starts with one of \p Prefixes as
/// whitelisted (excludable). Returns the number of classes flagged.
size_t applyWhitelist(Program &P, const std::vector<std::string> &Prefixes);

} // namespace taj

#endif // TAJ_MODEL_WHITELIST_H
