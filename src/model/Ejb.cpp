//===- model/Ejb.cpp -------------------------------------------*- C++ -*-===//

#include "model/Ejb.h"

using namespace taj;

EjbDescriptor
taj::resolveEjbDescriptor(const Program &P,
                          const std::vector<EjbBinding> &Bindings) {
  EjbDescriptor D;
  for (const EjbBinding &B : Bindings) {
    ClassId Home = P.findClass(B.HomeClass);
    ClassId Bean = P.findClass(B.BeanClass);
    if (Home == InvalidId || Bean == InvalidId)
      continue;
    D.JndiBindings[B.JndiName] = Home;
    D.HomeToBean[Home] = Bean;
  }
  return D;
}
