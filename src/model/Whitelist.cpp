//===- model/Whitelist.cpp -------------------------------------*- C++ -*-===//

#include "model/Whitelist.h"

using namespace taj;

size_t taj::applyWhitelist(Program &P,
                           const std::vector<std::string> &Prefixes) {
  size_t Count = 0;
  for (Class &C : P.Classes) {
    std::string_view Name = P.Pool.str(C.Name);
    for (const std::string &Pref : Prefixes) {
      if (Name.substr(0, Pref.size()) == Pref) {
        if (!C.is(classflags::Whitelisted)) {
          C.Flags |= classflags::Whitelisted;
          ++Count;
        }
        break;
      }
    }
  }
  return Count;
}
