//===- model/Entrypoints.cpp -----------------------------------*- C++ -*-===//

#include "model/Entrypoints.h"
#include "ir/Builder.h"

using namespace taj;

MethodId taj::synthesizeEntrypointDriver(Program &P) {
  Builder B(P);
  ClassId Root = P.findClass("SyntheticRoot");
  if (Root == InvalidId)
    Root = B.makeClass("SyntheticRoot", P.findClass("Object"));

  // Collect entries before creating the driver (which must not be one).
  std::vector<MethodId> Entries;
  for (MethodId M = 0; M < P.Methods.size(); ++M)
    if (P.Methods[M].IsEntry && P.Methods[M].hasBody())
      Entries.push_back(M);

  MethodBuilder MB = B.startMethod(Root, "main", {}, Type::voidTy(),
                                   /*IsStatic=*/true);
  for (MethodId E : Entries) {
    const Method &M = P.Methods[E];
    std::vector<ValueId> Args;
    for (uint32_t K = 0; K < M.NumParams; ++K) {
      const Type &T = M.ParamTypes[K];
      if (T.Kind == TypeKind::Ref)
        Args.push_back(MB.emitNew(T.Cls));
      else if (T.Kind == TypeKind::Array)
        Args.push_back(MB.emitNewArray(T.Cls));
      else
        Args.push_back(MB.constInt(0));
    }
    if (M.IsStatic) {
      Instruction I;
      I.Op = Opcode::Call;
      I.CKind = CallKind::Static;
      I.Cls = M.Owner;
      I.CalleeName = M.Name;
      I.Args = Args;
      // Emit through the builder's block directly.
      P.Methods[MB.id()].Blocks[MB.curBlock()].Insts.push_back(std::move(I));
    } else {
      MB.callVirtualV(std::string(P.Pool.str(M.Name)), Args);
    }
  }
  MB.emitRet();
  MB.finish();
  return MB.id();
}
