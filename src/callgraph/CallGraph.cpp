//===- callgraph/CallGraph.cpp ---------------------------------*- C++ -*-===//

#include "callgraph/CallGraph.h"
#include "support/RunGuard.h"

#include <algorithm>

using namespace taj;

CGNodeId CallGraph::ensureNode(MethodId M, CtxId Ctx, bool &IsNew) {
  uint64_t Key = (static_cast<uint64_t>(M) << 32) | Ctx;
  auto It = NodeMap.find(Key);
  if (It != NodeMap.end()) {
    IsNew = false;
    return It->second;
  }
  IsNew = true;
  if (Guard)
    Guard->checkpoint(); // expansion work tick; the solver enforces stops
  CGNode N;
  N.M = M;
  N.Ctx = Ctx;
  Nodes.push_back(N);
  Out.emplace_back();
  In.emplace_back();
  CGNodeId Id = static_cast<CGNodeId>(Nodes.size() - 1);
  NodeMap.emplace(Key, Id);
  ByMethod[M].push_back(Id);
  return Id;
}

bool CallGraph::addEdge(CGNodeId Caller, StmtId Site, CGNodeId Callee) {
  uint64_t Key = (static_cast<uint64_t>(Caller) * 0x9e3779b97f4a7c15ull) ^
                 (static_cast<uint64_t>(Site) * 0xc2b2ae3d27d4eb4full) ^
                 Callee;
  if (!EdgeSet.insert(Key).second)
    return false;
  if (Guard)
    Guard->checkpoint();
  Out[Caller].push_back({Site, Callee});
  In[Callee].push_back(Caller);
  MethodId CalleeM = Nodes[Callee].M;
  auto &Merged = SiteCallees[Site];
  if (std::find(Merged.begin(), Merged.end(), CalleeM) == Merged.end())
    Merged.push_back(CalleeM);
  return true;
}

const std::vector<CGNodeId> &CallGraph::nodesOf(MethodId M) const {
  static const std::vector<CGNodeId> Empty;
  auto It = ByMethod.find(M);
  return It == ByMethod.end() ? Empty : It->second;
}

const std::vector<MethodId> &CallGraph::calleesAt(StmtId Site) const {
  static const std::vector<MethodId> Empty;
  auto It = SiteCallees.find(Site);
  return It == SiteCallees.end() ? Empty : It->second;
}

std::string CallGraph::nodeName(const Program &P, CGNodeId N) const {
  return P.methodName(Nodes[N].M) + "@" + std::to_string(Nodes[N].Ctx);
}

std::string CallGraph::toDot(const Program &P) const {
  std::string Out = "digraph callgraph {\n  node [shape=box];\n";
  for (CGNodeId N = 0; N < Nodes.size(); ++N) {
    Out += "  n" + std::to_string(N) + " [label=\"" + nodeName(P, N) +
           "\"";
    if (!Nodes[N].ConstraintsAdded)
      Out += ", style=dashed";
    Out += "];\n";
  }
  for (CGNodeId N = 0; N < Nodes.size(); ++N)
    for (const CGEdge &E : edges(N))
      Out += "  n" + std::to_string(N) + " -> n" +
             std::to_string(E.Callee) + " [label=\"" +
             std::to_string(E.Site) + "\"];\n";
  Out += "}\n";
  return Out;
}
