//===- callgraph/CallGraph.h - Context-sensitive call graph ----*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-the-fly call graph built by the pointer analysis. A node is a
/// (method, context) pair ("a method in some calling context", TAJ §6.1);
/// edges carry the call statement. The graph also maintains the
/// context-merged projection (call statement -> callee methods) consumed by
/// the SDG builder.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_CALLGRAPH_CALLGRAPH_H
#define TAJ_CALLGRAPH_CALLGRAPH_H

#include "ir/Program.h"
#include "pointsto/Keys.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace taj {

class RunGuard;

namespace persist {
struct Access;
}

/// One call-graph node.
struct CGNode {
  MethodId M = InvalidId;
  CtxId Ctx = EverywhereCtx;
  /// True once the solver has added this node's constraints.
  bool ConstraintsAdded = false;
};

/// One directed call edge.
struct CGEdge {
  StmtId Site = 0;
  CGNodeId Callee = 0;
};

/// The call graph under construction.
class CallGraph {
public:
  /// Attributes expansion work (node/edge creation) to \p G; not owned.
  /// The graph only ticks the guard — enforcement of a stop stays with the
  /// solver loop driving the expansion.
  void setGuard(RunGuard *G) { Guard = G; }

  /// Interns node (\p M, \p Ctx); \p IsNew reports whether it was created.
  CGNodeId ensureNode(MethodId M, CtxId Ctx, bool &IsNew);

  CGNode &node(CGNodeId N) { return Nodes[N]; }
  const CGNode &node(CGNodeId N) const { return Nodes[N]; }
  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }

  /// Adds edge \p Caller --site--> \p Callee; returns false if it existed.
  bool addEdge(CGNodeId Caller, StmtId Site, CGNodeId Callee);

  const std::vector<CGEdge> &edges(CGNodeId N) const { return Out[N]; }
  const std::vector<CGNodeId> &preds(CGNodeId N) const { return In[N]; }

  /// All nodes of method \p M (one per context).
  const std::vector<CGNodeId> &nodesOf(MethodId M) const;

  /// Context-merged callee methods of call statement \p Site.
  const std::vector<MethodId> &calleesAt(StmtId Site) const;

  /// All call statements that have at least one callee.
  const std::unordered_map<StmtId, std::vector<MethodId>> &siteTargets() const {
    return SiteCallees;
  }

  /// Number of nodes whose constraints have been added (the paper's |N|
  /// for budget purposes).
  uint32_t numProcessed() const { return Processed; }
  void markProcessed(CGNodeId N) {
    if (!Nodes[N].ConstraintsAdded) {
      Nodes[N].ConstraintsAdded = true;
      ++Processed;
    }
  }

  /// Renders "Class.method@ctx" for debugging.
  std::string nodeName(const Program &P, CGNodeId N) const;

  /// Renders the whole graph in Graphviz dot syntax (processed nodes
  /// solid, pending nodes dashed).
  std::string toDot(const Program &P) const;

private:
  /// Test-only corruption hooks (tests/verify_test.cpp): the self-
  /// verification tests must be able to plant phantom edges in place.
  friend class CallGraphTestPeer;
  /// Serialization (persist/Serialize.cpp) snapshots and restores the
  /// post-solve state, including the per-site callee insertion order.
  friend struct persist::Access;

  std::vector<CGNode> Nodes;
  std::vector<std::vector<CGEdge>> Out;
  std::vector<std::vector<CGNodeId>> In;
  std::unordered_map<uint64_t, CGNodeId> NodeMap;
  std::unordered_set<uint64_t> EdgeSet; // caller ^ site ^ callee hash
  std::unordered_map<MethodId, std::vector<CGNodeId>> ByMethod;
  std::unordered_map<StmtId, std::vector<MethodId>> SiteCallees;
  uint32_t Processed = 0;
  RunGuard *Guard = nullptr;
};

} // namespace taj

#endif // TAJ_CALLGRAPH_CALLGRAPH_H
