//===- rhs/Tabulation.cpp --------------------------------------*- C++ -*-===//

#include "rhs/Tabulation.h"
#include "support/RunGuard.h"

#include <cassert>

using namespace taj;

Tabulation::Tabulation(const SDG &G, RuleMask Rule, RunGuard *Guard)
    : G(G), Rule(Rule), Guard(Guard) {}

bool Tabulation::isBarrier(SDGNodeId N) const {
  const SDGNode &Node = G.node(N);
  if (Node.Kind != SDGNodeKind::Stmt)
    return false;
  // Sanitizer returns and sink calls have no successors (§3.2).
  return (Node.SanitizeMask & Rule) != 0 || (Node.SinkMask & Rule) != 0;
}

const CallSiteInfo *Tabulation::siteOf(SDGNodeId N) const {
  const SDGNode &Node = G.node(N);
  switch (Node.Kind) {
  case SDGNodeKind::Stmt:
    return G.callSite(N);
  case SDGNodeKind::ActualIn:
  case SDGNodeKind::ChanActualIn:
    return Node.Aux == InvalidId ? nullptr : G.callSite(Node.Aux);
  default:
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Summary engine
//===----------------------------------------------------------------------===//

void Tabulation::seedSummary(SDGNodeId FIn) {
  if (!SummarySeeded.insert(FIn).second)
    return;
  SummaryWork.emplace_back(FIn, FIn, 0);
}

void Tabulation::propagateSame(SDGNodeId FIn, SDGNodeId N, uint32_t D) {
  uint64_t Key = (static_cast<uint64_t>(FIn) << 32) | N;
  auto It = PathDist.find(Key);
  if (It != PathDist.end() && It->second <= D)
    return;
  PathDist[Key] = D;
  SummaryWork.emplace_back(FIn, N, D);
}

void Tabulation::recordSummaryOut(SDGNodeId FIn, SDGNodeId FOut, uint32_t D) {
  auto &Outs = SummaryOuts[FIn];
  for (auto &[O, DD] : Outs)
    if (O == FOut) {
      if (D < DD)
        DD = D;
      return;
    }
  Outs.emplace_back(FOut, D);
  // Re-propagate at every call site waiting on this summary.
  auto It = Subscribers.find(FIn);
  if (It == Subscribers.end())
    return;
  for (const Sub &S : It->second) {
    const CallSiteInfo *CS = siteOf(S.At);
    if (!CS)
      continue;
    SDGNodeId AOut = G.actualOutFor(*CS, FOut);
    if (AOut == InvalidId)
      continue;
    uint64_t Key = (static_cast<uint64_t>(S.Ctx) << 32) | S.At;
    auto DI = PathDist.find(Key);
    uint32_t Base = DI == PathDist.end() ? 0 : DI->second;
    propagateSame(S.Ctx, AOut, Base + D + 2);
  }
}

void Tabulation::drainSummaries() {
  while (!SummaryWork.empty()) {
    if (Guard && !Guard->checkpoint()) {
      // Cutoff: drop pending summary work; partially drained summaries
      // only shrink the slice (underapproximate), never grow it.
      SummaryWork.clear();
      return;
    }
    auto [FIn, N, D] = SummaryWork.front();
    SummaryWork.pop_front();
    ++PathEdgeCount;
    const SDGNode &Node = G.node(N);
    const SDGNode &FNode = G.node(FIn);

    // Reaching a formal-out of the same method completes a summary.
    if ((Node.Kind == SDGNodeKind::FormalOut ||
         Node.Kind == SDGNodeKind::ChanFormalOut) &&
        Node.Owner == FNode.Owner) {
      recordSummaryOut(FIn, N, D);
      continue;
    }
    if (isBarrier(N))
      continue;
    for (const SDGEdge &E : G.succs(N)) {
      switch (E.Kind) {
      case SDGEdgeKind::Flow:
        propagateSame(FIn, E.To, D + 1);
        break;
      case SDGEdgeKind::ParamIn: {
        // Step over the call via callee summaries.
        SDGNodeId CalleeFIn = E.To;
        seedSummary(CalleeFIn);
        Subscribers[CalleeFIn].push_back({FIn, N});
        auto SIt = SummaryOuts.find(CalleeFIn);
        if (SIt != SummaryOuts.end()) {
          const CallSiteInfo *CS = siteOf(N);
          if (CS)
            for (auto &[FOut, DD] : SIt->second) {
              SDGNodeId AOut = G.actualOutFor(*CS, FOut);
              if (AOut != InvalidId)
                propagateSame(FIn, AOut, D + DD + 2);
            }
        }
        break;
      }
      case SDGEdgeKind::ParamOut:
        break; // never exits the same level
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Two-phase slicing
//===----------------------------------------------------------------------===//

void Tabulation::forwardSlice(
    const std::vector<std::pair<SDGNodeId, uint32_t>> &Seeds,
    SliceResult &R) {
  // Phase 1: ascend (Flow + ParamOut + summaries). Collect newly reached
  // nodes for phase 2.
  std::vector<std::pair<SDGNodeId, uint32_t>> Phase1New;
  {
    std::deque<std::tuple<SDGNodeId, uint32_t, SDGNodeId>> Q;
    for (auto [S, D] : Seeds)
      Q.emplace_back(S, D, InvalidId);
    std::unordered_set<SDGNodeId> Local;
    while (!Q.empty()) {
      if (Guard && !Guard->checkpoint())
        break; // cutoff: keep what phase 1 reached so far
      auto [N, D, Par] = Q.front();
      Q.pop_front();
      if (!Local.insert(N).second)
        continue;
      ++PathEdgeCount;
      bool Fresh = !R.Dist.count(N);
      if (Fresh || R.Dist[N] > D) {
        R.Dist[N] = D;
        R.Parent[N] = Par;
      }
      if (Fresh)
        Phase1New.emplace_back(N, D);
      if (isBarrier(N))
        continue;
      for (const SDGEdge &E : G.succs(N)) {
        if (E.Kind == SDGEdgeKind::Flow || E.Kind == SDGEdgeKind::ParamOut)
          Q.emplace_back(E.To, D + 1, N);
        else if (E.Kind == SDGEdgeKind::ParamIn) {
          seedSummary(E.To);
          drainSummaries();
          auto SIt = SummaryOuts.find(E.To);
          if (SIt == SummaryOuts.end())
            continue;
          const CallSiteInfo *CS = siteOf(N);
          if (!CS)
            continue;
          for (auto &[FOut, DD] : SIt->second) {
            SDGNodeId AOut = G.actualOutFor(*CS, FOut);
            if (AOut != InvalidId)
              Q.emplace_back(AOut, D + DD + 2, N);
          }
        }
      }
    }
  }

  // Phase 2: descend (Flow + ParamIn + summaries) from everything phase 1
  // reached.
  {
    std::deque<std::tuple<SDGNodeId, uint32_t, SDGNodeId>> Q;
    for (auto [N, D] : Phase1New)
      Q.emplace_back(N, D, InvalidId);
    std::unordered_set<SDGNodeId> Local;
    while (!Q.empty()) {
      if (Guard && !Guard->checkpoint())
        break; // cutoff: return the partial slice
      auto [N, D, Par] = Q.front();
      Q.pop_front();
      if (!Local.insert(N).second)
        continue;
      ++PathEdgeCount;
      if (!R.Dist.count(N) || R.Dist[N] > D) {
        R.Dist[N] = D;
        if (Par != InvalidId)
          R.Parent[N] = Par;
      }
      if (!R.Parent.count(N))
        R.Parent[N] = Par;
      if (isBarrier(N))
        continue;
      for (const SDGEdge &E : G.succs(N)) {
        if (E.Kind == SDGEdgeKind::Flow || E.Kind == SDGEdgeKind::ParamIn) {
          Q.emplace_back(E.To, D + 1, N);
        } else if (E.Kind == SDGEdgeKind::ParamOut) {
          continue;
        }
      }
      // Step over calls with summaries as well, so flow continuing after a
      // call inside a descended-into method is found.
      bool HasParamIn = false;
      for (const SDGEdge &E : G.succs(N))
        HasParamIn |= E.Kind == SDGEdgeKind::ParamIn;
      if (HasParamIn) {
        const CallSiteInfo *CS = siteOf(N);
        if (CS) {
          for (const SDGEdge &E : G.succs(N)) {
            if (E.Kind != SDGEdgeKind::ParamIn)
              continue;
            seedSummary(E.To);
            drainSummaries();
            auto SIt = SummaryOuts.find(E.To);
            if (SIt == SummaryOuts.end())
              continue;
            for (auto &[FOut, DD] : SIt->second) {
              SDGNodeId AOut = G.actualOutFor(*CS, FOut);
              if (AOut != InvalidId)
                Q.emplace_back(AOut, D + DD + 2, N);
            }
          }
        }
      }
    }
  }
}
