//===- rhs/Tabulation.h - RHS summary-based reachability -------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive (realizable-path) forward reachability over an SDG,
/// after Reps-Horwitz-Sagiv tabulation [POPL'95] as used by TAJ §3.2:
/// same-level summaries from formal-ins to formal-outs are computed on
/// demand and applied at call sites, and slices are taken in the classic
/// two-phase Horwitz-Reps-Binkley style (phase 1 ascends to callers using
/// summaries to step over calls; phase 2 descends into callees).
///
/// Traversal is per security rule: statements that sanitize the rule — and
/// sink statements — have no successors (paper §3.2).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_RHS_TABULATION_H
#define TAJ_RHS_TABULATION_H

#include "sdg/SDG.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace taj {

class RunGuard;

/// Demand-driven tabulation over one SDG for one security rule. Summaries
/// are memoized across slice requests, so reuse one instance per
/// (SDG, rule) pair.
///
/// When a RunGuard is supplied, every worklist pop checkpoints it; on a
/// cutoff the pending work is dropped and the slice computed so far is
/// returned as-is (an underapproximation of realizable reachability).
class Tabulation {
public:
  Tabulation(const SDG &G, RuleMask Rule, RunGuard *Guard = nullptr);

  /// Persistent slice state; pass the same object to forwardSlice to grow
  /// a slice incrementally (the hybrid slicer adds store->load hop seeds).
  struct SliceResult {
    /// node -> BFS distance from the nearest seed.
    std::unordered_map<SDGNodeId, uint32_t> Dist;
    /// node -> discovery predecessor (seeds map to InvalidId).
    std::unordered_map<SDGNodeId, SDGNodeId> Parent;
  };

  /// Extends \p R with everything forward-reachable along realizable paths
  /// from \p Seeds (pairs of node and initial distance).
  void forwardSlice(const std::vector<std::pair<SDGNodeId, uint32_t>> &Seeds,
                    SliceResult &R);

  /// Number of path edges processed (scalability metric).
  uint64_t pathEdgeCount() const { return PathEdgeCount; }

private:
  /// True if traversal must stop at \p N (sanitizer for this rule, or
  /// sink): such statements have no successors in the no-heap SDG.
  bool isBarrier(SDGNodeId N) const;

  /// Call-site info owning an ActualIn/ChanActualIn/Invoke-stmt node.
  const CallSiteInfo *siteOf(SDGNodeId N) const;

  // --- Summary engine -----------------------------------------------------
  void seedSummary(SDGNodeId FIn);
  void drainSummaries();
  void recordSummaryOut(SDGNodeId FIn, SDGNodeId FOut, uint32_t D);
  void propagateSame(SDGNodeId FIn, SDGNodeId N, uint32_t D);

  struct Sub {
    uint32_t Ctx; ///< the FIn whose same-level traversal waits here
    SDGNodeId At; ///< the actual-in node where the summary applies
  };

  const SDG &G;
  RuleMask Rule;
  RunGuard *Guard = nullptr;
  uint64_t PathEdgeCount = 0;

  // Same-level path edges: (FIn, node) -> dist.
  std::unordered_map<uint64_t, uint32_t> PathDist;
  // FIn -> [(FOut-like node, interior dist)]
  std::unordered_map<SDGNodeId, std::vector<std::pair<SDGNodeId, uint32_t>>>
      SummaryOuts;
  std::unordered_map<SDGNodeId, std::vector<Sub>> Subscribers;
  std::unordered_set<SDGNodeId> SummarySeeded;
  std::deque<std::tuple<SDGNodeId, SDGNodeId, uint32_t>> SummaryWork;
};

} // namespace taj

#endif // TAJ_RHS_TABULATION_H
