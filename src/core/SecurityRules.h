//===- core/SecurityRules.h - Security rule specification ------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// External specification of security rules (TAJ §3): a rule is a triple
/// (sources, sanitizers, sinks). Rules may be baked into a program via
/// method attributes (the model library does this) or applied by name with
/// a SecurityRuleSet, which is how a downstream user points TAJ at their
/// own frameworks.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_CORE_SECURITYRULES_H
#define TAJ_CORE_SECURITYRULES_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace taj {

/// Marks a method's return value as tainted for Rules.
struct SourceSpec {
  std::string ClassName;
  std::string MethodName;
  RuleMask Rules = rules::All;
};

/// Marks a method as endorsing (cleaning) Rules.
struct SanitizerSpec {
  std::string ClassName;
  std::string MethodName;
  RuleMask Rules = rules::All;
};

/// Marks a method as a sink for Rules; ParamMask selects the sensitive
/// parameters (0 = every non-receiver parameter).
struct SinkSpec {
  std::string ClassName;
  std::string MethodName;
  RuleMask Rules = rules::All;
  uint32_t ParamMask = 0;
};

/// A bundle of rules applied to a program by (class, method) name.
class SecurityRuleSet {
public:
  void addSource(SourceSpec S) { Sources.push_back(std::move(S)); }
  void addSanitizer(SanitizerSpec S) { Sanitizers.push_back(std::move(S)); }
  void addSink(SinkSpec S) { Sinks.push_back(std::move(S)); }

  /// Applies every spec; returns the number of methods annotated. Specs
  /// naming unknown classes/methods are skipped (counted separately via
  /// \p UnmatchedOut if given).
  size_t apply(Program &P, size_t *UnmatchedOut = nullptr) const;

private:
  std::vector<SourceSpec> Sources;
  std::vector<SanitizerSpec> Sanitizers;
  std::vector<SinkSpec> Sinks;
};

} // namespace taj

#endif // TAJ_CORE_SECURITYRULES_H
