//===- core/SecurityRules.cpp ----------------------------------*- C++ -*-===//

#include "core/SecurityRules.h"

using namespace taj;

static MethodId findByName(const Program &P, const std::string &Cls,
                           const std::string &Meth) {
  ClassId C = P.findClass(Cls);
  if (C == InvalidId)
    return InvalidId;
  return P.findMethod(C, Meth);
}

size_t SecurityRuleSet::apply(Program &P, size_t *UnmatchedOut) const {
  size_t Applied = 0, Unmatched = 0;
  for (const SourceSpec &S : Sources) {
    MethodId M = findByName(P, S.ClassName, S.MethodName);
    if (M == InvalidId) {
      ++Unmatched;
      continue;
    }
    P.Methods[M].SourceRules |= S.Rules;
    ++Applied;
  }
  for (const SanitizerSpec &S : Sanitizers) {
    MethodId M = findByName(P, S.ClassName, S.MethodName);
    if (M == InvalidId) {
      ++Unmatched;
      continue;
    }
    P.Methods[M].SanitizerRules |= S.Rules;
    ++Applied;
  }
  for (const SinkSpec &S : Sinks) {
    MethodId M = findByName(P, S.ClassName, S.MethodName);
    if (M == InvalidId) {
      ++Unmatched;
      continue;
    }
    Method &Meth = P.Methods[M];
    Meth.SinkRules |= S.Rules;
    uint32_t Mask = S.ParamMask;
    if (Mask == 0)
      for (uint32_t K = Meth.IsStatic ? 0 : 1; K < Meth.NumParams; ++K)
        Mask |= 1u << K;
    Meth.SinkParamMask |= Mask;
    ++Applied;
  }
  if (UnmatchedOut)
    *UnmatchedOut = Unmatched;
  return Applied;
}
