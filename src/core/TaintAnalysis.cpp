//===- core/TaintAnalysis.cpp ----------------------------------*- C++ -*-===//

#include "core/TaintAnalysis.h"

using namespace taj;

TaintAnalysis::TaintAnalysis(const Program &P, AnalysisConfig Config)
    : P(P), Config(std::move(Config)), CHA(P) {}

TaintAnalysis::~TaintAnalysis() = default;

AnalysisResult TaintAnalysis::run(const std::vector<MethodId> &Roots) {
  AnalysisResult Out;
  Timer T;

  // Phase 1: pointer analysis and call-graph construction (§3.1).
  const_cast<Program &>(P).indexStatements();
  Solver =
      std::make_unique<PointsToSolver>(P, CHA, Config.pointsToOptions());
  Solver->solve(Roots);
  Out.BudgetExhausted = Solver->budgetExhausted();
  Out.CgNodesProcessed = Solver->callGraph().numProcessed();

  // Phase 2: thin slicing from sources (§3.2).
  SliceRunResult SR;
  switch (Config.Slicer) {
  case SlicerKind::Hybrid:
    SR = runHybridSlicer(P, CHA, *Solver, Config.slicerOptions());
    break;
  case SlicerKind::CS:
    SR = runCsSlicer(P, CHA, *Solver, Config.slicerOptions());
    break;
  case SlicerKind::CI:
    SR = runCiSlicer(P, CHA, *Solver, Config.slicerOptions());
    break;
  }
  Out.Completed = SR.Completed;
  Out.Issues = std::move(SR.Issues);
  Out.SliceWork = SR.PathEdges;
  Out.Millis = T.elapsedMs();
  return Out;
}
