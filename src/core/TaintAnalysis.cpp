//===- core/TaintAnalysis.cpp ----------------------------------*- C++ -*-===//

#include "core/TaintAnalysis.h"

#include "persist/Cache.h"
#include "support/Trace.h"
#include "verify/Verify.h"

#include <cmath>

using namespace taj;

TaintAnalysis::TaintAnalysis(const Program &P, AnalysisConfig Config)
    : P(P), Config(std::move(Config)), CHA(P) {}

TaintAnalysis::~TaintAnalysis() = default;

AnalysisResult TaintAnalysis::run(const std::vector<MethodId> &Roots) {
  AnalysisResult Out;
  Timer T;

  // One guard governs the whole run: config limits overlaid with the
  // TAJ_DEADLINE_MS / TAJ_MAX_MEMORY_MB / TAJ_FAIL_AT environment knobs,
  // unless the caller supplied an external guard (e.g. for cancellation).
  RunGuard OwnGuard(RunGuard::limitsFromEnv(Config.guardLimits()));
  RunGuard &G = Config.ExternalGuard ? *Config.ExternalGuard : OwnGuard;

  // Per-phase profile: the caller's (taj-cli passes one that also covers
  // parse/report outside run()) or a private one exported into RunStats at
  // the end. The "analysis" scope below brackets the whole body, so with
  // the profile's exclusive accounting the run-internal phases (conststr,
  // pointsto, persist_*, sdg, slicing) plus the "analysis" residue tile
  // Millis exactly.
  PhaseProfile OwnProf;
  PhaseProfile &Prof = Config.ExternalProfile ? *Config.ExternalProfile
                                              : OwnProf;
  // Delta base: an external profile may already carry persist_load time
  // (taj-cli's IR cache load); this run only owns what it adds.
  const double PersistLoadBaseUs = Prof.wallUsOf("persist_load");

  // Self-verification sink: the caller's (so a driver folds frontend and
  // analysis violations into one exit decision) or a private one. Checkers
  // run only over completed phases, so degraded runs never spuriously
  // fail.
  verify::Violations OwnViolations;
  verify::Violations &Vio =
      Config.Violations ? *Config.Violations : OwnViolations;
  const uint64_t Vio0 = Vio.total();
  const verify::VerifyMode VMode = Config.Verify;

  auto report = [&](RunPhase Ph, PhaseOutcome O, CutoffReason R) {
    PhaseReport PR;
    PR.Phase = Ph;
    PR.Outcome = O;
    PR.Reason = R;
    PR.WorkDone = G.workOf(Ph);
    Out.Status.Phases.push_back(PR);
  };

  PhaseScope AnalysisScope(&Prof, "analysis");

  // Phase 1: pointer analysis and call-graph construction (§3.1).
  const_cast<Program &>(P).indexStatements();

  // Artifact cache wiring: active only with a usable cache, a non-empty
  // input fingerprint, and no fault injection (an injected cutoff is a
  // test scenario whose truncation point must not be masked by a warm
  // start). Keys cover the input bytes, the phase-relevant config fields
  // and the format version, so any of those changing misses cleanly.
  persist::ArtifactCache *Cache = Config.Cache;
  const bool CacheOn = Cache && Cache->enabled() &&
                       !Config.InputFingerprint.empty() &&
                       G.limits().FailAtCheckpoint == 0 &&
                       G.limits().CrashAtCheckpoint == 0 &&
                       G.limits().HangAtCheckpoint == 0;
  std::string PtsKey, SdgKey;
  // Counter baselines, so this run's RunStats carries per-run deltas (a
  // shared batch cache accumulates across runs; summing the deltas of N
  // runs then reproduces the lifetime totals).
  uint64_t Hit0 = 0, Miss0 = 0, Store0 = 0, Evict0 = 0, Skip0 = 0,
           Corrupt0 = 0, VerMiss0 = 0, Touch0 = 0;
  if (Cache) {
    Hit0 = Cache->hits();
    Miss0 = Cache->misses();
    Store0 = Cache->stores();
    Evict0 = Cache->evictions();
    Skip0 = Cache->evictSkips();
    Corrupt0 = Cache->corruptions();
    VerMiss0 = Cache->versionMisses();
    Touch0 = Cache->touchFailures();
  }
  if (CacheOn) {
    PtsKey = persist::ArtifactCache::makeKey("pts", Config.InputFingerprint,
                                             Config.pointsToFingerprint());
    SdgKey = persist::ArtifactCache::makeKey("sdg", Config.InputFingerprint,
                                             Config.sdgFingerprint());
  }

  G.beginPhase(RunPhase::PointerAnalysis);

  // String-constant propagation (dataflow/ConstString.h) runs before the
  // solver — its facts drive the dictionary-channel and reflection models.
  // It is cheap and deterministic, so it also runs on warm-cache paths
  // (the result itself is never persisted) and its conststr.* counters
  // land in RunStats either way.
  ConstStringOptions CSO;
  CSO.Mode = Config.StringAnalysis;
  CSO.Guard = &G;
  {
    PhaseScope S(&Prof, "conststr");
    ConstStrings = analyzeConstStrings(P, CHA, CSO);
  }

  PointsToOptions PO = Config.pointsToOptions();
  PO.Guard = &G;
  PO.ConstStrings = &ConstStrings;
  Solver = std::make_unique<PointsToSolver>(P, CHA, PO);
  bool PtsWarm = false;
  if (CacheOn) {
    PhaseScope S(&Prof, "persist_load");
    if (std::optional<persist::LoadedPayload> Payload =
            Cache->load(PtsKey, persist::ArtifactKind::PointsTo)) {
      persist::Reader R(Payload->data(), Payload->size());
      PtsWarm = persist::Access::restoreSolver(*Solver, R);
      if (!PtsWarm) {
        Cache->noteRestoreFailure(PtsKey);
        // A failed restore may leave partial tables; recreate the solver
        // so the cold path starts pristine.
        Solver = std::make_unique<PointsToSolver>(P, CHA, PO);
      }
    }
  }
  if (!PtsWarm) {
    {
      PhaseScope S(&Prof, "pointsto");
      try {
        Solver->solve(Roots);
      } catch (...) {
        // Unexpected failure (e.g. bad_alloc): degrade instead of
        // crashing.
        G.markInternalError();
      }
    }
    // Store only clean solutions: a governance stop is nondeterministic
    // and a node-budget truncation alters the degraded-run banner's work
    // counts, so neither may be replayed from cache.
    if (CacheOn && !G.stopped() && !Solver->budgetExhausted()) {
      PhaseScope S(&Prof, "persist_store");
      persist::Writer W;
      persist::Access::serializeSolver(*Solver, W);
      Cache->store(PtsKey, persist::ArtifactKind::PointsTo, W.bytes());
    }
  }
  Out.BudgetExhausted = Solver->budgetExhausted();
  Out.CgNodesProcessed = Solver->callGraph().numProcessed();
  if (G.stopped())
    report(RunPhase::PointerAnalysis, PhaseOutcome::Truncated, G.reason());
  else if (Solver->budgetExhausted())
    report(RunPhase::PointerAnalysis, PhaseOutcome::Truncated,
           CutoffReason::NodeBudget);
  else
    report(RunPhase::PointerAnalysis, PhaseOutcome::Completed,
           CutoffReason::None);

  // GraphVerifier (--verify=full): a complete, unbudgeted solve must be a
  // fixpoint with a fully justified call graph. On a warm restore this is
  // the structural defense behind the record checksum — a hot-tier hit
  // skips checksum re-verification entirely — so a violating restored
  // solution is additionally counted as persist.verify_rejected and the
  // poisoned cache entry dropped for later runs.
  if (VMode == verify::VerifyMode::Full && !G.stopped() &&
      !Solver->budgetExhausted()) {
    PhaseScope S(&Prof, "verify");
    const uint64_t Before = Vio.total();
    verify::verifyGraphs(P, CHA, *Solver, &ConstStrings, Vio);
    if (PtsWarm && Vio.total() != Before) {
      Vio.noteRestoreRejected();
      Cache->noteRestoreFailure(PtsKey);
    }
  }

  // Phase 2: thin slicing from sources (§3.2). Once the run is stopped
  // there is no envelope left, so the remaining phases are skipped; a
  // node-budget truncation (above) is phase-local and slicing proceeds
  // over the partial call graph, exactly as in the paper's §6.1.
  if (G.stopped()) {
    report(RunPhase::SdgBuild, PhaseOutcome::Skipped, G.reason());
    report(RunPhase::Slicing, PhaseOutcome::Skipped, G.reason());
  } else {
    SlicerOptions SLO = Config.slicerOptions();
    SLO.Guard = &G;
    SLO.Profile = &Prof;
    SLO.Violations = &Vio;
    if (CacheOn) {
      SLO.Cache = Cache;
      SLO.CacheKey = SdgKey;
    }
    SliceRunResult SR;
    try {
      switch (Config.Slicer) {
      case SlicerKind::Hybrid:
        SR = runHybridSlicer(P, CHA, *Solver, SLO);
        break;
      case SlicerKind::CS:
        SR = runCsSlicer(P, CHA, *Solver, SLO);
        break;
      case SlicerKind::CI:
        SR = runCiSlicer(P, CHA, *Solver, SLO);
        break;
      }
    } catch (...) {
      G.markInternalError();
      SR.Issues.clear(); // a half-built issue list is not trustworthy
    }
    Out.Completed = SR.Completed;
    Out.Issues = std::move(SR.Issues);
    Out.SliceWork = SR.PathEdges;

    if (!SR.Completed) {
      // CS channel extension exceeded its memory budget before slicing.
      report(RunPhase::SdgBuild, PhaseOutcome::Truncated,
             CutoffReason::Memory);
      report(RunPhase::Slicing, PhaseOutcome::Skipped, CutoffReason::Memory);
    } else if (G.stopped() && G.cutoffPhase() == RunPhase::SdgBuild) {
      report(RunPhase::SdgBuild, PhaseOutcome::Truncated, G.reason());
      report(RunPhase::Slicing, PhaseOutcome::Skipped, G.reason());
    } else if (G.stopped()) {
      report(RunPhase::SdgBuild, PhaseOutcome::Completed,
             CutoffReason::None);
      report(RunPhase::Slicing, PhaseOutcome::Truncated, G.reason());
    } else {
      report(RunPhase::SdgBuild, PhaseOutcome::Completed,
             CutoffReason::None);
      report(RunPhase::Slicing, PhaseOutcome::Completed, CutoffReason::None);
    }
  }

  Out.VerifyViolations = Vio.total() - Vio0;
  // Exported totals include frontend violations an external sink already
  // carries: this run's RunStats is the one stats outlet either way.
  Vio.exportStats(Out.RunStats);

  G.exportStats(Out.RunStats);
  Out.RunStats.merge(ConstStrings.stats());
  Out.RunStats.merge(Solver->stats());
  if (Cache) {
    Out.RunStats.add("persist.hit", Cache->hits() - Hit0);
    Out.RunStats.add("persist.miss", Cache->misses() - Miss0);
    Out.RunStats.add("persist.store", Cache->stores() - Store0);
    Out.RunStats.add("persist.evict", Cache->evictions() - Evict0);
    Out.RunStats.add("persist.evict_skipped", Cache->evictSkips() - Skip0);
    Out.RunStats.add("persist.corrupt", Cache->corruptions() - Corrupt0);
    Out.RunStats.add("persist.version_miss",
                     Cache->versionMisses() - VerMiss0);
    Out.RunStats.add("persist.touch_failed",
                     Cache->touchFailures() - Touch0);
  }
  Out.PersistLoadMillis =
      (Prof.wallUsOf("persist_load") - PersistLoadBaseUs) / 1000.0;
  Out.RunStats.add(
      "phase.persist_load_ms",
      static_cast<uint64_t>(std::llround(Out.PersistLoadMillis)));
  // An external profile is exported by its owner (covering phases outside
  // this run too); a private one is this run's only outlet.
  if (!Config.ExternalProfile)
    Prof.exportStats(Out.RunStats);
  Out.Millis = T.elapsedMs();
  return Out;
}
