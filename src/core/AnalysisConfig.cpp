//===- core/AnalysisConfig.cpp ---------------------------------*- C++ -*-===//

#include "core/AnalysisConfig.h"

#include <algorithm>

using namespace taj;

PointsToOptions AnalysisConfig::pointsToOptions() const {
  PointsToOptions O;
  O.Prioritized = Prioritized;
  O.MaxCallGraphNodes = MaxCallGraphNodes;
  O.ExcludeWhitelisted = ExcludeWhitelisted;
  O.JndiBindings = JndiBindings;
  O.EjbHomeToBean = EjbHomeToBean;
  return O;
}

RunGuard::Limits AnalysisConfig::guardLimits() const {
  RunGuard::Limits L;
  L.DeadlineMs = DeadlineMs;
  L.MaxMemoryBytes = MaxMemoryMb * 1024 * 1024;
  L.FailAtCheckpoint = FailAtCheckpoint;
  L.CrashAtCheckpoint = CrashAtCheckpoint;
  L.CrashSignal = CrashSignal;
  L.HangAtCheckpoint = HangAtCheckpoint;
  return L;
}

std::string AnalysisConfig::pointsToFingerprint() const {
  std::string S = "pts:prio=" + std::to_string(Prioritized) +
                  ";maxcg=" + std::to_string(MaxCallGraphNodes) +
                  ";nowl=" + std::to_string(ExcludeWhitelisted) +
                  ";sa=" + stringAnalysisModeName(StringAnalysis);
  // Deployment bindings live in unordered maps; sort for a canonical form.
  std::vector<std::pair<std::string, ClassId>> Jndi(JndiBindings.begin(),
                                                    JndiBindings.end());
  std::sort(Jndi.begin(), Jndi.end());
  S += ";jndi=";
  for (const auto &[Name, Cls] : Jndi)
    S += Name + "->" + std::to_string(Cls) + ",";
  std::vector<std::pair<ClassId, ClassId>> Ejb(EjbHomeToBean.begin(),
                                               EjbHomeToBean.end());
  std::sort(Ejb.begin(), Ejb.end());
  S += ";ejb=";
  for (const auto &[Home, Bean] : Ejb)
    S += std::to_string(Home) + "->" + std::to_string(Bean) + ",";
  return S;
}

std::string AnalysisConfig::sdgFingerprint() const {
  std::string S = pointsToFingerprint() +
                  "|sdg:slicer=" + std::to_string(static_cast<int>(Slicer)) +
                  ";exc=" + std::to_string(ModelExceptionSources) +
                  ";nested=" + std::to_string(NestedTaintDepth);
  if (Slicer == SlicerKind::CS)
    S += ";chan=" + std::to_string(CsChanBudget);
  return S;
}

SlicerOptions AnalysisConfig::slicerOptions() const {
  SlicerOptions O;
  O.Threads = Threads;
  O.MaxHeapTransitions = MaxHeapTransitions;
  O.MaxFlowLength = MaxFlowLength;
  O.NestedTaintDepth = NestedTaintDepth;
  O.ModelExceptionSources = ModelExceptionSources;
  O.CsChanBudget = CsChanBudget;
  O.Verify = Verify;
  return O;
}

AnalysisConfig AnalysisConfig::hybridUnbounded() {
  AnalysisConfig C;
  C.Name = "hybrid-unbounded";
  C.Slicer = SlicerKind::Hybrid;
  return C;
}

AnalysisConfig AnalysisConfig::hybridPrioritized(uint32_t CgBudget) {
  AnalysisConfig C;
  C.Name = "hybrid-prioritized";
  C.Slicer = SlicerKind::Hybrid;
  C.Prioritized = true;
  C.MaxCallGraphNodes = CgBudget;
  return C;
}

AnalysisConfig AnalysisConfig::hybridOptimized(uint32_t CgBudget,
                                               uint32_t HeapTransitions,
                                               uint32_t FlowLength,
                                               uint32_t NestedDepth) {
  AnalysisConfig C;
  C.Name = "hybrid-optimized";
  C.Slicer = SlicerKind::Hybrid;
  C.Prioritized = true;
  C.MaxCallGraphNodes = CgBudget;
  C.ExcludeWhitelisted = true;
  C.MaxHeapTransitions = HeapTransitions;
  C.MaxFlowLength = FlowLength;
  C.NestedTaintDepth = NestedDepth;
  return C;
}

AnalysisConfig AnalysisConfig::cs() {
  AnalysisConfig C;
  C.Name = "cs";
  C.Slicer = SlicerKind::CS;
  return C;
}

AnalysisConfig AnalysisConfig::ci() {
  AnalysisConfig C;
  C.Name = "ci";
  C.Slicer = SlicerKind::CI;
  return C;
}
