//===- core/AnalysisConfig.cpp ---------------------------------*- C++ -*-===//

#include "core/AnalysisConfig.h"

using namespace taj;

PointsToOptions AnalysisConfig::pointsToOptions() const {
  PointsToOptions O;
  O.Prioritized = Prioritized;
  O.MaxCallGraphNodes = MaxCallGraphNodes;
  O.ExcludeWhitelisted = ExcludeWhitelisted;
  O.JndiBindings = JndiBindings;
  O.EjbHomeToBean = EjbHomeToBean;
  return O;
}

RunGuard::Limits AnalysisConfig::guardLimits() const {
  RunGuard::Limits L;
  L.DeadlineMs = DeadlineMs;
  L.MaxMemoryBytes = MaxMemoryMb * 1024 * 1024;
  L.FailAtCheckpoint = FailAtCheckpoint;
  return L;
}

SlicerOptions AnalysisConfig::slicerOptions() const {
  SlicerOptions O;
  O.Threads = Threads;
  O.MaxHeapTransitions = MaxHeapTransitions;
  O.MaxFlowLength = MaxFlowLength;
  O.NestedTaintDepth = NestedTaintDepth;
  O.ModelExceptionSources = ModelExceptionSources;
  O.CsChanBudget = CsChanBudget;
  return O;
}

AnalysisConfig AnalysisConfig::hybridUnbounded() {
  AnalysisConfig C;
  C.Name = "hybrid-unbounded";
  C.Slicer = SlicerKind::Hybrid;
  return C;
}

AnalysisConfig AnalysisConfig::hybridPrioritized(uint32_t CgBudget) {
  AnalysisConfig C;
  C.Name = "hybrid-prioritized";
  C.Slicer = SlicerKind::Hybrid;
  C.Prioritized = true;
  C.MaxCallGraphNodes = CgBudget;
  return C;
}

AnalysisConfig AnalysisConfig::hybridOptimized(uint32_t CgBudget,
                                               uint32_t HeapTransitions,
                                               uint32_t FlowLength,
                                               uint32_t NestedDepth) {
  AnalysisConfig C;
  C.Name = "hybrid-optimized";
  C.Slicer = SlicerKind::Hybrid;
  C.Prioritized = true;
  C.MaxCallGraphNodes = CgBudget;
  C.ExcludeWhitelisted = true;
  C.MaxHeapTransitions = HeapTransitions;
  C.MaxFlowLength = FlowLength;
  C.NestedTaintDepth = NestedDepth;
  return C;
}

AnalysisConfig AnalysisConfig::cs() {
  AnalysisConfig C;
  C.Name = "cs";
  C.Slicer = SlicerKind::CS;
  return C;
}

AnalysisConfig AnalysisConfig::ci() {
  AnalysisConfig C;
  C.Name = "ci";
  C.Slicer = SlicerKind::CI;
  return C;
}
