//===- core/AnalysisConfig.h - Configurations of Table 1 -------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end analysis configuration, with the five presets evaluated in
/// TAJ §7 (Table 1): three hybrid variants (unbounded, prioritized under a
/// call-graph bound, fully optimized with all §6 bounds and code
/// reduction), CS thin slicing, and CI thin slicing. All configurations
/// use the synthetic models of §4, which "are key to good performance".
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_CORE_ANALYSISCONFIG_H
#define TAJ_CORE_ANALYSISCONFIG_H

#include "dataflow/ConstString.h"
#include "pointsto/Solver.h"
#include "slicer/Slicer.h"
#include "support/RunGuard.h"

#include <string>

namespace taj {

namespace persist {
class ArtifactCache;
}

class PhaseProfile;

/// Which slicing algorithm runs on top of the pointer analysis.
enum class SlicerKind : uint8_t { Hybrid, CS, CI };

/// One analysis configuration.
struct AnalysisConfig {
  std::string Name = "hybrid-unbounded";
  SlicerKind Slicer = SlicerKind::Hybrid;

  /// §6.1 priority-driven call-graph construction.
  bool Prioritized = false;
  /// Call-graph node budget (0 = unbounded). The paper uses 20,000.
  uint32_t MaxCallGraphNodes = 0;
  /// §4.2.1 code reduction: exclude whitelisted benign classes.
  bool ExcludeWhitelisted = false;

  /// §6.2.1: bound on store->load slice expansions (paper: 20,000).
  uint32_t MaxHeapTransitions = 0;
  /// §6.2.2: flows longer than this are filtered (paper: 14).
  uint32_t MaxFlowLength = 0;
  /// §6.2.3: nested-taint field-dereference bound (paper: 2).
  uint32_t NestedTaintDepth = 32;

  /// §4.1.2 exception modeling.
  bool ModelExceptionSources = true;

  /// String-constant inference feeding the dictionary and reflection
  /// models (taj-cli --string-analysis): off / local / ipa (default).
  /// Part of pointsToFingerprint(), so persist artifacts key correctly.
  StringAnalysisMode StringAnalysis = StringAnalysisMode::Ipa;

  /// Self-verification mode (taj-cli --verify). Deliberately excluded
  /// from the artifact fingerprints: verification never changes what is
  /// computed, only whether it is independently re-checked.
  verify::VerifyMode Verify = verify::defaultMode();
  /// Optional externally-owned violation sink. When set, run() reports
  /// into it (so a driver can fold frontend and analysis violations into
  /// one exit decision); when null, run() uses a private sink. Not owned.
  verify::Violations *Violations = nullptr;

  /// Worker threads for the per-source slicing loops (1 = sequential,
  /// 0 = auto: TAJ_THREADS env var, then hardware concurrency). Output is
  /// byte-identical at every thread count.
  uint32_t Threads = 1;

  /// Memory budget (channel nodes) for CS thin slicing.
  uint64_t CsChanBudget = 20000;

  //===--------------------------------------------------------------------===//
  // Run governance (§6 bounded analysis, generalized)
  //===--------------------------------------------------------------------===//

  /// Wall-clock deadline for the whole run in milliseconds (0 = none).
  double DeadlineMs = 0;
  /// Resident-memory ceiling in MiB (0 = none).
  uint64_t MaxMemoryMb = 0;
  /// Deterministic fault injection: trip the run guard at the Nth
  /// checkpoint (1-based; 0 = off). Test-only degradation forcing.
  uint64_t FailAtCheckpoint = 0;
  /// Hard fault injection: die (abort, or raise CrashSignal) at the Nth
  /// checkpoint (1-based; 0 = off). Exercises process-level supervision.
  uint64_t CrashAtCheckpoint = 0;
  /// Signal for CrashAtCheckpoint (0 = abort()).
  int CrashSignal = 0;
  /// Hard fault injection: block forever at the Nth checkpoint (1-based;
  /// 0 = off). Exercises the supervisor watchdog.
  uint64_t HangAtCheckpoint = 0;
  /// Optional externally-owned guard, e.g. to cancel() a run from another
  /// thread. When set it governs the run and the three limits above are
  /// ignored. Not owned; must outlive the run.
  RunGuard *ExternalGuard = nullptr;

  /// Optional externally-owned per-phase profile (support/Trace.h). When
  /// set, run() accrues its phase timings here and the owner exports the
  /// `phase.*` counters (taj-cli does this, so its profile also covers
  /// parse and report phases outside run()); when null, run() uses a
  /// private profile and exports it into AnalysisResult::RunStats itself.
  /// Not owned; must outlive the run.
  PhaseProfile *ExternalProfile = nullptr;

  /// The RunGuard limits implied by this configuration.
  RunGuard::Limits guardLimits() const;

  /// Deployment-descriptor bindings (§4.2.2), forwarded to the solver.
  std::unordered_map<std::string, ClassId> JndiBindings;
  std::unordered_map<ClassId, ClassId> EjbHomeToBean;

  //===--------------------------------------------------------------------===//
  // Artifact cache (persist/Cache.h)
  //===--------------------------------------------------------------------===//

  /// Optional artifact cache for warm-starting the points-to and SDG
  /// phases. Not owned; must outlive the run. Ignored unless
  /// InputFingerprint is also set.
  persist::ArtifactCache *Cache = nullptr;
  /// Fingerprint of the analyzed input (e.g. hex FNV of the source bytes),
  /// composed into every cache key. Empty disables caching for the run.
  std::string InputFingerprint;

  /// Canonical encoding of the config fields that shape the points-to
  /// solution (priority order, call-graph budget, whitelist exclusion,
  /// deployment bindings). Part of the pts and sdg cache keys.
  std::string pointsToFingerprint() const;
  /// Canonical encoding of the fields that additionally shape the SDG +
  /// heap-edge bundle (slicer kind, exception modeling, nested-taint
  /// depth, CS channel budget). Pure slicing bounds (flow length, heap
  /// transitions, threads) are deliberately excluded so those runs reuse
  /// the SDG prefix.
  std::string sdgFingerprint() const;

  PointsToOptions pointsToOptions() const;
  SlicerOptions slicerOptions() const;

  //===--------------------------------------------------------------------===//
  // Table 1 presets
  //===--------------------------------------------------------------------===//

  /// Hybrid thin slicing, no bounds.
  static AnalysisConfig hybridUnbounded();
  /// Hybrid + priority-driven call-graph construction under \p CgBudget.
  static AnalysisConfig hybridPrioritized(uint32_t CgBudget = 20000);
  /// Hybrid + priority + every §6 bound + whitelist code reduction.
  static AnalysisConfig hybridOptimized(uint32_t CgBudget = 20000,
                                        uint32_t HeapTransitions = 20000,
                                        uint32_t FlowLength = 14,
                                        uint32_t NestedDepth = 2);
  /// Context-sensitive thin slicing baseline.
  static AnalysisConfig cs();
  /// Context-insensitive thin slicing baseline.
  static AnalysisConfig ci();
};

} // namespace taj

#endif // TAJ_CORE_ANALYSISCONFIG_H
