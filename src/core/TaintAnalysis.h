//===- core/TaintAnalysis.h - End-to-end TAJ pipeline ----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level TAJ pipeline (§3): pointer analysis + call-graph
/// construction, followed by thin slicing from taint sources, under one of
/// the Table 1 configurations. This is the main entry point of the
/// library:
///
/// \code
///   Program P;                      // built via Builder or parseTaj
///   installBuiltinLibrary(P);       // model library, done before parsing
///   ...                             // app classes
///   MethodId Root = synthesizeEntrypointDriver(P, Lib);
///   TaintAnalysis TA(P, AnalysisConfig::hybridUnbounded());
///   AnalysisResult R = TA.run({Root});
///   for (const Issue &I : R.Issues) ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_CORE_TAINTANALYSIS_H
#define TAJ_CORE_TAINTANALYSIS_H

#include "cha/ClassHierarchy.h"
#include "core/AnalysisConfig.h"
#include "slicer/Issue.h"
#include "support/RunGuard.h"
#include "support/Stats.h"

#include <memory>

namespace taj {

/// Output of one end-to-end analysis run.
struct AnalysisResult {
  /// False when the configuration failed (CS out of memory).
  bool Completed = true;
  /// True when a budget truncated the call graph (result underapproximate).
  bool BudgetExhausted = false;
  /// Wall-clock time of the whole run.
  double Millis = 0;
  /// Wall-clock time spent loading (and restoring from) persisted
  /// artifacts, included in Millis. On warm-cache runs this is the part of
  /// Millis that is artifact I/O rather than analysis, so warm/cold
  /// comparisons can attribute time correctly. Also exported as the
  /// `phase.persist_load_ms` counter in RunStats.
  double PersistLoadMillis = 0;
  /// Reported tainted flows, deduplicated by (source, sink, rule).
  std::vector<Issue> Issues;
  /// Work metric of the slicing phase.
  uint64_t SliceWork = 0;
  /// Call-graph nodes processed.
  uint32_t CgNodesProcessed = 0;
  /// Structured per-phase outcome of the governed run: which phases
  /// completed, which were truncated (results underapproximate), which
  /// were skipped, and why.
  RunStatus Status;
  /// Governance counters (guard.checkpoints, guard.cutoff.<reason>, ...).
  Stats RunStats;
  /// Self-verification violations detected during the run (taj-cli
  /// --verify). Non-zero means the run's artifacts are inconsistent and
  /// drivers must fail with exit 1; the per-checker breakdown is in
  /// RunStats (verify.*). Covers only this run() — when the caller
  /// supplied AnalysisConfig::Violations it already sees the full total
  /// (frontend violations included) in its own sink.
  uint64_t VerifyViolations = 0;

  /// True when any phase was cut short: issues are still valid flows, but
  /// the list may be incomplete.
  bool degraded() const { return Status.degraded(); }
};

/// Runs the two TAJ phases on a finished program.
class TaintAnalysis {
public:
  TaintAnalysis(const Program &P, AnalysisConfig Config = {});
  ~TaintAnalysis();
  TaintAnalysis(const TaintAnalysis &) = delete;
  TaintAnalysis &operator=(const TaintAnalysis &) = delete;

  /// Runs pointer analysis from \p Roots, then the configured slicer.
  /// The program must have been indexStatements()'d; run() does it if not.
  AnalysisResult run(const std::vector<MethodId> &Roots);

  /// The solved pointer analysis (valid after run()).
  const PointsToSolver &solver() const { return *Solver; }
  const ClassHierarchy &hierarchy() const { return CHA; }
  const AnalysisConfig &config() const { return Config; }
  /// The string-constant facts of the last run() (valid after run()).
  const ConstStringResult &constStrings() const { return ConstStrings; }

private:
  const Program &P;
  AnalysisConfig Config;
  ClassHierarchy CHA;
  /// Computed by run() before the solver and handed to it by pointer;
  /// must outlive the solver (SDG/heap-edge queries go through it).
  ConstStringResult ConstStrings;
  std::unique_ptr<PointsToSolver> Solver;
};

} // namespace taj

#endif // TAJ_CORE_TAINTANALYSIS_H
