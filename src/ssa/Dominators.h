//===- ssa/Dominators.h - Dominator tree & frontiers -----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree and dominance frontiers over a method CFG, using the
/// Cooper-Harvey-Kennedy iterative algorithm. Blocks unreachable from the
/// entry have no immediate dominator (-1) and are skipped by SSA renaming.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SSA_DOMINATORS_H
#define TAJ_SSA_DOMINATORS_H

#include "ir/Program.h"

#include <vector>

namespace taj {

/// Dominator information for one method.
class Dominators {
public:
  /// Computes dominators for \p M (entry = block 0).
  explicit Dominators(const Method &M);

  /// Immediate dominator of \p B (-1 for the entry and unreachables).
  int32_t idom(int32_t B) const { return Idom[B]; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(int32_t A, int32_t B) const;

  /// Dominance frontier of \p B.
  const std::vector<int32_t> &frontier(int32_t B) const { return DF[B]; }

  /// Children of \p B in the dominator tree.
  const std::vector<int32_t> &children(int32_t B) const { return Kids[B]; }

  /// Reverse postorder over reachable blocks.
  const std::vector<int32_t> &rpo() const { return Rpo; }

  /// True if \p B is reachable from the entry.
  bool reachable(int32_t B) const { return B == 0 || Idom[B] != -1; }

private:
  std::vector<int32_t> Idom;
  std::vector<int32_t> RpoNum; // -1 for unreachable
  std::vector<int32_t> Rpo;
  std::vector<std::vector<int32_t>> DF;
  std::vector<std::vector<int32_t>> Kids;
};

} // namespace taj

#endif // TAJ_SSA_DOMINATORS_H
