//===- ssa/SSABuilder.h - SSA construction ---------------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conversion of pre-SSA method bodies (mutable local slots) into SSA form:
/// phi placement on iterated dominance frontiers, followed by the classic
/// renaming walk over the dominator tree. TAJ relies on SSA to obtain flow
/// sensitivity for local variables (paper Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SSA_SSABUILDER_H
#define TAJ_SSA_SSABUILDER_H

#include "ir/Program.h"

namespace taj {

/// Computes Preds from branch targets and straight-line fallthrough.
/// Every block must already end in a terminator.
void sealCfg(Method &M);

/// Deletes blocks unreachable from the entry and renumbers branch targets.
/// Requires a sealed CFG; leaves the CFG sealed.
void removeUnreachableBlocks(Method &M);

/// Converts \p M to SSA in place. Requires a sealed CFG. After the call,
/// M.InSSA is true, every value has a unique definition, parameters keep
/// ids 0..NumParams-1, and Phi instructions sit at block heads with one
/// argument per predecessor (NoValue for paths where the slot was never
/// assigned).
void buildSSA(Method &M);

} // namespace taj

#endif // TAJ_SSA_SSABUILDER_H
