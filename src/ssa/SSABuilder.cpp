//===- ssa/SSABuilder.cpp --------------------------------------*- C++ -*-===//

#include "ssa/SSABuilder.h"
#include "ssa/Dominators.h"

#include <cassert>
#include <unordered_set>

using namespace taj;

void taj::sealCfg(Method &M) {
  int32_t N = static_cast<int32_t>(M.Blocks.size());
  for (int32_t B = 0; B < N; ++B) {
    M.Blocks[B].Succs.clear();
    M.Blocks[B].Preds.clear();
  }
  for (int32_t B = 0; B < N; ++B) {
    assert(!M.Blocks[B].Insts.empty() && "empty block");
    const Instruction &Term = M.Blocks[B].Insts.back();
    assert(Term.isTerminator() && "block not terminated");
    switch (Term.Op) {
    case Opcode::Goto:
      M.Blocks[B].Succs.push_back(Term.Target);
      break;
    case Opcode::If:
      M.Blocks[B].Succs.push_back(Term.Target);
      if (Term.Target2 != Term.Target) {
        assert(Term.Target2 >= 0 && "If without else target");
        M.Blocks[B].Succs.push_back(Term.Target2);
      }
      break;
    case Opcode::Return:
    case Opcode::Throw:
      break;
    default:
      assert(false && "unexpected terminator");
    }
  }
  for (int32_t B = 0; B < N; ++B)
    for (int32_t S : M.Blocks[B].Succs)
      M.Blocks[S].Preds.push_back(B);
}

void taj::removeUnreachableBlocks(Method &M) {
  int32_t N = static_cast<int32_t>(M.Blocks.size());
  std::vector<uint8_t> Seen(N, 0);
  std::vector<int32_t> Work = {0};
  Seen[0] = 1;
  while (!Work.empty()) {
    int32_t B = Work.back();
    Work.pop_back();
    for (int32_t S : M.Blocks[B].Succs)
      if (!Seen[S]) {
        Seen[S] = 1;
        Work.push_back(S);
      }
  }
  bool AllReachable = true;
  for (int32_t B = 0; B < N; ++B)
    if (!Seen[B])
      AllReachable = false;
  if (AllReachable)
    return;
  std::vector<int32_t> NewIdx(N, -1);
  std::vector<BasicBlock> NewBlocks;
  for (int32_t B = 0; B < N; ++B) {
    if (!Seen[B])
      continue;
    NewIdx[B] = static_cast<int32_t>(NewBlocks.size());
    NewBlocks.push_back(std::move(M.Blocks[B]));
  }
  for (BasicBlock &BB : NewBlocks) {
    for (Instruction &I : BB.Insts) {
      if (I.Target != -1)
        I.Target = NewIdx[I.Target];
      if (I.Target2 != -1)
        I.Target2 = NewIdx[I.Target2];
    }
  }
  M.Blocks = std::move(NewBlocks);
  sealCfg(M);
}

namespace {

/// Renaming state for one buildSSA run.
struct Renamer {
  Method &M;
  const Dominators &Dom;
  uint32_t NumSlots;
  /// Stack tops per slot; NoValue = undefined on this path.
  std::vector<ValueId> Top;
  /// Saved (slot, previous top) pairs per dominator-tree level.
  std::vector<std::vector<std::pair<uint32_t, ValueId>>> Saved;
  /// Slot each phi instruction stands for (by (block, instIdx)).
  std::vector<std::vector<uint32_t>> PhiSlot;
  ValueId NextValue;

  void pushDef(uint32_t Slot, ValueId V) {
    Saved.back().emplace_back(Slot, Top[Slot]);
    Top[Slot] = V;
  }

  void walk(int32_t B) {
    Saved.emplace_back();
    BasicBlock &BB = M.Blocks[B];
    for (size_t I = 0; I < BB.Insts.size(); ++I) {
      Instruction &Ins = BB.Insts[I];
      if (Ins.Op == Opcode::Phi) {
        uint32_t Slot = PhiSlot[B][I];
        ValueId NewV = NextValue++;
        Ins.Dst = NewV;
        pushDef(Slot, NewV);
        continue;
      }
      for (ValueId &A : Ins.Args) {
        if (A == NoValue)
          continue;
        A = Top[static_cast<uint32_t>(A)];
      }
      if (Ins.Dst != NoValue) {
        uint32_t Slot = static_cast<uint32_t>(Ins.Dst);
        ValueId NewV = NextValue++;
        Ins.Dst = NewV;
        pushDef(Slot, NewV);
      }
    }
    // Fill phi operands in successors.
    for (int32_t S : BB.Succs) {
      // Which predecessor index are we for S?
      size_t PredIdx = 0;
      const auto &Preds = M.Blocks[S].Preds;
      while (PredIdx < Preds.size() && Preds[PredIdx] != B)
        ++PredIdx;
      assert(PredIdx < Preds.size() && "CFG inconsistency");
      BasicBlock &SB = M.Blocks[S];
      for (size_t I = 0; I < SB.Insts.size(); ++I) {
        Instruction &Ins = SB.Insts[I];
        if (Ins.Op != Opcode::Phi)
          break; // phis are contiguous at the head
        Ins.Args[PredIdx] = Top[PhiSlot[S][I]];
      }
    }
    for (int32_t Kid : Dom.children(B))
      walk(Kid);
    for (auto It = Saved.back().rbegin(); It != Saved.back().rend(); ++It)
      Top[It->first] = It->second;
    Saved.pop_back();
  }
};

} // namespace

void taj::buildSSA(Method &M) {
  assert(!M.InSSA && "already in SSA form");
  uint32_t NumSlots = M.NumValues;
  int32_t N = static_cast<int32_t>(M.Blocks.size());
  Dominators Dom(M);

  // Collect definition blocks per slot. Parameters are defined at entry.
  std::vector<std::unordered_set<int32_t>> DefBlocks(NumSlots);
  for (uint32_t P = 0; P < M.NumParams; ++P)
    DefBlocks[P].insert(0);
  for (int32_t B = 0; B < N; ++B)
    for (const Instruction &I : M.Blocks[B].Insts)
      if (I.Dst != NoValue)
        DefBlocks[static_cast<uint32_t>(I.Dst)].insert(B);

  // Phi placement on iterated dominance frontiers (semi-pruned: only slots
  // defined in more than one block need phis).
  std::vector<std::vector<uint32_t>> PhiSlot(N);
  std::vector<std::vector<uint32_t>> PhisFor(N); // slots with a phi in block
  for (uint32_t Slot = 0; Slot < NumSlots; ++Slot) {
    if (DefBlocks[Slot].size() < 2)
      continue;
    std::vector<int32_t> Work(DefBlocks[Slot].begin(), DefBlocks[Slot].end());
    std::unordered_set<int32_t> HasPhi;
    while (!Work.empty()) {
      int32_t B = Work.back();
      Work.pop_back();
      if (!Dom.reachable(B))
        continue;
      for (int32_t F : Dom.frontier(B)) {
        if (!HasPhi.insert(F).second)
          continue;
        PhisFor[F].push_back(Slot);
        if (!DefBlocks[Slot].count(F))
          Work.push_back(F);
      }
    }
  }
  // Materialize phi instructions at block heads.
  for (int32_t B = 0; B < N; ++B) {
    if (PhisFor[B].empty())
      continue;
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(M.Blocks[B].Insts.size() + PhisFor[B].size());
    for (uint32_t Slot : PhisFor[B]) {
      Instruction Phi;
      Phi.Op = Opcode::Phi;
      Phi.Dst = static_cast<ValueId>(Slot); // rewritten by renaming
      Phi.Args.assign(M.Blocks[B].Preds.size(), NoValue);
      NewInsts.push_back(std::move(Phi));
      PhiSlot[B].push_back(Slot);
    }
    for (Instruction &I : M.Blocks[B].Insts)
      NewInsts.push_back(std::move(I));
    M.Blocks[B].Insts = std::move(NewInsts);
  }

  // Renaming walk. Parameters keep their ids.
  Renamer R{M, Dom, NumSlots, {}, {}, PhiSlot,
            static_cast<ValueId>(M.NumParams)};
  R.Top.assign(NumSlots, NoValue);
  for (uint32_t P = 0; P < M.NumParams; ++P)
    R.Top[P] = static_cast<ValueId>(P);
  R.walk(0);

  M.NumValues = static_cast<uint32_t>(R.NextValue);
  M.InSSA = true;
}
