//===- ssa/Dominators.cpp --------------------------------------*- C++ -*-===//

#include "ssa/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace taj;

Dominators::Dominators(const Method &M) {
  int32_t N = static_cast<int32_t>(M.Blocks.size());
  assert(N > 0 && "method has no blocks");
  Idom.assign(N, -1);
  RpoNum.assign(N, -1);
  DF.assign(N, {});
  Kids.assign(N, {});

  // Iterative DFS postorder from the entry.
  std::vector<int32_t> Post;
  Post.reserve(N);
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<int32_t, size_t>> Stack;
  Stack.emplace_back(0, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    const auto &Succs = M.Blocks[B].Succs;
    if (NextSucc < Succs.size()) {
      int32_t S = Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[B] = 2;
    Post.push_back(B);
    Stack.pop_back();
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  for (size_t I = 0; I < Rpo.size(); ++I)
    RpoNum[Rpo[I]] = static_cast<int32_t>(I);

  // Cooper-Harvey-Kennedy: iterate until the idom assignment stabilizes.
  auto Intersect = [&](int32_t A, int32_t B) {
    while (A != B) {
      while (RpoNum[A] > RpoNum[B])
        A = Idom[A];
      while (RpoNum[B] > RpoNum[A])
        B = Idom[B];
    }
    return A;
  };
  Idom[0] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int32_t B : Rpo) {
      if (B == 0)
        continue;
      int32_t NewIdom = -1;
      for (int32_t P : M.Blocks[B].Preds) {
        if (RpoNum[P] == -1 || Idom[P] == -1)
          continue; // unreachable or not yet processed
        NewIdom = NewIdom == -1 ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != -1 && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
  Idom[0] = -1; // canonical: the entry has no idom

  for (int32_t B = 0; B < N; ++B)
    if (B != 0 && Idom[B] != -1)
      Kids[Idom[B]].push_back(B);

  // Dominance frontiers (Cytron et al. via the CHK formulation).
  for (int32_t B = 0; B < N; ++B) {
    if (M.Blocks[B].Preds.size() < 2)
      continue;
    for (int32_t P : M.Blocks[B].Preds) {
      if (RpoNum[P] == -1)
        continue;
      int32_t Runner = P;
      while (Runner != -1 && Runner != Idom[B]) {
        if (std::find(DF[Runner].begin(), DF[Runner].end(), B) ==
            DF[Runner].end())
          DF[Runner].push_back(B);
        Runner = Idom[Runner];
      }
    }
  }
}

bool Dominators::dominates(int32_t A, int32_t B) const {
  while (B != -1) {
    if (A == B)
      return true;
    B = Idom[B];
  }
  return false;
}
