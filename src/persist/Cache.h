//===- persist/Cache.h - Content-addressed artifact cache ------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk content-addressed cache of analysis artifacts. Entries are keyed
/// by a fingerprint of (input file bytes, the AnalysisConfig fields that
/// affect the phase, format version) and stored per phase — "ir", "pts",
/// "sdg" — so a config change that only affects slicing still reuses the
/// points-to/SDG prefix.
///
/// Durability contract: the cache is strictly an accelerator. Every load
/// verifies the record header and checksum; any read error, version or
/// checksum mismatch, or structural restore failure is counted
/// (persist.corrupt), logged to stderr, the entry deleted, and the caller
/// recomputes cold. A cache failure never changes results or exit codes.
///
/// Capacity: stores go through a temp-file + rename (the temp name is
/// pid-unique, so concurrent supervised workers sharing one directory
/// never interleave writes into the same temp file), then the cache
/// LRU-evicts (by file mtime, ties broken by name) until the directory is
/// under the configured byte cap. Loads touch the entry's mtime.
///
/// Concurrent workers: eviction never removes an entry whose mtime is
/// inside the configured grace window — a recently stored or loaded
/// entry is exactly the one another process may be about to read, and a
/// fresh mtime is the only cross-process signal we have. Skipped entries
/// are counted (persist.evict_skipped) and the directory may transiently
/// exceed the cap by the skipped bytes. Stale temp files older than the
/// grace window (a crashed worker's leftovers) are swept during eviction.
///
/// Hot tier: a MemCache attached via attachMemTier() is probed before the
/// disk on every load (a hit skips the read and the checksum re-verify),
/// is filled on every store, and is promoted into on every disk hit. Keys
/// are content addresses, so the two tiers cannot disagree; the only
/// invalidation path, noteRestoreFailure(), drops both. With an empty
/// directory the cache runs mem-only (loads/stores touch just the tier) —
/// the analysis-server worker configuration when no --cache-dir is given.
///
/// Counters (exported into Stats under persist.*): hit, miss, store,
/// evict, evict_skipped, corrupt, touch_failed, and mem_{hit,miss,store,
/// evict} when a hot tier is attached. A mem hit counts as a persist.hit
/// too — callers windowing hit deltas see warm loads whichever tier
/// served them.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_PERSIST_CACHE_H
#define TAJ_PERSIST_CACHE_H

#include "persist/Serialize.h"

#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace taj {

class ClassHierarchy;
class Stats;

namespace persist {

class MemCache;

/// A verified record payload returned by ArtifactCache::load. Owns the raw
/// record bytes and exposes the payload window without copying it (the
/// header prefix is skipped in place).
class LoadedPayload {
public:
  LoadedPayload(std::vector<uint8_t> Record, size_t Offset, size_t Len)
      : Record(std::move(Record)), Offset(Offset), Len(Len) {}

  const uint8_t *data() const { return Record.data() + Offset; }
  size_t size() const { return Len; }

private:
  std::vector<uint8_t> Record;
  size_t Offset;
  size_t Len;
};

/// One on-disk artifact cache rooted at a directory.
class ArtifactCache {
public:
  /// Opens (creating if needed) the cache at \p Dir. \p MaxBytes caps the
  /// total size of stored entries (0 = uncapped). \p EvictGraceMs is the
  /// concurrent-reader grace window: eviction skips entries touched more
  /// recently than this (0 = none; supervised batch workers default it
  /// on). If the directory cannot be created the disk tier is disabled:
  /// loads miss, stores are dropped. An empty \p Dir silently disables the
  /// disk tier (mem-only operation once a hot tier is attached).
  explicit ArtifactCache(std::string Dir, uint64_t MaxBytes = 0,
                         uint64_t EvictGraceMs = 0);

  /// True when any tier can serve loads (disk usable or hot tier attached).
  bool enabled() const { return Enabled || Mem != nullptr; }
  const std::string &dir() const { return Dir; }

  /// Layers the in-memory hot tier \p M (not owned; must outlive the
  /// cache) over the disk. Pass nullptr to detach.
  void attachMemTier(MemCache *M);
  MemCache *memTier() const { return Mem; }

  /// Composes the content address for one phase entry:
  /// "<phase>-<hex16(fnv(input fp | config fp | format version))>".
  static std::string makeKey(const char *Phase, const std::string &InputFp,
                             const std::string &ConfigFp);

  /// Loads the record payload stored under \p Key after verifying the
  /// record header (magic, version, kind, size, checksum). Returns nullopt
  /// on miss or on any verification failure (counted, logged, entry
  /// deleted). A hit refreshes the entry's LRU position.
  std::optional<LoadedPayload> load(const std::string &Key, ArtifactKind Kind);

  /// Stores \p Payload under \p Key (atomic temp-file + rename), then
  /// evicts least-recently-used entries down to the byte cap.
  void store(const std::string &Key, ArtifactKind Kind,
             const std::vector<uint8_t> &Payload);

  /// Reports that a payload passed record verification but failed
  /// structural restoration: counted as corrupt, logged, entry deleted.
  void noteRestoreFailure(const std::string &Key);

  /// Exports persist.hit / persist.miss / persist.store / persist.evict /
  /// persist.evict_skipped / persist.corrupt / persist.version_miss /
  /// persist.touch_failed counters.
  void exportStats(Stats &S) const;

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t stores() const { return Stores; }
  uint64_t evictions() const { return Evictions; }
  uint64_t evictSkips() const { return EvictSkipped; }
  uint64_t corruptions() const { return Corrupt; }
  /// Well-formed entries from another format generation: counted as a
  /// clean miss (plus this), never as corruption.
  uint64_t versionMisses() const { return VersionMiss; }
  /// Hits whose LRU mtime refresh failed (e.g. a read-only cache dir):
  /// the payload is still served, but eviction order is rotting.
  uint64_t touchFailures() const { return TouchFailed; }
  /// Hits served by the attached hot tier (0 when none is attached).
  uint64_t memHits() const;
  /// Payloads admitted into the attached hot tier (0 when none).
  uint64_t memStores() const;

private:
  std::string pathFor(const std::string &Key) const;
  void dropEntry(const std::string &Key, const std::string &Why);
  void evictToCap();

  std::string Dir;
  uint64_t MaxBytes;
  uint64_t EvictGraceMs;
  bool Enabled = false;
  MemCache *Mem = nullptr;
  mutable std::mutex Mu;
  uint64_t Hits = 0, Misses = 0, Stores = 0, Evictions = 0, EvictSkipped = 0,
           Corrupt = 0, VersionMiss = 0, TouchFailed = 0;
};

/// The SDG phase bundle a slicer needs: the graph, the heap graph it was
/// restored/built against, and (unless the CS channel budget tripped) the
/// materialized heap edges.
struct SdgArtifacts {
  std::unique_ptr<SDG> G;
  std::unique_ptr<HeapGraph> HG;
  std::unique_ptr<HeapEdges> HE;
  bool FromCache = false;
};

/// Phase-boundary load-or-compute hook shared by the three slicers: when
/// \p Cache holds a valid entry for \p Key, restores the SDG + heap edges;
/// otherwise builds them cold (byte-identical to the uncached path) and —
/// if the build completed without a governance stop — stores the result.
/// HE is null exactly when the CS channel budget was exceeded.
SdgArtifacts loadOrBuildSdg(const Program &P, const ClassHierarchy &CHA,
                            const PointsToSolver &Solver, const SDGOptions &SO,
                            uint32_t NestedDepth, ArtifactCache *Cache,
                            const std::string &Key);

} // namespace persist
} // namespace taj

#endif // TAJ_PERSIST_CACHE_H
