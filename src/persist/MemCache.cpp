//===- persist/MemCache.cpp - In-memory hot artifact tier ------*- C++ -*-===//

#include "persist/MemCache.h"

#include "support/Stats.h"

using namespace taj;
using namespace taj::persist;

std::optional<std::vector<uint8_t>> MemCache::get(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return std::nullopt;
  }
  Lru.splice(Lru.begin(), Lru, It->second);
  ++Hits;
  return It->second->Payload;
}

void MemCache::put(const std::string &Key, const uint8_t *Data, size_t Len) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (MaxBytes != 0 && Len > MaxBytes)
    return; // would evict the whole tier for one entry
  auto It = Index.find(Key);
  if (It != Index.end()) {
    CurBytes -= It->second->Payload.size();
    It->second->Payload.assign(Data, Data + Len);
    CurBytes += Len;
    Lru.splice(Lru.begin(), Lru, It->second);
  } else {
    Lru.push_front(Entry{Key, std::vector<uint8_t>(Data, Data + Len)});
    Index.emplace(Key, Lru.begin());
    CurBytes += Len;
  }
  ++Stores;
  evictToCapLocked();
}

void MemCache::erase(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end())
    return;
  CurBytes -= It->second->Payload.size();
  Lru.erase(It->second);
  Index.erase(It);
}

void MemCache::evictToCapLocked() {
  if (MaxBytes == 0)
    return;
  while (CurBytes > MaxBytes && !Lru.empty()) {
    Entry &Victim = Lru.back();
    CurBytes -= Victim.Payload.size();
    Index.erase(Victim.Key);
    Lru.pop_back();
    ++Evictions;
  }
}

uint64_t MemCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Hits;
}

uint64_t MemCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Misses;
}

uint64_t MemCache::stores() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stores;
}

uint64_t MemCache::evictions() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Evictions;
}

uint64_t MemCache::bytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return CurBytes;
}

uint64_t MemCache::entries() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Lru.size();
}

void MemCache::exportStats(Stats &S) const {
  std::lock_guard<std::mutex> Lock(Mu);
  S.add("persist.mem_hit", Hits);
  S.add("persist.mem_miss", Misses);
  S.add("persist.mem_store", Stores);
  S.add("persist.mem_evict", Evictions);
}
