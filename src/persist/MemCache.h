//===- persist/MemCache.h - In-memory hot artifact tier --------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hot tier of the artifact store: a byte-capped LRU map from cache
/// keys to verified record payloads, held in memory by a long-lived
/// process (an analysis-server worker) and layered over the on-disk
/// ArtifactCache. A hit skips both recomputation *and* the disk read +
/// checksum verification — payloads enter the tier only after they passed
/// record verification (on promotion from disk) or came straight from the
/// serializer (on store), so they are served back without re-validation.
///
/// Coherence with the disk tier is structural: keys are content addresses
/// (input fingerprint + config fingerprint + format version), so an entry
/// can never go stale — a changed input or config is a different key. The
/// only invalidation path is noteRestoreFailure() on the owning
/// ArtifactCache, which drops the key from both tiers.
///
/// Thread safety: all operations are mutex-protected; the tier may be
/// probed concurrently by parallel slicing threads through the owning
/// cache.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_PERSIST_MEMCACHE_H
#define TAJ_PERSIST_MEMCACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace taj {

class Stats;

namespace persist {

/// Byte-capped LRU cache of verified artifact payloads.
class MemCache {
public:
  /// \p MaxBytes caps the summed payload sizes (0 = uncapped). An entry
  /// larger than the cap by itself is never admitted.
  explicit MemCache(uint64_t MaxBytes = 0) : MaxBytes(MaxBytes) {}

  /// Returns a copy of the payload stored under \p Key, refreshing its
  /// LRU position; nullopt on miss.
  std::optional<std::vector<uint8_t>> get(const std::string &Key);

  /// Inserts (or refreshes) \p Key -> the \p Len bytes at \p Data, then
  /// evicts least-recently-used entries down to the byte cap.
  void put(const std::string &Key, const uint8_t *Data, size_t Len);

  /// Drops \p Key (restore-failure invalidation; no-op when absent).
  void erase(const std::string &Key);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t stores() const;
  uint64_t evictions() const;
  /// Current summed payload bytes.
  uint64_t bytes() const;
  /// Current entry count.
  uint64_t entries() const;

  /// Exports persist.mem_{hit,miss,store,evict} counters.
  void exportStats(Stats &S) const;

private:
  struct Entry {
    std::string Key;
    std::vector<uint8_t> Payload;
  };

  /// Evicts from the LRU tail until CurBytes <= MaxBytes. Caller holds Mu.
  void evictToCapLocked();

  uint64_t MaxBytes;
  mutable std::mutex Mu;
  std::list<Entry> Lru; ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> Index;
  uint64_t CurBytes = 0;
  uint64_t Hits = 0, Misses = 0, Stores = 0, Evictions = 0;
};

} // namespace persist
} // namespace taj

#endif // TAJ_PERSIST_MEMCACHE_H
