//===- persist/Serialize.cpp - Artifact encoding/restoration ---*- C++ -*-===//

#include "persist/Serialize.h"

#include <algorithm>

using namespace taj;
using namespace taj::persist;

uint64_t persist::fnv1a(const void *Data, size_t N, uint64_t Seed) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t K = 0; K < N; ++K) {
    H ^= P[K];
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t persist::fnv1aWords(const void *Data, size_t N) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = 0xcbf29ce484222325ull;
  size_t K = 0;
  for (; K + 8 <= N; K += 8) {
    // Little-endian word assembly keeps the digest host-independent.
    uint64_t W = 0;
    for (int B = 0; B < 8; ++B)
      W |= static_cast<uint64_t>(P[K + B]) << (8 * B);
    H ^= W;
    H *= 0x100000001b3ull;
  }
  for (; K < N; ++K) {
    H ^= P[K];
    H *= 0x100000001b3ull;
  }
  return H;
}

std::vector<uint8_t> persist::wrapRecord(ArtifactKind Kind,
                                         const std::vector<uint8_t> &Payload) {
  Writer H;
  H.u32(RecordMagic);
  H.u32(FormatVersion);
  H.u32(static_cast<uint32_t>(Kind));
  H.u32(0); // reserved
  H.u64(Payload.size());
  H.u64(fnv1aWords(Payload.data(), Payload.size()));
  std::vector<uint8_t> Out = H.bytes();
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

UnwrapStatus persist::unwrapRecordEx(const std::vector<uint8_t> &Record,
                                     ArtifactKind Expect,
                                     const uint8_t *&Payload,
                                     size_t &PayloadLen, std::string &Err) {
  constexpr size_t HeaderLen = 4 * 4 + 2 * 8;
  if (Record.size() < HeaderLen) {
    Err = "record shorter than header";
    return UnwrapStatus::Corrupt;
  }
  Reader R(Record.data(), Record.size());
  uint32_t Magic = R.u32();
  uint32_t Version = R.u32();
  uint32_t Kind = R.u32();
  R.u32(); // reserved
  uint64_t Size = R.u64();
  uint64_t Sum = R.u64();
  if (Magic != RecordMagic) {
    Err = "bad magic";
    return UnwrapStatus::Corrupt;
  }
  if (Version != FormatVersion) {
    // A well-formed record from another format generation: not damage,
    // just unusable — the cache reports it as a version miss.
    Err = "format version " + std::to_string(Version) + " (expected " +
          std::to_string(FormatVersion) + ")";
    return UnwrapStatus::VersionMismatch;
  }
  if (Kind != static_cast<uint32_t>(Expect)) {
    Err = "artifact kind " + std::to_string(Kind) + " (expected " +
          std::to_string(static_cast<uint32_t>(Expect)) + ")";
    return UnwrapStatus::Corrupt;
  }
  if (Size != Record.size() - HeaderLen) {
    Err = "payload size mismatch";
    return UnwrapStatus::Corrupt;
  }
  if (fnv1aWords(Record.data() + HeaderLen, Size) != Sum) {
    Err = "checksum mismatch";
    return UnwrapStatus::Corrupt;
  }
  Payload = Record.data() + HeaderLen;
  PayloadLen = Size;
  return UnwrapStatus::Ok;
}

bool persist::unwrapRecord(const std::vector<uint8_t> &Record,
                           ArtifactKind Expect, const uint8_t *&Payload,
                           size_t &PayloadLen, std::string &Err) {
  return unwrapRecordEx(Record, Expect, Payload, PayloadLen, Err) ==
         UnwrapStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Small encoding helpers
//===----------------------------------------------------------------------===//

namespace {

void putU32Vec(Writer &W, const std::vector<uint32_t> &V) {
  W.u32(static_cast<uint32_t>(V.size()));
  W.u32Array(V.data(), V.size());
}

void putI32Vec(Writer &W, const std::vector<int32_t> &V) {
  W.u32(static_cast<uint32_t>(V.size()));
  // Signed/unsigned variants share a representation; bytes are identical.
  W.u32Array(reinterpret_cast<const uint32_t *>(V.data()), V.size());
}

void putU64Vec(Writer &W, const std::vector<uint64_t> &V) {
  W.u32(static_cast<uint32_t>(V.size()));
  W.u64Array(V.data(), V.size());
}

bool getU32Vec(Reader &R, std::vector<uint32_t> &V) {
  uint32_t N = R.count(4);
  V.resize(N);
  return R.u32Array(V.data(), N) && !R.failed();
}

bool getI32Vec(Reader &R, std::vector<int32_t> &V) {
  uint32_t N = R.count(4);
  V.resize(N);
  return R.u32Array(reinterpret_cast<uint32_t *>(V.data()), N) && !R.failed();
}

bool getU64Vec(Reader &R, std::vector<uint64_t> &V) {
  uint32_t N = R.count(8);
  V.resize(N);
  return R.u64Array(V.data(), N) && !R.failed();
}

/// True when every element of \p V is < \p Bound (InvalidId allowed when
/// \p AllowInvalid).
bool allBelow(const std::vector<uint32_t> &V, size_t Bound,
              bool AllowInvalid = false) {
  for (uint32_t X : V)
    if (X >= Bound && !(AllowInvalid && X == InvalidId))
      return false;
  return true;
}

void putType(Writer &W, const Type &T) {
  W.u8(static_cast<uint8_t>(T.Kind));
  W.u32(T.Cls);
}

bool getType(Reader &R, Type &T, size_t NumClasses) {
  uint8_t K = R.u8();
  T.Cls = R.u32();
  if (R.failed() || K > static_cast<uint8_t>(TypeKind::Array))
    return false;
  T.Kind = static_cast<TypeKind>(K);
  if (T.isRefLike() && T.Cls >= NumClasses)
    return false;
  return true;
}

/// Serializes an unordered map<u32, vector<u32>> with keys sorted, so the
/// encoded bytes are deterministic across runs.
void putU32VecMap(Writer &W,
                  const std::unordered_map<uint32_t, std::vector<uint32_t>> &M) {
  std::vector<uint32_t> Keys;
  Keys.reserve(M.size());
  for (const auto &[K, V] : M)
    Keys.push_back(K);
  std::sort(Keys.begin(), Keys.end());
  W.u32(static_cast<uint32_t>(Keys.size()));
  for (uint32_t K : Keys) {
    W.u32(K);
    putU32Vec(W, M.at(K));
  }
}

bool getU32VecMap(Reader &R,
                  std::unordered_map<uint32_t, std::vector<uint32_t>> &M) {
  uint32_t N = R.count(8);
  for (uint32_t K = 0; K < N; ++K) {
    uint32_t Key = R.u32();
    std::vector<uint32_t> V;
    if (!getU32Vec(R, V) || M.count(Key))
      return false;
    M.emplace(Key, std::move(V));
  }
  return !R.failed();
}

} // namespace

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

namespace {

void putInstruction(Writer &W, const Instruction &I) {
  W.u8(static_cast<uint8_t>(I.Op));
  W.u8(static_cast<uint8_t>(I.CKind));
  W.i32(I.Dst);
  putI32Vec(W, I.Args);
  W.u32(I.Field);
  W.u32(I.Cls);
  W.u32(I.StrLit);
  W.i64(I.IntLit);
  W.u32(I.CalleeName);
  W.i32(I.Target);
  W.i32(I.Target2);
  W.u32(I.Line);
}

bool getInstruction(Reader &R, Instruction &I, size_t NumSyms) {
  uint8_t Op = R.u8();
  uint8_t CK = R.u8();
  if (Op > static_cast<uint8_t>(Opcode::Throw) ||
      CK > static_cast<uint8_t>(CallKind::Special))
    return false;
  I.Op = static_cast<Opcode>(Op);
  I.CKind = static_cast<CallKind>(CK);
  I.Dst = R.i32();
  if (!getI32Vec(R, I.Args))
    return false;
  I.Field = R.u32();
  I.Cls = R.u32();
  I.StrLit = R.u32();
  I.IntLit = R.i64();
  I.CalleeName = R.u32();
  I.Target = R.i32();
  I.Target2 = R.i32();
  I.Line = R.u32();
  if (I.StrLit >= NumSyms || I.CalleeName >= NumSyms)
    return false;
  return !R.failed();
}

} // namespace

void Access::serializeProgram(const Program &P, Writer &W) {
  // String pool, in symbol order (symbol 0, the empty string, is implicit
  // in every fresh pool and skipped).
  W.u32(static_cast<uint32_t>(P.Pool.size()));
  for (Symbol S = 1; S < P.Pool.size(); ++S)
    W.str(P.Pool.str(S));

  W.u32(static_cast<uint32_t>(P.Fields.size()));
  for (const Field &F : P.Fields) {
    W.u32(F.Name);
    W.u32(F.Owner);
    putType(W, F.Ty);
    W.u8(F.IsStatic);
  }

  W.u32(static_cast<uint32_t>(P.Classes.size()));
  for (const Class &C : P.Classes) {
    W.u32(C.Name);
    W.u32(C.Id);
    W.u32(C.Super);
    W.u32(C.Flags);
    putU32Vec(W, C.Fields);
    putU32Vec(W, C.Methods);
  }

  W.u32(static_cast<uint32_t>(P.Methods.size()));
  for (const Method &M : P.Methods) {
    W.u32(M.Name);
    W.u32(M.Owner);
    W.u32(M.Id);
    W.u32(static_cast<uint32_t>(M.ParamTypes.size()));
    for (const Type &T : M.ParamTypes)
      putType(W, T);
    putType(W, M.RetType);
    uint8_t Flags = (M.IsStatic ? 1 : 0) | (M.InSSA ? 2 : 0) |
                    (M.IsEntry ? 4 : 0) | (M.IsFactory ? 8 : 0);
    W.u8(Flags);
    W.u8(M.SourceRules);
    W.u8(M.SanitizerRules);
    W.u8(M.SinkRules);
    W.u32(M.SinkParamMask);
    W.u8(static_cast<uint8_t>(M.Intr));
    W.u32(M.NumParams);
    W.u32(M.NumValues);
    W.u32(static_cast<uint32_t>(M.Blocks.size()));
    for (const BasicBlock &B : M.Blocks) {
      W.u32(static_cast<uint32_t>(B.Insts.size()));
      for (const Instruction &I : B.Insts)
        putInstruction(W, I);
      putI32Vec(W, B.Succs);
      putI32Vec(W, B.Preds);
    }
  }
}

bool Access::restoreProgram(Program &P, Reader &R) {
  if (P.Pool.size() != 1 || !P.Classes.empty() || !P.Methods.empty() ||
      !P.Fields.empty())
    return false; // caller must hand us a pristine program

  uint32_t NumSyms = R.count(1);
  if (R.failed() || NumSyms == 0)
    return false;
  for (Symbol S = 1; S < NumSyms; ++S) {
    std::string Str = R.str();
    if (R.failed() || P.Pool.intern(Str) != S)
      return false; // duplicate or out-of-order string
  }

  uint32_t NumFields = R.count(14);
  P.Fields.resize(NumFields);
  for (Field &F : P.Fields) {
    F.Name = R.u32();
    F.Owner = R.u32();
    // The class count is not known yet; ref bounds are checked below.
    if (!getType(R, F.Ty, static_cast<size_t>(InvalidId) + 1))
      return false;
    F.IsStatic = R.u8() != 0;
    if (F.Name >= NumSyms)
      return false;
  }

  uint32_t NumClasses = R.count(24);
  P.Classes.resize(NumClasses);
  for (uint32_t K = 0; K < NumClasses; ++K) {
    Class &C = P.Classes[K];
    C.Name = R.u32();
    C.Id = R.u32();
    C.Super = R.u32();
    C.Flags = R.u32();
    if (!getU32Vec(R, C.Fields) || !getU32Vec(R, C.Methods))
      return false;
    if (C.Name >= NumSyms || C.Id != K ||
        (C.Super != InvalidId && C.Super >= NumClasses) ||
        !allBelow(C.Fields, NumFields))
      return false;
  }
  for (Field &F : P.Fields)
    if (F.Owner >= NumClasses ||
        (F.Ty.isRefLike() && F.Ty.Cls >= NumClasses))
      return false;

  uint32_t NumMethods = R.count(40);
  P.Methods.resize(NumMethods);
  for (uint32_t K = 0; K < NumMethods; ++K) {
    Method &M = P.Methods[K];
    M.Name = R.u32();
    M.Owner = R.u32();
    M.Id = R.u32();
    uint32_t NumParams = R.count(5);
    M.ParamTypes.resize(NumParams);
    for (Type &T : M.ParamTypes)
      if (!getType(R, T, NumClasses))
        return false;
    if (!getType(R, M.RetType, NumClasses))
      return false;
    uint8_t Flags = R.u8();
    M.IsStatic = Flags & 1;
    M.InSSA = Flags & 2;
    M.IsEntry = Flags & 4;
    M.IsFactory = Flags & 8;
    M.SourceRules = R.u8();
    M.SanitizerRules = R.u8();
    M.SinkRules = R.u8();
    M.SinkParamMask = R.u32();
    uint8_t Intr = R.u8();
    if (Intr > static_cast<uint8_t>(Intrinsic::GetMessage))
      return false;
    M.Intr = static_cast<Intrinsic>(Intr);
    M.NumParams = R.u32();
    M.NumValues = R.u32();
    uint32_t NumBlocks = R.count(12);
    M.Blocks.resize(NumBlocks);
    for (BasicBlock &B : M.Blocks) {
      uint32_t NumInsts = R.count(46);
      B.Insts.resize(NumInsts);
      for (Instruction &I : B.Insts)
        if (!getInstruction(R, I, NumSyms))
          return false;
      if (!getI32Vec(R, B.Succs) || !getI32Vec(R, B.Preds))
        return false;
      for (int32_t Succ : B.Succs)
        if (Succ < 0 || static_cast<uint32_t>(Succ) >= NumBlocks)
          return false;
    }
    if (M.Name >= NumSyms || M.Owner >= NumClasses || M.Id != K ||
        (Flags & ~0xfu) != 0)
      return false;
  }
  for (const Class &C : P.Classes)
    if (!allBelow(C.Methods, NumMethods))
      return false;

  if (R.failed() || !R.atEnd())
    return false;
  P.indexStatements();
  return true;
}

//===----------------------------------------------------------------------===//
// Points-to solution
//===----------------------------------------------------------------------===//

void Access::serializeSolver(const PointsToSolver &S, Writer &W) {
  // Contexts (table index order; index 0 is the implicit Everywhere).
  const ContextTable &Ctxs = S.Ctxs;
  W.u32(static_cast<uint32_t>(Ctxs.size()));
  for (CtxId C = 1; C < Ctxs.size(); ++C) {
    const ContextData &D = Ctxs.data(C);
    W.u8(static_cast<uint8_t>(D.Kind));
    W.u32(D.Data);
    W.u32(Ctxs.depth(C));
  }

  // Instance keys / pointer keys, in intern order.
  W.u32(static_cast<uint32_t>(S.IKs.size()));
  for (IKId I = 0; I < S.IKs.size(); ++I) {
    const InstanceKeyData &D = S.IKs.data(I);
    W.u8(static_cast<uint8_t>(D.Kind));
    W.u32(D.Site);
    W.u32(D.Heap);
    W.u32(D.Cls);
    W.u32(D.Extra);
  }
  W.u32(static_cast<uint32_t>(S.PKs.size()));
  for (PKId I = 0; I < S.PKs.size(); ++I) {
    const PointerKeyData &D = S.PKs.data(I);
    W.u8(static_cast<uint8_t>(D.Kind));
    W.u32(D.A);
    W.u32(D.B);
  }

  // Call graph: nodes, out-edges, in-edges, the context-merged site->callee
  // projection (whose per-site callee order is edge insertion order and
  // cannot be reconstructed from the edges — serialized verbatim).
  // Call-graph nodes and out-edges as struct-of-arrays columns (same
  // rationale as the SDG tables: bulk column reads on restore).
  const CallGraph &CG = S.CG;
  const uint32_t NumCgNodes = static_cast<uint32_t>(CG.Nodes.size());
  W.u32(NumCgNodes);
  {
    std::vector<uint32_t> C32(NumCgNodes);
    std::vector<uint8_t> C8(NumCgNodes);
    for (uint32_t I = 0; I < NumCgNodes; ++I)
      C32[I] = CG.Nodes[I].M;
    W.u32Array(C32.data(), NumCgNodes);
    for (uint32_t I = 0; I < NumCgNodes; ++I)
      C32[I] = CG.Nodes[I].Ctx;
    W.u32Array(C32.data(), NumCgNodes);
    for (uint32_t I = 0; I < NumCgNodes; ++I)
      C8[I] = CG.Nodes[I].ConstraintsAdded;
    W.raw(C8.data(), NumCgNodes);
  }
  {
    std::vector<uint32_t> Counts(NumCgNodes);
    size_t Total = 0;
    for (uint32_t I = 0; I < NumCgNodes; ++I) {
      Counts[I] = static_cast<uint32_t>(CG.Out[I].size());
      Total += CG.Out[I].size();
    }
    W.u32Array(Counts.data(), NumCgNodes);
    std::vector<uint32_t> Col;
    Col.reserve(Total);
    for (const std::vector<CGEdge> &Edges : CG.Out)
      for (const CGEdge &E : Edges)
        Col.push_back(E.Site);
    W.u32Array(Col.data(), Total);
    Col.clear();
    for (const std::vector<CGEdge> &Edges : CG.Out)
      for (const CGEdge &E : Edges)
        Col.push_back(E.Callee);
    W.u32Array(Col.data(), Total);
  }
  for (const std::vector<CGNodeId> &Preds : CG.In)
    putU32Vec(W, Preds);
  putU32VecMap(W, CG.SiteCallees);

  // Points-to sets (v2): the fully compressed cycle-collapse
  // representative column, then for each representative (ascending id)
  // the sparse-bitmap chunks — word-index vector + bit-word vector.
  // Non-representatives carry no set; queries resolve through the column.
  // The per-PK tables are padded past PKs.size() (growTablesSlow); the
  // padding slots are empty and self-representative, so only the slots
  // backing real keys are written.
  const uint32_t NumPts =
      static_cast<uint32_t>(std::min(S.Pts.size(), S.PKs.size()));
  W.u32(NumPts);
  W.u32Array(S.RepParent.data(), NumPts);
  for (PKId I = 0; I < NumPts; ++I) {
    if (S.RepParent[I] != I)
      continue;
    putU32Vec(W, S.Pts[I].wordIndices());
    putU64Vec(W, S.Pts[I].words());
  }

  putU32VecMap(W, S.Channels);
  putU32VecMap(W, S.IntrinsicCallees);
  W.u8(S.BudgetHit);
}

bool Access::restoreSolver(PointsToSolver &S, Reader &R) {
  if (S.Solved || S.IKs.size() != 0 || S.PKs.size() != 0 ||
      S.CG.numNodes() != 0)
    return false; // must be a freshly constructed solver

  const size_t NumStmts = S.P.numStmts();
  const size_t NumMethods = S.P.Methods.size();
  const size_t NumClasses = S.P.Classes.size();

  // Contexts: re-intern in order through the public constructors, checking
  // that each lands on its original id (the tables are deterministic
  // interners, so any divergence means corruption).
  uint32_t NumCtxs = R.count(9);
  if (R.failed() || NumCtxs == 0)
    return false;
  S.Ctxs.reserve(NumCtxs);
  for (CtxId C = 1; C < NumCtxs; ++C) {
    uint8_t Kind = R.u8();
    uint32_t Data = R.u32();
    uint32_t Depth = R.u32();
    CtxId Got;
    if (Kind == static_cast<uint8_t>(ContextKind::CallSite) && Depth == 1)
      Got = S.Ctxs.callSite(Data);
    else if (Kind == static_cast<uint8_t>(ContextKind::Receiver) && Depth >= 1)
      Got = S.Ctxs.receiver(Data, Depth - 1);
    else
      return false;
    if (Got != C || S.Ctxs.depth(C) != Depth)
      return false;
  }

  uint32_t NumIKs = R.count(17);
  S.IKs.reserve(NumIKs);
  for (IKId I = 0; I < NumIKs; ++I) {
    InstanceKeyData D;
    uint8_t Kind = R.u8();
    if (Kind > static_cast<uint8_t>(IKKind::Singleton))
      return false;
    D.Kind = static_cast<IKKind>(Kind);
    D.Site = R.u32();
    D.Heap = R.u32();
    D.Cls = R.u32();
    D.Extra = R.u32();
    if (R.failed() || D.Site >= NumStmts || D.Heap >= NumCtxs ||
        (D.Cls != InvalidId && D.Cls >= NumClasses))
      return false;
    if (S.IKs.intern(D) != I)
      return false;
  }
  // Receiver contexts name instance keys; check now that both exist.
  for (CtxId C = 1; C < NumCtxs; ++C) {
    const ContextData &D = S.Ctxs.data(C);
    if (D.Kind == ContextKind::Receiver && D.Data >= NumIKs)
      return false;
    if (D.Kind == ContextKind::CallSite && D.Data >= NumStmts)
      return false;
  }

  uint32_t NumPKs = R.count(9);
  S.PKs.reserve(NumPKs);
  for (PKId I = 0; I < NumPKs; ++I) {
    PointerKeyData D;
    uint8_t Kind = R.u8();
    if (Kind > static_cast<uint8_t>(PKKind::Channel))
      return false;
    D.Kind = static_cast<PKKind>(Kind);
    D.A = R.u32();
    D.B = R.u32();
    if (R.failed())
      return false;
    switch (D.Kind) {
    case PKKind::Field:
    case PKKind::ArrayElem:
    case PKKind::Channel:
      if (D.A >= NumIKs)
        return false;
      break;
    case PKKind::Static:
      if (D.A >= S.P.Fields.size())
        return false;
      break;
    default:
      break; // Local/Ret reference CG nodes, validated below
    }
    if (S.PKs.intern(D) != I)
      return false;
  }

  // Call graph.
  uint32_t NumNodes = R.count(9);
  S.CG.Nodes.resize(NumNodes);
  S.CG.Out.resize(NumNodes);
  S.CG.In.resize(NumNodes);
  S.CG.NodeMap.reserve(NumNodes);
  {
    std::vector<uint32_t> C32(NumNodes);
    std::vector<uint8_t> C8(NumNodes);
    if (!R.u32Array(C32.data(), NumNodes))
      return false;
    for (CGNodeId N = 0; N < NumNodes; ++N)
      S.CG.Nodes[N].M = C32[N];
    if (!R.u32Array(C32.data(), NumNodes))
      return false;
    for (CGNodeId N = 0; N < NumNodes; ++N)
      S.CG.Nodes[N].Ctx = C32[N];
    if (!R.raw(C8.data(), NumNodes))
      return false;
    for (CGNodeId N = 0; N < NumNodes; ++N)
      S.CG.Nodes[N].ConstraintsAdded = C8[N] != 0;
  }
  for (CGNodeId N = 0; N < NumNodes; ++N) {
    const CGNode &Node = S.CG.Nodes[N];
    if (Node.M >= NumMethods || Node.Ctx >= NumCtxs)
      return false;
    // Rebuild the intern map and per-method index; node creation order is
    // id order, so ByMethod lists come back in their original order.
    uint64_t Key = (static_cast<uint64_t>(Node.M) << 32) | Node.Ctx;
    if (!S.CG.NodeMap.emplace(Key, N).second)
      return false; // duplicate (method, context) pair
    S.CG.ByMethod[Node.M].push_back(N);
    if (Node.ConstraintsAdded)
      ++S.CG.Processed;
  }
  {
    std::vector<uint32_t> Counts(NumNodes);
    if (!R.u32Array(Counts.data(), NumNodes))
      return false;
    uint64_t Total = 0;
    for (uint32_t C : Counts)
      Total += C;
    // Each edge still needs 8 payload bytes; a corrupt count column cannot
    // force a huge allocation past this check.
    if (Total > R.remaining())
      return false;
    std::vector<uint32_t> Sites(Total), Callees(Total);
    if (!R.u32Array(Sites.data(), Total) || !R.u32Array(Callees.data(), Total))
      return false;
    size_t Idx = 0;
    for (CGNodeId N = 0; N < NumNodes; ++N) {
      S.CG.Out[N].resize(Counts[N]);
      for (CGEdge &E : S.CG.Out[N]) {
        E.Site = Sites[Idx];
        E.Callee = Callees[Idx];
        ++Idx;
        if (E.Site >= NumStmts || E.Callee >= NumNodes)
          return false;
      }
    }
  }
  for (CGNodeId N = 0; N < NumNodes; ++N)
    if (!getU32Vec(R, S.CG.In[N]) || !allBelow(S.CG.In[N], NumNodes))
      return false;
  {
    std::unordered_map<uint32_t, std::vector<uint32_t>> Sites;
    if (!getU32VecMap(R, Sites))
      return false;
    for (const auto &[Site, Callees] : Sites)
      if (Site >= NumStmts || !allBelow(Callees, NumMethods))
        return false;
    S.CG.SiteCallees = std::move(Sites);
  }
  // Local/Ret pointer keys name call-graph nodes.
  for (PKId I = 0; I < NumPKs; ++I) {
    const PointerKeyData &D = S.PKs.data(I);
    if ((D.Kind == PKKind::Local || D.Kind == PKKind::Ret) && D.A >= NumNodes)
      return false;
  }

  uint32_t NumPts = R.count(4);
  if (NumPts > NumPKs)
    return false;
  S.RepParent.resize(NumPts);
  if (!R.u32Array(S.RepParent.data(), NumPts))
    return false;
  // The column must be idempotent (fully compressed) and in range.
  for (PKId I = 0; I < NumPts; ++I) {
    PKId Rp = S.RepParent[I];
    if (Rp >= NumPts || S.RepParent[Rp] != Rp)
      return false;
  }
  S.Pts.resize(NumPts);
  for (PKId I = 0; I < NumPts; ++I) {
    if (S.RepParent[I] != I)
      continue;
    std::vector<uint32_t> Idx;
    std::vector<uint64_t> Words;
    if (!getU32Vec(R, Idx) || !getU64Vec(R, Words))
      return false;
    // assign() rejects unsorted/duplicate chunk indices and zero words.
    if (!S.Pts[I].assign(std::move(Idx), std::move(Words)))
      return false;
    if (!S.Pts[I].empty()) {
      const std::vector<uint32_t> &WI = S.Pts[I].wordIndices();
      const std::vector<uint64_t> &Wd = S.Pts[I].words();
      uint32_t MaxBit =
          (WI.back() << 6) + (63 - static_cast<uint32_t>(
                                       std::countl_zero(Wd.back())));
      if (MaxBit >= NumIKs)
        return false;
    }
  }

  if (!getU32VecMap(R, S.Channels))
    return false;
  for (const auto &[IK, PKVec] : S.Channels)
    if (IK >= NumIKs || !allBelow(PKVec, NumPKs))
      return false;
  if (!getU32VecMap(R, S.IntrinsicCallees))
    return false;
  for (const auto &[Site, Callees] : S.IntrinsicCallees)
    if (Site >= NumStmts || !allBelow(Callees, NumMethods))
      return false;

  S.BudgetHit = R.u8() != 0;
  if (R.failed() || !R.atEnd())
    return false;
  S.Solved = true;
  return true;
}

//===----------------------------------------------------------------------===//
// SDG + heap edges
//===----------------------------------------------------------------------===//

void Access::serializeSdg(const SDG &G, const HeapEdges *HE, Writer &W) {
  W.u32(static_cast<uint32_t>(G.Owners.size()));
  for (const SDG::OwnerInfo &O : G.Owners) {
    W.u32(O.M);
    W.u32(O.CgNode);
  }

  // Nodes and edges as struct-of-arrays: one column per field, so restore
  // reads whole columns through the bulk array codecs instead of many
  // bounds-checked scalar reads per element (the node/edge tables dominate
  // warm-load time).
  const uint32_t NumNodes = static_cast<uint32_t>(G.Nodes.size());
  W.u32(NumNodes);
  {
    std::vector<uint32_t> C32(NumNodes);
    std::vector<uint8_t> C8(NumNodes);
    auto Col32 = [&](auto Get) {
      for (uint32_t I = 0; I < NumNodes; ++I)
        C32[I] = Get(G.Nodes[I]);
      W.u32Array(C32.data(), NumNodes);
    };
    auto Col8 = [&](auto Get) {
      for (uint32_t I = 0; I < NumNodes; ++I)
        C8[I] = Get(G.Nodes[I]);
      W.raw(C8.data(), NumNodes);
    };
    Col8([](const SDGNode &N) { return static_cast<uint8_t>(N.Kind); });
    Col32([](const SDGNode &N) { return N.Owner; });
    Col32([](const SDGNode &N) { return N.M; });
    Col32([](const SDGNode &N) { return N.S; });
    Col32([](const SDGNode &N) { return N.Index; });
    Col8([](const SDGNode &N) { return static_cast<uint8_t>(N.Access); });
    Col32([](const SDGNode &N) { return N.Aux; });
    Col8([](const SDGNode &N) { return N.SourceMask; });
    Col8([](const SDGNode &N) { return N.SinkMask; });
    Col8([](const SDGNode &N) { return N.SanitizeMask; });
    Col8([](const SDGNode &N) { return static_cast<uint8_t>(N.IsCall); });
  }
  {
    // Per-node out-degree column, then the concatenated target and kind
    // columns over all edges in node order.
    std::vector<uint32_t> Counts(NumNodes);
    size_t Total = 0;
    for (uint32_t I = 0; I < NumNodes; ++I) {
      Counts[I] = static_cast<uint32_t>(G.Succs[I].size());
      Total += G.Succs[I].size();
    }
    W.u32Array(Counts.data(), NumNodes);
    std::vector<uint32_t> Tos;
    std::vector<uint8_t> Kinds;
    Tos.reserve(Total);
    Kinds.reserve(Total);
    for (const std::vector<SDGEdge> &Edges : G.Succs)
      for (const SDGEdge &E : Edges) {
        Tos.push_back(E.To);
        Kinds.push_back(static_cast<uint8_t>(E.Kind));
      }
    W.u32Array(Tos.data(), Total);
    W.raw(Kinds.data(), Total);
  }

  // Call sites, sorted by statement node for deterministic bytes.
  {
    std::vector<SDGNodeId> Keys;
    Keys.reserve(G.CallSites.size());
    for (const auto &[N, CS] : G.CallSites)
      Keys.push_back(N);
    std::sort(Keys.begin(), Keys.end());
    W.u32(static_cast<uint32_t>(Keys.size()));
    for (SDGNodeId N : Keys) {
      const CallSiteInfo &CS = G.CallSites.at(N);
      W.u32(N);
      W.u32(CS.StmtNode);
      putU32Vec(W, CS.Targets);
      putU32Vec(W, CS.ActualIns);
      putU64Vec(W, CS.ChanSigs);
      putU32Vec(W, CS.ChanIns);
      putU32Vec(W, CS.ChanOuts);
    }
  }

  // Per-owner channel signature lists (CS only; empty otherwise).
  {
    std::vector<SDGOwnerId> Keys;
    Keys.reserve(G.OwnerChans.size());
    for (const auto &[O, Sigs] : G.OwnerChans)
      Keys.push_back(O);
    std::sort(Keys.begin(), Keys.end());
    W.u32(static_cast<uint32_t>(Keys.size()));
    for (SDGOwnerId O : Keys) {
      W.u32(O);
      putU64Vec(W, G.OwnerChans.at(O));
    }
  }

  putU32Vec(W, G.Stores);
  putU32Vec(W, G.Loads);
  putU32Vec(W, G.Sinks);
  W.u8(G.ChanOOM);
  W.u64(G.ChanNodes);

  W.u8(HE != nullptr);
  if (HE) {
    std::vector<SDGNodeId> Keys;
    Keys.reserve(HE->Stores.size());
    for (const auto &[N, Info] : HE->Stores)
      Keys.push_back(N);
    std::sort(Keys.begin(), Keys.end());
    W.u32(static_cast<uint32_t>(Keys.size()));
    for (SDGNodeId N : Keys) {
      const HeapEdges::StoreInfo &Info = HE->Stores.at(N);
      W.u32(N);
      putU32Vec(W, Info.Loads);
      putU32Vec(W, Info.CarrierSinks);
    }
  }
}

bool Access::restoreSdg(std::unique_ptr<SDG> &G, std::unique_ptr<HeapEdges> &HE,
                        const Program &P, const PointsToSolver &Solver,
                        const HeapGraph &HG, const SDGOptions &Opts,
                        uint32_t NestedDepth, Reader &R) {
  G.reset();
  HE.reset();
  auto Fail = [&] {
    G.reset();
    HE.reset();
    return false;
  };

  std::unique_ptr<SDG> Out(new SDG(P, Solver, Opts, SDG::RestoreTag{}));
  const size_t NumStmts = P.numStmts();
  const size_t NumMethods = P.Methods.size();
  const size_t NumCgNodes = Solver.callGraph().numNodes();

  uint32_t NumOwners = R.count(8);
  Out->Owners.resize(NumOwners);
  for (SDG::OwnerInfo &O : Out->Owners) {
    O.M = R.u32();
    O.CgNode = R.u32();
    if (R.failed() || O.M >= NumMethods ||
        (O.CgNode != InvalidId && O.CgNode >= NumCgNodes))
      return Fail();
  }

  uint32_t NumNodes = R.count(26);
  Out->Nodes.resize(NumNodes);
  {
    std::vector<uint32_t> C32(NumNodes);
    std::vector<uint8_t> C8(NumNodes);
    auto Col32 = [&](auto Set) {
      if (!R.u32Array(C32.data(), NumNodes))
        return false;
      for (uint32_t I = 0; I < NumNodes; ++I)
        Set(Out->Nodes[I], C32[I]);
      return true;
    };
    auto Col8 = [&](auto Set) {
      if (!R.raw(C8.data(), NumNodes))
        return false;
      for (uint32_t I = 0; I < NumNodes; ++I)
        Set(Out->Nodes[I], C8[I]);
      return true;
    };
    if (!Col8([](SDGNode &N, uint8_t V) {
          N.Kind = static_cast<SDGNodeKind>(V);
        }) ||
        !Col32([](SDGNode &N, uint32_t V) { N.Owner = V; }) ||
        !Col32([](SDGNode &N, uint32_t V) { N.M = V; }) ||
        !Col32([](SDGNode &N, uint32_t V) { N.S = V; }) ||
        !Col32([](SDGNode &N, uint32_t V) { N.Index = V; }) ||
        !Col8([](SDGNode &N, uint8_t V) {
          N.Access = static_cast<HeapAccess>(V);
        }) ||
        !Col32([](SDGNode &N, uint32_t V) { N.Aux = V; }) ||
        !Col8([](SDGNode &N, uint8_t V) { N.SourceMask = V; }) ||
        !Col8([](SDGNode &N, uint8_t V) { N.SinkMask = V; }) ||
        !Col8([](SDGNode &N, uint8_t V) { N.SanitizeMask = V; }) ||
        !Col8([](SDGNode &N, uint8_t V) { N.IsCall = V != 0; }))
      return Fail();
    for (const SDGNode &N : Out->Nodes) {
      if (static_cast<uint8_t>(N.Kind) >
              static_cast<uint8_t>(SDGNodeKind::ChanActualOut) ||
          static_cast<uint8_t>(N.Access) >
              static_cast<uint8_t>(HeapAccess::InvokeArgsRead) ||
          N.Owner >= NumOwners || N.S >= NumStmts ||
          (N.M != InvalidId && N.M >= NumMethods) ||
          (N.Aux != InvalidId && N.Aux >= NumNodes))
        return Fail();
    }
  }
  Out->Succs.resize(NumNodes);
  {
    std::vector<uint32_t> Counts(NumNodes);
    if (!R.u32Array(Counts.data(), NumNodes))
      return Fail();
    uint64_t Total = 0;
    for (uint32_t C : Counts)
      Total += C;
    // Each edge still needs 5 payload bytes, so a corrupt count column
    // cannot force a huge allocation past this check.
    if (Total > R.remaining())
      return Fail();
    std::vector<uint32_t> Tos(Total);
    std::vector<uint8_t> Kinds(Total);
    if (!R.u32Array(Tos.data(), Total) || !R.raw(Kinds.data(), Total))
      return Fail();
    size_t Idx = 0;
    for (uint32_t N = 0; N < NumNodes; ++N) {
      std::vector<SDGEdge> &Edges = Out->Succs[N];
      Edges.resize(Counts[N]);
      for (SDGEdge &E : Edges) {
        E.To = Tos[Idx];
        uint8_t Kind = Kinds[Idx];
        ++Idx;
        if (E.To >= NumNodes ||
            Kind > static_cast<uint8_t>(SDGEdgeKind::ParamOut))
          return Fail();
        E.Kind = static_cast<SDGEdgeKind>(Kind);
      }
    }
  }

  uint32_t NumCallSites = R.count(28);
  Out->CallSites.reserve(NumCallSites);
  for (uint32_t K = 0; K < NumCallSites; ++K) {
    SDGNodeId Key = R.u32();
    CallSiteInfo CS;
    CS.StmtNode = R.u32();
    if (!getU32Vec(R, CS.Targets) || !getU32Vec(R, CS.ActualIns) ||
        !getU64Vec(R, CS.ChanSigs) || !getU32Vec(R, CS.ChanIns) ||
        !getU32Vec(R, CS.ChanOuts))
      return Fail();
    if (Key >= NumNodes || CS.StmtNode >= NumNodes ||
        !allBelow(CS.Targets, NumOwners) ||
        !allBelow(CS.ActualIns, NumNodes) ||
        !allBelow(CS.ChanIns, NumNodes) || !allBelow(CS.ChanOuts, NumNodes))
      return Fail();
    if (!Out->CallSites.emplace(Key, std::move(CS)).second)
      return Fail();
  }

  uint32_t NumOwnerChans = R.count(8);
  for (uint32_t K = 0; K < NumOwnerChans; ++K) {
    SDGOwnerId O = R.u32();
    std::vector<uint64_t> Sigs;
    if (!getU64Vec(R, Sigs) || O >= NumOwners || Out->OwnerChans.count(O))
      return Fail();
    Out->OwnerChans.emplace(O, std::move(Sigs));
  }

  if (!getU32Vec(R, Out->Stores) || !getU32Vec(R, Out->Loads) ||
      !getU32Vec(R, Out->Sinks) || !allBelow(Out->Stores, NumNodes) ||
      !allBelow(Out->Loads, NumNodes) || !allBelow(Out->Sinks, NumNodes))
    return Fail();
  Out->ChanOOM = R.u8() != 0;
  Out->ChanNodes = R.u64();

  bool HasHeapEdges = R.u8() != 0;
  G = std::move(Out);
  if (HasHeapEdges) {
    std::unique_ptr<HeapEdges> E(
        new HeapEdges(P, *G, Solver, HG, NestedDepth, HeapEdges::RestoreTag{}));
    uint32_t NumStores = R.count(12);
    E->Stores.reserve(NumStores);
    for (uint32_t K = 0; K < NumStores; ++K) {
      SDGNodeId N = R.u32();
      HeapEdges::StoreInfo Info;
      if (!getU32Vec(R, Info.Loads) || !getU32Vec(R, Info.CarrierSinks))
        return Fail();
      if (N >= NumNodes || !allBelow(Info.Loads, NumNodes) ||
          !allBelow(Info.CarrierSinks, NumNodes) || E->Stores.count(N))
        return Fail();
      E->Stores.emplace(N, std::move(Info));
    }
    HE = std::move(E);
  }

  if (R.failed() || !R.atEnd())
    return Fail();
  return true;
}
