//===- persist/Serialize.h - Versioned binary artifact encoding -*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of the expensive analysis artifacts — the
/// post-verify `Program`, the points-to solution (contexts, instance and
/// pointer keys, call graph, points-to sets, channels, intrinsic targets)
/// and the SDG + heap-edge bundle — so a later run can warm-start from a
/// content-addressed on-disk cache (persist/Cache.h) instead of
/// recomputing them.
///
/// Encoding rules:
///  - every scalar is written little-endian, explicitly byte by byte, so
///    artifacts are portable across hosts of either endianness;
///  - every record starts with a fixed header: magic "TAJP", the format
///    version, the artifact kind, the payload size and an FNV-1a checksum
///    of the payload. unwrapRecord() verifies all of them before a single
///    payload byte is interpreted;
///  - the Reader is bounds-checked with a sticky failure flag, and every
///    vector count is validated against the remaining payload before
///    allocation, so truncated or bit-flipped records fail cleanly instead
///    of crashing or over-allocating.
///
/// Restoration never trusts partial bytes: each restore*() returns false
/// on any structural inconsistency (id mismatches, out-of-range enum
/// values, dangling indices), and callers fall back to cold computation.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_PERSIST_SERIALIZE_H
#define TAJ_PERSIST_SERIALIZE_H

#include "sdg/SDG.h"
#include "slicer/HeapEdges.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace taj {
namespace persist {

/// Artifact format version; bump on any encoding change so stale cache
/// entries are rejected (and recomputed) instead of misread.
/// v2: points-to sets are stored as sparse-bitmap chunks plus the cycle
/// collapse representative column (was: one sorted u32 vector per key).
inline constexpr uint32_t FormatVersion = 2;

/// Record magic: "TAJP" little-endian.
inline constexpr uint32_t RecordMagic = 0x504a4154u;

/// What a record contains (part of the header; mismatches are rejected).
enum class ArtifactKind : uint32_t {
  Ir = 1,       ///< Post-parse, post-verify Program.
  PointsTo = 2, ///< Points-to solution + call graph.
  Sdg = 3,      ///< SDG + heap-edge bundle for one slicer shape.
};

/// FNV-1a over \p N bytes (cache-key fingerprinting; chainable via Seed).
uint64_t fnv1a(const void *Data, size_t N,
               uint64_t Seed = 0xcbf29ce484222325ull);

/// The record content checksum: FNV-1a folded over little-endian 8-byte
/// words (trailing bytes folded singly). Word granularity keeps checksum
/// verification off the warm-load critical path; the digest is fixed by
/// this definition and part of the on-disk format.
uint64_t fnv1aWords(const void *Data, size_t N);

/// Little-endian append-only byte sink.
class Writer {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int K = 0; K < 4; ++K)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * K)));
  }
  void u64(uint64_t V) {
    for (int K = 0; K < 8; ++K)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * K)));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  /// Appends \p N 32-bit words, little-endian. On little-endian hosts this
  /// is one bulk byte copy — the big vectors (points-to sets, edge lists)
  /// dominate artifact size, so the per-word loop would be the hot spot.
  void u32Array(const uint32_t *V, size_t N) {
    if constexpr (std::endian::native == std::endian::little) {
      const uint8_t *B = reinterpret_cast<const uint8_t *>(V);
      Buf.insert(Buf.end(), B, B + N * 4);
    } else {
      for (size_t K = 0; K < N; ++K)
        u32(V[K]);
    }
  }
  /// Appends \p N raw bytes.
  void raw(const uint8_t *V, size_t N) { Buf.insert(Buf.end(), V, V + N); }
  /// Appends \p N 64-bit words, little-endian (bulk copy where possible).
  void u64Array(const uint64_t *V, size_t N) {
    if constexpr (std::endian::native == std::endian::little) {
      const uint8_t *B = reinterpret_cast<const uint8_t *>(V);
      Buf.insert(Buf.end(), B, B + N * 8);
    } else {
      for (size_t K = 0; K < N; ++K)
        u64(V[K]);
    }
  }
  const std::vector<uint8_t> &bytes() const { return Buf; }

private:
  std::vector<uint8_t> Buf;
};

/// Little-endian bounds-checked byte source. Any out-of-range read sets a
/// sticky failure flag and yields zeros; callers check failed() (or the
/// per-step helpers' returns) before trusting anything.
class Reader {
public:
  Reader(const uint8_t *Data, size_t N) : D(Data), N(N) {}

  bool failed() const { return Fail; }
  bool atEnd() const { return Fail || Pos == N; }
  size_t remaining() const { return N - Pos; }
  void fail() { Fail = true; }

  uint8_t u8() {
    if (!take(1))
      return 0;
    return D[Pos++];
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int K = 0; K < 4; ++K)
      V |= static_cast<uint32_t>(D[Pos++]) << (8 * K);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int K = 0; K < 8; ++K)
      V |= static_cast<uint64_t>(D[Pos++]) << (8 * K);
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str() {
    uint32_t Len = u32();
    if (!take(Len))
      return {};
    std::string S(reinterpret_cast<const char *>(D + Pos), Len);
    Pos += Len;
    return S;
  }

  /// Reads \p N 32-bit little-endian words into \p V (bounds-checked as
  /// one block; bulk byte copy on little-endian hosts).
  bool u32Array(uint32_t *V, size_t N) {
    if (N == 0)
      return true; // V may be a null empty-vector data() pointer
    if (!take(N * 4))
      return false;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(V, D + Pos, N * 4);
      Pos += N * 4;
    } else {
      for (size_t K = 0; K < N; ++K)
        V[K] = u32();
    }
    return true;
  }
  /// Reads \p N raw bytes into \p V (bounds-checked as one block).
  bool raw(uint8_t *V, size_t N) {
    if (N == 0)
      return true; // V may be a null empty-vector data() pointer
    if (!take(N))
      return false;
    std::memcpy(V, D + Pos, N);
    Pos += N;
    return true;
  }
  /// Reads \p N 64-bit little-endian words into \p V.
  bool u64Array(uint64_t *V, size_t N) {
    if (N == 0)
      return true; // V may be a null empty-vector data() pointer
    if (!take(N * 8))
      return false;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(V, D + Pos, N * 8);
      Pos += N * 8;
    } else {
      for (size_t K = 0; K < N; ++K)
        V[K] = u64();
    }
    return true;
  }

  /// Reads a vector length and validates it against the remaining bytes
  /// (each element needs at least \p MinElemBytes), so corrupt counts
  /// cannot trigger huge allocations.
  uint32_t count(size_t MinElemBytes) {
    uint64_t C = u32();
    if (Fail)
      return 0;
    if (MinElemBytes != 0 && C * MinElemBytes > remaining()) {
      Fail = true;
      return 0;
    }
    return static_cast<uint32_t>(C);
  }

private:
  bool take(size_t K) {
    if (Fail || N - Pos < K) {
      Fail = true;
      return false;
    }
    return true;
  }

  const uint8_t *D;
  size_t N;
  size_t Pos = 0;
  bool Fail = false;
};

/// Frames \p Payload as a record: header (magic, version, kind, payload
/// size, FNV-1a checksum) followed by the payload bytes.
std::vector<uint8_t> wrapRecord(ArtifactKind Kind,
                                const std::vector<uint8_t> &Payload);

/// Outcome of header validation: a version mismatch is an expected event
/// after a format bump (the cache treats it as a clean miss), everything
/// else that fails is corruption.
enum class UnwrapStatus {
  Ok,
  VersionMismatch,
  Corrupt,
};

/// Validates the header of \p Record and locates the payload. On any
/// mismatch (magic, version, kind, size, checksum) returns the failure
/// class with a human-readable reason in \p Err; no payload byte is
/// interpreted before every check passes.
UnwrapStatus unwrapRecordEx(const std::vector<uint8_t> &Record,
                            ArtifactKind Expect, const uint8_t *&Payload,
                            size_t &PayloadLen, std::string &Err);

/// Boolean convenience wrapper over unwrapRecordEx for callers that do not
/// distinguish version misses from corruption.
bool unwrapRecord(const std::vector<uint8_t> &Record, ArtifactKind Expect,
                  const uint8_t *&Payload, size_t &PayloadLen,
                  std::string &Err);

/// Serialization/restoration entry points. A single befriended struct
/// keeps the private-state access of CallGraph / PointsToSolver / SDG /
/// HeapEdges in one audited place.
struct Access {
  /// Encodes a post-verify program (string pool in symbol order, classes,
  /// fields, methods with full bodies).
  static void serializeProgram(const Program &P, Writer &W);
  /// Restores into \p P, which must be default-constructed. On success the
  /// statement index is rebuilt; on failure \p P is unusable and must be
  /// discarded.
  static bool restoreProgram(Program &P, Reader &R);

  /// Encodes the post-solve query surface of \p S: context / instance-key /
  /// pointer-key tables, call graph, points-to sets, model channels,
  /// intrinsic call targets and the budget flag.
  static void serializeSolver(const PointsToSolver &S, Writer &W);
  /// Restores into \p S, which must be freshly constructed (same program,
  /// same options) and never solved. On failure \p S may hold partial
  /// state and must be discarded.
  static bool restoreSolver(PointsToSolver &S, Reader &R);

  /// Encodes the SDG (owners, nodes, edges, call sites, channel tables,
  /// store/load/sink indices) plus, when \p HE is non-null, the
  /// materialized heap-edge adjacency.
  static void serializeSdg(const SDG &G, const HeapEdges *HE, Writer &W);
  /// Restores an SDG (and heap edges, when the record carries them)
  /// against the live \p P / \p Solver / \p HG. \p HE is left null when
  /// the record has no heap edges (CS channel-budget overflow). On failure
  /// both out-params are reset to null.
  static bool restoreSdg(std::unique_ptr<SDG> &G,
                         std::unique_ptr<HeapEdges> &HE, const Program &P,
                         const PointsToSolver &Solver, const HeapGraph &HG,
                         const SDGOptions &Opts, uint32_t NestedDepth,
                         Reader &R);
};

} // namespace persist
} // namespace taj

#endif // TAJ_PERSIST_SERIALIZE_H
