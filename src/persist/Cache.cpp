//===- persist/Cache.cpp - Content-addressed artifact cache ----*- C++ -*-===//

#include "persist/Cache.h"

#include "persist/MemCache.h"
#include "support/RunGuard.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

using namespace taj;
using namespace taj::persist;

namespace fs = std::filesystem;

namespace {

constexpr const char *EntrySuffix = ".tajc";

void diag(const std::string &What, const std::string &Why) {
  std::fprintf(stderr, "taj-persist: %s: %s; recomputing cold\n", What.c_str(),
               Why.c_str());
}

} // namespace

ArtifactCache::ArtifactCache(std::string Dir, uint64_t MaxBytes,
                             uint64_t EvictGraceMs)
    : Dir(std::move(Dir)), MaxBytes(MaxBytes), EvictGraceMs(EvictGraceMs) {
  if (this->Dir.empty())
    return; // mem-only operation: no disk tier, and no diagnostic
  std::error_code Ec;
  fs::create_directories(this->Dir, Ec);
  Enabled = !Ec && fs::is_directory(this->Dir, Ec) && !Ec;
  if (!Enabled)
    diag("cache directory '" + this->Dir + "'",
         Ec ? Ec.message() : "not a directory");
}

void ArtifactCache::attachMemTier(MemCache *M) {
  std::lock_guard<std::mutex> Lock(Mu);
  Mem = M;
}

uint64_t ArtifactCache::memHits() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Mem ? Mem->hits() : 0;
}

uint64_t ArtifactCache::memStores() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Mem ? Mem->stores() : 0;
}

std::string ArtifactCache::makeKey(const char *Phase,
                                   const std::string &InputFp,
                                   const std::string &ConfigFp) {
  uint64_t H = fnv1a(InputFp.data(), InputFp.size());
  H = fnv1a("|", 1, H);
  H = fnv1a(ConfigFp.data(), ConfigFp.size(), H);
  H = fnv1a("|", 1, H);
  uint32_t V = FormatVersion;
  H = fnv1a(&V, sizeof(V), H);
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(H));
  return std::string(Phase) + "-" + Hex;
}

std::string ArtifactCache::pathFor(const std::string &Key) const {
  return Dir + "/" + Key + EntrySuffix;
}

std::optional<LoadedPayload> ArtifactCache::load(const std::string &Key,
                                                 ArtifactKind Kind) {
  trace::Span TS("cache-load: " + Key, "persist");
  std::lock_guard<std::mutex> Lock(Mu);
  // Hot tier first: the payload was verified when it entered the tier, so
  // a hit skips the disk read and the checksum re-verify entirely.
  if (Mem) {
    if (std::optional<std::vector<uint8_t>> V = Mem->get(Key)) {
      ++Hits;
      trace::addInstant("cache-hit(mem): " + Key, "persist");
      const size_t Len = V->size();
      return LoadedPayload(std::move(*V), 0, Len);
    }
  }
  if (!Enabled) {
    ++Misses;
    return std::nullopt;
  }
  const std::string Path = pathFor(Key);
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In) {
    ++Misses;
    trace::addInstant("cache-miss: " + Key, "persist");
    return std::nullopt;
  }
  const std::streamoff Size = In.tellg();
  In.seekg(0);
  std::vector<uint8_t> Record(Size > 0 ? static_cast<size_t>(Size) : 0);
  if (!Record.empty())
    In.read(reinterpret_cast<char *>(Record.data()),
            static_cast<std::streamsize>(Record.size()));
  if (In.bad() || In.gcount() != static_cast<std::streamsize>(Record.size())) {
    ++Corrupt;
    diag("cache entry " + Key, "read failed");
    std::error_code Ec;
    fs::remove(Path, Ec);
    return std::nullopt;
  }
  const uint8_t *Payload = nullptr;
  size_t PayloadLen = 0;
  std::string Err;
  switch (unwrapRecordEx(Record, Kind, Payload, PayloadLen, Err)) {
  case UnwrapStatus::Ok:
    break;
  case UnwrapStatus::VersionMismatch:
    // A well-formed record from another format generation (e.g. a cache
    // dir shared across binary versions): a clean miss, not corruption.
    // The stale entry is removed so the slot is rebuilt at this version.
    ++VersionMiss;
    ++Misses;
    diag("cache entry " + Key, Err);
    {
      std::error_code Ec;
      fs::remove(Path, Ec);
    }
    return std::nullopt;
  case UnwrapStatus::Corrupt:
    ++Corrupt;
    diag("cache entry " + Key, Err);
    {
      std::error_code Ec;
      fs::remove(Path, Ec);
    }
    return std::nullopt;
  }
  ++Hits;
  trace::addInstant("cache-hit: " + Key, "persist");
  // Promote into the hot tier: the next load of this key (this process's
  // next request over the same app) is served from memory.
  if (Mem)
    Mem->put(Key, Payload, PayloadLen);
  // Refresh the LRU position so a warm working set survives eviction.
  std::error_code Ec;
  fs::last_write_time(Path, fs::file_time_type::clock::now(), Ec);
  if (Ec) {
    // E.g. a read-only cache dir: the payload is still good (the hit
    // stands), but eviction order is rotting — surface it instead of
    // ignoring the error.
    ++TouchFailed;
    std::fprintf(stderr,
                 "taj-persist: cache entry %s: LRU touch failed: %s\n",
                 Key.c_str(), Ec.message().c_str());
  }
  const size_t Offset = static_cast<size_t>(Payload - Record.data());
  return LoadedPayload(std::move(Record), Offset, PayloadLen);
}

void ArtifactCache::store(const std::string &Key, ArtifactKind Kind,
                          const std::vector<uint8_t> &Payload) {
  trace::Span TS("cache-store: " + Key, "persist");
  std::lock_guard<std::mutex> Lock(Mu);
  // The hot tier takes the raw payload (it never re-verifies); the disk
  // gets the wrapped, checksummed record.
  if (Mem)
    Mem->put(Key, Payload.data(), Payload.size());
  if (!Enabled) {
    if (Mem)
      ++Stores; // mem-only operation: the store still happened
    return;
  }
  std::vector<uint8_t> Record = wrapRecord(Kind, Payload);
  const std::string Path = pathFor(Key);
  // Pid-unique temp name: concurrent supervised workers may store the
  // same key into a shared directory, and two writers interleaving into
  // one ".tmp" file would rename a corrupt record into place.
  const std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out ||
        !Out.write(reinterpret_cast<const char *>(Record.data()),
                   static_cast<std::streamsize>(Record.size()))) {
      diag("cache store " + Key, "write failed");
      std::error_code Ec;
      fs::remove(Tmp, Ec);
      return;
    }
  }
  std::error_code Ec;
  fs::rename(Tmp, Path, Ec);
  if (Ec) {
    diag("cache store " + Key, Ec.message());
    fs::remove(Tmp, Ec);
    return;
  }
  ++Stores;
  evictToCap();
}

void ArtifactCache::noteRestoreFailure(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Corrupt;
  diag("cache entry " + Key, "structural restore failed");
  if (Mem)
    Mem->erase(Key); // both tiers drop the key together
  if (Enabled) {
    std::error_code Ec;
    fs::remove(pathFor(Key), Ec);
  }
}

void ArtifactCache::evictToCap() {
  if (MaxBytes == 0)
    return;
  struct Entry {
    fs::path Path;
    uint64_t Size;
    fs::file_time_type MTime;
  };
  const fs::file_time_type Now = fs::file_time_type::clock::now();
  const fs::file_time_type GraceEdge =
      Now - std::chrono::milliseconds(EvictGraceMs);
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  std::error_code Ec;
  for (const auto &DE : fs::directory_iterator(Dir, Ec)) {
    if (Ec)
      break;
    const fs::path &P = DE.path();
    if (P.extension() != EntrySuffix) {
      // Sweep a crashed worker's abandoned temp files ("<key>.tajc.tmp.
      // <pid>") once they are older than the grace window; a younger temp
      // may still be mid-write by a live process.
      if (EvictGraceMs != 0 &&
          P.filename().native().find(".tajc.tmp.") != std::string::npos) {
        std::error_code E2;
        fs::file_time_type MT = fs::last_write_time(P, E2);
        if (!E2 && MT < GraceEdge)
          fs::remove(P, E2);
      }
      continue;
    }
    std::error_code E2;
    uint64_t Size = fs::file_size(P, E2);
    if (E2)
      continue;
    fs::file_time_type MT = fs::last_write_time(P, E2);
    if (E2)
      continue;
    Entries.push_back({P, Size, MT});
    Total += Size;
  }
  if (Total <= MaxBytes)
    return;
  // Oldest first; ties (coarse mtime clocks) broken by name so eviction
  // order is deterministic.
  std::sort(Entries.begin(), Entries.end(), [](const Entry &A, const Entry &B) {
    if (A.MTime != B.MTime)
      return A.MTime < B.MTime;
    return A.Path.native() < B.Path.native();
  });
  for (const Entry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    if (EvictGraceMs != 0 && E.MTime >= GraceEdge) {
      // Recently stored or loaded: a concurrent worker may be mid-read.
      // Entries are sorted oldest-first, so everything from here on is
      // younger and equally protected.
      EvictSkipped +=
          static_cast<uint64_t>(&Entries.back() - &E) + 1;
      break;
    }
    std::error_code E2;
    if (fs::remove(E.Path, E2) && !E2) {
      Total -= E.Size;
      ++Evictions;
    }
  }
}

void ArtifactCache::exportStats(Stats &S) const {
  std::lock_guard<std::mutex> Lock(Mu);
  S.add("persist.hit", Hits);
  S.add("persist.miss", Misses);
  S.add("persist.store", Stores);
  S.add("persist.evict", Evictions);
  S.add("persist.evict_skipped", EvictSkipped);
  S.add("persist.corrupt", Corrupt);
  S.add("persist.version_miss", VersionMiss);
  S.add("persist.touch_failed", TouchFailed);
  if (Mem)
    Mem->exportStats(S);
}

//===----------------------------------------------------------------------===//
// Phase-boundary hook: SDG + heap edges
//===----------------------------------------------------------------------===//

SdgArtifacts persist::loadOrBuildSdg(const Program &P,
                                     const ClassHierarchy &CHA,
                                     const PointsToSolver &Solver,
                                     const SDGOptions &SO, uint32_t NestedDepth,
                                     ArtifactCache *Cache,
                                     const std::string &Key) {
  SdgArtifacts A;
  RunGuard *Guard = SO.Guard;
  const bool UseCache = Cache && Cache->enabled() && !Key.empty();

  if (UseCache) {
    PhaseScope PS(SO.Profile, "persist_load");
    if (std::optional<LoadedPayload> Payload =
            Cache->load(Key, ArtifactKind::Sdg)) {
      // The heap graph is cheap and deterministic; rebuild it live so the
      // restored HeapEdges can bind a valid reference.
      A.HG = std::make_unique<HeapGraph>(Solver);
      Reader R(Payload->data(), Payload->size());
      if (Access::restoreSdg(A.G, A.HE, P, Solver, *A.HG, SO, NestedDepth,
                             R)) {
        A.FromCache = true;
        return A;
      }
      Cache->noteRestoreFailure(Key);
      A.G.reset();
      A.HE.reset();
      A.HG.reset();
    }
  }

  // Cold path: exactly the construction sequence the slicers always ran.
  A.G = std::make_unique<SDG>(P, CHA, Solver, SO);
  if (!A.G->chanBudgetExceeded()) {
    A.HG = std::make_unique<HeapGraph>(Solver);
    A.HE = std::make_unique<HeapEdges>(P, *A.G, Solver, *A.HG, NestedDepth,
                                       Guard);
  }

  // Store only artifacts from clean builds: a governance stop (deadline,
  // memory, fault injection) truncates nondeterministically, and a CS
  // channel-budget overflow changes the degraded-run banner's work counts,
  // so neither may be replayed from cache.
  if (UseCache && (!Guard || !Guard->stopped()) && !A.G->chanBudgetExceeded()) {
    PhaseScope PS(SO.Profile, "persist_store");
    Writer W;
    Access::serializeSdg(*A.G, A.HE.get(), W);
    Cache->store(Key, ArtifactKind::Sdg, W.bytes());
  }
  return A;
}
