//===- report/Lcp.h - Library call points ----------------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Library call points (TAJ §5): the last statement along a flow where
/// data passes from application code into library code. Flows that share
/// an LCP and remediation action (issue type) are redundant — fixing the
/// representative fixes them all.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_REPORT_LCP_H
#define TAJ_REPORT_LCP_H

#include "slicer/Issue.h"

namespace taj {

/// True if statement \p S lives in a method of a library-flagged class.
bool isLibraryStmt(const Program &P, StmtId S);

/// The LCP of flow \p I: the last application statement on the path from
/// which data proceeds into library code; falls back to the sink
/// statement when the path never crosses into a library.
StmtId computeLcp(const Program &P, const Issue &I);

} // namespace taj

#endif // TAJ_REPORT_LCP_H
