//===- report/ReportGenerator.h - LCP-grouped reporting --------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Redundancy elimination per TAJ §5: flows are grouped into equivalence
/// classes by (library call point, remediation action), one representative
/// per class is reported, and the report renders source -> LCP -> sink
/// with the issue type — the compact, action-oriented format the paper
/// argues for.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_REPORT_REPORTGENERATOR_H
#define TAJ_REPORT_REPORTGENERATOR_H

#include "report/Lcp.h"
#include "support/RunGuard.h"

#include <string>
#include <vector>

namespace taj {

/// One user-facing report: a representative flow plus the size of its
/// equivalence class.
struct Report {
  Issue Representative;
  StmtId Lcp = 0;
  uint32_t GroupSize = 0;
};

/// Groups \p Issues by (LCP, rule) and picks the shortest flow of each
/// class as representative. Output is deterministic (sorted).
std::vector<Report> generateReports(const Program &P,
                                    const std::vector<Issue> &Issues);

/// Renders reports as human-readable text ("source -> LCP -> sink").
/// When \p Status names a degraded run, a banner states which phase was
/// cut short and why, so readers know the issue list is a lower bound.
std::string renderReports(const Program &P, const std::vector<Report> &Rs,
                          const RunStatus *Status = nullptr);

/// Renders one statement as "Class.method:line#stmt".
std::string describeStmt(const Program &P, StmtId S);

} // namespace taj

#endif // TAJ_REPORT_REPORTGENERATOR_H
