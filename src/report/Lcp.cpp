//===- report/Lcp.cpp ------------------------------------------*- C++ -*-===//

#include "report/Lcp.h"

using namespace taj;

bool taj::isLibraryStmt(const Program &P, StmtId S) {
  const StmtRef &R = P.stmtRef(S);
  const Method &M = P.Methods[R.M];
  return P.Classes[M.Owner].is(classflags::Library);
}

StmtId taj::computeLcp(const Program &P, const Issue &I) {
  if (I.Path.empty())
    return I.Sink;
  StmtId Lcp = I.Sink;
  bool Found = false;
  for (size_t K = 0; K < I.Path.size(); ++K) {
    if (isLibraryStmt(P, I.Path[K]))
      continue;
    bool NextIsLibrary =
        K + 1 < I.Path.size() ? isLibraryStmt(P, I.Path[K + 1]) : true;
    if (NextIsLibrary) {
      Lcp = I.Path[K];
      Found = true;
    }
  }
  // A flow entirely inside library code has no app-side call point; the
  // sink itself is reported (the developer cannot remediate elsewhere).
  return Found ? Lcp : I.Sink;
}
