//===- report/ReportGenerator.cpp ------------------------------*- C++ -*-===//

#include "report/ReportGenerator.h"

#include <algorithm>
#include <map>

using namespace taj;

std::string taj::describeStmt(const Program &P, StmtId S) {
  const StmtRef &R = P.stmtRef(S);
  const Instruction &I = P.stmt(S);
  std::string Out = P.methodName(R.M);
  Out += ":";
  Out += std::to_string(I.Line);
  Out += "#";
  Out += std::to_string(S);
  return Out;
}

std::vector<Report> taj::generateReports(const Program &P,
                                         const std::vector<Issue> &Issues) {
  // Equivalence classes: (LCP, remediation action = rule kind).
  std::map<std::pair<StmtId, RuleMask>, Report> Groups;
  for (const Issue &I : Issues) {
    StmtId Lcp = computeLcp(P, I);
    auto Key = std::make_pair(Lcp, I.Rule);
    auto It = Groups.find(Key);
    if (It == Groups.end()) {
      Report R;
      R.Representative = I;
      R.Lcp = Lcp;
      R.GroupSize = 1;
      Groups.emplace(Key, std::move(R));
      continue;
    }
    ++It->second.GroupSize;
    if (I.Length < It->second.Representative.Length)
      It->second.Representative = I;
  }
  std::vector<Report> Out;
  Out.reserve(Groups.size());
  for (auto &[Key, R] : Groups)
    Out.push_back(std::move(R));
  return Out;
}

std::string taj::renderReports(const Program &P,
                               const std::vector<Report> &Rs,
                               const RunStatus *Status) {
  std::string Out;
  if (Status && Status->degraded()) {
    Out += "## degraded run (";
    Out += Status->toString();
    Out += "): reported issues are a lower bound\n";
  }
  for (const Report &R : Rs) {
    Out += rules::ruleName(R.Representative.Rule);
    Out += ": ";
    Out += describeStmt(P, R.Representative.Source);
    Out += " -> ";
    Out += describeStmt(P, R.Lcp);
    Out += " -> ";
    Out += describeStmt(P, R.Representative.Sink);
    if (R.GroupSize > 1) {
      Out += " (+";
      Out += std::to_string(R.GroupSize - 1);
      Out += " redundant flows)";
    }
    Out += '\n';
  }
  return Out;
}
