//===- server/Service.cpp - Single-app analysis service --------*- C++ -*-===//

#include "server/Service.h"

#include "core/TaintAnalysis.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "persist/Cache.h"
#include "report/ReportGenerator.h"
#include "support/Trace.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include <sys/stat.h>

using namespace taj;
using namespace taj::server;

bool server::parseNum(const char *Flag, const char *Text, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Text, &End);
  if (*Text == '\0' || *End != '\0' || Out < 0) {
    std::fprintf(stderr, "error: %s requires a non-negative number, got '%s'\n",
                 Flag, Text);
    return false;
  }
  return true;
}

bool server::parseUInt(const char *Flag, const char *Text, uint64_t Max,
                       uint64_t &Out) {
  double V;
  if (!parseNum(Flag, Text, V))
    return false;
  if (V != std::floor(V) || V > static_cast<double>(Max)) {
    std::fprintf(stderr,
                 "error: %s value '%s' is out of range (integer 0..%llu)\n",
                 Flag, Text, static_cast<unsigned long long>(Max));
    return false;
  }
  Out = static_cast<uint64_t>(V);
  return true;
}

bool server::parseU32(const char *Flag, const char *Text, uint32_t &Out) {
  uint64_t V;
  if (!parseUInt(Flag, Text, UINT32_MAX, V))
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

OptionParse server::parseRunOption(const char *A, RunOptions &O) {
  auto Bad = [](bool Ok) { return Ok ? OptionParse::Matched : OptionParse::Bad; };
  if (std::strncmp(A, "--config=", 9) == 0) {
    O.ConfigName = A + 9;
    return OptionParse::Matched;
  }
  if (std::strncmp(A, "--budget=", 9) == 0)
    return Bad(parseU32("--budget", A + 9, O.Budget));
  if (std::strncmp(A, "--max-flow-length=", 18) == 0)
    return Bad(parseU32("--max-flow-length", A + 18, O.MaxLen));
  if (std::strncmp(A, "--nested-depth=", 15) == 0)
    return Bad(parseU32("--nested-depth", A + 15, O.NestedDepth));
  if (std::strncmp(A, "--threads=", 10) == 0)
    return Bad(parseU32("--threads", A + 10, O.Threads));
  if (std::strncmp(A, "--deadline-ms=", 14) == 0)
    return Bad(parseNum("--deadline-ms", A + 14, O.DeadlineMs));
  if (std::strncmp(A, "--max-memory-mb=", 16) == 0)
    return Bad(parseUInt("--max-memory-mb", A + 16, MaxExactU64, O.MaxMemoryMb));
  if (std::strncmp(A, "--fail-at=", 10) == 0)
    return Bad(parseUInt("--fail-at", A + 10, MaxExactU64, O.FailAt));
  if (std::strncmp(A, "--crash-at=", 11) == 0)
    return Bad(parseUInt("--crash-at", A + 11, MaxExactU64, O.CrashAt));
  if (std::strncmp(A, "--hang-at=", 10) == 0)
    return Bad(parseUInt("--hang-at", A + 10, MaxExactU64, O.HangAt));
  if (std::strncmp(A, "--string-analysis=", 18) == 0) {
    if (!parseStringAnalysisMode(A + 18, O.StringAnalysis)) {
      std::fprintf(stderr,
                   "error: --string-analysis requires off|local|ipa, "
                   "got '%s'\n",
                   A + 18);
      return OptionParse::Bad;
    }
    return OptionParse::Matched;
  }
  if (std::strncmp(A, "--verify=", 9) == 0) {
    if (!verify::parseVerifyMode(A + 9, O.Verify)) {
      std::fprintf(stderr, "error: --verify requires off|fast|full, got '%s'\n",
                   A + 9);
      return OptionParse::Bad;
    }
    return OptionParse::Matched;
  }
  if (std::strcmp(A, "--raw") == 0) {
    O.Raw = true;
    return OptionParse::Matched;
  }
  if (std::strcmp(A, "--dump-ir") == 0) {
    O.DumpIr = true;
    return OptionParse::Matched;
  }
  if (std::strcmp(A, "--stats") == 0) {
    O.ShowStats = true;
    return OptionParse::Matched;
  }
  return OptionParse::NoMatch;
}

bool server::buildConfig(const RunOptions &O, AnalysisConfig &C) {
  if (O.ConfigName == "hybrid")
    C = AnalysisConfig::hybridUnbounded();
  else if (O.ConfigName == "hybrid-prioritized")
    C = AnalysisConfig::hybridPrioritized(O.Budget ? O.Budget : 20000);
  else if (O.ConfigName == "hybrid-optimized")
    C = AnalysisConfig::hybridOptimized(O.Budget ? O.Budget : 20000);
  else if (O.ConfigName == "cs")
    C = AnalysisConfig::cs();
  else if (O.ConfigName == "ci")
    C = AnalysisConfig::ci();
  else {
    std::fprintf(stderr, "error: unknown config '%s'\n", O.ConfigName.c_str());
    return false;
  }
  if (O.Budget)
    C.MaxCallGraphNodes = O.Budget;
  if (O.MaxLen)
    C.MaxFlowLength = O.MaxLen;
  C.NestedTaintDepth = O.NestedDepth;
  C.Threads = O.Threads; // 0 defers to TAJ_THREADS / hardware concurrency
  // Explicit flags win over the TAJ_* environment (TaintAnalysis overlays
  // the environment only onto unset limits, since flags default to 0 the
  // overlay applies exactly when no flag was given).
  if (O.DeadlineMs > 0)
    C.DeadlineMs = O.DeadlineMs;
  if (O.MaxMemoryMb)
    C.MaxMemoryMb = O.MaxMemoryMb;
  if (O.FailAt)
    C.FailAtCheckpoint = O.FailAt;
  if (O.CrashAt)
    C.CrashAtCheckpoint = O.CrashAt;
  if (O.HangAt)
    C.HangAtCheckpoint = O.HangAt;
  C.StringAnalysis = O.StringAnalysis;
  C.Verify = O.Verify;
  return true;
}

std::vector<std::string> server::encodeRunOptions(const RunOptions &O) {
  std::vector<std::string> A;
  A.push_back("--config=" + O.ConfigName);
  if (O.Budget)
    A.push_back("--budget=" + std::to_string(O.Budget));
  if (O.MaxLen)
    A.push_back("--max-flow-length=" + std::to_string(O.MaxLen));
  A.push_back("--nested-depth=" + std::to_string(O.NestedDepth));
  A.push_back("--threads=" + std::to_string(O.Threads));
  if (O.DeadlineMs > 0)
    A.push_back("--deadline-ms=" + std::to_string(O.DeadlineMs));
  if (O.MaxMemoryMb)
    A.push_back("--max-memory-mb=" + std::to_string(O.MaxMemoryMb));
  if (O.FailAt)
    A.push_back("--fail-at=" + std::to_string(O.FailAt));
  if (O.CrashAt)
    A.push_back("--crash-at=" + std::to_string(O.CrashAt));
  if (O.HangAt)
    A.push_back("--hang-at=" + std::to_string(O.HangAt));
  A.push_back(std::string("--string-analysis=") +
              stringAnalysisModeName(O.StringAnalysis));
  // Always explicit: the built-in default is build-type dependent (fast in
  // debug/sanitizer builds), so worker argv must pin what the parent chose.
  A.push_back(std::string("--verify=") + verify::verifyModeName(O.Verify));
  if (O.Raw)
    A.push_back("--raw");
  if (O.DumpIr)
    A.push_back("--dump-ir");
  if (O.ShowStats)
    A.push_back("--stats");
  return A;
}

std::string server::optionsFingerprint(const RunOptions &O) {
  std::string S = "cfg:" + O.ConfigName + ";b=" + std::to_string(O.Budget) +
                  ";fl=" + std::to_string(O.MaxLen) +
                  ";nd=" + std::to_string(O.NestedDepth) +
                  ";dl=" + std::to_string(O.DeadlineMs) +
                  ";mm=" + std::to_string(O.MaxMemoryMb) +
                  ";fa=" + std::to_string(O.FailAt) +
                  ";ca=" + std::to_string(O.CrashAt) +
                  ";ha=" + std::to_string(O.HangAt) +
                  ";sa=" + stringAnalysisModeName(O.StringAnalysis) +
                  ";vf=" + verify::verifyModeName(O.Verify) +
                  ";raw=" + std::to_string(O.Raw) +
                  ";ir=" + std::to_string(O.DumpIr);
  uint64_t H = persist::fnv1a(S.data(), S.size());
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(H));
  return Hex;
}

RunOptions server::degradeForRetry(const RunOptions &O) {
  RunOptions R = O;
  const DegradationPreset &D = degradationForAttempt(1);
  AnalysisConfig C;
  if (buildConfig(O, C) && C.MaxCallGraphNodes) {
    uint32_t Scaled = static_cast<uint32_t>(
        static_cast<double>(C.MaxCallGraphNodes) * D.CallGraphBudgetScale);
    R.Budget = Scaled ? Scaled : 1;
  }
  if (D.ForceLocalStringAnalysis &&
      R.StringAnalysis == StringAnalysisMode::Ipa)
    R.StringAnalysis = StringAnalysisMode::Local;
  if (D.ForceSingleThread)
    R.Threads = 1;
  if (D.StripFaultInjection)
    R.FailAt = R.CrashAt = R.HangAt = 0;
  return R;
}

bool server::readFileText(const char *Path, std::string &Out,
                          std::string &Err) {
  struct stat St;
  if (::stat(Path, &St) != 0) {
    Err = std::strerror(errno);
    return false;
  }
  if (S_ISDIR(St.st_mode)) {
    Err = "is a directory";
    return false;
  }
  std::ifstream In(Path);
  if (!In) {
    Err = std::strerror(errno);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad()) {
    Err = "read failed";
    return false;
  }
  Out = SS.str();
  return true;
}

RunOutcome server::analyzeApp(const std::vector<AppSource> &Sources,
                              const RunOptions &Opt,
                              persist::ArtifactCache *Cache,
                              Stats *MergedStats) {
  RunOutcome Out;

  // Per-app profile covering parse and report on top of the run-internal
  // phases (handed to the analysis via ExternalProfile). Every return
  // path below exports it, so a failed app still accounts its time.
  PhaseProfile Prof;
  // Unreadable/unparseable inputs must still leave a mark in the stats
  // artifact: the counter tells a supervising parent the app failed on
  // input, not inside the analysis.
  auto FailInput = [&]() -> RunOutcome {
    if (MergedStats) {
      MergedStats->add("cli.input_errors");
      Prof.exportStats(*MergedStats);
    }
    return Out; // Exit stays ExitError
  };

  // Read every input up front: the content fingerprint keys all cache
  // entries, so it must cover exactly the bytes the frontend would parse.
  // Inline sources (server requests) are already in hand.
  std::vector<std::string> Texts(Sources.size());
  bool InputError = false;
  for (size_t I = 0; I < Sources.size(); ++I) {
    if (Sources[I].Inline) {
      Texts[I] = Sources[I].Content;
      continue;
    }
    std::string IoErr;
    if (!readFileText(Sources[I].Name.c_str(), Texts[I], IoErr)) {
      std::fprintf(stderr, "error: cannot read '%s': %s\n",
                   Sources[I].Name.c_str(), IoErr.c_str());
      InputError = true;
    }
  }
  if (InputError)
    return FailInput();

  uint64_t H = persist::fnv1a("taj-input", 9);
  for (const std::string &S : Texts) {
    H = persist::fnv1a(S.data(), S.size(), H);
    H = persist::fnv1a("|", 1, H); // file boundaries matter
  }
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx", static_cast<unsigned long long>(H));
  const std::string InputFp = Hex;

  const bool CacheOn = Cache && Cache->enabled();
  // IR-phase counter baseline: the analysis phases report their own deltas
  // in RunStats, so only the frontend window needs accounting here.
  uint64_t Hit0 = 0, Miss0 = 0, Store0 = 0, Evict0 = 0, Corrupt0 = 0,
           VerMiss0 = 0;
  if (CacheOn) {
    Hit0 = Cache->hits();
    Miss0 = Cache->misses();
    Store0 = Cache->stores();
    Evict0 = Cache->evictions();
    Corrupt0 = Cache->corruptions();
    VerMiss0 = Cache->versionMisses();
  }

  // One violation sink for the whole app: frontend checks below and the
  // analysis-internal checkers (via AnalysisConfig::Violations) fold into
  // it, and any violation fails the run with exit 1 at the bottom.
  verify::Violations Vio;

  // Frontend, warm path: a valid "ir" entry replaces builtin installation,
  // parsing and verification wholesale (the stored program was verified
  // before it was stored). Any restore failure falls back cold.
  auto P = std::make_unique<Program>();
  std::string IrKey;
  bool IrWarm = false;
  if (CacheOn) {
    PhaseScope S(&Prof, "persist_load");
    IrKey = persist::ArtifactCache::makeKey("ir", InputFp, "");
    if (std::optional<persist::LoadedPayload> Payload =
            Cache->load(IrKey, persist::ArtifactKind::Ir)) {
      persist::Reader R(Payload->data(), Payload->size());
      IrWarm = persist::Access::restoreProgram(*P, R);
      if (!IrWarm) {
        Cache->noteRestoreFailure(IrKey);
        P = std::make_unique<Program>(); // restore may leave partial state
      }
    }
  }
  // IRVerifier over a warm restore (--verify=full): the cold path verifies
  // before storing, so a violating restored program means the artifact —
  // not the input — is bad. Count it as a rejected persisted artifact,
  // drop the poisoned entry, and fail the run rather than analyze a
  // structurally broken program.
  if (IrWarm && Opt.Verify == verify::VerifyMode::Full) {
    PhaseScope S(&Prof, "verify");
    const uint64_t Before = Vio.total();
    verify::verifyIr(*P, Vio);
    if (Vio.total() != Before) {
      Vio.noteRestoreRejected();
      Cache->noteRestoreFailure(IrKey);
      if (MergedStats) {
        Vio.exportStats(*MergedStats);
        Prof.exportStats(*MergedStats);
      }
      return Out; // Exit stays ExitError
    }
  }
  if (!IrWarm) {
    PhaseScope S(&Prof, "parse");
    // Frontend: every input file gets its own diagnostics; one bad file
    // does not silently hide behind another, and none aborts the process.
    installBuiltinLibrary(*P);
    for (size_t I = 0; I < Sources.size(); ++I) {
      std::vector<std::string> Errors;
      if (!parseTaj(*P, Texts[I], &Errors)) {
        if (Errors.empty())
          std::fprintf(stderr, "%s: parse failed\n", Sources[I].Name.c_str());
        for (const std::string &E : Errors)
          std::fprintf(stderr, "%s:%s\n", Sources[I].Name.c_str(), E.c_str());
        InputError = true;
      }
    }
    if (InputError)
      return FailInput();
    std::vector<std::string> VErrors = verifyProgram(*P);
    if (!VErrors.empty()) {
      for (const std::string &E : VErrors)
        std::fprintf(stderr, "verifier: %s\n", E.c_str());
      return FailInput();
    }
    if (CacheOn) {
      PhaseScope SS(&Prof, "persist_store");
      persist::Writer W;
      persist::Access::serializeProgram(*P, W);
      Cache->store(IrKey, persist::ArtifactKind::Ir, W.bytes());
    }
  }
  // Frontend-window cache deltas, folded into the run's stats below so
  // --stats and --stats-json see the full per-app persist.* picture.
  uint64_t IrHit = 0, IrMiss = 0, IrStore = 0, IrEvict = 0, IrCorrupt = 0,
           IrVerMiss = 0;
  if (CacheOn) {
    IrHit = Cache->hits() - Hit0;
    IrMiss = Cache->misses() - Miss0;
    IrStore = Cache->stores() - Store0;
    IrEvict = Cache->evictions() - Evict0;
    IrCorrupt = Cache->corruptions() - Corrupt0;
    IrVerMiss = Cache->versionMisses() - VerMiss0;
  }
  if (Opt.DumpIr) {
    std::printf("%s", printProgram(*P).c_str());
    if (MergedStats)
      Prof.exportStats(*MergedStats);
    Out.Exit = ExitClean;
    return Out;
  }

  AnalysisConfig C;
  if (!buildConfig(Opt, C))
    return Out;
  C.Cache = Cache;
  C.InputFingerprint = InputFp;
  C.ExternalProfile = &Prof;
  C.Violations = &Vio;

  MethodId Root = synthesizeEntrypointDriver(*P);
  TaintAnalysis TA(*P, std::move(C));
  AnalysisResult R = TA.run({Root});
  if (CacheOn) {
    R.RunStats.add("persist.hit", IrHit);
    R.RunStats.add("persist.miss", IrMiss);
    R.RunStats.add("persist.store", IrStore);
    R.RunStats.add("persist.evict", IrEvict);
    R.RunStats.add("persist.corrupt", IrCorrupt);
    R.RunStats.add("persist.version_miss", IrVerMiss);
  }

  const bool FailedNoStatus = !R.Completed && !R.degraded();
  if (!FailedNoStatus) {
    if (Opt.Raw) {
      for (const Issue &I : R.Issues)
        std::printf("%s: %s -> %s (length %u)\n", rules::ruleName(I.Rule),
                    describeStmt(*P, I.Source).c_str(),
                    describeStmt(*P, I.Sink).c_str(), I.Length);
    } else {
      PhaseScope RS(&Prof, "report");
      std::printf("%s",
                  renderReports(*P, generateReports(*P, R.Issues), &R.Status)
                      .c_str());
    }
  }

  // The profile now covers parse, report and the run-internal phases;
  // export it into this run's stats before folding them into the merged
  // set (run() skipped the export because the profile is external).
  Prof.exportStats(R.RunStats);
  if (MergedStats)
    MergedStats->merge(R.RunStats); // includes the solver counters

  if (FailedNoStatus) {
    // Legacy CS failure channel with no structured status (should not
    // happen: TaintAnalysis reports it as a memory truncation).
    std::fprintf(stderr, "analysis did not complete\n");
    return Out;
  }
  if (R.degraded())
    std::fprintf(stderr, "run-status: %s\n", R.Status.toString().c_str());
  if (Opt.ShowStats) {
    std::fprintf(stderr, "-- %zu raw flows, %.1f ms, %u call-graph nodes%s\n",
                 R.Issues.size(), R.Millis, R.CgNodesProcessed,
                 R.BudgetExhausted ? " (budget exhausted)" : "");
    std::fprintf(stderr, "%s", R.RunStats.toString().c_str());
  }
  Out.NumIssues = R.Issues.size();
  Out.Exit = R.degraded() ? ExitTruncated : ExitClean;
  // Self-verification trumps the clean/truncated contract: an artifact
  // inconsistency means nothing about this run can be trusted.
  if (Vio.total()) {
    std::fprintf(stderr, "verify: %llu violation(s), failing run\n",
                 static_cast<unsigned long long>(Vio.total()));
    Out.Exit = ExitError;
  }
  // The issue count rides the stats channel so a supervising parent can
  // recover it from the worker's --stats-json file.
  if (MergedStats)
    MergedStats->add("cli.issues", Out.NumIssues);
  return Out;
}
