//===- server/Service.h - Single-app analysis service ----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-app analysis pipeline as a reusable service: everything
/// taj-cli does for one app — read inputs, warm-start the frontend from
/// the artifact cache, run the governed analysis, render the report —
/// factored out of the CLI driver so the analysis server's pool workers
/// run the *same* code path request after request. The option set, its
/// strict flag parsing, its canonical flag re-encoding and the retry
/// degradation all live here too: the CLI, the batch supervisor and the
/// server daemon must agree byte-for-byte on what a configuration means,
/// and one definition is the only way they stay agreed.
///
/// Output contract: analyzeApp() prints the report to stdout (callers
/// that need it as bytes — the server worker — redirect fd 1 around the
/// call) and diagnostics to stderr, exactly like the historical in-CLI
/// path; server-mode output is byte-identical to batch-mode output by
/// construction, not by comparison.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SERVER_SERVICE_H
#define TAJ_SERVER_SERVICE_H

#include "dataflow/ConstString.h"
#include "verify/Verify.h"

#include <cstdint>
#include <string>
#include <vector>

namespace taj {

class Stats;
struct AnalysisConfig;

namespace persist {
class ArtifactCache;
}

namespace server {

/// The documented taj-cli exit contract, shared by every driver.
enum ExitCode { ExitClean = 0, ExitError = 1, ExitTruncated = 2 };

/// Strict numeric flag parsing: "--fail-at=abc" or "--deadline-ms=" must
/// be a usage error, not a silently ignored limit.
bool parseNum(const char *Flag, const char *Text, double &Out);

/// Integer flags additionally range-check before the narrowing cast:
/// "--budget=5e9" must be a usage error, not a silent uint32_t wrap.
bool parseUInt(const char *Flag, const char *Text, uint64_t Max,
               uint64_t &Out);
bool parseU32(const char *Flag, const char *Text, uint32_t &Out);

/// Counter-like uint64 flags stay within double's exact-integer range so
/// the strtod round-trip cannot quietly lose precision.
constexpr uint64_t MaxExactU64 = 1ull << 53;

/// Everything one analysis run needs besides its input files: the
/// analysis-shaping flags of taj-cli, identically interpreted by the CLI,
/// the batch supervisor's workers and the analysis server.
struct RunOptions {
  std::string ConfigName = "hybrid";
  uint32_t Budget = 0, MaxLen = 0, NestedDepth = 32;
  uint32_t Threads = 0; // 0 = auto (TAJ_THREADS, then hardware concurrency)
  double DeadlineMs = 0;
  uint64_t MaxMemoryMb = 0, FailAt = 0, CrashAt = 0, HangAt = 0;
  StringAnalysisMode StringAnalysis = StringAnalysisMode::Ipa;
  /// Self-verification over the run's own artifacts (--verify): any
  /// violation fails the run with exit 1, in every driver mode.
  verify::VerifyMode Verify = verify::defaultMode();
  bool Raw = false, DumpIr = false, ShowStats = false;
};

/// Result of offering one command-line argument to the shared option set.
enum class OptionParse {
  Matched, ///< recognized and applied
  NoMatch, ///< not an analysis option (caller handles or rejects)
  Bad,     ///< recognized but malformed (diagnostic already on stderr)
};

/// Applies \p Arg (e.g. "--budget=100") to \p O when it is one of the
/// shared analysis options. This is the one parser behind taj-cli's
/// analysis flags and the server's per-request config overrides.
OptionParse parseRunOption(const char *Arg, RunOptions &O);

/// Materializes the AnalysisConfig \p O describes (preset + overrides).
/// False (with a stderr diagnostic) on an unknown config name.
bool buildConfig(const RunOptions &O, AnalysisConfig &C);

/// Re-encodes \p O as the canonical flag list parseRunOption() accepts:
/// the wire form for supervised worker argv and server request overrides.
/// A round trip through encode+parse reproduces the run exactly.
std::vector<std::string> encodeRunOptions(const RunOptions &O);

/// Fingerprint of the result-relevant configuration, stamped into journal
/// records so --resume (and the server journal) never trusts records from
/// a differently-configured run. Threads and --stats are excluded: they
/// do not change per-app results.
std::string optionsFingerprint(const RunOptions &O);

/// The degraded flag set for retry attempts, derived from the shared
/// RunGuard degradation preset: halved effective call-graph budget,
/// local-only string analysis, one slicing thread, fault injection
/// stripped.
RunOptions degradeForRetry(const RunOptions &O);

/// One input of an app: a file path, or an inline source shipped over the
/// server protocol (Name is then only a display name for diagnostics).
struct AppSource {
  std::string Name;
  bool Inline = false;
  std::string Content;
};

struct RunOutcome {
  int Exit = ExitError;
  size_t NumIssues = 0;
};

/// Reads \p Path into \p Out; false (with strerror-ish \p Err) on failure.
bool readFileText(const char *Path, std::string &Out, std::string &Err);

/// Analyzes one app (a set of .taj sources forming one program) end to
/// end: frontend (IR cache aware), analysis (points-to/SDG cache aware
/// via AnalysisConfig), report rendering to stdout. \p MergedStats, when
/// set, accumulates every counter for --stats-json; per-run persist.*
/// deltas are windowed, so a long-lived caller (a server worker) gets
/// clean per-request numbers from a shared cache.
RunOutcome analyzeApp(const std::vector<AppSource> &Sources,
                      const RunOptions &Opt, persist::ArtifactCache *Cache,
                      Stats *MergedStats);

} // namespace server
} // namespace taj

#endif // TAJ_SERVER_SERVICE_H
