//===- server/Protocol.h - Analysis-server wire protocol -------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed request/response protocol the analysis server speaks over
/// its Unix-domain socket (and the daemon speaks to its pool workers over
/// socketpairs — one protocol, two transports).
///
/// Framing: every message is one frame — a fixed 8-byte header (4-byte
/// magic "TAJ1", u32 LE payload length) followed by the payload. Payload
/// length is capped at MaxFrameBytes (64 MiB); a peer announcing more is
/// a protocol error and the connection is dropped. All reads and writes
/// go through readFull/writeFull, which retry on EINTR and short
/// transfers — a frame either arrives whole or the connection is dead.
///
/// Payload encoding: length-prefixed fields (u32 LE count, then that many
/// bytes per string field), written/read in fixed order by the serialize/
/// deserialize pairs below. No escaping, no text parsing: report bytes
/// and stats JSON pass through opaquely, which is what keeps server-mode
/// output byte-identical to batch-mode output.
///
/// Status codes: the six-way worker exit classification (supervise::
/// ExitClass) maps 1:1 onto the first six codes, so a client sees exactly
/// what a batch journal would record; the remaining codes are server-side
/// dispositions (admission control, drain, malformed requests).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SERVER_PROTOCOL_H
#define TAJ_SERVER_PROTOCOL_H

#include "server/Service.h"
#include "supervise/Journal.h"

#include <cstdint>
#include <string>
#include <vector>

namespace taj {
namespace server {

/// Frame cap: a request carries inline sources and a response carries a
/// rendered report + stats + trace blob; 64 MiB bounds a hostile or
/// corrupt peer without constraining any realistic app.
constexpr uint32_t MaxFrameBytes = 64u * 1024 * 1024;

/// Frame magic ("TAJ1"), little-endian on the wire.
constexpr uint32_t FrameMagic = 0x314a4154u;

/// Response disposition. The first six mirror supervise::ExitClass; the
/// rest are server-level outcomes that never reach a worker.
enum class Status : uint8_t {
  Ok = 0,        ///< worker exited 0: clean run, report attached
  Truncated = 1, ///< worker exited 2: degraded run, partial report attached
  Error = 2,     ///< worker exited nonzero: analysis/input error
  Crashed = 3,   ///< worker died on a signal (retries exhausted)
  Timeout = 4,   ///< watchdog killed the worker (retries exhausted)
  Oom = 5,       ///< worker hit the memory ceiling (retries exhausted)
  Busy = 6,      ///< admission queue full, request not enqueued
  ShuttingDown = 7, ///< daemon draining, request not enqueued
  BadRequest = 8,   ///< request decoded but invalid (bad flag, no sources)
  ProtocolError = 9, ///< frame/payload undecodable
};

const char *statusName(Status S);

/// Maps a worker exit classification onto the wire status.
Status statusFromExitClass(supervise::ExitClass C);

/// The taj-cli exit code a client should exit with for \p S: Ok -> 0,
/// Truncated -> 2, everything else -> 1 (matching the batch contract
/// where any non-clean worker outcome contributes an error).
int exitCodeForStatus(Status S);

/// One analysis request: an app (either file paths the *server* host can
/// read, or inline source bytes shipped by the client) plus per-request
/// config overrides in the canonical encodeRunOptions() flag form.
struct Request {
  std::vector<AppSource> Sources;
  std::vector<std::string> Overrides;
};

/// One analysis response. Report/StatsJson/TraceBlob are present (possibly
/// empty) for statuses that ran a worker; Message carries a human-readable
/// diagnostic for refusals.
struct Response {
  Status St = Status::Error;
  int32_t Exit = ExitError;
  uint64_t Issues = 0;
  std::string Report;    ///< exact bytes the run printed to stdout
  std::string StatsJson; ///< merged per-request counters as one JSON object
  std::string TraceBlob; ///< comma-joined trace events (merge unit), or empty
  std::string Message;   ///< diagnostic for refusals / failures
};

std::vector<uint8_t> serializeRequest(const Request &R);
bool deserializeRequest(const uint8_t *Data, size_t Len, Request &R);
std::vector<uint8_t> serializeResponse(const Response &R);
bool deserializeResponse(const uint8_t *Data, size_t Len, Response &R);

/// Writes all \p Len bytes of \p Data to \p Fd, retrying on EINTR and
/// short writes. False on any hard write error (including EPIPE — SIGPIPE
/// is ignored process-wide in the CLI).
bool writeFull(int Fd, const void *Data, size_t Len);

/// Reads exactly \p Len bytes, retrying on EINTR and short reads. False
/// on EOF or error.
bool readFull(int Fd, void *Data, size_t Len);

/// Sends one frame (header + payload). False on write failure or an
/// oversized payload.
bool writeFrame(int Fd, const std::vector<uint8_t> &Payload);

/// Appends one frame (header + payload) to \p Out, for senders that must
/// buffer instead of blocking on the fd. False on an oversized payload
/// (\p Out unchanged).
bool appendFrame(std::string &Out, const std::vector<uint8_t> &Payload);

/// Receives one frame payload. False on EOF, read error, bad magic or an
/// oversized announced length.
bool readFrame(int Fd, std::vector<uint8_t> &Payload);

} // namespace server
} // namespace taj

#endif // TAJ_SERVER_PROTOCOL_H
