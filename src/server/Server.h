//===- server/Server.h - Persistent analysis daemon ------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis server: a long-running daemon (`taj-cli --serve=SOCKET`)
/// that accepts analysis requests over a Unix-domain socket and serves
/// them from a pre-forked pool of warm worker processes.
///
/// Why a daemon: batch mode amortizes the artifact cache across one run,
/// but every `--jobs` worker still pays process start, cache open and a
/// cold in-memory state per app. The server keeps PoolSize workers alive
/// across requests; each worker owns the shared on-disk ArtifactCache
/// plus a per-worker in-memory hot tier (persist::MemCache) holding
/// verified payload bytes, so a warm request skips exec, disk reads and
/// checksum re-verification entirely.
///
/// Architecture (single-threaded daemon, process-isolated workers):
///
///   clients --UNIX socket--> daemon --socketpair--> worker[0..N)
///
///  - admission control: a bounded queue (QueueDepth) of decoded,
///    validated requests; a request arriving with the queue full is
///    answered `busy` immediately and never touches a worker;
///  - dispatch: idle workers pull from the queue FIFO; the request's
///    config overrides are re-encoded through the canonical
///    encodeRunOptions() form, so a server request is bit-for-bit the
///    run a batch worker would have performed;
///  - supervision: the Supervisor's non-cooperative discipline, re-hosted
///    on the pool — a per-request watchdog (hard deadline derived from
///    the request's cooperative deadline via deriveHardLimits: 2x + 1s,
///    TAJ_HARD_DEADLINE_MS / TAJ_WATCHDOG_GRACE_MS overridable) with
///    SIGTERM -> SIGKILL escalation, six-way exit classification of dead
///    workers (supervise::classifyWaitStatus) mapped onto protocol
///    status codes, and the same degraded-config retry ladder
///    (degradeForRetry) before a crash/timeout/OOM becomes the client's
///    answer. RLIMIT backstops remain batch-only: a pre-forked worker
///    serves requests with different budgets, and rlimits cannot be
///    raised back once lowered. Workers do install the allocation-failure
///    OOM handler, so bad_alloc still dies as WorkerOomExitCode -> `oom`;
///  - isolation: a crashed worker takes its hot tier with it and is
///    respawned; the daemon, the queue and the other workers are
///    unaffected;
///  - drain: SIGTERM/SIGINT stops accepting (socket closed + unlinked),
///    answers queued requests `shutting-down`, lets in-flight requests
///    finish, reaps the pool, flushes the journal/stats/trace artifacts,
///    and exits 0.
///
/// Observability: `server.{accepted,rejected_busy,served,retried,
/// hot_hits,drained}` counters are stamped into every response's stats
/// blob and the daemon's final --stats-json; with --trace each request
/// occupies a synthetic per-worker lane (tid 1000+worker) in the merged
/// timeline alongside the workers' own phase spans; with --journal every
/// attempt appends the same JSONL records a supervised batch writes.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SERVER_SERVER_H
#define TAJ_SERVER_SERVER_H

#include "server/Protocol.h"
#include "server/Service.h"

#include <cstdint>
#include <string>

namespace taj {
namespace server {

/// Everything the daemon needs: transport, pool shape, admission bounds,
/// the base analysis options requests override, cache configuration and
/// artifact destinations.
struct ServerOptions {
  std::string SocketPath;
  unsigned PoolSize = 2;
  unsigned QueueDepth = 16;
  unsigned MaxRetries = 1;
  RunOptions Base;
  std::string CacheDir; ///< "" = no disk tier (workers run mem-only)
  uint64_t CacheMaxMb = 0;
  uint64_t CacheGraceMs = 0;
  bool CacheGraceSet = false;
  uint64_t HotMaxMb = 256; ///< per-worker hot-tier byte cap (0 = uncapped)
  std::string JournalPath;
  std::string StatsJsonPath;
  std::string TracePath;
};

/// Runs the daemon until a drain signal, serving requests on
/// O.SocketPath. Returns the process exit code: 0 after a clean drain,
/// ExitError when the socket cannot be set up.
int runServer(const ServerOptions &O);

} // namespace server
} // namespace taj

#endif // TAJ_SERVER_SERVER_H
