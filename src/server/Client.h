//===- server/Client.h - Analysis-server client ----------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking client for the analysis server: connect to the daemon's
/// Unix-domain socket, send one Request frame, wait for the Response
/// frame. One request per connection — the connection doubles as the
/// request's lifetime, so a client that dies mid-wait is detected by the
/// daemon as an EOF on the fd and costs nothing to clean up.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SERVER_CLIENT_H
#define TAJ_SERVER_CLIENT_H

#include "server/Protocol.h"

#include <string>

namespace taj {
namespace server {

/// Sends \p Req to the daemon at \p SocketPath and blocks for the
/// response. False (with a diagnostic in \p Err) on connect failure,
/// send failure, or a dropped/undecodable response.
bool requestAnalysis(const std::string &SocketPath, const Request &Req,
                     Response &Resp, std::string &Err);

} // namespace server
} // namespace taj

#endif // TAJ_SERVER_CLIENT_H
