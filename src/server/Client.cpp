//===- server/Client.cpp - Analysis-server client -------------------------===//

#include "server/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace taj;
using namespace taj::server;

bool server::requestAnalysis(const std::string &SocketPath, const Request &Req,
                             Response &Resp, std::string &Err) {
  struct sockaddr_un Addr;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long";
    return false;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int RC;
  do {
    RC = ::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                   sizeof(Addr));
  } while (RC < 0 && errno == EINTR);
  if (RC < 0) {
    Err = "connect '" + SocketPath + "': " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (!writeFrame(Fd, serializeRequest(Req))) {
    Err = "send failed (server gone?)";
    ::close(Fd);
    return false;
  }
  std::vector<uint8_t> Payload;
  if (!readFrame(Fd, Payload)) {
    Err = "no response (server dropped the connection)";
    ::close(Fd);
    return false;
  }
  ::close(Fd);
  if (!deserializeResponse(Payload.data(), Payload.size(), Resp)) {
    Err = "undecodable response";
    return false;
  }
  return true;
}
