//===- server/Server.cpp - Persistent analysis daemon ---------------------===//

#include "server/Server.h"

#include "persist/Cache.h"
#include "persist/MemCache.h"
#include "supervise/Supervisor.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif

using namespace taj;
using namespace taj::server;

namespace {

volatile sig_atomic_t GDrain = 0;

/// Self-pipe: the drain handler writes a byte here and the daemon polls
/// the read end, so a signal landing *between* the GDrain check and
/// poll() still wakes the loop (EINTR alone only covers signals that
/// land while poll() is blocked).
int GWakeFds[2] = {-1, -1};

void drainHandler(int) {
  GDrain = 1;
  if (GWakeFds[1] >= 0) {
    const char B = 1;
    // A full pipe means a wake is already pending; both write() and the
    // EAGAIN it may return are async-signal-safe.
    ssize_t N = ::write(GWakeFds[1], &B, 1);
    (void)N;
  }
}

/// Installs the drain handlers without SA_RESTART, so a signal interrupts
/// poll() with EINTR and the loop notices immediately.
void installDrainHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = drainHandler;
  ::sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
}

/// Extracts one complete frame payload from the front of \p Buf. Returns
/// true when a frame was taken; \p Bad flags an unrecoverable stream
/// (bad magic / oversized length) — the connection must be dropped.
bool takeFrame(std::string &Buf, std::vector<uint8_t> &Payload, bool &Bad) {
  Bad = false;
  if (Buf.size() < 8)
    return false;
  const uint8_t *B = reinterpret_cast<const uint8_t *>(Buf.data());
  uint32_t Magic;
  std::memcpy(&Magic, B, 4);
  if (Magic != FrameMagic) {
    Bad = true;
    return false;
  }
  const uint32_t Len = static_cast<uint32_t>(B[4]) |
                       (static_cast<uint32_t>(B[5]) << 8) |
                       (static_cast<uint32_t>(B[6]) << 16) |
                       (static_cast<uint32_t>(B[7]) << 24);
  if (Len > MaxFrameBytes) {
    Bad = true;
    return false;
  }
  if (Buf.size() < 8 + static_cast<size_t>(Len))
    return false;
  Payload.assign(B + 8, B + 8 + Len);
  Buf.erase(0, 8 + static_cast<size_t>(Len));
  return true;
}

/// One admitted request, from admission through (possibly retried)
/// completion.
struct PendingReq {
  int ClientFd = -1; ///< -1 once the client vanished (outcome discarded)
  std::vector<AppSource> Sources;
  RunOptions Opt; ///< base + overrides, degraded further per retry
  std::string AppName;
  unsigned AttemptNo = 1;
  uint64_t Line = 0; ///< request serial, the journal's line key
  uint64_t BeginUs = 0;
};

/// One pool member. Fd is the daemon side of the socketpair; worker
/// death is detected as EOF on it, then reaped with a blocking waitpid.
struct PoolWorker {
  pid_t Pid = -1;
  int Fd = -1;
  bool Busy = false;
  PendingReq Cur;
  double DeadlineAt = 0; ///< daemon-clock ms of the watchdog SIGTERM (0=off)
  double GraceMs = 2000;
  double KillAt = 0; ///< armed after SIGTERM: ms of the SIGKILL escalation
  bool TermSent = false;
  std::string InBuf;
};

/// One connected client that has not been admitted yet (reading its
/// request frame) or is waiting for its response.
struct ClientConn {
  int Fd = -1;
  std::string Buf;
  bool Admitted = false;
};

/// One response in flight to a client, owned by the send buffer: the fd
/// is non-blocking and whatever write() cannot push immediately drains
/// under POLLOUT, so a client that stops reading (hung, SIGSTOP'd) can
/// never stall the daemon's event loop. DeadlineAt bounds how long a
/// non-reading client may hold the buffered bytes.
struct Outgoing {
  int Fd = -1;
  std::string Buf;
  size_t Off = 0;
  double DeadlineAt = 0; ///< daemon-clock ms after which the client is dropped
};

/// Pushes buffered response bytes. True while the entry still has bytes
/// to drain (keep polling POLLOUT); false once it is finished — fully
/// written, peer gone, or hard error — with the fd closed.
bool flushOutgoing(Outgoing &Wr) {
  while (Wr.Off < Wr.Buf.size()) {
    ssize_t N = ::write(Wr.Fd, Wr.Buf.data() + Wr.Off, Wr.Buf.size() - Wr.Off);
    if (N > 0) {
      Wr.Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;
    break; // EPIPE and friends: the response is undeliverable
  }
  ::close(Wr.Fd);
  Wr.Fd = -1;
  return false;
}

/// The pool worker's request loop: long-lived caches (disk tier shared
/// with every other worker through the filesystem, hot tier private),
/// one spool file for stdout capture, one analysis per request frame.
[[noreturn]] void workerMain(const ServerOptions &O, int Fd) {
  // The daemon's drain handlers were inherited across fork; a watchdog
  // SIGTERM must kill this process, not set a flag in it.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
#if defined(__linux__)
  // No orphans: if the daemon dies, its pool dies with it.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  // Allocation failure dies as the deterministic OOM exit code the
  // daemon's classification understands, not an uncatchable abort.
  supervise::installWorkerOomHandler();

  const uint64_t GraceMs =
      O.CacheGraceSet ? O.CacheGraceMs : (O.CacheDir.empty() ? 0 : 60000);
  persist::ArtifactCache Cache(O.CacheDir, O.CacheMaxMb * 1024 * 1024,
                               GraceMs);
  persist::MemCache Hot(O.HotMaxMb * 1024 * 1024);
  Cache.attachMemTier(&Hot);

  // One anonymous spool file, reused for every request's stdout capture.
  const char *TmpDir = std::getenv("TMPDIR");
  std::string Tmpl = std::string(TmpDir ? TmpDir : "/tmp") +
                     "/taj-serve-spool-XXXXXX";
  std::vector<char> TmplBuf(Tmpl.begin(), Tmpl.end());
  TmplBuf.push_back('\0');
  int Spool = ::mkstemp(TmplBuf.data());
  if (Spool >= 0)
    ::unlink(TmplBuf.data());
  int OrigOut = ::dup(STDOUT_FILENO);

  std::vector<uint8_t> Payload;
  while (readFrame(Fd, Payload)) {
    Request Req;
    Response Resp;
    if (!deserializeRequest(Payload.data(), Payload.size(), Req)) {
      Resp.St = Status::ProtocolError;
      Resp.Message = "undecodable request";
      if (!writeFrame(Fd, serializeResponse(Resp)))
        break;
      continue;
    }
    RunOptions Opt = O.Base;
    bool OptOk = !Req.Sources.empty();
    for (const std::string &Ov : Req.Overrides)
      if (parseRunOption(Ov.c_str(), Opt) != OptionParse::Matched) {
        OptOk = false;
        break;
      }
    if (!OptOk) {
      // The daemon validated at admission; reaching this means the two
      // sides disagree — answer rather than die, but call it out.
      Resp.St = Status::BadRequest;
      Resp.Message = "invalid request options";
      if (!writeFrame(Fd, serializeResponse(Resp)))
        break;
      continue;
    }

    // Capture stdout onto the spool so the response report is exactly
    // the bytes a batch run would have printed. Without the capture the
    // report would leak to the daemon's inherited stdout and the client
    // would get a hollow Ok — refuse the request instead of running it.
    std::fflush(stdout);
    const bool Spooled = Spool >= 0 && OrigOut >= 0 &&
                         ::lseek(Spool, 0, SEEK_SET) == 0 &&
                         ::ftruncate(Spool, 0) == 0 &&
                         ::dup2(Spool, STDOUT_FILENO) == STDOUT_FILENO;
    if (!Spooled) {
      Resp.St = Status::Error;
      Resp.Exit = exitCodeForStatus(Status::Error);
      Resp.Message = "worker cannot capture analysis output";
      if (!writeFrame(Fd, serializeResponse(Resp)))
        break;
      continue;
    }

    // Fresh ring per request: the response carries only this request's
    // events, on this worker's pid.
    const bool Tracing = !O.TracePath.empty();
    if (Tracing)
      trace::enable();

    const uint64_t MemHit0 = Cache.memHits();
    const uint64_t MemStore0 = Cache.memStores();
    Stats ReqStats;

    RunOutcome Out = analyzeApp(Req.Sources, Opt, &Cache, &ReqStats);
    std::fflush(stdout);
    ::dup2(OrigOut, STDOUT_FILENO);
    std::clearerr(stdout); // a spool write error must not outlive the swap
    off_t End = ::lseek(Spool, 0, SEEK_END);
    if (End > 0) {
      Resp.Report.resize(static_cast<size_t>(End));
      if (::lseek(Spool, 0, SEEK_SET) != 0 ||
          !readFull(Spool, &Resp.Report[0], Resp.Report.size())) {
        Resp.Report.clear();
        Out.Exit = ExitError; // report lost: do not claim a clean run
      }
    }

    ReqStats.add("persist.mem_hit", Cache.memHits() - MemHit0);
    ReqStats.add("persist.mem_store", Cache.memStores() - MemStore0);

    Resp.St = Out.Exit == ExitClean
                  ? Status::Ok
                  : Out.Exit == ExitTruncated ? Status::Truncated
                                              : Status::Error;
    Resp.Exit = Out.Exit;
    Resp.Issues = Out.NumIssues;
    Resp.StatsJson = ReqStats.toJson();
    if (Tracing)
      Resp.TraceBlob = trace::renderEvents();
    if (!writeFrame(Fd, serializeResponse(Resp)))
      break;
  }
  // Normal exit path: the daemon closed the pair (drain) or died.
  std::_Exit(0);
}

/// The daemon proper. Single-threaded poll() loop. Reads stay blocking
/// (one read per readiness event) and worker-bound writes may block (a
/// dispatched worker is always draining its pair); client-bound writes
/// go through the non-blocking Outgoing buffers above, because a client
/// is under no obligation to read its response promptly.
class Daemon {
public:
  explicit Daemon(const ServerOptions &O)
      : O(O), Journal(O.JournalPath), ConfigFp(optionsFingerprint(O.Base)) {}

  int run();

private:
  bool setupSocket();
  bool spawnWorker(PoolWorker &W);
  void dispatch();
  void admit(ClientConn &C, std::vector<uint8_t> &Payload);
  void refuse(int Fd, Status St, const std::string &Msg);
  void queueResponse(int Fd, const Response &R);
  void respond(PendingReq &R, Response &Resp, bool WorkerRan);
  void onWorkerFrame(size_t Idx, std::vector<uint8_t> &Payload);
  void onWorkerDeath(size_t Idx);
  void journalAttempt(const PendingReq &R, supervise::ExitClass Class,
                      int Signal, int Exit, uint64_t Issues, bool Terminal);
  void beginDrain();
  bool writeArtifacts();
  double nowMs() const { return Clock.elapsedMs(); }

  ServerOptions O;
  supervise::Journal Journal;
  std::string ConfigFp;
  Timer Clock;
  int ListenFd = -1;
  std::vector<PoolWorker> Workers;
  std::vector<ClientConn> Clients;
  std::vector<Outgoing> Writes; ///< responses still draining to clients
  std::deque<PendingReq> Queue;
  /// How long a client gets to read its response before it is dropped.
  static constexpr double ClientWriteTimeoutMs = 30000;
  uint64_t NextLine = 0;
  bool Draining = false;
  Stats Merged; ///< every served request's counters, for --stats-json
  std::vector<std::string> TraceBlobs;
  struct Counters {
    uint64_t Accepted = 0, RejectedBusy = 0, Served = 0, Retried = 0,
             HotHits = 0, Drained = 0, Respawned = 0;
  } N;
};

bool Daemon::setupSocket() {
  struct sockaddr_un Addr;
  if (O.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: '%s'\n",
                 O.SocketPath.c_str());
    return false;
  }
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, O.SocketPath.c_str(), O.SocketPath.size() + 1);
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) < 0) {
    if (errno == EADDRINUSE) {
      // A live server owns the path, or a crashed one left it behind.
      // Probe: if nobody answers, reclaim the stale file.
      int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      bool Live = Probe >= 0 &&
                  ::connect(Probe, reinterpret_cast<struct sockaddr *>(&Addr),
                            sizeof(Addr)) == 0;
      if (Probe >= 0)
        ::close(Probe);
      if (Live) {
        std::fprintf(stderr, "error: a server is already listening on '%s'\n",
                     O.SocketPath.c_str());
        ::close(ListenFd);
        ListenFd = -1;
        return false;
      }
      ::unlink(O.SocketPath.c_str());
      if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
                 sizeof(Addr)) == 0)
        goto Bound;
    }
    std::fprintf(stderr, "error: bind '%s': %s\n", O.SocketPath.c_str(),
                 std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
Bound:
  if (::listen(ListenFd, 64) < 0) {
    std::fprintf(stderr, "error: listen '%s': %s\n", O.SocketPath.c_str(),
                 std::strerror(errno));
    ::close(ListenFd);
    ::unlink(O.SocketPath.c_str());
    ListenFd = -1;
    return false;
  }
  return true;
}

bool Daemon::spawnWorker(PoolWorker &W) {
  int SP[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, SP) < 0) {
    std::fprintf(stderr, "error: socketpair: %s\n", std::strerror(errno));
    return false;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    std::fprintf(stderr, "error: fork: %s\n", std::strerror(errno));
    ::close(SP[0]);
    ::close(SP[1]);
    return false;
  }
  if (Pid == 0) {
    // Child: drop every daemon-side fd; only its own pair end survives.
    ::close(SP[0]);
    if (ListenFd >= 0)
      ::close(ListenFd);
    for (const PoolWorker &Other : Workers)
      if (Other.Fd >= 0)
        ::close(Other.Fd);
    for (const ClientConn &C : Clients)
      if (C.Fd >= 0)
        ::close(C.Fd);
    for (const PendingReq &R : Queue)
      if (R.ClientFd >= 0)
        ::close(R.ClientFd);
    for (const PoolWorker &Other : Workers)
      if (Other.Busy && Other.Cur.ClientFd >= 0)
        ::close(Other.Cur.ClientFd);
    for (const Outgoing &Wr : Writes)
      if (Wr.Fd >= 0)
        ::close(Wr.Fd);
    if (GWakeFds[0] >= 0)
      ::close(GWakeFds[0]);
    if (GWakeFds[1] >= 0)
      ::close(GWakeFds[1]);
    workerMain(O, SP[1]);
  }
  ::close(SP[1]);
  W.Pid = Pid;
  W.Fd = SP[0];
  W.Busy = false;
  W.DeadlineAt = W.KillAt = 0;
  W.TermSent = false;
  W.InBuf.clear();
  return true;
}

/// Takes ownership of \p Fd and sends one response frame without ever
/// blocking the daemon: the fd is switched non-blocking, as much as the
/// socket buffer takes is written immediately, and the remainder (if
/// any) drains under POLLOUT with a drop deadline.
void Daemon::queueResponse(int Fd, const Response &R) {
  Outgoing Wr;
  if (!appendFrame(Wr.Buf, serializeResponse(R))) {
    ::close(Fd); // oversized payload: the peer would reject it anyway
    return;
  }
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  Wr.Fd = Fd;
  Wr.DeadlineAt = nowMs() + ClientWriteTimeoutMs;
  if (flushOutgoing(Wr))
    Writes.push_back(std::move(Wr));
}

void Daemon::refuse(int Fd, Status St, const std::string &Msg) {
  Response R;
  R.St = St;
  R.Exit = exitCodeForStatus(St);
  R.Message = Msg;
  queueResponse(Fd, R); // best effort: peer may be gone
}

void Daemon::admit(ClientConn &C, std::vector<uint8_t> &Payload) {
  Request Req;
  if (!deserializeRequest(Payload.data(), Payload.size(), Req)) {
    refuse(C.Fd, Status::ProtocolError, "undecodable request");
    C.Fd = -1;
    return;
  }
  if (Draining) {
    refuse(C.Fd, Status::ShuttingDown, "server is draining");
    C.Fd = -1;
    return;
  }
  // Validate before admission: a request the worker would refuse must
  // not occupy queue depth or a worker slot.
  PendingReq P;
  P.Opt = O.Base;
  bool OptOk = !Req.Sources.empty();
  std::string BadOpt;
  for (const std::string &Ov : Req.Overrides)
    if (parseRunOption(Ov.c_str(), P.Opt) != OptionParse::Matched) {
      OptOk = false;
      BadOpt = Ov;
      break;
    }
  if (!OptOk) {
    refuse(C.Fd, Status::BadRequest,
           Req.Sources.empty() ? "request names no sources"
                               : "bad override '" + BadOpt + "'");
    C.Fd = -1;
    return;
  }
  if (Queue.size() >= O.QueueDepth &&
      std::none_of(Workers.begin(), Workers.end(),
                   [](const PoolWorker &W) { return !W.Busy; })) {
    ++N.RejectedBusy;
    refuse(C.Fd, Status::Busy, "admission queue full");
    C.Fd = -1;
    return;
  }
  for (const AppSource &S : Req.Sources) {
    if (!P.AppName.empty())
      P.AppName += " ";
    P.AppName += S.Name;
  }
  P.ClientFd = C.Fd;
  P.Sources = std::move(Req.Sources);
  P.Line = NextLine++;
  ++N.Accepted;
  Queue.push_back(std::move(P));
  // Fd ownership moved to the request: clear the slot so compaction can
  // reclaim it and forked children never close a recycled fd number.
  C.Admitted = true;
  C.Fd = -1;
}

void Daemon::dispatch() {
  for (size_t I = 0; I < Workers.size() && !Queue.empty(); ++I) {
    PoolWorker &W = Workers[I];
    if (W.Busy || W.Fd < 0)
      continue;
    W.Cur = std::move(Queue.front());
    Queue.pop_front();
    W.Busy = true;
    Request WireReq;
    WireReq.Sources = W.Cur.Sources;
    WireReq.Overrides = encodeRunOptions(W.Cur.Opt);
    if (!writeFrame(W.Fd, serializeRequest(WireReq))) {
      // Worker end is dead; the EOF handler reaps it and requeues.
      Queue.push_front(std::move(W.Cur));
      W.Busy = false;
      continue;
    }
    // Per-request watchdog, derived exactly like the batch supervisor's
    // backstops from the request's cooperative limits + environment.
    RunGuard::Limits Coop;
    Coop.DeadlineMs = W.Cur.Opt.DeadlineMs;
    Coop.MaxMemoryBytes = W.Cur.Opt.MaxMemoryMb * 1024 * 1024;
    supervise::SupervisorConfig SC;
    supervise::deriveHardLimits(RunGuard::limitsFromEnv(Coop), SC);
    W.DeadlineAt = SC.HardDeadlineMs > 0 ? nowMs() + SC.HardDeadlineMs : 0;
    W.GraceMs = SC.GraceMs;
    W.KillAt = 0;
    W.TermSent = false;
    W.Cur.BeginUs = trace::enabled() ? trace::nowUs() : 0;
  }
}

void Daemon::journalAttempt(const PendingReq &R, supervise::ExitClass Class,
                            int Signal, int Exit, uint64_t Issues,
                            bool Terminal) {
  if (!Journal.configured())
    return;
  supervise::Attempt A;
  A.Line = R.Line;
  A.App = R.AppName;
  A.ConfigFp = ConfigFp;
  A.AttemptNo = R.AttemptNo;
  A.Class = Class;
  A.Signal = Signal;
  A.Exit = Exit;
  A.Issues = Issues;
  A.Terminal = Terminal;
  Journal.append(A);
}

void Daemon::respond(PendingReq &R, Response &Resp, bool WorkerRan) {
  if (WorkerRan) {
    ++N.Served;
    if (Draining)
      ++N.Drained;
    Stats ReqStats;
    if (!Resp.StatsJson.empty() && !ReqStats.mergeJson(Resp.StatsJson))
      std::fprintf(stderr, "taj-serve: malformed stats from worker for '%s'\n",
                   R.AppName.c_str());
    N.HotHits += ReqStats.get("persist.mem_hit");
    Merged.merge(ReqStats);
    // Stamp the server's counters into the response so a client's
    // --stats-json shows the daemon-side picture too.
    ReqStats.add("server.accepted", N.Accepted);
    ReqStats.add("server.rejected_busy", N.RejectedBusy);
    ReqStats.add("server.served", N.Served);
    ReqStats.add("server.retried", N.Retried);
    ReqStats.add("server.hot_hits", N.HotHits);
    ReqStats.add("server.drained", N.Drained);
    Resp.StatsJson = ReqStats.toJson();
  }
  if (R.ClientFd >= 0) {
    queueResponse(R.ClientFd, Resp);
    R.ClientFd = -1;
  }
}

void Daemon::onWorkerFrame(size_t Idx, std::vector<uint8_t> &Payload) {
  PoolWorker &W = Workers[Idx];
  Response Resp;
  if (!deserializeResponse(Payload.data(), Payload.size(), Resp)) {
    // A worker speaking garbage is as good as dead: kill and let the
    // death path classify it.
    std::fprintf(stderr, "taj-serve: undecodable worker response\n");
    ::kill(W.Pid, SIGKILL);
    return;
  }
  if (!W.Busy)
    return; // response for a request we already gave up on
  if (W.Cur.BeginUs)
    trace::addComplete("serve " + W.Cur.AppName, "server", W.Cur.BeginUs,
                       trace::nowUs(), static_cast<uint32_t>(1000 + Idx));
  supervise::ExitClass Class =
      Resp.Exit == ExitClean
          ? supervise::ExitClass::Clean
          : Resp.Exit == ExitTruncated ? supervise::ExitClass::Truncated
                                       : supervise::ExitClass::Error;
  journalAttempt(W.Cur, Class, 0, Resp.Exit, Resp.Issues, true);
  // Keep a copy of the worker's per-request events for the daemon's own
  // merged timeline; the client still gets the blob for its --trace.
  if (!Resp.TraceBlob.empty())
    TraceBlobs.push_back(Resp.TraceBlob);
  respond(W.Cur, Resp, /*WorkerRan=*/true);
  W.Busy = false;
  W.DeadlineAt = W.KillAt = 0;
  W.TermSent = false;
  if (Draining && W.Fd >= 0) {
    // The in-flight request this worker was kept alive for is done.
    ::close(W.Fd);
    W.Fd = -1;
    int Status;
    pid_t R;
    do {
      R = ::waitpid(W.Pid, &Status, 0);
    } while (R < 0 && errno == EINTR);
    W.Pid = -1;
  }
}

void Daemon::onWorkerDeath(size_t Idx) {
  PoolWorker &W = Workers[Idx];
  ::close(W.Fd);
  W.Fd = -1;
  int Status = 0;
  pid_t Reaped;
  do {
    Reaped = ::waitpid(W.Pid, &Status, 0);
  } while (Reaped < 0 && errno == EINTR);
  const bool WatchdogKilled = W.TermSent;
  W.Pid = -1;
  if (W.Busy) {
    W.Busy = false;
    PendingReq R = std::move(W.Cur);
    supervise::ExitClass Class =
        supervise::classifyWaitStatus(Status, WatchdogKilled);
    const int Sig = WIFSIGNALED(Status) ? WTERMSIG(Status) : 0;
    const int Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
    const bool Retryable = Class == supervise::ExitClass::Crashed ||
                           Class == supervise::ExitClass::Timeout ||
                           Class == supervise::ExitClass::Oom;
    if (R.BeginUs)
      trace::addComplete("serve " + R.AppName + " (died)", "server", R.BeginUs,
                         trace::nowUs(), static_cast<uint32_t>(1000 + Idx));
    if (Retryable && R.AttemptNo <= O.MaxRetries && !Draining) {
      journalAttempt(R, Class, Sig, Exit, 0, /*Terminal=*/false);
      ++R.AttemptNo;
      R.Opt = degradeForRetry(R.Opt);
      ++N.Retried;
      trace::addInstant("retry " + R.AppName, "server");
      Queue.push_front(std::move(R));
    } else {
      journalAttempt(R, Class, Sig, Exit, 0, /*Terminal=*/true);
      Response Resp;
      Resp.St = statusFromExitClass(Class);
      Resp.Exit = exitCodeForStatus(Resp.St);
      Resp.Message = std::string("worker ") + supervise::exitClassName(Class);
      respond(R, Resp, /*WorkerRan=*/true);
    }
  }
  W.DeadlineAt = W.KillAt = 0;
  W.TermSent = false;
  W.InBuf.clear();
  if (!Draining) {
    if (spawnWorker(W))
      ++N.Respawned;
    else
      std::fprintf(stderr, "taj-serve: worker respawn failed\n");
  }
}

void Daemon::beginDrain() {
  Draining = true;
  trace::addInstant("drain", "server");
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(O.SocketPath.c_str());
  }
  // Everything not yet running gets a clean refusal.
  for (PendingReq &R : Queue)
    if (R.ClientFd >= 0) {
      refuse(R.ClientFd, Status::ShuttingDown, "server is draining");
      R.ClientFd = -1;
    }
  Queue.clear();
  for (ClientConn &C : Clients)
    if (!C.Admitted && C.Fd >= 0) {
      refuse(C.Fd, Status::ShuttingDown, "server is draining");
      C.Fd = -1;
    }
  // Idle workers see EOF on their pair and exit; busy workers keep
  // running until their in-flight response lands.
  for (PoolWorker &W : Workers)
    if (!W.Busy && W.Fd >= 0) {
      ::close(W.Fd);
      W.Fd = -1;
      int Status;
      pid_t R;
      do {
        R = ::waitpid(W.Pid, &Status, 0);
      } while (R < 0 && errno == EINTR);
      W.Pid = -1;
    }
}

bool Daemon::writeArtifacts() {
  bool Ok = true;
  Merged.add("server.accepted", N.Accepted);
  Merged.add("server.rejected_busy", N.RejectedBusy);
  Merged.add("server.served", N.Served);
  Merged.add("server.retried", N.Retried);
  Merged.add("server.hot_hits", N.HotHits);
  Merged.add("server.drained", N.Drained);
  Merged.add("server.respawned", N.Respawned);
  if (!O.StatsJsonPath.empty()) {
    std::FILE *F = std::fopen(O.StatsJsonPath.c_str(), "w");
    const std::string J = Merged.toJson() + "\n";
    if (!F || std::fwrite(J.data(), 1, J.size(), F) != J.size()) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   O.StatsJsonPath.c_str());
      Ok = false;
    }
    if (F && std::fclose(F) != 0)
      Ok = false;
  }
  if (!O.TracePath.empty() &&
      !trace::writeJsonMerged(O.TracePath, TraceBlobs)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", O.TracePath.c_str());
    Ok = false;
  }
  return Ok;
}

int Daemon::run() {
  // Handlers before the socket goes live: a client that sees the socket
  // may SIGTERM us immediately, and with the default disposition still in
  // place that kills the daemon instead of starting a drain. The handler
  // tolerates the wake pipe not existing yet (GDrain alone suffices — the
  // loop checks it before its first poll()).
  installDrainHandlers();
  if (!setupSocket())
    return ExitError;
  // Wake pipe before the pool: forked children must know both ends to
  // close them. Non-blocking on both ends — the handler must never
  // block, and draining reads until EAGAIN.
  if (::pipe(GWakeFds) == 0) {
    for (int End = 0; End < 2; ++End) {
      int Flags = ::fcntl(GWakeFds[End], F_GETFL, 0);
      if (Flags >= 0)
        ::fcntl(GWakeFds[End], F_SETFL, Flags | O_NONBLOCK);
    }
  } else {
    GWakeFds[0] = GWakeFds[1] = -1; // EINTR-on-poll remains the fallback
  }
  Workers.resize(O.PoolSize);
  for (PoolWorker &W : Workers)
    if (!spawnWorker(W)) {
      // A partial pool still serves; no pool at all cannot.
      bool Any = std::any_of(Workers.begin(), Workers.end(),
                             [](const PoolWorker &X) { return X.Fd >= 0; });
      if (!Any) {
        ::close(ListenFd);
        ::unlink(O.SocketPath.c_str());
        return ExitError;
      }
    }
  std::fprintf(stderr, "taj-serve: listening on %s (pool=%u queue=%u)\n",
               O.SocketPath.c_str(), O.PoolSize, O.QueueDepth);

  std::vector<struct pollfd> Pfds;
  std::vector<uint8_t> Payload;
  char RdBuf[65536];
  for (;;) {
    if (GDrain && !Draining)
      beginDrain();
    if (Draining) {
      bool AnyAlive = std::any_of(Workers.begin(), Workers.end(),
                                  [](const PoolWorker &W) {
                                    return W.Pid >= 0;
                                  });
      bool AnyWrite = std::any_of(Writes.begin(), Writes.end(),
                                  [](const Outgoing &Wr) {
                                    return Wr.Fd >= 0;
                                  });
      if (!AnyAlive && !AnyWrite)
        break;
    } else {
      dispatch();
    }

    // Watchdog pass: SIGTERM at the hard deadline, SIGKILL after grace.
    double Now = nowMs();
    double NextWake = -1;
    for (PoolWorker &W : Workers) {
      if (!W.Busy || W.Pid < 0)
        continue;
      if (W.TermSent) {
        if (Now >= W.KillAt) {
          trace::addInstant("watchdog SIGKILL " + W.Cur.AppName, "server");
          ::kill(W.Pid, SIGKILL);
          W.KillAt = Now + 1000; // re-nudge if the zombie lingers
        }
        if (NextWake < 0 || W.KillAt - Now < NextWake)
          NextWake = W.KillAt - Now;
      } else if (W.DeadlineAt > 0) {
        if (Now >= W.DeadlineAt) {
          trace::addInstant("watchdog SIGTERM " + W.Cur.AppName, "server");
          ::kill(W.Pid, SIGTERM);
          W.TermSent = true;
          W.KillAt = Now + W.GraceMs;
          if (NextWake < 0 || W.GraceMs < NextWake)
            NextWake = W.GraceMs;
        } else if (NextWake < 0 || W.DeadlineAt - Now < NextWake) {
          NextWake = W.DeadlineAt - Now;
        }
      }
    }
    // Buffered-response deadlines: a client that has not drained its
    // response by DeadlineAt is dropped.
    for (Outgoing &Wr : Writes) {
      if (Wr.Fd < 0)
        continue;
      if (Now >= Wr.DeadlineAt) {
        ::close(Wr.Fd);
        Wr.Fd = -1;
        continue;
      }
      if (NextWake < 0 || Wr.DeadlineAt - Now < NextWake)
        NextWake = Wr.DeadlineAt - Now;
    }

    Pfds.clear();
    // Index map: Pfds[i] corresponds to Kind[i]/Which[i].
    std::vector<int> Kind;  // 0=listen, 1=client, 2=worker, 3=wake, 4=write
    std::vector<size_t> Which;
    if (ListenFd >= 0) {
      Pfds.push_back({ListenFd, POLLIN, 0});
      Kind.push_back(0);
      Which.push_back(0);
    }
    for (size_t I = 0; I < Clients.size(); ++I)
      if (Clients[I].Fd >= 0 && !Clients[I].Admitted) {
        Pfds.push_back({Clients[I].Fd, POLLIN, 0});
        Kind.push_back(1);
        Which.push_back(I);
      }
    for (size_t I = 0; I < Workers.size(); ++I)
      if (Workers[I].Fd >= 0) {
        Pfds.push_back({Workers[I].Fd, POLLIN, 0});
        Kind.push_back(2);
        Which.push_back(I);
      }
    if (GWakeFds[0] >= 0) {
      Pfds.push_back({GWakeFds[0], POLLIN, 0});
      Kind.push_back(3);
      Which.push_back(0);
    }
    for (size_t I = 0; I < Writes.size(); ++I)
      if (Writes[I].Fd >= 0) {
        Pfds.push_back({Writes[I].Fd, POLLOUT, 0});
        Kind.push_back(4);
        Which.push_back(I);
      }

    // Clamp before the int cast: a deadline far in the future (poll's
    // timeout caps near INT_MAX ms, ~24.8 days) must not overflow into
    // UB or a negative (infinite) timeout; the loop simply re-arms after
    // an early wake.
    int Timeout =
        NextWake < 0 ? -1 : static_cast<int>(std::min(NextWake, 6.0e7)) + 1;
    int RC = ::poll(Pfds.data(), Pfds.size(), Timeout);
    if (RC < 0) {
      if (errno == EINTR)
        continue; // drain signal or reaped child; loop re-evaluates
      std::fprintf(stderr, "error: poll: %s\n", std::strerror(errno));
      break;
    }

    for (size_t I = 0; I < Pfds.size(); ++I) {
      if (Pfds[I].revents == 0)
        continue;
      if (Kind[I] == 0) {
        int CFd = ::accept(ListenFd, nullptr, nullptr);
        if (CFd >= 0) {
          ClientConn C;
          C.Fd = CFd;
          // Reuse a dead slot to keep the vector bounded.
          auto It = std::find_if(Clients.begin(), Clients.end(),
                                 [](const ClientConn &X) {
                                   return X.Fd < 0;
                                 });
          if (It != Clients.end())
            *It = std::move(C);
          else
            Clients.push_back(std::move(C));
        }
      } else if (Kind[I] == 1) {
        ClientConn &C = Clients[Which[I]];
        ssize_t Got = ::read(C.Fd, RdBuf, sizeof(RdBuf));
        if (Got <= 0) {
          if (Got < 0 && errno == EINTR)
            continue;
          ::close(C.Fd); // EOF before a full request: client gave up
          C.Fd = -1;
          C.Buf.clear();
          continue;
        }
        C.Buf.append(RdBuf, static_cast<size_t>(Got));
        bool Bad = false;
        if (takeFrame(C.Buf, Payload, Bad)) {
          // One request per connection: whatever trails the frame is
          // noise. admit() takes the fd on every path — admitted or
          // refused, C.Fd comes back cleared.
          admit(C, Payload);
          C.Buf.clear();
        } else if (Bad || C.Buf.size() > 8 + static_cast<size_t>(
                                                 MaxFrameBytes)) {
          refuse(C.Fd, Status::ProtocolError, "bad frame");
          C.Fd = -1;
          C.Buf.clear();
        }
      } else if (Kind[I] == 3) {
        // Self-pipe tick: drain it; the wake itself is the payload.
        while (::read(GWakeFds[0], RdBuf, sizeof(RdBuf)) > 0) {
        }
      } else if (Kind[I] == 4) {
        flushOutgoing(Writes[Which[I]]);
      } else {
        PoolWorker &W = Workers[Which[I]];
        ssize_t Got = ::read(W.Fd, RdBuf, sizeof(RdBuf));
        if (Got <= 0) {
          if (Got < 0 && errno == EINTR)
            continue;
          onWorkerDeath(Which[I]);
          continue;
        }
        W.InBuf.append(RdBuf, static_cast<size_t>(Got));
        bool Bad = false;
        while (W.Pid > 0 && takeFrame(W.InBuf, Payload, Bad))
          onWorkerFrame(Which[I], Payload);
        if (Bad && W.Pid > 0) {
          std::fprintf(stderr, "taj-serve: corrupt worker stream\n");
          ::kill(W.Pid, SIGKILL);
        }
      }
    }
    // Compact dead client slots and finished writes opportunistically.
    Clients.erase(std::remove_if(Clients.begin(), Clients.end(),
                                 [](const ClientConn &C) {
                                   return C.Fd < 0;
                                 }),
                  Clients.end());
    Writes.erase(std::remove_if(Writes.begin(), Writes.end(),
                                [](const Outgoing &Wr) { return Wr.Fd < 0; }),
                 Writes.end());
  }

  // Detach the self-pipe from the handler before closing it, so a late
  // signal sees -1 and skips the write instead of hitting a closed fd.
  const int WakeR = GWakeFds[0], WakeW = GWakeFds[1];
  GWakeFds[0] = GWakeFds[1] = -1;
  if (WakeR >= 0)
    ::close(WakeR);
  if (WakeW >= 0)
    ::close(WakeW);

  const bool Ok = writeArtifacts();
  std::fprintf(stderr, "taj-serve: drained (%llu served, %llu busy-rejected, "
                       "%llu retried, %llu hot hits)\n",
               static_cast<unsigned long long>(N.Served),
               static_cast<unsigned long long>(N.RejectedBusy),
               static_cast<unsigned long long>(N.Retried),
               static_cast<unsigned long long>(N.HotHits));
  return Ok ? ExitClean : ExitError;
}

} // namespace

int server::runServer(const ServerOptions &O) {
  Daemon D(O);
  return D.run();
}
