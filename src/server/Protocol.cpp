//===- server/Protocol.cpp - Analysis-server wire protocol ----------------===//

#include "server/Protocol.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

using namespace taj;
using namespace taj::server;

const char *server::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::Truncated:
    return "truncated";
  case Status::Error:
    return "error";
  case Status::Crashed:
    return "crashed";
  case Status::Timeout:
    return "timeout";
  case Status::Oom:
    return "oom";
  case Status::Busy:
    return "busy";
  case Status::ShuttingDown:
    return "shutting-down";
  case Status::BadRequest:
    return "bad-request";
  case Status::ProtocolError:
    return "protocol-error";
  }
  return "unknown";
}

Status server::statusFromExitClass(supervise::ExitClass C) {
  switch (C) {
  case supervise::ExitClass::Clean:
    return Status::Ok;
  case supervise::ExitClass::Truncated:
    return Status::Truncated;
  case supervise::ExitClass::Error:
    return Status::Error;
  case supervise::ExitClass::Crashed:
    return Status::Crashed;
  case supervise::ExitClass::Timeout:
    return Status::Timeout;
  case supervise::ExitClass::Oom:
    return Status::Oom;
  }
  return Status::Error;
}

int server::exitCodeForStatus(Status S) {
  switch (S) {
  case Status::Ok:
    return ExitClean;
  case Status::Truncated:
    return ExitTruncated;
  default:
    return ExitError;
  }
}

namespace {

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  putU32(Out, static_cast<uint32_t>(V));
  putU32(Out, static_cast<uint32_t>(V >> 32));
}

void putStr(std::vector<uint8_t> &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

/// Bounds-checked little-endian reader over one payload.
class Cursor {
public:
  Cursor(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > Len)
      return false;
    V = Data[Pos++];
    return true;
  }

  bool u32(uint32_t &V) {
    if (Pos + 4 > Len)
      return false;
    V = static_cast<uint32_t>(Data[Pos]) |
        (static_cast<uint32_t>(Data[Pos + 1]) << 8) |
        (static_cast<uint32_t>(Data[Pos + 2]) << 16) |
        (static_cast<uint32_t>(Data[Pos + 3]) << 24);
    Pos += 4;
    return true;
  }

  bool u64(uint64_t &V) {
    uint32_t Lo, Hi;
    if (!u32(Lo) || !u32(Hi))
      return false;
    V = static_cast<uint64_t>(Lo) | (static_cast<uint64_t>(Hi) << 32);
    return true;
  }

  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || Pos + N > Len)
      return false;
    S.assign(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return true;
  }

  bool done() const { return Pos == Len; }

private:
  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
};

} // namespace

std::vector<uint8_t> server::serializeRequest(const Request &R) {
  std::vector<uint8_t> Out;
  putU32(Out, static_cast<uint32_t>(R.Sources.size()));
  for (const AppSource &S : R.Sources) {
    putStr(Out, S.Name);
    Out.push_back(S.Inline ? 1 : 0);
    putStr(Out, S.Content);
  }
  putU32(Out, static_cast<uint32_t>(R.Overrides.size()));
  for (const std::string &O : R.Overrides)
    putStr(Out, O);
  return Out;
}

bool server::deserializeRequest(const uint8_t *Data, size_t Len, Request &R) {
  Cursor C(Data, Len);
  uint32_t N;
  if (!C.u32(N))
    return false;
  R.Sources.clear();
  for (uint32_t I = 0; I < N; ++I) {
    AppSource S;
    uint8_t Inline;
    if (!C.str(S.Name) || !C.u8(Inline) || !C.str(S.Content))
      return false;
    S.Inline = Inline != 0;
    R.Sources.push_back(std::move(S));
  }
  if (!C.u32(N))
    return false;
  R.Overrides.clear();
  for (uint32_t I = 0; I < N; ++I) {
    std::string O;
    if (!C.str(O))
      return false;
    R.Overrides.push_back(std::move(O));
  }
  return C.done();
}

std::vector<uint8_t> server::serializeResponse(const Response &R) {
  std::vector<uint8_t> Out;
  Out.push_back(static_cast<uint8_t>(R.St));
  putU32(Out, static_cast<uint32_t>(R.Exit));
  putU64(Out, R.Issues);
  putStr(Out, R.Report);
  putStr(Out, R.StatsJson);
  putStr(Out, R.TraceBlob);
  putStr(Out, R.Message);
  return Out;
}

bool server::deserializeResponse(const uint8_t *Data, size_t Len,
                                 Response &R) {
  Cursor C(Data, Len);
  uint8_t St;
  uint32_t Exit;
  if (!C.u8(St) || St > static_cast<uint8_t>(Status::ProtocolError) ||
      !C.u32(Exit) || !C.u64(R.Issues) || !C.str(R.Report) ||
      !C.str(R.StatsJson) || !C.str(R.TraceBlob) || !C.str(R.Message))
    return false;
  R.St = static_cast<Status>(St);
  R.Exit = static_cast<int32_t>(Exit);
  return C.done();
}

bool server::writeFull(int Fd, const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    // write() returning 0 on a nonzero count would loop forever; treat it
    // as an error like sendmsg does.
    if (N == 0)
      return false;
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool server::readFull(int Fd, void *Data, size_t Len) {
  uint8_t *P = static_cast<uint8_t *>(Data);
  while (Len > 0) {
    ssize_t N = ::read(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF mid-frame
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

namespace {
void encodeFrameHeader(uint8_t Hdr[8], uint32_t Len) {
  const uint32_t Magic = FrameMagic;
  std::memcpy(Hdr, &Magic, 4);
  Hdr[4] = static_cast<uint8_t>(Len);
  Hdr[5] = static_cast<uint8_t>(Len >> 8);
  Hdr[6] = static_cast<uint8_t>(Len >> 16);
  Hdr[7] = static_cast<uint8_t>(Len >> 24);
}
} // namespace

bool server::writeFrame(int Fd, const std::vector<uint8_t> &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  uint8_t Hdr[8];
  encodeFrameHeader(Hdr, static_cast<uint32_t>(Payload.size()));
  return writeFull(Fd, Hdr, sizeof(Hdr)) &&
         (Payload.empty() || writeFull(Fd, Payload.data(), Payload.size()));
}

bool server::appendFrame(std::string &Out, const std::vector<uint8_t> &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  uint8_t Hdr[8];
  encodeFrameHeader(Hdr, static_cast<uint32_t>(Payload.size()));
  Out.append(reinterpret_cast<const char *>(Hdr), sizeof(Hdr));
  if (!Payload.empty())
    Out.append(reinterpret_cast<const char *>(Payload.data()), Payload.size());
  return true;
}

bool server::readFrame(int Fd, std::vector<uint8_t> &Payload) {
  uint8_t Hdr[8];
  if (!readFull(Fd, Hdr, sizeof(Hdr)))
    return false;
  uint32_t Magic;
  std::memcpy(&Magic, Hdr, 4);
  if (Magic != FrameMagic)
    return false;
  const uint32_t Len = static_cast<uint32_t>(Hdr[4]) |
                       (static_cast<uint32_t>(Hdr[5]) << 8) |
                       (static_cast<uint32_t>(Hdr[6]) << 16) |
                       (static_cast<uint32_t>(Hdr[7]) << 24);
  if (Len > MaxFrameBytes)
    return false;
  Payload.resize(Len);
  return Len == 0 || readFull(Fd, Payload.data(), Len);
}
