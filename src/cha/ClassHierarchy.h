//===- cha/ClassHierarchy.h - Class-hierarchy analysis ---------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Class-hierarchy analysis over a TIR program: subtype tests, virtual
/// dispatch resolution (walking the superclass chain), enumeration of
/// concrete subtypes, and field lookup through inheritance. The pointer
/// analysis and the framework models (Struts ActionForm synthesis) consume
/// this.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_CHA_CLASSHIERARCHY_H
#define TAJ_CHA_CLASSHIERARCHY_H

#include "ir/Program.h"

#include <vector>

namespace taj {

/// Precomputed hierarchy queries for one Program. Build after the program
/// is complete; adding classes afterwards invalidates the instance.
class ClassHierarchy {
public:
  explicit ClassHierarchy(const Program &P);

  /// True if \p Sub is \p Super or a (transitive) subclass of it.
  bool isSubclassOf(ClassId Sub, ClassId Super) const;

  /// Resolves a virtual call with receiver class \p Recv and method name
  /// \p Name by walking up the superclass chain. Returns InvalidId if no
  /// implementation exists.
  MethodId resolveVirtual(ClassId Recv, Symbol Name) const;

  /// All classes that are \p C or transitively extend it, in id order.
  const std::vector<ClassId> &subtypes(ClassId C) const {
    return Subtypes[C];
  }

  /// Finds field \p Name on \p C or a superclass. InvalidId if absent.
  FieldId resolveField(ClassId C, Symbol Name) const;

  /// Depth of \p C in the hierarchy (root = 0).
  uint32_t depth(ClassId C) const { return Depth[C]; }

private:
  const Program &P;
  std::vector<uint32_t> Depth;
  std::vector<std::vector<ClassId>> Subtypes;
};

} // namespace taj

#endif // TAJ_CHA_CLASSHIERARCHY_H
