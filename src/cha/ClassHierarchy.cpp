//===- cha/ClassHierarchy.cpp ----------------------------------*- C++ -*-===//

#include "cha/ClassHierarchy.h"

#include <cassert>

using namespace taj;

ClassHierarchy::ClassHierarchy(const Program &P) : P(P) {
  size_t N = P.Classes.size();
  Depth.assign(N, 0);
  Subtypes.assign(N, {});
  // Depth by walking the (acyclic) superclass chain; classes may be created
  // in any order by the frontend.
  for (ClassId C = 0; C < N; ++C) {
    uint32_t D = 0;
    for (ClassId A = P.Classes[C].Super; A != InvalidId;
         A = P.Classes[A].Super) {
      ++D;
      assert(D <= N && "cycle in class hierarchy");
    }
    Depth[C] = D;
  }
  for (ClassId C = 0; C < N; ++C)
    for (ClassId A = C; A != InvalidId; A = P.Classes[A].Super)
      Subtypes[A].push_back(C);
}

bool ClassHierarchy::isSubclassOf(ClassId Sub, ClassId Super) const {
  for (ClassId A = Sub; A != InvalidId; A = P.Classes[A].Super)
    if (A == Super)
      return true;
  return false;
}

MethodId ClassHierarchy::resolveVirtual(ClassId Recv, Symbol Name) const {
  for (ClassId A = Recv; A != InvalidId; A = P.Classes[A].Super)
    for (MethodId M : P.Classes[A].Methods)
      if (P.Methods[M].Name == Name)
        return M;
  return InvalidId;
}

FieldId ClassHierarchy::resolveField(ClassId C, Symbol Name) const {
  for (ClassId A = C; A != InvalidId; A = P.Classes[A].Super)
    for (FieldId F : P.Classes[A].Fields)
      if (P.Fields[F].Name == Name)
        return F;
  return InvalidId;
}
