//===- ir/Program.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Program.h"

using namespace taj;

const char *taj::rules::ruleName(RuleMask RuleBit) {
  switch (RuleBit) {
  case XSS:
    return "XSS";
  case SQLI:
    return "SQLi";
  case FILE:
    return "MaliciousFile";
  case LEAK:
    return "InfoLeak";
  default:
    return "Unknown";
  }
}

ClassId Program::findClass(std::string_view Name) const {
  Symbol Sym = Pool.lookup(Name);
  if (Sym == ~0u)
    return InvalidId;
  auto It = ClassByName.find(Sym);
  if (It != ClassByName.end())
    return It->second;
  // Lazily (re)build the cache; class creation is rare after startup.
  ClassByName.clear();
  for (const Class &C : Classes)
    ClassByName.emplace(C.Name, C.Id);
  It = ClassByName.find(Sym);
  return It == ClassByName.end() ? InvalidId : It->second;
}

FieldId Program::findField(ClassId C, std::string_view Name) const {
  Symbol Sym = Pool.lookup(Name);
  if (Sym == ~0u)
    return InvalidId;
  for (FieldId F : Classes[C].Fields)
    if (Fields[F].Name == Sym)
      return F;
  return InvalidId;
}

MethodId Program::findMethod(ClassId C, std::string_view Name) const {
  Symbol Sym = Pool.lookup(Name);
  if (Sym == ~0u)
    return InvalidId;
  for (MethodId M : Classes[C].Methods)
    if (Methods[M].Name == Sym)
      return M;
  return InvalidId;
}

void Program::indexStatements() {
  StmtRefs.clear();
  MethodStmtBase.assign(Methods.size(), 0);
  for (MethodId M = 0; M < Methods.size(); ++M) {
    MethodStmtBase[M] = static_cast<StmtId>(StmtRefs.size());
    const Method &Meth = Methods[M];
    for (int32_t B = 0; B < static_cast<int32_t>(Meth.Blocks.size()); ++B)
      for (int32_t I = 0;
           I < static_cast<int32_t>(Meth.Blocks[B].Insts.size()); ++I)
        StmtRefs.push_back({M, B, I});
  }
}

StmtId Program::stmtId(MethodId M, int32_t Block, int32_t Index) const {
  StmtId S = MethodStmtBase[M];
  const Method &Meth = Methods[M];
  for (int32_t B = 0; B < Block; ++B)
    S += static_cast<StmtId>(Meth.Blocks[B].Insts.size());
  return S + Index;
}

std::string Program::methodName(MethodId M) const {
  const Method &Meth = Methods[M];
  std::string Out(Pool.str(Classes[Meth.Owner].Name));
  Out += '.';
  Out += Pool.str(Meth.Name);
  return Out;
}

uint32_t Program::methodSize(const Method &M) {
  uint32_t N = 0;
  for (const BasicBlock &B : M.Blocks)
    N += static_cast<uint32_t>(B.Insts.size());
  return N;
}
