//===- ir/Builder.h - Programmatic TIR construction ------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent construction of TIR programs. Bodies are built in a pre-SSA form
/// where values are mutable local slots; MethodBuilder::finish seals the CFG
/// and runs SSA construction, producing the form all analyses consume.
/// Used by the synthetic model library, the benchmark generator, the
/// examples and the tests; the textual frontend produces the same IR.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_IR_BUILDER_H
#define TAJ_IR_BUILDER_H

#include "ir/Program.h"

#include <initializer_list>
#include <string_view>

namespace taj {

class Builder;

/// Builds the body of one method. Instructions are appended to the current
/// block; every emit helper that produces a value allocates a fresh local
/// slot, so straight-line code is born nearly in SSA form. Loops and
/// reassignments use assign().
class MethodBuilder {
public:
  /// The method under construction.
  MethodId id() const { return M; }

  /// Value id of parameter \p Idx (the receiver is parameter 0 for
  /// instance methods).
  ValueId param(uint32_t Idx) const;

  /// Allocates a fresh uninitialized local slot.
  ValueId freshSlot();

  /// Creates a new (empty, unlinked) basic block and returns its index.
  int32_t newBlock();
  /// Redirects emission to block \p B.
  void setBlock(int32_t B) { Cur = B; }
  /// Index of the current block.
  int32_t curBlock() const { return Cur; }

  ValueId constStr(std::string_view Lit);
  ValueId constInt(int64_t V);
  ValueId emitNew(ClassId C);
  ValueId emitNewArray(ClassId Elem);
  ValueId emitCopy(ValueId Src);
  /// Re-assigns an existing slot (for loops / conditional updates).
  void assign(ValueId DstSlot, ValueId Src);
  ValueId emitLoad(ValueId Base, FieldId F);
  void emitStore(ValueId Base, FieldId F, ValueId Val);
  ValueId emitArrayLoad(ValueId Base);
  void emitArrayStore(ValueId Base, ValueId Val);
  ValueId emitStaticLoad(FieldId F);
  void emitStaticStore(FieldId F, ValueId Val);
  ValueId emitBinop(BinopKind K, ValueId A, ValueId B);
  /// Virtual call: Args[0] is the receiver. Returns the result slot, or
  /// NoValue for void callees.
  ValueId callVirtual(std::string_view Name, std::initializer_list<ValueId> Args);
  ValueId callVirtualV(std::string_view Name, const std::vector<ValueId> &Args);
  /// Static call on class \p C.
  ValueId callStatic(ClassId C, std::string_view Name,
                     std::initializer_list<ValueId> Args);
  /// Special (exact-target) call, e.g. constructor invocation.
  ValueId callSpecial(ClassId C, std::string_view Name,
                      std::initializer_list<ValueId> Args);
  void emitRet(ValueId V = NoValue);
  void emitGoto(int32_t Target);
  void emitIf(ValueId Cond, int32_t Then, int32_t Else);
  ValueId emitCaught();
  void emitThrow(ValueId V);

  /// Sets the source line attached to subsequently emitted instructions.
  void setLine(uint32_t L) { Line = L; }

  /// Seals the CFG (adds fall-through gotos, computes preds) and converts
  /// the body to SSA. Must be called exactly once.
  void finish();

private:
  friend class Builder;
  MethodBuilder(Program &P, MethodId M) : P(P), M(M) {}

  Instruction &push(Instruction I);
  ValueId def(Instruction I);

  Program &P;
  MethodId M;
  int32_t Cur = 0;
  uint32_t Line = 0;
  bool Finished = false;
};

/// Builds classes, fields and methods of a Program.
class Builder {
public:
  explicit Builder(Program &P) : P(P) {}

  /// Creates a class. \p Super may be InvalidId only for the root class.
  ClassId makeClass(std::string_view Name, ClassId Super, uint32_t Flags = 0);

  /// Adds a field to \p C.
  FieldId makeField(ClassId C, std::string_view Name, Type Ty,
                    bool IsStatic = false);

  /// Starts a method. For instance methods, \p ParamTypes must include the
  /// receiver type at index 0. Creates the entry block.
  MethodBuilder startMethod(ClassId C, std::string_view Name,
                            const std::vector<Type> &ParamTypes, Type Ret,
                            bool IsStatic = false);

  /// Declares a bodiless intrinsic (model) method.
  MethodId makeIntrinsic(ClassId C, std::string_view Name,
                         const std::vector<Type> &ParamTypes, Type Ret,
                         Intrinsic Intr, bool IsStatic = false);

  Program &program() { return P; }

private:
  Program &P;
};

} // namespace taj

#endif // TAJ_IR_BUILDER_H
