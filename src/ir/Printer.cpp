//===- ir/Printer.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Printer.h"

using namespace taj;

std::string taj::printType(const Program &P, Type T) {
  switch (T.Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "int";
  case TypeKind::Ref:
    return std::string(P.Pool.str(P.Classes[T.Cls].Name));
  case TypeKind::Array:
    return std::string(P.Pool.str(P.Classes[T.Cls].Name)) + "[]";
  }
  return "?";
}

static std::string val(ValueId V) {
  if (V == NoValue)
    return "undef";
  return "v" + std::to_string(V);
}

static const char *binopName(BinopKind K) {
  switch (K) {
  case BinopKind::Add:
    return "+";
  case BinopKind::Sub:
    return "-";
  case BinopKind::Mul:
    return "*";
  case BinopKind::Eq:
    return "==";
  case BinopKind::Lt:
    return "<";
  }
  return "?";
}

std::string taj::printInst(const Program &P, const Instruction &I) {
  auto ClsName = [&](ClassId C) {
    return std::string(C == InvalidId ? "?" : P.Pool.str(P.Classes[C].Name));
  };
  auto FieldName = [&](FieldId F) {
    return std::string(F == InvalidId ? "?" : P.Pool.str(P.Fields[F].Name));
  };
  std::string Out;
  if (I.hasDst())
    Out = val(I.Dst) + " = ";
  switch (I.Op) {
  case Opcode::ConstStr:
    Out += "\"" + std::string(P.Pool.str(I.StrLit)) + "\"";
    break;
  case Opcode::ConstInt:
    Out += std::to_string(I.IntLit);
    break;
  case Opcode::New:
    Out += "new " + ClsName(I.Cls);
    break;
  case Opcode::NewArray:
    Out += "new " + ClsName(I.Cls) + "[]";
    break;
  case Opcode::Copy:
    Out += val(I.Args[0]);
    break;
  case Opcode::Phi: {
    Out += "phi(";
    for (size_t K = 0; K < I.Args.size(); ++K) {
      if (K)
        Out += ", ";
      Out += val(I.Args[K]);
    }
    Out += ")";
    break;
  }
  case Opcode::Load:
    Out += val(I.Args[0]) + "." + FieldName(I.Field);
    break;
  case Opcode::Store:
    Out += val(I.Args[0]) + "." + FieldName(I.Field) + " = " + val(I.Args[1]);
    break;
  case Opcode::ArrayLoad:
    Out += val(I.Args[0]) + "[*]";
    break;
  case Opcode::ArrayStore:
    Out += val(I.Args[0]) + "[*] = " + val(I.Args[1]);
    break;
  case Opcode::StaticLoad:
    Out += ClsName(P.Fields[I.Field].Owner) + "." + FieldName(I.Field);
    break;
  case Opcode::StaticStore:
    Out += ClsName(P.Fields[I.Field].Owner) + "." + FieldName(I.Field) +
           " = " + val(I.Args[0]);
    break;
  case Opcode::Binop:
    Out += val(I.Args[0]) + " " +
           binopName(static_cast<BinopKind>(I.IntLit)) + " " + val(I.Args[1]);
    break;
  case Opcode::Call: {
    Out += "call ";
    size_t First = 0;
    if (I.CKind == CallKind::Static) {
      Out += ClsName(I.Cls) + ".";
    } else {
      Out += val(I.Args[0]) + ".";
      First = 1;
    }
    Out += std::string(P.Pool.str(I.CalleeName)) + "(";
    for (size_t K = First; K < I.Args.size(); ++K) {
      if (K != First)
        Out += ", ";
      Out += val(I.Args[K]);
    }
    Out += ")";
    break;
  }
  case Opcode::Return:
    Out += I.Args.empty() ? "return" : "return " + val(I.Args[0]);
    break;
  case Opcode::Goto:
    Out += "goto B" + std::to_string(I.Target);
    break;
  case Opcode::If:
    Out += "if " + val(I.Args[0]) + " goto B" + std::to_string(I.Target) +
           " else B" + std::to_string(I.Target2);
    break;
  case Opcode::Caught:
    Out += "caught";
    break;
  case Opcode::Throw:
    Out += "throw " + val(I.Args[0]);
    break;
  }
  return Out;
}

std::string taj::printMethod(const Program &P, MethodId MId) {
  const Method &M = P.Methods[MId];
  std::string Out = "method " + P.methodName(MId) + "(";
  for (uint32_t K = 0; K < M.NumParams; ++K) {
    if (K)
      Out += ", ";
    Out += "v" + std::to_string(K) + ": " + printType(P, M.ParamTypes[K]);
  }
  Out += "): " + printType(P, M.RetType) + " {\n";
  for (size_t B = 0; B < M.Blocks.size(); ++B) {
    Out += "B" + std::to_string(B) + ":\n";
    for (const Instruction &I : M.Blocks[B].Insts)
      Out += "  " + printInst(P, I) + "\n";
  }
  Out += "}\n";
  return Out;
}

std::string taj::printProgram(const Program &P) {
  std::string Out;
  for (const Class &C : P.Classes) {
    Out += "class " + std::string(P.Pool.str(C.Name));
    if (C.Super != InvalidId)
      Out += " extends " + std::string(P.Pool.str(P.Classes[C.Super].Name));
    Out += " {\n";
    for (FieldId F : C.Fields)
      Out += "  field " + std::string(P.Pool.str(P.Fields[F].Name)) + ": " +
             printType(P, P.Fields[F].Ty) + ";\n";
    Out += "}\n";
    for (MethodId M : C.Methods)
      if (P.Methods[M].hasBody())
        Out += printMethod(P, M);
  }
  return Out;
}
