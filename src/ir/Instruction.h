//===- ir/Instruction.h - TIR instructions ---------------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TIR instructions. A method body is a control-flow graph of basic blocks;
/// each block holds a sequence of Instructions. Before SSA construction,
/// operands name mutable local slots; after SSA construction (the form all
/// analyses consume), every value has exactly one definition and Phi
/// instructions appear at join points. The representation mirrors the
/// SSA register-transfer language TAJ Section 3.1 relies on.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_IR_INSTRUCTION_H
#define TAJ_IR_INSTRUCTION_H

#include "ir/Type.h"
#include "support/StringPool.h"

#include <vector>

namespace taj {

/// Value number within a method: a local slot pre-SSA, an SSA value post-SSA.
using ValueId = int32_t;
/// Sentinel for "no value" (e.g. a call whose result is unused).
inline constexpr ValueId NoValue = -1;

/// TIR opcodes.
enum class Opcode : uint8_t {
  ConstStr,    ///< Dst = "literal"        (StrLit)
  ConstInt,    ///< Dst = N                (IntLit)
  New,         ///< Dst = new Cls
  NewArray,    ///< Dst = new Cls[]
  Copy,        ///< Dst = Args[0]
  Phi,         ///< Dst = phi(Args...)     (SSA only; Args[i] from pred i)
  Load,        ///< Dst = Args[0].Field
  Store,       ///< Args[0].Field = Args[1]
  ArrayLoad,   ///< Dst = Args[0][*]
  ArrayStore,  ///< Args[0][*] = Args[1]
  StaticLoad,  ///< Dst = Field            (static field)
  StaticStore, ///< Field = Args[0]
  Binop,       ///< Dst = Args[0] op Args[1]  (IntLit holds BinopKind)
  Call,        ///< Dst? = call; see CallKind / Callee fields
  Return,      ///< return Args[0]?        (block terminator)
  Goto,        ///< jump Target            (block terminator)
  If,          ///< if Args[0] goto Target else goto Target2 (terminator)
  Caught,      ///< Dst = currently caught exception object
  Throw        ///< throw Args[0]          (block terminator)
};

/// Dispatch kind for Call instructions.
enum class CallKind : uint8_t {
  Virtual, ///< receiver = Args[0]; target resolved by dynamic class
  Static,  ///< no receiver; target = (Cls, CalleeName)
  Special  ///< receiver = Args[0]; exact target (constructors, super calls)
};

/// Arithmetic/comparison operators for Binop.
enum class BinopKind : uint8_t { Add, Sub, Mul, Eq, Lt };

/// One TIR instruction. Fields not used by an opcode are left at their
/// defaults; see the Opcode comments for which fields apply.
struct Instruction {
  Opcode Op = Opcode::Goto;
  CallKind CKind = CallKind::Virtual;
  /// Destination value (NoValue if none).
  ValueId Dst = NoValue;
  /// Operand values; for Call, Args[0] is the receiver unless CKind==Static.
  std::vector<ValueId> Args;
  /// Field id for Load/Store/StaticLoad/StaticStore.
  FieldId Field = InvalidId;
  /// Class for New/NewArray and for static/special call resolution.
  ClassId Cls = InvalidId;
  /// String literal symbol for ConstStr.
  Symbol StrLit = 0;
  /// Integer literal for ConstInt, or the BinopKind for Binop.
  int64_t IntLit = 0;
  /// Method name symbol for Call.
  Symbol CalleeName = 0;
  /// Branch target block for Goto/If (block index within the method).
  int32_t Target = -1;
  /// Fallthrough (else) block for If.
  int32_t Target2 = -1;
  /// Source line for diagnostics and reports.
  uint32_t Line = 0;

  bool isTerminator() const {
    return Op == Opcode::Return || Op == Opcode::Goto || Op == Opcode::If ||
           Op == Opcode::Throw;
  }
  bool isBranch() const { return Op == Opcode::Goto || Op == Opcode::If; }
  bool hasDst() const { return Dst != NoValue; }
};

/// A basic block: straight-line instructions ending in at most one
/// terminator, plus explicit predecessor/successor lists.
struct BasicBlock {
  std::vector<Instruction> Insts;
  std::vector<int32_t> Succs;
  std::vector<int32_t> Preds;
};

} // namespace taj

#endif // TAJ_IR_INSTRUCTION_H
