//===- ir/Instruction.cpp --------------------------------------*- C++ -*-===//

#include "ir/Instruction.h"

namespace taj {

/// Mnemonic for \p Op (used by diagnostics and the SDG printer).
const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstStr:
    return "conststr";
  case Opcode::ConstInt:
    return "constint";
  case Opcode::New:
    return "new";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::Copy:
    return "copy";
  case Opcode::Phi:
    return "phi";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::ArrayLoad:
    return "arrayload";
  case Opcode::ArrayStore:
    return "arraystore";
  case Opcode::StaticLoad:
    return "staticload";
  case Opcode::StaticStore:
    return "staticstore";
  case Opcode::Binop:
    return "binop";
  case Opcode::Call:
    return "call";
  case Opcode::Return:
    return "return";
  case Opcode::Goto:
    return "goto";
  case Opcode::If:
    return "if";
  case Opcode::Caught:
    return "caught";
  case Opcode::Throw:
    return "throw";
  }
  return "?";
}

} // namespace taj
