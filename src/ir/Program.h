//===- ir/Program.h - TIR classes, methods, programs -----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TIR program container: classes with fields and methods, a global
/// field table, a global method table, and a statement index that assigns a
/// dense id to every instruction (used by the pointer analysis, the SDG and
/// the slicers to name program points).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_IR_PROGRAM_H
#define TAJ_IR_PROGRAM_H

#include "ir/Instruction.h"
#include "ir/Type.h"
#include "support/StringPool.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace taj {

/// Bitmask of security-rule kinds (TAJ Section 1 / Section 3: XSS,
/// injection, malicious file execution, information leakage).
using RuleMask = uint8_t;
namespace rules {
inline constexpr RuleMask None = 0;
inline constexpr RuleMask XSS = 1;
inline constexpr RuleMask SQLI = 2;
inline constexpr RuleMask FILE = 4;
inline constexpr RuleMask LEAK = 8;
inline constexpr RuleMask All = XSS | SQLI | FILE | LEAK;
inline constexpr int NumRules = 4;
/// Human-readable rule name for bit \p RuleBit (one of the masks above).
const char *ruleName(RuleMask RuleBit);
} // namespace rules

/// Synthetic-model identifiers (TAJ Section 4). A method marked with an
/// intrinsic has no analyzable body; the pointer analysis and the slicers
/// apply hand-written transfer functions instead.
enum class Intrinsic : uint8_t {
  None,           ///< Ordinary method with a TIR body.
  Identity,       ///< Returns its first real argument (e.g. String.trim).
  StringTransfer, ///< Returns a fresh string derived from all arguments
                  ///< (concat, format, ...). String-carrier model, §4.2.1.
  Sanitize,       ///< Returns a sanitized copy; kills the method's
                  ///< SanitizerRules on flows through it.
  SourceReturn,   ///< Returns fresh tainted data (e.g. getParameter).
  SinkConsume,    ///< Consumes sensitive parameters (e.g. println).
  MapPut,         ///< recv.put(key, value); constant-key model, §4.2.1.
  MapGet,         ///< recv.get(key).
  CollAdd,        ///< recv.add(value); single-channel collection model.
  CollGet,        ///< recv.get(...).
  ClassForName,   ///< Class.forName(name); reflection model, §4.2.3.
  GetMethod,      ///< cls.getMethod(name).
  MethodInvoke,   ///< method.invoke(recv, argsArray).
  ThreadStart,    ///< recv.start() dispatches to recv's run() (native model).
  JndiLookup,     ///< ctx.lookup(name); EJB deployment-descriptor model §4.2.2.
  HomeCreate,     ///< home.create() returns a bean instance.
  GetMessage      ///< exception.getMessage(); info-leak source model §4.1.2.
};

/// A (possibly static) field declaration.
struct Field {
  Symbol Name = 0;
  ClassId Owner = InvalidId;
  Type Ty;
  bool IsStatic = false;
};

/// A method: signature, security/model annotations, and a CFG body.
struct Method {
  Symbol Name = 0;
  ClassId Owner = InvalidId;
  MethodId Id = InvalidId;
  /// Parameter types; for instance methods ParamTypes[0] is the receiver.
  std::vector<Type> ParamTypes;
  Type RetType;
  bool IsStatic = false;
  /// True once the body is in SSA form.
  bool InSSA = false;
  /// Analysis entrypoint (servlet doGet, Struts Action.execute, ...).
  bool IsEntry = false;
  /// Library factory method: gets 1-call-string context (§3.1).
  bool IsFactory = false;
  /// Rule kinds whose taint this method's return value generates.
  RuleMask SourceRules = rules::None;
  /// Rule kinds this method sanitizes.
  RuleMask SanitizerRules = rules::None;
  /// Rule kinds for which this method is a sink.
  RuleMask SinkRules = rules::None;
  /// Bitmask over parameter indices: which params are sensitive sink inputs.
  uint32_t SinkParamMask = 0;
  /// Synthetic-model id; Intrinsic::None means the body is analyzable.
  Intrinsic Intr = Intrinsic::None;
  /// Number of parameters (== leading value ids 0..NumParams-1).
  uint32_t NumParams = 0;
  /// Total number of values (locals pre-SSA, SSA values post-SSA).
  uint32_t NumValues = 0;
  std::vector<BasicBlock> Blocks;

  bool isTaintApi() const {
    return SourceRules != rules::None || SinkRules != rules::None ||
           SanitizerRules != rules::None;
  }
  bool hasBody() const { return !Blocks.empty() && Intr == Intrinsic::None; }
};

/// Class flag bits.
namespace classflags {
inline constexpr uint32_t Library = 1 << 0;       ///< Library (vs app) code.
inline constexpr uint32_t Collection = 1 << 1;    ///< Unlimited obj-sens §3.1.
inline constexpr uint32_t Map = 1 << 2;           ///< Constant-key dictionary.
inline constexpr uint32_t StringCarrier = 1 << 3; ///< String-like, §4.2.1.
inline constexpr uint32_t Whitelisted = 1 << 4;   ///< Benign, excludable.
inline constexpr uint32_t Thread = 1 << 5;        ///< start() dispatches run().
inline constexpr uint32_t ActionForm = 1 << 6;    ///< Struts form bean §4.2.2.
} // namespace classflags

/// A class: name, superclass, members, and model flags.
struct Class {
  Symbol Name = 0;
  ClassId Id = InvalidId;
  ClassId Super = InvalidId; ///< InvalidId only for the root class.
  std::vector<FieldId> Fields;
  std::vector<MethodId> Methods;
  uint32_t Flags = 0;

  bool is(uint32_t Flag) const { return (Flags & Flag) != 0; }
};

/// Dense id of an instruction in the whole program (see
/// Program::indexStatements).
using StmtId = uint32_t;

/// Back-reference from a StmtId to its location.
struct StmtRef {
  MethodId M = InvalidId;
  int32_t Block = -1;
  int32_t Index = -1;
};

/// A whole TIR program.
class Program {
public:
  StringPool Pool;
  std::vector<Class> Classes;
  std::vector<Method> Methods;
  std::vector<Field> Fields;

  /// Looks up a class by name; returns InvalidId if absent.
  ClassId findClass(std::string_view Name) const;
  /// Looks up a field declared directly in \p C; returns InvalidId if absent.
  FieldId findField(ClassId C, std::string_view Name) const;
  /// Looks up a method declared directly in \p C; returns InvalidId if absent.
  MethodId findMethod(ClassId C, std::string_view Name) const;

  const Class &cls(ClassId C) const { return Classes[C]; }
  const Method &method(MethodId M) const { return Methods[M]; }
  const Field &field(FieldId F) const { return Fields[F]; }

  /// (Re)builds the statement index. Must be called after the IR is final
  /// (post-SSA) and before any analysis runs.
  void indexStatements();

  /// Number of indexed statements.
  uint32_t numStmts() const { return static_cast<uint32_t>(StmtRefs.size()); }

  /// Dense id of instruction (\p M, \p Block, \p Index).
  StmtId stmtId(MethodId M, int32_t Block, int32_t Index) const;

  /// Location of statement \p S.
  const StmtRef &stmtRef(StmtId S) const {
    assert(S < StmtRefs.size() && "statement id out of range");
    return StmtRefs[S];
  }

  /// The instruction named by \p S.
  const Instruction &stmt(StmtId S) const {
    const StmtRef &R = StmtRefs[S];
    return Methods[R.M].Blocks[R.Block].Insts[R.Index];
  }

  /// First StmtId of method \p M (statements of a method are contiguous).
  StmtId methodStmtBegin(MethodId M) const { return MethodStmtBase[M]; }
  /// One past the last StmtId of method \p M.
  StmtId methodStmtEnd(MethodId M) const {
    return M + 1 < MethodStmtBase.size() ? MethodStmtBase[M + 1] : numStmts();
  }

  /// Renders "Class.method" for diagnostics.
  std::string methodName(MethodId M) const;

  /// Total instruction count of method \p M.
  static uint32_t methodSize(const Method &M);

private:
  std::vector<StmtRef> StmtRefs;
  std::vector<StmtId> MethodStmtBase;
  mutable std::unordered_map<Symbol, ClassId> ClassByName;
};

} // namespace taj

#endif // TAJ_IR_PROGRAM_H
