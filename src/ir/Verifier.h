//===- ir/Verifier.h - TIR structural checks -------------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of SSA-form TIR: CFG consistency, single
/// definitions, uses dominated by definitions, phi arity, and terminator
/// placement. Returns human-readable error strings (empty = valid).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_IR_VERIFIER_H
#define TAJ_IR_VERIFIER_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace taj {

/// Verifies one SSA-form method; appends errors to \p Errors.
void verifyMethod(const Program &P, MethodId M, std::vector<std::string> &Errors);

/// Verifies every method with a body. Returns all errors (empty = valid).
std::vector<std::string> verifyProgram(const Program &P);

} // namespace taj

#endif // TAJ_IR_VERIFIER_H
