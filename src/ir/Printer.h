//===- ir/Printer.h - Textual dump of TIR ----------------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders TIR programs, methods and instructions as text (the same surface
/// syntax the frontend parses, modulo SSA value names).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_IR_PRINTER_H
#define TAJ_IR_PRINTER_H

#include "ir/Program.h"

#include <string>

namespace taj {

/// Renders one instruction.
std::string printInst(const Program &P, const Instruction &I);

/// Renders one method body (signature, blocks, instructions).
std::string printMethod(const Program &P, MethodId M);

/// Renders the entire program.
std::string printProgram(const Program &P);

/// Renders a type.
std::string printType(const Program &P, Type T);

} // namespace taj

#endif // TAJ_IR_PRINTER_H
