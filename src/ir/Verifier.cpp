//===- ir/Verifier.cpp -----------------------------------------*- C++ -*-===//

#include "ir/Verifier.h"
#include "ssa/Dominators.h"

#include <algorithm>

using namespace taj;

void taj::verifyMethod(const Program &P, MethodId MId,
                       std::vector<std::string> &Errors) {
  const Method &M = P.Methods[MId];
  auto Err = [&](const std::string &S) {
    Errors.push_back(P.methodName(MId) + ": " + S);
  };
  if (!M.InSSA) {
    Err("not in SSA form");
    return;
  }
  int32_t N = static_cast<int32_t>(M.Blocks.size());
  if (N == 0) {
    Err("no blocks");
    return;
  }

  // CFG consistency.
  for (int32_t B = 0; B < N; ++B) {
    const BasicBlock &BB = M.Blocks[B];
    if (BB.Insts.empty()) {
      Err("empty block B" + std::to_string(B));
      continue;
    }
    if (!BB.Insts.back().isTerminator())
      Err("block B" + std::to_string(B) + " lacks a terminator");
    for (size_t I = 0; I + 1 < BB.Insts.size(); ++I)
      if (BB.Insts[I].isTerminator())
        Err("terminator in the middle of B" + std::to_string(B));
    for (int32_t S : BB.Succs) {
      if (S < 0 || S >= N) {
        Err("successor out of range in B" + std::to_string(B));
        continue;
      }
      const auto &Preds = M.Blocks[S].Preds;
      if (std::find(Preds.begin(), Preds.end(), B) == Preds.end())
        Err("missing back edge B" + std::to_string(S) + "<-B" +
            std::to_string(B));
    }
  }

  // Single definitions; defs/uses within range.
  std::vector<int> DefCount(M.NumValues, 0);
  for (uint32_t K = 0; K < M.NumParams; ++K)
    DefCount[K] = 1;
  std::vector<std::pair<int32_t, size_t>> DefSite(M.NumValues, {-1, 0});
  for (int32_t B = 0; B < N; ++B) {
    const BasicBlock &BB = M.Blocks[B];
    for (size_t I = 0; I < BB.Insts.size(); ++I) {
      const Instruction &Ins = BB.Insts[I];
      if (Ins.Dst != NoValue) {
        if (Ins.Dst < 0 || static_cast<uint32_t>(Ins.Dst) >= M.NumValues) {
          Err("def out of range");
          continue;
        }
        ++DefCount[Ins.Dst];
        DefSite[Ins.Dst] = {B, I};
      }
      if (Ins.Op == Opcode::Phi) {
        if (I > 0 && BB.Insts[I - 1].Op != Opcode::Phi)
          Err("phi not at block head in B" + std::to_string(B));
        if (Ins.Args.size() != BB.Preds.size())
          Err("phi arity mismatch in B" + std::to_string(B));
      }
      for (ValueId A : Ins.Args) {
        if (A == NoValue) {
          if (Ins.Op != Opcode::Phi)
            Err("undef operand outside phi");
          continue;
        }
        if (A < 0 || static_cast<uint32_t>(A) >= M.NumValues)
          Err("use out of range");
      }
    }
  }
  for (uint32_t V = 0; V < M.NumValues; ++V)
    if (DefCount[V] > 1)
      Err("value v" + std::to_string(V) + " has multiple definitions");

  // Dominance of uses by definitions.
  Dominators Dom(M);
  auto DefDominatesUse = [&](ValueId V, int32_t UseB, size_t UseI) {
    if (static_cast<uint32_t>(V) < M.NumParams)
      return true; // params defined at entry
    auto [DB, DI] = DefSite[V];
    if (DB == -1)
      return false; // no def at all
    if (DB == UseB)
      return DI < UseI;
    return Dom.dominates(DB, UseB);
  };
  for (int32_t B = 0; B < N; ++B) {
    if (!Dom.reachable(B))
      continue;
    const BasicBlock &BB = M.Blocks[B];
    for (size_t I = 0; I < BB.Insts.size(); ++I) {
      const Instruction &Ins = BB.Insts[I];
      if (Ins.Op == Opcode::Phi) {
        // Phi operand k must be defined at the end of predecessor k.
        for (size_t K = 0; K < Ins.Args.size(); ++K) {
          ValueId A = Ins.Args[K];
          if (A == NoValue || static_cast<uint32_t>(A) < M.NumParams)
            continue;
          int32_t PredB = BB.Preds[K];
          auto [DB, DI] = DefSite[A];
          (void)DI;
          if (DB == -1 || !Dom.dominates(DB, PredB))
            Err("phi operand v" + std::to_string(A) +
                " does not dominate predecessor edge in B" +
                std::to_string(B));
        }
        continue;
      }
      for (ValueId A : Ins.Args) {
        if (A == NoValue)
          continue;
        if (!DefDominatesUse(A, B, I))
          Err("use of v" + std::to_string(A) + " in B" + std::to_string(B) +
              " not dominated by its definition");
      }
    }
  }
}

/// Table-reference validity: every class/field/method cross-reference in
/// the tables and in instruction operands names a live table entry. These
/// checks catch structurally stale programs (e.g. a cache restore whose
/// payload mutated under an intact checksum) that the per-method SSA
/// checks cannot see.
static void verifyTables(const Program &P, std::vector<std::string> &Errors) {
  const uint32_t NumClasses = static_cast<uint32_t>(P.Classes.size());
  const uint32_t NumFields = static_cast<uint32_t>(P.Fields.size());
  const uint32_t NumMethods = static_cast<uint32_t>(P.Methods.size());
  for (ClassId C = 0; C < NumClasses; ++C) {
    const Class &Cls = P.Classes[C];
    if (Cls.Id != C)
      Errors.push_back("class table entry " + std::to_string(C) +
                       " carries id " + std::to_string(Cls.Id));
    if (Cls.Super != InvalidId && Cls.Super >= NumClasses)
      Errors.push_back("class " + std::to_string(C) +
                       " has an out-of-range superclass");
    for (FieldId F : Cls.Fields)
      if (F >= NumFields || P.Fields[F].Owner != C)
        Errors.push_back("class " + std::to_string(C) +
                         " lists a field it does not own");
    for (MethodId M : Cls.Methods)
      if (M >= NumMethods || P.Methods[M].Owner != C)
        Errors.push_back("class " + std::to_string(C) +
                         " lists a method it does not own");
  }
  for (MethodId M = 0; M < NumMethods; ++M) {
    const Method &Mth = P.Methods[M];
    if (Mth.Owner >= NumClasses) {
      Errors.push_back(P.methodName(M) + ": owner class out of range");
      continue;
    }
    for (const BasicBlock &BB : Mth.Blocks) {
      for (const Instruction &I : BB.Insts) {
        const bool UsesField = I.Op == Opcode::Load || I.Op == Opcode::Store ||
                               I.Op == Opcode::StaticLoad ||
                               I.Op == Opcode::StaticStore;
        if (UsesField && I.Field >= NumFields)
          Errors.push_back(P.methodName(M) +
                           ": instruction references field id out of range");
        const bool UsesClass = I.Op == Opcode::New ||
                               I.Op == Opcode::NewArray ||
                               (I.Op == Opcode::Call &&
                                I.CKind != CallKind::Virtual);
        if (UsesClass && I.Cls != InvalidId && I.Cls >= NumClasses)
          Errors.push_back(P.methodName(M) +
                           ": instruction references class id out of range");
      }
    }
  }
}

std::vector<std::string> taj::verifyProgram(const Program &P) {
  std::vector<std::string> Errors;
  verifyTables(P, Errors);
  for (MethodId M = 0; M < P.Methods.size(); ++M)
    if (P.Methods[M].hasBody())
      verifyMethod(P, M, Errors);
  return Errors;
}
