//===- ir/Type.cpp ---------------------------------------------*- C++ -*-===//

#include "ir/Type.h"

// Type is header-only; this TU anchors the library.
namespace taj {
namespace {
[[maybe_unused]] constexpr TypeKind AnchorKind = TypeKind::Void;
} // namespace
} // namespace taj
