//===- ir/Type.h - TIR types -----------------------------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of the TAJ intermediate representation (TIR). TIR is a small
/// Java-like register-transfer language: values are either primitive ints
/// (which double as booleans), references to class instances, or references
/// to arrays of class instances.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_IR_TYPE_H
#define TAJ_IR_TYPE_H

#include <cstdint>

namespace taj {

/// Dense id of a class in a Program. Index into Program::Classes.
using ClassId = uint32_t;
/// Dense id of a method in a Program. Index into Program::Methods.
using MethodId = uint32_t;
/// Dense id of a field in a Program. Index into Program::Fields.
using FieldId = uint32_t;

/// Sentinel for "no id".
inline constexpr uint32_t InvalidId = ~0u;

/// The coarse kind of a TIR type.
enum class TypeKind : uint8_t {
  Void, ///< No value (method return only).
  Int,  ///< Primitive integer / boolean.
  Ref,  ///< Reference to an instance of Cls (or a subclass).
  Array ///< Reference to an array with element class Cls.
};

/// A TIR type: a kind plus, for references and arrays, the class id.
struct Type {
  TypeKind Kind = TypeKind::Void;
  ClassId Cls = InvalidId;

  static Type voidTy() { return {TypeKind::Void, InvalidId}; }
  static Type intTy() { return {TypeKind::Int, InvalidId}; }
  static Type ref(ClassId C) { return {TypeKind::Ref, C}; }
  static Type array(ClassId Elem) { return {TypeKind::Array, Elem}; }

  bool isRefLike() const {
    return Kind == TypeKind::Ref || Kind == TypeKind::Array;
  }
  bool operator==(const Type &O) const {
    return Kind == O.Kind && Cls == O.Cls;
  }
};

} // namespace taj

#endif // TAJ_IR_TYPE_H
