//===- ir/Builder.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Builder.h"
#include "ssa/SSABuilder.h"

#include <cassert>

using namespace taj;

//===----------------------------------------------------------------------===//
// MethodBuilder
//===----------------------------------------------------------------------===//

ValueId MethodBuilder::param(uint32_t Idx) const {
  assert(Idx < P.Methods[M].NumParams && "parameter index out of range");
  return static_cast<ValueId>(Idx);
}

ValueId MethodBuilder::freshSlot() {
  return static_cast<ValueId>(P.Methods[M].NumValues++);
}

int32_t MethodBuilder::newBlock() {
  Method &Meth = P.Methods[M];
  Meth.Blocks.emplace_back();
  return static_cast<int32_t>(Meth.Blocks.size() - 1);
}

Instruction &MethodBuilder::push(Instruction I) {
  assert(!Finished && "method already finished");
  I.Line = Line;
  Method &Meth = P.Methods[M];
  assert(Cur >= 0 && Cur < static_cast<int32_t>(Meth.Blocks.size()));
  Meth.Blocks[Cur].Insts.push_back(std::move(I));
  return Meth.Blocks[Cur].Insts.back();
}

ValueId MethodBuilder::def(Instruction I) {
  ValueId D = freshSlot();
  I.Dst = D;
  push(std::move(I));
  return D;
}

ValueId MethodBuilder::constStr(std::string_view Lit) {
  Instruction I;
  I.Op = Opcode::ConstStr;
  I.StrLit = P.Pool.intern(Lit);
  return def(std::move(I));
}

ValueId MethodBuilder::constInt(int64_t V) {
  Instruction I;
  I.Op = Opcode::ConstInt;
  I.IntLit = V;
  return def(std::move(I));
}

ValueId MethodBuilder::emitNew(ClassId C) {
  Instruction I;
  I.Op = Opcode::New;
  I.Cls = C;
  return def(std::move(I));
}

ValueId MethodBuilder::emitNewArray(ClassId Elem) {
  Instruction I;
  I.Op = Opcode::NewArray;
  I.Cls = Elem;
  return def(std::move(I));
}

ValueId MethodBuilder::emitCopy(ValueId Src) {
  Instruction I;
  I.Op = Opcode::Copy;
  I.Args = {Src};
  return def(std::move(I));
}

void MethodBuilder::assign(ValueId DstSlot, ValueId Src) {
  Instruction I;
  I.Op = Opcode::Copy;
  I.Dst = DstSlot;
  I.Args = {Src};
  push(std::move(I));
}

ValueId MethodBuilder::emitLoad(ValueId Base, FieldId F) {
  Instruction I;
  I.Op = Opcode::Load;
  I.Args = {Base};
  I.Field = F;
  return def(std::move(I));
}

void MethodBuilder::emitStore(ValueId Base, FieldId F, ValueId Val) {
  Instruction I;
  I.Op = Opcode::Store;
  I.Args = {Base, Val};
  I.Field = F;
  push(std::move(I));
}

ValueId MethodBuilder::emitArrayLoad(ValueId Base) {
  Instruction I;
  I.Op = Opcode::ArrayLoad;
  I.Args = {Base};
  return def(std::move(I));
}

void MethodBuilder::emitArrayStore(ValueId Base, ValueId Val) {
  Instruction I;
  I.Op = Opcode::ArrayStore;
  I.Args = {Base, Val};
  push(std::move(I));
}

ValueId MethodBuilder::emitStaticLoad(FieldId F) {
  Instruction I;
  I.Op = Opcode::StaticLoad;
  I.Field = F;
  return def(std::move(I));
}

void MethodBuilder::emitStaticStore(FieldId F, ValueId Val) {
  Instruction I;
  I.Op = Opcode::StaticStore;
  I.Args = {Val};
  I.Field = F;
  push(std::move(I));
}

ValueId MethodBuilder::emitBinop(BinopKind K, ValueId A, ValueId B) {
  Instruction I;
  I.Op = Opcode::Binop;
  I.IntLit = static_cast<int64_t>(K);
  I.Args = {A, B};
  return def(std::move(I));
}

ValueId MethodBuilder::callVirtualV(std::string_view Name,
                                    const std::vector<ValueId> &Args) {
  assert(!Args.empty() && "virtual call needs a receiver");
  Instruction I;
  I.Op = Opcode::Call;
  I.CKind = CallKind::Virtual;
  I.CalleeName = P.Pool.intern(Name);
  I.Args = Args;
  return def(std::move(I));
}

ValueId MethodBuilder::callVirtual(std::string_view Name,
                                   std::initializer_list<ValueId> Args) {
  return callVirtualV(Name, std::vector<ValueId>(Args));
}

ValueId MethodBuilder::callStatic(ClassId C, std::string_view Name,
                                  std::initializer_list<ValueId> Args) {
  Instruction I;
  I.Op = Opcode::Call;
  I.CKind = CallKind::Static;
  I.Cls = C;
  I.CalleeName = P.Pool.intern(Name);
  I.Args = Args;
  return def(std::move(I));
}

ValueId MethodBuilder::callSpecial(ClassId C, std::string_view Name,
                                   std::initializer_list<ValueId> Args) {
  assert(Args.size() > 0 && "special call needs a receiver");
  Instruction I;
  I.Op = Opcode::Call;
  I.CKind = CallKind::Special;
  I.Cls = C;
  I.CalleeName = P.Pool.intern(Name);
  I.Args = Args;
  return def(std::move(I));
}

void MethodBuilder::emitRet(ValueId V) {
  Instruction I;
  I.Op = Opcode::Return;
  if (V != NoValue)
    I.Args = {V};
  push(std::move(I));
}

void MethodBuilder::emitGoto(int32_t Target) {
  Instruction I;
  I.Op = Opcode::Goto;
  I.Target = Target;
  push(std::move(I));
}

void MethodBuilder::emitIf(ValueId Cond, int32_t Then, int32_t Else) {
  Instruction I;
  I.Op = Opcode::If;
  I.Args = {Cond};
  I.Target = Then;
  I.Target2 = Else;
  push(std::move(I));
}

ValueId MethodBuilder::emitCaught() {
  Instruction I;
  I.Op = Opcode::Caught;
  return def(std::move(I));
}

void MethodBuilder::emitThrow(ValueId V) {
  Instruction I;
  I.Op = Opcode::Throw;
  I.Args = {V};
  push(std::move(I));
}

void MethodBuilder::finish() {
  assert(!Finished && "finish() called twice");
  Finished = true;
  Method &Meth = P.Methods[M];

  // Add fall-through terminators; the last block returns if unterminated.
  for (int32_t B = 0; B < static_cast<int32_t>(Meth.Blocks.size()); ++B) {
    BasicBlock &BB = Meth.Blocks[B];
    if (!BB.Insts.empty() && BB.Insts.back().isTerminator())
      continue;
    Instruction I;
    if (B + 1 < static_cast<int32_t>(Meth.Blocks.size())) {
      I.Op = Opcode::Goto;
      I.Target = B + 1;
    } else {
      I.Op = Opcode::Return;
    }
    BB.Insts.push_back(std::move(I));
  }

  sealCfg(Meth);
  removeUnreachableBlocks(Meth);
  buildSSA(Meth);
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

ClassId Builder::makeClass(std::string_view Name, ClassId Super,
                           uint32_t Flags) {
  assert(P.findClass(Name) == InvalidId && "duplicate class");
  Class C;
  C.Name = P.Pool.intern(Name);
  C.Id = static_cast<ClassId>(P.Classes.size());
  C.Super = Super;
  C.Flags = Flags;
  P.Classes.push_back(std::move(C));
  return P.Classes.back().Id;
}

FieldId Builder::makeField(ClassId C, std::string_view Name, Type Ty,
                           bool IsStatic) {
  Field F;
  F.Name = P.Pool.intern(Name);
  F.Owner = C;
  F.Ty = Ty;
  F.IsStatic = IsStatic;
  FieldId Id = static_cast<FieldId>(P.Fields.size());
  P.Fields.push_back(F);
  P.Classes[C].Fields.push_back(Id);
  return Id;
}

static MethodId addMethod(Program &P, ClassId C, std::string_view Name,
                          const std::vector<Type> &ParamTypes, Type Ret,
                          bool IsStatic) {
  Method M;
  M.Name = P.Pool.intern(Name);
  M.Owner = C;
  M.Id = static_cast<MethodId>(P.Methods.size());
  M.ParamTypes = ParamTypes;
  M.RetType = Ret;
  M.IsStatic = IsStatic;
  M.NumParams = static_cast<uint32_t>(ParamTypes.size());
  M.NumValues = M.NumParams;
  P.Methods.push_back(std::move(M));
  MethodId Id = P.Methods.back().Id;
  P.Classes[C].Methods.push_back(Id);
  return Id;
}

MethodBuilder Builder::startMethod(ClassId C, std::string_view Name,
                                   const std::vector<Type> &ParamTypes,
                                   Type Ret, bool IsStatic) {
  MethodId Id = addMethod(P, C, Name, ParamTypes, Ret, IsStatic);
  MethodBuilder MB(P, Id);
  MB.newBlock();
  MB.setBlock(0);
  return MB;
}

MethodId Builder::makeIntrinsic(ClassId C, std::string_view Name,
                                const std::vector<Type> &ParamTypes, Type Ret,
                                Intrinsic Intr, bool IsStatic) {
  MethodId Id = addMethod(P, C, Name, ParamTypes, Ret, IsStatic);
  P.Methods[Id].Intr = Intr;
  P.Methods[Id].InSSA = true;
  return Id;
}
