//===- benchgen/Generator.h - Synthetic application generator --*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates one synthetic benchmark application per AppSpec, planting the
/// taint-flow patterns whose interplay reproduces the shape of TAJ's
/// evaluation: true flows (direct / wrapped / dictionary / reflective /
/// inter-thread / overlong), decoys (alias conflation, heap-ordering,
/// shared-helper context confusion), sanitized flows, a whitelisted benign
/// cluster, and taint-free filler mass. Ground truth is tracked via source
/// line tags, so reported issues classify mechanically into true/false
/// positives (Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_BENCHGEN_GENERATOR_H
#define TAJ_BENCHGEN_GENERATOR_H

#include "benchgen/AppSpec.h"
#include "model/BuiltinLibrary.h"
#include "slicer/Issue.h"

#include <memory>
#include <set>

namespace taj {

/// Ground truth of one generated application: the set of real flows as
/// (source line tag, sink line tag) pairs.
struct GroundTruth {
  std::set<std::pair<uint32_t, uint32_t>> RealPairs;
  uint32_t numReal() const { return static_cast<uint32_t>(RealPairs.size()); }
};

/// A generated application ready for analysis.
struct GeneratedApp {
  std::unique_ptr<Program> P;
  BuiltinLibrary Lib;
  MethodId Root = InvalidId;
  GroundTruth Truth;
  // Generated-code statistics (our Table 2 columns).
  uint32_t GenClasses = 0;
  uint32_t GenMethods = 0;
  uint32_t GenStmts = 0;
};

/// Generates the application described by \p Spec (deterministic per seed).
GeneratedApp generateApp(const AppSpec &Spec);

/// TP/FP classification of reported issues against ground truth. Issues
/// are collapsed to distinct (source, sink) statement pairs first.
struct Classification {
  uint32_t TruePositives = 0;
  uint32_t FalsePositives = 0;
  /// Distinct planted real flows that were found (recall numerator).
  uint32_t RealFound = 0;
};
Classification classify(const Program &P, const GroundTruth &Truth,
                        const std::vector<Issue> &Issues);

/// Number of distinct (source, sink) pairs — the "Issues" column of
/// Table 3.
uint32_t distinctIssueCount(const std::vector<Issue> &Issues);

} // namespace taj

#endif // TAJ_BENCHGEN_GENERATOR_H
