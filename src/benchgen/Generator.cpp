//===- benchgen/Generator.cpp ----------------------------------*- C++ -*-===//

#include "benchgen/Generator.h"
#include "benchgen/Patterns.h"
#include "model/Entrypoints.h"

#include <set>

using namespace taj;
using namespace taj::benchgen;

GeneratedApp taj::generateApp(const AppSpec &Spec) {
  GeneratedApp App;
  App.P = std::make_unique<Program>();
  Program &P = *App.P;
  App.Lib = installBuiltinLibrary(P);
  Builder B(P);
  Rng R(Spec.Seed);
  PlantCtx C{P, B, App.Lib, App.Truth, R, InvalidId, 0};
  C.AppCls = B.makeClass("App", App.Lib.Servlet);

  const PlantCounts &PC = Spec.Plants;

  // Ballast first: under the priority policy its creation order places it
  // ahead of later helpers in the pending queue.
  plantBallast(C, PC.BallastMethods);

  // Real flows. Webgoat's sinks sit inside helper methods, making them
  // budget-sensitive (§7.2: the 20,000-node bound loses true positives on
  // Webgoat only).
  bool BudgetSensitive = PC.BallastMethods > 0;
  for (uint32_t K = 0; K < PC.TpDirect; ++K)
    plantDirect(C, R.below(2), BudgetSensitive);
  for (uint32_t K = 0; K < PC.TpWrapped; ++K)
    plantWrapped(C);
  for (uint32_t K = 0; K < PC.TpMap; ++K)
    plantMap(C);
  for (uint32_t K = 0; K < PC.TpReflective; ++K)
    plantReflective(C);
  for (uint32_t K = 0; K < PC.TpHelperKeyMap; ++K)
    plantHelperKeyMap(C);
  for (uint32_t K = 0; K < PC.TpComputedReflective; ++K)
    plantComputedReflective(C);
  for (uint32_t K = 0; K < PC.TpThread; ++K)
    plantThread(C);
  for (uint32_t K = 0; K < PC.TpLong; ++K)
    plantLongReal(C);

  // Decoys after the real flows: their helper methods are created later,
  // so a call-graph budget prunes them first (the paper's prioritized
  // configuration drops false positives, not true positives).
  for (uint32_t K = 0; K < PC.FpAlias; ++K)
    plantAliasFp(C, /*SinkInHelper=*/true);
  for (uint32_t K = 0; K < PC.FpHeap; ++K)
    plantHeapFp(C, /*ChainLen=*/2, /*SinkInHelper=*/true);
  for (uint32_t K = 0; K < PC.FpHeapLong; ++K)
    plantHeapFp(C, /*ChainLen=*/6, /*SinkInHelper=*/true);
  for (uint32_t K = 0; K < PC.FpCtx; ++K)
    plantCtxFp(C);
  for (uint32_t K = 0; K < PC.Sanitized; ++K)
    plantSanitized(C);

  // Taint-free mass last (lowest §6.1 priority).
  plantFiller(C, PC.FillerMethods, /*ChanHeavy=*/!Spec.Paper.CsCompleted,
              /*Library=*/false);
  plantFiller(C, PC.LibFillerMethods, /*ChanHeavy=*/false, /*Library=*/true);

  App.Root = synthesizeEntrypointDriver(P);
  P.indexStatements();

  App.GenClasses = static_cast<uint32_t>(P.Classes.size());
  for (const Method &M : P.Methods)
    if (M.hasBody())
      App.GenMethods += 1;
  App.GenStmts = P.numStmts();
  return App;
}

uint32_t taj::distinctIssueCount(const std::vector<Issue> &Issues) {
  std::set<std::pair<StmtId, StmtId>> Pairs;
  for (const Issue &I : Issues)
    Pairs.insert({I.Source, I.Sink});
  return static_cast<uint32_t>(Pairs.size());
}

Classification taj::classify(const Program &P, const GroundTruth &Truth,
                             const std::vector<Issue> &Issues) {
  Classification Out;
  std::set<std::pair<StmtId, StmtId>> Pairs;
  for (const Issue &I : Issues)
    Pairs.insert({I.Source, I.Sink});
  std::set<std::pair<uint32_t, uint32_t>> FoundReal;
  for (auto [Src, Sink] : Pairs) {
    uint32_t SrcLine = P.stmt(Src).Line;
    uint32_t SinkLine = P.stmt(Sink).Line;
    if (Truth.RealPairs.count({SrcLine, SinkLine})) {
      ++Out.TruePositives;
      FoundReal.insert({SrcLine, SinkLine});
    } else {
      ++Out.FalsePositives;
    }
  }
  Out.RealFound = static_cast<uint32_t>(FoundReal.size());
  return Out;
}
