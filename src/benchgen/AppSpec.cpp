//===- benchgen/AppSpec.cpp ------------------------------------*- C++ -*-===//

#include "benchgen/AppSpec.h"

#include <algorithm>

using namespace taj;

namespace {

/// Raw Table 2 + Table 3 rows (paper order). -1 in the Cs column encodes
/// "did not complete" (out of memory).
struct Row {
  const char *Name;
  const char *Version;
  uint32_t Files, Lines, ClsApp, MethApp, ClsTot, MethTot;
  uint32_t HU, HUs, HP, HPs, HO, HOs;
  int32_t CS, CSs;
  uint32_t CI, CIs;
  bool Accuracy;
  uint32_t ThreadFlows; ///< paper-reported CS false negatives
};

const Row Rows[] = {
    // name, ver, files, lines, clsA, methA, clsT, methT,
    //   HU, HUs, HP, HPs, HO, HOs, CS, CSs, CI, CIs, acc, thr
    {"A", "1.0", 121, 746, 43, 2057, 4272, 150339,
     54, 43, 33, 54, 37, 23, 51, 554, 73, 88, true, 0},
    {"B", "-", 314, 1680, 246, 9252, 14552, 328941,
     25, 1160, 7, 242, 1, 217, -1, 0, 67, 564, true, 0},
    {"Blojsom", "3.1", 225, 19984, 254, 7216, 10688, 354114,
     238, 783, 162, 222, 123, 207, -1, 0, 504, 275, false, 0},
    {"BlueBlog", "1.0", 32, 650, 38, 1044, 7628, 269056,
     19, 5, 19, 5, 12, 6, 14, 376, 30, 7, true, 2},
    {"Dlog", "3.0-BETA-2", 240, 17229, 268, 12957, 7790, 284808,
     21, 873, 11, 243, 6, 221, -1, 0, 168, 602, false, 0},
    {"Friki", "2.1.1-58", 40, 2339, 35, 1133, 3848, 116480,
     60, 11, 60, 10, 7, 9, 14, 1392, 125, 11, true, 0},
    {"GestCV", "1.0", 159, 107494, 124, 5139, 13673, 473574,
     21, 2461, 20, 182, 7, 209, -1, 0, 255, 760, true, 0},
    {"Ginp", "1.0", 121, 387, 73, 2941, 8076, 277680,
     67, 40, 67, 45, 49, 28, 43, 1028, 309, 75, false, 0},
    {"GridSphere", "2.2.10", 698, 44767, 676, 32134, 10671, 385609,
     803, 6505, 116, 735, 261, 2467, -1, 0, 853, 1281, false, 0},
    {"I", "1.0", 30, 281, 25, 996, 4254, 149278,
     3, 8, 3, 8, 3, 8, 2, 16, 17, 15, true, 1},
    {"JSPWiki", "2.6", 724, 27000, 429, 13087, 9863, 335828,
     68, 159, 67, 270, 26, 118, -1, 0, 381, 192, false, 0},
    {"Lutece", "1.0", 1039, 3065, 467, 12398, 7606, 237137,
     3, 824, 2, 28, 4, 59, -1, 0, 41, 99, false, 0},
    {"MVNForum", "1.0.2", 969, 8860, 608, 19722, 8979, 315527,
     260, 313, 100, 228, 293, 205, -1, 0, 374, 213, false, 0},
    {"PersonalBlog", "1.2.6", 135, 47007, 38, 1644, 4951, 157794,
     454, 3708, 108, 386, 48, 740, -1, 0, 1854, 604, false, 0},
    {"Roller", "0.9.9", 325, 4865, 251, 9786, 7200, 246390,
     650, 1495, 87, 175, 230, 268, -1, 0, 3171, 794, false, 0},
    {"S", "-", 168, 2064, 100, 10965, 6219, 393204,
     395, 602, 25, 398, 24, 263, -1, 0, 697, 729, true, 0},
    {"SBM", "1.08", 125, 5165, 143, 6506, 8047, 283069,
     154, 9, 154, 7, 159, 6, 125, 26, 161, 10, true, 2},
    {"SnipSnap", "1.0-BETA-1", 828, 85325, 571, 17960, 12493, 455410,
     91, 279, 89, 167, 94, 153, -1, 0, 397, 291, false, 0},
    {"SPLC", "1.0", 106, 12447, 69, 3526, 6538, 229417,
     40, 188, 37, 279, 36, 116, -1, 0, 103, 272, false, 0},
    {"ST", "-", 1451, 594, 5956, 31309, 24221, 822362,
     731, 933, 369, 207, 347, 277, -1, 0, 1830, 565, false, 0},
    {"VQWiki", "1.0", 280, 31325, 185, 6164, 4803, 152341,
     888, 2450, 303, 383, 545, 565, -1, 0, 2284, 784, false, 0},
    {"Webgoat", "5.1-20080213", 245, 17656, 192, 14309, 6663, 254726,
     48, 276, 27, 180, 39, 193, -1, 0, 102, 485, true, 0},
};

uint32_t scaled(uint32_t V, uint32_t Scale) {
  if (V == 0)
    return 0;
  return std::max<uint32_t>(1, V / Scale);
}

} // namespace

std::vector<AppSpec> taj::benchmarkSuite(uint32_t Scale) {
  std::vector<AppSpec> Out;
  uint64_t Seed = 0x5eed;
  for (const Row &R : Rows) {
    AppSpec S;
    S.Name = R.Name;
    S.Version = R.Version;
    S.InAccuracyStudy = R.Accuracy;
    S.Seed = Seed++;
    PaperStats &PS = S.Paper;
    PS.Files = R.Files;
    PS.Lines = R.Lines;
    PS.ClassesApp = R.ClsApp;
    PS.MethodsApp = R.MethApp;
    PS.ClassesTotal = R.ClsTot;
    PS.MethodsTotal = R.MethTot;
    PS.HybridUnbounded = R.HU;
    PS.HybridUnboundedSec = R.HUs;
    PS.HybridPrioritized = R.HP;
    PS.HybridPrioritizedSec = R.HPs;
    PS.HybridOptimized = R.HO;
    PS.HybridOptimizedSec = R.HOs;
    PS.CsCompleted = R.CS >= 0;
    PS.Cs = R.CS >= 0 ? static_cast<uint32_t>(R.CS) : 0;
    PS.CsSec = R.CSs;
    PS.Ci = R.CI;
    PS.CiSec = R.CIs;

    // Derive plant counts from the paper's issue relations:
    //   CS      = TP - threadFN + aliasFP
    //   HybridU = TP + aliasFP + heapFP (+ long)
    //   CI      = HybridU + ctxFP
    uint32_t U = scaled(R.HU, Scale);
    uint32_t Ci = scaled(R.CI, Scale);
    uint32_t Thread = R.ThreadFlows;
    uint32_t Tp;
    uint32_t Alias;
    if (R.CS >= 0) {
      uint32_t Cs = scaled(static_cast<uint32_t>(R.CS), Scale);
      // Split CS issues between true positives and alias FPs using the
      // paper's overall CS accuracy of 0.54.
      Tp = std::max<uint32_t>(1, Cs * 54 / 100) + Thread;
      Alias = Cs > (Tp - Thread) ? Cs - (Tp - Thread) : 0;
    } else {
      // Overall hybrid accuracy ~0.35 (paper §7.2).
      Tp = std::max<uint32_t>(1, U * 35 / 100) + Thread;
      Alias = std::max<uint32_t>(0, U / 10);
    }
    uint32_t Heap = U > Tp + Alias ? U - Tp - Alias : 0;
    uint32_t Ctx = Ci > U ? Ci - U : 0;

    PlantCounts &PC = S.Plants;
    PC.TpThread = Thread;
    uint32_t Rest = Tp - Thread;
    PC.TpDirect = Rest - Rest / 2 - Rest / 4 - Rest / 8;
    PC.TpWrapped = Rest / 2;
    PC.TpMap = Rest / 4;
    PC.TpReflective = Rest / 8;
    // BlueBlog plants one long true positive (the optimized config's one
    // new false negative, §7.2).
    if (S.Name == "BlueBlog" && PC.TpDirect > 0) {
      PC.TpLong = 1;
      --PC.TpDirect;
    }
    PC.FpAlias = Alias;
    PC.FpHeapLong = Heap / 3;
    PC.FpHeap = Heap - PC.FpHeapLong;
    PC.FpCtx = Ctx;
    PC.Sanitized = std::max<uint32_t>(1, Tp / 3);
    // Chan-heavy apps need enough filler mass that the CS channel closure
    // exceeds its memory budget (the paper's CS out-of-memory failures).
    uint32_t FillerFloor = PS.CsCompleted ? 10 : 220;
    PC.FillerMethods = std::min<uint32_t>(
        400, std::max<uint32_t>(FillerFloor, R.MethApp / 40));
    PC.LibFillerMethods = std::min<uint32_t>(
        200, std::max<uint32_t>(10, (R.MethTot - R.MethApp) / 2000));
    // Webgoat: a benign cluster adjacent to taint consumes the prioritized
    // budget; the optimized whitelist reclaims it (§7.2).
    if (S.Name == "Webgoat")
      PC.BallastMethods = 500;
    Out.push_back(std::move(S));
  }
  return Out;
}
