//===- benchgen/AppSpec.h - The 22-benchmark suite specs -------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-application parameters of the synthetic benchmark suite standing in
/// for the 22 industrial applications of TAJ Table 2/3. Each spec carries
/// the paper's reported statistics (reprinted by the Table 2 bench) plus
/// generation parameters derived from the paper's per-configuration issue
/// counts, scaled down so the whole suite runs in seconds.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_BENCHGEN_APPSPEC_H
#define TAJ_BENCHGEN_APPSPEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace taj {

/// Paper-reported numbers for one benchmark application.
struct PaperStats {
  // Table 2.
  uint32_t Files = 0;
  uint32_t Lines = 0;
  uint32_t ClassesApp = 0;
  uint32_t MethodsApp = 0;
  uint32_t ClassesTotal = 0;
  uint32_t MethodsTotal = 0;
  // Table 3: issues (and seconds) per configuration; CS of ~0 issues with
  // CsCompleted=false encodes the out-of-memory rows.
  uint32_t HybridUnbounded = 0, HybridUnboundedSec = 0;
  uint32_t HybridPrioritized = 0, HybridPrioritizedSec = 0;
  uint32_t HybridOptimized = 0, HybridOptimizedSec = 0;
  bool CsCompleted = false;
  uint32_t Cs = 0, CsSec = 0;
  uint32_t Ci = 0, CiSec = 0;
};

/// Generation parameters (flow plant counts), derived from PaperStats.
struct PlantCounts {
  uint32_t TpDirect = 0;    ///< plain source->sink flows
  uint32_t TpWrapped = 0;   ///< taint-carrier flows
  uint32_t TpMap = 0;       ///< constant-key dictionary flows
  uint32_t TpReflective = 0;///< Class.forName / invoke flows
  uint32_t TpHelperKeyMap = 0;   ///< dictionary puts routed via a helper
  uint32_t TpComputedReflective = 0; ///< StringBuilder-computed forName
  uint32_t TpThread = 0;    ///< inter-thread flows (CS false negatives)
  uint32_t TpLong = 0;      ///< real flows longer than the length filter
  uint32_t FpAlias = 0;     ///< alloc-site conflation (all configs report)
  uint32_t FpHeap = 0;      ///< ordering decoys (hybrid+CI only)
  uint32_t FpHeapLong = 0;  ///< same, longer than the length filter
  uint32_t FpCtx = 0;       ///< shared-helper decoys (CI only)
  uint32_t Sanitized = 0;   ///< endorsed flows (no one may report)
  uint32_t BallastMethods = 0; ///< whitelisted benign cluster near taint
  uint32_t FillerMethods = 0;  ///< taint-free app code mass
  uint32_t LibFillerMethods = 0; ///< taint-free library code mass

  uint32_t totalReal() const {
    return TpDirect + TpWrapped + TpMap + TpReflective + TpHelperKeyMap +
           TpComputedReflective + TpThread + TpLong;
  }
};

/// One benchmark application.
struct AppSpec {
  std::string Name;
  std::string Version;
  PaperStats Paper;
  PlantCounts Plants;
  /// In the accuracy study of Figure 4?
  bool InAccuracyStudy = false;
  uint64_t Seed = 1;
};

/// The 22-application suite, in Table 2 order. \p Scale divides the paper
/// issue counts when deriving plant counts (default 6).
std::vector<AppSpec> benchmarkSuite(uint32_t Scale = 6);

} // namespace taj

#endif // TAJ_BENCHGEN_APPSPEC_H
