//===- benchgen/Patterns.h - Flow pattern builders (internal) --*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The individual taint-flow patterns the generator plants. Internal to
/// the benchgen library; see Generator.h for the public entry point.
///
/// Line-tag protocol: flow k tags its source statement with 10000+10k and
/// its (real or decoy) sink statement with 10000+10k+1 / +2, so reported
/// issues map back to planted flows by line alone.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_BENCHGEN_PATTERNS_H
#define TAJ_BENCHGEN_PATTERNS_H

#include "benchgen/Generator.h"
#include "ir/Builder.h"
#include "support/Rng.h"

namespace taj {
namespace benchgen {

/// Shared state while planting one application.
struct PlantCtx {
  Program &P;
  Builder &B;
  const BuiltinLibrary &Lib;
  GroundTruth &Truth;
  Rng &R;
  ClassId AppCls = InvalidId; ///< holder of entry methods
  uint32_t FlowIdx = 0;       ///< next flow number

  uint32_t srcLine() const { return 10000 + 10 * FlowIdx; }
  uint32_t sinkLine() const { return srcLine() + 1; }
  uint32_t decoyLine() const { return srcLine() + 2; }
};

/// Plain source->sink flow; \p ChainLen identity helpers in between; if
/// \p SinkInHelper the sink call sits in the last helper (making the flow
/// sensitive to call-graph budgets).
void plantDirect(PlantCtx &C, uint32_t ChainLen, bool SinkInHelper,
                 bool Record = true);

/// Taint wrapped into a fresh object flowing to the sink (§4.1.1).
void plantWrapped(PlantCtx &C);

/// Constant-key dictionary flow plus a clean key that must stay clean.
void plantMap(PlantCtx &C);

/// Class.forName / getMethod / invoke flow (§4.2.3).
void plantReflective(PlantCtx &C);

/// Dictionary flow where the tainted put happens inside a helper whose key
/// arrives as a parameter constant: only the interprocedural string
/// analysis keeps the clean key's read precise (off/local report a decoy).
void plantHelperKeyMap(PlantCtx &C);

/// Reflective flow whose class name is assembled from constant parts with
/// a StringBuilder: found only under --string-analysis=ipa; off/local
/// leave the site unresolved (reflection.unresolved diagnostics).
void plantComputedReflective(PlantCtx &C);

/// Reader entry (created first) loads a shared static that a worker
/// thread, spawned by a later entry, stores tainted data into. Real under
/// multi-threaded semantics; missed by CS thin slicing.
void plantThread(PlantCtx &C);

/// Real flow longer than the optimized flow-length filter.
void plantLongReal(PlantCtx &C);

/// Allocation-site conflation decoy every configuration reports
/// (writer entry precedes the clean reader entry).
void plantAliasFp(PlantCtx &C, bool SinkInHelper);

/// Heap-ordering decoy: the clean reader entry runs before the tainted
/// writer entry, so only the flow-insensitive algorithms (hybrid, CI)
/// report it; \p ChainLen stretches the reported flow.
void plantHeapFp(PlantCtx &C, uint32_t ChainLen, bool SinkInHelper);

/// Shared-helper context-confusion decoy only CI reports.
void plantCtxFp(PlantCtx &C);

/// Endorsed flow no configuration may report.
void plantSanitized(PlantCtx &C);

/// Whitelisted benign cluster adjacent to taint (consumes the prioritized
/// call-graph budget; reclaimed by the optimized whitelist).
void plantBallast(PlantCtx &C, uint32_t NumMethods);

/// Taint-free application/library code mass. Chan-heavy fillers touch a
/// quadratic number of field channels, which is what makes CS thin
/// slicing exhaust its memory budget on the larger benchmarks.
void plantFiller(PlantCtx &C, uint32_t NumMethods, bool ChanHeavy,
                 bool Library);

} // namespace benchgen
} // namespace taj

#endif // TAJ_BENCHGEN_PATTERNS_H
