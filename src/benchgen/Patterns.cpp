//===- benchgen/Patterns.cpp -----------------------------------*- C++ -*-===//

#include "benchgen/Patterns.h"

using namespace taj;
using namespace taj::benchgen;

namespace {

/// Starts an [entry] method e<flow>[suffix](this, req, resp, db) on the
/// app class.
MethodBuilder startEntry(PlantCtx &C, const char *Suffix) {
  std::string Name = "e" + std::to_string(C.FlowIdx) + Suffix;
  MethodBuilder MB = C.B.startMethod(
      C.AppCls, Name,
      {Type::ref(C.AppCls), Type::ref(C.Lib.Request),
       Type::ref(C.Lib.Response), Type::ref(C.Lib.Database)},
      Type::voidTy());
  C.P.Methods[MB.id()].IsEntry = true;
  return MB;
}

/// Emits the tainted-source call tagged with the flow's source line.
ValueId emitSource(PlantCtx &C, MethodBuilder &MB) {
  ValueId Key = MB.constStr("p" + std::to_string(C.FlowIdx));
  MB.setLine(C.srcLine());
  ValueId T = MB.callVirtual("getParameter", {MB.param(1), Key});
  MB.setLine(0);
  return T;
}

/// Emits a sink call tagged \p Line; alternates between the XSS writer
/// sink and the SQLi database sink by flow parity.
void emitSink(PlantCtx &C, MethodBuilder &MB, ValueId V, uint32_t Line,
              ValueId RespParam, ValueId DbParam) {
  if (C.FlowIdx % 2 == 0) {
    ValueId W = MB.callVirtual("getWriter", {RespParam});
    MB.setLine(Line);
    MB.callVirtual("println", {W, V});
  } else {
    MB.setLine(Line);
    MB.callVirtual("executeQuery", {DbParam, V});
  }
  MB.setLine(0);
}

/// Creates a chain of identity helpers h<flow>_<i>(this, x, resp, db):
/// String; the last one optionally performs the sink at \p SinkLine.
/// Returns the first helper (or InvalidId for an empty chain).
MethodId makeChain(PlantCtx &C, uint32_t Len, bool SinkAtEnd,
                   uint32_t SinkLine) {
  MethodId First = InvalidId, Prev = InvalidId;
  for (uint32_t K = 0; K < Len; ++K) {
    std::string Name =
        "h" + std::to_string(C.FlowIdx) + "_" + std::to_string(K);
    MethodBuilder MB = C.B.startMethod(
        C.AppCls, Name,
        {Type::ref(C.AppCls), Type::ref(C.Lib.String),
         Type::ref(C.Lib.Response), Type::ref(C.Lib.Database)},
        Type::ref(C.Lib.String));
    bool Last = K + 1 == Len;
    ValueId V = MB.param(1);
    if (Last && SinkAtEnd)
      emitSink(C, MB, V, SinkLine, MB.param(2), MB.param(3));
    MB.emitRet(V);
    MB.finish();
    if (Prev != InvalidId) {
      // Link by rewriting nothing: chains are wired by the caller emitting
      // h0 -> h1 -> ... calls; record ids instead.
    }
    if (First == InvalidId)
      First = MB.id();
    Prev = MB.id();
  }
  return First;
}

/// Emits the chain calls h<flow>_0..Len-1 threading \p V through.
ValueId throughChain(PlantCtx &C, MethodBuilder &MB, uint32_t Len, ValueId V,
                     ValueId RespParam, ValueId DbParam) {
  for (uint32_t K = 0; K < Len; ++K) {
    std::string Name =
        "h" + std::to_string(C.FlowIdx) + "_" + std::to_string(K);
    V = MB.callVirtualV(Name, {MB.param(0), V, RespParam, DbParam});
  }
  return V;
}

} // namespace

void taj::benchgen::plantDirect(PlantCtx &C, uint32_t ChainLen,
                                bool SinkInHelper, bool Record) {
  if (SinkInHelper && ChainLen == 0)
    ChainLen = 1;
  makeChain(C, ChainLen, SinkInHelper, C.sinkLine());
  MethodBuilder MB = startEntry(C, "");
  ValueId T = emitSource(C, MB);
  ValueId V = throughChain(C, MB, ChainLen, T, MB.param(2), MB.param(3));
  if (!SinkInHelper)
    emitSink(C, MB, V, C.sinkLine(), MB.param(2), MB.param(3));
  MB.emitRet();
  MB.finish();
  if (Record)
    C.Truth.RealPairs.insert({C.srcLine(), C.sinkLine()});
  ++C.FlowIdx;
}

void taj::benchgen::plantWrapped(PlantCtx &C) {
  ClassId W = C.B.makeClass("Wrap" + std::to_string(C.FlowIdx), C.Lib.Object);
  FieldId F = C.B.makeField(W, "f", Type::ref(C.Lib.String));
  MethodBuilder MB = startEntry(C, "");
  ValueId T = emitSource(C, MB);
  ValueId O = MB.emitNew(W);
  MB.emitStore(O, F, T);
  emitSink(C, MB, O, C.sinkLine(), MB.param(2), MB.param(3));
  MB.emitRet();
  MB.finish();
  C.Truth.RealPairs.insert({C.srcLine(), C.sinkLine()});
  ++C.FlowIdx;
}

void taj::benchgen::plantMap(PlantCtx &C) {
  MethodBuilder MB = startEntry(C, "");
  ValueId T = emitSource(C, MB);
  ValueId M = MB.emitNew(C.Lib.HashMap);
  ValueId KeyT = MB.constStr("t");
  ValueId KeyC = MB.constStr("c");
  MB.callVirtual("put", {M, KeyT, T});
  ValueId Clean = MB.constStr("benign");
  MB.callVirtual("put", {M, KeyC, Clean});
  ValueId U = MB.callVirtual("get", {M, KeyT});
  emitSink(C, MB, U, C.sinkLine(), MB.param(2), MB.param(3));
  // The clean key must stay clean (checked by the unit tests; no decoy
  // sink here because the CS baseline collapses map channels).
  ValueId V = MB.callVirtual("get", {M, KeyC});
  (void)V;
  MB.emitRet();
  MB.finish();
  C.Truth.RealPairs.insert({C.srcLine(), C.sinkLine()});
  ++C.FlowIdx;
}

void taj::benchgen::plantReflective(PlantCtx &C) {
  std::string RName = "Refl" + std::to_string(C.FlowIdx);
  ClassId RC = C.B.makeClass(RName, C.Lib.Object);
  {
    MethodBuilder MB = C.B.startMethod(
        RC, "ident", {Type::ref(RC), Type::ref(C.Lib.String)},
        Type::ref(C.Lib.String));
    MB.emitRet(MB.param(1));
    MB.finish();
  }
  MethodBuilder MB = startEntry(C, "");
  ValueId T = emitSource(C, MB);
  ValueId K = MB.callStatic(C.Lib.ClassCls, "forName", {MB.constStr(RName)});
  ValueId IdM = MB.callVirtual("getMethod", {K, MB.constStr("ident")});
  ValueId Recv = MB.emitNew(RC);
  ValueId Arr = MB.emitNewArray(C.Lib.Object);
  MB.emitArrayStore(Arr, T);
  ValueId S = MB.callVirtual("invoke", {IdM, Recv, Arr});
  emitSink(C, MB, S, C.sinkLine(), MB.param(2), MB.param(3));
  MB.emitRet();
  MB.finish();
  C.Truth.RealPairs.insert({C.srcLine(), C.sinkLine()});
  ++C.FlowIdx;
}

void taj::benchgen::plantHelperKeyMap(PlantCtx &C) {
  // kput<flow>(this, map, key, val): the only put of the tainted value.
  // The key arrives as a parameter, so binding the map channel to "t"
  // requires propagating the constant across the call.
  std::string Name = "kput" + std::to_string(C.FlowIdx);
  {
    MethodBuilder MB = C.B.startMethod(
        C.AppCls, Name,
        {Type::ref(C.AppCls), Type::ref(C.Lib.HashMap),
         Type::ref(C.Lib.String), Type::ref(C.Lib.String)},
        Type::voidTy());
    MB.callVirtual("put", {MB.param(1), MB.param(2), MB.param(3)});
    MB.emitRet();
    MB.finish();
  }
  MethodBuilder MB = startEntry(C, "");
  ValueId T = emitSource(C, MB);
  ValueId M = MB.emitNew(C.Lib.HashMap);
  // Exactly one call site: a second site with a different key would meet
  // the helper's key parameter to bottom and re-open the wildcard channel
  // even under ipa.
  MB.callVirtualV(Name, {MB.param(0), M, MB.constStr("t"), T});
  MB.callVirtual("put", {M, MB.constStr("c"), MB.constStr("benign")});
  ValueId U = MB.callVirtual("get", {M, MB.constStr("t")});
  emitSink(C, MB, U, C.sinkLine(), MB.param(2), MB.param(3));
  // The clean key's read: decoy sink, reported only when the helper put
  // degraded to the wildcard channel (off / local).
  ValueId V = MB.callVirtual("get", {M, MB.constStr("c")});
  emitSink(C, MB, V, C.decoyLine(), MB.param(2), MB.param(3));
  MB.emitRet();
  MB.finish();
  C.Truth.RealPairs.insert({C.srcLine(), C.sinkLine()});
  ++C.FlowIdx;
}

void taj::benchgen::plantComputedReflective(PlantCtx &C) {
  std::string N = std::to_string(C.FlowIdx);
  std::string RName = "CRefl" + N;
  ClassId RC = C.B.makeClass(RName, C.Lib.Object);
  {
    MethodBuilder MB = C.B.startMethod(
        RC, "ident", {Type::ref(RC), Type::ref(C.Lib.String)},
        Type::ref(C.Lib.String));
    MB.emitRet(MB.param(1));
    MB.finish();
  }
  MethodBuilder MB = startEntry(C, "");
  ValueId T = emitSource(C, MB);
  // The class name is assembled from constant parts, so resolving the
  // forName target needs the carrier-append folding of the ipa analysis.
  ValueId Sb = MB.emitNew(C.Lib.StringBuilder);
  Sb = MB.callVirtual("append", {Sb, MB.constStr("CRefl")});
  Sb = MB.callVirtual("append", {Sb, MB.constStr(N)});
  ValueId Nm = MB.callVirtual("toString", {Sb});
  ValueId K = MB.callStatic(C.Lib.ClassCls, "forName", {Nm});
  ValueId IdM = MB.callVirtual("getMethod", {K, MB.constStr("ident")});
  ValueId Recv = MB.emitNew(RC);
  ValueId Arr = MB.emitNewArray(C.Lib.Object);
  MB.emitArrayStore(Arr, T);
  ValueId S = MB.callVirtual("invoke", {IdM, Recv, Arr});
  emitSink(C, MB, S, C.sinkLine(), MB.param(2), MB.param(3));
  MB.emitRet();
  MB.finish();
  C.Truth.RealPairs.insert({C.srcLine(), C.sinkLine()});
  ++C.FlowIdx;
}

void taj::benchgen::plantThread(PlantCtx &C) {
  std::string N = std::to_string(C.FlowIdx);
  ClassId Sh = C.B.makeClass("Shared" + N, C.Lib.Object);
  FieldId SF = C.B.makeField(Sh, "data", Type::ref(C.Lib.String),
                             /*IsStatic=*/true);
  ClassId Wk = C.B.makeClass("Worker" + N, C.Lib.Thread);
  FieldId In = C.B.makeField(Wk, "input", Type::ref(C.Lib.String));
  {
    MethodBuilder MB =
        C.B.startMethod(Wk, "run", {Type::ref(Wk)}, Type::voidTy());
    ValueId T = MB.emitLoad(MB.param(0), In);
    MB.emitStaticStore(SF, T);
    MB.emitRet();
    MB.finish();
  }
  { // Reader entry first: only flow-insensitive heap flow finds the store.
    MethodBuilder MB = startEntry(C, "r");
    ValueId U = MB.emitStaticLoad(SF);
    emitSink(C, MB, U, C.sinkLine(), MB.param(2), MB.param(3));
    MB.emitRet();
    MB.finish();
  }
  { // Spawner entry second.
    MethodBuilder MB = startEntry(C, "w");
    ValueId T = emitSource(C, MB);
    ValueId W = MB.emitNew(Wk);
    MB.emitStore(W, In, T);
    MB.callVirtual("start", {W});
    MB.emitRet();
    MB.finish();
  }
  C.Truth.RealPairs.insert({C.srcLine(), C.sinkLine()});
  ++C.FlowIdx;
}

void taj::benchgen::plantLongReal(PlantCtx &C) {
  plantDirect(C, /*ChainLen=*/6, /*SinkInHelper=*/false, /*Record=*/true);
}

namespace {

/// Shared shape of the alias/ordering decoys: a helper class whose mk()
/// allocates a wrapper at a single site; the tainted writer stores into
/// one instance, the clean reader loads from another.
void plantAliasShape(PlantCtx &C, bool WriterFirst, uint32_t ChainLen,
                     bool SinkInHelper) {
  std::string N = std::to_string(C.FlowIdx);
  ClassId W = C.B.makeClass("AWrap" + N, C.Lib.Object);
  FieldId F = C.B.makeField(W, "f", Type::ref(C.Lib.String));
  ClassId Mk = C.B.makeClass("AMk" + N, C.Lib.Object);
  {
    MethodBuilder MB = C.B.startMethod(
        Mk, "mk", {Type::ref(Mk), Type::ref(C.Lib.String)}, Type::ref(W));
    ValueId O = MB.emitNew(W);
    MB.emitStore(O, F, MB.param(1));
    MB.emitRet(O);
    MB.finish();
  }
  auto Writer = [&]() {
    MethodBuilder MB = startEntry(C, "w");
    ValueId T = emitSource(C, MB);
    ValueId M = MB.emitNew(Mk);
    MB.callVirtual("mk", {M, T});
    MB.emitRet();
    MB.finish();
  };
  auto Reader = [&]() {
    if (SinkInHelper || ChainLen > 0)
      makeChain(C, std::max<uint32_t>(ChainLen, SinkInHelper ? 1 : 0),
                SinkInHelper, C.decoyLine());
    MethodBuilder MB = startEntry(C, "r");
    ValueId Clean = MB.constStr("benign");
    ValueId M = MB.emitNew(Mk);
    ValueId O = MB.callVirtual("mk", {M, Clean});
    ValueId U = MB.emitLoad(O, F);
    ValueId V = throughChain(C, MB, std::max<uint32_t>(ChainLen, SinkInHelper ? 1 : 0), U,
                             MB.param(2), MB.param(3));
    if (!SinkInHelper)
      emitSink(C, MB, V, C.decoyLine(), MB.param(2), MB.param(3));
    MB.emitRet();
    MB.finish();
  };
  if (WriterFirst) {
    Writer();
    Reader();
  } else {
    Reader();
    Writer();
  }
  // Decoys record no real pair.
  ++C.FlowIdx;
}

} // namespace

void taj::benchgen::plantAliasFp(PlantCtx &C, bool SinkInHelper) {
  plantAliasShape(C, /*WriterFirst=*/true, /*ChainLen=*/1, SinkInHelper);
}

void taj::benchgen::plantHeapFp(PlantCtx &C, uint32_t ChainLen,
                                bool SinkInHelper) {
  plantAliasShape(C, /*WriterFirst=*/false, ChainLen, SinkInHelper);
}

void taj::benchgen::plantCtxFp(PlantCtx &C) {
  std::string Name = "id" + std::to_string(C.FlowIdx);
  {
    MethodBuilder MB = C.B.startMethod(
        C.AppCls, Name, {Type::ref(C.AppCls), Type::ref(C.Lib.String)},
        Type::ref(C.Lib.String));
    MB.emitRet(MB.param(1));
    MB.finish();
  }
  MethodBuilder MB = startEntry(C, "");
  ValueId T = emitSource(C, MB);
  MB.callVirtualV(Name, {MB.param(0), T}); // tainted result unused
  ValueId Clean = MB.constStr("benign");
  ValueId Y = MB.callVirtualV(Name, {MB.param(0), Clean});
  emitSink(C, MB, Y, C.decoyLine(), MB.param(2), MB.param(3));
  MB.emitRet();
  MB.finish();
  ++C.FlowIdx;
}

void taj::benchgen::plantSanitized(PlantCtx &C) {
  MethodBuilder MB = startEntry(C, "");
  ValueId T = emitSource(C, MB);
  ValueId E = MB.callStatic(C.Lib.Encoder, "encode", {T});
  emitSink(C, MB, E, C.decoyLine(), MB.param(2), MB.param(3));
  MB.emitRet();
  MB.finish();
  ++C.FlowIdx;
}

void taj::benchgen::plantBallast(PlantCtx &C, uint32_t NumMethods) {
  if (NumMethods == 0)
    return;
  ClassId BC = C.B.makeClass("BenignLib" + std::to_string(C.FlowIdx),
                             C.Lib.Object,
                             classflags::Library | classflags::Whitelisted);
  Type TB = Type::ref(BC);
  Type TStr = Type::ref(C.Lib.String);
  // A flat cluster: every bl<i> is called directly from the tainted entry,
  // so all of them sit one hop from the source (priority 1) and, created
  // before any real-flow helper, drain the node budget ahead of them.
  for (uint32_t K = 0; K < NumMethods; ++K) {
    MethodBuilder MB = C.B.startMethod(BC, "bl" + std::to_string(K),
                                       {TB, TStr}, Type::voidTy());
    ValueId X = MB.emitBinop(BinopKind::Add, MB.constInt(1), MB.constInt(2));
    (void)X;
    MB.emitRet();
    MB.finish();
  }
  MethodBuilder MB = startEntry(C, "b");
  ValueId T = emitSource(C, MB);
  ValueId O = MB.emitNew(BC);
  for (uint32_t K = 0; K < NumMethods; ++K)
    MB.callVirtualV("bl" + std::to_string(K), {O, T});
  MB.emitRet();
  MB.finish();
  ++C.FlowIdx;
}

void taj::benchgen::plantFiller(PlantCtx &C, uint32_t NumMethods,
                                bool ChanHeavy, bool Library) {
  if (NumMethods == 0)
    return;
  uint32_t Flags = Library ? classflags::Library : 0;
  std::string N = std::to_string(C.FlowIdx);
  std::string Prefix = Library ? "LibFill" : "Fill";
  ClassId FC = C.B.makeClass(Prefix + N, C.Lib.Object, Flags);
  Type TF = Type::ref(FC);
  std::vector<FieldId> Fields;
  if (ChanHeavy)
    for (uint32_t K = 0; K < NumMethods; ++K)
      Fields.push_back(
          C.B.makeField(FC, "g" + std::to_string(K), Type::ref(C.Lib.Object)));
  // fl<i> does arithmetic (and, when chan-heavy, touches its own field)
  // then calls fl<i+1>: a chain, so channel closure grows quadratically.
  for (uint32_t K = 0; K < NumMethods; ++K) {
    MethodBuilder MB = C.B.startMethod(FC, "fl" + std::to_string(K),
                                       {TF, Type::intTy()}, Type::intTy());
    ValueId X = MB.emitBinop(BinopKind::Add, MB.param(1), MB.constInt(1));
    X = MB.emitBinop(BinopKind::Mul, X, MB.constInt(3));
    if (ChanHeavy) {
      ValueId O = MB.emitNew(C.Lib.Object);
      MB.emitStore(MB.param(0), Fields[K], O);
      MB.emitLoad(MB.param(0), Fields[K]);
    }
    if (K + 1 < NumMethods)
      X = MB.callVirtualV("fl" + std::to_string(K + 1), {MB.param(0), X});
    MB.emitRet(X);
    MB.finish();
  }
  // Taint-free entry (lowest priority under §6.1: processed last).
  MethodBuilder MB = startEntry(C, Library ? "lf" : "f");
  ValueId O = MB.emitNew(FC);
  MB.callVirtual("fl0", {O, MB.constInt(7)});
  MB.emitRet();
  MB.finish();
  ++C.FlowIdx;
}
