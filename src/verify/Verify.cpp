//===- verify/Verify.cpp - Analysis self-verification ----------*- C++ -*-===//
//
// The checkers re-derive each invariant from the primary artifacts (the
// IR, the class hierarchy, the solved points-to tables) instead of
// trusting any cached intermediate, so a corrupted or stale artifact
// disagrees with the re-derivation even when its checksum is intact.
//
//===----------------------------------------------------------------------===//

#include "verify/Verify.h"

#include "cha/ClassHierarchy.h"
#include "dataflow/ConstString.h"
#include "ir/Verifier.h"
#include "pointsto/Solver.h"
#include "sdg/SDG.h"
#include "slicer/HeapEdges.h"
#include "slicer/Issue.h"
#include "support/Stats.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <unordered_map>

using namespace taj;
using namespace taj::verify;

const char *verify::verifyModeName(VerifyMode M) {
  switch (M) {
  case VerifyMode::Off:
    return "off";
  case VerifyMode::Fast:
    return "fast";
  case VerifyMode::Full:
    return "full";
  }
  return "off";
}

bool verify::parseVerifyMode(const char *Text, VerifyMode &Out) {
  if (std::strcmp(Text, "off") == 0)
    Out = VerifyMode::Off;
  else if (std::strcmp(Text, "fast") == 0)
    Out = VerifyMode::Fast;
  else if (std::strcmp(Text, "full") == 0)
    Out = VerifyMode::Full;
  else
    return false;
  return true;
}

const char *verify::checkerName(Checker C) {
  switch (C) {
  case Checker::Ir:
    return "ir";
  case Checker::CallGraph:
    return "callgraph";
  case Checker::PointsTo:
    return "pointsto";
  case Checker::Sdg:
    return "sdg";
  case Checker::Heap:
    return "heap";
  case Checker::ConstStr:
    return "conststr";
  case Checker::Witness:
    return "witness";
  }
  return "?";
}

void Violations::report(Checker C, const std::string &Detail) {
  uint64_t &N = Counts[static_cast<unsigned>(C)];
  ++N;
  ++Total;
  if (N <= MaxPrinted)
    std::fprintf(stderr, "verify: %s: %s\n", checkerName(C), Detail.c_str());
  else if (N == MaxPrinted + 1)
    std::fprintf(stderr, "verify: %s: (further violations suppressed)\n",
                 checkerName(C));
}

void Violations::exportStats(Stats &S) const {
  if (Total == 0 && RestoreRejected == 0)
    return; // clean runs leave the stats stream untouched
  S.add("verify.violations", Total);
  for (unsigned C = 0; C < NumCheckers; ++C)
    if (Counts[C])
      S.add(std::string("verify.") + checkerName(static_cast<Checker>(C)) +
                "_violations",
            Counts[C]);
  if (RestoreRejected)
    S.add("persist.verify_rejected", RestoreRejected);
}

//===----------------------------------------------------------------------===//
// IRVerifier
//===----------------------------------------------------------------------===//

void verify::verifyIr(const Program &P, Violations &V) {
  for (const std::string &E : verifyProgram(P))
    V.report(Checker::Ir, E);
}

//===----------------------------------------------------------------------===//
// GraphVerifier: call graph + points-to fixpoint + const strings
//===----------------------------------------------------------------------===//

namespace {

const SparseBitSet &ptsOf(const PointsToSolver &S, PKId PK) {
  static const SparseBitSet Empty;
  return PK == InvalidId ? Empty : S.pointsTo(PK);
}

/// One re-applied constraint: Sub must already be folded into Super. The
/// subset test runs word-parallel over the solver's sparse bitmaps; a
/// pointer key that was never interned reads as the empty set on either
/// side — exactly the solver's own semantics for an untouched key.
void checkSubset(const PointsToSolver &S, PKId Sub, PKId Super,
                 const Program &P, MethodId M, const char *What,
                 Violations &V) {
  const SparseBitSet &A = ptsOf(S, Sub);
  if (A.empty())
    return;
  if (!ptsOf(S, Super).containsAll(A))
    V.report(Checker::PointsTo,
             "not a fixpoint: " + std::string(What) + " constraint in " +
                 P.methodName(M) + " would add points-to facts");
}

/// Re-applies every constraint the solver derives from the body of
/// processed call-graph node \p N; at a true fixpoint none adds a fact.
void recheckNodeConstraints(const Program &P, const PointsToSolver &S,
                            CGNodeId N, Violations &V) {
  const CGNode &Node = S.callGraph().node(N);
  const Method &M = P.Methods[Node.M];
  const PointerKeyTable &PKs = S.pointerKeys();
  auto L = [&](ValueId Val) { return PKs.localLookup(N, Val); };

  StmtId Stmt = P.methodStmtBegin(Node.M);
  for (const BasicBlock &BB : M.Blocks) {
    for (const Instruction &I : BB.Insts) {
      StmtId Site = Stmt++;
      switch (I.Op) {
      case Opcode::New:
      case Opcode::NewArray: {
        // The allocation fact itself must be present (heap context elided:
        // only the policy knows it, but (kind, site, class) is unique
        // enough to witness the insertion happened).
        const IKKind Want =
            I.Op == Opcode::New ? IKKind::Alloc : IKKind::Array;
        bool Found = false;
        for (IKId IK : ptsOf(S, L(I.Dst))) {
          const InstanceKeyData &D = S.instanceKeys().data(IK);
          if (D.Kind == Want && D.Site == Site && D.Cls == I.Cls) {
            Found = true;
            break;
          }
        }
        if (!Found)
          V.report(Checker::PointsTo,
                   "not a fixpoint: allocation fact missing in " +
                       P.methodName(Node.M));
        break;
      }
      case Opcode::Copy:
        checkSubset(S, L(I.Args[0]), L(I.Dst), P, Node.M, "copy", V);
        break;
      case Opcode::Phi:
        for (ValueId A : I.Args)
          if (A != NoValue)
            checkSubset(S, L(A), L(I.Dst), P, Node.M, "phi", V);
        break;
      case Opcode::Load:
        for (IKId IK : ptsOf(S, L(I.Args[0])))
          checkSubset(S, PKs.lookup({PKKind::Field, IK, I.Field}), L(I.Dst),
                      P, Node.M, "field load", V);
        break;
      case Opcode::Store:
        for (IKId IK : ptsOf(S, L(I.Args[0])))
          checkSubset(S, L(I.Args[1]), PKs.lookup({PKKind::Field, IK, I.Field}),
                      P, Node.M, "field store", V);
        break;
      case Opcode::ArrayLoad:
        for (IKId IK : ptsOf(S, L(I.Args[0])))
          checkSubset(S, PKs.lookup({PKKind::ArrayElem, IK, 0}), L(I.Dst), P,
                      Node.M, "array load", V);
        break;
      case Opcode::ArrayStore:
        for (IKId IK : ptsOf(S, L(I.Args[0])))
          checkSubset(S, L(I.Args[1]), PKs.lookup({PKKind::ArrayElem, IK, 0}),
                      P, Node.M, "array store", V);
        break;
      case Opcode::StaticLoad:
        checkSubset(S, PKs.lookup({PKKind::Static, I.Field, 0}), L(I.Dst), P,
                    Node.M, "static load", V);
        break;
      case Opcode::StaticStore:
        checkSubset(S, L(I.Args[0]), PKs.lookup({PKKind::Static, I.Field, 0}),
                    P, Node.M, "static store", V);
        break;
      case Opcode::Return:
        if (!I.Args.empty())
          checkSubset(S, L(I.Args[0]), PKs.lookup({PKKind::Ret, N, 0}), P,
                      Node.M, "return", V);
        break;
      default:
        break;
      }
    }
  }
}

/// One call-graph edge must be justified by CHA dispatch over the receiver
/// points-to set at its site (or by the reflective-invoke / Thread.start
/// models). Returns true when the edge additionally carries the normal
/// parameter-binding contract (checked by the caller).
bool justifyCallEdge(const Program &P, const ClassHierarchy &CHA,
                     const PointsToSolver &S, CGNodeId Caller,
                     const CGEdge &E, Violations &V) {
  const CallGraph &CG = S.callGraph();
  const MethodId CalleeM = CG.node(E.Callee).M;
  const MethodId CallerM = CG.node(Caller).M;
  auto Flag = [&](const char *Why) {
    V.report(Checker::CallGraph,
             std::string("phantom call edge ") + P.methodName(CallerM) +
                 " -> " + P.methodName(CalleeM) + ": " + Why);
    return false;
  };

  if (E.Site >= P.numStmts() ||
      !(E.Site >= P.methodStmtBegin(CallerM) &&
        E.Site < P.methodStmtEnd(CallerM)))
    return Flag("call site is not a statement of the caller");
  const Instruction &I = P.stmt(E.Site);
  if (I.Op != Opcode::Call)
    return Flag("call site is not a call instruction");
  if (!P.Methods[CalleeM].hasBody() ||
      P.Methods[CalleeM].Intr != Intrinsic::None)
    return Flag("callee has no analyzable body");

  if (I.CKind == CallKind::Static) {
    if (CHA.resolveVirtual(I.Cls, I.CalleeName) != CalleeM)
      return Flag("outside the CHA cone of a static call");
    return true;
  }

  if (I.Args.empty())
    return Flag("virtual call without a receiver");
  const std::vector<IKId> &Recv = S.pointsToOfLocal(Caller, I.Args[0]);
  const Symbol RunSym = P.Pool.lookup("run");
  const MethodId Exact = I.CKind == CallKind::Special
                             ? CHA.resolveVirtual(I.Cls, I.CalleeName)
                             : InvalidId;
  for (IKId IK : Recv) {
    const InstanceKeyData &D = S.instanceKeys().data(IK);
    // Normal dispatch: some receiver instance resolves here.
    if (I.CKind == CallKind::Special ? Exact == CalleeM
                                     : CHA.resolveVirtual(D.Cls,
                                                          I.CalleeName) ==
                                           CalleeM)
      return true;
    // Reflective invoke: a Method object naming the callee.
    if (D.Kind == IKKind::MethodObj && D.Extra == CalleeM)
      return false; // justified; custom arg binding, skip param checks
    // Thread.start -> run() model.
    if (RunSym != ~0u && CHA.resolveVirtual(D.Cls, RunSym) == CalleeM)
      return false; // justified; no argument binding to check
  }
  Flag("no receiver instance dispatches to the callee");
  return false;
}

/// The parameter/return copy edges bindCall() installs for one justified
/// dispatch edge must already be folded into the solution.
void recheckCallBinding(const Program &P, const PointsToSolver &S,
                        CGNodeId Caller, const CGEdge &E, Violations &V) {
  const CallGraph &CG = S.callGraph();
  const Instruction &I = P.stmt(E.Site);
  const Method &CalM = P.Methods[CG.node(E.Callee).M];
  const PointerKeyTable &PKs = S.pointerKeys();
  const uint32_t Start = I.CKind == CallKind::Static ? 0 : 1;
  for (uint32_t K = Start; K < CalM.NumParams && K < I.Args.size(); ++K)
    checkSubset(S, PKs.localLookup(Caller, I.Args[K]),
                PKs.localLookup(E.Callee, static_cast<ValueId>(K)), P,
                CG.node(Caller).M, "argument", V);
  if (I.Dst != NoValue)
    checkSubset(S, PKs.lookup({PKKind::Ret, E.Callee, 0}),
                PKs.localLookup(Caller, I.Dst), P, CG.node(Caller).M,
                "return binding", V);
}

void checkConstStrings(const Program &P, const ConstStringResult &CS,
                       Violations &V) {
  if (CS.degraded())
    return; // a truncated lattice may legitimately disagree
  for (MethodId M = 0; M < P.Methods.size(); ++M) {
    const Method &Mth = P.Methods[M];
    if (!Mth.hasBody())
      continue;
    for (const BasicBlock &BB : Mth.Blocks) {
      for (const Instruction &I : BB.Insts) {
        if (I.Op == Opcode::ConstStr) {
          Symbol Val = CS.valueOf(M, I.Dst);
          if (Val != ~0u && Val != I.StrLit)
            V.report(Checker::ConstStr,
                     "constant-string fact for a ConstStr definition in " +
                         P.methodName(M) + " contradicts its literal");
        } else if (I.Op == Opcode::Copy) {
          Symbol Src = CS.valueOf(M, I.Args[0]);
          Symbol Dst = CS.valueOf(M, I.Dst);
          if (Src != ~0u && Dst != ~0u && Src != Dst)
            V.report(Checker::ConstStr,
                     "constant-string fact not preserved by a copy in " +
                         P.methodName(M));
        }
      }
    }
  }
}

} // namespace

void verify::verifyGraphs(const Program &P, const ClassHierarchy &CHA,
                          const PointsToSolver &Solver,
                          const ConstStringResult *ConstStrings,
                          Violations &V) {
  const CallGraph &CG = Solver.callGraph();
  for (CGNodeId N = 0; N < CG.numNodes(); ++N) {
    const CGNode &Node = CG.node(N);
    if (Node.M >= P.Methods.size()) {
      V.report(Checker::CallGraph, "call-graph node names no method");
      continue;
    }
    for (const CGEdge &E : CG.edges(N)) {
      if (E.Callee >= CG.numNodes()) {
        V.report(Checker::CallGraph, "call edge to a nonexistent node");
        continue;
      }
      if (justifyCallEdge(P, CHA, Solver, N, E, V))
        recheckCallBinding(P, Solver, N, E, V);
    }
    if (Node.ConstraintsAdded && P.Methods[Node.M].hasBody())
      recheckNodeConstraints(P, Solver, N, V);
  }
  if (ConstStrings)
    checkConstStrings(P, *ConstStrings, V);
}

//===----------------------------------------------------------------------===//
// GraphVerifier: SDG liveness + heap-edge justification
//===----------------------------------------------------------------------===//

namespace {

bool isStoreAccess(HeapAccess A) {
  switch (A) {
  case HeapAccess::FieldStore:
  case HeapAccess::ArrayStore:
  case HeapAccess::StaticStore:
  case HeapAccess::MapPut:
  case HeapAccess::CollAdd:
    return true;
  default:
    return false;
  }
}

bool ikIntersects(const std::vector<IKId> &A, const std::vector<IKId> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J])
      return true;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return false;
}

/// Re-derives whether a materialized store->load heap edge is justified:
/// compatible access classes, matching field for field/static accesses,
/// compatible constant keys for dictionaries, and overlapping base
/// points-to sets (TAJ §4.1.1). Mirrors HeapEdges::computeStore.
bool heapEdgeJustified(const Program &P, const SDG &G, SDGNodeId Store,
                       SDGNodeId Load) {
  const SDGNode &St = G.node(Store);
  const SDGNode &Ld = G.node(Load);
  const Instruction &SI = P.stmt(St.S);
  const Instruction &LI = P.stmt(Ld.S);
  switch (St.Access) {
  case HeapAccess::StaticStore:
    return Ld.Access == HeapAccess::StaticLoad && SI.Field == LI.Field;
  case HeapAccess::FieldStore:
    return Ld.Access == HeapAccess::FieldLoad && SI.Field == LI.Field &&
           ikIntersects(G.basePointsTo(Store), G.basePointsTo(Load));
  case HeapAccess::ArrayStore:
    return (Ld.Access == HeapAccess::ArrayLoad ||
            Ld.Access == HeapAccess::InvokeArgsRead) &&
           ikIntersects(G.basePointsTo(Store), G.basePointsTo(Load));
  case HeapAccess::MapPut: {
    if (Ld.Access != HeapAccess::MapGet)
      return false;
    Symbol PutKey = G.constKeyOf(Store), GetKey = G.constKeyOf(Load);
    bool KeyCompat = PutKey == ~0u || GetKey == ~0u || PutKey == GetKey;
    return KeyCompat &&
           ikIntersects(G.basePointsTo(Store), G.basePointsTo(Load));
  }
  case HeapAccess::CollAdd:
    return Ld.Access == HeapAccess::CollGet &&
           ikIntersects(G.basePointsTo(Store), G.basePointsTo(Load));
  default:
    return false;
  }
}

} // namespace

void verify::verifySdg(const Program &P, const SDG &G, const HeapEdges *HE,
                       const PointsToSolver &Solver, VerifyMode Mode,
                       Violations &V) {
  if (Mode == VerifyMode::Off)
    return;
  const uint32_t NumNodes = G.numNodes();
  // Liveness verdict per node, reused below so the Full-mode justification
  // never dereferences a statement the liveness pass already rejected.
  // Fast mode skips the allocation: it has no downstream consumer, and
  // this pass runs on every slicer invocation.
  std::vector<char> NodeOk(Mode == VerifyMode::Full ? NumNodes : 0, 1);
  auto markBad = [&](SDGNodeId N) {
    if (N < NodeOk.size())
      NodeOk[N] = 0;
  };
  for (SDGNodeId N = 0; N < NumNodes; ++N) {
    const SDGNode &Nd = G.node(N);
    if (Nd.M >= P.Methods.size()) {
      markBad(N);
      V.report(Checker::Sdg, "node " + std::to_string(N) +
                                 " names no method");
      continue;
    }
    if (Nd.Kind == SDGNodeKind::Stmt &&
        !(Nd.S >= P.methodStmtBegin(Nd.M) && Nd.S < P.methodStmtEnd(Nd.M))) {
      markBad(N);
      V.report(Checker::Sdg,
               "node " + std::to_string(N) +
                   " does not resolve to a live statement of " +
                   P.methodName(Nd.M));
    }
    for (const SDGEdge &E : G.succs(N))
      if (E.To >= NumNodes)
        V.report(Checker::Sdg, "edge from node " + std::to_string(N) +
                                   " to a nonexistent node");
  }
  for (SDGNodeId St : G.storeNodes())
    if (St >= NumNodes || !isStoreAccess(G.node(St).Access))
      V.report(Checker::Sdg, "store index entry is not a store node");
  for (SDGNodeId Ld : G.loadNodes())
    if (Ld >= NumNodes)
      V.report(Checker::Sdg, "load index entry is not a node");
  for (SDGNodeId Sk : G.sinkNodes())
    if (Sk >= NumNodes || G.node(Sk).SinkMask == rules::None)
      V.report(Checker::Sdg, "sink index entry is not a sink node");

  if (Mode != VerifyMode::Full || !HE)
    return;
  (void)Solver; // base points-to queries route through the SDG
  for (SDGNodeId St : G.storeNodes()) {
    if (St >= NumNodes || !NodeOk[St])
      continue; // already reported above
    for (SDGNodeId Ld : HE->loadsFor(St)) {
      if (Ld >= NumNodes) {
        V.report(Checker::Heap, "heap edge to a nonexistent node");
        continue;
      }
      if (!NodeOk[Ld])
        continue; // already reported above
      if (!heapEdgeJustified(P, G, St, Ld))
        V.report(Checker::Heap,
                 "store->load edge " + G.nodeToString(St) + " -> " +
                     G.nodeToString(Ld) +
                     " has no overlapping points-to justification");
    }
    for (SDGNodeId Sk : HE->carrierSinksFor(St))
      if (Sk >= NumNodes || G.node(Sk).SinkMask == rules::None)
        V.report(Checker::Heap,
                 "carrier edge from " + G.nodeToString(St) +
                     " targets a non-sink node");
  }
}

//===----------------------------------------------------------------------===//
// WitnessChecker
//===----------------------------------------------------------------------===//

void verify::verifyWitnesses(const SDG &G, const HeapEdges *HE,
                             const std::vector<Issue> &Issues,
                             Violations &V) {
  if (Issues.empty())
    return;
  const uint32_t NumNodes = G.numNodes();
  // Statement -> SDG nodes, for the statements the issues actually name (a
  // statement appears once per context in expanded scope; any occurrence
  // may anchor the witness). Indexing only those keeps this pass cheap
  // enough for the per-run fast mode.
  std::unordered_map<StmtId, std::vector<SDGNodeId>> StmtNodes;
  StmtId MaxStmt = 0;
  for (const Issue &I : Issues) {
    StmtNodes.emplace(I.Source, std::vector<SDGNodeId>());
    StmtNodes.emplace(I.Sink, std::vector<SDGNodeId>());
    MaxStmt = std::max({MaxStmt, I.Source, I.Sink});
  }
  // Dense membership mask: the node scan below runs per slicer invocation
  // in fast mode, so it tests an array slot instead of probing the map.
  std::vector<char> Wanted(static_cast<size_t>(MaxStmt) + 1, 0);
  for (const auto &[S, Nodes] : StmtNodes)
    Wanted[S] = 1;
  for (SDGNodeId N = 0; N < NumNodes; ++N) {
    const SDGNode &Nd = G.node(N);
    if (Nd.Kind == SDGNodeKind::Stmt && Nd.S <= MaxStmt && Wanted[Nd.S])
      StmtNodes[Nd.S].push_back(N);
  }

  // One BFS per (source, rule) answers every issue sharing them. Distances
  // are over the union graph — SDG edges plus flow-insensitive heap hops,
  // each weight 1 — a lower bound on any slicer's claimed flow length
  // (tabulation counts summary interiors, BFS shortcuts them). The BFS is
  // depth-bounded by the group's largest claimed length: a witness found
  // within the bound settles the issue, and only a suspicious issue (none
  // found) pays for the unbounded search that tells "no witness at all"
  // apart from "witness longer than claimed".
  struct Group {
    std::vector<size_t> Members; ///< indices into Issues
    uint32_t MaxLen = 0;
  };
  std::unordered_map<uint64_t, Group> Groups;
  std::vector<uint64_t> GroupOrder; // deterministic processing order
  for (size_t Idx = 0; Idx < Issues.size(); ++Idx) {
    const Issue &I = Issues[Idx];
    uint64_t Key = (static_cast<uint64_t>(I.Source) << 32) ^ I.Rule;
    Group &Gp = Groups[Key];
    if (Gp.Members.empty())
      GroupOrder.push_back(Key);
    Gp.Members.push_back(Idx);
    Gp.MaxLen = std::max(Gp.MaxLen, I.Length);
  }

  constexpr uint32_t Unreached = ~0u;
  std::vector<uint32_t> Dist(NumNodes, Unreached);
  std::vector<SDGNodeId> Visited; // for O(reached) reset between searches
  std::deque<SDGNodeId> Q;
  // BFS targets (the group's candidate sink nodes): first visit is the
  // shortest distance, so the search may stop once all are reached.
  std::vector<char> TargetMark(NumNodes, 0);
  std::vector<SDGNodeId> Targets; // marked nodes, for reset + count
  auto bfsFrom = [&](StmtId Source, RuleMask Rule, uint32_t Bound) {
    for (SDGNodeId N : Visited)
      Dist[N] = Unreached;
    Visited.clear();
    Q.clear();
    size_t Pending = Targets.size();
    auto SN = StmtNodes.find(Source);
    if (SN != StmtNodes.end())
      for (SDGNodeId N : SN->second)
        if (G.node(N).SourceMask & Rule) {
          Dist[N] = 0;
          Visited.push_back(N);
          Q.push_back(N);
          if (TargetMark[N])
            --Pending;
        }
    while (!Q.empty() && Pending > 0) {
      SDGNodeId N = Q.front();
      Q.pop_front();
      if (Dist[N] >= Bound)
        continue; // frontier at the bound: record, never expand
      uint32_t D = Dist[N] + 1;
      auto Visit = [&](SDGNodeId To) {
        if (To < NumNodes && Dist[To] == Unreached) {
          Dist[To] = D;
          Visited.push_back(To);
          Q.push_back(To);
          if (TargetMark[To])
            --Pending;
        }
      };
      for (const SDGEdge &E : G.succs(N))
        Visit(E.To);
      if (HE && isStoreAccess(G.node(N).Access)) {
        for (SDGNodeId To : HE->loadsFor(N))
          Visit(To);
        for (SDGNodeId To : HE->carrierSinksFor(N))
          Visit(To);
      }
    }
  };
  auto bestTo = [&](StmtId Sink, RuleMask Rule) {
    uint32_t Best = Unreached;
    auto SN = StmtNodes.find(Sink);
    if (SN != StmtNodes.end())
      for (SDGNodeId N : SN->second)
        if ((G.node(N).SinkMask & Rule) && Dist[N] < Best)
          Best = Dist[N];
    return Best;
  };

  // Verdicts gathered per group, reported in original issue order below so
  // the diagnostic stream is deterministic.
  enum : uint8_t { Ok, NoWitness, TooLong };
  std::vector<std::pair<uint8_t, uint32_t>> Verdicts(Issues.size(), {Ok, 0});
  for (uint64_t Key : GroupOrder) {
    const Group &Gp = Groups[Key];
    const Issue &First = Issues[Gp.Members.front()];
    for (SDGNodeId N : Targets)
      TargetMark[N] = 0;
    Targets.clear();
    for (size_t Idx : Gp.Members) {
      auto SN = StmtNodes.find(Issues[Idx].Sink);
      if (SN != StmtNodes.end())
        for (SDGNodeId N : SN->second)
          if ((G.node(N).SinkMask & Issues[Idx].Rule) && !TargetMark[N]) {
            TargetMark[N] = 1;
            Targets.push_back(N);
          }
    }
    bfsFrom(First.Source, First.Rule, Gp.MaxLen);
    bool Suspicious = false;
    for (size_t Idx : Gp.Members) {
      uint32_t Best = bestTo(Issues[Idx].Sink, Issues[Idx].Rule);
      Suspicious |= Best == Unreached || Best > Issues[Idx].Length;
    }
    if (!Suspicious)
      continue;
    bfsFrom(First.Source, First.Rule, Unreached);
    for (size_t Idx : Gp.Members) {
      uint32_t Best = bestTo(Issues[Idx].Sink, Issues[Idx].Rule);
      if (Best == Unreached)
        Verdicts[Idx] = {NoWitness, 0};
      else if (Best > Issues[Idx].Length)
        Verdicts[Idx] = {TooLong, Best};
    }
  }

  for (size_t Idx = 0; Idx < Issues.size(); ++Idx) {
    const Issue &I = Issues[Idx];
    if (Verdicts[Idx].first == NoWitness)
      V.report(Checker::Witness,
               std::string(rules::ruleName(I.Rule)) +
                   " flow (stmt " + std::to_string(I.Source) + " -> stmt " +
                   std::to_string(I.Sink) +
                   ") has no connected HSDG witness path");
    else if (Verdicts[Idx].first == TooLong)
      V.report(Checker::Witness,
               std::string(rules::ruleName(I.Rule)) + " flow (stmt " +
                   std::to_string(I.Source) + " -> stmt " +
                   std::to_string(I.Sink) + ") claims length " +
                   std::to_string(I.Length) +
                   " but the shortest witness needs " +
                   std::to_string(Verdicts[Idx].second));
  }
}
