//===- verify/Verify.h - Analysis self-verification ------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static-analysis pass over the analyzer's own artifacts (taj-cli
/// --verify): independent re-checking of the invariants every downstream
/// consumer assumes, so a bug in the solver, the SDG builder, a parallel
/// merge, or a checksum-valid-but-structurally-stale cache restore fails
/// loudly instead of silently shipping wrong findings.
///
/// Three checkers sit behind one run() entry point:
///
///  - IRVerifier: TIR/SSA structural invariants (single defs, defs
///    dominate uses, CFG/terminator well-formedness, type/method/field
///    table reference validity) — ir/Verifier.h folded into the violation
///    stream, re-run over warm-restored programs;
///  - GraphVerifier: cross-artifact consistency — every call-graph edge is
///    justified by CHA dispatch over the points-to sets at its site, the
///    points-to solution is a fixpoint of the constraint system (each
///    constraint re-applied once must add no facts), SDG/HeapEdges
///    endpoints resolve to live statements, every heap store->load edge is
///    justified by overlapping base points-to sets, and const-string facts
///    never contradict the IR;
///  - WitnessChecker: every reported issue replays as a connected HSDG
///    path from a rule source to its sink within the claimed flow length
///    (heap hops included; the nested-taint depth bound is already baked
///    into the carrier-sink adjacency being traversed).
///
/// Modes: Off does nothing; Fast runs the cheap checks (SDG/heap endpoint
/// liveness + witness replay) on every run; Full adds the quadratic-ish
/// ones (call-graph justification, fixpoint recheck, heap-edge
/// justification, const-string consistency) and re-verifies every warm
/// ArtifactCache/MemCache restore structurally — the hot tier skips
/// checksum re-verification entirely, so this is the only defense against
/// in-memory corruption there.
///
/// Contract: checkers only run over artifacts of *completed* phases (a
/// guard-stopped or budget-truncated phase is deliberately partial and
/// must never spuriously fail). Each violation prints one
/// "verify: <checker>: <detail>" line to stderr and bumps
/// verify.violations (plus a per-checker counter); drivers map a non-zero
/// total to exit 1.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_VERIFY_VERIFY_H
#define TAJ_VERIFY_VERIFY_H

#include <cstdint>
#include <string>
#include <vector>

namespace taj {

class Program;
class ClassHierarchy;
class PointsToSolver;
class ConstStringResult;
class SDG;
class HeapEdges;
class Stats;
struct Issue;

namespace verify {

/// How much self-verification a run performs.
enum class VerifyMode : uint8_t { Off, Fast, Full };

/// "off" / "fast" / "full".
const char *verifyModeName(VerifyMode M);
/// Parses a --verify= value; false on anything else.
bool parseVerifyMode(const char *Text, VerifyMode &Out);

/// The build-dependent default: Fast in debug/sanitizer builds (CMake
/// defines TAJ_VERIFY_DEFAULT_FAST there), Off in release builds.
inline VerifyMode defaultMode() {
#ifdef TAJ_VERIFY_DEFAULT_FAST
  return VerifyMode::Fast;
#else
  return VerifyMode::Off;
#endif
}

/// Which checker reported a violation (distinct verify.* counters).
enum class Checker : uint8_t {
  Ir,        ///< TIR/SSA structure, table references
  CallGraph, ///< unjustified (phantom) call edge
  PointsTo,  ///< points-to solution is not a constraint fixpoint
  Sdg,       ///< SDG endpoint does not resolve to a live statement
  Heap,      ///< heap store->load edge without points-to justification
  ConstStr,  ///< const-string fact contradicts the IR
  Witness,   ///< reported issue has no HSDG witness path
};
inline constexpr unsigned NumCheckers = 7;

/// "ir" / "callgraph" / "pointsto" / "sdg" / "heap" / "conststr" /
/// "witness" — the <checker> of the diagnostic line and the middle of the
/// verify.<checker>_violations counter name.
const char *checkerName(Checker C);

/// Violation sink for one run: prints each diagnostic as it arrives
/// (capped per checker so a corrupt artifact cannot flood stderr), counts
/// everything, and exports the verify.* / persist.verify_rejected
/// counters. Not thread-safe: every checker runs on the phase-owning
/// thread after parallel work has been merged.
class Violations {
public:
  /// Records one violation: prints "verify: <checker>: <detail>" (unless
  /// this checker already hit the print cap) and bumps the counters.
  void report(Checker C, const std::string &Detail);

  uint64_t total() const { return Total; }
  uint64_t count(Checker C) const {
    return Counts[static_cast<unsigned>(C)];
  }

  /// Marks that a warm cache restore passed record checksum verification
  /// but failed structural re-verification (persist.verify_rejected).
  void noteRestoreRejected() { ++RestoreRejected; }
  uint64_t restoreRejected() const { return RestoreRejected; }

  /// Exports verify.violations, the non-zero per-checker counters and
  /// persist.verify_rejected. Emits nothing on a clean run, so stats
  /// output is identical with and without --verify.
  void exportStats(Stats &S) const;

private:
  static constexpr uint64_t MaxPrinted = 16; // per checker
  uint64_t Counts[NumCheckers] = {};
  uint64_t Total = 0;
  uint64_t RestoreRejected = 0;
};

//===----------------------------------------------------------------------===//
// Individual checkers
//===----------------------------------------------------------------------===//

/// IRVerifier: ir/Verifier.h structural checks (which include the
/// type/method/field table reference validity) routed into \p V.
void verifyIr(const Program &P, Violations &V);

/// GraphVerifier, solver half. Requires a *complete* solve: callers gate
/// on the pointer-analysis phase having Completed without a node-budget
/// truncation (a budgeted or guard-stopped solution is deliberately not a
/// fixpoint). \p ConstStrings may be null (skips the const-string check).
void verifyGraphs(const Program &P, const ClassHierarchy &CHA,
                  const PointsToSolver &Solver,
                  const ConstStringResult *ConstStrings, Violations &V);

/// GraphVerifier, SDG half: every node/endpoint resolves to a live
/// statement of a solver-processed method (always), and — under Full —
/// every heap store->load edge is justified by overlapping base points-to
/// sets. \p HE may be null (CS channel-budget overflow).
void verifySdg(const Program &P, const SDG &G, const HeapEdges *HE,
               const PointsToSolver &Solver, VerifyMode Mode, Violations &V);

/// WitnessChecker: each issue must have a source->sink path in the HSDG
/// union graph (SDG edges + store->load + store->carrier-sink hops, all
/// weight 1) no longer than the issue's claimed flow length. \p HE may be
/// null. Only called after a *completed* slicing phase.
void verifyWitnesses(const SDG &G, const HeapEdges *HE,
                     const std::vector<Issue> &Issues, Violations &V);

} // namespace verify
} // namespace taj

#endif // TAJ_VERIFY_VERIFY_H
