//===- support/Trace.h - Phase-scoped tracing & profiling -----*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer behind the per-phase cost reporting of TAJ's
/// evaluation (Table 2 / Fig. 2): every major pipeline phase — frontend,
/// string propagation, points-to solving, SDG + heap edges, slicing,
/// persist load/store, reporting — is bracketed by a phase scope that
/// feeds two independent consumers:
///
///  - a per-run PhaseProfile accumulating exclusive wall time, process CPU
///    time and peak RSS per phase, exported as `phase.<name>_us` /
///    `phase.<name>_cpu_us` / `phase.<name>_rss_kb` counters in
///    `--stats-json`. Accounting is exclusive at every instant (time
///    accrues to the innermost open scope), so the `_us` counters of one
///    profile tile its lifetime exactly: their sum equals the profiled
///    wall clock with no double counting.
///
///  - a process-global trace sink (`trace::`), off by default and enabled
///    by `taj-cli --trace=PATH`: a mutex-protected fixed-capacity ring
///    buffer of Chrome trace-event records ("X" complete spans, "i"
///    instant events) rendered as `{"traceEvents":[...]}` JSON loadable in
///    chrome://tracing and Perfetto. Timestamps are absolute monotonic
///    microseconds, so traces from concurrently running processes (a
///    supervised batch's workers) merge onto one aligned timeline keyed by
///    pid/tid.
///
/// Overhead contract: with tracing disabled (the default) every
/// instrumentation point costs one relaxed atomic load; the PhaseProfile
/// performs a handful of clock reads per run (per phase transition, never
/// per work item). Neither may perturb analysis results — spans observe,
/// they do not participate.
///
/// Threading: the trace sink is safe from any thread (per-worker spans in
/// the parallel slicing engine record concurrently, tagged with a stable
/// per-thread id). A PhaseProfile is coordinator-thread-only, like
/// RunGuard's phase bookkeeping: push/pop happen at phase boundaries while
/// no worker is running.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SUPPORT_TRACE_H
#define TAJ_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace taj {

class Stats;

namespace trace {

namespace detail {
/// Global enable flag; relaxed loads keep the disabled fast path free.
extern std::atomic<bool> Enabled;
} // namespace detail

/// True when a trace sink is collecting events.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Arms the global sink with a fresh ring buffer of \p Capacity events.
void enable(size_t Capacity = 1 << 16);

/// Disarms the sink (the buffer is kept until the next enable()).
void disable();

/// Absolute monotonic microseconds (same clock base across processes on
/// one machine, so batch-worker traces align on a shared timeline).
uint64_t nowUs();

/// Stable dense id of the calling thread (1-based, per process).
uint32_t currentTid();

/// Records a complete ("X") span on the calling thread's track, or on the
/// synthetic track \p Tid when non-zero (the supervisor gives each batch
/// app its own lane, so concurrent worker spans don't overlap on the
/// coordinator's track). No-op while disabled.
void addComplete(std::string Name, const char *Cat, uint64_t BeginUs,
                 uint64_t EndUs, uint32_t Tid = 0);

/// Records a thread-scoped instant ("i") event, e.g. a RunGuard stop or a
/// supervisor watchdog action. No-op while disabled.
void addInstant(std::string Name, const char *Cat);

/// Events overwritten because the ring buffer wrapped.
uint64_t droppedEvents();

/// Renders the buffered events as a comma-joined list of JSON objects
/// (no surrounding brackets) — the merge unit for batch timelines.
std::string renderEvents();

/// Renders a complete `{"traceEvents":[...]}` document.
std::string renderJson();

/// Writes renderJson() to \p Path. Returns false on I/O failure.
bool writeJson(const std::string &Path);

/// Writes one merged document: this process's events plus every event
/// blob of \p ExtraEventBlobs (as produced by extractEvents() from a
/// worker's trace file). Returns false on I/O failure.
bool writeJsonMerged(const std::string &Path,
                     const std::vector<std::string> &ExtraEventBlobs);

/// Extracts the inner event list ("..." between the traceEvents
/// brackets) from a trace document, or "" when the content is not a
/// trace file (e.g. a crashed worker never wrote one).
std::string extractEvents(const std::string &TraceFileContent);

/// RAII complete-event span. Construction samples the clock only when
/// tracing is enabled; destruction records the event.
class Span {
public:
  Span(std::string Name, const char *Cat) : Cat(Cat) {
    if (enabled()) {
      this->Name = std::move(Name);
      BeginUs = nowUs();
      Live = true;
    }
  }
  ~Span() {
    if (Live)
      addComplete(std::move(Name), Cat, BeginUs, nowUs());
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  std::string Name;
  const char *Cat;
  uint64_t BeginUs = 0;
  bool Live = false;
};

} // namespace trace

/// Per-run exclusive wall/CPU/peak-RSS accounting, keyed by phase name.
/// A stack of open phases starts at the root phase "other"; at every
/// transition the elapsed wall and process-CPU time since the previous
/// transition accrues to the phase that was on top, and the current RSS
/// updates that phase's peak. Coordinator-thread only.
class PhaseProfile {
public:
  PhaseProfile();

  /// Opens phase \p Name; subsequent time accrues to it until the next
  /// push/pop. Prefer PhaseScope over calling this directly.
  void push(const char *Name);
  /// Closes the innermost open phase (the root never pops).
  void pop();

  /// Wall microseconds accrued to \p Name so far (open frames are accrued
  /// up to now first).
  double wallUsOf(const std::string &Name);

  /// Accrues the open frame and adds `phase.<name>_us`,
  /// `phase.<name>_cpu_us` and `phase.<name>_rss_kb` for every phase seen.
  void exportStats(Stats &S);

private:
  struct Acc {
    double WallUs = 0;
    double CpuUs = 0;
    uint64_t PeakRssKb = 0;
  };

  /// Charges [last mark, now) to the top-of-stack phase.
  void accrueToTop();

  std::map<std::string, Acc> Phases;
  std::vector<const char *> Stack;
  double MarkWallUs = 0;
  double MarkCpuUs = 0;
};

/// RAII phase bracket feeding both consumers: pushes/pops \p Prof (when
/// non-null) and records a trace span (when tracing is enabled). This is
/// the one instrumentation primitive the pipeline uses.
class PhaseScope {
public:
  PhaseScope(PhaseProfile *Prof, const char *Name, const char *Cat = "phase")
      : Prof(Prof), Name(Name), Cat(Cat) {
    if (Prof)
      Prof->push(Name);
    if (trace::enabled()) {
      BeginUs = trace::nowUs();
      Traced = true;
    }
  }
  ~PhaseScope() {
    if (Prof)
      Prof->pop();
    if (Traced)
      trace::addComplete(Name, Cat, BeginUs, trace::nowUs());
  }
  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;

private:
  PhaseProfile *Prof;
  const char *Name;
  const char *Cat;
  uint64_t BeginUs = 0;
  bool Traced = false;
};

} // namespace taj

#endif // TAJ_SUPPORT_TRACE_H
