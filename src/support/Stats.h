//===- support/Stats.h - Counters, timers, analysis budgets ---*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight statistics counters, a wall-clock timer, and the Budget
/// object used by the bounded-analysis techniques of TAJ Section 6.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SUPPORT_STATS_H
#define TAJ_SUPPORT_STATS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace taj {

/// Named counters collected during an analysis run.
class Stats {
public:
  /// Adds \p Delta to counter \p Name.
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Returns the value of counter \p Name (0 if never touched).
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Renders all counters as "name=value" lines.
  std::string toString() const;

private:
  std::map<std::string, uint64_t> Counters;
};

/// Wall-clock timer with millisecond resolution.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Returns elapsed milliseconds since construction or last restart().
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

  /// Resets the timer to now.
  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A consumable resource budget (call-graph nodes, heap transitions,
/// CS-slicing memory units, ...). A zero limit means "unbounded".
class Budget {
public:
  Budget() = default;
  explicit Budget(uint64_t Limit) : Limit(Limit) {}

  /// Consumes \p N units; returns false (and sets the exhausted flag) once
  /// the limit would be exceeded.
  bool consume(uint64_t N = 1) {
    Used += N;
    if (Limit != 0 && Used > Limit) {
      Exceeded = true;
      return false;
    }
    return true;
  }

  /// True once consume() has failed at least once.
  bool exhausted() const { return Exceeded; }

  /// Units consumed so far.
  uint64_t used() const { return Used; }

  /// The configured limit (0 = unbounded).
  uint64_t limit() const { return Limit; }

private:
  uint64_t Limit = 0;
  uint64_t Used = 0;
  bool Exceeded = false;
};

} // namespace taj

#endif // TAJ_SUPPORT_STATS_H
