//===- support/Stats.h - Counters, timers, analysis budgets ---*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight statistics counters, a wall-clock timer, and the Budget
/// object used by the bounded-analysis techniques of TAJ Section 6.
///
/// Counters are handle-based: a name is interned once into a dense handle
/// (a slot index), and increments through the handle are lock-free atomic
/// adds. Hot loops pre-resolve their handles up front instead of paying a
/// string-keyed map lookup per increment; the string-keyed add() remains
/// for cold paths. Interning handles is NOT safe concurrently with
/// increments — resolve every handle before fanning work out to threads.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SUPPORT_STATS_H
#define TAJ_SUPPORT_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace taj {

/// Named counters collected during an analysis run. Increments through a
/// pre-interned handle are thread-safe (relaxed atomic adds); everything
/// else (interning, reading, copying) must be quiescent.
class Stats {
public:
  /// Dense counter handle (slot index).
  using Handle = uint32_t;

  /// Interns \p Name, returning its handle. Idempotent. Not thread-safe;
  /// resolve handles before any concurrent addTo().
  Handle handle(const std::string &Name) {
    auto It = Index.find(Name);
    if (It != Index.end())
      return It->second;
    Handle H = static_cast<Handle>(Slots.size());
    Slots.push_back(0);
    Index.emplace(Name, H);
    return H;
  }

  /// Adds \p Delta to the counter behind \p H. Thread-safe for handles
  /// interned before the concurrent phase began.
  void addTo(Handle H, uint64_t Delta = 1) {
    std::atomic_ref<uint64_t>(Slots[H]).fetch_add(Delta,
                                                  std::memory_order_relaxed);
  }

  /// Adds \p Delta to counter \p Name (cold-path convenience; interns).
  void add(const std::string &Name, uint64_t Delta = 1) {
    addTo(handle(Name), Delta);
  }

  /// Returns the value of counter \p Name (0 if never touched).
  uint64_t get(const std::string &Name) const {
    auto It = Index.find(Name);
    return It == Index.end() ? 0 : Slots[It->second];
  }

  /// Adds every counter of \p Other into this object (interning any new
  /// names). Not thread-safe; both objects must be quiescent.
  void merge(const Stats &Other);

  /// Parses a toJson()-shaped flat object and adds every counter into
  /// this object. Returns false (leaving any counters already parsed
  /// applied) on malformed input. Used by the batch supervisor to fold a
  /// worker process's --stats-json output back into the merged stats.
  bool mergeJson(const std::string &Json);

  /// Renders all counters as "name=value" lines (sorted by name).
  std::string toString() const;

  /// Renders all counters as one JSON object, keys sorted by name, for
  /// machine consumption (taj-cli --stats-json).
  std::string toJson() const;

private:
  /// Name -> slot, ordered so toString() stays deterministic.
  std::map<std::string, Handle> Index;
  std::vector<uint64_t> Slots;
};

/// Wall-clock timer with millisecond resolution.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Returns elapsed milliseconds since construction or last restart().
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

  /// Resets the timer to now.
  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A consumable resource budget (call-graph nodes, heap transitions,
/// CS-slicing memory units, ...). A zero limit means "unbounded".
class Budget {
public:
  Budget() = default;
  explicit Budget(uint64_t Limit) : Limit(Limit) {}

  /// Consumes \p N units; returns false (and sets the exhausted flag) once
  /// the limit would be exceeded.
  bool consume(uint64_t N = 1) {
    Used += N;
    if (Limit != 0 && Used > Limit) {
      Exceeded = true;
      return false;
    }
    return true;
  }

  /// True once consume() has failed at least once.
  bool exhausted() const { return Exceeded; }

  /// Units consumed so far.
  uint64_t used() const { return Used; }

  /// The configured limit (0 = unbounded).
  uint64_t limit() const { return Limit; }

private:
  uint64_t Limit = 0;
  uint64_t Used = 0;
  bool Exceeded = false;
};

} // namespace taj

#endif // TAJ_SUPPORT_STATS_H
