//===- support/Rng.h - Deterministic random numbers -----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic xorshift RNG used by the synthetic benchmark
/// generator and the property tests. We intentionally avoid std::mt19937 so
/// that generated programs are identical across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SUPPORT_RNG_H
#define TAJ_SUPPORT_RNG_H

#include <cstdint>

namespace taj {

/// Deterministic xorshift64* generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull)
      : State(Seed ? Seed : 1) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint32_t below(uint32_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive. Requires Lo <= Hi.
  uint32_t range(uint32_t Lo, uint32_t Hi);

  /// Bernoulli trial with probability Num/Den.
  bool chance(uint32_t Num, uint32_t Den);

private:
  uint64_t State;
};

} // namespace taj

#endif // TAJ_SUPPORT_RNG_H
