//===- support/Parallel.cpp ------------------------------------*- C++ -*-===//

#include "support/Parallel.h"

#include "support/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

using namespace taj;

unsigned taj::resolveThreadCount(unsigned Requested) {
  unsigned N = Requested;
  if (N == 0) {
    if (const char *E = std::getenv("TAJ_THREADS"))
      N = static_cast<unsigned>(std::strtoul(E, nullptr, 10));
    if (N == 0)
      N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1; // hardware_concurrency() may be unknown
  }
  return std::clamp(N, 1u, 256u);
}

void taj::parallelForInterleaved(
    unsigned Threads, size_t NumItems,
    const std::function<void(unsigned, size_t)> &Fn) {
  unsigned W = std::max(1u, Threads);
  if (W > NumItems)
    W = NumItems == 0 ? 1 : static_cast<unsigned>(NumItems);
  if (W == 1) {
    trace::Span S("worker 0 (inline)", "parallel");
    for (size_t I = 0; I < NumItems; ++I)
      Fn(0, I);
    return;
  }

  std::mutex ErrMutex;
  std::exception_ptr FirstError;
  auto Body = [&](unsigned Worker) {
    // One span per worker fan-out (not per item): with tracing disabled
    // this is a single relaxed atomic load, preserving the <1% overhead
    // contract of the parallel slicing engine.
    trace::Span S("worker " + std::to_string(Worker), "parallel");
    try {
      for (size_t I = Worker; I < NumItems; I += W)
        Fn(Worker, I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(ErrMutex);
      if (!FirstError)
        FirstError = std::current_exception();
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(W - 1);
  for (unsigned T = 1; T < W; ++T)
    Pool.emplace_back(Body, T);
  Body(0); // the calling thread is worker 0
  for (std::thread &T : Pool)
    T.join();
  if (FirstError)
    std::rethrow_exception(FirstError);
}
