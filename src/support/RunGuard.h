//===- support/RunGuard.h - Run governance & degradation ------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-cutting run-governance layer behind TAJ's bounded-analysis
/// discipline (§6): a RunGuard combines a wall-clock deadline, a memory
/// ceiling, cooperative cancellation and a deterministic fault-injection
/// hook behind one cheap checkpoint() call that every long-running loop of
/// the pipeline polls. When a limit trips, the guard latches the phase and
/// reason of the cutoff; phases observe the stop at their next checkpoint
/// and unwind with whatever partial (underapproximate) results they hold.
///
/// The structured outcome of a governed run is a RunStatus: one PhaseReport
/// per pipeline phase stating whether it completed, was truncated (its
/// results are an underapproximation), or was skipped entirely.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SUPPORT_RUNGUARD_H
#define TAJ_SUPPORT_RUNGUARD_H

#include "support/Stats.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace taj {

/// The pipeline phases a guard can attribute work (and a cutoff) to.
enum class RunPhase : uint8_t {
  Frontend,        ///< parsing + IR verification (CLI only)
  PointerAnalysis, ///< Andersen solver + on-the-fly call graph (§3.1)
  SdgBuild,        ///< SDG / heap-edge construction (§3.2 prep)
  Slicing,         ///< thin slicing / RHS tabulation (§3.2)
  Reporting,       ///< LCP grouping and rendering (§5)
};

/// Why a run was cut off.
enum class CutoffReason : uint8_t {
  None,          ///< not cut off
  Deadline,      ///< wall-clock deadline expired
  Memory,        ///< memory ceiling exceeded
  NodeBudget,    ///< call-graph node budget exhausted (§6.1)
  Cancelled,     ///< external cancellation request
  FaultInjected, ///< deterministic test-only fault injection
  InternalError, ///< unexpected internal failure
};

/// Outcome of one phase under governance.
enum class PhaseOutcome : uint8_t {
  Completed, ///< ran to its natural fixpoint
  Truncated, ///< cut off mid-way; results are underapproximate
  Skipped,   ///< never ran (an earlier phase exhausted the run)
};

const char *phaseName(RunPhase P);
const char *cutoffReasonName(CutoffReason R);
const char *phaseOutcomeName(PhaseOutcome O);

/// One rung of the supervised retry ladder: how a re-run of a crashed,
/// timed-out or OOM-killed app is degraded relative to the first attempt.
/// Exposed here (rather than inside the supervisor) so the cooperative
/// governance layer and the process-level supervisor agree on what
/// "degraded" means; taj-cli translates the preset into worker flags.
struct DegradationPreset {
  /// Multiplier applied to a nonzero call-graph node budget (§6.1).
  double CallGraphBudgetScale = 0.5;
  /// Drop interprocedural string propagation to per-method local mode.
  bool ForceLocalStringAnalysis = true;
  /// Pin slicing to one worker thread (lowest peak memory).
  bool ForceSingleThread = true;
  /// Injected faults (--fail-at/--crash-at/--hang-at) are first-attempt
  /// scenarios; a retry must run without them or it can never recover.
  bool StripFaultInjection = true;
};

/// The degradation preset for retry attempt \p Attempt (1-based: the
/// first re-run after a non-clean exit). One rung today; the signature
/// leaves room for a deeper ladder.
const DegradationPreset &degradationForAttempt(unsigned Attempt);

/// Emits a thread-scoped instant event ("guard-stop: <reason> in
/// <phase>") into the global trace sink, so a truncated phase is visible
/// on the --trace timeline. No-op while tracing is disabled. Defined in
/// RunGuard.cpp to keep Trace.h out of this header.
void traceGuardStop(CutoffReason R, RunPhase P);

/// Structured diagnostic for one phase of a governed run.
struct PhaseReport {
  RunPhase Phase = RunPhase::PointerAnalysis;
  PhaseOutcome Outcome = PhaseOutcome::Completed;
  CutoffReason Reason = CutoffReason::None;
  /// Work units (checkpoints) the phase performed before finishing or
  /// being cut off.
  uint64_t WorkDone = 0;
};

/// Structured outcome of a whole governed run, carried on AnalysisResult.
struct RunStatus {
  std::vector<PhaseReport> Phases;

  /// True when any phase did not complete (results underapproximate).
  bool degraded() const {
    for (const PhaseReport &PR : Phases)
      if (PR.Outcome != PhaseOutcome::Completed)
        return true;
    return false;
  }

  /// First non-completed phase report, or nullptr when the run was clean.
  const PhaseReport *firstDegraded() const {
    for (const PhaseReport &PR : Phases)
      if (PR.Outcome != PhaseOutcome::Completed)
        return &PR;
    return nullptr;
  }

  PhaseOutcome outcomeOf(RunPhase P) const {
    for (const PhaseReport &PR : Phases)
      if (PR.Phase == P)
        return PR.Outcome;
    return PhaseOutcome::Skipped;
  }

  /// "pointer-analysis: truncated (deadline) after 123 units; ..."
  std::string toString() const;
};

/// Governs one analysis run. Long-running loops call checkpoint(); once a
/// limit trips, checkpoint() latches the cutoff and returns false forever,
/// and every phase unwinds cooperatively. All limits are optional (zero
/// disables). cancel() may be called from another thread.
///
/// Concurrency contract: checkpoint(), stopped(), cancel() and the cutoff
/// accessors are safe from any number of threads (the parallel slicing
/// workers all poll one guard). Phase bookkeeping — beginPhase() and
/// workOf() — must only be called from the coordinating thread at phase
/// boundaries, while no worker is checkpointing; within a phase the atomic
/// global checkpoint counter attributes concurrent work to the phase that
/// opened it.
class RunGuard {
public:
  struct Limits {
    /// Wall-clock deadline in milliseconds (0 = none).
    double DeadlineMs = 0;
    /// Resident-set ceiling in bytes (0 = none).
    uint64_t MaxMemoryBytes = 0;
    /// Fault injection: trip at the Nth checkpoint (1-based; 0 = off).
    uint64_t FailAtCheckpoint = 0;
    /// Hard fault injection: die at the Nth checkpoint (1-based; 0 = off)
    /// via abort(), or raise(CrashSignal) when that is set. Unlike
    /// FailAtCheckpoint this is NOT cooperative — the process terminates
    /// on the spot, exercising the supervisor's crash classification.
    uint64_t CrashAtCheckpoint = 0;
    /// Signal CrashAtCheckpoint raises instead of abort() (0 = abort()).
    /// TAJ_CRASH_SIGNAL=9 simulates a kernel OOM kill deterministically.
    int CrashSignal = 0;
    /// Hard fault injection: block forever at the Nth checkpoint
    /// (1-based; 0 = off), exercising the supervisor's watchdog.
    uint64_t HangAtCheckpoint = 0;
  };

  RunGuard() = default;
  explicit RunGuard(const Limits &L) : Lim(L) {}

  /// Overlays TAJ_DEADLINE_MS / TAJ_MAX_MEMORY_MB / TAJ_FAIL_AT environment
  /// variables onto \p Base, filling only limits \p Base leaves unset —
  /// explicit configuration always beats the environment.
  static Limits limitsFromEnv(Limits Base);
  static Limits limitsFromEnv() { return limitsFromEnv(Limits()); }

  /// Marks the start of pipeline phase \p Ph; subsequent work (and a
  /// cutoff, if one happens) is attributed to it. Coordinator-thread only.
  void beginPhase(RunPhase Ph) {
    uint64_t C = Checkpoints.load(std::memory_order_relaxed);
    PhaseWorkAcc[static_cast<size_t>(CurPhase)] += C - PhaseStartWork;
    CurPhase = Ph;
    PhaseStartWork = C;
  }
  RunPhase phase() const { return CurPhase; }

  /// Total checkpoints attributed to phase \p Ph so far.
  uint64_t workOf(RunPhase Ph) const {
    uint64_t W = PhaseWorkAcc[static_cast<size_t>(Ph)];
    if (Ph == CurPhase)
      W += Checkpoints.load(std::memory_order_relaxed) - PhaseStartWork;
    return W;
  }

  /// One unit of work. Returns true to continue, false once the run is
  /// stopped; cheap enough for per-iteration use in hot loops (deadline
  /// and memory are polled every PollInterval checkpoints). Safe from any
  /// thread; concurrent callers share one global checkpoint count, so a
  /// fault-injection limit still trips at the Nth checkpoint overall.
  bool checkpoint() {
    if (StopFlag.load(std::memory_order_acquire))
      return false;
    uint64_t C = Checkpoints.fetch_add(1, std::memory_order_relaxed) + 1;
    if (Lim.CrashAtCheckpoint != 0 && C >= Lim.CrashAtCheckpoint)
      crashNow(); // does not return
    if (Lim.HangAtCheckpoint != 0 && C >= Lim.HangAtCheckpoint)
      hangForever(); // does not return
    if (Lim.FailAtCheckpoint != 0 && C >= Lim.FailAtCheckpoint)
      return stop(CutoffReason::FaultInjected);
    if (CancelFlag.load(std::memory_order_relaxed))
      return stop(CutoffReason::Cancelled);
    if ((C & (PollInterval - 1)) == 0)
      return poll();
    return true;
  }

  /// True once any limit has tripped (sticky).
  bool stopped() const { return StopFlag.load(std::memory_order_acquire); }

  /// Requests cooperative cancellation; safe from any thread. Takes effect
  /// at the next checkpoint.
  void cancel() { CancelFlag.store(true, std::memory_order_relaxed); }

  /// Records an unexpected internal failure as the cutoff.
  void markInternalError() { stop(CutoffReason::InternalError); }

  /// The limits this guard enforces (after any environment overlay the
  /// creator applied). Lets callers detect fault-injection runs, which
  /// must bypass the artifact cache.
  const Limits &limits() const { return Lim; }

  CutoffReason reason() const { return Reason; }
  /// Phase the cutoff happened in (meaningful only when stopped()).
  RunPhase cutoffPhase() const { return CutPhase; }
  /// Total checkpoints passed so far.
  uint64_t checkpointCount() const {
    return Checkpoints.load(std::memory_order_relaxed);
  }
  /// Checkpoints passed since the current phase began.
  uint64_t phaseWork() const {
    return Checkpoints.load(std::memory_order_relaxed) - PhaseStartWork;
  }
  /// Checkpoint index at which the run stopped (0 if still running).
  uint64_t workAtCutoff() const { return CutoffAt; }
  /// Milliseconds since the guard was constructed.
  double elapsedMs() const { return T.elapsedMs(); }

  /// Exports guard.checkpoints / guard.cutoff.<reason> counters (§ stats).
  void exportStats(Stats &S) const;

  /// Current resident set size in bytes (0 when unknown on this platform).
  static uint64_t currentRssBytes();

private:
  /// Deadline/memory checks are amortized over this many checkpoints
  /// (must be a power of two).
  static constexpr uint64_t PollInterval = 128;

  /// Terminates the process abnormally (abort() or raise(CrashSignal)).
  [[noreturn]] void crashNow() const;
  /// Blocks this thread forever (interruptible only by signals).
  [[noreturn]] static void hangForever();

  bool stop(CutoffReason R) {
    // Two-step latch: a relaxed CAS elects the winner, which records the
    // cutoff details and only then publishes StopFlag with release order,
    // so any thread observing stopped() also observes Reason/CutPhase/
    // CutoffAt.
    bool Expected = false;
    if (StopClaim.compare_exchange_strong(Expected, true,
                                          std::memory_order_relaxed)) {
      Reason = R;
      CutPhase = CurPhase;
      CutoffAt = Checkpoints.load(std::memory_order_relaxed);
      StopFlag.store(true, std::memory_order_release);
      traceGuardStop(R, CurPhase); // one-shot, off the hot path
    }
    return false;
  }

  bool poll() {
    if (Lim.DeadlineMs > 0 && T.elapsedMs() > Lim.DeadlineMs)
      return stop(CutoffReason::Deadline);
    if (Lim.MaxMemoryBytes != 0) {
      uint64_t Rss = currentRssBytes();
      if (Rss != 0 && Rss > Lim.MaxMemoryBytes)
        return stop(CutoffReason::Memory);
    }
    return true;
  }

  Limits Lim;
  Timer T;
  std::atomic<uint64_t> Checkpoints{0};
  uint64_t PhaseStartWork = 0;
  uint64_t PhaseWorkAcc[5] = {0, 0, 0, 0, 0};
  uint64_t CutoffAt = 0;
  RunPhase CurPhase = RunPhase::PointerAnalysis;
  RunPhase CutPhase = RunPhase::PointerAnalysis;
  CutoffReason Reason = CutoffReason::None;
  std::atomic<bool> StopClaim{false};
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> CancelFlag{false};
};

} // namespace taj

#endif // TAJ_SUPPORT_RUNGUARD_H
