//===- support/StringPool.cpp ---------------------------------*- C++ -*-===//

#include "support/StringPool.h"

#include <cassert>

using namespace taj;

Symbol StringPool::intern(std::string_view S) {
  auto It = Map.find(S);
  if (It != Map.end())
    return It->second;
  Strings.emplace_back(S);
  Symbol Sym = static_cast<Symbol>(Strings.size() - 1);
  Map.emplace(std::string_view(Strings.back()), Sym);
  return Sym;
}

std::string_view StringPool::str(Symbol Sym) const {
  assert(Sym < Strings.size() && "symbol out of range");
  return Strings[Sym];
}

Symbol StringPool::lookup(std::string_view S) const {
  auto It = Map.find(S);
  return It == Map.end() ? ~0u : It->second;
}
