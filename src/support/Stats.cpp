//===- support/Stats.cpp --------------------------------------*- C++ -*-===//

#include "support/Stats.h"

using namespace taj;

void Stats::merge(const Stats &Other) {
  for (const auto &[Name, H] : Other.Index)
    add(Name, Other.Slots[H]);
}

std::string Stats::toString() const {
  std::string Out;
  for (const auto &[Name, H] : Index) {
    Out += Name;
    Out += '=';
    Out += std::to_string(Slots[H]);
    Out += '\n';
  }
  return Out;
}

std::string Stats::toJson() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, H] : Index) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    for (char C : Name) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += "\":";
    Out += std::to_string(Slots[H]);
  }
  Out += "}";
  return Out;
}
