//===- support/Stats.cpp --------------------------------------*- C++ -*-===//

#include "support/Stats.h"

using namespace taj;

std::string Stats::toString() const {
  std::string Out;
  for (const auto &[Name, H] : Index) {
    Out += Name;
    Out += '=';
    Out += std::to_string(Slots[H]);
    Out += '\n';
  }
  return Out;
}
