//===- support/Stats.cpp --------------------------------------*- C++ -*-===//

#include "support/Stats.h"

using namespace taj;

std::string Stats::toString() const {
  std::string Out;
  for (const auto &[Name, Value] : Counters) {
    Out += Name;
    Out += '=';
    Out += std::to_string(Value);
    Out += '\n';
  }
  return Out;
}
