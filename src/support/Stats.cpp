//===- support/Stats.cpp --------------------------------------*- C++ -*-===//

#include "support/Stats.h"

#include <cctype>
#include <cstdlib>

using namespace taj;

void Stats::merge(const Stats &Other) {
  for (const auto &[Name, H] : Other.Index)
    add(Name, Other.Slots[H]);
}

std::string Stats::toString() const {
  std::string Out;
  for (const auto &[Name, H] : Index) {
    Out += Name;
    Out += '=';
    Out += std::to_string(Slots[H]);
    Out += '\n';
  }
  return Out;
}

bool Stats::mergeJson(const std::string &Json) {
  // Inverse of toJson(): one flat object of "name":integer pairs. The
  // supervisor uses this to fold a worker's --stats-json file back into
  // the batch-level merged stats. Tolerates whitespace; rejects nesting.
  size_t I = 0;
  auto SkipWs = [&] {
    while (I < Json.size() && std::isspace(static_cast<unsigned char>(Json[I])))
      ++I;
  };
  SkipWs();
  if (I >= Json.size() || Json[I] != '{')
    return false;
  ++I;
  SkipWs();
  if (I < Json.size() && Json[I] == '}')
    return true; // empty object
  for (;;) {
    SkipWs();
    if (I >= Json.size() || Json[I] != '"')
      return false;
    ++I;
    std::string Name;
    while (I < Json.size() && Json[I] != '"') {
      if (Json[I] == '\\' && I + 1 < Json.size())
        ++I;
      Name += Json[I++];
    }
    if (I >= Json.size())
      return false;
    ++I; // closing quote
    SkipWs();
    if (I >= Json.size() || Json[I] != ':')
      return false;
    ++I;
    SkipWs();
    size_t Start = I;
    while (I < Json.size() && std::isdigit(static_cast<unsigned char>(Json[I])))
      ++I;
    if (I == Start)
      return false;
    add(Name, std::strtoull(Json.c_str() + Start, nullptr, 10));
    SkipWs();
    if (I < Json.size() && Json[I] == ',') {
      ++I;
      continue;
    }
    break;
  }
  SkipWs();
  return I < Json.size() && Json[I] == '}';
}

std::string Stats::toJson() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, H] : Index) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    for (char C : Name) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += "\":";
    Out += std::to_string(Slots[H]);
  }
  Out += "}";
  return Out;
}
