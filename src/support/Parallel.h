//===- support/Parallel.h - Slicing thread pool helpers --------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small threading layer behind the parallel slicing engine: thread
/// count resolution (--threads flag / TAJ_THREADS env / hardware
/// concurrency) and a statically interleaved parallel-for over a fixed
/// work-item range.
///
/// Static interleaving (worker w takes items w, w+T, w+2T, ...) is chosen
/// over dynamic work stealing deliberately: the item -> worker mapping is a
/// pure function of (item index, thread count), so per-worker accumulations
/// (Tabulation summary reuse, path-edge counts) are reproducible run to run
/// at a fixed thread count, not scheduling-dependent.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SUPPORT_PARALLEL_H
#define TAJ_SUPPORT_PARALLEL_H

#include <cstddef>
#include <functional>

namespace taj {

/// Resolves a requested worker count: a positive request wins as-is;
/// 0 means auto — the TAJ_THREADS environment variable if set, otherwise
/// std::thread::hardware_concurrency(). The result is clamped to [1, 256].
unsigned resolveThreadCount(unsigned Requested);

/// Runs Fn(Worker, Item) for every Item in [0, NumItems), fanning the range
/// across \p Threads workers with static interleaving. Threads <= 1 (or
/// fewer than 2 items) runs inline on the calling thread with Worker = 0.
/// The first exception thrown by any worker is rethrown on the calling
/// thread after all workers have joined.
void parallelForInterleaved(unsigned Threads, size_t NumItems,
                            const std::function<void(unsigned, size_t)> &Fn);

} // namespace taj

#endif // TAJ_SUPPORT_PARALLEL_H
