//===- support/Rng.cpp ----------------------------------------*- C++ -*-===//

#include "support/Rng.h"

#include <cassert>

using namespace taj;

uint64_t Rng::next() {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545f4914f6cdd1dull;
}

uint32_t Rng::below(uint32_t Bound) {
  assert(Bound != 0 && "empty range");
  return static_cast<uint32_t>(next() % Bound);
}

uint32_t Rng::range(uint32_t Lo, uint32_t Hi) {
  assert(Lo <= Hi && "inverted range");
  return Lo + below(Hi - Lo + 1);
}

bool Rng::chance(uint32_t Num, uint32_t Den) {
  assert(Den != 0 && "zero denominator");
  return below(Den) < Num;
}
