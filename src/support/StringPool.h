//===- support/StringPool.h - String interning ----------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple string interner. Every distinct string maps to a dense 32-bit
/// Symbol; Symbol 0 is the empty string. Interned strings live for the
/// lifetime of the pool, so returned string_views remain valid.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SUPPORT_STRINGPOOL_H
#define TAJ_SUPPORT_STRINGPOOL_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace taj {

/// Dense identifier of an interned string.
using Symbol = uint32_t;

/// Interns strings into dense Symbol ids.
class StringPool {
public:
  StringPool() { intern(""); }

  /// Returns the Symbol for \p S, interning it if new.
  Symbol intern(std::string_view S);

  /// Returns the string for \p Sym. \p Sym must have been interned.
  std::string_view str(Symbol Sym) const;

  /// Returns the number of interned strings.
  size_t size() const { return Strings.size(); }

  /// Returns the Symbol for \p S if already interned, or ~0u otherwise.
  Symbol lookup(std::string_view S) const;

private:
  // Deque keeps element addresses stable across growth, so the map's
  // string_view keys stay valid.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, Symbol> Map;
};

} // namespace taj

#endif // TAJ_SUPPORT_STRINGPOOL_H
