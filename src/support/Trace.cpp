//===- support/Trace.cpp - Phase-scoped tracing & profiling ----*- C++ -*-===//

#include "support/Trace.h"

#include "support/RunGuard.h"
#include "support/Stats.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>

#include <unistd.h>

using namespace taj;

//===----------------------------------------------------------------------===//
// Trace sink
//===----------------------------------------------------------------------===//

std::atomic<bool> trace::detail::Enabled{false};

namespace {

struct TraceEvent {
  std::string Name;
  const char *Cat;
  char Ph; // 'X' complete, 'i' instant
  uint64_t TsUs;
  uint64_t DurUs;
  uint32_t Tid;
};

/// The process-global sink. A mutex suffices: events are recorded at
/// phase/worker granularity, never per work item, so contention is not a
/// factor even at high thread counts.
struct TraceSink {
  std::mutex Mu;
  std::vector<TraceEvent> Buf;
  size_t Cap = 0;
  size_t Next = 0; // overwrite cursor once the ring is full
  bool Wrapped = false;
  uint64_t Dropped = 0;
};

TraceSink &sink() {
  static TraceSink S;
  return S;
}

void pushEvent(TraceEvent E) {
  TraceSink &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Cap == 0)
    return;
  if (S.Buf.size() < S.Cap) {
    S.Buf.push_back(std::move(E));
    return;
  }
  // Ring wrap: the oldest event makes room for the newest.
  S.Buf[S.Next] = std::move(E);
  S.Next = (S.Next + 1) % S.Cap;
  S.Wrapped = true;
  ++S.Dropped;
}

void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (U < 0x20) {
      char Hex[8];
      std::snprintf(Hex, sizeof(Hex), "\\u%04x", U);
      Out += Hex;
    } else {
      Out += C;
    }
  }
}

void renderEvent(std::string &Out, const TraceEvent &E, long Pid) {
  Out += "{\"name\":\"";
  appendJsonEscaped(Out, E.Name);
  Out += "\",\"cat\":\"";
  Out += E.Cat;
  Out += "\",\"ph\":\"";
  Out += E.Ph;
  Out += "\",\"ts\":";
  Out += std::to_string(E.TsUs);
  if (E.Ph == 'X') {
    Out += ",\"dur\":";
    Out += std::to_string(E.DurUs);
  } else {
    Out += ",\"s\":\"t\""; // thread-scoped instant
  }
  Out += ",\"pid\":";
  Out += std::to_string(Pid);
  Out += ",\"tid\":";
  Out += std::to_string(E.Tid);
  Out += '}';
}

} // namespace

void trace::enable(size_t Capacity) {
  TraceSink &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Buf.clear();
  S.Cap = Capacity ? Capacity : 1;
  S.Next = 0;
  S.Wrapped = false;
  S.Dropped = 0;
  detail::Enabled.store(true, std::memory_order_relaxed);
}

void trace::disable() {
  detail::Enabled.store(false, std::memory_order_relaxed);
}

uint64_t trace::nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t trace::currentTid() {
  static std::atomic<uint32_t> NextTid{1};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

void trace::addComplete(std::string Name, const char *Cat, uint64_t BeginUs,
                        uint64_t EndUs, uint32_t Tid) {
  if (!enabled())
    return;
  pushEvent({std::move(Name), Cat, 'X', BeginUs,
             EndUs >= BeginUs ? EndUs - BeginUs : 0,
             Tid ? Tid : currentTid()});
}

void trace::addInstant(std::string Name, const char *Cat) {
  if (!enabled())
    return;
  pushEvent({std::move(Name), Cat, 'i', nowUs(), 0, currentTid()});
}

uint64_t trace::droppedEvents() {
  TraceSink &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Dropped;
}

std::string trace::renderEvents() {
  TraceSink &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  const long Pid = static_cast<long>(::getpid());
  std::string Out;
  bool First = true;
  auto Emit = [&](const TraceEvent &E) {
    if (!First)
      Out += ",\n";
    First = false;
    renderEvent(Out, E, Pid);
  };
  // Ring order: oldest first once wrapped.
  if (S.Wrapped)
    for (size_t I = S.Next; I < S.Buf.size(); ++I)
      Emit(S.Buf[I]);
  for (size_t I = 0; I < (S.Wrapped ? S.Next : S.Buf.size()); ++I)
    Emit(S.Buf[I]);
  return Out;
}

std::string trace::renderJson() {
  return "{\"traceEvents\":[\n" + renderEvents() +
         "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool trace::writeJson(const std::string &Path) {
  return writeJsonMerged(Path, {});
}

bool trace::writeJsonMerged(const std::string &Path,
                            const std::vector<std::string> &ExtraEventBlobs) {
  std::string All = renderEvents();
  for (const std::string &Blob : ExtraEventBlobs) {
    if (Blob.empty())
      continue;
    if (!All.empty())
      All += ",\n";
    All += Blob;
  }
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << "{\"traceEvents\":[\n" << All << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return static_cast<bool>(Out);
}

std::string trace::extractEvents(const std::string &TraceFileContent) {
  size_t Key = TraceFileContent.find("\"traceEvents\"");
  if (Key == std::string::npos)
    return "";
  size_t Open = TraceFileContent.find('[', Key);
  size_t Close = TraceFileContent.rfind(']');
  if (Open == std::string::npos || Close == std::string::npos || Close <= Open)
    return "";
  std::string Inner = TraceFileContent.substr(Open + 1, Close - Open - 1);
  // All-whitespace means "no events": collapse to "" so the merge emits
  // no stray comma.
  if (Inner.find_first_not_of(" \t\r\n") == std::string::npos)
    return "";
  return Inner;
}

//===----------------------------------------------------------------------===//
// PhaseProfile
//===----------------------------------------------------------------------===//

namespace {

double cpuNowUs() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  struct timespec Ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &Ts) == 0)
    return static_cast<double>(Ts.tv_sec) * 1e6 +
           static_cast<double>(Ts.tv_nsec) / 1e3;
#endif
  return 0;
}

} // namespace

PhaseProfile::PhaseProfile() {
  Stack.push_back("other");
  MarkWallUs = static_cast<double>(trace::nowUs());
  MarkCpuUs = cpuNowUs();
}

void PhaseProfile::accrueToTop() {
  const double W = static_cast<double>(trace::nowUs());
  const double C = cpuNowUs();
  Acc &A = Phases[Stack.back()];
  A.WallUs += W - MarkWallUs;
  A.CpuUs += C - MarkCpuUs;
  A.PeakRssKb = std::max(A.PeakRssKb, RunGuard::currentRssBytes() / 1024);
  MarkWallUs = W;
  MarkCpuUs = C;
}

void PhaseProfile::push(const char *Name) {
  accrueToTop();
  Stack.push_back(Name);
}

void PhaseProfile::pop() {
  accrueToTop();
  if (Stack.size() > 1)
    Stack.pop_back();
}

double PhaseProfile::wallUsOf(const std::string &Name) {
  accrueToTop();
  auto It = Phases.find(Name);
  return It == Phases.end() ? 0 : It->second.WallUs;
}

void PhaseProfile::exportStats(Stats &S) {
  accrueToTop();
  for (const auto &[Name, A] : Phases) {
    S.add("phase." + Name + "_us",
          static_cast<uint64_t>(std::llround(std::max(0.0, A.WallUs))));
    S.add("phase." + Name + "_cpu_us",
          static_cast<uint64_t>(std::llround(std::max(0.0, A.CpuUs))));
    S.add("phase." + Name + "_rss_kb", A.PeakRssKb);
  }
}
