//===- support/RunGuard.cpp ------------------------------------*- C++ -*-===//

#include "support/RunGuard.h"

#include "support/Trace.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#if defined(__linux__)
#include <cstdio>
#include <unistd.h>
#endif

using namespace taj;

const char *taj::phaseName(RunPhase P) {
  switch (P) {
  case RunPhase::Frontend:
    return "frontend";
  case RunPhase::PointerAnalysis:
    return "pointer-analysis";
  case RunPhase::SdgBuild:
    return "sdg-build";
  case RunPhase::Slicing:
    return "slicing";
  case RunPhase::Reporting:
    return "reporting";
  }
  return "unknown";
}

const char *taj::cutoffReasonName(CutoffReason R) {
  switch (R) {
  case CutoffReason::None:
    return "none";
  case CutoffReason::Deadline:
    return "deadline";
  case CutoffReason::Memory:
    return "memory";
  case CutoffReason::NodeBudget:
    return "node-budget";
  case CutoffReason::Cancelled:
    return "cancelled";
  case CutoffReason::FaultInjected:
    return "fault-injected";
  case CutoffReason::InternalError:
    return "internal-error";
  }
  return "unknown";
}

const char *taj::phaseOutcomeName(PhaseOutcome O) {
  switch (O) {
  case PhaseOutcome::Completed:
    return "completed";
  case PhaseOutcome::Truncated:
    return "truncated";
  case PhaseOutcome::Skipped:
    return "skipped";
  }
  return "unknown";
}

std::string RunStatus::toString() const {
  std::string Out;
  for (const PhaseReport &PR : Phases) {
    if (!Out.empty())
      Out += "; ";
    Out += phaseName(PR.Phase);
    Out += ": ";
    Out += phaseOutcomeName(PR.Outcome);
    if (PR.Outcome != PhaseOutcome::Completed &&
        PR.Reason != CutoffReason::None) {
      Out += " (";
      Out += cutoffReasonName(PR.Reason);
      Out += ')';
    }
    if (PR.Outcome == PhaseOutcome::Truncated) {
      Out += " after ";
      Out += std::to_string(PR.WorkDone);
      Out += " units";
    }
  }
  return Out;
}

void taj::traceGuardStop(CutoffReason R, RunPhase P) {
  trace::addInstant(std::string("guard-stop: ") + cutoffReasonName(R) +
                        " in " + phaseName(P),
                    "guard");
}

const DegradationPreset &taj::degradationForAttempt(unsigned Attempt) {
  (void)Attempt; // one rung today
  static const DegradationPreset Rung;
  return Rung;
}

RunGuard::Limits RunGuard::limitsFromEnv(Limits Base) {
  // The environment only fills limits the caller left unset, so explicit
  // configuration (e.g. CLI flags) always wins over TAJ_* variables.
  const char *E;
  if (Base.DeadlineMs <= 0 && (E = std::getenv("TAJ_DEADLINE_MS")))
    Base.DeadlineMs = std::atof(E);
  if (Base.MaxMemoryBytes == 0 && (E = std::getenv("TAJ_MAX_MEMORY_MB")))
    Base.MaxMemoryBytes =
        static_cast<uint64_t>(std::atoll(E)) * 1024 * 1024;
  if (Base.FailAtCheckpoint == 0 && (E = std::getenv("TAJ_FAIL_AT")))
    Base.FailAtCheckpoint = static_cast<uint64_t>(std::atoll(E));
  if (Base.CrashAtCheckpoint == 0 && (E = std::getenv("TAJ_CRASH_AT")))
    Base.CrashAtCheckpoint = static_cast<uint64_t>(std::atoll(E));
  if (Base.CrashSignal == 0 && (E = std::getenv("TAJ_CRASH_SIGNAL")))
    Base.CrashSignal = std::atoi(E);
  if (Base.HangAtCheckpoint == 0 && (E = std::getenv("TAJ_HANG_AT")))
    Base.HangAtCheckpoint = static_cast<uint64_t>(std::atoll(E));
  return Base;
}

void RunGuard::crashNow() const {
  if (Lim.CrashSignal != 0) {
    ::raise(Lim.CrashSignal);
    // A caught/ignored signal must still kill the process: the whole
    // point of the injection is an abnormal death.
  }
  std::abort();
}

void RunGuard::hangForever() {
  for (;;)
    std::this_thread::sleep_for(std::chrono::seconds(1));
}

void RunGuard::exportStats(Stats &S) const {
  S.add("guard.checkpoints", checkpointCount());
  if (stopped()) {
    S.add(std::string("guard.cutoff.") + cutoffReasonName(Reason));
    S.add(std::string("guard.cutoff_phase.") + phaseName(CutPhase));
  }
}

uint64_t RunGuard::currentRssBytes() {
#if defined(__linux__)
  // /proc/self/statm field 2 is the resident set in pages.
  FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long Size = 0, Resident = 0;
  int Got = std::fscanf(F, "%llu %llu", &Size, &Resident);
  std::fclose(F);
  if (Got != 2)
    return 0;
  long Page = sysconf(_SC_PAGESIZE);
  return Resident * static_cast<uint64_t>(Page > 0 ? Page : 4096);
#else
  return 0;
#endif
}
