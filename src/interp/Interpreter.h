//===- interp/Interpreter.h - Concrete TIR interpreter ---------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete interpreter for TIR with dynamic taint tracking. It serves as
/// the test oracle for the static analyses: every dynamically observed
/// source-to-sink flow must be reported by the sound static configurations
/// (hybrid and CI thin slicing), and every dynamically observed points-to
/// fact must be contained in the static points-to solution.
///
/// Threads (Thread.start) are executed synchronously, which is one valid
/// interleaving. Exceptions are modeled loosely: `throw` unwinds the
/// current method, `caught` materializes a fresh exception object.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_INTERP_INTERPRETER_H
#define TAJ_INTERP_INTERPRETER_H

#include "cha/ClassHierarchy.h"
#include "ir/Program.h"

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace taj {

/// A dynamically observed tainted flow.
struct DynamicFlow {
  StmtId Source = 0;
  StmtId Sink = 0;
  RuleMask Rule = rules::None;
  bool operator<(const DynamicFlow &O) const {
    return std::tie(Source, Sink, Rule) < std::tie(O.Source, O.Sink, O.Rule);
  }
};

/// Interpreter configuration.
struct InterpOptions {
  uint64_t MaxSteps = 1u << 20;
  uint32_t MaxCallDepth = 200;
  /// JNDI name -> bean class (mirrors PointsToOptions::JndiBindings).
  std::unordered_map<std::string, ClassId> JndiBindings;
  std::unordered_map<ClassId, ClassId> EjbHomeToBean;
};

/// Runs TIR programs concretely.
class Interpreter {
public:
  Interpreter(const Program &P, const ClassHierarchy &CHA,
              InterpOptions Opts = {});

  /// Executes the given entry methods in order (each with freshly created
  /// argument objects). Returns false if the step budget was exhausted.
  bool run(const std::vector<MethodId> &Entries);

  /// All observed source-to-sink flows.
  const std::set<DynamicFlow> &flows() const { return Flows; }

  /// Dynamic points-to observations: (method, value) -> allocation sites.
  const std::map<std::pair<MethodId, ValueId>, std::set<StmtId>> &
  observedPointsTo() const {
    return PtsObs;
  }

  /// Dynamic call edges: call statement -> callee methods.
  const std::map<StmtId, std::set<MethodId>> &observedCallees() const {
    return CallObs;
  }

private:
  struct Obj;

  /// One taint origin carried by a runtime value.
  struct Origin {
    StmtId Source;
    RuleMask Rules;
  };

  /// A runtime value: an integer or a reference (index into Heap; -1 null),
  /// plus taint origins.
  struct Value {
    int64_t Int = 0;
    int32_t Ref = -1;
    bool IsRef = false;
    std::vector<Origin> Taint;
  };

  struct Obj {
    ClassId Cls = InvalidId;
    StmtId AllocSite = 0;
    bool IsArray = false;
    uint32_t Extra = 0; ///< ClassId/MethodId for reflective objects.
    enum Kind : uint8_t { Plain, ClassObj, MethodObj } K = Plain;
    std::string StrContent; ///< contents for string objects (map keys)
    std::map<FieldId, Value> Fields;
    std::vector<Value> ArrayElems;
    std::map<std::string, Value> MapData;
    std::vector<Value> CollData;
  };

  Value callMethod(MethodId M, std::vector<Value> Args, StmtId CallSite);
  Value applyIntrinsic(const Method &CalM, const std::vector<Value> &Args,
                       StmtId Site);
  void recordSink(const Method &CalM, const std::vector<Value> &Args,
                  StmtId Site);
  void collectNestedOrigins(const Value &V, std::vector<Origin> &Out,
                            int Depth, std::set<int32_t> &Seen);
  int32_t newObj(ClassId Cls, StmtId Site, bool IsArray = false);
  static void mergeTaint(Value &Dst, const Value &Src);
  std::string stringOf(const Value &V) const;

  const Program &P;
  const ClassHierarchy &CHA;
  InterpOptions Opts;

  std::vector<Obj> Heap;
  std::map<FieldId, Value> Statics;
  std::set<DynamicFlow> Flows;
  std::map<std::pair<MethodId, ValueId>, std::set<StmtId>> PtsObs;
  std::map<StmtId, std::set<MethodId>> CallObs;
  uint64_t Steps = 0;
  uint32_t Depth = 0;
  bool OutOfBudget = false;
};

} // namespace taj

#endif // TAJ_INTERP_INTERPRETER_H
