//===- interp/Interpreter.cpp ----------------------------------*- C++ -*-===//

#include "interp/Interpreter.h"

#include <algorithm>
#include <cassert>

using namespace taj;

Interpreter::Interpreter(const Program &P, const ClassHierarchy &CHA,
                         InterpOptions Opts)
    : P(P), CHA(CHA), Opts(std::move(Opts)) {}

int32_t Interpreter::newObj(ClassId Cls, StmtId Site, bool IsArray) {
  Obj O;
  O.Cls = Cls;
  O.AllocSite = Site;
  O.IsArray = IsArray;
  Heap.push_back(std::move(O));
  return static_cast<int32_t>(Heap.size() - 1);
}

void Interpreter::mergeTaint(Value &Dst, const Value &Src) {
  for (const Origin &O : Src.Taint) {
    bool Found = false;
    for (Origin &D : Dst.Taint)
      if (D.Source == O.Source) {
        D.Rules |= O.Rules;
        Found = true;
      }
    if (!Found)
      Dst.Taint.push_back(O);
  }
}

std::string Interpreter::stringOf(const Value &V) const {
  if (!V.IsRef || V.Ref < 0)
    return "";
  return Heap[V.Ref].StrContent;
}

bool Interpreter::run(const std::vector<MethodId> &Entries) {
  for (MethodId E : Entries) {
    const Method &M = P.Methods[E];
    std::vector<Value> Args;
    for (uint32_t K = 0; K < M.NumParams; ++K) {
      Value V;
      if (M.ParamTypes[K].isRefLike()) {
        V.IsRef = true;
        V.Ref = newObj(M.ParamTypes[K].Cls, 0,
                       M.ParamTypes[K].Kind == TypeKind::Array);
      }
      Args.push_back(std::move(V));
    }
    callMethod(E, std::move(Args), 0);
    if (OutOfBudget)
      return false;
  }
  return !OutOfBudget;
}

Interpreter::Value Interpreter::callMethod(MethodId MId,
                                           std::vector<Value> Args,
                                           StmtId CallSite) {
  const Method &M = P.Methods[MId];
  if (CallSite != 0)
    CallObs[CallSite].insert(MId);
  if (M.Intr != Intrinsic::None || !M.hasBody())
    return applyIntrinsic(M, Args, CallSite);
  if (++Depth > Opts.MaxCallDepth) {
    --Depth;
    OutOfBudget = true;
    return {};
  }

  std::vector<Value> Locals(M.NumValues);
  for (uint32_t K = 0; K < M.NumParams && K < Args.size(); ++K)
    Locals[K] = Args[K];

  auto Observe = [&](ValueId V) {
    const Value &Val = Locals[V];
    if (Val.IsRef && Val.Ref >= 0)
      PtsObs[{MId, V}].insert(Heap[Val.Ref].AllocSite);
  };
  for (uint32_t K = 0; K < M.NumParams && K < Args.size(); ++K)
    Observe(static_cast<ValueId>(K));

  Value RetVal;
  int32_t Block = 0, PrevBlock = -1;
  StmtId BlockBase = P.methodStmtBegin(MId);
  // Precompute per-block statement bases.
  std::vector<StmtId> Bases(M.Blocks.size());
  {
    StmtId S = BlockBase;
    for (size_t B = 0; B < M.Blocks.size(); ++B) {
      Bases[B] = S;
      S += static_cast<StmtId>(M.Blocks[B].Insts.size());
    }
  }

  bool Running = true;
  while (Running) {
    const BasicBlock &BB = M.Blocks[Block];
    // Evaluate phis as a parallel copy based on the incoming edge.
    {
      std::vector<std::pair<ValueId, Value>> PhiVals;
      for (const Instruction &I : BB.Insts) {
        if (I.Op != Opcode::Phi)
          break;
        size_t PredIdx = 0;
        while (PredIdx < BB.Preds.size() && BB.Preds[PredIdx] != PrevBlock)
          ++PredIdx;
        Value V;
        if (PredIdx < I.Args.size() && I.Args[PredIdx] != NoValue)
          V = Locals[I.Args[PredIdx]];
        PhiVals.emplace_back(I.Dst, std::move(V));
      }
      for (auto &[D, V] : PhiVals) {
        Locals[D] = std::move(V);
        Observe(D);
      }
    }

    bool Jumped = false;
    for (size_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      if (I.Op == Opcode::Phi)
        continue;
      if (++Steps > Opts.MaxSteps) {
        OutOfBudget = true;
        --Depth;
        return RetVal;
      }
      StmtId Site = Bases[Block] + static_cast<StmtId>(Idx);
      switch (I.Op) {
      case Opcode::ConstStr: {
        Value V;
        V.IsRef = true;
        V.Ref = newObj(P.findClass("String"), Site);
        Heap[V.Ref].StrContent = P.Pool.str(I.StrLit);
        Locals[I.Dst] = std::move(V);
        Observe(I.Dst);
        break;
      }
      case Opcode::ConstInt: {
        Value V;
        V.Int = I.IntLit;
        Locals[I.Dst] = std::move(V);
        break;
      }
      case Opcode::New:
      case Opcode::NewArray: {
        Value V;
        V.IsRef = true;
        V.Ref = newObj(I.Cls, Site, I.Op == Opcode::NewArray);
        Locals[I.Dst] = std::move(V);
        Observe(I.Dst);
        break;
      }
      case Opcode::Copy:
        Locals[I.Dst] = Locals[I.Args[0]];
        Observe(I.Dst);
        break;
      case Opcode::Load: {
        const Value &Base = Locals[I.Args[0]];
        Value V;
        if (Base.IsRef && Base.Ref >= 0) {
          auto It = Heap[Base.Ref].Fields.find(I.Field);
          if (It != Heap[Base.Ref].Fields.end())
            V = It->second;
        }
        Locals[I.Dst] = std::move(V);
        Observe(I.Dst);
        break;
      }
      case Opcode::Store: {
        const Value &Base = Locals[I.Args[0]];
        if (Base.IsRef && Base.Ref >= 0)
          Heap[Base.Ref].Fields[I.Field] = Locals[I.Args[1]];
        break;
      }
      case Opcode::ArrayLoad: {
        const Value &Base = Locals[I.Args[0]];
        Value V;
        if (Base.IsRef && Base.Ref >= 0 &&
            !Heap[Base.Ref].ArrayElems.empty())
          V = Heap[Base.Ref].ArrayElems.back();
        Locals[I.Dst] = std::move(V);
        Observe(I.Dst);
        break;
      }
      case Opcode::ArrayStore: {
        const Value &Base = Locals[I.Args[0]];
        if (Base.IsRef && Base.Ref >= 0)
          Heap[Base.Ref].ArrayElems.push_back(Locals[I.Args[1]]);
        break;
      }
      case Opcode::StaticLoad: {
        auto It = Statics.find(I.Field);
        Locals[I.Dst] = It == Statics.end() ? Value{} : It->second;
        Observe(I.Dst);
        break;
      }
      case Opcode::StaticStore:
        Statics[I.Field] = Locals[I.Args[0]];
        break;
      case Opcode::Binop: {
        const Value &A = Locals[I.Args[0]];
        const Value &B = Locals[I.Args[1]];
        Value V;
        switch (static_cast<BinopKind>(I.IntLit)) {
        case BinopKind::Add:
          V.Int = A.Int + B.Int;
          break;
        case BinopKind::Sub:
          V.Int = A.Int - B.Int;
          break;
        case BinopKind::Mul:
          V.Int = A.Int * B.Int;
          break;
        case BinopKind::Eq:
          V.Int = A.IsRef == B.IsRef &&
                  (A.IsRef ? A.Ref == B.Ref : A.Int == B.Int);
          break;
        case BinopKind::Lt:
          V.Int = A.Int < B.Int;
          break;
        }
        mergeTaint(V, A);
        mergeTaint(V, B);
        Locals[I.Dst] = std::move(V);
        break;
      }
      case Opcode::Caught: {
        Value V;
        V.IsRef = true;
        ClassId Exc = P.findClass("Exception");
        V.Ref = newObj(Exc == InvalidId ? 0 : Exc, Site);
        Locals[I.Dst] = std::move(V);
        Observe(I.Dst);
        break;
      }
      case Opcode::Throw:
        // Loose model: unwind the current method.
        --Depth;
        return RetVal;
      case Opcode::Call: {
        // Resolve the target.
        MethodId Target = InvalidId;
        std::vector<Value> CallArgs;
        for (ValueId A : I.Args)
          CallArgs.push_back(Locals[A]);
        if (I.CKind == CallKind::Static) {
          Target = CHA.resolveVirtual(I.Cls, I.CalleeName);
        } else if (I.CKind == CallKind::Special) {
          Target = CHA.resolveVirtual(I.Cls, I.CalleeName);
        } else {
          const Value &Recv = CallArgs.empty() ? Value{} : CallArgs[0];
          if (Recv.IsRef && Recv.Ref >= 0)
            Target = CHA.resolveVirtual(Heap[Recv.Ref].Cls, I.CalleeName);
        }
        Value R;
        if (Target != InvalidId)
          R = callMethod(Target, std::move(CallArgs), Site);
        if (OutOfBudget) {
          --Depth;
          return RetVal;
        }
        if (I.Dst != NoValue) {
          Locals[I.Dst] = std::move(R);
          Observe(I.Dst);
        }
        break;
      }
      case Opcode::Return:
        if (!I.Args.empty())
          RetVal = Locals[I.Args[0]];
        Running = false;
        Jumped = true;
        break;
      case Opcode::Goto:
        PrevBlock = Block;
        Block = I.Target;
        Jumped = true;
        break;
      case Opcode::If: {
        PrevBlock = Block;
        Block = Locals[I.Args[0]].Int != 0 ? I.Target : I.Target2;
        Jumped = true;
        break;
      }
      case Opcode::Phi:
        break;
      }
      if (Jumped)
        break;
    }
    if (!Jumped)
      Running = false; // fell off a block without a terminator (verifier
                       // prevents this; be safe)
  }
  --Depth;
  return RetVal;
}

void Interpreter::collectNestedOrigins(const Value &V,
                                       std::vector<Origin> &Out, int Depth,
                                       std::set<int32_t> &Seen) {
  for (const Origin &O : V.Taint)
    Out.push_back(O);
  if (Depth <= 0 || !V.IsRef || V.Ref < 0 || !Seen.insert(V.Ref).second)
    return;
  const Obj &O = Heap[V.Ref];
  for (const auto &[F, FV] : O.Fields)
    collectNestedOrigins(FV, Out, Depth - 1, Seen);
  for (const Value &EV : O.ArrayElems)
    collectNestedOrigins(EV, Out, Depth - 1, Seen);
  for (const auto &[K, MV] : O.MapData)
    collectNestedOrigins(MV, Out, Depth - 1, Seen);
  for (const Value &CV : O.CollData)
    collectNestedOrigins(CV, Out, Depth - 1, Seen);
}

void Interpreter::recordSink(const Method &CalM,
                             const std::vector<Value> &Args, StmtId Site) {
  for (uint32_t K = 0; K < Args.size(); ++K) {
    if (!(CalM.SinkParamMask & (1u << K)))
      continue;
    std::vector<Origin> Origins;
    std::set<int32_t> Seen;
    // Nested taint: data reachable from the argument counts (§4.1.1);
    // generous depth — the static analysis bounds it, the oracle not.
    collectNestedOrigins(Args[K], Origins, 16, Seen);
    for (const Origin &O : Origins) {
      RuleMask Hit = O.Rules & CalM.SinkRules;
      for (int R = 0; R < rules::NumRules; ++R) {
        RuleMask Bit = static_cast<RuleMask>(1u << R);
        if (Hit & Bit)
          Flows.insert({O.Source, Site, Bit});
      }
    }
  }
}

Interpreter::Value Interpreter::applyIntrinsic(const Method &CalM,
                                               const std::vector<Value> &Args,
                                               StmtId Site) {
  size_t Off = CalM.IsStatic ? 0 : 1;
  auto FreshString = [&](StmtId S) {
    Value V;
    V.IsRef = true;
    ClassId Str = P.findClass("String");
    V.Ref = newObj(Str == InvalidId ? 0 : Str, S);
    return V;
  };
  switch (CalM.Intr) {
  case Intrinsic::None: {
    // Default native model: fresh untainted object of the return type.
    Value V;
    if (CalM.RetType.isRefLike()) {
      V.IsRef = true;
      V.Ref = newObj(CalM.RetType.Cls, Site,
                     CalM.RetType.Kind == TypeKind::Array);
    }
    return V;
  }
  case Intrinsic::Identity: {
    for (const Value &A : Args)
      if (A.IsRef)
        return A;
    return Args.empty() ? Value{} : Args[0];
  }
  case Intrinsic::StringTransfer: {
    Value V = FreshString(Site);
    for (const Value &A : Args)
      mergeTaint(V, A);
    return V;
  }
  case Intrinsic::Sanitize: {
    Value V = FreshString(Site);
    if (Args.size() > Off) {
      mergeTaint(V, Args[Off]);
      for (Origin &O : V.Taint)
        O.Rules &= static_cast<RuleMask>(~CalM.SanitizerRules);
      V.Taint.erase(std::remove_if(V.Taint.begin(), V.Taint.end(),
                                   [](const Origin &O) {
                                     return O.Rules == rules::None;
                                   }),
                    V.Taint.end());
    }
    return V;
  }
  case Intrinsic::SourceReturn: {
    Value V = FreshString(Site);
    if (CalM.RetType.isRefLike() && CalM.RetType.Cls != InvalidId)
      Heap[V.Ref].Cls = CalM.RetType.Cls;
    Heap[V.Ref].StrContent = "<tainted>";
    V.Taint.push_back({Site, CalM.SourceRules});
    return V;
  }
  case Intrinsic::GetMessage: {
    Value V = FreshString(Site);
    V.Taint.push_back({Site, CalM.SourceRules ? CalM.SourceRules
                                              : rules::LEAK});
    return V;
  }
  case Intrinsic::SinkConsume:
    recordSink(CalM, Args, Site);
    return {};
  case Intrinsic::MapPut: {
    if (Args.size() > Off + 1 && Args[0].IsRef && Args[0].Ref >= 0)
      Heap[Args[0].Ref].MapData[stringOf(Args[Off])] = Args[Off + 1];
    return {};
  }
  case Intrinsic::MapGet: {
    if (Args.size() > Off && Args[0].IsRef && Args[0].Ref >= 0) {
      auto &MD = Heap[Args[0].Ref].MapData;
      auto It = MD.find(stringOf(Args[Off]));
      if (It != MD.end())
        return It->second;
    }
    return {};
  }
  case Intrinsic::CollAdd: {
    if (Args.size() > Off && Args[0].IsRef && Args[0].Ref >= 0)
      Heap[Args[0].Ref].CollData.push_back(Args[Off]);
    return {};
  }
  case Intrinsic::CollGet: {
    if (!Args.empty() && Args[0].IsRef && Args[0].Ref >= 0 &&
        !Heap[Args[0].Ref].CollData.empty())
      return Heap[Args[0].Ref].CollData.back();
    return {};
  }
  case Intrinsic::ClassForName: {
    Value V;
    if (Args.size() > Off) {
      ClassId C = P.findClass(stringOf(Args[Off]));
      if (C != InvalidId) {
        V.IsRef = true;
        V.Ref = newObj(CalM.RetType.isRefLike() ? CalM.RetType.Cls : 0, Site);
        Heap[V.Ref].K = Obj::ClassObj;
        Heap[V.Ref].Extra = C;
      }
    }
    return V;
  }
  case Intrinsic::GetMethod: {
    Value V;
    if (Args.size() > Off && Args[0].IsRef && Args[0].Ref >= 0 &&
        Heap[Args[0].Ref].K == Obj::ClassObj) {
      Symbol Name = P.Pool.lookup(stringOf(Args[Off]));
      if (Name != ~0u) {
        MethodId M = CHA.resolveVirtual(Heap[Args[0].Ref].Extra, Name);
        if (M != InvalidId) {
          V.IsRef = true;
          V.Ref =
              newObj(CalM.RetType.isRefLike() ? CalM.RetType.Cls : 0, Site);
          Heap[V.Ref].K = Obj::MethodObj;
          Heap[V.Ref].Extra = M;
        }
      }
    }
    return V;
  }
  case Intrinsic::MethodInvoke: {
    // invoke(methodObj, recv, argsArray)
    if (Args.empty() || !Args[0].IsRef || Args[0].Ref < 0 ||
        Heap[Args[0].Ref].K != Obj::MethodObj)
      return {};
    MethodId Target = Heap[Args[0].Ref].Extra;
    const Method &TM = P.Methods[Target];
    std::vector<Value> CallArgs;
    if (!TM.IsStatic && Args.size() > 1)
      CallArgs.push_back(Args[1]);
    if (Args.size() > 2 && Args[2].IsRef && Args[2].Ref >= 0)
      for (const Value &E : Heap[Args[2].Ref].ArrayElems)
        CallArgs.push_back(E);
    CallArgs.resize(TM.NumParams);
    return callMethod(Target, std::move(CallArgs), Site);
  }
  case Intrinsic::ThreadStart: {
    // Synchronous schedule: run() executes now.
    if (!Args.empty() && Args[0].IsRef && Args[0].Ref >= 0) {
      Symbol Run = P.Pool.lookup("run");
      if (Run != ~0u) {
        MethodId M = CHA.resolveVirtual(Heap[Args[0].Ref].Cls, Run);
        if (M != InvalidId)
          callMethod(M, {Args[0]}, Site);
      }
    }
    return {};
  }
  case Intrinsic::JndiLookup: {
    Value V;
    if (Args.size() > Off) {
      auto It = Opts.JndiBindings.find(stringOf(Args[Off]));
      if (It != Opts.JndiBindings.end()) {
        V.IsRef = true;
        V.Ref = newObj(It->second, Site);
      }
    }
    return V;
  }
  case Intrinsic::HomeCreate: {
    Value V;
    ClassId Bean =
        CalM.RetType.isRefLike() ? CalM.RetType.Cls : InvalidId;
    if (!Args.empty() && Args[0].IsRef && Args[0].Ref >= 0) {
      auto It = Opts.EjbHomeToBean.find(Heap[Args[0].Ref].Cls);
      if (It != Opts.EjbHomeToBean.end())
        Bean = It->second;
    }
    if (Bean != InvalidId) {
      V.IsRef = true;
      V.Ref = newObj(Bean, Site);
    }
    return V;
  }
  }
  return {};
}
