//===- frontend/Parser.h - Parser for the .taj language --------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the textual TIR surface syntax. Parsed
/// classes are added to an existing Program (normally one pre-populated
/// with the built-in model library) and method bodies are converted to SSA.
///
/// Surface syntax sketch:
/// \code
///   class Motivating extends Servlet {
///     field s: String;
///     method doGet(this: Motivating, req: Request, resp: Response): void
///         [entry] {
///       t1 = req.getParameter("fName");
///       w = resp.getWriter();
///       w.println(t1);
///     }
///   }
/// \endcode
///
/// Attributes in brackets annotate classes (library, collection, map,
/// stringcarrier, whitelisted, thread, actionform) and methods (entry,
/// factory, source(rule...), sanitizer(rule...), sink(rule..., paramIdx...),
/// intrinsic(name)); rules are xss, sqli, file, leak, all.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_FRONTEND_PARSER_H
#define TAJ_FRONTEND_PARSER_H

#include "ir/Program.h"

#include <string>
#include <string_view>
#include <vector>

namespace taj {

/// Parses .taj source text into a Program.
class Parser {
public:
  /// Prepares to parse \p Source into \p P.
  Parser(Program &P, std::string_view Source);

  /// Runs the parse. Returns true on success (no errors).
  bool parse();

  /// Diagnostics accumulated during lexing/parsing ("line:col: message").
  const std::vector<std::string> &errors() const { return Errors; }

private:
  struct Impl;
  Program &P;
  std::string Source;
  std::vector<std::string> Errors;
};

/// Convenience: parses \p Source into \p P; returns false and fills
/// \p ErrorsOut on failure.
bool parseTaj(Program &P, std::string_view Source,
              std::vector<std::string> *ErrorsOut = nullptr);

} // namespace taj

#endif // TAJ_FRONTEND_PARSER_H
