//===- frontend/Lexer.cpp --------------------------------------*- C++ -*-===//

#include "frontend/Lexer.h"

#include <cctype>

using namespace taj;

Lexer::Lexer(std::string_view Src, std::vector<std::string> &Errors) {
  size_t I = 0, N = Src.size();
  uint32_t Line = 1, Col = 1;
  auto Error = [&](const std::string &Msg) {
    Errors.push_back(std::to_string(Line) + ":" + std::to_string(Col) + ": " +
                     Msg);
  };
  auto Advance = [&]() {
    if (Src[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++I;
  };
  auto Push = [&](TokKind K, std::string Text = "", int64_t V = 0) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.IntVal = V;
    T.Line = Line;
    T.Col = Col;
    Toks.push_back(std::move(T));
  };

  while (I < N) {
    char C = Src[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    if (C == '/' && I + 1 < N && Src[I + 1] == '/') {
      while (I < N && Src[I] != '\n')
        Advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$') {
      uint32_t StartLine = Line, StartCol = Col;
      std::string Text;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Src[I])) ||
                       Src[I] == '_' || Src[I] == '$')) {
        Text += Src[I];
        Advance();
      }
      Token T;
      T.Kind = TokKind::Ident;
      T.Text = std::move(Text);
      T.Line = StartLine;
      T.Col = StartCol;
      Toks.push_back(std::move(T));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Src[I + 1])))) {
      uint32_t StartLine = Line, StartCol = Col;
      bool Neg = C == '-';
      if (Neg)
        Advance();
      int64_t V = 0;
      while (I < N && std::isdigit(static_cast<unsigned char>(Src[I]))) {
        V = V * 10 + (Src[I] - '0');
        Advance();
      }
      Token T;
      T.Kind = TokKind::Int;
      T.IntVal = Neg ? -V : V;
      T.Line = StartLine;
      T.Col = StartCol;
      Toks.push_back(std::move(T));
      continue;
    }
    if (C == '"') {
      uint32_t StartLine = Line, StartCol = Col;
      Advance();
      std::string Text;
      bool Closed = false;
      while (I < N) {
        char D = Src[I];
        if (D == '"') {
          Advance();
          Closed = true;
          break;
        }
        if (D == '\\' && I + 1 < N) {
          Advance();
          Text += Src[I];
          Advance();
          continue;
        }
        Text += D;
        Advance();
      }
      if (!Closed)
        Error("unterminated string literal");
      Token T;
      T.Kind = TokKind::String;
      T.Text = std::move(Text);
      T.Line = StartLine;
      T.Col = StartCol;
      Toks.push_back(std::move(T));
      continue;
    }
    switch (C) {
    case '{':
      Push(TokKind::LBrace);
      break;
    case '}':
      Push(TokKind::RBrace);
      break;
    case '(':
      Push(TokKind::LParen);
      break;
    case ')':
      Push(TokKind::RParen);
      break;
    case '[':
      Push(TokKind::LBracket);
      break;
    case ']':
      Push(TokKind::RBracket);
      break;
    case ',':
      Push(TokKind::Comma);
      break;
    case ';':
      Push(TokKind::Semi);
      break;
    case ':':
      Push(TokKind::Colon);
      break;
    case '.':
      Push(TokKind::Dot);
      break;
    case '+':
      Push(TokKind::Plus);
      break;
    case '-':
      Push(TokKind::Minus);
      break;
    case '*':
      Push(TokKind::Star);
      break;
    case '<':
      Push(TokKind::Less);
      break;
    case '=':
      if (I + 1 < N && Src[I + 1] == '=') {
        Push(TokKind::EqEq);
        Advance();
      } else {
        Push(TokKind::Assign);
      }
      break;
    default:
      Error(std::string("unexpected character '") + C + "'");
      break;
    }
    Advance();
  }
  Push(TokKind::Eof);
}
