//===- frontend/Parser.cpp -------------------------------------*- C++ -*-===//

#include "frontend/Parser.h"
#include "frontend/Lexer.h"
#include "ir/Builder.h"
#include "ssa/SSABuilder.h"

#include <cassert>
#include <unordered_map>

using namespace taj;

namespace {

/// The actual recursive-descent parser over a token stream.
class ParserImpl {
public:
  ParserImpl(Program &P, const std::vector<Token> &Toks,
             std::vector<std::string> &Errors)
      : P(P), B(P), Toks(Toks), Errors(Errors) {}

  bool run() {
    registerClasses();
    while (!at(TokKind::Eof) && !TooManyErrors)
      parseClass();
    return Errors.empty();
  }

private:
  Program &P;
  Builder B;
  const std::vector<Token> &Toks;
  std::vector<std::string> &Errors;
  size_t Pos = 0;
  bool TooManyErrors = false;

  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t N = 1) const {
    size_t I = Pos + N;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind K) const { return cur().is(K); }
  bool atIdent(std::string_view S) const { return cur().isIdent(S); }
  const Token &take() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }

  void error(const std::string &Msg) {
    Errors.push_back(std::to_string(cur().Line) + ":" +
                     std::to_string(cur().Col) + ": " + Msg);
    if (Errors.size() > 50)
      TooManyErrors = true;
  }

  bool expect(TokKind K, const char *What) {
    if (at(K)) {
      take();
      return true;
    }
    error(std::string("expected ") + What);
    return false;
  }

  std::string expectIdent(const char *What) {
    if (at(TokKind::Ident))
      return take().Text;
    error(std::string("expected ") + What);
    return "";
  }

  /// Skips tokens until one of the synchronization points.
  void sync(TokKind K) {
    while (!at(TokKind::Eof) && !at(K))
      take();
    if (at(K))
      take();
  }

  //===--------------------------------------------------------------------===//
  // Pass 1: class pre-registration (forward references)
  //===--------------------------------------------------------------------===//

  void registerClasses() {
    for (size_t I = 0; I + 1 < Toks.size(); ++I) {
      if (!Toks[I].isIdent("class") || !Toks[I + 1].is(TokKind::Ident))
        continue;
      // Only top-level "class" (heuristic: previous token is RBrace, start,
      // or Semi). Nested braces never contain the keyword in this grammar.
      const std::string &Name = Toks[I + 1].Text;
      if (P.findClass(Name) == InvalidId)
        B.makeClass(Name, InvalidId);
    }
  }

  //===--------------------------------------------------------------------===//
  // Types, attributes
  //===--------------------------------------------------------------------===//

  Type parseType() {
    std::string Name = expectIdent("type name");
    if (Name.empty())
      return Type::voidTy();
    if (Name == "void")
      return Type::voidTy();
    if (Name == "int")
      return Type::intTy();
    ClassId C = P.findClass(Name);
    if (C == InvalidId) {
      error("unknown type '" + Name + "'");
      return Type::voidTy();
    }
    if (at(TokKind::LBracket) && peek().is(TokKind::RBracket)) {
      take();
      take();
      return Type::array(C);
    }
    return Type::ref(C);
  }

  static RuleMask ruleByName(const std::string &S) {
    if (S == "xss")
      return rules::XSS;
    if (S == "sqli")
      return rules::SQLI;
    if (S == "file")
      return rules::FILE;
    if (S == "leak")
      return rules::LEAK;
    if (S == "all")
      return rules::All;
    return rules::None;
  }

  struct Attr {
    std::string Name;
    std::vector<std::string> IdentArgs;
    std::vector<int64_t> IntArgs;
  };

  std::vector<Attr> parseAttrs() {
    std::vector<Attr> Out;
    if (!at(TokKind::LBracket))
      return Out;
    take();
    while (!at(TokKind::RBracket) && !at(TokKind::Eof) && !TooManyErrors) {
      size_t Before = Pos;
      Attr A;
      A.Name = expectIdent("attribute name");
      if (at(TokKind::LParen)) {
        take();
        while (!at(TokKind::RParen) && !at(TokKind::Eof)) {
          if (at(TokKind::Ident))
            A.IdentArgs.push_back(take().Text);
          else if (at(TokKind::Int))
            A.IntArgs.push_back(take().IntVal);
          else {
            error("expected attribute argument");
            break;
          }
          if (at(TokKind::Comma))
            take();
        }
        expect(TokKind::RParen, "')'");
      }
      Out.push_back(std::move(A));
      if (at(TokKind::Comma))
        take();
      if (Pos == Before) // malformed attribute: force progress
        take();
    }
    expect(TokKind::RBracket, "']'");
    return Out;
  }

  static Intrinsic intrinsicByName(const std::string &S) {
    if (S == "identity")
      return Intrinsic::Identity;
    if (S == "stringtransfer")
      return Intrinsic::StringTransfer;
    if (S == "sanitize")
      return Intrinsic::Sanitize;
    if (S == "sourcereturn")
      return Intrinsic::SourceReturn;
    if (S == "sinkconsume")
      return Intrinsic::SinkConsume;
    if (S == "mapput")
      return Intrinsic::MapPut;
    if (S == "mapget")
      return Intrinsic::MapGet;
    if (S == "colladd")
      return Intrinsic::CollAdd;
    if (S == "collget")
      return Intrinsic::CollGet;
    if (S == "classforname")
      return Intrinsic::ClassForName;
    if (S == "getmethod")
      return Intrinsic::GetMethod;
    if (S == "methodinvoke")
      return Intrinsic::MethodInvoke;
    if (S == "threadstart")
      return Intrinsic::ThreadStart;
    if (S == "jndilookup")
      return Intrinsic::JndiLookup;
    if (S == "homecreate")
      return Intrinsic::HomeCreate;
    if (S == "getmessage")
      return Intrinsic::GetMessage;
    return Intrinsic::None;
  }

  //===--------------------------------------------------------------------===//
  // Classes and members
  //===--------------------------------------------------------------------===//

  void parseClass() {
    if (!atIdent("class")) {
      error("expected 'class'");
      take();
      return;
    }
    take();
    std::string Name = expectIdent("class name");
    if (Name.empty()) {
      // "class" without a name (truncated or malformed input): the error is
      // already recorded; skip the body so parsing can continue after it.
      sync(TokKind::RBrace);
      return;
    }
    ClassId C = P.findClass(Name);
    if (C == InvalidId) {
      // Pass 1 only pre-registers "class <ident>" pairs; anything else that
      // reaches here (e.g. a keyword collision in malformed input) is
      // recovered by registering the class now instead of aborting.
      C = B.makeClass(Name, InvalidId);
    }
    if (atIdent("extends")) {
      take();
      std::string SuperName = expectIdent("superclass name");
      ClassId S = P.findClass(SuperName);
      if (S == InvalidId)
        error("unknown superclass '" + SuperName + "'");
      else
        P.Classes[C].Super = S;
    } else if (P.findClass("Object") != InvalidId && Name != "Object") {
      P.Classes[C].Super = P.findClass("Object");
    }
    for (const Attr &A : parseAttrs()) {
      uint32_t F = 0;
      if (A.Name == "library")
        F = classflags::Library;
      else if (A.Name == "collection")
        F = classflags::Collection | classflags::Library;
      else if (A.Name == "map")
        F = classflags::Map | classflags::Collection | classflags::Library;
      else if (A.Name == "stringcarrier")
        F = classflags::StringCarrier | classflags::Library;
      else if (A.Name == "whitelisted")
        F = classflags::Whitelisted;
      else if (A.Name == "thread")
        F = classflags::Thread;
      else if (A.Name == "actionform")
        F = classflags::ActionForm;
      else
        error("unknown class attribute '" + A.Name + "'");
      P.Classes[C].Flags |= F;
    }
    if (!expect(TokKind::LBrace, "'{'")) {
      sync(TokKind::RBrace);
      return;
    }
    while (!at(TokKind::RBrace) && !at(TokKind::Eof) && !TooManyErrors)
      parseMember(C);
    expect(TokKind::RBrace, "'}'");
  }

  void parseMember(ClassId C) {
    bool IsStatic = false;
    if (atIdent("static")) {
      take();
      IsStatic = true;
    }
    if (atIdent("field")) {
      take();
      std::string Name = expectIdent("field name");
      expect(TokKind::Colon, "':'");
      Type Ty = parseType();
      expect(TokKind::Semi, "';'");
      if (!Name.empty())
        B.makeField(C, Name, Ty, IsStatic);
      return;
    }
    if (atIdent("method")) {
      take();
      parseMethod(C, IsStatic);
      return;
    }
    error("expected 'field' or 'method'");
    take();
  }

  void parseMethod(ClassId C, bool IsStatic) {
    std::string Name = expectIdent("method name");
    expect(TokKind::LParen, "'('");
    std::vector<Type> ParamTypes;
    std::vector<std::string> ParamNames;
    while (!at(TokKind::RParen) && !at(TokKind::Eof) && !TooManyErrors) {
      size_t Before = Pos;
      std::string PName = expectIdent("parameter name");
      expect(TokKind::Colon, "':'");
      ParamTypes.push_back(parseType());
      ParamNames.push_back(PName);
      if (at(TokKind::Comma))
        take();
      if (Pos == Before) // malformed parameter: force progress
        take();
    }
    expect(TokKind::RParen, "')'");
    expect(TokKind::Colon, "':'");
    Type Ret = parseType();
    std::vector<Attr> Attrs = parseAttrs();

    // Bodiless declaration => intrinsic (or abstract placeholder).
    if (at(TokKind::Semi)) {
      take();
      Intrinsic Intr = Intrinsic::None;
      for (const Attr &A : Attrs)
        if (A.Name == "intrinsic" && !A.IdentArgs.empty())
          Intr = intrinsicByName(A.IdentArgs[0]);
      MethodId M = B.makeIntrinsic(C, Name, ParamTypes, Ret, Intr, IsStatic);
      applyMethodAttrs(M, Attrs);
      return;
    }

    MethodBuilder MB = B.startMethod(C, Name, ParamTypes, Ret, IsStatic);
    MethodId M = MB.id();
    applyMethodAttrs(M, Attrs);
    parseBody(MB, ParamNames);
  }

  void applyMethodAttrs(MethodId MId, const std::vector<Attr> &Attrs) {
    Method &M = P.Methods[MId];
    for (const Attr &A : Attrs) {
      if (A.Name == "entry") {
        M.IsEntry = true;
      } else if (A.Name == "factory") {
        M.IsFactory = true;
      } else if (A.Name == "source") {
        RuleMask R = rules::None;
        for (const std::string &S : A.IdentArgs)
          R |= ruleByName(S);
        M.SourceRules |= R ? R : rules::All;
      } else if (A.Name == "sanitizer") {
        RuleMask R = rules::None;
        for (const std::string &S : A.IdentArgs)
          R |= ruleByName(S);
        M.SanitizerRules |= R ? R : rules::All;
      } else if (A.Name == "sink") {
        RuleMask R = rules::None;
        for (const std::string &S : A.IdentArgs)
          R |= ruleByName(S);
        M.SinkRules |= R ? R : rules::All;
        uint32_t Mask = 0;
        for (int64_t Idx : A.IntArgs)
          Mask |= 1u << Idx;
        if (Mask == 0) {
          // Default: every non-receiver parameter is sensitive.
          for (uint32_t K = M.IsStatic ? 0 : 1; K < M.NumParams; ++K)
            Mask |= 1u << K;
        }
        M.SinkParamMask |= Mask;
      } else if (A.Name == "intrinsic") {
        if (!A.IdentArgs.empty())
          M.Intr = intrinsicByName(A.IdentArgs[0]);
      } else {
        error("unknown method attribute '" + A.Name + "'");
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Method bodies
  //===--------------------------------------------------------------------===//

  struct BodyCtx {
    MethodBuilder &MB;
    std::unordered_map<std::string, ValueId> Locals;
    std::unordered_map<std::string, int32_t> LabelBlock;
    // Goto/If fixups: (block, instruction index) -> label.
    std::vector<std::pair<std::pair<int32_t, size_t>, std::string>> Fixups;
  };

  /// Looks up local \p Name; InvalidId-like NoValue if undefined.
  ValueId lookupLocal(BodyCtx &Ctx, const std::string &Name) {
    auto It = Ctx.Locals.find(Name);
    return It == Ctx.Locals.end() ? NoValue : It->second;
  }

  /// Block index for \p Label, creating the block on first reference.
  int32_t blockFor(BodyCtx &Ctx, const std::string &Label) {
    auto It = Ctx.LabelBlock.find(Label);
    if (It != Ctx.LabelBlock.end())
      return It->second;
    int32_t BIdx = Ctx.MB.newBlock();
    Ctx.LabelBlock.emplace(Label, BIdx);
    return BIdx;
  }

  void parseBody(MethodBuilder &MB, const std::vector<std::string> &ParamNames) {
    expect(TokKind::LBrace, "'{'");
    BodyCtx Ctx{MB, {}, {}, {}};
    for (size_t K = 0; K < ParamNames.size(); ++K)
      Ctx.Locals[ParamNames[K]] = MB.param(static_cast<uint32_t>(K));
    while (!at(TokKind::RBrace) && !at(TokKind::Eof) && !TooManyErrors)
      parseStmt(Ctx);
    expect(TokKind::RBrace, "'}'");
    MB.finish();
  }

  /// Parses an operand: a local name, or a literal materialized into a
  /// fresh temporary.
  ValueId parseOperand(BodyCtx &Ctx) {
    Ctx.MB.setLine(CurStmtLine);
    if (at(TokKind::String))
      return Ctx.MB.constStr(take().Text);
    if (at(TokKind::Int))
      return Ctx.MB.constInt(take().IntVal);
    if (at(TokKind::Ident)) {
      std::string Name = take().Text;
      ValueId V = lookupLocal(Ctx, Name);
      if (V == NoValue) {
        error("use of undefined local '" + Name + "'");
        return Ctx.MB.constInt(0);
      }
      return V;
    }
    error("expected operand");
    take();
    return Ctx.MB.constInt(0);
  }

  /// Parses argument list "(a, b, ...)" into values.
  std::vector<ValueId> parseArgs(BodyCtx &Ctx) {
    std::vector<ValueId> Args;
    expect(TokKind::LParen, "'('");
    while (!at(TokKind::RParen) && !at(TokKind::Eof)) {
      Args.push_back(parseOperand(Ctx));
      if (at(TokKind::Comma))
        take();
    }
    expect(TokKind::RParen, "')'");
    return Args;
  }

  /// Parses the right-hand side of an assignment and returns its value.
  ValueId parseRValue(BodyCtx &Ctx) {
    MethodBuilder &MB = Ctx.MB;
    MB.setLine(CurStmtLine);
    if (atIdent("new")) {
      take();
      std::string ClsName = expectIdent("class name");
      ClassId C = P.findClass(ClsName);
      if (C == InvalidId) {
        error("unknown class '" + ClsName + "'");
        return MB.constInt(0);
      }
      if (at(TokKind::LBracket)) {
        take();
        expect(TokKind::RBracket, "']'");
        return MB.emitNewArray(C);
      }
      ValueId Obj = MB.emitNew(C);
      if (at(TokKind::LParen)) {
        std::vector<ValueId> Args = parseArgs(Ctx);
        if (P.findMethod(C, "init") != InvalidId) {
          std::vector<ValueId> Full = {Obj};
          Full.insert(Full.end(), Args.begin(), Args.end());
          Instruction I;
          I.Op = Opcode::Call;
          I.CKind = CallKind::Special;
          I.Cls = C;
          I.CalleeName = P.Pool.intern("init");
          I.Args = Full;
          // Push via Copy trick: use MethodBuilder internals.
          emitRaw(Ctx, std::move(I));
        } else if (!Args.empty()) {
          error("class '" + ClsName + "' has no init method");
        }
      }
      return Obj;
    }
    if (atIdent("caught"))
      return take(), MB.emitCaught();

    // ClassName.member: static load or static call (locals shadow classes).
    if (at(TokKind::Ident) && P.findClass(cur().Text) != InvalidId &&
        lookupLocal(Ctx, cur().Text) == NoValue && peek().is(TokKind::Dot)) {
      ClassId C = P.findClass(take().Text);
      take(); // '.'
      std::string Member = expectIdent("member name");
      if (at(TokKind::LParen)) {
        std::vector<ValueId> Args = parseArgs(Ctx);
        Instruction I;
        I.Op = Opcode::Call;
        I.CKind = CallKind::Static;
        I.Cls = C;
        I.CalleeName = P.Pool.intern(Member);
        I.Args = Args;
        return emitRawDef(Ctx, std::move(I));
      }
      FieldId F = P.findField(C, Member);
      if (F == InvalidId) {
        error("unknown static field '" + Member + "'");
        return MB.constInt(0);
      }
      return MB.emitStaticLoad(F);
    }

    ValueId A = parseOperand(Ctx);
    // Postfix: .field / .call(...) / [] / binop.
    if (at(TokKind::Dot)) {
      take();
      std::string Member = expectIdent("member name");
      if (at(TokKind::LParen)) {
        std::vector<ValueId> Args = parseArgs(Ctx);
        std::vector<ValueId> Full = {A};
        Full.insert(Full.end(), Args.begin(), Args.end());
        return MB.callVirtualV(Member, Full);
      }
      return emitFieldLoad(Ctx, A, Member);
    }
    if (at(TokKind::LBracket)) {
      take();
      expect(TokKind::RBracket, "']'");
      return MB.emitArrayLoad(A);
    }
    BinopKind K;
    bool HasBinop = true;
    if (at(TokKind::Plus))
      K = BinopKind::Add;
    else if (at(TokKind::Minus))
      K = BinopKind::Sub;
    else if (at(TokKind::Star))
      K = BinopKind::Mul;
    else if (at(TokKind::EqEq))
      K = BinopKind::Eq;
    else if (at(TokKind::Less))
      K = BinopKind::Lt;
    else
      HasBinop = false;
    if (HasBinop) {
      take();
      ValueId Rhs = parseOperand(Ctx);
      return MB.emitBinop(K, A, Rhs);
    }
    return A; // plain copy source
  }

  ValueId emitFieldLoad(BodyCtx &Ctx, ValueId Base, const std::string &FName) {
    // Field is resolved against the whole program: find any field with this
    // name on some class; exact typing is not needed for the analyses, but
    // we try the static type first via the name-unique convention.
    FieldId F = findFieldByName(FName);
    if (F == InvalidId) {
      error("unknown field '" + FName + "'");
      return Ctx.MB.constInt(0);
    }
    return Ctx.MB.emitLoad(Base, F);
  }

  FieldId findFieldByName(const std::string &FName) {
    Symbol S = P.Pool.lookup(FName);
    if (S == ~0u)
      return InvalidId;
    for (FieldId F = 0; F < P.Fields.size(); ++F)
      if (P.Fields[F].Name == S)
        return F;
    return InvalidId;
  }

  /// Line of the statement currently being parsed.
  uint32_t CurStmtLine = 0;

  /// Pushes a raw instruction through the MethodBuilder's current block.
  void emitRaw(BodyCtx &Ctx, Instruction I) {
    Method &M = P.Methods[Ctx.MB.id()];
    I.Line = CurStmtLine;
    M.Blocks[Ctx.MB.curBlock()].Insts.push_back(std::move(I));
  }

  ValueId emitRawDef(BodyCtx &Ctx, Instruction I) {
    ValueId D = Ctx.MB.freshSlot();
    I.Dst = D;
    emitRaw(Ctx, std::move(I));
    return D;
  }

  void parseStmt(BodyCtx &Ctx) {
    MethodBuilder &MB = Ctx.MB;
    CurStmtLine = cur().Line;
    MB.setLine(CurStmtLine);

    // Label: "name:"
    if (at(TokKind::Ident) && peek().is(TokKind::Colon)) {
      std::string Label = take().Text;
      take(); // ':'
      int32_t BIdx = blockFor(Ctx, Label);
      // Fall through from the current block unless it is terminated.
      Method &M = P.Methods[MB.id()];
      BasicBlock &CurB = M.Blocks[MB.curBlock()];
      if (CurB.Insts.empty() || !CurB.Insts.back().isTerminator())
        MB.emitGoto(BIdx);
      MB.setBlock(BIdx);
      return;
    }

    if (atIdent("goto")) {
      take();
      std::string Label = expectIdent("label");
      expect(TokKind::Semi, "';'");
      MB.emitGoto(blockFor(Ctx, Label));
      // Subsequent statements (if any) go to a fresh unreachable block to
      // keep blocks well-formed.
      MB.setBlock(MB.newBlock());
      return;
    }
    if (atIdent("if")) {
      take();
      ValueId Cond = parseOperand(Ctx);
      if (!atIdent("goto"))
        error("expected 'goto' after if condition");
      else
        take();
      std::string Label = expectIdent("label");
      expect(TokKind::Semi, "';'");
      int32_t Target = blockFor(Ctx, Label);
      int32_t Next = MB.newBlock(); // fallthrough continues here
      MB.emitIf(Cond, Target, Next);
      MB.setBlock(Next);
      return;
    }
    if (atIdent("return")) {
      take();
      if (at(TokKind::Semi)) {
        take();
        MB.emitRet();
      } else {
        ValueId V = parseOperand(Ctx);
        expect(TokKind::Semi, "';'");
        MB.emitRet(V);
      }
      MB.setBlock(MB.newBlock());
      return;
    }
    if (atIdent("throw")) {
      take();
      ValueId V = parseOperand(Ctx);
      expect(TokKind::Semi, "';'");
      MB.emitThrow(V);
      MB.setBlock(MB.newBlock());
      return;
    }

    // Assignment or expression statement starting with an identifier.
    if (!at(TokKind::Ident)) {
      error("expected statement");
      take();
      return;
    }
    std::string Head = take().Text;

    // ClassName.member = ... or ClassName.m(...);
    if (P.findClass(Head) != InvalidId && at(TokKind::Dot) &&
        lookupLocal(Ctx, Head) == NoValue) {
      ClassId C = P.findClass(Head);
      take(); // '.'
      std::string Member = expectIdent("member name");
      if (at(TokKind::LParen)) {
        std::vector<ValueId> Args = parseArgs(Ctx);
        expect(TokKind::Semi, "';'");
        Instruction I;
        I.Op = Opcode::Call;
        I.CKind = CallKind::Static;
        I.Cls = C;
        I.CalleeName = P.Pool.intern(Member);
        I.Args = Args;
        emitRaw(Ctx, std::move(I));
        return;
      }
      expect(TokKind::Assign, "'='");
      ValueId V = parseOperand(Ctx);
      expect(TokKind::Semi, "';'");
      FieldId F = P.findField(C, Member);
      if (F == InvalidId)
        error("unknown static field '" + Member + "'");
      else
        MB.emitStaticStore(F, V);
      return;
    }

    // obj.field = v; | obj.m(...); | obj[] = v; | local = rvalue;
    if (at(TokKind::Dot)) {
      ValueId Base = lookupLocal(Ctx, Head);
      if (Base == NoValue) {
        error("use of undefined local '" + Head + "'");
        Base = MB.constInt(0);
      }
      take(); // '.'
      std::string Member = expectIdent("member name");
      if (at(TokKind::LParen)) {
        std::vector<ValueId> Args = parseArgs(Ctx);
        expect(TokKind::Semi, "';'");
        std::vector<ValueId> Full = {Base};
        Full.insert(Full.end(), Args.begin(), Args.end());
        Instruction I;
        I.Op = Opcode::Call;
        I.CKind = CallKind::Virtual;
        I.CalleeName = P.Pool.intern(Member);
        I.Args = Full;
        emitRaw(Ctx, std::move(I));
        return;
      }
      expect(TokKind::Assign, "'='");
      ValueId V = parseOperand(Ctx);
      expect(TokKind::Semi, "';'");
      FieldId F = findFieldByName(Member);
      if (F == InvalidId)
        error("unknown field '" + Member + "'");
      else
        MB.emitStore(Base, F, V);
      return;
    }
    if (at(TokKind::LBracket)) {
      ValueId Base = lookupLocal(Ctx, Head);
      if (Base == NoValue) {
        error("use of undefined local '" + Head + "'");
        Base = MB.constInt(0);
      }
      take();
      expect(TokKind::RBracket, "']'");
      expect(TokKind::Assign, "'='");
      ValueId V = parseOperand(Ctx);
      expect(TokKind::Semi, "';'");
      MB.emitArrayStore(Base, V);
      return;
    }
    if (at(TokKind::Assign)) {
      take();
      ValueId V = parseRValue(Ctx);
      expect(TokKind::Semi, "';'");
      auto It = Ctx.Locals.find(Head);
      if (It == Ctx.Locals.end()) {
        // New local: give it a slot of its own so later reassignments do
        // not clobber the value it was initialized from.
        ValueId Slot = MB.freshSlot();
        MB.assign(Slot, V);
        Ctx.Locals.emplace(Head, Slot);
      } else {
        MB.assign(It->second, V);
      }
      return;
    }
    error("expected '=', '.', '[' or '(' after identifier");
    take();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Parser facade
//===----------------------------------------------------------------------===//

Parser::Parser(Program &P, std::string_view Source)
    : P(P), Source(Source) {}

bool Parser::parse() {
  Lexer Lex(Source, Errors);
  if (!Errors.empty())
    return false;
  ParserImpl Impl(P, Lex.tokens(), Errors);
  return Impl.run();
}

bool taj::parseTaj(Program &P, std::string_view Source,
                   std::vector<std::string> *ErrorsOut) {
  Parser Psr(P, Source);
  bool Ok = Psr.parse();
  if (ErrorsOut)
    *ErrorsOut = Psr.errors();
  return Ok;
}
