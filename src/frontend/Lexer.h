//===- frontend/Lexer.h - Tokenizer for the .taj language ------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual TIR surface syntax (".taj"). Comments run from
/// "//" to end of line. String literals use double quotes with \\ and \"
/// escapes.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_FRONTEND_LEXER_H
#define TAJ_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace taj {

/// Token kinds produced by the Lexer.
enum class TokKind : uint8_t {
  Eof,
  Ident,   ///< identifiers and keywords (keyword check by text)
  String,  ///< string literal, Text holds the unescaped contents
  Int,     ///< integer literal, IntVal holds the value
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Dot,
  Assign,  ///< '='
  Plus,
  Minus,
  Star,
  EqEq,    ///< '=='
  Less
};

/// One token with its source position.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntVal = 0;
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool is(TokKind K) const { return Kind == K; }
  bool isIdent(std::string_view S) const {
    return Kind == TokKind::Ident && Text == S;
  }
};

/// Tokenizes a whole buffer up front.
class Lexer {
public:
  /// Tokenizes \p Source; lexical errors are appended to \p Errors as
  /// "line:col: message" strings.
  Lexer(std::string_view Source, std::vector<std::string> &Errors);

  /// The token stream, terminated by an Eof token.
  const std::vector<Token> &tokens() const { return Toks; }

private:
  std::vector<Token> Toks;
};

} // namespace taj

#endif // TAJ_FRONTEND_LEXER_H
