//===- heapgraph/HeapGraph.cpp ---------------------------------*- C++ -*-===//

#include "heapgraph/HeapGraph.h"

#include <algorithm>

using namespace taj;

HeapGraph::HeapGraph(const PointsToSolver &Solver) {
  const PointerKeyTable &PKs = Solver.pointerKeys();
  Succ.assign(Solver.instanceKeys().size(), {});
  for (PKId PK = 0; PK < PKs.size(); ++PK) {
    const PointerKeyData &D = PKs.data(PK);
    IKId Base = InvalidId;
    switch (D.Kind) {
    case PKKind::Field:
    case PKKind::ArrayElem:
    case PKKind::Channel:
      Base = D.A;
      break;
    default:
      continue;
    }
    if (Base >= Succ.size())
      continue;
    for (IKId Target : Solver.pointsTo(PK))
      if (std::find(Succ[Base].begin(), Succ[Base].end(), Target) ==
          Succ[Base].end())
        Succ[Base].push_back(Target);
  }
  for (auto &V : Succ)
    std::sort(V.begin(), V.end());
}

const std::vector<IKId> &HeapGraph::successors(IKId IK) const {
  static const std::vector<IKId> Empty;
  return IK < Succ.size() ? Succ[IK] : Empty;
}

std::vector<IKId> HeapGraph::reachable(const std::vector<IKId> &Seeds,
                                       uint32_t MaxDepth) const {
  std::vector<IKId> Out;
  std::unordered_set<IKId> Seen;
  std::vector<std::pair<IKId, uint32_t>> Work;
  for (IKId S : Seeds)
    if (Seen.insert(S).second)
      Work.emplace_back(S, 0);
  while (!Work.empty()) {
    auto [IK, D] = Work.back();
    Work.pop_back();
    Out.push_back(IK);
    if (D >= MaxDepth)
      continue;
    for (IKId N : successors(IK))
      if (Seen.insert(N).second)
        Work.emplace_back(N, D + 1);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}
