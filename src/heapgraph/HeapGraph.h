//===- heapgraph/HeapGraph.h - Bipartite heap graph ------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap graph of TAJ §4.1.1: a bipartite graph of instance keys and
/// pointer keys derived from the pointer-analysis solution. An edge P -> I
/// means P may point to I; an edge I -> P means P is a field/array/channel
/// of I. Bounded-depth reachability over this graph powers taint-carrier
/// detection (nested taint), with the field-dereference bound of §6.2.3.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_HEAPGRAPH_HEAPGRAPH_H
#define TAJ_HEAPGRAPH_HEAPGRAPH_H

#include "pointsto/Solver.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace taj {

/// Immutable heap graph snapshot built from a solved PointsToSolver.
class HeapGraph {
public:
  explicit HeapGraph(const PointsToSolver &Solver);

  /// Instance keys directly referenced by fields/arrays/channels of \p IK.
  const std::vector<IKId> &successors(IKId IK) const;

  /// All instance keys reachable from \p Seeds through at most \p MaxDepth
  /// field dereferences (0 = just the seeds; InvalidId-free, sorted).
  /// MaxDepth of ~0u means unbounded.
  std::vector<IKId> reachable(const std::vector<IKId> &Seeds,
                              uint32_t MaxDepth) const;

  size_t numInstanceKeys() const { return Succ.size(); }

private:
  std::vector<std::vector<IKId>> Succ;
};

} // namespace taj

#endif // TAJ_HEAPGRAPH_HEAPGRAPH_H
