//===- supervise/Journal.cpp - Append-only batch journal -------*- C++ -*-===//

#include "supervise/Journal.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace taj;
using namespace taj::supervise;

const char *supervise::exitClassName(ExitClass C) {
  switch (C) {
  case ExitClass::Clean:
    return "clean";
  case ExitClass::Truncated:
    return "truncated";
  case ExitClass::Error:
    return "error";
  case ExitClass::Crashed:
    return "crashed";
  case ExitClass::Timeout:
    return "timeout";
  case ExitClass::Oom:
    return "oom";
  }
  return "unknown";
}

bool supervise::exitClassFromName(const std::string &Name, ExitClass &Out) {
  for (ExitClass C :
       {ExitClass::Clean, ExitClass::Truncated, ExitClass::Error,
        ExitClass::Crashed, ExitClass::Timeout, ExitClass::Oom}) {
    if (Name == exitClassName(C)) {
      Out = C;
      return true;
    }
  }
  return false;
}

int supervise::exitContribution(ExitClass C) {
  switch (C) {
  case ExitClass::Clean:
    return 0;
  case ExitClass::Truncated:
    return 2;
  case ExitClass::Error:
  case ExitClass::Crashed:
  case ExitClass::Timeout:
  case ExitClass::Oom:
    return 1;
  }
  return 1;
}

namespace {

/// Journal strings are file names off a line-based batch list, so quote
/// and backslash are the only escapes that can round-trip through it.
std::string escaped(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

/// Extracts the raw value text after "key": in a flat one-line object.
/// Returns nullptr when the key is absent.
const char *valueOf(const std::string &Line, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\":";
  size_t At = 0;
  for (;;) {
    At = Line.find(Needle, At);
    if (At == std::string::npos)
      return nullptr;
    // The match must be a key, i.e. not preceded by an escaping backslash
    // (a quoted key inside a string value cannot occur unescaped).
    if (At == 0 || Line[At - 1] != '\\')
      return Line.c_str() + At + Needle.size();
    At += Needle.size();
  }
}

bool parseString(const std::string &Line, const char *Key, std::string &Out) {
  const char *V = valueOf(Line, Key);
  if (!V || *V != '"')
    return false;
  ++V;
  Out.clear();
  while (*V && *V != '"') {
    if (*V == '\\' && V[1])
      ++V;
    Out += *V++;
  }
  return *V == '"';
}

bool parseInt(const std::string &Line, const char *Key, long long &Out) {
  const char *V = valueOf(Line, Key);
  if (!V || (!std::isdigit(static_cast<unsigned char>(*V)) && *V != '-'))
    return false;
  Out = std::strtoll(V, nullptr, 10);
  return true;
}

bool parseBool(const std::string &Line, const char *Key, bool &Out) {
  const char *V = valueOf(Line, Key);
  if (!V)
    return false;
  if (std::strncmp(V, "true", 4) == 0) {
    Out = true;
    return true;
  }
  if (std::strncmp(V, "false", 5) == 0) {
    Out = false;
    return true;
  }
  return false;
}

} // namespace

std::string Journal::toLine(const Attempt &A) {
  std::string L = "{\"line\":" + std::to_string(A.Line);
  L += ",\"app\":\"" + escaped(A.App) + "\"";
  L += ",\"config\":\"" + escaped(A.ConfigFp) + "\"";
  L += ",\"attempt\":" + std::to_string(A.AttemptNo);
  L += ",\"class\":\"" + std::string(exitClassName(A.Class)) + "\"";
  L += ",\"signal\":" + std::to_string(A.Signal);
  L += ",\"exit\":" + std::to_string(A.Exit);
  L += ",\"issues\":" + std::to_string(A.Issues);
  L += std::string(",\"terminal\":") + (A.Terminal ? "true" : "false");
  L += "}";
  return L;
}

bool Journal::fromLine(const std::string &Line, Attempt &Out) {
  if (Line.empty() || Line.front() != '{' || Line.back() != '}')
    return false;
  long long LineNo, AttemptNo, Signal, Exit, Issues;
  std::string Class;
  if (!parseInt(Line, "line", LineNo) || !parseString(Line, "app", Out.App) ||
      !parseString(Line, "config", Out.ConfigFp) ||
      !parseInt(Line, "attempt", AttemptNo) ||
      !parseString(Line, "class", Class) ||
      !exitClassFromName(Class, Out.Class) ||
      !parseInt(Line, "signal", Signal) || !parseInt(Line, "exit", Exit) ||
      !parseInt(Line, "issues", Issues) ||
      !parseBool(Line, "terminal", Out.Terminal))
    return false;
  if (LineNo < 0 || AttemptNo < 1 || Issues < 0)
    return false;
  Out.Line = static_cast<uint64_t>(LineNo);
  Out.AttemptNo = static_cast<unsigned>(AttemptNo);
  Out.Signal = static_cast<int>(Signal);
  Out.Exit = static_cast<int>(Exit);
  Out.Issues = static_cast<uint64_t>(Issues);
  return true;
}

Journal::~Journal() {
  if (Out)
    std::fclose(Out);
}

void Journal::append(const Attempt &A) {
  if (Path.empty() || OpenFailed)
    return;
  if (!Out) {
    Out = std::fopen(Path.c_str(), "a");
    if (!Out) {
      OpenFailed = true;
      std::fprintf(stderr, "taj-supervise: cannot append to journal '%s'\n",
                   Path.c_str());
      return;
    }
  }
  // One write + flush per record: a supervisor killed right here loses at
  // most this line, and the loader skips a torn tail.
  std::string L = toLine(A);
  L += '\n';
  std::fwrite(L.data(), 1, L.size(), Out);
  std::fflush(Out);
}

std::vector<Attempt> Journal::load(const std::string &Path) {
  std::vector<Attempt> Out;
  std::ifstream In(Path);
  if (!In)
    return Out;
  std::string Line;
  while (std::getline(In, Line)) {
    Attempt A;
    if (fromLine(Line, A))
      Out.push_back(std::move(A));
  }
  return Out;
}
