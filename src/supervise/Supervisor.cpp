//===- supervise/Supervisor.cpp - Process-isolated batch executor ---------===//

#include "supervise/Supervisor.h"

#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <new>
#include <thread>
#include <unordered_map>

#include <csignal>
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif

using namespace taj;
using namespace taj::supervise;

namespace fs = std::filesystem;

ExitClass supervise::classifyWaitStatus(int WaitStatus, bool WatchdogKilled) {
  if (WIFEXITED(WaitStatus)) {
    switch (WEXITSTATUS(WaitStatus)) {
    case 0:
      return ExitClass::Clean;
    case 2:
      return ExitClass::Truncated;
    case WorkerOomExitCode:
      return ExitClass::Oom;
    default:
      return ExitClass::Error;
    }
  }
  if (WIFSIGNALED(WaitStatus)) {
    int Sig = WTERMSIG(WaitStatus);
    // The watchdog owns every signal it delivered, whatever it was; the
    // CPU rlimit's SIGXCPU is morally the same cutoff.
    if (WatchdogKilled || Sig == SIGXCPU)
      return ExitClass::Timeout;
    // An unsolicited SIGKILL is the kernel OOM killer's signature (no
    // user-space party in this design sends it).
    if (Sig == SIGKILL)
      return ExitClass::Oom;
    return ExitClass::Crashed;
  }
  return ExitClass::Error;
}

void supervise::deriveHardLimits(const RunGuard::Limits &Coop,
                                 SupervisorConfig &C) {
  // Backstops sit well above the cooperative limits: RunGuard should win
  // the race in a healthy worker, the watchdog only in a wedged one.
  C.HardDeadlineMs = Coop.DeadlineMs > 0 ? Coop.DeadlineMs * 2 + 1000 : 0;
  C.HardMemoryBytes = Coop.MaxMemoryBytes != 0 ? Coop.MaxMemoryBytes * 2 : 0;
  const char *E;
  if ((E = std::getenv("TAJ_HARD_DEADLINE_MS")))
    C.HardDeadlineMs = std::atof(E);
  if ((E = std::getenv("TAJ_HARD_MAX_MEMORY_MB")))
    C.HardMemoryBytes = static_cast<uint64_t>(std::atoll(E)) * 1024 * 1024;
  if ((E = std::getenv("TAJ_WATCHDOG_GRACE_MS")))
    C.GraceMs = std::atof(E);
  // CPU backstop: generous (slicing may run many threads), but finite
  // whenever a wall-clock watchdog is armed.
  C.CpuLimitSec = C.HardDeadlineMs > 0
                      ? (static_cast<uint64_t>(C.HardDeadlineMs) / 1000 + 1) *
                            16
                      : 0;
}

std::string supervise::resolveSelfExe(const char *Argv0) {
#if defined(__linux__)
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    return Buf;
  }
#endif
  return Argv0 ? Argv0 : "";
}

uint64_t supervise::recoverWorkerStats(const std::string &StatsText,
                                       const std::string &App, Stats *Merged,
                                       uint64_t &ParseFailures) {
  if (StatsText.empty())
    return 0; // a crashed worker usually never wrote its stats file
  Stats WorkerStats;
  if (!WorkerStats.mergeJson(StatsText)) {
    // mergeJson applies every counter up to the malformed line, so a torn
    // write (e.g. a worker killed mid-flush) still contributes what it
    // managed to say — but the loss is surfaced, not silent.
    ParseFailures += 1;
    std::fprintf(stderr,
                 "taj-supervise: malformed --stats-json from worker '%s'; "
                 "merging only the counters that parsed\n",
                 App.c_str());
  }
  if (Merged)
    Merged->merge(WorkerStats);
  return WorkerStats.get("cli.issues");
}

void supervise::installWorkerOomHandler() {
  // Under RLIMIT_AS a failed allocation raises bad_alloc wherever the
  // worker happens to be; the default unwind ends in std::terminate ->
  // SIGABRT, indistinguishable from a genuine crash. Dying with the
  // reserved exit code instead lets the supervisor classify it as oom.
  std::set_new_handler([] { ::_exit(WorkerOomExitCode); });
}

namespace {

/// One live worker process.
struct Worker {
  pid_t Pid = -1;
  size_t AppIdx = 0;
  unsigned AttemptNo = 1;
  std::string OutPath, StatsPath, TracePath;
  Timer Started;
  /// Spawn time on the shared monotonic trace clock, so the supervisor's
  /// per-worker span aligns with the worker's own in-process events.
  uint64_t SpawnTsUs = 0;
  bool TermSent = false;
  bool KillSent = false;
  bool WatchdogKilled = false;
};

/// Terminal outcome of one app, buffered until it can print in order.
struct AppResult {
  bool Done = false;
  ExitClass Class = ExitClass::Error;
  int Exit = 1;
  uint64_t Issues = 0;
  std::string Output;
  std::string Suffix;
};

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void removeQuiet(const std::string &Path) {
  std::error_code Ec;
  fs::remove(Path, Ec);
}

std::string tempPathFor(size_t AppIdx, unsigned AttemptNo, const char *Kind) {
  std::error_code Ec;
  fs::path Dir = fs::temp_directory_path(Ec);
  if (Ec)
    Dir = "/tmp";
  return (Dir / ("taj-sup-" + std::to_string(static_cast<long>(::getpid())) +
                 "-" + std::to_string(AppIdx) + "-" +
                 std::to_string(AttemptNo) + "." + Kind))
      .string();
}

} // namespace

int Supervisor::runBatch(const std::vector<AppTask> &Apps) {
  const unsigned Jobs = std::max(1u, C.Jobs);
  Journal J(C.JournalPath);
  std::vector<AppResult> Final(Apps.size());

  // Resume pre-pass: a terminal journal record for (line, app, config)
  // means the work is already done — contribute its recorded outcome to
  // the worst-of exit and skip the worker entirely.
  if (C.Resume) {
    std::unordered_map<uint64_t, Attempt> Terminal;
    for (Attempt &A : Journal::load(C.JournalPath))
      if (A.Terminal && A.ConfigFp == C.ConfigFp && A.Line < Apps.size() &&
          A.App == Apps[A.Line].Name)
        Terminal[A.Line] = std::move(A);
    for (auto &[Line, A] : Terminal) {
      AppResult &R = Final[Line];
      R.Done = true;
      R.Class = A.Class;
      R.Exit = A.Exit >= 0 ? A.Exit : exitContribution(A.Class);
      R.Issues = A.Issues;
      R.Suffix = " (resumed)";
      N.ResumedSkips += 1;
    }
  }

  std::deque<std::pair<size_t, unsigned>> Pending; // (app index, attempt)
  for (size_t I = 0; I < Apps.size(); ++I)
    if (!Final[I].Done)
      Pending.push_back({I, 1});

  std::vector<Worker> Running;
  size_t NextPrint = 0;
  size_t Remaining =
      static_cast<size_t>(std::count_if(Final.begin(), Final.end(),
                                        [](const AppResult &R) {
                                          return !R.Done;
                                        }));

  auto FlushReady = [&] {
    while (NextPrint < Apps.size() && Final[NextPrint].Done) {
      AppResult &R = Final[NextPrint];
      std::printf("=== %s\n", Apps[NextPrint].Name.c_str());
      if (!R.Output.empty()) {
        std::fwrite(R.Output.data(), 1, R.Output.size(), stdout);
        if (R.Output.back() != '\n')
          std::printf("\n"); // a crashed worker's torn last line
      }
      std::printf("--- %s: exit=%d issues=%llu%s\n",
                  Apps[NextPrint].Name.c_str(), R.Exit,
                  static_cast<unsigned long long>(R.Issues),
                  R.Suffix.c_str());
      std::fflush(stdout);
      R.Output.clear();
      ++NextPrint;
    }
  };

  auto Spawn = [&](size_t AppIdx, unsigned AttemptNo) {
    Worker W;
    W.AppIdx = AppIdx;
    W.AttemptNo = AttemptNo;
    W.OutPath = tempPathFor(AppIdx, AttemptNo, "out");
    W.StatsPath = tempPathFor(AppIdx, AttemptNo, "stats");
    removeQuiet(W.StatsPath); // never read a previous attempt's counters

    const std::vector<std::string> &Args =
        AttemptNo > 1 ? C.RetryArgs : C.BaseArgs;
    std::vector<std::string> ArgStore;
    ArgStore.push_back(C.CliPath);
    ArgStore.insert(ArgStore.end(), Args.begin(), Args.end());
    ArgStore.push_back("--stats-json=" + W.StatsPath);
    if (C.CollectTraces) {
      W.TracePath = tempPathFor(AppIdx, AttemptNo, "trace");
      removeQuiet(W.TracePath);
      ArgStore.push_back("--trace=" + W.TracePath);
    }
    for (const std::string &F : Apps[AppIdx].Files)
      ArgStore.push_back(F);

    pid_t Pid = ::fork();
    if (Pid == 0) {
      // Child: rlimit backstops first, so even exec-time allocations are
      // governed; then wire stdout to the capture file and self-exec.
      if (C.HardMemoryBytes != 0) {
        struct rlimit RL;
        RL.rlim_cur = RL.rlim_max = C.HardMemoryBytes;
        ::setrlimit(RLIMIT_AS, &RL);
      }
      if (C.CpuLimitSec != 0) {
        struct rlimit RL;
        RL.rlim_cur = C.CpuLimitSec;
        RL.rlim_max = C.CpuLimitSec + 5;
        ::setrlimit(RLIMIT_CPU, &RL);
      }
#if defined(__linux__)
      // No orphans: if the supervisor dies, its workers die with it.
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
      int Fd = ::open(W.OutPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (Fd < 0 || ::dup2(Fd, STDOUT_FILENO) < 0)
        ::_exit(WorkerSpawnFailExitCode);
      ::close(Fd);
      ::setenv("TAJ_SUPERVISED_WORKER", "1", 1);
      if (AttemptNo > 1 &&
          degradationForAttempt(AttemptNo - 1).StripFaultInjection) {
        // Flags were already stripped from RetryArgs; the environment
        // channel must not resurrect the injected fault.
        ::unsetenv("TAJ_FAIL_AT");
        ::unsetenv("TAJ_CRASH_AT");
        ::unsetenv("TAJ_CRASH_SIGNAL");
        ::unsetenv("TAJ_HANG_AT");
      }
      std::vector<char *> Argv;
      Argv.reserve(ArgStore.size() + 1);
      for (std::string &S : ArgStore)
        Argv.push_back(S.data());
      Argv.push_back(nullptr);
      ::execv(C.CliPath.c_str(), Argv.data());
      ::_exit(WorkerSpawnFailExitCode);
    }
    if (Pid < 0) {
      // fork failed: a terminal error for this app, not for the batch.
      std::fprintf(stderr, "taj-supervise: fork failed for '%s'\n",
                   Apps[AppIdx].Name.c_str());
      Attempt A;
      A.Line = AppIdx;
      A.App = Apps[AppIdx].Name;
      A.ConfigFp = C.ConfigFp;
      A.AttemptNo = AttemptNo;
      A.Class = ExitClass::Error;
      A.Exit = 1;
      A.Terminal = true;
      J.append(A);
      Final[AppIdx].Done = true;
      Final[AppIdx].Class = ExitClass::Error;
      Final[AppIdx].Exit = 1;
      Remaining -= 1;
      return;
    }
    W.Pid = Pid;
    W.Started.restart();
    W.SpawnTsUs = trace::nowUs();
    N.Spawned += 1;
    Running.push_back(std::move(W));
  };

  auto Finish = [&](Worker &W, int WaitStatus) {
    ExitClass Cls = classifyWaitStatus(WaitStatus, W.WatchdogKilled);

    // The worker's --stats-json carries its counters (including
    // cli.issues); a malformed file (torn write) is counted and
    // diagnosed rather than silently dropped.
    uint64_t Issues = recoverWorkerStats(readWholeFile(W.StatsPath),
                                         Apps[W.AppIdx].Name, C.MergedStats,
                                         N.StatsParseFailed);

    // Batch timeline: one supervisor-side span per worker lifetime, plus
    // the worker's own in-process events (its trace file carries its pid,
    // so the merged document keeps the processes apart). Each app gets a
    // synthetic lane: concurrent workers would overlap on the
    // coordinator's own track, while retries of one app serialize and so
    // share its lane cleanly.
    trace::addComplete("worker: " + Apps[W.AppIdx].Name + " (attempt " +
                           std::to_string(W.AttemptNo) + ")",
                       "supervise", W.SpawnTsUs, trace::nowUs(),
                       1000 + static_cast<uint32_t>(W.AppIdx));
    if (C.CollectTraces && !W.TracePath.empty()) {
      std::string Blob = trace::extractEvents(readWholeFile(W.TracePath));
      if (!Blob.empty())
        TraceBlobs.push_back(std::move(Blob));
      removeQuiet(W.TracePath);
    }

    switch (Cls) {
    case ExitClass::Crashed:
      N.Crashed += 1;
      break;
    case ExitClass::Timeout:
      N.TimedOut += 1;
      break;
    case ExitClass::Oom:
      N.OomKilled += 1;
      break;
    default:
      break;
    }

    const bool Hard = Cls == ExitClass::Crashed || Cls == ExitClass::Timeout ||
                      Cls == ExitClass::Oom;
    const bool Terminal = !Hard || W.AttemptNo > C.MaxRetries;

    Attempt A;
    A.Line = W.AppIdx;
    A.App = Apps[W.AppIdx].Name;
    A.ConfigFp = C.ConfigFp;
    A.AttemptNo = W.AttemptNo;
    A.Class = Cls;
    A.Signal = WIFSIGNALED(WaitStatus) ? WTERMSIG(WaitStatus) : 0;
    A.Exit = WIFEXITED(WaitStatus) ? WEXITSTATUS(WaitStatus) : -1;
    A.Issues = Issues;
    A.Terminal = Terminal;
    J.append(A);

    if (!Terminal) {
      // Retry ladder: degraded re-run, front of the queue so the app
      // resolves before new work starts.
      N.Retried += 1;
      trace::addInstant("retry: " + Apps[W.AppIdx].Name + " (attempt " +
                            std::to_string(W.AttemptNo + 1) + ")",
                        "supervise");
      Pending.push_front({W.AppIdx, W.AttemptNo + 1});
    } else {
      if (!Hard && W.AttemptNo > 1 && Cls != ExitClass::Error)
        N.Recovered += 1;
      AppResult &R = Final[W.AppIdx];
      R.Done = true;
      R.Class = Cls;
      R.Exit = A.Exit >= 0 ? A.Exit : exitContribution(Cls);
      R.Issues = Issues;
      R.Output = readWholeFile(W.OutPath);
      if (Cls == ExitClass::Crashed)
        R.Suffix = " (crashed: signal " + std::to_string(A.Signal) + ")";
      else if (Cls == ExitClass::Timeout)
        R.Suffix = " (timeout)";
      else if (Cls == ExitClass::Oom)
        R.Suffix = " (oom)";
      Remaining -= 1;
    }
    removeQuiet(W.OutPath);
    removeQuiet(W.StatsPath);
  };

  while (Remaining > 0 || !Running.empty()) {
    while (Running.size() < Jobs && !Pending.empty()) {
      auto [AppIdx, AttemptNo] = Pending.front();
      Pending.pop_front();
      Spawn(AppIdx, AttemptNo);
    }
    FlushReady();
    if (Running.empty())
      continue; // spawn failures may have drained everything

    bool Progress = false;
    for (size_t I = 0; I < Running.size();) {
      Worker &W = Running[I];
      int St = 0;
      pid_t Got = ::waitpid(W.Pid, &St, WNOHANG);
      if (Got == W.Pid) {
        Finish(W, St);
        Running.erase(Running.begin() + static_cast<ptrdiff_t>(I));
        Progress = true;
        continue;
      }
      if (Got < 0 && errno == ECHILD) {
        // Should not happen; treat as an error exit rather than spinning.
        Finish(W, 1 << 8);
        Running.erase(Running.begin() + static_cast<ptrdiff_t>(I));
        Progress = true;
        continue;
      }
      // Watchdog: SIGTERM at the hard deadline, SIGKILL after the grace.
      if (C.HardDeadlineMs > 0) {
        double El = W.Started.elapsedMs();
        if (!W.TermSent && El > C.HardDeadlineMs) {
          W.TermSent = true;
          W.WatchdogKilled = true;
          trace::addInstant("watchdog SIGTERM: " + Apps[W.AppIdx].Name,
                            "supervise");
          ::kill(W.Pid, SIGTERM);
        } else if (W.TermSent && !W.KillSent &&
                   El > C.HardDeadlineMs + C.GraceMs) {
          W.KillSent = true;
          trace::addInstant("watchdog SIGKILL: " + Apps[W.AppIdx].Name,
                            "supervise");
          ::kill(W.Pid, SIGKILL);
        }
      }
      ++I;
    }
    if (!Progress)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FlushReady();

  int Exit = 0;
  for (const AppResult &R : Final) {
    int E = exitContribution(R.Class);
    if (E == 1 || Exit == 1)
      Exit = 1;
    else if (E == 2)
      Exit = 2;
  }
  return Exit;
}

void Supervisor::exportStats(Stats &S) const {
  S.add("supervise.spawned", N.Spawned);
  S.add("supervise.crashed", N.Crashed);
  S.add("supervise.timed_out", N.TimedOut);
  S.add("supervise.oom_killed", N.OomKilled);
  S.add("supervise.retried", N.Retried);
  S.add("supervise.recovered", N.Recovered);
  S.add("supervise.resumed_skips", N.ResumedSkips);
  S.add("supervise.stats_parse_failed", N.StatsParseFailed);
}
