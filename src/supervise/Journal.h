//===- supervise/Journal.h - Append-only batch journal ---------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safe record of a supervised batch run: one JSONL line per
/// worker attempt, appended (and flushed) the moment the attempt's exit
/// is classified. Because every line is self-contained, a supervisor
/// killed mid-batch leaves a journal whose terminal records identify
/// exactly the apps that need no re-work — `taj-cli --resume` skips them
/// and re-runs only the rest. A torn trailing line (the supervisor died
/// mid-write) is silently ignored by the loader.
///
/// Record shape (one line, no nesting):
///
///   {"line":3,"app":"a.taj b.taj","config":"<hex16>","attempt":1,
///    "class":"crashed","signal":11,"exit":-1,"issues":0,"terminal":false}
///
/// - line/app identify the batch entry (the list position disambiguates
///   duplicate lines); config fingerprints the batch flags so a journal
///   from a differently-configured run never satisfies --resume;
/// - class is the supervisor's exit classification; signal/exit carry the
///   raw wait-status detail; issues the reported flow count;
/// - terminal marks a final outcome (clean/truncated/error, or a
///   crash/timeout/oom whose retry budget is spent).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SUPERVISE_JOURNAL_H
#define TAJ_SUPERVISE_JOURNAL_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace taj {
namespace supervise {

/// How a supervised worker left the world, derived from its wait status.
enum class ExitClass : uint8_t {
  Clean,     ///< exited 0: analysis ran to completion
  Truncated, ///< exited 2: governance cutoff degraded the run
  Error,     ///< exited with any other code: deterministic failure
  Crashed,   ///< killed by a signal (segfault, abort, ...)
  Timeout,   ///< killed by the watchdog (or RLIMIT_CPU's SIGXCPU)
  Oom,       ///< killed by SIGKILL (kernel OOM discipline) or the
             ///< worker's allocation-failure handler under RLIMIT_AS
};

const char *exitClassName(ExitClass C);
bool exitClassFromName(const std::string &Name, ExitClass &Out);

/// The batch exit-code contribution of a classification: clean = 0,
/// truncated = 2, everything else = 1 (error).
int exitContribution(ExitClass C);

/// One journal record: the outcome of one attempt at one app.
struct Attempt {
  uint64_t Line = 0;      ///< position in the batch list
  std::string App;        ///< display name (files joined by spaces)
  std::string ConfigFp;   ///< batch config fingerprint
  unsigned AttemptNo = 1; ///< 1 = first attempt, 2 = first retry, ...
  ExitClass Class = ExitClass::Error;
  int Signal = 0;     ///< terminating signal (0 when exited normally)
  int Exit = -1;      ///< exit code (-1 when killed by a signal)
  uint64_t Issues = 0;
  bool Terminal = false;
};

/// Append-side of the journal. Opens lazily, appends one flushed line per
/// record; append failures are reported once on stderr and swallowed (a
/// broken journal must not take down the batch it exists to protect).
class Journal {
public:
  Journal() = default;
  explicit Journal(std::string Path) : Path(std::move(Path)) {}
  ~Journal();
  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  bool configured() const { return !Path.empty(); }
  void append(const Attempt &A);

  /// Serializes \p A as one JSONL line (no trailing newline).
  static std::string toLine(const Attempt &A);
  /// Parses one journal line; false on any malformation.
  static bool fromLine(const std::string &Line, Attempt &Out);
  /// Loads every well-formed record of \p Path (a missing file yields an
  /// empty journal; torn or foreign lines are skipped).
  static std::vector<Attempt> load(const std::string &Path);

private:
  std::string Path;
  std::FILE *Out = nullptr;
  bool OpenFailed = false;
};

} // namespace supervise
} // namespace taj

#endif // TAJ_SUPERVISE_JOURNAL_H
