//===- supervise/Supervisor.h - Process-isolated batch executor -*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-cooperative half of TAJ's bounded-analysis discipline (§6).
/// RunGuard degrades a run gracefully — but only at checkpoints the run
/// actually reaches. A segfault, an OOM kill, or a hard hang between
/// checkpoints is outside its reach, and in a batch it used to take every
/// remaining app down with it. The Supervisor closes that gap by running
/// each batch app in a forked worker process (a self-exec of taj-cli in
/// single-app mode) under:
///
///  - a wall-clock watchdog: SIGTERM at the hard deadline, SIGKILL after
///    a grace period — a backstop roughly 2x the cooperative deadline;
///  - rlimit ceilings (RLIMIT_AS / RLIMIT_CPU) derived from the
///    cooperative memory/deadline limits, so even a worker that never
///    checkpoints cannot exceed its budget;
///  - exit classification from the wait status (clean / truncated /
///    error / crashed(signal) / timeout / oom);
///  - a retry ladder: crashed, timed-out and OOM-killed apps re-run once
///    (configurable) with a degraded config (RunGuard::DegradationPreset:
///    halved call-graph budget, local-only string analysis, one thread,
///    fault injection stripped) before being marked failed;
///  - an append-only JSONL journal (supervise/Journal.h) making the batch
///    resumable after the supervisor itself is killed.
///
/// Workers run concurrently up to --jobs, sharing the content-addressed
/// artifact cache; per-app output is captured to temp files and emitted
/// in batch-list order, so `--jobs=1` is byte-identical to the in-process
/// batch loop (`--jobs=0`) and any -jN run prints the same stdout.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SUPERVISE_SUPERVISOR_H
#define TAJ_SUPERVISE_SUPERVISOR_H

#include "supervise/Journal.h"
#include "support/RunGuard.h"
#include "support/Stats.h"

#include <string>
#include <vector>

namespace taj {
namespace supervise {

/// One batch entry: the .taj files forming one app.
struct AppTask {
  std::string Name; ///< display name: files joined by spaces
  std::vector<std::string> Files;
};

/// Reserved worker exit code announcing an allocation failure while
/// running under the supervisor's RLIMIT_AS ceiling (the worker installs
/// a new-handler that dies with this code; see installWorkerOomHandler).
/// Outside the 0/1/2 CLI exit contract, so it cannot be confused with a
/// real analysis outcome.
constexpr int WorkerOomExitCode = 17;

/// Exit code of the forked child when exec of the worker itself failed.
constexpr int WorkerSpawnFailExitCode = 127;

/// Pure classification of a worker's waitpid status. \p WatchdogKilled
/// tells whether the supervisor's watchdog delivered the fatal signal.
/// SIGXCPU is a timeout (the RLIMIT_CPU backstop); an un-asked-for
/// SIGKILL is the kernel OOM killer's signature; WorkerOomExitCode is the
/// worker self-reporting allocation failure under RLIMIT_AS.
ExitClass classifyWaitStatus(int WaitStatus, bool WatchdogKilled);

/// Everything the supervisor needs besides the app list.
struct SupervisorConfig {
  /// Path to the taj-cli binary to self-exec (resolveSelfExe()).
  std::string CliPath;
  /// Per-app worker flags for first attempts (config + cache + governance
  /// + fault-injection flags; app files are appended per task).
  std::vector<std::string> BaseArgs;
  /// Degraded flags for retry attempts (RunGuard::degradationForAttempt
  /// applied; fault-injection env is additionally stripped in the child).
  std::vector<std::string> RetryArgs;
  /// Fingerprint of the batch config, stamped into journal records.
  std::string ConfigFp;
  /// Concurrent workers (>= 1).
  unsigned Jobs = 1;
  /// Re-runs granted to a crashed / timed-out / OOM-killed app.
  unsigned MaxRetries = 1;
  /// Watchdog wall-clock limit per attempt in ms (0 = no watchdog).
  double HardDeadlineMs = 0;
  /// SIGTERM -> SIGKILL escalation grace in ms.
  double GraceMs = 2000;
  /// RLIMIT_AS ceiling in bytes (0 = none).
  uint64_t HardMemoryBytes = 0;
  /// RLIMIT_CPU ceiling in seconds (0 = none).
  uint64_t CpuLimitSec = 0;
  /// Journal path ("" = no journal; required for Resume).
  std::string JournalPath;
  /// Skip apps the journal already holds a terminal record for.
  bool Resume = false;
  /// Fold every worker's --stats-json counters into MergedStats.
  Stats *MergedStats = nullptr;
  /// Hand every worker a --trace=<temp> flag and collect the event blobs
  /// of the finished workers (takeTraceBlobs()) so the caller can write
  /// one merged batch timeline. Worker events carry their own pid and
  /// absolute monotonic timestamps, so they align with the supervisor's.
  bool CollectTraces = false;
};

/// Fills the non-cooperative backstop limits of \p C from the cooperative
/// ones: hard deadline = 2x cooperative + 1s, RLIMIT_AS = 2x cooperative
/// memory ceiling, RLIMIT_CPU from the hard deadline. The
/// TAJ_HARD_DEADLINE_MS / TAJ_HARD_MAX_MEMORY_MB / TAJ_WATCHDOG_GRACE_MS
/// environment knobs override (0 disables), letting operators arm the
/// watchdog even for runs with no cooperative limits.
void deriveHardLimits(const RunGuard::Limits &Coop, SupervisorConfig &C);

/// Resolves the running executable's path (/proc/self/exe, falling back
/// to \p Argv0) for worker self-exec.
std::string resolveSelfExe(const char *Argv0);

/// Recovers a finished worker's --stats-json counters: merges everything
/// that parsed into \p Merged (when non-null) and returns the worker's
/// cli.issues count. An empty \p StatsText is normal (a crashed worker
/// usually never wrote its stats file) and not an error. Malformed JSON
/// increments \p ParseFailures and emits a stderr diagnostic naming
/// \p App — the counters that did parse are still merged, so a torn
/// write surfaces instead of silently dropping the worker's data.
uint64_t recoverWorkerStats(const std::string &StatsText,
                            const std::string &App, Stats *Merged,
                            uint64_t &ParseFailures);

/// Worker-side arming, called by taj-cli main() when spawned under a
/// supervisor (TAJ_SUPERVISED_WORKER=1): installs a new-handler that
/// turns an allocation failure under RLIMIT_AS into a deterministic
/// _exit(WorkerOomExitCode) instead of an uncatchable bad_alloc abort.
void installWorkerOomHandler();

/// Runs batches of supervised workers. Not thread-safe; one per process.
class Supervisor {
public:
  explicit Supervisor(SupervisorConfig C) : C(std::move(C)) {}

  /// Runs every app of \p Apps to a terminal outcome, printing the
  /// standard batch framing ("=== name" / captured report / "--- name:
  /// exit=E issues=N") in list order, and returns the worst-of exit code
  /// (error > truncated > clean).
  int runBatch(const std::vector<AppTask> &Apps);

  /// Exports supervise.{spawned,crashed,timed_out,oom_killed,retried,
  /// recovered,resumed_skips,stats_parse_failed} counters.
  void exportStats(Stats &S) const;

  /// The collected worker trace-event blobs (CollectTraces only), in
  /// finish order, ready for trace::writeJsonMerged(). Moves them out.
  std::vector<std::string> takeTraceBlobs() { return std::move(TraceBlobs); }

private:
  SupervisorConfig C;
  struct Counters {
    uint64_t Spawned = 0, Crashed = 0, TimedOut = 0, OomKilled = 0,
             Retried = 0, Recovered = 0, ResumedSkips = 0,
             StatsParseFailed = 0;
  } N;
  std::vector<std::string> TraceBlobs;
};

} // namespace supervise
} // namespace taj

#endif // TAJ_SUPERVISE_SUPERVISOR_H
