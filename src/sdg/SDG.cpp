//===- sdg/SDG.cpp - SDG construction --------------------------*- C++ -*-===//

#include "sdg/SDG.h"
#include "support/RunGuard.h"

#include <algorithm>
#include <cassert>

using namespace taj;

ValueId taj::heapBaseValue(const Instruction &I, HeapAccess A) {
  switch (A) {
  case HeapAccess::FieldStore:
  case HeapAccess::FieldLoad:
  case HeapAccess::ArrayStore:
  case HeapAccess::ArrayLoad:
  case HeapAccess::MapPut:
  case HeapAccess::MapGet:
  case HeapAccess::CollAdd:
  case HeapAccess::CollGet:
    return I.Args.empty() ? NoValue : I.Args[0];
  case HeapAccess::InvokeArgsRead:
    return I.Args.size() > 2 ? I.Args[2] : NoValue;
  case HeapAccess::StaticStore:
  case HeapAccess::StaticLoad:
  case HeapAccess::None:
    break;
  }
  return NoValue;
}

namespace taj {

/// Builds an SDG in place.
class SdgBuilder {
public:
  SdgBuilder(SDG &G, const Program &P, const ClassHierarchy &CHA,
             const PointsToSolver &Solver, const SDGOptions &Opts)
      : G(G), P(P), CHA(CHA), Solver(Solver), Opts(Opts) {}

  void build();

private:
  SDGNodeId addNode(SDGNode N) {
    G.Nodes.push_back(N);
    G.Succs.emplace_back();
    return static_cast<SDGNodeId>(G.Nodes.size() - 1);
  }
  void addEdge(SDGNodeId From, SDGNodeId To, SDGEdgeKind K) {
    G.Succs[From].push_back({To, K});
  }
  static uint64_t key(SDGOwnerId O, uint32_t X) {
    return (static_cast<uint64_t>(O) << 32) | X;
  }

  SDGNodeId stmtNode(SDGOwnerId O, StmtId S) const {
    auto It = G.StmtMap.find(key(O, S));
    return It == G.StmtMap.end() ? InvalidId : It->second;
  }
  SDGNodeId formalIn(SDGOwnerId O, uint32_t K) const {
    auto It = G.FormalInMap.find(key(O, K));
    return It == G.FormalInMap.end() ? InvalidId : It->second;
  }
  SDGNodeId formalOut(SDGOwnerId O) const {
    auto It = G.FormalOutMap.find(O);
    return It == G.FormalOutMap.end() ? InvalidId : It->second;
  }

  /// Owners of the body'd callees at call statement \p Site of owner \p O.
  std::vector<SDGOwnerId> calleeOwners(SDGOwnerId O, StmtId Site) const;

  void createSkeleton();
  void wireOwner(SDGOwnerId O);
  void wireCall(SDGOwnerId O, StmtId Site, const Instruction &I,
                const std::vector<SDGNodeId> &DefNode);
  void buildChannels();
  void computeOwnerChannels();
  const ChanAccess &chanAccessOf(SDGNodeId N);

  SDG &G;
  const Program &P;
  const ClassHierarchy &CHA;
  const PointsToSolver &Solver;
  const SDGOptions &Opts;
  // method -> merged owner (merged scope); cg node -> owner (expanded).
  std::unordered_map<uint32_t, SDGOwnerId> OwnerIndex;
  std::unordered_map<SDGNodeId, ChanAccess> ChanCache;
};

} // namespace taj

//===----------------------------------------------------------------------===//
// SDG public interface
//===----------------------------------------------------------------------===//

SDG::SDG(const Program &P, const ClassHierarchy &CHA,
         const PointsToSolver &Solver, SDGOptions Opts)
    : P(P), Solver(Solver), Opts(Opts) {
  SdgBuilder B(*this, P, CHA, Solver, this->Opts);
  B.build();
}

const CallSiteInfo *SDG::callSite(SDGNodeId StmtNode) const {
  auto It = CallSites.find(StmtNode);
  return It == CallSites.end() ? nullptr : &It->second;
}

SDGNodeId SDG::actualOutFor(const CallSiteInfo &CS,
                            SDGNodeId CalleeOut) const {
  const SDGNode &N = Nodes[CalleeOut];
  if (N.Kind == SDGNodeKind::FormalOut)
    return CS.StmtNode;
  if (N.Kind == SDGNodeKind::ChanFormalOut) {
    auto It = OwnerChans.find(N.Owner);
    if (It == OwnerChans.end() || N.Index >= It->second.size())
      return InvalidId;
    uint64_t Sig = It->second[N.Index];
    for (size_t K = 0; K < CS.ChanSigs.size(); ++K)
      if (CS.ChanSigs[K] == Sig)
        return CS.ChanOuts[K];
  }
  return InvalidId;
}

std::vector<SDGNodeId> SDG::sourceNodes(RuleMask Rule) const {
  std::vector<SDGNodeId> Out;
  for (SDGNodeId N = 0; N < Nodes.size(); ++N)
    if (Nodes[N].Kind == SDGNodeKind::Stmt && (Nodes[N].SourceMask & Rule))
      Out.push_back(N);
  return Out;
}

const std::vector<IKId> &SDG::valuePointsTo(SDGNodeId N, ValueId V) const {
  const OwnerInfo &OI = Owners[Nodes[N].Owner];
  if (OI.CgNode != InvalidId)
    return Solver.pointsToOfLocal(OI.CgNode, V);
  return Solver.pointsToMerged(OI.M, V);
}

const std::vector<IKId> &SDG::basePointsTo(SDGNodeId N) const {
  static const std::vector<IKId> Empty;
  const SDGNode &Node = Nodes[N];
  const Instruction &I = P.stmt(Node.S);
  ValueId Base = heapBaseValue(I, Node.Access);
  if (Base == NoValue)
    return Empty;
  return valuePointsTo(N, Base);
}

const std::vector<IKId> &SDG::argPointsTo(SDGNodeId N, uint32_t ArgIdx) const {
  static const std::vector<IKId> Empty;
  const SDGNode &Node = Nodes[N];
  const Instruction &I = P.stmt(Node.S);
  if (ArgIdx >= I.Args.size())
    return Empty;
  return valuePointsTo(N, I.Args[ArgIdx]);
}

Symbol SDG::constKeyOf(SDGNodeId N) const {
  const SDGNode &Node = Nodes[N];
  const Instruction &I = P.stmt(Node.S);
  size_t Off = 1; // map intrinsics are instance methods in the model
  for (MethodId T : Solver.intrinsicCalleesAt(Node.S))
    if (P.Methods[T].Intr == Intrinsic::MapPut ||
        P.Methods[T].Intr == Intrinsic::MapGet)
      Off = P.Methods[T].IsStatic ? 0 : 1;
  if (I.Args.size() <= Off)
    return ~0u;
  return Solver.constStringOf(Node.M, I.Args[Off]);
}

std::string SDG::nodeToString(SDGNodeId NId) const {
  const SDGNode &N = Nodes[NId];
  std::string Out;
  switch (N.Kind) {
  case SDGNodeKind::Stmt: {
    Out = "stmt " + P.methodName(N.M) + "#" + std::to_string(N.S);
    if (N.SourceMask)
      Out += " [source]";
    if (N.SinkMask)
      Out += " [sink]";
    if (N.SanitizeMask)
      Out += " [sanitizer]";
    if (N.Access != HeapAccess::None) {
      static const char *Names[] = {"",           "fieldstore", "fieldload",
                                    "arraystore", "arrayload", "staticstore",
                                    "staticload", "mapput",     "mapget",
                                    "colladd",    "collget",    "invokeargs"};
      Out += std::string(" [") + Names[static_cast<int>(N.Access)] + "]";
    }
    break;
  }
  case SDGNodeKind::ActualIn:
    Out = "actual-in(" + std::to_string(N.Index) + ") @" +
          std::to_string(N.S);
    break;
  case SDGNodeKind::FormalIn:
    Out = "formal-in(" + std::to_string(N.Index) + ") " + P.methodName(N.M);
    break;
  case SDGNodeKind::FormalOut:
    Out = "formal-out " + P.methodName(N.M);
    break;
  case SDGNodeKind::ChanFormalIn:
    Out = "chan-formal-in " + P.methodName(N.M);
    break;
  case SDGNodeKind::ChanFormalOut:
    Out = "chan-formal-out " + P.methodName(N.M);
    break;
  case SDGNodeKind::ChanActualIn:
    Out = "chan-actual-in @" + std::to_string(N.S);
    break;
  case SDGNodeKind::ChanActualOut:
    Out = "chan-actual-out @" + std::to_string(N.S);
    break;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

std::vector<SDGOwnerId> SdgBuilder::calleeOwners(SDGOwnerId O,
                                                 StmtId Site) const {
  std::vector<SDGOwnerId> Out;
  auto Add = [&](SDGOwnerId T) {
    if (std::find(Out.begin(), Out.end(), T) == Out.end())
      Out.push_back(T);
  };
  const SDG::OwnerInfo &OI = G.Owners[O];
  if (OI.CgNode != InvalidId) {
    for (const CGEdge &E : Solver.callGraph().edges(OI.CgNode)) {
      if (E.Site != Site)
        continue;
      auto It = OwnerIndex.find(E.Callee);
      if (It != OwnerIndex.end())
        Add(It->second);
    }
    return Out;
  }
  for (MethodId T : Solver.callGraph().calleesAt(Site)) {
    auto It = OwnerIndex.find(T);
    if (It != OwnerIndex.end())
      Add(It->second);
  }
  return Out;
}

void SdgBuilder::build() {
  // Enumerate owners.
  if (Opts.ContextExpanded) {
    const CallGraph &CG = Solver.callGraph();
    for (CGNodeId N = 0; N < CG.numNodes(); ++N) {
      const CGNode &Node = CG.node(N);
      if (!Node.ConstraintsAdded || !P.Methods[Node.M].hasBody())
        continue;
      OwnerIndex[N] = static_cast<SDGOwnerId>(G.Owners.size());
      G.Owners.push_back({Node.M, N});
    }
  } else {
    for (MethodId M = 0; M < P.Methods.size(); ++M) {
      if (!P.Methods[M].hasBody() || !Solver.isMethodProcessed(M))
        continue;
      OwnerIndex[M] = static_cast<SDGOwnerId>(G.Owners.size());
      G.Owners.push_back({M, InvalidId});
    }
  }
  createSkeleton();
  for (SDGOwnerId O = 0; O < G.Owners.size(); ++O) {
    if (Opts.Guard && !Opts.Guard->checkpoint())
      return; // cutoff: remaining owners stay unwired (partial graph)
    wireOwner(O);
  }
  if (Opts.WithChanParams)
    buildChannels();
}

void SdgBuilder::createSkeleton() {
  for (SDGOwnerId O = 0; O < G.Owners.size(); ++O) {
    MethodId M = G.Owners[O].M;
    const Method &Meth = P.Methods[M];
    for (uint32_t K = 0; K < Meth.NumParams; ++K) {
      SDGNode N;
      N.Kind = SDGNodeKind::FormalIn;
      N.Owner = O;
      N.M = M;
      N.Index = K;
      G.FormalInMap[key(O, K)] = addNode(N);
    }
    SDGNode Out;
    Out.Kind = SDGNodeKind::FormalOut;
    Out.Owner = O;
    Out.M = M;
    G.FormalOutMap[O] = addNode(Out);

    StmtId S = P.methodStmtBegin(M);
    for (const BasicBlock &BB : Meth.Blocks) {
      for (size_t K = 0; K < BB.Insts.size(); ++K) {
        SDGNode N;
        N.Kind = SDGNodeKind::Stmt;
        N.Owner = O;
        N.M = M;
        N.S = S;
        G.StmtMap[key(O, S)] = addNode(N);
        ++S;
      }
    }
  }
}

void SdgBuilder::wireOwner(SDGOwnerId O) {
  MethodId M = G.Owners[O].M;
  const Method &Meth = P.Methods[M];
  std::vector<SDGNodeId> DefNode(Meth.NumValues, InvalidId);
  for (uint32_t K = 0; K < Meth.NumParams; ++K)
    DefNode[K] = formalIn(O, K);
  {
    StmtId S = P.methodStmtBegin(M);
    for (const BasicBlock &BB : Meth.Blocks)
      for (const Instruction &I : BB.Insts) {
        if (I.Dst != NoValue)
          DefNode[I.Dst] = stmtNode(O, S);
        ++S;
      }
  }

  auto Use = [&](ValueId V, SDGNodeId To) {
    if (V == NoValue)
      return;
    SDGNodeId D = DefNode[V];
    if (D != InvalidId)
      addEdge(D, To, SDGEdgeKind::Flow);
  };

  StmtId S = P.methodStmtBegin(M);
  for (const BasicBlock &BB : Meth.Blocks) {
    for (const Instruction &I : BB.Insts) {
      StmtId Site = S++;
      SDGNodeId C = stmtNode(O, Site);
      switch (I.Op) {
      case Opcode::Copy:
      case Opcode::Phi:
      case Opcode::Binop:
        for (ValueId A : I.Args)
          Use(A, C);
        break;
      case Opcode::Store:
        G.Nodes[C].Access = HeapAccess::FieldStore;
        Use(I.Args[1], C); // value only; base-pointer dep excluded
        break;
      case Opcode::ArrayStore:
        G.Nodes[C].Access = HeapAccess::ArrayStore;
        Use(I.Args[1], C);
        break;
      case Opcode::StaticStore:
        G.Nodes[C].Access = HeapAccess::StaticStore;
        Use(I.Args[0], C);
        break;
      case Opcode::Load:
        G.Nodes[C].Access = HeapAccess::FieldLoad;
        break; // no incoming data edges in the no-heap SDG
      case Opcode::ArrayLoad:
        G.Nodes[C].Access = HeapAccess::ArrayLoad;
        break;
      case Opcode::StaticLoad:
        G.Nodes[C].Access = HeapAccess::StaticLoad;
        break;
      case Opcode::Return:
        if (!I.Args.empty())
          Use(I.Args[0], formalOut(O));
        break;
      case Opcode::Caught:
        if (Opts.ModelExceptionSources)
          G.Nodes[C].SourceMask |= rules::LEAK;
        break;
      case Opcode::Call:
        wireCall(O, Site, I, DefNode);
        break;
      default:
        break;
      }
      switch (G.Nodes[C].Access) {
      case HeapAccess::FieldStore:
      case HeapAccess::ArrayStore:
      case HeapAccess::StaticStore:
      case HeapAccess::MapPut:
      case HeapAccess::CollAdd:
        G.Stores.push_back(C);
        break;
      case HeapAccess::FieldLoad:
      case HeapAccess::ArrayLoad:
      case HeapAccess::StaticLoad:
      case HeapAccess::MapGet:
      case HeapAccess::CollGet:
      case HeapAccess::InvokeArgsRead:
        G.Loads.push_back(C);
        break;
      default:
        break;
      }
      if (G.Nodes[C].SinkMask != rules::None)
        G.Sinks.push_back(C);
    }
  }
}

void SdgBuilder::wireCall(SDGOwnerId O, StmtId Site, const Instruction &I,
                          const std::vector<SDGNodeId> &DefNode) {
  SDGNodeId C = stmtNode(O, Site);
  auto Use = [&](ValueId V, SDGNodeId To) {
    if (V == NoValue)
      return;
    SDGNodeId D = DefNode[V];
    if (D != InvalidId)
      addEdge(D, To, SDGEdgeKind::Flow);
  };

  const std::vector<MethodId> &Intr = Solver.intrinsicCalleesAt(Site);
  std::vector<SDGOwnerId> Targets = calleeOwners(O, Site);
  G.Nodes[C].Access = classifyAccess(P, I, Intr);

  bool IsInvoke = false;
  uint32_t SinkArgMask = 0;
  RuleMask SrcMask = rules::None, SinkMask = rules::None,
           SanMask = rules::None;
  for (MethodId T : Intr) {
    const Method &TM = P.Methods[T];
    SrcMask |= TM.SourceRules;
    SanMask |= TM.SanitizerRules;
    if (TM.SinkRules) {
      SinkMask |= TM.SinkRules;
      SinkArgMask |= TM.SinkParamMask;
    }
    size_t Off = TM.IsStatic ? 0 : 1;
    switch (TM.Intr) {
    case Intrinsic::Identity:
    case Intrinsic::StringTransfer:
    case Intrinsic::Sanitize:
    case Intrinsic::None: // default native model: result derives from args
      for (ValueId A : I.Args)
        Use(A, C);
      break;
    case Intrinsic::MapPut:
      if (I.Args.size() > Off + 1)
        Use(I.Args[Off + 1], C);
      break;
    case Intrinsic::CollAdd:
      if (I.Args.size() > Off)
        Use(I.Args[Off], C);
      break;
    case Intrinsic::ClassForName:
    case Intrinsic::GetMethod:
    case Intrinsic::JndiLookup:
    case Intrinsic::HomeCreate:
      for (size_t K = Off; K < I.Args.size(); ++K)
        Use(I.Args[K], C);
      break;
    case Intrinsic::MethodInvoke:
      IsInvoke = true;
      break;
    default:
      break;
    }
  }
  for (SDGOwnerId T : Targets) {
    const Method &TM = P.Methods[G.Owners[T].M];
    SrcMask |= TM.SourceRules;
    SanMask |= TM.SanitizerRules;
    if (TM.SinkRules) {
      SinkMask |= TM.SinkRules;
      SinkArgMask |= TM.SinkParamMask;
    }
  }
  G.Nodes[C].SourceMask |= SrcMask;
  G.Nodes[C].SinkMask |= SinkMask;
  G.Nodes[C].SanitizeMask |= SanMask;
  if (G.Nodes[C].SinkMask != rules::None)
    for (uint32_t K = 0; K < I.Args.size(); ++K)
      if (SinkArgMask & (1u << K))
        Use(I.Args[K], C);

  if (Targets.empty())
    return;

  CallSiteInfo CS;
  CS.StmtNode = C;
  CS.Targets = Targets;
  G.Nodes[C].IsCall = true;

  if (IsInvoke) {
    // invoke(methodObj, recv, argsArray): the receiver flows via an
    // actual-in; the argument array flows via the heap (this node is an
    // InvokeArgsRead load) into every formal of every target.
    if (I.Args.size() > 1) {
      SDGNode AN;
      AN.Kind = SDGNodeKind::ActualIn;
      AN.Owner = O;
      AN.M = G.Owners[O].M;
      AN.S = Site;
      AN.Index = 1;
      AN.Aux = C;
      SDGNodeId AIn = addNode(AN);
      CS.ActualIns.push_back(AIn);
      Use(I.Args[1], AIn);
      for (SDGOwnerId T : Targets) {
        const Method &TM = P.Methods[G.Owners[T].M];
        if (TM.IsStatic || TM.NumParams == 0)
          continue;
        SDGNodeId FIn = formalIn(T, 0);
        if (FIn != InvalidId)
          addEdge(AIn, FIn, SDGEdgeKind::ParamIn);
      }
    }
    for (SDGOwnerId T : Targets) {
      const Method &TM = P.Methods[G.Owners[T].M];
      for (uint32_t K = TM.IsStatic ? 0 : 1; K < TM.NumParams; ++K) {
        SDGNodeId FIn = formalIn(T, K);
        if (FIn != InvalidId)
          addEdge(C, FIn, SDGEdgeKind::ParamIn);
      }
      SDGNodeId FOut = formalOut(T);
      if (FOut != InvalidId)
        addEdge(FOut, C, SDGEdgeKind::ParamOut);
    }
    G.CallSites[C] = std::move(CS);
    return;
  }

  for (uint32_t K = 0; K < I.Args.size(); ++K) {
    SDGNode AN;
    AN.Kind = SDGNodeKind::ActualIn;
    AN.Owner = O;
    AN.M = G.Owners[O].M;
    AN.S = Site;
    AN.Index = K;
    AN.Aux = C;
    SDGNodeId AIn = addNode(AN);
    CS.ActualIns.push_back(AIn);
    Use(I.Args[K], AIn);
    for (SDGOwnerId T : Targets) {
      if (K >= P.Methods[G.Owners[T].M].NumParams)
        continue;
      SDGNodeId FIn = formalIn(T, K);
      if (FIn != InvalidId)
        addEdge(AIn, FIn, SDGEdgeKind::ParamIn);
    }
  }
  for (SDGOwnerId T : Targets) {
    SDGNodeId FOut = formalOut(T);
    if (FOut != InvalidId)
      addEdge(FOut, C, SDGEdgeKind::ParamOut);
  }
  G.CallSites[C] = std::move(CS);
}

//===----------------------------------------------------------------------===//
// CS channel extension
//===----------------------------------------------------------------------===//

const ChanAccess &SdgBuilder::chanAccessOf(SDGNodeId N) {
  auto Cached = ChanCache.find(N);
  if (Cached != ChanCache.end())
    return Cached->second;
  ChanAccess CA;
  const SDGNode &Node = G.Nodes[N];
  const Instruction &I = P.stmt(Node.S);
  static const std::vector<IKId> EmptyIKs;
  const std::vector<IKId> &Bases = (Node.Access != HeapAccess::None &&
                                    Node.Access != HeapAccess::StaticStore &&
                                    Node.Access != HeapAccess::StaticLoad)
                                       ? G.basePointsTo(N)
                                       : EmptyIKs;
  switch (Node.Access) {
  case HeapAccess::FieldStore:
    for (IKId IK : Bases)
      CA.Writes.push_back(chansig::withIK(chansig::field(I.Field), IK));
    break;
  case HeapAccess::FieldLoad:
    for (IKId IK : Bases)
      CA.Reads.push_back(chansig::withIK(chansig::field(I.Field), IK));
    break;
  case HeapAccess::ArrayStore:
    for (IKId IK : Bases)
      CA.Writes.push_back(chansig::withIK(chansig::array(), IK));
    break;
  case HeapAccess::ArrayLoad:
  case HeapAccess::InvokeArgsRead:
    for (IKId IK : Bases)
      CA.Reads.push_back(chansig::withIK(chansig::array(), IK));
    break;
  case HeapAccess::MapPut: {
    Symbol Key = G.constKeyOf(N);
    for (IKId IK : Bases)
      CA.Writes.push_back(chansig::withIK(
          Key != ~0u ? chansig::mapKey(Key) : chansig::map(), IK));
    break;
  }
  case HeapAccess::MapGet: {
    Symbol Key = G.constKeyOf(N);
    for (IKId IK : Bases) {
      if (Key != ~0u)
        CA.Reads.push_back(chansig::withIK(chansig::mapKey(Key), IK));
      CA.Reads.push_back(chansig::withIK(chansig::map(), IK));
    }
    break;
  }
  case HeapAccess::CollAdd:
    for (IKId IK : Bases)
      CA.Writes.push_back(chansig::withIK(chansig::coll(), IK));
    break;
  case HeapAccess::CollGet:
    for (IKId IK : Bases)
      CA.Reads.push_back(chansig::withIK(chansig::coll(), IK));
    break;
  case HeapAccess::StaticStore:
    CA.Writes.push_back(chansig::staticField(I.Field));
    break;
  case HeapAccess::StaticLoad:
    CA.Reads.push_back(chansig::staticField(I.Field));
    break;
  case HeapAccess::None:
    break;
  }
  std::sort(CA.Reads.begin(), CA.Reads.end());
  CA.Reads.erase(std::unique(CA.Reads.begin(), CA.Reads.end()),
                 CA.Reads.end());
  std::sort(CA.Writes.begin(), CA.Writes.end());
  CA.Writes.erase(std::unique(CA.Writes.begin(), CA.Writes.end()),
                  CA.Writes.end());
  return ChanCache.emplace(N, std::move(CA)).first->second;
}

void SdgBuilder::computeOwnerChannels() {
  // Direct accesses per owner (kept sorted throughout).
  uint64_t Total = 0;
  for (SDGOwnerId O = 0; O < G.Owners.size(); ++O) {
    MethodId M = G.Owners[O].M;
    auto &Set = G.OwnerChans[O];
    StmtId S = P.methodStmtBegin(M);
    for (const BasicBlock &BB : P.Methods[M].Blocks) {
      for (size_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        SDGNodeId N = stmtNode(O, S++);
        const ChanAccess &CA = chanAccessOf(N);
        for (const auto *V : {&CA.Reads, &CA.Writes}) {
          for (uint64_t Sig : *V) {
            auto It = std::lower_bound(Set.begin(), Set.end(), Sig);
            if (It == Set.end() || *It != Sig) {
              Set.insert(It, Sig);
              ++Total;
            }
          }
        }
      }
    }
  }
  // Transitive closure over call edges. Owners are iterated in reverse
  // creation order (callees are typically created after callers), which
  // converges in few sweeps for call DAGs; the channel-node budget aborts
  // the closure for heap-heavy programs — CS thin slicing running out of
  // memory, as on TAJ's larger benchmarks.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (SDGOwnerId OR = G.Owners.size(); OR-- > 0;) {
      SDGOwnerId O = OR;
      auto &Set = G.OwnerChans[O];
      MethodId M = G.Owners[O].M;
      StmtId S = P.methodStmtBegin(M);
      for (const BasicBlock &BB : P.Methods[M].Blocks) {
        for (const Instruction &I : BB.Insts) {
          StmtId Site = S++;
          if (I.Op != Opcode::Call)
            continue;
          for (SDGOwnerId T : calleeOwners(O, Site)) {
            const auto &TSet = G.OwnerChans[T];
            std::vector<uint64_t> Merged;
            Merged.reserve(Set.size() + TSet.size());
            std::set_union(Set.begin(), Set.end(), TSet.begin(), TSet.end(),
                           std::back_inserter(Merged));
            if (Merged.size() != Set.size()) {
              Total += Merged.size() - Set.size();
              Set = std::move(Merged);
              Changed = true;
            }
          }
        }
      }
      if (Opts.ChanNodeBudget != 0 && Total * 2 > Opts.ChanNodeBudget) {
        G.ChanNodes = Total * 2;
        G.ChanOOM = true;
        return;
      }
    }
  }
}

void SdgBuilder::buildChannels() {
  computeOwnerChannels();
  if (G.ChanOOM)
    return;

  auto ChanIdx = [&](SDGOwnerId O, uint64_t Sig) -> int64_t {
    auto It = G.OwnerChans.find(O);
    if (It == G.OwnerChans.end())
      return -1;
    auto &V = It->second;
    auto P2 = std::lower_bound(V.begin(), V.end(), Sig);
    if (P2 == V.end() || *P2 != Sig)
      return -1;
    return P2 - V.begin();
  };

  auto Budget = [&](uint64_t N) {
    G.ChanNodes += N;
    if (Opts.ChanNodeBudget != 0 && G.ChanNodes > Opts.ChanNodeBudget) {
      G.ChanOOM = true;
      return false;
    }
    return true;
  };

  for (SDGOwnerId O = 0; O < G.Owners.size(); ++O) {
    if (Opts.Guard && !Opts.Guard->checkpoint())
      return; // cutoff mid channel extension: partial graph
    auto It = G.OwnerChans.find(O);
    if (It == G.OwnerChans.end())
      continue;
    for (uint32_t Idx = 0; Idx < It->second.size(); ++Idx) {
      if (!Budget(2))
        return;
      SDGNode In;
      In.Kind = SDGNodeKind::ChanFormalIn;
      In.Owner = O;
      In.M = G.Owners[O].M;
      In.Index = Idx;
      G.ChanFormalInMap[key(O, Idx)] = addNode(In);
      SDGNode Out;
      Out.Kind = SDGNodeKind::ChanFormalOut;
      Out.Owner = O;
      Out.M = G.Owners[O].M;
      Out.Index = Idx;
      G.ChanFormalOutMap[key(O, Idx)] = addNode(Out);
    }
  }

  // Wire each owner per channel in statement order ("partially
  // flow-sensitive": a load only sees stores that precede it).
  for (SDGOwnerId O = 0; O < G.Owners.size(); ++O) {
    auto OIt = G.OwnerChans.find(O);
    if (OIt == G.OwnerChans.end())
      continue;
    MethodId M = G.Owners[O].M;
    for (uint32_t Idx = 0; Idx < OIt->second.size(); ++Idx) {
      uint64_t Sig = OIt->second[Idx];
      SDGNodeId FIn = G.ChanFormalInMap[key(O, Idx)];
      SDGNodeId FOut = G.ChanFormalOutMap[key(O, Idx)];
      std::vector<SDGNodeId> Carriers = {FIn};

      StmtId S = P.methodStmtBegin(M);
      for (const BasicBlock &BB : P.Methods[M].Blocks) {
        for (size_t Idx2 = 0; Idx2 < BB.Insts.size(); ++Idx2) {
          StmtId Site = S++;
          SDGNodeId C = stmtNode(O, Site);
          const ChanAccess &CA = chanAccessOf(C);
          if (std::binary_search(CA.Reads.begin(), CA.Reads.end(), Sig))
            for (SDGNodeId Cr : Carriers)
              addEdge(Cr, C, SDGEdgeKind::Flow);
          if (std::binary_search(CA.Writes.begin(), CA.Writes.end(), Sig))
            Carriers.push_back(C);
          auto CSIt = G.CallSites.find(C);
          if (CSIt == G.CallSites.end())
            continue;
          CallSiteInfo &CSI = CSIt->second;
          bool Touches = false;
          for (SDGOwnerId T : CSI.Targets)
            if (ChanIdx(T, Sig) >= 0)
              Touches = true;
          if (!Touches)
            continue;
          if (!Budget(2))
            return;
          SDGNode AInN;
          AInN.Kind = SDGNodeKind::ChanActualIn;
          AInN.Owner = O;
          AInN.M = M;
          AInN.S = Site;
          AInN.Aux = C;
          SDGNodeId CAI = addNode(AInN);
          SDGNode AOutN;
          AOutN.Kind = SDGNodeKind::ChanActualOut;
          AOutN.Owner = O;
          AOutN.M = M;
          AOutN.S = Site;
          SDGNodeId CAO = addNode(AOutN);
          CSI.ChanSigs.push_back(Sig);
          CSI.ChanIns.push_back(CAI);
          CSI.ChanOuts.push_back(CAO);
          for (SDGNodeId Cr : Carriers)
            addEdge(Cr, CAI, SDGEdgeKind::Flow);
          for (SDGOwnerId T : CSI.Targets) {
            int64_t TIdx = ChanIdx(T, Sig);
            if (TIdx < 0)
              continue;
            addEdge(CAI,
                    G.ChanFormalInMap[key(T, static_cast<uint32_t>(TIdx))],
                    SDGEdgeKind::ParamIn);
            addEdge(G.ChanFormalOutMap[key(T, static_cast<uint32_t>(TIdx))],
                    CAO, SDGEdgeKind::ParamOut);
          }
          Carriers.push_back(CAO);
        }
      }
      for (SDGNodeId Cr : Carriers)
        addEdge(Cr, FOut, SDGEdgeKind::Flow);
    }
  }
}
