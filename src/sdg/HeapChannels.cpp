//===- sdg/HeapChannels.cpp - Channel signatures ---------------*- C++ -*-===//

#include "sdg/SDG.h"

using namespace taj;

uint64_t taj::chansig::field(FieldId F) { return F; }
uint64_t taj::chansig::staticField(FieldId F) { return (1ull << 33) | F; }
uint64_t taj::chansig::array() { return 1ull << 34; }
uint64_t taj::chansig::map() { return 1ull << 35; }
uint64_t taj::chansig::mapKey(Symbol Key) {
  return (1ull << 35) | (static_cast<uint64_t>(Key) << 1) | 1;
}
uint64_t taj::chansig::coll() { return 1ull << 36; }

uint64_t taj::chansig::withIK(uint64_t ClassSig, IKId IK) {
  // Location-qualified signature: mix the instance key into the upper
  // bits; class signatures stay below bit 37.
  return ClassSig ^ (static_cast<uint64_t>(IK + 1) << 37);
}

HeapAccess taj::classifyAccess(const Program &P, const Instruction &I,
                               const std::vector<MethodId> &IntrTargets) {
  switch (I.Op) {
  case Opcode::Store:
    return HeapAccess::FieldStore;
  case Opcode::Load:
    return HeapAccess::FieldLoad;
  case Opcode::ArrayStore:
    return HeapAccess::ArrayStore;
  case Opcode::ArrayLoad:
    return HeapAccess::ArrayLoad;
  case Opcode::StaticStore:
    return HeapAccess::StaticStore;
  case Opcode::StaticLoad:
    return HeapAccess::StaticLoad;
  case Opcode::Call:
    for (MethodId T : IntrTargets) {
      switch (P.Methods[T].Intr) {
      case Intrinsic::MapPut:
        return HeapAccess::MapPut;
      case Intrinsic::MapGet:
        return HeapAccess::MapGet;
      case Intrinsic::CollAdd:
        return HeapAccess::CollAdd;
      case Intrinsic::CollGet:
        return HeapAccess::CollGet;
      case Intrinsic::MethodInvoke:
        return HeapAccess::InvokeArgsRead;
      default:
        break;
      }
    }
    return HeapAccess::None;
  default:
    return HeapAccess::None;
  }
}
