//===- sdg/SDG.h - System dependence graph for thin slicing ----*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-dependence graph underlying the three thin-slicing algorithms
/// (TAJ §3.2).
///
/// Scope: the graph is built either *context-expanded* — one subgraph per
/// call-graph node (method, context), as in WALA, which is what lets the
/// hybrid algorithm distinguish the three Internal instances of the
/// paper's motivating example — or *context-merged* (one subgraph per
/// method), which is the graph CI thin slicing operates on.
///
/// The no-heap portion (always built) carries SSA def-use flow through
/// locals and parameter/return plumbing; loads have no incoming data edges
/// and stores no outgoing ones, and base-pointer dependencies are excluded
/// (thin slicing). The channel-extended portion (CS thin slicing only)
/// threads heap dependencies through calls as extra parameters, wired in
/// statement order ("partially flow-sensitive" — the property that makes
/// CS unsound for multi-threaded programs); its size is metered against a
/// memory budget, reproducing the CS out-of-memory rows of Table 3.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SDG_SDG_H
#define TAJ_SDG_SDG_H

#include "heapgraph/HeapGraph.h"
#include "pointsto/Solver.h"
#include "support/Stats.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace taj {

namespace persist {
struct Access;
}

class PhaseProfile;

/// SDG node identifiers (dense).
using SDGNodeId = uint32_t;
/// Owner identifiers: one owner per (method, context) subgraph in expanded
/// scope, one per method in merged scope.
using SDGOwnerId = uint32_t;

/// Node kinds.
enum class SDGNodeKind : uint8_t {
  Stmt,          ///< An instruction (also the actual-out of its call).
  ActualIn,      ///< Argument Index of call statement S.
  FormalIn,      ///< Parameter Index of owner Owner.
  FormalOut,     ///< Return value of owner Owner.
  ChanFormalIn,  ///< Channel Index entering owner Owner (CS only).
  ChanFormalOut, ///< Channel Index leaving owner Owner (CS only).
  ChanActualIn,  ///< Channel Index entering call S (CS only).
  ChanActualOut  ///< Channel Index leaving call S (CS only).
};

/// How a statement accesses the heap (drives direct store->load edges).
enum class HeapAccess : uint8_t {
  None,
  FieldStore,
  FieldLoad,
  ArrayStore,
  ArrayLoad,
  StaticStore,
  StaticLoad,
  MapPut,
  MapGet,
  CollAdd,
  CollGet,
  InvokeArgsRead ///< Reflective invoke reads its argument array.
};

/// One SDG node.
struct SDGNode {
  SDGNodeKind Kind = SDGNodeKind::Stmt;
  SDGOwnerId Owner = InvalidId;
  MethodId M = InvalidId;
  StmtId S = 0;
  uint32_t Index = 0;
  HeapAccess Access = HeapAccess::None;
  /// For ActualIn/ChanActualIn: the owning call statement node.
  SDGNodeId Aux = InvalidId;
  RuleMask SourceMask = rules::None;
  RuleMask SinkMask = rules::None;
  RuleMask SanitizeMask = rules::None;
  bool IsCall = false;
};

/// Edge kinds; summary edges are materialized by the tabulation engine.
enum class SDGEdgeKind : uint8_t { Flow, ParamIn, ParamOut };

struct SDGEdge {
  SDGNodeId To = 0;
  SDGEdgeKind Kind = SDGEdgeKind::Flow;
};

/// Per-call-site bookkeeping used to map callee formal-outs back to this
/// site's actual-outs when applying summaries.
struct CallSiteInfo {
  SDGNodeId StmtNode = 0;
  std::vector<SDGOwnerId> Targets;
  std::vector<SDGNodeId> ActualIns;
  /// Channel plumbing (CS only): parallel arrays over channel signatures.
  std::vector<uint64_t> ChanSigs;
  std::vector<SDGNodeId> ChanIns;
  std::vector<SDGNodeId> ChanOuts;
};

/// Build options.
struct SDGOptions {
  /// Optional run-governance guard; construction checkpoints per wired
  /// subgraph owner and stops early (partial graph) when it trips. Not
  /// owned.
  RunGuard *Guard = nullptr;
  /// One subgraph per call-graph node (hybrid/CS) vs per method (CI).
  bool ContextExpanded = true;
  /// Build the channel-extended graph (CS thin slicing).
  bool WithChanParams = false;
  /// Synthesize LEAK sources at caught-exception statements (§4.1.2).
  bool ModelExceptionSources = true;
  /// Memory budget (channel-node units) for the CS extension; 0 = off.
  uint64_t ChanNodeBudget = 0;
  /// Optional per-phase profile (support/Trace.h), used by loadOrBuildSdg
  /// to bracket the persist load/store paths. Not owned; may be null.
  PhaseProfile *Profile = nullptr;
};

/// The system dependence graph.
class SDG {
public:
  SDG(const Program &P, const ClassHierarchy &CHA,
      const PointsToSolver &Solver, SDGOptions Opts = {});

  const SDGNode &node(SDGNodeId N) const { return Nodes[N]; }
  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
  const std::vector<SDGEdge> &succs(SDGNodeId N) const { return Succs[N]; }

  /// Call-site info for a call statement node; nullptr if not a call with
  /// body'd targets.
  const CallSiteInfo *callSite(SDGNodeId StmtNode) const;

  /// Maps a callee formal-out-like node to the corresponding actual-out at
  /// call site \p CS. InvalidId if unmapped.
  SDGNodeId actualOutFor(const CallSiteInfo &CS, SDGNodeId CalleeOut) const;

  /// All statement nodes that are sources for \p Rule.
  std::vector<SDGNodeId> sourceNodes(RuleMask Rule) const;

  const std::vector<SDGNodeId> &storeNodes() const { return Stores; }
  const std::vector<SDGNodeId> &loadNodes() const { return Loads; }
  const std::vector<SDGNodeId> &sinkNodes() const { return Sinks; }

  /// Points-to set of the base pointer of store/load-like statement node
  /// \p N (context-precise in expanded scope, merged otherwise; sorted).
  /// References the solver's memoized materialization — no per-call copy.
  const std::vector<IKId> &basePointsTo(SDGNodeId N) const;

  /// Points-to set of argument \p ArgIdx of call statement node \p N.
  const std::vector<IKId> &argPointsTo(SDGNodeId N, uint32_t ArgIdx) const;

  /// Constant map key of a MapPut/MapGet statement node (~0u if unknown).
  /// Answered from the run's ConstStringResult via the solver, so keys
  /// routed through helpers resolve under --string-analysis=ipa.
  Symbol constKeyOf(SDGNodeId N) const;

  /// True if the CS channel extension exceeded its budget.
  bool chanBudgetExceeded() const { return ChanOOM; }
  /// Total channel nodes created (CS cost metric).
  uint64_t numChanNodes() const { return ChanNodes; }

  /// Renders one node for debugging / the Figure 2 bench.
  std::string nodeToString(SDGNodeId N) const;

private:
  friend class SdgBuilder;
  /// Test-only corruption hooks (tests/verify_test.cpp): the self-
  /// verification tests must be able to break a built graph in place.
  friend class SdgTestPeer;
  /// Serialization (persist/Serialize.cpp) snapshots and restores the
  /// post-build state through the tag constructor below.
  friend struct persist::Access;

  /// Restore-path constructor: binds the live references and options but
  /// builds nothing; persist::Access fills the tables from a cache record.
  struct RestoreTag {};
  SDG(const Program &P, const PointsToSolver &Solver, SDGOptions Opts,
      RestoreTag)
      : P(P), Solver(Solver), Opts(std::move(Opts)) {}

  const std::vector<IKId> &valuePointsTo(SDGNodeId N, ValueId V) const;

  const Program &P;
  const PointsToSolver &Solver;
  SDGOptions Opts;

  /// One subgraph owner.
  struct OwnerInfo {
    MethodId M = InvalidId;
    /// Valid CG node in expanded scope; InvalidId in merged scope.
    CGNodeId CgNode = InvalidId;
  };
  std::vector<OwnerInfo> Owners;

  std::vector<SDGNode> Nodes;
  std::vector<std::vector<SDGEdge>> Succs;
  std::unordered_map<uint64_t, SDGNodeId> StmtMap; // (owner, stmt)
  std::unordered_map<uint64_t, SDGNodeId> FormalInMap;
  std::unordered_map<SDGOwnerId, SDGNodeId> FormalOutMap;
  std::unordered_map<SDGNodeId, CallSiteInfo> CallSites;
  std::unordered_map<uint64_t, SDGNodeId> ChanFormalInMap;
  std::unordered_map<uint64_t, SDGNodeId> ChanFormalOutMap;
  std::unordered_map<SDGOwnerId, std::vector<uint64_t>> OwnerChans;
  std::vector<SDGNodeId> Stores, Loads, Sinks;
  bool ChanOOM = false;
  uint64_t ChanNodes = 0;
};

/// Channel signatures for the CS extension (sdg/HeapChannels.cpp). Heap
/// dependencies are threaded as parameters keyed by abstract location:
/// (instance key, field) for object fields, (instance key) for array and
/// collection contents, (instance key, constant key) for dictionaries,
/// and the bare field for statics.
namespace chansig {
uint64_t field(FieldId F);
uint64_t staticField(FieldId F);
uint64_t array();
uint64_t map();
uint64_t mapKey(Symbol Key);
uint64_t coll();
/// Location-qualifies a class signature with an instance key.
uint64_t withIK(uint64_t ClassSig, IKId IK);
} // namespace chansig

/// Read/write channel signatures of one statement.
struct ChanAccess {
  std::vector<uint64_t> Reads;
  std::vector<uint64_t> Writes;
};

/// Classifies how instruction \p I (with resolved intrinsic callees for
/// calls) accesses the heap.
HeapAccess classifyAccess(const Program &P, const Instruction &I,
                          const std::vector<MethodId> &IntrinsicTargets);

/// The base-value SSA id of a store/load-like statement; NoValue if n/a.
ValueId heapBaseValue(const Instruction &I, HeapAccess A);

} // namespace taj

#endif // TAJ_SDG_SDG_H
