//===- pointsto/ContextPolicy.h - TAJ context-sensitivity policy -*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The custom context-sensitivity policy of TAJ §3.1:
///  - most methods: one level of object sensitivity (context = receiver
///    instance key);
///  - collection classes: unlimited-depth object sensitivity "up to
///    recursion" (heap contexts of allocations inside collection methods
///    keep the full receiver chain, bounded by a depth guard);
///  - library factory methods and taint-specific APIs: one level of
///    call-string context;
///  - static methods otherwise: context-insensitive.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_POINTSTO_CONTEXTPOLICY_H
#define TAJ_POINTSTO_CONTEXTPOLICY_H

#include "ir/Program.h"
#include "pointsto/Keys.h"

namespace taj {

class CallGraph;

/// Tunables for the context policy.
struct ContextPolicyOptions {
  /// Maximum receiver-chain depth before truncating to Everywhere (the
  /// "up to recursion" guard for unlimited-depth object sensitivity).
  uint32_t MaxCtxDepth = 8;
};

/// Selects callee contexts and heap contexts for the solver.
class ContextPolicy {
public:
  ContextPolicy(const Program &P, ContextTable &Ctxs, InstanceKeyTable &IKs,
                ContextPolicyOptions Opts = {})
      : P(P), Ctxs(Ctxs), IKs(IKs), Opts(Opts) {}

  /// Context for invoking \p Callee at call statement \p Site with receiver
  /// \p RecvIK (InvalidId for static calls).
  CtxId selectCalleeContext(const Method &Callee, StmtId Site, IKId RecvIK);

  /// Heap context for an allocation inside call-graph node context
  /// \p AllocCtx of method \p In. Collection methods clone their internal
  /// objects per receiver (full context); all other allocations use the
  /// plain allocation-site abstraction.
  CtxId heapContextForAlloc(const Method &In, CtxId AllocCtx);

private:
  const Program &P;
  ContextTable &Ctxs;
  InstanceKeyTable &IKs;
  ContextPolicyOptions Opts;
};

} // namespace taj

#endif // TAJ_POINTSTO_CONTEXTPOLICY_H
