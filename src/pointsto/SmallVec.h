//===- pointsto/SmallVec.h - Inline-storage vector for solver rows -*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal vector with inline storage for trivially copyable element
/// types, used for the solver's per-pointer-key rows (copy successors,
/// pending deltas, deferred uses). Those rows are numerous, short, and
/// torn down all at once with the solver, so keeping the first few
/// elements inline removes one heap allocation and one free per
/// populated row — the dominant allocator traffic of a solve.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_POINTSTO_SMALLVEC_H
#define TAJ_POINTSTO_SMALLVEC_H

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace taj {

/// Vector with \p N inline slots; \p T must be trivially copyable.
template <typename T, uint32_t N> class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec relocates with memcpy");

public:
  SmallVec() {}
  SmallVec(const SmallVec &O) { copyFrom(O); }
  SmallVec(SmallVec &&O) noexcept { moveFrom(O); }
  SmallVec &operator=(const SmallVec &O) {
    if (this != &O) {
      Size = 0;
      copyFrom(O);
    }
    return *this;
  }
  SmallVec &operator=(SmallVec &&O) noexcept {
    if (this != &O) {
      if (Ptr != inlineBuf())
        delete[] Ptr;
      moveFrom(O);
    }
    return *this;
  }
  ~SmallVec() {
    if (Ptr != inlineBuf())
      delete[] Ptr;
  }

  bool empty() const { return Size == 0; }
  uint32_t size() const { return Size; }
  void clear() { Size = 0; }

  T &operator[](uint32_t I) { return Ptr[I]; }
  const T &operator[](uint32_t I) const { return Ptr[I]; }

  T *begin() { return Ptr; }
  T *end() { return Ptr + Size; }
  const T *begin() const { return Ptr; }
  const T *end() const { return Ptr + Size; }

  void push_back(const T &V) {
    if (Size == Cap)
      grow(Size + 1);
    Ptr[Size++] = V;
  }

  void append(const T *First, const T *Last) {
    const uint32_t Add = uint32_t(Last - First);
    if (Size + Add > Cap)
      grow(Size + Add);
    std::memcpy(Ptr + Size, First, Add * sizeof(T));
    Size += Add;
  }

  void swap(SmallVec &O) noexcept {
    if (Ptr != inlineBuf() && O.Ptr != O.inlineBuf()) {
      // Both on the heap: a pure pointer swap, no element copies.
      T *P = Ptr;
      uint32_t S = Size, C = Cap;
      Ptr = O.Ptr;
      Size = O.Size;
      Cap = O.Cap;
      O.Ptr = P;
      O.Size = S;
      O.Cap = C;
      return;
    }
    SmallVec Tmp(static_cast<SmallVec &&>(O));
    O = static_cast<SmallVec &&>(*this);
    *this = static_cast<SmallVec &&>(Tmp);
  }

private:
  T *inlineBuf() { return reinterpret_cast<T *>(Inline); }
  const T *inlineBuf() const { return reinterpret_cast<const T *>(Inline); }

  void grow(uint32_t Need) {
    uint32_t NewCap = Cap * 2;
    if (NewCap < Need)
      NewCap = Need;
    T *NewPtr = new T[NewCap];
    std::memcpy(NewPtr, Ptr, Size * sizeof(T));
    if (Ptr != inlineBuf())
      delete[] Ptr;
    Ptr = NewPtr;
    Cap = NewCap;
  }

  void copyFrom(const SmallVec &O) {
    if (O.Size > Cap)
      grow(O.Size);
    std::memcpy(Ptr, O.Ptr, O.Size * sizeof(T));
    Size = O.Size;
  }

  void moveFrom(SmallVec &O) noexcept {
    if (O.Ptr != O.inlineBuf()) {
      Ptr = O.Ptr;
      Cap = O.Cap;
    } else {
      Ptr = inlineBuf();
      Cap = N;
      std::memcpy(Inline, O.Inline, O.Size * sizeof(T));
    }
    Size = O.Size;
    O.Ptr = O.inlineBuf();
    O.Cap = N;
    O.Size = 0;
  }

  T *Ptr = inlineBuf();
  uint32_t Size = 0;
  uint32_t Cap = N;
  alignas(T) unsigned char Inline[N * sizeof(T)];
};

} // namespace taj

#endif // TAJ_POINTSTO_SMALLVEC_H
