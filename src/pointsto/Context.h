//===- pointsto/Context.h - Interned analysis contexts ---------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Calling contexts for the context-sensitive pointer analysis (TAJ §3.1).
/// A context is Everywhere (context-insensitive), CallSite (1-level
/// call-string, used for library factories and taint APIs), or Receiver
/// (object sensitivity: the instance key of the receiver, which may itself
/// be heap-context-decorated, giving unlimited-depth object sensitivity for
/// collection classes).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_POINTSTO_CONTEXT_H
#define TAJ_POINTSTO_CONTEXT_H

#include "ir/Program.h"

#include <unordered_map>
#include <vector>

namespace taj {

/// Interned context id; 0 is always Everywhere.
using CtxId = uint32_t;
inline constexpr CtxId EverywhereCtx = 0;

/// Kind tag of a context.
enum class ContextKind : uint8_t {
  Everywhere, ///< No distinction.
  CallSite,   ///< Data = StmtId of the call (1-call-string).
  Receiver    ///< Data = IKId of the receiver object.
};

/// Payload of one interned context.
struct ContextData {
  ContextKind Kind = ContextKind::Everywhere;
  uint32_t Data = 0;
};

/// Interning table for contexts. Also memoizes context chain depth, used to
/// bound unlimited-depth object sensitivity "up to recursion".
class ContextTable {
public:
  ContextTable() {
    Contexts.push_back({ContextKind::Everywhere, 0});
    Depths.push_back(0);
  }

  /// Interns a CallSite context for call statement \p Site.
  CtxId callSite(uint32_t Site) {
    return intern({ContextKind::CallSite, Site}, 1);
  }

  /// Interns a Receiver context for instance key \p IK whose own heap
  /// context has depth \p HeapCtxDepth.
  CtxId receiver(uint32_t IK, uint32_t HeapCtxDepth) {
    return intern({ContextKind::Receiver, IK}, HeapCtxDepth + 1);
  }

  const ContextData &data(CtxId C) const { return Contexts[C]; }

  /// Length of the context chain (Everywhere = 0).
  uint32_t depth(CtxId C) const { return Depths[C]; }

  size_t size() const { return Contexts.size(); }

  void reserve(size_t N) {
    Contexts.reserve(N);
    Depths.reserve(N);
    Map.reserve(N);
  }

private:
  CtxId intern(ContextData D, uint32_t Depth) {
    uint64_t Key = (static_cast<uint64_t>(D.Kind) << 32) | D.Data;
    auto It = Map.find(Key);
    if (It != Map.end())
      return It->second;
    Contexts.push_back(D);
    Depths.push_back(Depth);
    CtxId Id = static_cast<CtxId>(Contexts.size() - 1);
    Map.emplace(Key, Id);
    return Id;
  }

  std::vector<ContextData> Contexts;
  std::vector<uint32_t> Depths;
  std::unordered_map<uint64_t, CtxId> Map;
};

} // namespace taj

#endif // TAJ_POINTSTO_CONTEXT_H
