//===- pointsto/Keys.h - Instance keys and pointer keys --------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract heap objects (instance keys) and abstract pointers (pointer
/// keys) of the Andersen-style pointer analysis, following the heap-graph
/// terminology of TAJ §4.1.1. Both are interned into dense ids.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_POINTSTO_KEYS_H
#define TAJ_POINTSTO_KEYS_H

#include "ir/Program.h"
#include "pointsto/Context.h"
#include "pointsto/SmallVec.h"

#include <vector>

namespace taj {

/// Dense instance-key id.
using IKId = uint32_t;
/// Dense pointer-key id.
using PKId = uint32_t;
/// Dense call-graph-node id ((method, context) pair).
using CGNodeId = uint32_t;

/// Kinds of abstract objects.
enum class IKKind : uint8_t {
  Alloc,     ///< New at Site under heap context Heap.
  Array,     ///< NewArray at Site; Cls is the element class.
  Synthetic, ///< Result of an intrinsic call at Site (source returns,
             ///< string transfers, caught exceptions, EJB create, ...).
  ClassObj,  ///< java.lang.Class-like object; Extra = represented ClassId.
  MethodObj, ///< java.lang.reflect.Method-like; Extra = MethodId.
  Singleton  ///< Global singleton (JNDI-bound bean); Extra = tag.
};

/// Payload of one instance key.
struct InstanceKeyData {
  IKKind Kind = IKKind::Alloc;
  /// Allocation/creation statement, or 0 for site-less keys.
  StmtId Site = 0;
  /// Heap context of the allocation (collection cloning, §3.1).
  CtxId Heap = EverywhereCtx;
  /// Dynamic class of the object (element class for arrays).
  ClassId Cls = InvalidId;
  /// Extra payload (ClassId for ClassObj, MethodId for MethodObj, tag for
  /// Singleton).
  uint32_t Extra = 0;
};

/// Kinds of abstract pointers.
enum class PKKind : uint8_t {
  Local,     ///< SSA value B of call-graph node A.
  Ret,       ///< Return value of call-graph node A.
  Field,     ///< Field B of instance key A.
  ArrayElem, ///< Array contents of instance key A.
  Static,    ///< Static field A.
  Channel    ///< Model channel (map/collection contents) B of instance A.
             ///< B is an interned symbol like "@map:user" or "@elem".
};

/// Payload of one pointer key.
struct PointerKeyData {
  PKKind Kind = PKKind::Local;
  uint32_t A = 0;
  uint32_t B = 0;
};

/// Open-addressed slot index over an external key vector: each slot holds
/// id + 1 (0 = empty), probing linearly over a power-of-two table. Interning
/// a key costs one probe chain and zero allocations (the node-per-entry
/// malloc of unordered_map was a measurable share of solver time).
class InternIndex {
public:
  /// Probes for the slot of the key hashing to \p H that satisfies
  /// \p IsMatch; returns the existing id, or InvalidId with \p Slot set to
  /// the insertion position.
  template <typename Pred>
  uint32_t find(uint64_t H, Pred IsMatch, size_t &Slot) const {
    size_t I = static_cast<size_t>(H) & Mask;
    while (true) {
      uint32_t S = Slots[I];
      if (S == 0) {
        Slot = I;
        return InvalidId;
      }
      if (IsMatch(S - 1))
        return S - 1;
      I = (I + 1) & Mask;
    }
  }

  /// True if an insert must call grow() (and re-probe) first.
  bool needsGrow() const { return (Filled + 1) * 3 >= Slots.size() * 2; }

  void insertAt(size_t Slot, uint32_t Id) {
    Slots[Slot] = Id + 1;
    ++Filled;
  }

  /// Rebuilds with at least \p MinIds capacity; \p HashOf maps an id to
  /// its hash.
  template <typename HashFn> void grow(size_t MinIds, HashFn HashOf) {
    size_t NewCap = Slots.size() * 2;
    while (NewCap * 2 < MinIds * 3 + 16)
      NewCap *= 2;
    std::vector<uint32_t> Old = std::move(Slots);
    Slots.assign(NewCap, 0);
    Mask = NewCap - 1;
    for (uint32_t S : Old) {
      if (S == 0)
        continue;
      size_t I = static_cast<size_t>(HashOf(S - 1)) & Mask;
      while (Slots[I] != 0)
        I = (I + 1) & Mask;
      Slots[I] = S;
    }
  }

private:
  std::vector<uint32_t> Slots = std::vector<uint32_t>(16, 0);
  size_t Mask = 15;
  size_t Filled = 0;
};

/// Interning table for instance keys.
class InstanceKeyTable {
public:
  IKId intern(const InstanceKeyData &D);
  const InstanceKeyData &data(IKId I) const { return Keys[I]; }
  size_t size() const { return Keys.size(); }
  void reserve(size_t N) {
    Keys.reserve(N);
    if (N > Keys.size())
      Index.grow(N, [this](uint32_t I) { return Hash{}(Keys[I]); });
  }

private:
  struct Hash {
    size_t operator()(const InstanceKeyData &D) const {
      uint64_t H = static_cast<uint64_t>(D.Kind);
      H = H * 0x9e3779b97f4a7c15ull + D.Site;
      H = H * 0x9e3779b97f4a7c15ull + D.Heap;
      H = H * 0x9e3779b97f4a7c15ull + D.Cls;
      H = H * 0x9e3779b97f4a7c15ull + D.Extra;
      return static_cast<size_t>(H);
    }
  };
  struct Eq {
    bool operator()(const InstanceKeyData &X, const InstanceKeyData &Y) const {
      return X.Kind == Y.Kind && X.Site == Y.Site && X.Heap == Y.Heap &&
             X.Cls == Y.Cls && X.Extra == Y.Extra;
    }
  };
  std::vector<InstanceKeyData> Keys;
  InternIndex Index;
};

/// Interning table for pointer keys.
class PointerKeyTable {
public:
  PKId intern(const PointerKeyData &D);
  const PointerKeyData &data(PKId I) const { return Keys[I]; }
  size_t size() const { return Keys.size(); }
  void reserve(size_t N) {
    Keys.reserve(N);
    if (N > Keys.size())
      Index.grow(N, [this](uint32_t I) { return Hash{}(Keys[I]); });
  }

  /// Read-only lookup: the id of \p D if it was ever interned, InvalidId
  /// otherwise. Never mutates the table, so it is safe on post-solve read
  /// paths (and from concurrent slicing workers).
  PKId lookup(const PointerKeyData &D) const {
    size_t Slot;
    return Index.find(Hash{}(D),
                      [&](uint32_t I) { return Eq{}(Keys[I], D); }, Slot);
  }
  PKId localLookup(CGNodeId N, ValueId V) const {
    if (N < LocalFast.size()) {
      const SmallVec<PKId, 8> &Row = LocalFast[N];
      if (static_cast<uint32_t>(V) < Row.size() && Row[V] != InvalidId)
        return Row[V];
    }
    return lookup({PKKind::Local, N, static_cast<uint32_t>(V)});
  }

  /// local() and ret() dominate interning on the constraint-generation hot
  /// path, so both are answered from dense direct-mapped caches when the
  /// key has been seen; the hashed intern runs only on first touch. Keys
  /// interned without going through these helpers (the persist restore
  /// path) simply miss the cache and fall back to the hash map.
  PKId local(CGNodeId N, ValueId V) {
    if (N < LocalFast.size()) {
      const SmallVec<PKId, 8> &Row = LocalFast[N];
      if (static_cast<uint32_t>(V) < Row.size() && Row[V] != InvalidId)
        return Row[V];
    }
    PKId Id = intern({PKKind::Local, N, static_cast<uint32_t>(V)});
    if (N >= LocalFast.size())
      LocalFast.resize(N + 1);
    SmallVec<PKId, 8> &Row = LocalFast[N];
    while (Row.size() <= static_cast<uint32_t>(V))
      Row.push_back(InvalidId);
    Row[V] = Id;
    return Id;
  }
  PKId ret(CGNodeId N) {
    if (N < RetFast.size() && RetFast[N] != InvalidId)
      return RetFast[N];
    PKId Id = intern({PKKind::Ret, N, 0});
    if (N >= RetFast.size())
      RetFast.resize(N + 1, InvalidId);
    RetFast[N] = Id;
    return Id;
  }
  PKId field(IKId I, FieldId F) { return intern({PKKind::Field, I, F}); }
  PKId arrayElem(IKId I) { return intern({PKKind::ArrayElem, I, 0}); }
  PKId staticField(FieldId F) { return intern({PKKind::Static, F, 0}); }
  PKId channel(IKId I, Symbol Chan) {
    return intern({PKKind::Channel, I, Chan});
  }

private:
  struct Hash {
    size_t operator()(const PointerKeyData &D) const {
      uint64_t H = static_cast<uint64_t>(D.Kind);
      H = H * 0x9e3779b97f4a7c15ull + D.A;
      H = H * 0x9e3779b97f4a7c15ull + D.B;
      return static_cast<size_t>(H);
    }
  };
  struct Eq {
    bool operator()(const PointerKeyData &X, const PointerKeyData &Y) const {
      return X.Kind == Y.Kind && X.A == Y.A && X.B == Y.B;
    }
  };
  std::vector<PointerKeyData> Keys;
  InternIndex Index;
  /// Direct-mapped caches for the two hottest key shapes; InvalidId marks
  /// an empty slot. Purely an accelerator over the index — never
  /// authoritative for absence.
  std::vector<SmallVec<PKId, 8>> LocalFast;
  std::vector<PKId> RetFast;
};

} // namespace taj

#endif // TAJ_POINTSTO_KEYS_H
