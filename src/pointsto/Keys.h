//===- pointsto/Keys.h - Instance keys and pointer keys --------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract heap objects (instance keys) and abstract pointers (pointer
/// keys) of the Andersen-style pointer analysis, following the heap-graph
/// terminology of TAJ §4.1.1. Both are interned into dense ids.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_POINTSTO_KEYS_H
#define TAJ_POINTSTO_KEYS_H

#include "ir/Program.h"
#include "pointsto/Context.h"

#include <unordered_map>
#include <vector>

namespace taj {

/// Dense instance-key id.
using IKId = uint32_t;
/// Dense pointer-key id.
using PKId = uint32_t;
/// Dense call-graph-node id ((method, context) pair).
using CGNodeId = uint32_t;

/// Kinds of abstract objects.
enum class IKKind : uint8_t {
  Alloc,     ///< New at Site under heap context Heap.
  Array,     ///< NewArray at Site; Cls is the element class.
  Synthetic, ///< Result of an intrinsic call at Site (source returns,
             ///< string transfers, caught exceptions, EJB create, ...).
  ClassObj,  ///< java.lang.Class-like object; Extra = represented ClassId.
  MethodObj, ///< java.lang.reflect.Method-like; Extra = MethodId.
  Singleton  ///< Global singleton (JNDI-bound bean); Extra = tag.
};

/// Payload of one instance key.
struct InstanceKeyData {
  IKKind Kind = IKKind::Alloc;
  /// Allocation/creation statement, or 0 for site-less keys.
  StmtId Site = 0;
  /// Heap context of the allocation (collection cloning, §3.1).
  CtxId Heap = EverywhereCtx;
  /// Dynamic class of the object (element class for arrays).
  ClassId Cls = InvalidId;
  /// Extra payload (ClassId for ClassObj, MethodId for MethodObj, tag for
  /// Singleton).
  uint32_t Extra = 0;
};

/// Kinds of abstract pointers.
enum class PKKind : uint8_t {
  Local,     ///< SSA value B of call-graph node A.
  Ret,       ///< Return value of call-graph node A.
  Field,     ///< Field B of instance key A.
  ArrayElem, ///< Array contents of instance key A.
  Static,    ///< Static field A.
  Channel    ///< Model channel (map/collection contents) B of instance A.
             ///< B is an interned symbol like "@map:user" or "@elem".
};

/// Payload of one pointer key.
struct PointerKeyData {
  PKKind Kind = PKKind::Local;
  uint32_t A = 0;
  uint32_t B = 0;
};

/// Interning table for instance keys.
class InstanceKeyTable {
public:
  IKId intern(const InstanceKeyData &D);
  const InstanceKeyData &data(IKId I) const { return Keys[I]; }
  size_t size() const { return Keys.size(); }
  void reserve(size_t N) {
    Keys.reserve(N);
    Map.reserve(N);
  }

private:
  struct Hash {
    size_t operator()(const InstanceKeyData &D) const {
      uint64_t H = static_cast<uint64_t>(D.Kind);
      H = H * 0x9e3779b97f4a7c15ull + D.Site;
      H = H * 0x9e3779b97f4a7c15ull + D.Heap;
      H = H * 0x9e3779b97f4a7c15ull + D.Cls;
      H = H * 0x9e3779b97f4a7c15ull + D.Extra;
      return static_cast<size_t>(H);
    }
  };
  struct Eq {
    bool operator()(const InstanceKeyData &X, const InstanceKeyData &Y) const {
      return X.Kind == Y.Kind && X.Site == Y.Site && X.Heap == Y.Heap &&
             X.Cls == Y.Cls && X.Extra == Y.Extra;
    }
  };
  std::vector<InstanceKeyData> Keys;
  std::unordered_map<InstanceKeyData, IKId, Hash, Eq> Map;
};

/// Interning table for pointer keys.
class PointerKeyTable {
public:
  PKId intern(const PointerKeyData &D);
  const PointerKeyData &data(PKId I) const { return Keys[I]; }
  size_t size() const { return Keys.size(); }
  void reserve(size_t N) {
    Keys.reserve(N);
    Map.reserve(N);
  }

  /// Read-only lookup: the id of \p D if it was ever interned, InvalidId
  /// otherwise. Never mutates the table, so it is safe on post-solve read
  /// paths (and from concurrent slicing workers).
  PKId lookup(const PointerKeyData &D) const {
    auto It = Map.find(D);
    return It == Map.end() ? InvalidId : It->second;
  }
  PKId localLookup(CGNodeId N, ValueId V) const {
    return lookup({PKKind::Local, N, static_cast<uint32_t>(V)});
  }

  PKId local(CGNodeId N, ValueId V) {
    return intern({PKKind::Local, N, static_cast<uint32_t>(V)});
  }
  PKId ret(CGNodeId N) { return intern({PKKind::Ret, N, 0}); }
  PKId field(IKId I, FieldId F) { return intern({PKKind::Field, I, F}); }
  PKId arrayElem(IKId I) { return intern({PKKind::ArrayElem, I, 0}); }
  PKId staticField(FieldId F) { return intern({PKKind::Static, F, 0}); }
  PKId channel(IKId I, Symbol Chan) {
    return intern({PKKind::Channel, I, Chan});
  }

private:
  struct Hash {
    size_t operator()(const PointerKeyData &D) const {
      uint64_t H = static_cast<uint64_t>(D.Kind);
      H = H * 0x9e3779b97f4a7c15ull + D.A;
      H = H * 0x9e3779b97f4a7c15ull + D.B;
      return static_cast<size_t>(H);
    }
  };
  struct Eq {
    bool operator()(const PointerKeyData &X, const PointerKeyData &Y) const {
      return X.Kind == Y.Kind && X.A == Y.A && X.B == Y.B;
    }
  };
  std::vector<PointerKeyData> Keys;
  std::unordered_map<PointerKeyData, PKId, Hash, Eq> Map;
};

} // namespace taj

#endif // TAJ_POINTSTO_KEYS_H
