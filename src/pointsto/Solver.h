//===- pointsto/Solver.h - Andersen-style pointer analysis -----*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first phase of TAJ (§3.1): a field-sensitive, context-sensitive
/// variant of Andersen's analysis with on-the-fly call-graph construction.
/// The solver alternates constraint adding (one pending (method, context)
/// node at a time, ordered by the §6.1 priority policy or chaotically) with
/// constraint solving to fixpoint, optionally under a call-graph node
/// budget, in which case the result is deliberately underapproximate.
///
/// Synthetic models (§4.2) are applied inline: calls that resolve to
/// intrinsic methods never create call-graph nodes; instead hand-written
/// transfer functions cover string carriers, dictionaries with constant
/// keys, reflection, Thread.start, JNDI/EJB lookups and taint APIs.
///
/// Points-to sets are chunked sparse bitmaps (pointsto/BitSet.h); the copy
/// graph runs online cycle elimination (lazy cycle detection + union-find
/// collapse), so queries resolve original PKIds through a representative
/// mapping. See DESIGN.md "Solver internals".
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_POINTSTO_SOLVER_H
#define TAJ_POINTSTO_SOLVER_H

#include "callgraph/CallGraph.h"
#include "cha/ClassHierarchy.h"
#include "ir/Program.h"
#include "pointsto/BitSet.h"
#include "pointsto/Context.h"
#include "pointsto/SmallVec.h"
#include "pointsto/ContextPolicy.h"
#include "pointsto/Keys.h"
#include "support/Stats.h"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace taj {

class RunGuard;
class ConstStringResult;

namespace persist {
struct Access;
}

/// Configuration of one pointer-analysis run.
struct PointsToOptions {
  /// Optional run-governance guard (deadline/memory/cancellation); the
  /// solver polls it per processed node and per propagation step. Not
  /// owned.
  RunGuard *Guard = nullptr;
  /// Use the §6.1 priority-driven constraint-adding order (vs chaotic).
  bool Prioritized = false;
  /// Call-graph node budget; 0 = unbounded.
  uint32_t MaxCallGraphNodes = 0;
  /// Exclude whitelisted (benign) classes entirely (§4.2.1 code reduction).
  bool ExcludeWhitelisted = false;
  /// Online cycle elimination in the copy graph. Results are identical
  /// either way; the toggle exists for A/B validation and as an escape
  /// hatch (env TAJ_CYCLE_ELIM=0 overrides).
  bool CycleElim = true;
  /// Context policy tunables.
  ContextPolicyOptions Policy;
  /// JNDI name -> bean class bindings from the deployment descriptor
  /// (§4.2.2); consumed by the JndiLookup intrinsic.
  std::unordered_map<std::string, ClassId> JndiBindings;
  /// EJB home class -> bean implementation class (deployment descriptor).
  std::unordered_map<ClassId, ClassId> EjbHomeToBean;
  /// Precomputed string-constant facts (dataflow/ConstString.h) consumed
  /// by the dictionary and reflection models. Not owned; when null the
  /// solver computes its own local-mode result (historical behavior for
  /// directly constructed solvers).
  const ConstStringResult *ConstStrings = nullptr;
};

/// Result-bearing pointer analysis. Construct, then call solve() once.
class PointsToSolver {
public:
  PointsToSolver(const Program &P, const ClassHierarchy &CHA,
                 PointsToOptions Opts = {});
  ~PointsToSolver();
  PointsToSolver(const PointsToSolver &) = delete;
  PointsToSolver &operator=(const PointsToSolver &) = delete;

  /// Runs the analysis from the given entry methods (each analyzed in the
  /// Everywhere context; normally a single synthesized root).
  void solve(const std::vector<MethodId> &Entries);

  //===--------------------------------------------------------------------===//
  // Results
  //===--------------------------------------------------------------------===//

  const CallGraph &callGraph() const { return CG; }
  const ContextTable &contexts() const { return Ctxs; }
  const InstanceKeyTable &instanceKeys() const { return IKs; }
  PointerKeyTable &pointerKeys() { return PKs; }
  const PointerKeyTable &pointerKeys() const { return PKs; }

  /// Points-to set of \p PK; iteration yields ascending IKIds. Resolves
  /// \p PK through the cycle-collapse representative mapping.
  const SparseBitSet &pointsTo(PKId PK) const;

  /// Union of pointsTo over every context of method \p M for value \p V —
  /// the flow-insensitive projection used for HSDG direct edges. Memoized
  /// per (method, value); safe for concurrent readers post-solve.
  const std::vector<IKId> &pointsToMerged(MethodId M, ValueId V) const;

  /// Points-to set of value \p V in call-graph node \p N (context-precise).
  /// Memoized per (node, value); safe for concurrent readers post-solve.
  const std::vector<IKId> &pointsToOfLocal(CGNodeId N, ValueId V) const;

  /// True if any context of \p M had its constraints added (statements of
  /// unprocessed methods are invisible to the slicers).
  bool isMethodProcessed(MethodId M) const;

  /// Targets of intrinsic (model) calls, keyed by call statement. These
  /// calls have no call-graph edges; the SDG needs the callee identity to
  /// classify sources/sinks/sanitizers.
  const std::vector<MethodId> &intrinsicCalleesAt(StmtId Site) const;

  /// Constant string defined by SSA value \p V of method \p M, or ~0u.
  /// Answers from PointsToOptions::ConstStrings (or the solver's own
  /// local-mode fallback result when none was supplied).
  Symbol constStringOf(MethodId M, ValueId V) const;

  /// True if the node budget was hit (the result is underapproximate).
  bool budgetExhausted() const { return BudgetHit; }

  const Stats &stats() const { return Counters; }

  /// All interned channel pointer keys of instance \p IK (map/collection
  /// contents), for heap-graph construction.
  const std::vector<PKId> &channelsOf(IKId IK) const;

private:
  //===--------------------------------------------------------------------===//
  // Internal machinery
  //===--------------------------------------------------------------------===//

  friend class SolverTestPeer;
  /// Serialization (persist/Serialize.cpp) snapshots and restores the
  /// post-solve query surface.
  friend struct persist::Access;

  // Deferred constraints attached to a pointer key.
  struct LoadUse {
    enum Kind : uint8_t { Field, Array, ChanConst, ChanWild } K;
    uint32_t FieldOrChan; // FieldId or channel Symbol
    PKId Dst;
  };
  struct StoreUse {
    enum Kind : uint8_t { Field, Array, Chan } K;
    uint32_t FieldOrChan;
    PKId Src;
  };
  struct CallUse {
    CGNodeId Caller;
    StmtId Site;
    const Instruction *I;
    /// Exact target for Special calls; InvalidId = CHA dispatch.
    MethodId Exact;
  };
  struct InvokeSite {
    CGNodeId Caller = 0;
    StmtId Site = 0;
    const Instruction *I = nullptr;
    std::vector<CGNodeId> Targets;
    std::vector<IKId> ArgArrays;
  };

  CGNodeId ensureNode(MethodId M, CtxId Ctx);
  void addConstraints(CGNodeId N);
  void propagate();

  /// Union-find over pointer keys (cycle collapse). find() applies path
  /// halving; findConst() is read-only for const queries (post-solve the
  /// mapping is fully compressed, so it resolves in one step).
  PKId find(PKId PK);
  PKId findConst(PKId PK) const;

  bool insertPointsTo(PKId PK, IKId IK);
  /// insertPointsTo for an already-resolved representative.
  bool insertResolved(PKId PK, IKId IK);
  void enqueue(PKId PK);
  void addCopyEdge(PKId From, PKId To);
  /// Bulk-unions Pts[From] into Pts[To] (both representatives), queueing
  /// the new members in ascending order.
  void unionInto(PKId From, PKId To);
  /// Brings every per-PK table up to PKs.size(). Called from the hot loops
  /// after anything that may intern a key; the common no-op case must stay
  /// a two-load inline check.
  void growTables() {
    if (Pts.size() < PKs.size())
      growTablesSlow();
  }
  void growTablesSlow();

  /// Lazy cycle detection: propagation along Rep->T produced no change.
  /// Probes (once per edge) for a copy-graph cycle through \p T back to
  /// \p Rep; on success collapses the cycle onto \p Rep.
  void maybeCollapse(PKId Rep, PKId T);
  bool cycleDfs(PKId Cur, PKId Goal, uint32_t &Budget,
                std::vector<PKId> &Path, std::vector<PKId> &Visited);
  void collapseCycle(PKId Rep, std::vector<PKId> &Members);
  void mergeInto(PKId Rep, PKId M);

  PKId channelKey(IKId Base, Symbol Chan);
  PKId channelFieldOrPlain(IKId IK, const LoadUse &LU);
  void handleNewPointsTo(PKId PK, IKId IK);
  void registerLoadUse(PKId Base, LoadUse LU);
  void registerStoreUse(PKId Base, StoreUse SU);
  void registerCallUse(PKId Recv, CallUse CU);
  void dispatchCall(const CallUse &CU, IKId RecvIK);
  void dispatchResolved(CGNodeId Caller, StmtId Site, const Instruction &I,
                        MethodId Callee, IKId RecvIK);
  void bindCall(CGNodeId Caller, StmtId Site, const Instruction &I,
                MethodId Callee, CtxId CalleeCtx, IKId RecvIK);
  void applyIntrinsic(CGNodeId Caller, StmtId Site, const Instruction &I,
                      const Method &Callee, IKId RecvIK);
  void invokeBind(InvokeSite &IS, CGNodeId Target);
  void invokeBindArray(InvokeSite &IS, CGNodeId Target, IKId ArrIK);

  IKId syntheticIK(StmtId Site, ClassId Cls);
  Symbol mapChannel(CGNodeId Caller, const Instruction &I, size_t KeyArg);
  void noteUnresolvedReflection(CGNodeId Caller, StmtId Site);
  Symbol internSym(std::string_view S) const;

  const Program &P;
  const ClassHierarchy &CHA;
  PointsToOptions Opts;

  ContextTable Ctxs;
  InstanceKeyTable IKs;
  PointerKeyTable PKs;
  CallGraph CG;
  ContextPolicy Policy;
  /// Mutable so the memoized const query surface can report cache hits.
  mutable Stats Counters;
  /// Pre-resolved handles for per-tuple / per-node hot-loop counters, so
  /// the propagation loop never pays a string-keyed map lookup.
  Stats::Handle HPtsEntries = 0;
  Stats::Handle HCgNodes = 0;
  Stats::Handle HCgProcessed = 0;
  Stats::Handle HMapKeysResolved = 0;
  Stats::Handle HReflResolved = 0;
  Stats::Handle HReflUnresolved = 0;
  Stats::Handle HCyclesCollapsed = 0;
  Stats::Handle HNodesMerged = 0;
  Stats::Handle HMergedCacheHits = 0;
  /// Per-site reflection counter handles, built once per (method, stmt).
  std::unordered_map<uint64_t, Stats::Handle> ReflSiteHandles;
  bool BudgetHit = false;
  bool Solved = false;
  /// Effective cycle-elimination switch (Opts.CycleElim after the
  /// TAJ_CYCLE_ELIM env override).
  bool CycleElim = true;

  // Per-PK state (indexed by PKId; grown lazily). Pts/CopySuccs/uses are
  // representative-indexed once cycles collapse; non-representative slots
  // are drained empty by mergeInto.
  std::vector<SparseBitSet> Pts;
  std::vector<SmallVec<PKId, 4>> CopySuccs;
  /// Per-source successor membership (replaces the old global EdgeDedup
  /// hash set).
  std::vector<SparseBitSet> SuccSet;
  std::vector<SmallVec<LoadUse, 2>> LoadUses;
  std::vector<SmallVec<StoreUse, 2>> StoreUses;
  std::vector<SmallVec<CallUse, 1>> CallUses;
  /// Pending new members per representative. Deliberately an arrival-order
  /// list, not a bitmap: the event order downstream (first dispatch of a
  /// call site, SiteCallees order) must match the historical engine so CLI
  /// output stays byte-identical.
  std::vector<SmallVec<IKId, 4>> Delta;
  std::vector<bool> OnWorklist;
  std::vector<PKId> Worklist;
  /// Union-find parent; RepParent[PK] == PK for representatives.
  std::vector<PKId> RepParent;
  /// Copy edges already probed by lazy cycle detection (one probe each).
  std::unordered_set<uint64_t> ProbedEdges;
  /// Reused buffers: bulk-union output and register*Use snapshots. Not
  /// re-entrant; see the comments at their uses.
  std::vector<IKId> NewBitsScratch;
  std::vector<IKId> SnapScratch;
  /// propagate()'s pop buffer, swapped with Delta[PK] so buffer capacity
  /// recycles across pops instead of being freed per worklist entry.
  SmallVec<IKId, 4> MovedScratch;

  // Model channel bookkeeping.
  std::unordered_map<IKId, std::vector<PKId>> Channels;
  std::unordered_map<IKId, std::vector<PKId>> WildcardReaders;

  // Reflective invoke state; (PK role) registrations point here. Keys are
  // representatives; mergeInto migrates them on collapse.
  std::vector<InvokeSite> Invokes;
  std::unordered_map<uint64_t, uint32_t> InvokeIndex; // (caller,site) -> idx
  std::unordered_map<PKId, std::vector<uint32_t>> InvokeByMethodPK;
  std::unordered_map<PKId, std::vector<uint32_t>> InvokeByArrayPK;

  // Cached program entities.
  ClassId StringClass = InvalidId;
  ClassId ExceptionClass = InvalidId;
  Symbol WildChan = 0;
  Symbol ElemChan = 0;
  Symbol RunSym = 0;

  std::unordered_map<StmtId, std::vector<MethodId>> IntrinsicCallees;
  /// Fallback string-constant facts, computed in the constructor when
  /// PointsToOptions::ConstStrings is absent.
  std::unique_ptr<ConstStringResult> OwnedConstStr;

  /// Memoized query-surface materializations (tentpole change 3): SDG and
  /// heap-edge construction ask for the same (method, value) / (node,
  /// value) sets once per referencing statement.
  mutable std::mutex CacheMu;
  mutable std::unordered_map<uint64_t, std::vector<IKId>> MergedCache;
  mutable std::unordered_map<uint64_t, std::vector<IKId>> LocalCache;

  class PriorityManager *Prio = nullptr; // owned
};

} // namespace taj

#endif // TAJ_POINTSTO_SOLVER_H
