//===- pointsto/Solver.cpp -------------------------------------*- C++ -*-===//

#include "pointsto/Solver.h"
#include "dataflow/ConstString.h"
#include "pointsto/Priority.h"
#include "support/RunGuard.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace taj;

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

PointsToSolver::PointsToSolver(const Program &P, const ClassHierarchy &CHA,
                               PointsToOptions Opts)
    : P(P), CHA(CHA), Opts(std::move(Opts)), Policy(P, Ctxs, IKs,
                                                    this->Opts.Policy) {
  Prio = new PriorityManager(P, CG, this->Opts.Prioritized);
  HPtsEntries = Counters.handle("pts.entries");
  HCgNodes = Counters.handle("cg.nodes");
  HCgProcessed = Counters.handle("cg.processed");
  HMapKeysResolved = Counters.handle("conststr.map_keys_resolved");
  HReflResolved = Counters.handle("conststr.reflective_resolved");
  HReflUnresolved = Counters.handle("reflection.unresolved");
  HCyclesCollapsed = Counters.handle("pts.cycles_collapsed");
  HNodesMerged = Counters.handle("pts.nodes_merged");
  HMergedCacheHits = Counters.handle("pts.merged_cache_hits");
  CycleElim = this->Opts.CycleElim;
  if (const char *E = std::getenv("TAJ_CYCLE_ELIM"))
    CycleElim = !(E[0] == '0' && E[1] == '\0');
  // Pre-size the interning tables from the program size: pointer keys run
  // a small multiple of the statement count across contexts, and seeding
  // the hash maps here avoids the rehash cascade through every power of
  // two on the way up.
  PKs.reserve(size_t(P.numStmts()) * 2 + 256);
  IKs.reserve(size_t(P.numStmts()) / 2 + 64);
  StringClass = P.findClass("String");
  ExceptionClass = P.findClass("Exception");
  WildChan = internSym("@map:*");
  ElemChan = internSym("@elem");
  RunSym = internSym("run");
  if (!this->Opts.ConstStrings) {
    // No precomputed facts (directly constructed solver): fall back to
    // the historical per-method ConstStr+Copy inference. Computed eagerly
    // so post-solve queries stay safe from any thread.
    ConstStringOptions CSO;
    CSO.Mode = StringAnalysisMode::Local;
    OwnedConstStr = std::make_unique<ConstStringResult>(
        analyzeConstStrings(P, CHA, CSO));
  }
}

PointsToSolver::~PointsToSolver() { delete Prio; }

Symbol PointsToSolver::internSym(std::string_view S) const {
  // Interning into the shared pool is the only mutation the solver performs
  // on the program; it is semantically benign (symbols are append-only).
  return const_cast<Program &>(P).Pool.intern(S);
}

//===----------------------------------------------------------------------===//
// Representative mapping (cycle collapse)
//===----------------------------------------------------------------------===//

PKId PointsToSolver::find(PKId PK) {
  if (PK >= RepParent.size())
    growTables();
  while (RepParent[PK] != PK) {
    RepParent[PK] = RepParent[RepParent[PK]]; // path halving
    PK = RepParent[PK];
  }
  return PK;
}

PKId PointsToSolver::findConst(PKId PK) const {
  // Post-solve the mapping is fully compressed (solve()'s epilogue), so
  // this loop runs at most one step on the query surface.
  while (PK < RepParent.size() && RepParent[PK] != PK)
    PK = RepParent[PK];
  return PK;
}

//===----------------------------------------------------------------------===//
// Query surface
//===----------------------------------------------------------------------===//

const SparseBitSet &PointsToSolver::pointsTo(PKId PK) const {
  static const SparseBitSet Empty;
  if (PK >= Pts.size())
    return Empty;
  return Pts[findConst(PK)];
}

const std::vector<IKId> &PointsToSolver::pointsToOfLocal(CGNodeId N,
                                                         ValueId V) const {
  // Read-only lookup: a key never interned during solving has an empty
  // set, so nothing is created on this post-solve path.
  const uint64_t Key =
      (static_cast<uint64_t>(N) << 32) | static_cast<uint32_t>(V);
  std::lock_guard<std::mutex> Lock(CacheMu);
  auto It = LocalCache.find(Key);
  if (It != LocalCache.end())
    return It->second;
  std::vector<IKId> Out;
  const SparseBitSet &Set = pointsTo(PKs.localLookup(N, V));
  Out.reserve(Set.count());
  Set.appendTo(Out);
  return LocalCache.emplace(Key, std::move(Out)).first->second;
}

const std::vector<IKId> &PointsToSolver::pointsToMerged(MethodId M,
                                                        ValueId V) const {
  const uint64_t Key =
      (static_cast<uint64_t>(M) << 32) | static_cast<uint32_t>(V);
  std::lock_guard<std::mutex> Lock(CacheMu);
  auto It = MergedCache.find(Key);
  if (It != MergedCache.end()) {
    Counters.addTo(HMergedCacheHits);
    return It->second;
  }
  std::vector<IKId> Out;
  for (CGNodeId N : CG.nodesOf(M))
    pointsTo(PKs.localLookup(N, V)).appendTo(Out);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return MergedCache.emplace(Key, std::move(Out)).first->second;
}

//===----------------------------------------------------------------------===//
// Basic lattice operations
//===----------------------------------------------------------------------===//

void PointsToSolver::growTablesSlow() {
  // Keys intern one at a time, so pad the growth: the inline growTables()
  // check stays false until the tables are genuinely outgrown, and this
  // slow path (eight vector resizes) runs O(log N) times per solve
  // instead of once per interned key. Slots beyond PKs.size() are empty
  // and self-representative, which every consumer tolerates.
  size_t N = PKs.size() + PKs.size() / 2 + 64;
  if (Pts.capacity() == 0) {
    // First growth: reserve to the same program-size estimate the key
    // tables use, so the steady intern stream reallocates these eight
    // tables a couple of times instead of once per doubling.
    size_t Hint = size_t(P.numStmts()) * 2 + 256;
    if (Hint > N) {
      Pts.reserve(Hint);
      CopySuccs.reserve(Hint);
      SuccSet.reserve(Hint);
      LoadUses.reserve(Hint);
      StoreUses.reserve(Hint);
      CallUses.reserve(Hint);
      Delta.reserve(Hint);
      OnWorklist.reserve(Hint);
      RepParent.reserve(Hint);
    }
  }
  Pts.resize(N);
  CopySuccs.resize(N);
  SuccSet.resize(N);
  LoadUses.resize(N);
  StoreUses.resize(N);
  CallUses.resize(N);
  Delta.resize(N);
  OnWorklist.resize(N, false);
  size_t Old = RepParent.size();
  RepParent.resize(N);
  for (size_t I = Old; I < N; ++I)
    RepParent[I] = static_cast<PKId>(I);
}

void PointsToSolver::enqueue(PKId PK) {
  if (!OnWorklist[PK]) {
    OnWorklist[PK] = true;
    Worklist.push_back(PK);
  }
}

bool PointsToSolver::insertResolved(PKId PK, IKId IK) {
  if (!Pts[PK].insert(IK))
    return false;
  Counters.addTo(HPtsEntries);
  Delta[PK].push_back(IK);
  enqueue(PK);
  return true;
}

bool PointsToSolver::insertPointsTo(PKId PK, IKId IK) {
  growTables();
  return insertResolved(find(PK), IK);
}

void PointsToSolver::unionInto(PKId From, PKId To) {
  // NewBitsScratch is exclusively this function's: nothing downstream of
  // the unionWith (counter bump, delta append, enqueue) can re-enter here.
  NewBitsScratch.clear();
  if (!Pts[To].unionWith(Pts[From], NewBitsScratch))
    return;
  Counters.addTo(HPtsEntries, NewBitsScratch.size());
  // Ascending append — the same delta order the old engine produced by
  // copying the sorted source set and inserting element-wise.
  Delta[To].append(NewBitsScratch.data(),
                   NewBitsScratch.data() + NewBitsScratch.size());
  enqueue(To);
}

void PointsToSolver::addCopyEdge(PKId From, PKId To) {
  growTables();
  From = find(From);
  To = find(To);
  if (From == To)
    return;
  if (!SuccSet[From].insert(To))
    return;
  CopySuccs[From].push_back(To);
  // Propagate the current set immediately (in place; the union never
  // touches Pts[From] since From != To).
  unionInto(From, To);
}

PKId PointsToSolver::channelKey(IKId Base, Symbol Chan) {
  size_t Before = PKs.size();
  PKId PK = PKs.channel(Base, Chan);
  if (PKs.size() > Before) {
    growTables();
    Channels[Base].push_back(PK);
    // Wire up any wildcard readers already registered on this instance.
    auto It = WildcardReaders.find(Base);
    if (It != WildcardReaders.end())
      for (PKId Reader : It->second)
        addCopyEdge(PK, Reader);
  }
  return PK;
}

const std::vector<PKId> &PointsToSolver::channelsOf(IKId IK) const {
  static const std::vector<PKId> Empty;
  auto It = Channels.find(IK);
  return It == Channels.end() ? Empty : It->second;
}

IKId PointsToSolver::syntheticIK(StmtId Site, ClassId Cls) {
  InstanceKeyData D;
  D.Kind = IKKind::Synthetic;
  D.Site = Site;
  D.Cls = Cls;
  return IKs.intern(D);
}

//===----------------------------------------------------------------------===//
// Constant-string tracking (for dictionary keys and reflection, §4.2)
//===----------------------------------------------------------------------===//

Symbol PointsToSolver::constStringOf(MethodId M, ValueId V) const {
  const ConstStringResult *CS =
      Opts.ConstStrings ? Opts.ConstStrings : OwnedConstStr.get();
  return CS ? CS->valueOf(M, V) : ~0u;
}

Symbol PointsToSolver::mapChannel(CGNodeId Caller, const Instruction &I,
                                  size_t KeyArg) {
  if (KeyArg >= I.Args.size())
    return WildChan;
  Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[KeyArg]);
  if (Lit == ~0u)
    return WildChan;
  Counters.addTo(HMapKeysResolved);
  std::string Name = "@map:";
  Name += P.Pool.str(Lit);
  return internSym(Name);
}

/// Records one unresolved reflective call site (§4.2.3) both as the
/// aggregate reflection.unresolved counter and as a per-site key
/// ("reflection.unresolved_site.<Class.method>#<stmt>") surfaced through
/// --stats-json, so users can see which sites the analysis gave up on.
/// The aggregate goes through a pre-resolved handle and the per-site key
/// string is built only once per (method, stmt); repeat hits pay two
/// array increments, not two string-keyed map lookups.
void PointsToSolver::noteUnresolvedReflection(CGNodeId Caller, StmtId Site) {
  Counters.addTo(HReflUnresolved);
  const MethodId M = CG.node(Caller).M;
  const uint64_t Key = (static_cast<uint64_t>(M) << 32) | Site;
  auto It = ReflSiteHandles.find(Key);
  if (It == ReflSiteHandles.end()) {
    Stats::Handle H =
        Counters.handle("reflection.unresolved_site." + P.methodName(M) +
                        "#" + std::to_string(Site));
    It = ReflSiteHandles.emplace(Key, H).first;
  }
  Counters.addTo(It->second);
}

//===----------------------------------------------------------------------===//
// Node management
//===----------------------------------------------------------------------===//

CGNodeId PointsToSolver::ensureNode(MethodId M, CtxId Ctx) {
  bool IsNew = false;
  CGNodeId N = CG.ensureNode(M, Ctx, IsNew);
  if (IsNew) {
    Counters.addTo(HCgNodes);
    Prio->onNodeCreated(N);
  }
  return N;
}

bool PointsToSolver::isMethodProcessed(MethodId M) const {
  for (CGNodeId N : CG.nodesOf(M))
    if (CG.node(N).ConstraintsAdded)
      return true;
  return false;
}

const std::vector<MethodId> &
PointsToSolver::intrinsicCalleesAt(StmtId Site) const {
  static const std::vector<MethodId> Empty;
  auto It = IntrinsicCallees.find(Site);
  return It == IntrinsicCallees.end() ? Empty : It->second;
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

void PointsToSolver::solve(const std::vector<MethodId> &Entries) {
  assert(!Solved && "solve() called twice");
  Solved = true;
  CG.setGuard(Opts.Guard);
  for (MethodId E : Entries)
    ensureNode(E, EverywhereCtx);

  while (!Prio->empty()) {
    if (Opts.MaxCallGraphNodes != 0 &&
        CG.numProcessed() >= Opts.MaxCallGraphNodes) {
      BudgetHit = true;
      Counters.add("cg.budget_hit");
      break;
    }
    if (Opts.Guard && !Opts.Guard->checkpoint()) {
      // Deadline/memory/cancellation cutoff: the call graph (and thus the
      // analysis) is deliberately underapproximate, like a node budget.
      BudgetHit = true;
      Counters.add("cg.guard_stop");
      break;
    }
    CGNodeId N = Prio->pop();
    CG.markProcessed(N);
    Counters.addTo(HCgProcessed);
    addConstraints(N);
    // Solve before relaxing priorities: virtual dispatch discovers callee
    // nodes during propagation, and the locality rule must see them.
    propagate();
    Prio->onNodeProcessed(N);
  }
  propagate();
  // Fully compress the representative mapping so the (possibly concurrent)
  // post-solve query surface resolves any PKId in one read.
  for (PKId I = 0; I < RepParent.size(); ++I)
    RepParent[I] = find(static_cast<PKId>(I));
}

void PointsToSolver::propagate() {
  growTables();
  while (!Worklist.empty()) {
    if (Opts.Guard && !Opts.Guard->checkpoint()) {
      // Leave the remaining frontier unprocessed; points-to sets stay an
      // underapproximation of the fixpoint, which every client tolerates.
      Counters.add("pts.guard_stop");
      break;
    }
    PKId PK = Worklist.back();
    Worklist.pop_back();
    OnWorklist[PK] = false;
    if (RepParent[PK] != PK)
      continue; // absorbed into a cycle while queued; delta moved with it
    // Swap the pending delta into a recycled buffer: Delta[PK] inherits
    // the scratch's spent capacity, so the pop loop stops allocating once
    // the buffers have warmed up.
    MovedScratch.clear();
    MovedScratch.swap(Delta[PK]);
    for (IKId IK : MovedScratch) {
      // Indexed loop: a cycle collapse onto PK appends the absorbed
      // nodes' successors, and this member must flow along them too.
      for (size_t E = 0; E < CopySuccs[PK].size(); ++E) {
        PKId T = find(CopySuccs[PK][E]);
        if (T == PK)
          continue; // intra-cycle edge left behind by a collapse
        if (!insertResolved(T, IK) && CycleElim)
          maybeCollapse(PK, T);
      }
      handleNewPointsTo(PK, IK);
    }
  }
}

//===----------------------------------------------------------------------===//
// Online cycle elimination (lazy cycle detection + union-find collapse)
//===----------------------------------------------------------------------===//

void PointsToSolver::maybeCollapse(PKId Rep, PKId T) {
  // Cheap gates first: identical cardinality, then a one-shot probe per
  // edge, then full set equality. Equal sets across a copy edge are the
  // classic lazy-cycle-detection signal (Hardekopf & Lin).
  if (Pts[T].count() != Pts[Rep].count())
    return;
  const uint64_t EKey = (static_cast<uint64_t>(Rep) << 32) | T;
  if (!ProbedEdges.insert(EKey).second)
    return;
  if (!(Pts[T] == Pts[Rep]))
    return;
  // Bounded DFS from T looking for a path back to Rep; Rep -> T is a copy
  // edge, so such a path closes a cycle containing every path node.
  uint32_t Budget = 64;
  std::vector<PKId> Path;
  std::vector<PKId> Visited;
  if (cycleDfs(T, Rep, Budget, Path, Visited))
    collapseCycle(Rep, Path);
}

bool PointsToSolver::cycleDfs(PKId Cur, PKId Goal, uint32_t &Budget,
                              std::vector<PKId> &Path,
                              std::vector<PKId> &Visited) {
  Path.push_back(Cur);
  Visited.push_back(Cur);
  for (size_t E = 0; E < CopySuccs[Cur].size(); ++E) {
    PKId S = find(CopySuccs[Cur][E]);
    if (S == Goal)
      return true;
    if (S == Cur)
      continue;
    if (std::find(Visited.begin(), Visited.end(), S) != Visited.end())
      continue;
    if (Budget == 0)
      break;
    --Budget;
    if (cycleDfs(S, Goal, Budget, Path, Visited))
      return true;
  }
  Path.pop_back();
  return false;
}

void PointsToSolver::collapseCycle(PKId Rep, std::vector<PKId> &Members) {
  for (PKId M : Members)
    mergeInto(Rep, M);
  Counters.addTo(HCyclesCollapsed);
  // Re-establish every obligation of the merged node by re-queueing its
  // full set as delta. All downstream actions are value-idempotent
  // (insertions, deduplicated edge/target registration), so over-firing
  // is safe; pending delta entries are subsumed by the full set.
  Delta[Rep].clear();
  Pts[Rep].appendTo(Delta[Rep]);
  enqueue(Rep);
}

void PointsToSolver::mergeInto(PKId Rep, PKId M) {
  RepParent[M] = Rep;
  Counters.addTo(HNodesMerged);
  // Points-to contents. The members are identical by the LCD gate for the
  // probe edge, but DFS path nodes may lag; count any genuinely new bits.
  NewBitsScratch.clear();
  if (Pts[Rep].unionWith(Pts[M], NewBitsScratch))
    Counters.addTo(HPtsEntries, NewBitsScratch.size());
  Pts[M].clear();
  Delta[M].clear();
  // Successors, resolved and deduplicated against the representative's.
  for (PKId S : CopySuccs[M]) {
    PKId T = find(S);
    if (T != Rep && SuccSet[Rep].insert(T))
      CopySuccs[Rep].push_back(T);
  }
  CopySuccs[M].clear();
  SuccSet[M].clear();
  // Deferred uses transfer wholesale; collapseCycle's full re-delta will
  // fire them against the representative's set.
  LoadUses[Rep].append(LoadUses[M].begin(), LoadUses[M].end());
  LoadUses[M].clear();
  StoreUses[Rep].append(StoreUses[M].begin(), StoreUses[M].end());
  StoreUses[M].clear();
  CallUses[Rep].append(CallUses[M].begin(), CallUses[M].end());
  CallUses[M].clear();
  // Reflective-invoke registrations keyed by PK migrate to the rep.
  for (auto *Map : {&InvokeByMethodPK, &InvokeByArrayPK}) {
    auto It = Map->find(M);
    if (It == Map->end())
      continue;
    std::vector<uint32_t> Moved = std::move(It->second);
    Map->erase(It);
    auto &Dst = (*Map)[Rep];
    for (uint32_t Idx : Moved)
      if (std::find(Dst.begin(), Dst.end(), Idx) == Dst.end())
        Dst.push_back(Idx);
  }
}

void PointsToSolver::handleNewPointsTo(PKId PK, IKId IK) {
  growTables();
  for (size_t U = 0; U < LoadUses[PK].size(); ++U) {
    LoadUse LU = LoadUses[PK][U];
    switch (LU.K) {
    case LoadUse::Field:
      addCopyEdge(channelFieldOrPlain(IK, LU), LU.Dst);
      break;
    case LoadUse::Array:
      addCopyEdge(PKs.arrayElem(IK), LU.Dst);
      break;
    case LoadUse::ChanConst:
      addCopyEdge(channelKey(IK, LU.FieldOrChan), LU.Dst);
      break;
    case LoadUse::ChanWild: {
      auto &Readers = WildcardReaders[IK];
      if (std::find(Readers.begin(), Readers.end(), LU.Dst) == Readers.end()) {
        Readers.push_back(LU.Dst);
        for (PKId Chan : channelsOf(IK))
          addCopyEdge(Chan, LU.Dst);
      }
      break;
    }
    }
    growTables();
  }
  for (size_t U = 0; U < StoreUses[PK].size(); ++U) {
    StoreUse SU = StoreUses[PK][U];
    switch (SU.K) {
    case StoreUse::Field:
      addCopyEdge(SU.Src, PKs.field(IK, SU.FieldOrChan));
      break;
    case StoreUse::Array:
      addCopyEdge(SU.Src, PKs.arrayElem(IK));
      break;
    case StoreUse::Chan:
      addCopyEdge(SU.Src, channelKey(IK, SU.FieldOrChan));
      break;
    }
    growTables();
  }
  for (size_t U = 0; U < CallUses[PK].size(); ++U) {
    CallUse CU = CallUses[PK][U];
    dispatchCall(CU, IK);
    growTables();
  }
  // Most programs never register a reflective invoke, so skip the two hash
  // probes this loop would otherwise pay per propagated member.
  if (InvokeByMethodPK.empty() && InvokeByArrayPK.empty())
    return;
  auto InvM = InvokeByMethodPK.find(PK);
  if (InvM != InvokeByMethodPK.end()) {
    const InstanceKeyData &D = IKs.data(IK);
    if (D.Kind == IKKind::MethodObj) {
      for (uint32_t Idx : InvM->second) {
        MethodId Target = D.Extra;
        const Method &TM = P.Methods[Target];
        if (!TM.hasBody())
          continue;
        InvokeSite &IS = Invokes[Idx];
        CGNodeId TN = ensureNode(Target, Ctxs.callSite(IS.Site));
        if (std::find(IS.Targets.begin(), IS.Targets.end(), TN) ==
            IS.Targets.end()) {
          IS.Targets.push_back(TN);
          CG.addEdge(IS.Caller, IS.Site, TN);
          invokeBind(IS, TN);
        }
      }
    }
  }
  auto InvA = InvokeByArrayPK.find(PK);
  if (InvA != InvokeByArrayPK.end()) {
    for (uint32_t Idx : InvA->second) {
      InvokeSite &IS = Invokes[Idx];
      if (std::find(IS.ArgArrays.begin(), IS.ArgArrays.end(), IK) !=
          IS.ArgArrays.end())
        continue;
      IS.ArgArrays.push_back(IK);
      for (CGNodeId TN : IS.Targets)
        invokeBindArray(IS, TN, IK);
    }
  }
}

PKId PointsToSolver::channelFieldOrPlain(IKId IK, const LoadUse &LU) {
  return PKs.field(IK, LU.FieldOrChan);
}

//===----------------------------------------------------------------------===//
// Constraint generation
//===----------------------------------------------------------------------===//

// The register*Use functions snapshot the base set into the shared
// SnapScratch buffer instead of copying it into a fresh vector. The
// actions fired per member (addCopyEdge / dispatch / intrinsic models)
// never re-enter a register*Use — they are called from addConstraints
// only — so one buffer suffices and the hot path performs no allocation
// once the buffer has grown.

void PointsToSolver::registerLoadUse(PKId Base, LoadUse LU) {
  growTables();
  Base = find(Base);
  LoadUses[Base].push_back(LU);
  SnapScratch.clear();
  Pts[Base].appendTo(SnapScratch);
  for (size_t C = 0; C < SnapScratch.size(); ++C) {
    IKId IK = SnapScratch[C];
    switch (LU.K) {
    case LoadUse::Field:
      addCopyEdge(PKs.field(IK, LU.FieldOrChan), LU.Dst);
      break;
    case LoadUse::Array:
      addCopyEdge(PKs.arrayElem(IK), LU.Dst);
      break;
    case LoadUse::ChanConst:
      addCopyEdge(channelKey(IK, LU.FieldOrChan), LU.Dst);
      break;
    case LoadUse::ChanWild: {
      auto &Readers = WildcardReaders[IK];
      if (std::find(Readers.begin(), Readers.end(), LU.Dst) ==
          Readers.end()) {
        Readers.push_back(LU.Dst);
        for (PKId Chan : channelsOf(IK))
          addCopyEdge(Chan, LU.Dst);
      }
      break;
    }
    }
    growTables();
  }
}

void PointsToSolver::registerStoreUse(PKId Base, StoreUse SU) {
  growTables();
  Base = find(Base);
  StoreUses[Base].push_back(SU);
  SnapScratch.clear();
  Pts[Base].appendTo(SnapScratch);
  for (size_t C = 0; C < SnapScratch.size(); ++C) {
    IKId IK = SnapScratch[C];
    switch (SU.K) {
    case StoreUse::Field:
      addCopyEdge(SU.Src, PKs.field(IK, SU.FieldOrChan));
      break;
    case StoreUse::Array:
      addCopyEdge(SU.Src, PKs.arrayElem(IK));
      break;
    case StoreUse::Chan:
      addCopyEdge(SU.Src, channelKey(IK, SU.FieldOrChan));
      break;
    }
    growTables();
  }
}

void PointsToSolver::registerCallUse(PKId Recv, CallUse CU) {
  growTables();
  Recv = find(Recv);
  CallUses[Recv].push_back(CU);
  SnapScratch.clear();
  Pts[Recv].appendTo(SnapScratch);
  for (size_t C = 0; C < SnapScratch.size(); ++C) {
    dispatchCall(CU, SnapScratch[C]);
    growTables();
  }
}

void PointsToSolver::addConstraints(CGNodeId N) {
  // By value: call dispatch below can create new call-graph nodes, and the
  // vector growth would invalidate a reference into CG.Nodes.
  const CGNode Node = CG.node(N);
  const Method &M = P.Methods[Node.M];
  if (!M.hasBody())
    return;
  auto L = [&](ValueId V) { return PKs.local(N, V); };

  StmtId Stmt = P.methodStmtBegin(Node.M);
  for (const BasicBlock &BB : M.Blocks) {
    for (const Instruction &I : BB.Insts) {
      StmtId Site = Stmt++;
      switch (I.Op) {
      case Opcode::ConstStr: {
        if (StringClass != InvalidId) {
          InstanceKeyData D;
          D.Kind = IKKind::Alloc;
          D.Site = Site;
          D.Cls = StringClass;
          insertPointsTo(L(I.Dst), IKs.intern(D));
        }
        break;
      }
      case Opcode::New: {
        InstanceKeyData D;
        D.Kind = IKKind::Alloc;
        D.Site = Site;
        D.Heap = Policy.heapContextForAlloc(M, Node.Ctx);
        D.Cls = I.Cls;
        insertPointsTo(L(I.Dst), IKs.intern(D));
        break;
      }
      case Opcode::NewArray: {
        InstanceKeyData D;
        D.Kind = IKKind::Array;
        D.Site = Site;
        D.Heap = Policy.heapContextForAlloc(M, Node.Ctx);
        D.Cls = I.Cls;
        insertPointsTo(L(I.Dst), IKs.intern(D));
        break;
      }
      case Opcode::Copy:
        addCopyEdge(L(I.Args[0]), L(I.Dst));
        break;
      case Opcode::Phi:
        for (ValueId A : I.Args)
          if (A != NoValue)
            addCopyEdge(L(A), L(I.Dst));
        break;
      case Opcode::Load:
        registerLoadUse(L(I.Args[0]), {LoadUse::Field, I.Field, L(I.Dst)});
        break;
      case Opcode::Store:
        registerStoreUse(L(I.Args[0]), {StoreUse::Field, I.Field,
                                        L(I.Args[1])});
        break;
      case Opcode::ArrayLoad:
        registerLoadUse(L(I.Args[0]), {LoadUse::Array, 0, L(I.Dst)});
        break;
      case Opcode::ArrayStore:
        registerStoreUse(L(I.Args[0]), {StoreUse::Array, 0, L(I.Args[1])});
        break;
      case Opcode::StaticLoad:
        addCopyEdge(PKs.staticField(I.Field), L(I.Dst));
        break;
      case Opcode::StaticStore:
        addCopyEdge(L(I.Args[0]), PKs.staticField(I.Field));
        break;
      case Opcode::Return:
        if (!I.Args.empty())
          addCopyEdge(L(I.Args[0]), PKs.ret(N));
        break;
      case Opcode::Caught:
        if (ExceptionClass != InvalidId)
          insertPointsTo(L(I.Dst), syntheticIK(Site, ExceptionClass));
        break;
      case Opcode::Call: {
        if (I.CKind == CallKind::Static) {
          MethodId Callee = CHA.resolveVirtual(I.Cls, I.CalleeName);
          if (Callee == InvalidId) {
            Counters.add("call.unresolved");
            break;
          }
          dispatchResolved(N, Site, I, Callee, InvalidId);
          break;
        }
        MethodId Exact = InvalidId;
        if (I.CKind == CallKind::Special) {
          Exact = CHA.resolveVirtual(I.Cls, I.CalleeName);
          if (Exact == InvalidId) {
            Counters.add("call.unresolved");
            break;
          }
        }
        registerCallUse(L(I.Args[0]), {N, Site, &I, Exact});
        break;
      }
      default:
        break;
      }
    }
  }
}

void PointsToSolver::dispatchCall(const CallUse &CU, IKId RecvIK) {
  const Instruction &I = *CU.I;
  MethodId Callee = CU.Exact;
  if (Callee == InvalidId) {
    Callee = CHA.resolveVirtual(IKs.data(RecvIK).Cls, I.CalleeName);
    if (Callee == InvalidId) {
      Counters.add("call.unresolved");
      return;
    }
  }
  dispatchResolved(CU.Caller, CU.Site, I, Callee, RecvIK);
}

void PointsToSolver::dispatchResolved(CGNodeId Caller, StmtId Site,
                                      const Instruction &I, MethodId Callee,
                                      IKId RecvIK) {
  const Method &CalM = P.Methods[Callee];
  if (Opts.ExcludeWhitelisted &&
      P.Classes[CalM.Owner].is(classflags::Whitelisted)) {
    Counters.add("call.whitelist_skipped");
    return;
  }
  if (CalM.Intr != Intrinsic::None || !CalM.hasBody()) {
    auto &Targets = IntrinsicCallees[Site];
    if (std::find(Targets.begin(), Targets.end(), Callee) == Targets.end())
      Targets.push_back(Callee);
    applyIntrinsic(Caller, Site, I, CalM, RecvIK);
    return;
  }
  CtxId Ctx = Policy.selectCalleeContext(CalM, Site, RecvIK);
  bindCall(Caller, Site, I, Callee, Ctx, RecvIK);
}

void PointsToSolver::bindCall(CGNodeId Caller, StmtId Site,
                              const Instruction &I, MethodId Callee,
                              CtxId CalleeCtx, IKId RecvIK) {
  CGNodeId CalleeNode = ensureNode(Callee, CalleeCtx);
  CG.addEdge(Caller, Site, CalleeNode);
  const Method &CalM = P.Methods[Callee];
  uint32_t Start = 0;
  if (RecvIK != InvalidId) {
    // Dispatch-filtered receiver binding: only the instance key that
    // resolved here flows into the formal receiver.
    if (CalM.NumParams > 0)
      insertPointsTo(PKs.local(CalleeNode, 0), RecvIK);
    Start = 1;
  }
  for (uint32_t K = Start; K < CalM.NumParams && K < I.Args.size(); ++K)
    addCopyEdge(PKs.local(Caller, I.Args[K]),
                PKs.local(CalleeNode, static_cast<ValueId>(K)));
  if (I.Dst != NoValue)
    addCopyEdge(PKs.ret(CalleeNode), PKs.local(Caller, I.Dst));
}

//===----------------------------------------------------------------------===//
// Synthetic models (§4.2)
//===----------------------------------------------------------------------===//

void PointsToSolver::invokeBind(InvokeSite &IS, CGNodeId Target) {
  const Instruction &I = *IS.I;
  const Method &TM = P.Methods[CG.node(Target).M];
  // invoke(methodObj, recv, argsArray)
  if (!TM.IsStatic && TM.NumParams > 0 && I.Args.size() > 1)
    addCopyEdge(PKs.local(IS.Caller, I.Args[1]), PKs.local(Target, 0));
  if (I.Dst != NoValue)
    addCopyEdge(PKs.ret(Target), PKs.local(IS.Caller, I.Dst));
  for (IKId Arr : IS.ArgArrays)
    invokeBindArray(IS, Target, Arr);
}

void PointsToSolver::invokeBindArray(InvokeSite &IS, CGNodeId Target,
                                     IKId ArrIK) {
  (void)IS;
  const Method &TM = P.Methods[CG.node(Target).M];
  uint32_t Start = TM.IsStatic ? 0 : 1;
  for (uint32_t K = Start; K < TM.NumParams; ++K)
    addCopyEdge(PKs.arrayElem(ArrIK),
                PKs.local(Target, static_cast<ValueId>(K)));
}

void PointsToSolver::applyIntrinsic(CGNodeId Caller, StmtId Site,
                                    const Instruction &I, const Method &CalM,
                                    IKId RecvIK) {
  auto L = [&](ValueId V) { return PKs.local(Caller, V); };
  size_t Off = CalM.IsStatic ? 0 : 1; // first real argument index
  ClassId RetCls =
      CalM.RetType.isRefLike() ? CalM.RetType.Cls : StringClass;

  switch (CalM.Intr) {
  case Intrinsic::None:
    // Bodiless non-intrinsic (native/abstract): default model returns a
    // fresh object of the declared return type.
    if (I.Dst != NoValue && CalM.RetType.isRefLike())
      insertPointsTo(L(I.Dst), syntheticIK(Site, CalM.RetType.Cls));
    Counters.add("call.native_default_model");
    break;
  case Intrinsic::Identity:
    if (I.Dst != NoValue)
      for (ValueId A : I.Args)
        addCopyEdge(L(A), L(I.Dst));
    break;
  case Intrinsic::StringTransfer:
  case Intrinsic::Sanitize:
  case Intrinsic::SourceReturn:
  case Intrinsic::GetMessage:
    if (I.Dst != NoValue && RetCls != InvalidId)
      insertPointsTo(L(I.Dst), syntheticIK(Site, RetCls));
    break;
  case Intrinsic::SinkConsume:
    break;
  case Intrinsic::MapPut: {
    if (RecvIK == InvalidId || I.Args.size() < Off + 2)
      break;
    Symbol Chan = mapChannel(Caller, I, Off);
    addCopyEdge(L(I.Args[Off + 1]), channelKey(RecvIK, Chan));
    break;
  }
  case Intrinsic::MapGet: {
    if (RecvIK == InvalidId || I.Dst == NoValue || I.Args.size() < Off + 1)
      break;
    Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[Off]);
    if (Lit != ~0u) {
      Counters.addTo(HMapKeysResolved);
      std::string Name = "@map:";
      Name += P.Pool.str(Lit);
      Symbol Chan = internSym(Name);
      addCopyEdge(channelKey(RecvIK, Chan), L(I.Dst));
      addCopyEdge(channelKey(RecvIK, WildChan), L(I.Dst));
    } else {
      // Unknown key: reads every channel, present and future.
      auto &Readers = WildcardReaders[RecvIK];
      PKId Dst = L(I.Dst);
      if (std::find(Readers.begin(), Readers.end(), Dst) == Readers.end()) {
        Readers.push_back(Dst);
        for (PKId Chan : channelsOf(RecvIK))
          addCopyEdge(Chan, Dst);
      }
    }
    break;
  }
  case Intrinsic::CollAdd:
    if (RecvIK != InvalidId && I.Args.size() >= Off + 1)
      addCopyEdge(L(I.Args[Off]), channelKey(RecvIK, ElemChan));
    break;
  case Intrinsic::CollGet:
    if (RecvIK != InvalidId && I.Dst != NoValue)
      addCopyEdge(channelKey(RecvIK, ElemChan), L(I.Dst));
    break;
  case Intrinsic::ClassForName: {
    if (I.Dst == NoValue || I.Args.size() < Off + 1)
      break;
    Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[Off]);
    if (Lit == ~0u) {
      noteUnresolvedReflection(Caller, Site);
      break;
    }
    ClassId Target = P.findClass(P.Pool.str(Lit));
    if (Target == InvalidId) {
      noteUnresolvedReflection(Caller, Site);
      break;
    }
    Counters.addTo(HReflResolved);
    InstanceKeyData D;
    D.Kind = IKKind::ClassObj;
    D.Cls = CalM.RetType.isRefLike() ? CalM.RetType.Cls : InvalidId;
    D.Extra = Target;
    insertPointsTo(L(I.Dst), IKs.intern(D));
    break;
  }
  case Intrinsic::GetMethod: {
    if (RecvIK == InvalidId || I.Dst == NoValue || I.Args.size() < Off + 1)
      break;
    const InstanceKeyData &RD = IKs.data(RecvIK);
    if (RD.Kind != IKKind::ClassObj)
      break;
    Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[Off]);
    if (Lit == ~0u) {
      noteUnresolvedReflection(Caller, Site);
      break;
    }
    MethodId Target = CHA.resolveVirtual(RD.Extra, Lit);
    if (Target == InvalidId) {
      noteUnresolvedReflection(Caller, Site);
      break;
    }
    Counters.addTo(HReflResolved);
    InstanceKeyData D;
    D.Kind = IKKind::MethodObj;
    D.Cls = CalM.RetType.isRefLike() ? CalM.RetType.Cls : InvalidId;
    D.Extra = Target;
    insertPointsTo(L(I.Dst), IKs.intern(D));
    break;
  }
  case Intrinsic::MethodInvoke: {
    if (RecvIK == InvalidId)
      break;
    // Find or create the invoke state for this (caller, site).
    uint64_t Key = (static_cast<uint64_t>(Caller) << 32) | Site;
    auto It = InvokeIndex.find(Key);
    uint32_t Idx;
    if (It == InvokeIndex.end()) {
      Idx = static_cast<uint32_t>(Invokes.size());
      InvokeSite IS;
      IS.Caller = Caller;
      IS.Site = Site;
      IS.I = &I;
      Invokes.push_back(IS);
      InvokeIndex.emplace(Key, Idx);
      // Register interest in the args array (I.Args[2]). Keyed by the
      // representative; handleNewPointsTo looks the current rep up.
      if (I.Args.size() > 2) {
        PKId ArrPK = L(I.Args[2]);
        growTables();
        InvokeByArrayPK[find(ArrPK)].push_back(Idx);
        // Local snapshot (not SnapScratch — this can run inside a
        // registerCallUse iteration that owns that buffer).
        std::vector<IKId> Cur;
        const SparseBitSet &Set = pointsTo(ArrPK);
        Cur.reserve(Set.count());
        Set.appendTo(Cur);
        for (IKId AIK : Cur) {
          InvokeSite &IS2 = Invokes[Idx];
          if (std::find(IS2.ArgArrays.begin(), IS2.ArgArrays.end(), AIK) ==
              IS2.ArgArrays.end())
            IS2.ArgArrays.push_back(AIK);
        }
      }
      // Register interest in the Method object (the receiver PK).
      PKId MethodPK = L(I.Args[0]);
      growTables();
      InvokeByMethodPK[find(MethodPK)].push_back(Idx);
    } else {
      Idx = It->second;
    }
    // Handle the Method object that triggered this dispatch.
    const InstanceKeyData &RD = IKs.data(RecvIK);
    if (RD.Kind != IKKind::MethodObj)
      break;
    MethodId Target = RD.Extra;
    if (!P.Methods[Target].hasBody())
      break;
    InvokeSite &IS = Invokes[Idx];
    CGNodeId TN = ensureNode(Target, Ctxs.callSite(Site));
    if (std::find(IS.Targets.begin(), IS.Targets.end(), TN) ==
        IS.Targets.end()) {
      IS.Targets.push_back(TN);
      CG.addEdge(Caller, Site, TN);
      invokeBind(IS, TN);
    }
    break;
  }
  case Intrinsic::ThreadStart: {
    if (RecvIK == InvalidId)
      break;
    MethodId Run = CHA.resolveVirtual(IKs.data(RecvIK).Cls, RunSym);
    if (Run == InvalidId || !P.Methods[Run].hasBody())
      break;
    CtxId Ctx = Policy.selectCalleeContext(P.Methods[Run], Site, RecvIK);
    CGNodeId TN = ensureNode(Run, Ctx);
    CG.addEdge(Caller, Site, TN);
    if (P.Methods[Run].NumParams > 0)
      insertPointsTo(PKs.local(TN, 0), RecvIK);
    Counters.add("model.thread_start");
    break;
  }
  case Intrinsic::JndiLookup: {
    if (I.Dst == NoValue || I.Args.size() < Off + 1)
      break;
    Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[Off]);
    if (Lit == ~0u)
      break;
    auto It = Opts.JndiBindings.find(std::string(P.Pool.str(Lit)));
    if (It == Opts.JndiBindings.end())
      break;
    InstanceKeyData D;
    D.Kind = IKKind::Singleton;
    D.Cls = It->second;
    D.Extra = It->second;
    insertPointsTo(L(I.Dst), IKs.intern(D));
    Counters.add("model.jndi_lookup");
    break;
  }
  case Intrinsic::HomeCreate: {
    if (I.Dst == NoValue)
      break;
    ClassId Bean = RetCls;
    if (RecvIK != InvalidId) {
      auto It = Opts.EjbHomeToBean.find(IKs.data(RecvIK).Cls);
      if (It != Opts.EjbHomeToBean.end())
        Bean = It->second;
    }
    if (Bean != InvalidId)
      insertPointsTo(L(I.Dst), syntheticIK(Site, Bean));
    Counters.add("model.home_create");
    break;
  }
  }
}
